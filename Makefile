# Convenience wrappers around dune; see bench/README.md for the
# benchmark suite.

.PHONY: all build test bench bench-smoke chaos chaos-net service batch durability fabric migration loadgen check clean

all: build

# Everything a pre-merge run needs: formatting gate (dune files; see
# dune-project), full build, the test suites, and the chaos/bench
# smoke aliases.
check:
	dune build @fmt
	dune build
	dune runtest
	dune build @chaos-smoke
	dune build @bench-smoke
	dune build @service-smoke
	dune build @batch-smoke
	dune build @durability-smoke
	dune build @fabric-smoke
	dune build @migration-smoke
	dune build @loadgen-smoke

build:
	dune build

test:
	dune runtest

# Full microbenchmark run; writes BENCH_sim.json at the repo root.
bench:
	dune exec bench/main.exe -- micro

# Tiny-parameter smoke run of the perf plumbing (also part of
# `dune runtest` via the bench-smoke alias).
bench-smoke:
	dune build @bench-smoke

# Seeded fault-injection runs with invariant checking (also part of
# `dune runtest` via the chaos-smoke alias), plus the mid-migration
# chaos scenarios.  Replay any seed with
#   dune exec bin/amoeba.exe -- chaos --seed N
#   dune exec bin/amoeba.exe -- migration-chaos --seed N
chaos:
	dune build @chaos-smoke
	dune build @migration-smoke

# Invariant-checked runs under persistent adversarial link conditions
# (also part of `dune runtest` via the chaos-net-smoke alias).  Replay
# with e.g.
#   dune exec bin/amoeba.exe -- chaos --seed N --net adversarial
chaos-net:
	dune build @chaos-net-smoke

# Fixed-seed sharded-service workloads with per-shard invariant checks,
# including sequencer- and follower-crash runs (also part of
# `dune runtest` via the service-smoke alias).  Replay with e.g.
#   dune exec bin/amoeba.exe -- workload --shards 4 --seed 11
service:
	dune build @service-smoke

# Batched/pipelined workloads — one healthy, one crashing the
# sequencer mid-batch-stream — with per-shard invariant checks (also
# part of `dune runtest` via the batch-smoke alias).  The full
# batch-size x pipeline-depth x wire sweep is
#   dune exec bench/main.exe -- batch
batch:
	dune build @batch-smoke

# Durable-mode runs (also part of `dune runtest` via the
# durability-smoke alias): healthy durable chaos, seeded and explicit
# whole-cluster power cycles on clean and adversarial nets, and a
# service workload that loses every host mid-run under
# fsync-per-commit.  Replay with e.g.
#   dune exec bin/amoeba.exe -- chaos --seed N --disk ssd
#   dune exec bin/amoeba.exe -- workload --disk ssd --fsync commit --power-cycle
durability:
	dune build @durability-smoke

# Switched-fabric runs (also part of `dune runtest` via the
# fabric-smoke alias): the service workload and invariant-checked
# chaos on `--net switch:*` topologies instead of the shared wire.
# The full shard x topology sweep at 100+ hosts is
#   dune exec bench/main.exe -- fabric
fabric:
	dune build @fabric-smoke

# Live-migration smoke (also part of `dune runtest` via the
# migration-smoke alias): invariant-checked mid-migration chaos —
# source-sequencer crash, destination crash (rollback), whole-cluster
# power cycle inside the transfer window — plus `--migrate` and
# `--rebalance` workload runs.  The 120-schedule swarm lives in
# test/test_migration.ml (part of `dune runtest`).  Replay with e.g.
#   dune exec bin/amoeba.exe -- migration-chaos --seed N --power-cycle
migration:
	dune build @migration-smoke

# Loadgen smoke (also part of `dune runtest` via the loadgen-smoke
# alias): the open-loop YCSB-style generator, a fixed-rate trial and a
# bounded SLO saturation search, plus the tiny bench sweep that writes
# and schema-checks BENCH_loadgen.json.  The full knee sweep is
#   dune exec bench/main.exe -- loadgen --json
loadgen:
	dune build @loadgen-smoke

clean:
	dune clean
