lib/harness/experiments.mli: Amoeba_core Amoeba_net Types
