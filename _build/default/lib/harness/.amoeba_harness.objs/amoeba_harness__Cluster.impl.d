lib/harness/cluster.ml: Amoeba_flip Amoeba_net Amoeba_sim Array Cost_model Engine Ether Flip Machine Printf Trace
