lib/harness/cluster.mli: Amoeba_flip Amoeba_net Amoeba_sim Cost_model Engine Ether Flip Machine Time Trace
