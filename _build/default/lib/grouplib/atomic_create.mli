(** Best-effort atomic group creation.

    The paper's section 5: "the system did not provide any support for
    the atomic creation of a group.  In a system with unreliable
    communication and failures, atomic group creation is theoretically
    impossible to achieve, but a heuristic library procedure that does
    a best-effort attempt would have simplified building some of
    the early fault-tolerant programs."  This is that library
    procedure: either every listed machine is a member when it
    returns, or the group is torn down and an error returned. *)

open Amoeba_sim
open Amoeba_flip
open Amoeba_core

val create_gathered :
  ?resilience:int ->
  ?send_method:Types.send_method ->
  ?timeout:Time.t ->
  Flip.t list ->
  (Api.group list, Types.error) result
(** [create_gathered flips] creates a group on the first machine and
    joins all the others.  Returns the members in the order given, or
    — if any join fails to complete within [timeout] (default 2 s) —
    dissolves whatever partial group exists and returns an error.
    Must be called from a simulated process. *)
