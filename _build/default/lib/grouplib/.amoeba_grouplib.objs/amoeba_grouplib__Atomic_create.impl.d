lib/grouplib/atomic_create.ml: Amoeba_core Amoeba_flip Amoeba_net Amoeba_sim Api Array Engine Flip List Machine Time Types
