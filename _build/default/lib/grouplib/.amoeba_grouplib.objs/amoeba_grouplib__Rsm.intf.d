lib/grouplib/rsm.mli: Addr Amoeba_core Amoeba_flip Api Flip Stable_store Types
