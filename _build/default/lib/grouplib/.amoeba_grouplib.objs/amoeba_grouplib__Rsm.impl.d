lib/grouplib/rsm.ml: Addr Amoeba_core Amoeba_flip Amoeba_net Amoeba_rpc Amoeba_sim Api Bytes Channel Engine Flip List Machine Option Printf Random Stable_store String Time Types
