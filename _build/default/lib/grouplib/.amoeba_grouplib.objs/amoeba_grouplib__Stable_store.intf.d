lib/grouplib/stable_store.mli: Amoeba_net Machine
