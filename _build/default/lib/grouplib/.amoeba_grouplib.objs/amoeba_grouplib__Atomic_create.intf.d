lib/grouplib/atomic_create.mli: Amoeba_core Amoeba_flip Amoeba_sim Api Flip Time Types
