lib/grouplib/stable_store.ml: Amoeba_net Amoeba_sim Bytes Engine Hashtbl List Machine Option Resource Time
