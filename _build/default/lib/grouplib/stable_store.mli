(** Simulated stable storage (a disk).

    Section 5's consistent checkpointing scheme (reference [15]) needs
    state that survives a processor crash.  A {!t} is keyed by machine
    name and, unlike the machine itself, remains readable after
    {!Amoeba_net.Machine.crash} — exactly like a disk that a restarted
    machine remounts.  Writes charge the machine a simulated I/O
    cost. *)

open Amoeba_net

type t

val create : unit -> t
(** One store per simulated world (a disk array, one spindle per
    machine). *)

val write : t -> Machine.t -> key:string -> bytes -> unit
(** Blocking write (costs simulated I/O time).  No-op if the machine
    is already crashed — a dead machine cannot write its disk. *)

val read : t -> machine_name:string -> key:string -> bytes option
(** Reads survive the owner's crash (the disk is intact). *)

val keys : t -> machine_name:string -> string list
