open Amoeba_sim
open Amoeba_net

(* 1996-era disk: ~10 ms seek+rotate plus ~1 MB/s transfer. *)
let seek_ns = Time.ms 10
let transfer_ns_per_byte = 1_000

type t = (string * string, bytes) Hashtbl.t

let create () = Hashtbl.create 32

let write t machine ~key value =
  if Machine.is_alive machine then begin
    let io = seek_ns + (Bytes.length value * transfer_ns_per_byte) in
    Resource.consume (Machine.cpu machine) (io / 10);
    (* The transfer itself is DMA; only a slice costs CPU, but the
       caller blocks for the full I/O. *)
    Engine.sleep (Machine.engine machine) io;
    Hashtbl.replace t (Machine.name machine, key) (Bytes.copy value)
  end

let read t ~machine_name ~key =
  Option.map Bytes.copy (Hashtbl.find_opt t (machine_name, key))

let keys t ~machine_name =
  Hashtbl.fold
    (fun (m, k) _ acc -> if m = machine_name then k :: acc else acc)
    t []
  |> List.sort_uniq compare
