open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Amoeba_core
module T = Types

let create_gathered ?(resilience = 0) ?(send_method = T.Pb)
    ?(timeout = Time.sec 2) flips =
  match flips with
  | [] -> Error T.Not_enough_members
  | first :: rest ->
      let engine = Machine.engine (Flip.machine first) in
      let creator = Api.create_group first ~resilience ~send_method () in
      let addr = Api.group_address creator in
      let n = List.length flips in
      let results = Array.make (n - 1) None in
      List.iteri
        (fun i flip ->
          Engine.spawn engine (fun () ->
              results.(i) <- Some (Api.join_group flip ~resilience ~send_method addr)))
        rest;
      let deadline = Engine.now engine + timeout in
      let rec wait () =
        let done_ = Array.for_all (fun r -> r <> None) results in
        if done_ then ()
        else if Engine.now engine >= deadline then ()
        else begin
          Engine.sleep engine (Time.ms 5);
          wait ()
        end
      in
      wait ();
      let joined =
        Array.to_list results
        |> List.filter_map (function Some (Ok g) -> Some g | _ -> None)
      in
      let complete =
        List.length joined = n - 1
        && List.length (Api.get_info_group creator).Api.members = n
      in
      if complete then Ok (creator :: joined)
      else begin
        (* Best-effort atomicity: no partial group survives. *)
        List.iter (fun g -> ignore (Api.leave_group g)) joined;
        ignore (Api.leave_group creator);
        Error T.Not_enough_members
      end
