type t = {
  mutable data : float array;
  mutable size : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable low : float;
  mutable high : float;
}

let create () =
  {
    data = [||];
    size = 0;
    sum = 0.;
    sum_sq = 0.;
    low = infinity;
    high = neg_infinity;
  }

let add t x =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let data = Array.make ncap 0. in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.low then t.low <- x;
  if x > t.high then t.high <- x

let count t = t.size
let mean t = if t.size = 0 then 0. else t.sum /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.
  else begin
    let n = float_of_int t.size in
    let m = t.sum /. n in
    let v = (t.sum_sq /. n) -. (m *. m) in
    if v <= 0. then 0. else sqrt v
  end

let min_value t = if t.size = 0 then 0. else t.low
let max_value t = if t.size = 0 then 0. else t.high

let percentile t p =
  if t.size = 0 then 0.
  else begin
    let sorted = Array.sub t.data 0 t.size in
    Array.sort compare sorted;
    let rank =
      int_of_float (Float.round (p /. 100. *. float_of_int (t.size - 1)))
    in
    sorted.(max 0 (min (t.size - 1) rank))
  end

let samples t = Array.sub t.data 0 t.size
