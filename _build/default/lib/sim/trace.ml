type span = {
  layer : string;
  host : string;
  start : Time.t;
  stop : Time.t;
}

type t = {
  mutable enabled : bool;
  mutable recorded : span list;  (** newest first *)
}

let create () = { enabled = false; recorded = [] }
let enable t = t.enabled <- true
let disable t = t.enabled <- false
let clear t = t.recorded <- []

let record t eng ~layer ~host d =
  if t.enabled then begin
    let stop = Engine.now eng in
    t.recorded <- { layer; host; start = stop - d; stop } :: t.recorded
  end

let spans t = List.rev t.recorded

let by_layer t =
  let totals = Hashtbl.create 8 in
  let order = ref [] in
  let add { layer; start; stop; _ } =
    if not (Hashtbl.mem totals layer) then order := layer :: !order;
    let prev = Option.value ~default:0 (Hashtbl.find_opt totals layer) in
    Hashtbl.replace totals layer (prev + (stop - start))
  in
  List.iter add (spans t);
  List.rev_map (fun layer -> (layer, Hashtbl.find totals layer)) !order
