(** Write-once synchronisation variables. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Fills the ivar and wakes all readers, in registration order.
    @raise Invalid_argument if already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising when the ivar
    is already full. *)

val peek : 'a t -> 'a option

val is_full : 'a t -> bool

val read : Engine.t -> 'a t -> 'a
(** Blocks the calling process until the ivar is filled. *)
