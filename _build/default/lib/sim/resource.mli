(** An exclusive resource with FIFO queueing, used to model a CPU.

    Every piece of simulated work (interrupt handling, protocol layer
    processing, memory copies) occupies its machine's CPU for a cost
    given by the cost model; contention for the CPU is what limits
    throughput in the reproduced experiments. *)

type t

val create : Engine.t -> name:string -> t

val name : t -> string

val acquire : t -> unit
(** Blocks the calling process until it owns the resource. *)

val release : t -> unit
(** Hands the resource to the next waiter, if any. *)

val consume : t -> Time.t -> unit
(** [consume r d] acquires [r], holds it for [d] of simulated time,
    and releases it: the basic "spend CPU time" operation. *)

val busy_time : t -> Time.t
(** Total simulated time the resource has been held, for utilisation
    reports. *)

val queue_length : t -> int
(** Number of processes currently waiting. *)
