(** Simulated time.

    Time is represented as an integer number of nanoseconds since the
    start of the simulation.  Using integers keeps the event queue
    deterministic: no floating-point rounding can reorder events. *)

type t = int
(** Nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_us_float : float -> t
(** [of_us_float x] rounds [x] microseconds to the nearest nanosecond. *)

val to_us : t -> float
(** [to_us t] is [t] expressed in microseconds. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_sec : t -> float
(** [to_sec t] is [t] expressed in seconds. *)

val pp : Format.formatter -> t -> unit
(** Prints a human-readable duration with an adaptive unit. *)
