(** Simple descriptive statistics for experiment results. *)

type t
(** A mutable accumulator of float samples. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when fewer than two samples. *)

val min_value : t -> float

val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100], by nearest-rank on the
    sorted samples.  0 when empty. *)

val samples : t -> float array
(** A copy of the samples in insertion order. *)
