(** Critical-path tracing.

    Layers of the simulated communication stack record spans (who
    spent how long where) when tracing is enabled.  The Table 3
    reproduction sums the spans of a single SendToGroup by layer. *)

type span = {
  layer : string;  (** e.g. "user", "group", "flip", "ether" *)
  host : string;  (** machine name *)
  start : Time.t;
  stop : Time.t;
}

type t

val create : unit -> t
(** Tracing starts disabled. *)

val enable : t -> unit

val disable : t -> unit

val clear : t -> unit

val record : t -> Engine.t -> layer:string -> host:string -> Time.t -> unit
(** [record t eng ~layer ~host d] records a span of duration [d]
    ending now.  No-op when disabled. *)

val spans : t -> span list
(** Recorded spans, oldest first. *)

val by_layer : t -> (string * Time.t) list
(** Total duration per layer, in first-seen order. *)
