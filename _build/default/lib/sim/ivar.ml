type 'a t = {
  mutable value : 'a option;
  waiters : (unit -> unit) Queue.t;
}

let create () = { value = None; waiters = Queue.create () }

let fill t v =
  match t.value with
  | Some _ -> invalid_arg "Ivar.fill: already filled"
  | None ->
      t.value <- Some v;
      Queue.iter (fun resume -> resume ()) t.waiters;
      Queue.clear t.waiters

let try_fill t v =
  match t.value with
  | Some _ -> false
  | None ->
      fill t v;
      true

let peek t = t.value
let is_full t = t.value <> None

let read eng t =
  match t.value with
  | Some v -> v
  | None -> (
      Engine.suspend eng ~register:(fun resume -> Queue.push resume t.waiters);
      match t.value with
      | Some v -> v
      | None -> assert false)
