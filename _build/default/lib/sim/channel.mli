(** Unbounded FIFO channels.

    [send] never blocks; [recv] blocks until an item is available.
    Multiple readers are served in arrival order. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit

val recv : Engine.t -> 'a t -> 'a

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val recv_timeout : Engine.t -> 'a t -> timeout:Time.t -> 'a option
(** Blocking receive that gives up after [timeout] and returns [None]. *)

val length : 'a t -> int
(** Number of queued items (not counting blocked readers). *)
