type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_us_float x = int_of_float (Float.round (x *. 1_000.))
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.

let pp fmt t =
  if t >= 1_000_000_000 then Format.fprintf fmt "%.3f s" (to_sec t)
  else if t >= 1_000_000 then Format.fprintf fmt "%.3f ms" (to_ms t)
  else if t >= 1_000 then Format.fprintf fmt "%.1f us" (to_us t)
  else Format.fprintf fmt "%d ns" t
