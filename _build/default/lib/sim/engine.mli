(** Discrete-event simulation engine with effects-based processes.

    The engine maintains a clock and a priority queue of events.
    Protocol code is written in direct (blocking) style inside
    processes spawned with {!spawn}; blocking operations ({!sleep},
    {!Ivar.read}, {!Channel.recv}, ...) are implemented with OCaml 5
    effect handlers, so there is no monadic plumbing.

    Determinism: events scheduled for the same instant fire in the
    order they were scheduled, and all randomness flows through the
    engine's seeded {!rng}. *)

type t

type handle
(** A cancellable reference to a scheduled event. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a fresh engine whose clock reads 0. *)

val now : t -> Time.t
(** Current simulated time. *)

val rng : t -> Random.State.t
(** The engine's deterministic random state. *)

val schedule : t -> after:Time.t -> (unit -> unit) -> handle
(** [schedule t ~after f] arranges for [f] to run at [now t + after].
    [f] runs outside any process; it must not block. *)

val cancel : handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val spawn : t -> ?after:Time.t -> (unit -> unit) -> unit
(** [spawn t f] starts a new process running [f].  [f] may block.  An
    exception escaping [f] aborts the simulation: {!run} re-raises it. *)

val run : ?until:Time.t -> t -> unit
(** Runs events until the queue is empty, or until the clock would
    pass [until].  Re-raises the first exception that escaped a
    process or event callback. *)

val step_count : t -> int
(** Number of events processed so far (for tests and diagnostics). *)

(** {1 Blocking operations (only valid inside a process)} *)

val sleep : t -> Time.t -> unit
(** Suspends the calling process for the given duration. *)

val yield : t -> unit
(** Re-schedules the calling process behind events already due now. *)

val suspend : t -> register:((unit -> unit) -> unit) -> unit
(** [suspend t ~register] parks the calling process.  [register] is
    called immediately with a [resume] function; invoking [resume]
    (at most once is honoured; later calls are ignored) schedules the
    process to continue at the then-current simulated time.  This is
    the primitive from which ivars, channels and resources are built. *)
