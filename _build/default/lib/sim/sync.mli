(** Thread synchronisation for simulated processes.

    The paper's programming model is blocking primitives plus multiple
    threads per process (section 2, discussion in section 5); these
    are the intra-process coordination tools that model needs.  All
    operations are deterministic: waiters are served strictly in
    arrival order. *)

module Mutex : sig
  type t

  val create : Engine.t -> t

  val lock : t -> unit

  val unlock : t -> unit
  (** @raise Invalid_argument if the mutex is not held. *)

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Releases on exception too. *)
end

module Semaphore : sig
  type t

  val create : Engine.t -> int -> t
  (** Initial (non-negative) count. *)

  val acquire : t -> unit

  val try_acquire : t -> bool

  val release : t -> unit

  val count : t -> int
end

module Condition : sig
  type t

  val create : Engine.t -> t

  val wait : t -> Mutex.t -> unit
  (** Atomically releases the mutex and blocks; re-acquires before
      returning. *)

  val signal : t -> unit
  (** Wakes the longest-waiting thread, if any. *)

  val broadcast : t -> unit
end

module Barrier : sig
  type t

  val create : Engine.t -> parties:int -> t

  val wait : t -> int
  (** Blocks until [parties] threads arrive; returns the arrival index
      (0 is first).  The barrier then resets for reuse. *)
end
