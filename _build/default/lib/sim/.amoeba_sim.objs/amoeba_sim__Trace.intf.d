lib/sim/trace.mli: Engine Time
