lib/sim/engine.ml: Effect Pqueue Random Time
