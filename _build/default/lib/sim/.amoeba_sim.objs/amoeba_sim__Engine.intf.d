lib/sim/engine.mli: Random Time
