lib/sim/stats.mli:
