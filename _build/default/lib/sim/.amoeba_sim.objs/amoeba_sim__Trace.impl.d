lib/sim/trace.ml: Engine Hashtbl List Option Time
