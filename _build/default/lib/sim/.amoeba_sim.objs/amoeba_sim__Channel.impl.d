lib/sim/channel.ml: Engine Queue
