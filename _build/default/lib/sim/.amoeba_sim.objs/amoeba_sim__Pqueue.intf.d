lib/sim/pqueue.mli:
