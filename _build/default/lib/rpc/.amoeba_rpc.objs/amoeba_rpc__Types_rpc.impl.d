lib/rpc/types_rpc.ml: Amoeba_flip
