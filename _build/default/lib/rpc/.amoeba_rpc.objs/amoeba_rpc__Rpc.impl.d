lib/rpc/rpc.ml: Addr Amoeba_flip Amoeba_net Amoeba_sim Bytes Channel Cost_model Engine Flip Hashtbl Machine Packet Time Types_rpc
