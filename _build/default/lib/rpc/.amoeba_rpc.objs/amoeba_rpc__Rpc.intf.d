lib/rpc/rpc.mli: Addr Amoeba_flip Amoeba_sim Flip Types_rpc
