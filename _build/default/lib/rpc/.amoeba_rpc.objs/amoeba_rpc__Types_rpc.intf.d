lib/rpc/types_rpc.mli: Amoeba_flip
