(** Amoeba-style remote procedure call over FLIP.

    Amoeba supports exactly one point-to-point primitive — blocking
    RPC — and the paper repeatedly compares group-communication delay
    against it (a null RPC takes 2.8 ms on the measured hardware,
    0.1 ms slower than a null broadcast to a group of two).  This
    module provides that baseline on the same simulated substrate,
    plus [ForwardRequest] from the group interface (Table 1): a server
    may hand an in-flight request to another group member, which then
    replies directly to the client. *)

open Amoeba_flip
open Types_rpc

type server

val serve : Flip.t -> addr:Addr.t -> (bytes -> outcome) -> server
(** Registers an RPC server at [addr].  The handler runs in the
    server's own process and may block; it returns either a reply or
    a forward destination. *)

val stop : server -> unit

val requests_handled : server -> int

val requests_forwarded : server -> int

type client
(** A client endpoint: one FLIP address reused across calls, so reply
    routes stay cached (as a long-lived Amoeba process's port would).
    Supports concurrent calls from multiple threads. *)

val client : Flip.t -> client

val call :
  client ->
  dst:Addr.t ->
  ?timeout:Amoeba_sim.Time.t ->
  ?retries:int ->
  bytes ->
  (bytes, [ `Timeout | `No_route ]) result
(** Blocking call with at-most-once execution: retransmissions of the
    same request are answered from the server's reply cache, never
    re-executed. *)
