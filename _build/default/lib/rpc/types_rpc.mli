(** Types shared by RPC servers and clients. *)

type outcome =
  | Reply of bytes
  | Forward of Amoeba_flip.Addr.t
      (** ForwardRequest: pass the request to another member; the
          client receives that member's reply transparently. *)
