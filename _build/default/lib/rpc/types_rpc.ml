type outcome =
  | Reply of bytes
  | Forward of Amoeba_flip.Addr.t
