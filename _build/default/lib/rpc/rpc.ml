open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Types_rpc

(* The RPC layer's per-packet processing cost; chosen so a null RPC
   round trip lands at the paper's 2.8 ms (see bench rpc_compare). *)
let rpc_layer_ns = 235_000
let rpc_header = 32

type wire =
  | Request of { rid : int; client : Addr.t; body : bytes }
  | Response of { rid : int; body : bytes }

type Packet.body += Rpc of wire

type server = {
  flip : Flip.t;
  addr : Addr.t;
  handler : bytes -> outcome;
  inbox : (wire * Addr.t) Channel.t;
  replies : (int * Addr.t, bytes) Hashtbl.t;  (** at-most-once cache *)
  mutable running : bool;
  mutable handled : int;
  mutable forwarded : int;
}

let charge flip =
  Machine.work (Flip.machine flip) ~layer:"rpc" rpc_layer_ns

let user_switch flip =
  let m = Flip.machine flip in
  Machine.work m ~layer:"user" (Machine.cost m).Cost_model.context_switch_ns

let send_wire flip ~src ~dst wire =
  let size =
    rpc_header
    + (match wire with
      | Request { body; _ } | Response { body; _ } -> Bytes.length body)
  in
  charge flip;
  Flip.send flip (Packet.make ~src ~dst ~size (Rpc wire))

let server_loop t () =
  let machine = Flip.machine t.flip in
  let engine = Machine.engine machine in
  let rec loop () =
    let wire, _src = Channel.recv engine t.inbox in
    if t.running then begin
      (match wire with
      | Request { rid; client; body } -> (
          charge t.flip;
          match Hashtbl.find_opt t.replies (rid, client) with
          | Some cached ->
              ignore (send_wire t.flip ~src:t.addr ~dst:client
                        (Response { rid; body = cached }))
          | None -> (
              user_switch t.flip;
              match t.handler body with
              | Reply reply ->
                  t.handled <- t.handled + 1;
                  if Hashtbl.length t.replies > 1024 then Hashtbl.reset t.replies;
                  Hashtbl.replace t.replies (rid, client) reply;
                  ignore (send_wire t.flip ~src:t.addr ~dst:client
                            (Response { rid; body = reply }))
              | Forward target ->
                  (* ForwardRequest: the next member replies straight
                     to the original client. *)
                  t.forwarded <- t.forwarded + 1;
                  ignore (send_wire t.flip ~src:t.addr ~dst:target
                            (Request { rid; client; body }))))
      | Response _ -> ());
      loop ()
    end
  in
  loop ()

let serve flip ~addr handler =
  let t =
    {
      flip;
      addr;
      handler;
      inbox = Channel.create ();
      replies = Hashtbl.create 64;
      running = true;
      handled = 0;
      forwarded = 0;
    }
  in
  Flip.register flip addr (fun p ->
      match p.Packet.body with
      | Rpc wire -> Channel.send t.inbox (wire, p.Packet.src)
      | _ -> ());
  Engine.spawn (Machine.engine (Flip.machine flip)) (server_loop t);
  t

let stop t =
  t.running <- false;
  Flip.unregister t.flip t.addr

let requests_handled t = t.handled
let requests_forwarded t = t.forwarded

type client = {
  c_flip : Flip.t;
  c_addr : Addr.t;
  mutable c_rid : int;
  c_pending : (int, bytes Channel.t) Hashtbl.t;
}

let client flip =
  let c =
    { c_flip = flip; c_addr = Flip.fresh_addr flip; c_rid = 0;
      c_pending = Hashtbl.create 8 }
  in
  Flip.register flip c.c_addr (fun p ->
      match p.Packet.body with
      | Rpc (Response { rid; body }) -> (
          match Hashtbl.find_opt c.c_pending rid with
          | Some ch -> Channel.send ch body
          | None -> ())
      | _ -> ());
  c

let call c ~dst ?(timeout = Time.ms 500) ?(retries = 3) body =
  let flip = c.c_flip in
  let machine = Flip.machine flip in
  let engine = Machine.engine machine in
  c.c_rid <- c.c_rid + 1;
  let rid = c.c_rid in
  let responses = Channel.create () in
  Hashtbl.replace c.c_pending rid responses;
  user_switch flip;
  let rec attempt n =
    if n > retries then Error `Timeout
    else begin
      match
        send_wire flip ~src:c.c_addr ~dst (Request { rid; client = c.c_addr; body })
      with
      | `No_route -> Error `No_route
      | `Sent | `Dropped -> (
          match Channel.recv_timeout engine responses ~timeout with
          | Some reply ->
              charge flip;
              user_switch flip;
              Ok reply
          | None -> attempt (n + 1))
    end
  in
  let result = attempt 1 in
  Hashtbl.remove c.c_pending rid;
  result
