(** Orca-style shared data-objects over totally-ordered broadcast.

    The group system's flagship client (the paper's reference [30],
    "Parallel programming using shared objects and broadcasting"): an
    object is replicated on every processor of a parallel program;
    {e write} operations are broadcast and applied in the same total
    order everywhere, {e read} operations touch only the local
    replica, and {e guards} block a thread until the object satisfies
    a predicate — Orca's condition synchronisation.

    Programs are SPMD: every worker declares the same objects against
    its own runtime, then operates on them as if they were shared
    memory. *)

open Amoeba_flip
open Amoeba_core

module Runtime : sig
  type t
  (** One per machine taking part in the program; wraps a group
      member. *)

  val create : Flip.t -> t

  val join : Flip.t -> Addr.t -> (t, Types.error) result

  val address : t -> Addr.t

  val group : t -> Api.group
end

(** The replicated abstract data type. *)
module type OBJ = sig
  type state

  type op
  (** A write operation. *)

  type result
  (** What a write returns (computed deterministically from the state
      at the operation's position in the total order). *)

  val apply : state -> op -> state * result

  val encode_op : op -> bytes

  val decode_op : bytes -> op option
end

module Make (O : OBJ) : sig
  type handle

  val declare : Runtime.t -> name:string -> init:O.state -> handle
  (** Declares the object on this runtime.  Every participant must
      declare the same name with the same initial state (SPMD); names
      are unique per runtime across all object types. *)

  val write : handle -> O.op -> (O.result, Types.error) result
  (** Broadcasts the operation and blocks until it is applied locally;
      returns what [O.apply] produced at this operation's place in the
      total order (the same value every replica computed). *)

  val read : handle -> (O.state -> 'a) -> 'a
  (** Local, immediate: the fast path that makes shared objects cheap
      (reads vastly outnumber writes in the paper's applications). *)

  val await : handle -> (O.state -> bool) -> unit
  (** Orca's guard: blocks until the predicate holds for the local
      replica (re-evaluated after every applied write).  Returns
      immediately if it already holds. *)
end
