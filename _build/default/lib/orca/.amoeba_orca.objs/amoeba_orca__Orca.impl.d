lib/orca/orca.ml: Amoeba_core Amoeba_flip Amoeba_net Amoeba_sim Api Bytes Engine Flip Hashtbl Ivar List Machine Printf String Types
