lib/orca/orca.mli: Addr Amoeba_core Amoeba_flip Api Flip Types
