lib/flip/addr.mli: Format Random
