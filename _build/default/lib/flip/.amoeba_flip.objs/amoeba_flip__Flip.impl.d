lib/flip/flip.ml: Addr Amoeba_net Amoeba_sim Channel Cost_model Engine Frame Hashtbl List Machine Nic Packet Time
