lib/flip/addr.ml: Format Int Random
