lib/flip/packet.ml: Addr
