lib/flip/flip.mli: Addr Amoeba_net Machine Packet
