lib/flip/packet.mli: Addr
