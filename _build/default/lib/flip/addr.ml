type t = int

let fresh rng = Random.State.int rng 0x3FFFFFFF
let equal = Int.equal
let compare = Int.compare
let hash t = t
let multicast_id t = t
let to_int t = t
let of_int i = i
let pp fmt t = Format.fprintf fmt "flip:%06x" t
