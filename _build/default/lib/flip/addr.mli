(** FLIP addresses.

    Unlike IP, a FLIP address identifies a {e process or a group of
    processes}, not a host: the same address keeps working after a
    process migrates, and group addresses map onto hardware multicast.
    Addresses are drawn at random from a large space, as in the real
    protocol. *)

type t

val fresh : Random.State.t -> t
(** A new (with overwhelming probability unique) address. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val multicast_id : t -> int
(** Stable mapping of an address onto an Ethernet multicast group id. *)

val to_int : t -> int
(** For embedding an address in an application payload (FLIP addresses
    are plain bit strings in the real protocol too). *)

val of_int : int -> t

val pp : Format.formatter -> t -> unit
