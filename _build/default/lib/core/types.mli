(** Common types of the group communication system. *)

type mid = int
(** Member identifier.  Identifiers are assigned in join order and
    never reused within a group incarnation; the resilience protocol
    picks "the r lowest-numbered" members by this ordering. *)

type seqno = int
(** Global sequence number assigned by the sequencer; delivery is in
    strictly increasing contiguous [seqno] order at every member. *)

type send_method = Pb | Bb | Auto
(** The wire method: point-to-point then broadcast (PB), broadcast
    then broadcast (BB), or dynamic switching by message size. *)

type control =
  | Join of { mid : mid; kaddr : Amoeba_flip.Addr.t }
  | Leave of { mid : mid }
  | Reset of { incarnation : int; members : mid list }
      (** The first message of a new incarnation after recovery. *)

type payload =
  | User of bytes
  | Ctrl of control

type event =
  | Message of { seq : seqno; sender : mid; body : bytes }
  | Member_joined of { seq : seqno; mid : mid }
  | Member_left of { seq : seqno; mid : mid }
  | Group_reset of { seq : seqno; incarnation : int; members : mid list }
  | Expelled
      (** This member was declared dead by a recovery it did not take
          part in; it must re-join to continue. *)

type error =
  | Sequencer_unreachable
  | Not_enough_members
  | Not_a_member
  | Send_aborted  (** a recovery discarded this unstable send *)

val payload_bytes : payload -> int

val incarnation_era : int -> int
(** Incarnation numbers encode (recovery era, coordinating member) so
    concurrent recovery proposals are never equal; this extracts the
    human-readable era — 0 before any recovery, 1 after the first,
    and so on. *)

val pp_event : Format.formatter -> event -> unit

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string
