open Types

type entry = {
  seq : seqno;
  sender : mid;
  msgid : int;
  payload : payload;
}

type t = {
  cap : int;
  table : (seqno, entry) Hashtbl.t;
  mutable low : seqno;  (** lowest buffered seq; [high + 1] when empty *)
  mutable high : seqno;  (** highest buffered seq; [low - 1] when empty *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "History.create: capacity must be positive";
  { cap = capacity; table = Hashtbl.create (2 * capacity); low = 0; high = -1 }

let capacity t = t.cap
let length t = t.high - t.low + 1
let is_empty t = length t = 0
let is_full t = length t >= t.cap
let lo t = t.low
let hi t = t.high

let add t entry =
  if is_full t then Error `Full
  else if (not (is_empty t)) && entry.seq <> t.high + 1 then Error `Out_of_order
  else begin
    if is_empty t then begin
      t.low <- entry.seq;
      t.high <- entry.seq
    end
    else t.high <- entry.seq;
    Hashtbl.replace t.table entry.seq entry;
    Ok ()
  end

let drop_lowest t =
  Hashtbl.remove t.table t.low;
  t.low <- t.low + 1

let add_evicting t entry =
  if is_full t then drop_lowest t;
  match add t entry with
  | Ok () -> ()
  | Error `Full -> assert false
  | Error `Out_of_order ->
      (* A member that skipped ahead (e.g. fresh joiner) restarts its
         window at the new sequence number. *)
      Hashtbl.reset t.table;
      t.low <- entry.seq;
      t.high <- entry.seq;
      Hashtbl.replace t.table entry.seq entry

let find t seq = Hashtbl.find_opt t.table seq

let prune_below t bound =
  while (not (is_empty t)) && t.low < bound do
    drop_lowest t
  done

let range t ~lo ~hi =
  let rec collect seq acc =
    if seq < lo then acc
    else
      match find t seq with
      | Some e -> collect (seq - 1) (e :: acc)
      | None -> collect (seq - 1) acc
  in
  collect hi []
