lib/core/types.ml: Amoeba_flip Bytes Format List
