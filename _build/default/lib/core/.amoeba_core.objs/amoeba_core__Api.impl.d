lib/core/api.ml: Amoeba_flip Amoeba_net Amoeba_sim Bytes Channel Cost_model Engine Flip Kernel List Machine Types
