lib/core/types.mli: Amoeba_flip Format
