lib/core/api.mli: Addr Amoeba_flip Flip Kernel Types
