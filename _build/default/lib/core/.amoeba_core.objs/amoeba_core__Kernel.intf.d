lib/core/kernel.mli: Addr Amoeba_flip Amoeba_sim Channel Flip Types
