lib/core/wire.mli: Amoeba_flip Amoeba_net History Types
