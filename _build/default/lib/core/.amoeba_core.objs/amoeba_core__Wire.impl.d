lib/core/wire.ml: Amoeba_flip Amoeba_net History List Types
