lib/core/history.mli: Types
