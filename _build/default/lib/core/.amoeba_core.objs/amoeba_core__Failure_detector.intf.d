lib/core/failure_detector.mli: Addr Amoeba_flip Amoeba_sim Flip
