lib/core/kernel.ml: Addr Amoeba_flip Amoeba_net Amoeba_sim Bytes Channel Cost_model Engine Flip Hashtbl History Ivar List Machine Option Packet Queue Random Types Wire
