lib/core/history.ml: Hashtbl Types
