lib/core/failure_detector.ml: Addr Amoeba_flip Amoeba_net Amoeba_sim Array Channel Cost_model Engine Flip Hashtbl List Machine Option Packet Time
