open Types

type msg =
  | Req of {
      sender : mid;
      msgid : int;
      piggy : seqno;
      inc : int;
      payload : payload;
    }
  | Data of {
      seq : seqno;
      sender : mid;
      msgid : int;
      inc : int;
      payload : payload;
      needs_accept : bool;
    }
  | Bb_data of {
      sender : mid;
      msgid : int;
      piggy : seqno;
      inc : int;
      payload : payload;
    }
  | Accept of { seq : seqno; sender : mid; msgid : int; inc : int }
  | Ack_tent of { seq : seqno; from : mid; inc : int }
  | Nack of { from : mid; expected : seqno; piggy : seqno; inc : int }
  | Status_req of { inc : int }
  | Status of { from : mid; piggy : seqno; inc : int }
  | Ping of { nonce : int }
  | Pong of { nonce : int }
  | Join_req of { kaddr : Amoeba_flip.Addr.t }
  | Join_reply of {
      mid : mid;
      inc : int;
      next_seq : seqno;
      members : (mid * Amoeba_flip.Addr.t) list;
      seq_mid : mid;
    }
  | Leave_req of { mid : mid }
  | Invite of { inc : int; coord : mid; coord_addr : Amoeba_flip.Addr.t }
  | Invite_ack of { mid : mid; last_stable : seqno; inc : int }
  | Fetch of { from_seq : seqno; upto : seqno }
  | Fetch_reply of { entries : History.entry list }
  | New_config of {
      inc : int;
      members : (mid * Amoeba_flip.Addr.t) list;
      seq_mid : mid;
      last_seq : seqno;
    }

type Amoeba_flip.Packet.body += Group of msg

let payload_size (c : Amoeba_net.Cost_model.t) p =
  c.header_user + payload_bytes p

let size (c : Amoeba_net.Cost_model.t) msg =
  let body =
    match msg with
    | Req { payload; _ } | Data { payload; _ } | Bb_data { payload; _ } ->
        payload_size c payload
    | Accept _ | Ack_tent _ | Nack _ | Status_req _ | Status _ | Ping _
    | Pong _ | Leave_req _ | Invite _ | Invite_ack _ | Fetch _ ->
        0
    | Join_req _ -> 8
    | Join_reply { members; _ } | New_config { members; _ } ->
        8 + (List.length members * 12)
    | Fetch_reply { entries } ->
        List.fold_left (fun acc e -> acc + 8 + payload_size c e.History.payload) 0 entries
  in
  c.header_group + body

let describe = function
  | Req _ -> "req"
  | Data _ -> "data"
  | Bb_data _ -> "bb_data"
  | Accept _ -> "accept"
  | Ack_tent _ -> "ack_tent"
  | Nack _ -> "nack"
  | Status_req _ -> "status_req"
  | Status _ -> "status"
  | Ping _ -> "ping"
  | Pong _ -> "pong"
  | Join_req _ -> "join_req"
  | Join_reply _ -> "join_reply"
  | Leave_req _ -> "leave_req"
  | Invite _ -> "invite"
  | Invite_ack _ -> "invite_ack"
  | Fetch _ -> "fetch"
  | Fetch_reply _ -> "fetch_reply"
  | New_config _ -> "new_config"
