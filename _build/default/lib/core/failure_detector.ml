open Amoeba_sim
open Amoeba_net
open Amoeba_flip

type wire =
  | Probe of { nonce : int; reply_to : Addr.t }
  | Probe_reply of { nonce : int }

type Packet.body += Fd of wire

type t = {
  flip : Flip.t;
  machine : Machine.t;
  engine : Engine.t;
  cost : Cost_model.t;
  addr : Addr.t;
  replies : (int, unit Channel.t) Hashtbl.t;
  mutable nonce : int;
  mutable answering : bool;
  mutable answered : int;
}

let probe_size (c : Cost_model.t) = c.header_group

let create flip =
  let machine = Flip.machine flip in
  let t =
    {
      flip;
      machine;
      engine = Machine.engine machine;
      cost = Machine.cost machine;
      addr = Flip.fresh_addr flip;
      replies = Hashtbl.create 8;
      nonce = 0;
      answering = true;
      answered = 0;
    }
  in
  Flip.register flip t.addr (fun p ->
      match p.Packet.body with
      | Fd (Probe { nonce; reply_to }) ->
          if t.answering then begin
            t.answered <- t.answered + 1;
            (* Replying blocks on the wire: needs its own process. *)
            Engine.spawn t.engine (fun () ->
                ignore
                  (Flip.send t.flip
                     (Packet.make ~src:t.addr ~dst:reply_to
                        ~size:(probe_size t.cost)
                        (Fd (Probe_reply { nonce })))))
          end
      | Fd (Probe_reply { nonce }) -> (
          match Hashtbl.find_opt t.replies nonce with
          | Some ch -> Channel.send ch ()
          | None -> ())
      | _ -> ());
  t

let address t = t.addr

let probe t ?retries ?timeout target =
  let retries = Option.value retries ~default:t.cost.probe_retries in
  let timeout = Option.value timeout ~default:t.cost.probe_timeout_ns in
  let rec attempt n =
    if n > retries then false
    else begin
      t.nonce <- t.nonce + 1;
      let nonce = t.nonce in
      let ch = Channel.create () in
      Hashtbl.replace t.replies nonce ch;
      ignore
        (Flip.send t.flip
           (Packet.make ~src:t.addr ~dst:target ~size:(probe_size t.cost)
              (Fd (Probe { nonce; reply_to = t.addr }))));
      let verdict = Channel.recv_timeout t.engine ch ~timeout in
      Hashtbl.remove t.replies nonce;
      match verdict with Some () -> true | None -> attempt (n + 1)
    end
  in
  attempt 1

let probe_many t ?retries ?timeout targets =
  let results = Array.make (List.length targets) None in
  List.iteri
    (fun i target ->
      Engine.spawn t.engine (fun () ->
          results.(i) <- Some (probe t ?retries ?timeout target)))
    targets;
  (* Wait for all verdicts. *)
  let rec wait () =
    if Array.exists (fun r -> r = None) results then begin
      Engine.sleep t.engine (Time.ms 1);
      wait ()
    end
  in
  wait ();
  List.mapi
    (fun i target -> (target, Option.value results.(i) ~default:false))
    targets

let probes_answered t = t.answered

let stop t = t.answering <- false
