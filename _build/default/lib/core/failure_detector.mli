(** A standalone unreliable failure detector.

    The paper's section 5, on lessons learned: "the failure detection
    in the current system is intertwined with the protocol code for
    sending and receiving messages...  We should have put this
    functionality in a separate module so that we could have reasoned
    about it independently of the rest of the system."  This is that
    module.

    Semantics are the paper's (section 2.1): probe with retries; a
    process that does not respond within the budget is declared dead —
    which may be wrong ("some processes may be declared dead although
    they are functioning fine"), and that is accepted: the recovery
    protocol expels them so they cannot disturb the survivors. *)

open Amoeba_flip

type t

val create : Flip.t -> t
(** Registers a responder endpoint on this machine. *)

val address : t -> Addr.t
(** What other detectors probe. *)

val probe :
  t -> ?retries:int -> ?timeout:Amoeba_sim.Time.t -> Addr.t -> bool
(** [probe t addr] sends up to [retries] probes (default: the cost
    model's) and waits [timeout] for each reply; [false] means
    "declared dead".  Blocking; call from a process. *)

val probe_many :
  t -> ?retries:int -> ?timeout:Amoeba_sim.Time.t -> Addr.t list ->
  (Addr.t * bool) list
(** Probes concurrently; returns verdicts in the input order. *)

val probes_answered : t -> int
(** How many probes this endpoint has answered (for tests). *)

val stop : t -> unit
(** Stops answering (makes this endpoint look dead). *)
