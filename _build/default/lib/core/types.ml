type mid = int
type seqno = int
type send_method = Pb | Bb | Auto

type control =
  | Join of { mid : mid; kaddr : Amoeba_flip.Addr.t }
  | Leave of { mid : mid }
  | Reset of { incarnation : int; members : mid list }

type payload =
  | User of bytes
  | Ctrl of control

type event =
  | Message of { seq : seqno; sender : mid; body : bytes }
  | Member_joined of { seq : seqno; mid : mid }
  | Member_left of { seq : seqno; mid : mid }
  | Group_reset of { seq : seqno; incarnation : int; members : mid list }
  | Expelled

type error =
  | Sequencer_unreachable
  | Not_enough_members
  | Not_a_member
  | Send_aborted

let payload_bytes = function
  | User b -> Bytes.length b
  | Ctrl _ -> 8

let incarnation_era inc = inc lsr 20

let pp_event fmt = function
  | Message { seq; sender; body } ->
      Format.fprintf fmt "msg[%d] from %d (%d bytes)" seq sender
        (Bytes.length body)
  | Member_joined { seq; mid } -> Format.fprintf fmt "join[%d] member %d" seq mid
  | Member_left { seq; mid } -> Format.fprintf fmt "leave[%d] member %d" seq mid
  | Group_reset { seq; incarnation; members } ->
      Format.fprintf fmt "reset[%d] incarnation %d, %d members" seq incarnation
        (List.length members)
  | Expelled -> Format.fprintf fmt "expelled"

let error_to_string = function
  | Sequencer_unreachable -> "sequencer unreachable"
  | Not_enough_members -> "not enough members"
  | Not_a_member -> "not a member"
  | Send_aborted -> "send aborted by recovery"

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)
