open Amoeba_sim

type t = {
  engine : Engine.t;
  cost : Cost_model.t;
  trace : Trace.t;
  name : string;
  id : int;
  cpu : Resource.t;
  nic : Nic.t;
  alive : bool ref;  (** shared with the nic's alive closure *)
}

let create engine cost trace ether ~name ~id =
  let cpu = Resource.create engine ~name:(name ^ ":cpu") in
  let alive = ref true in
  let nic =
    Nic.create engine cost trace ether ~station:id ~host:name ~cpu
      ~alive:(fun () -> !alive)
  in
  { engine; cost; trace; name; id; cpu; nic; alive }

let engine t = t.engine
let cost t = t.cost
let trace t = t.trace
let name t = t.name
let id t = t.id
let cpu t = t.cpu
let nic t = t.nic
let is_alive t = !(t.alive)
let crash t = t.alive := false

let jitter engine d = Cost_model.jitter (Engine.rng engine) d

let work t ~layer d =
  if !(t.alive) then begin
    let d = jitter t.engine d in
    Resource.consume t.cpu d;
    Trace.record t.trace t.engine ~layer ~host:t.name d
  end

let cpu_utilisation t =
  let elapsed = Engine.now t.engine in
  if elapsed = 0 then 0.
  else float_of_int (Resource.busy_time t.cpu) /. float_of_int elapsed
