type body = ..
type body += Empty

type dest = Unicast of int | Multicast of int | Broadcast

type t = {
  src : int;
  dest : dest;
  size_on_wire : int;
  body : body;
}

let pp_dest fmt = function
  | Unicast id -> Format.fprintf fmt "uni:%d" id
  | Multicast id -> Format.fprintf fmt "mc:%d" id
  | Broadcast -> Format.fprintf fmt "bcast"
