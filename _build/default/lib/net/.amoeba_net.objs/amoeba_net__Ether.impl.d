lib/net/ether.ml: Amoeba_sim Cost_model Engine Frame Ivar List Queue Random Time
