lib/net/ether.mli: Amoeba_sim Cost_model Engine Frame
