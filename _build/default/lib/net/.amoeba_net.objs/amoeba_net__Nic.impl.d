lib/net/nic.ml: Amoeba_sim Channel Cost_model Engine Ether Frame Int Option Resource Set Trace
