lib/net/nic.mli: Amoeba_sim Cost_model Engine Ether Frame Resource Trace
