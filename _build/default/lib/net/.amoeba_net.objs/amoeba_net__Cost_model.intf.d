lib/net/cost_model.mli: Amoeba_sim Random
