lib/net/machine.ml: Amoeba_sim Cost_model Engine Nic Resource Trace
