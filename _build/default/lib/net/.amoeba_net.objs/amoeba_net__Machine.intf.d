lib/net/machine.mli: Amoeba_sim Cost_model Engine Ether Nic Resource Time Trace
