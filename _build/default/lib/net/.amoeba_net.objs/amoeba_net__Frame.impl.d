lib/net/frame.ml: Format
