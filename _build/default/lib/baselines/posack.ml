open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Types_baseline

type wire =
  | Req of { sender : int; msgid : int; body : bytes }
  | Data of { seq : int; sender : int; msgid : int; body : bytes }
  | Pos_ack of { seq : int; from : int }

type Packet.body += Pa of wire

(* As in the other protocols, all activity runs in the node's single
   protocol process so per-node wire order matches commit order. *)
type input =
  | Wire of wire
  | Submit of { msgid : int; body : bytes }

type node = {
  idx : int;
  n : int;
  flip : Flip.t;
  machine : Machine.t;
  engine : Engine.t;
  cost : Cost_model.t;
  gaddr : Addr.t;
  kaddr : Addr.t;
  mutable peers : Addr.t array;  (** index -> kernel address *)
  inbox : input Channel.t;
  deliveries : delivery Channel.t;
  mutable nxt : int;
  slots : (int, int * int * bytes) Hashtbl.t;
  mutable pending : (int * unit Ivar.t) option;
  mutable msgid_counter : int;
  mutable delivered_count : int;
  (* sequencer-only *)
  mutable next_seq : int;
  unacked : (int, (int, unit) Hashtbl.t * (int * int * bytes)) Hashtbl.t;
      (** seq -> (members yet to ack, entry) *)
  mutable acks_seen : int;
}

let charge t d = Machine.work t.machine ~layer:"group" d

(* See Cm: user-level context switches charged for a fair comparison. *)
let charge_user t = Machine.work t.machine ~layer:"user" t.cost.context_switch_ns

let wire_size t = function
  | Req { body; _ } | Data { body; _ } ->
      t.cost.header_group + t.cost.header_user + Bytes.length body
  | Pos_ack _ -> t.cost.header_group

let mcast t w =
  ignore
    (Flip.multicast t.flip
       (Packet.make ~src:t.kaddr ~dst:t.gaddr ~size:(wire_size t w) (Pa w)))

let ucast t ~dst w =
  ignore
    (Flip.send t.flip (Packet.make ~src:t.kaddr ~dst ~size:(wire_size t w) (Pa w)))

let rec drain t =
  match Hashtbl.find_opt t.slots t.nxt with
  | None -> ()
  | Some (sender, msgid, body) ->
      Hashtbl.remove t.slots t.nxt;
      charge_user t;
      Channel.send t.deliveries { seq = t.nxt; sender; body };
      t.delivered_count <- t.delivered_count + 1;
      (match t.pending with
      | Some (m, done_) when sender = t.idx && m = msgid ->
          t.pending <- None;
          Ivar.fill done_ ()
      | Some _ | None -> ());
      t.nxt <- t.nxt + 1;
      drain t

(* Retransmit to members whose positive ack has not arrived. *)
let arm_retransmit t seq =
  let rec tick () =
    match Hashtbl.find_opt t.unacked seq with
    | None -> ()
    | Some (missing, (sender, msgid, body)) ->
        if Hashtbl.length missing = 0 then Hashtbl.remove t.unacked seq
        else begin
          Hashtbl.iter
            (fun idx () -> ucast t ~dst:t.peers.(idx) (Data { seq; sender; msgid; body }))
            missing;
          ignore
            (Engine.schedule t.engine ~after:t.cost.retrans_timeout_ns (fun () ->
                 Engine.spawn t.engine tick))
        end
  in
  ignore
    (Engine.schedule t.engine ~after:t.cost.retrans_timeout_ns (fun () ->
         Engine.spawn t.engine tick))

let accept t ~sender ~msgid ~body =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  charge t t.cost.group_seq_ns;
  let missing = Hashtbl.create 8 in
  for i = 0 to t.n - 1 do
    if i <> t.idx then Hashtbl.replace missing i ()
  done;
  Hashtbl.replace t.unacked seq (missing, (sender, msgid, body));
  mcast t (Data { seq; sender; msgid; body });
  (* local delivery at the sequencer *)
  Hashtbl.replace t.slots seq (sender, msgid, body);
  drain t;
  arm_retransmit t seq

let handle t (w : wire) =
  match w with
  | Req { sender; msgid; body } ->
      if t.idx = 0 then begin
        charge t t.cost.group_deliver_ns;
        accept t ~sender ~msgid ~body
      end
  | Data { seq; sender; msgid; body } ->
      charge t t.cost.group_deliver_ns;
      if seq >= t.nxt && not (Hashtbl.mem t.slots seq) then begin
        Hashtbl.replace t.slots seq (sender, msgid, body);
        drain t
      end;
      (* The positive acknowledgement the paper's design avoids. *)
      ucast t ~dst:t.peers.(0) (Pos_ack { seq; from = t.idx })
  | Pos_ack { seq; from } ->
      if t.idx = 0 then begin
        charge t t.cost.group_seq_ns;
        t.acks_seen <- t.acks_seen + 1;
        match Hashtbl.find_opt t.unacked seq with
        | Some (missing, _) ->
            Hashtbl.remove missing from;
            if Hashtbl.length missing = 0 then Hashtbl.remove t.unacked seq
        | None -> ()
      end

let node_loop t () =
  let rec loop () =
    (match Channel.recv t.engine t.inbox with
    | Wire w -> handle t w
    | Submit { msgid; body } ->
        if t.idx = 0 then accept t ~sender:0 ~msgid ~body
        else ucast t ~dst:t.peers.(0) (Req { sender = t.idx; msgid; body }));
    loop ()
  in
  loop ()

let make_node ~idx ~n ~gaddr flip =
  let machine = Flip.machine flip in
  let t =
    {
      idx;
      n;
      flip;
      machine;
      engine = Machine.engine machine;
      cost = Machine.cost machine;
      gaddr;
      kaddr = Flip.fresh_addr flip;
      peers = [||];
      inbox = Channel.create ();
      deliveries = Channel.create ();
      nxt = 0;
      slots = Hashtbl.create 32;
      pending = None;
      msgid_counter = 0;
      delivered_count = 0;
      next_seq = 0;
      unacked = Hashtbl.create 32;
      acks_seen = 0;
    }
  in
  let on_packet p =
    match p.Packet.body with
    | Pa w -> Channel.send t.inbox (Wire w)
    | _ -> ()
  in
  Flip.register flip t.kaddr on_packet;
  Flip.register_group flip gaddr on_packet;
  Engine.spawn t.engine (node_loop t);
  t

let make_group flips =
  match flips with
  | [] -> []
  | first :: _ ->
      let gaddr = Flip.fresh_addr first in
      let n = List.length flips in
      let nodes = List.mapi (fun idx flip -> make_node ~idx ~n ~gaddr flip) flips in
      let peers = Array.of_list (List.map (fun t -> t.kaddr) nodes) in
      List.iter (fun t -> t.peers <- peers) nodes;
      nodes

let send t body =
  t.msgid_counter <- t.msgid_counter + 1;
  let msgid = t.msgid_counter in
  let done_ = Ivar.create () in
  t.pending <- Some (msgid, done_);
  charge_user t;
  charge t t.cost.group_send_ns;
  Channel.send t.inbox (Submit { msgid; body });
  Ivar.read t.engine done_;
  charge_user t

let events t = t.deliveries
let delivered t = t.delivered_count
let acks_received t = t.acks_seen
