lib/baselines/migrating.ml: Addr Amoeba_flip Amoeba_net Amoeba_sim Array Bytes Channel Cost_model Engine Flip Hashtbl Ivar List Machine Packet Printf String Types_baseline
