lib/baselines/types_baseline.mli:
