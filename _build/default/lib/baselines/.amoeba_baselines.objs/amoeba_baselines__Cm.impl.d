lib/baselines/cm.ml: Addr Amoeba_flip Amoeba_net Amoeba_sim Bytes Channel Cost_model Engine Flip Hashtbl Ivar List Machine Packet Printf Queue String Types_baseline
