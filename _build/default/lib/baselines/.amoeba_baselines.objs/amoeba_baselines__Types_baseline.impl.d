lib/baselines/types_baseline.ml:
