lib/baselines/cm.mli: Amoeba_flip Amoeba_sim Channel Flip Types_baseline
