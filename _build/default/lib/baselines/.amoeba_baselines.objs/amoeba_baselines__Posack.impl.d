lib/baselines/posack.ml: Addr Amoeba_flip Amoeba_net Amoeba_sim Array Bytes Channel Cost_model Engine Flip Hashtbl Ivar List Machine Packet Types_baseline
