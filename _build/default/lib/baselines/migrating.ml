open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Types_baseline

type wire =
  | Req of { sender : int; msgid : int; body : bytes; hops : int }
  | Data of { seq : int; sender : int; msgid : int; body : bytes; new_holder : int }
  | Nack of { seq : int; reply_to : Addr.t }
  | Retrans of { seq : int; sender : int; msgid : int; body : bytes }

type Packet.body += Mig of wire

(* Everything — wire traffic and the application's own submissions —
   is handled by the node's single protocol process, so a node's
   multicasts reach the wire in commit order (two processes sending
   concurrently could otherwise reorder a token handoff). *)
type input =
  | Wire of wire
  | Submit of { msgid : int; body : bytes; done_ : unit Ivar.t }

type node = {
  idx : int;
  n : int;
  flip : Flip.t;
  machine : Machine.t;
  engine : Engine.t;
  cost : Cost_model.t;
  gaddr : Addr.t;
  kaddr : Addr.t;
  mutable peers : Addr.t array;
  inbox : input Channel.t;
  deliveries : delivery Channel.t;
  mutable holder : int;  (** who we believe holds the token *)
  mutable next_seq : int;  (** valid when we hold the token *)
  mutable nxt : int;
  slots : (int, int * int * bytes) Hashtbl.t;
  hist : (int, int * int * bytes) Hashtbl.t;
  seen : (int * int, unit) Hashtbl.t;  (** sequenced (sender,msgid) *)
  mutable pending : (int * unit Ivar.t) option;
  mutable msgid_counter : int;
  mutable delivered_count : int;
  mutable token_arrivals : int;
  mutable max_seen : int;
  mutable repair_armed : bool;
}

let charge t d = Machine.work t.machine ~layer:"group" d

(* See Cm: user-level context switches charged for a fair comparison. *)
let charge_user t = Machine.work t.machine ~layer:"user" t.cost.context_switch_ns

let wire_size t = function
  | Req { body; _ } | Data { body; _ } | Retrans { body; _ } ->
      t.cost.header_group + t.cost.header_user + Bytes.length body
  | Nack _ -> t.cost.header_group

let mcast t w =
  ignore
    (Flip.multicast t.flip
       (Packet.make ~src:t.kaddr ~dst:t.gaddr ~size:(wire_size t w) (Mig w)))

let ucast t ~dst w =
  ignore
    (Flip.send t.flip (Packet.make ~src:t.kaddr ~dst ~size:(wire_size t w) (Mig w)))

let rec drain t =
  match Hashtbl.find_opt t.slots t.nxt with
  | None -> ()
  | Some (sender, msgid, body) ->
      Hashtbl.remove t.slots t.nxt;
      Hashtbl.replace t.hist t.nxt (sender, msgid, body);
      charge_user t;
      Channel.send t.deliveries { seq = t.nxt; sender; body };
      t.delivered_count <- t.delivered_count + 1;
      (match t.pending with
      | Some (m, done_) when sender = t.idx && m = msgid ->
          t.pending <- None;
          Ivar.fill done_ ()
      | Some _ | None -> ());
      t.nxt <- t.nxt + 1;
      drain t

let arm_repair t =
  if not t.repair_armed then begin
    t.repair_armed <- true;
    ignore
      (Engine.schedule t.engine ~after:t.cost.nack_timeout_ns (fun () ->
           t.repair_armed <- false;
           if t.max_seen >= t.nxt && not (Hashtbl.mem t.slots t.nxt) then
             Engine.spawn t.engine (fun () ->
                 mcast t (Nack { seq = t.nxt; reply_to = t.kaddr }))))
  end

(* Sequencing while holding the token; the token follows the sender.
   All state (sequence counter, token transfer, local slot) is
   committed before the blocking multicast, so a concurrent
   activation in another process cannot double-assign a sequence
   number or sequence under a token we already gave away. *)
let sequence t ~sender ~msgid ~body =
  if not (Hashtbl.mem t.seen (sender, msgid)) then begin
    let seq = t.next_seq in

    t.next_seq <- seq + 1;
    Hashtbl.replace t.seen (sender, msgid) ();
    let new_holder = sender in
    t.holder <- new_holder;
    Hashtbl.replace t.slots seq (sender, msgid, body);
    t.max_seen <- max t.max_seen seq;
    drain t;
    charge t t.cost.group_seq_ns;
    mcast t (Data { seq; sender; msgid; body; new_holder })
  end

let handle t (w : wire) =
  match w with
  | Req { sender; msgid; body; hops } ->
      charge t t.cost.group_deliver_ns;
      if t.holder = t.idx then sequence t ~sender ~msgid ~body
      else if hops < 8 then
        (* Stale destination: forward towards the current holder. *)
        ucast t ~dst:t.peers.(t.holder) (Req { sender; msgid; body; hops = hops + 1 })
  | Data { seq; sender; msgid; body; new_holder } ->
      charge t t.cost.group_deliver_ns;

      Hashtbl.replace t.seen (sender, msgid) ();
      t.max_seen <- max t.max_seen seq;
      let previous_holder = t.holder in
      t.holder <- new_holder;
      if new_holder = t.idx && previous_holder <> t.idx then begin
        t.token_arrivals <- t.token_arrivals + 1;
        t.next_seq <- seq + 1
      end
      else if new_holder = t.idx then t.next_seq <- seq + 1;
      if seq >= t.nxt && not (Hashtbl.mem t.slots seq) then begin
        Hashtbl.replace t.slots seq (sender, msgid, body);
        drain t
      end;
      if t.max_seen >= t.nxt then arm_repair t
  | Nack { seq; reply_to } ->
      charge t t.cost.group_deliver_ns;
      if seq mod t.n = t.idx then begin
        match Hashtbl.find_opt t.hist seq with
        | Some (sender, msgid, body) ->
            ucast t ~dst:reply_to (Retrans { seq; sender; msgid; body })
        | None -> ()
      end
  | Retrans { seq; sender; msgid; body } ->
      charge t t.cost.group_deliver_ns;
      if seq >= t.nxt then begin
        Hashtbl.replace t.slots seq (sender, msgid, body);
        t.max_seen <- max t.max_seen seq;
        drain t
      end

let submit t ~msgid ~body ~done_ =
  if not (Ivar.is_full done_) then begin
    if t.holder = t.idx then sequence t ~sender:t.idx ~msgid ~body
    else
      ucast t ~dst:t.peers.(t.holder)
        (Req { sender = t.idx; msgid; body; hops = 0 });
    (* Retry against a lost request, data or token-forwarding loop. *)
    ignore
      (Engine.schedule t.engine ~after:t.cost.retrans_timeout_ns (fun () ->
           Channel.send t.inbox (Submit { msgid; body; done_ })))
  end

let node_loop t () =
  let rec loop () =
    (match Channel.recv t.engine t.inbox with
    | Wire w -> handle t w
    | Submit { msgid; body; done_ } -> submit t ~msgid ~body ~done_);
    loop ()
  in
  loop ()

let make_node ~idx ~n ~gaddr flip =
  let machine = Flip.machine flip in
  let t =
    {
      idx;
      n;
      flip;
      machine;
      engine = Machine.engine machine;
      cost = Machine.cost machine;
      gaddr;
      kaddr = Flip.fresh_addr flip;
      peers = [||];
      inbox = Channel.create ();
      deliveries = Channel.create ();
      holder = 0;
      next_seq = 0;
      nxt = 0;
      slots = Hashtbl.create 32;
      hist = Hashtbl.create 256;
      seen = Hashtbl.create 64;
      pending = None;
      msgid_counter = 0;
      delivered_count = 0;
      token_arrivals = 0;
      max_seen = -1;
      repair_armed = false;
    }
  in
  let on_packet p =
    match p.Packet.body with Mig w -> Channel.send t.inbox (Wire w) | _ -> ()
  in
  Flip.register flip t.kaddr on_packet;
  Flip.register_group flip gaddr on_packet;
  Engine.spawn t.engine (node_loop t);
  t

let make_group flips =
  match flips with
  | [] -> []
  | first :: _ ->
      let gaddr = Flip.fresh_addr first in
      let n = List.length flips in
      let nodes = List.mapi (fun idx flip -> make_node ~idx ~n ~gaddr flip) flips in
      let peers = Array.of_list (List.map (fun t -> t.kaddr) nodes) in
      List.iter (fun t -> t.peers <- peers) nodes;
      nodes

let send t body =
  t.msgid_counter <- t.msgid_counter + 1;
  let msgid = t.msgid_counter in
  let done_ = Ivar.create () in
  t.pending <- Some (msgid, done_);
  charge_user t;
  charge t t.cost.group_send_ns;
  Channel.send t.inbox (Submit { msgid; body; done_ });
  Ivar.read t.engine done_;
  charge_user t

let events t = t.deliveries
let delivered t = t.delivered_count
let token_moves t = t.token_arrivals

let debug_state t =
  Printf.sprintf
    "node %d: holder=%d next_seq=%d nxt=%d max_seen=%d slots=[%s] pending=%b"
    t.idx t.holder t.next_seq t.nxt t.max_seen
    (String.concat ";"
       (Hashtbl.fold
          (fun seq (s, m, _) acc -> Printf.sprintf "%d<-%d.%d" seq s m :: acc)
          t.slots []))
    (match t.pending with Some _ -> true | None -> false)
