(** A dynamic (migrating) sequencer, as adopted by Horus and Transis
    (paper §2.2/§5).

    The sequencer role follows the senders: when member X's request is
    sequenced, the token moves to X, so X's subsequent messages are
    sequenced locally and cost a single multicast with no remote round
    trip.  The paper concludes in retrospect that "the performance
    gained by migrating the sequencer may be worth the additional
    complexity"; the ablation bench quantifies that trade-off on
    bursty senders.  Fixed membership, failure-free comparison
    protocol. *)

open Amoeba_sim
open Amoeba_flip
open Types_baseline

type node

val make_group : Flip.t list -> node list
(** Node 0 holds the token initially. *)

val send : node -> bytes -> unit

val events : node -> delivery Channel.t

val delivered : node -> int

val token_moves : node -> int
(** Times the token arrived at this node. *)

(** {1 Introspection for tests} *)

val debug_state : node -> string
