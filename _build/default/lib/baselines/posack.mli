(** A positive-acknowledgement variant of the sequencer protocol
    (the design §2.2 argues against).

    Identical to Amoeba-PB except that every member immediately sends
    an acknowledgement for every sequenced broadcast back to the
    sequencer.  With n members each broadcast costs the sequencer n-1
    extra interrupts, and the near-simultaneous acknowledgements of a
    large group overflow its fixed-size receive ring — the "ack
    implosion" the paper's negative-acknowledgement scheme avoids.
    Fixed membership, failure-free: this is a benchmark foil, not a
    production protocol. *)

open Amoeba_sim
open Amoeba_flip
open Types_baseline

type node

val make_group : Flip.t list -> node list
(** Node 0 hosts the sequencer. *)

val send : node -> bytes -> unit

val events : node -> delivery Channel.t

val delivered : node -> int

val acks_received : node -> int
(** Positive acknowledgements processed by the sequencer (node 0). *)
