(** Shared types for the baseline broadcast protocols. *)

type delivery = {
  seq : int;
  sender : int;
  body : bytes;
}
