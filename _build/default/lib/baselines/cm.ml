open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Types_baseline

type wire =
  | Data of { sender : int; msgid : int; body : bytes }
  | Ack of { seq : int; sender : int; msgid : int; next_token : int }
  | Nack of { seq : int; reply_to : Addr.t }
  | Retrans of { seq : int; sender : int; msgid : int; body : bytes }

type Packet.body += Cm of wire

(* All activity runs in the node's single protocol process so a
   node's broadcasts reach the wire in commit order. *)
type input =
  | Wire of wire
  | Submit of { msgid : int; body : bytes; done_ : unit Ivar.t }

type pending_send = {
  p_msgid : int;
  p_done : unit Ivar.t;
}

type node = {
  idx : int;
  n : int;
  flip : Flip.t;
  machine : Machine.t;
  engine : Engine.t;
  cost : Cost_model.t;
  gaddr : Addr.t;
  kaddr : Addr.t;
  peer_addrs : Addr.t array;
  inbox : input Channel.t;
  deliveries : delivery Channel.t;
  (* protocol state *)
  mutable token : int;  (** current token-site index *)
  mutable next_seq : int;  (** next seq the token site will assign *)
  mutable nxt : int;  (** next seq to deliver *)
  unacked : (int * int) Queue.t;  (** (sender, msgid) awaiting an ack *)
  data_buf : (int * int, bytes) Hashtbl.t;
  acked : (int * int, int) Hashtbl.t;  (** (sender,msgid) -> seq *)
  slots : (int, int * int * bytes) Hashtbl.t;  (** seq -> sender,msgid,body *)
  hist : (int, int * int * bytes) Hashtbl.t;  (** delivered, for repairs *)
  mutable pending : pending_send option;
  mutable msgid_counter : int;
  mutable delivered_count : int;
  mutable repair_armed : bool;
  mutable max_seen : int;
}

let charge t d = Machine.work t.machine ~layer:"group" d

(* The user-level context switches the Amoeba measurements include:
   one into the kernel per send, one to wake the blocked sender, one
   to the receiving thread per delivery.  Charged here too so the
   baseline comparison is apples-to-apples. *)
let charge_user t = Machine.work t.machine ~layer:"user" t.cost.context_switch_ns

let wire_size t = function
  | Data { body; _ } | Retrans { body; _ } ->
      t.cost.header_group + t.cost.header_user + Bytes.length body
  | Ack _ | Nack _ -> t.cost.header_group

let mcast t w =
  ignore
    (Flip.multicast t.flip
       (Packet.make ~src:t.kaddr ~dst:t.gaddr ~size:(wire_size t w) (Cm w)))

let ucast t ~dst w =
  ignore
    (Flip.send t.flip (Packet.make ~src:t.kaddr ~dst ~size:(wire_size t w) (Cm w)))

(* Records an acknowledgement's effect on local state; never blocks. *)
let rec apply_ack_state t ~seq ~sender ~msgid ~next_token =
  t.next_seq <- max t.next_seq (seq + 1);
  t.max_seen <- max t.max_seen seq;
  t.token <- next_token;
  if not (Hashtbl.mem t.acked (sender, msgid)) then begin
    Hashtbl.replace t.acked (sender, msgid) seq;
    (match Hashtbl.find_opt t.data_buf (sender, msgid) with
    | Some body -> Hashtbl.replace t.slots seq (sender, msgid, body)
    | None -> ());
    drain t
  end

(* Token site duty: acknowledge (and thereby sequence) the next
   buffered message, handing the token to the next member.  All state
   is committed BEFORE the blocking multicast: the send path and the
   receive path both call this, and a second activation while the
   first is blocked on the wire must see the token already passed on
   (otherwise two fibers would assign the same sequence number). *)
and ack_pending t =
  if t.token = t.idx then begin
    match Queue.take_opt t.unacked with
    | None -> ()
    | Some (sender, msgid) ->
        if Hashtbl.mem t.acked (sender, msgid) then ack_pending t
        else begin
          let seq = t.next_seq in
          let next_token = (t.idx + 1) mod t.n in
          apply_ack_state t ~seq ~sender ~msgid ~next_token;
          charge t t.cost.group_seq_ns;
          mcast t (Ack { seq; sender; msgid; next_token })
        end
  end

and apply_ack t ~seq ~sender ~msgid ~next_token =
  apply_ack_state t ~seq ~sender ~msgid ~next_token;
  ack_pending t

and drain t =
  match Hashtbl.find_opt t.slots t.nxt with
  | None -> if gap t then arm_repair t
  | Some (sender, msgid, body) ->
      Hashtbl.remove t.slots t.nxt;
      Hashtbl.remove t.data_buf (sender, msgid);
      Hashtbl.replace t.hist t.nxt (sender, msgid, body);
      charge_user t;
      Channel.send t.deliveries { seq = t.nxt; sender; body };
      t.delivered_count <- t.delivered_count + 1;
      (match t.pending with
      | Some p when sender = t.idx && p.p_msgid = msgid ->
          t.pending <- None;
          Ivar.fill p.p_done ()
      | Some _ | None -> ());
      t.nxt <- t.nxt + 1;
      drain t

and gap t = t.max_seen >= t.nxt

and arm_repair t =
  if not t.repair_armed then begin
    t.repair_armed <- true;
    ignore
      (Engine.schedule t.engine ~after:t.cost.nack_timeout_ns (fun () ->
           t.repair_armed <- false;
           if gap t then
             (* The member with index (seq mod n) serves the repair,
                spreading the load over the old token sites.  Sending
                blocks, so it needs its own process. *)
             Engine.spawn t.engine (fun () ->
                 mcast t (Nack { seq = t.nxt; reply_to = t.kaddr });
                 arm_repair t)))
  end

let handle t (w : wire) =
  match w with
  | Data { sender; msgid; body } ->
      charge t t.cost.group_deliver_ns;
      if not (Hashtbl.mem t.acked (sender, msgid)) then begin
        Hashtbl.replace t.data_buf (sender, msgid) body;
        Queue.push (sender, msgid) t.unacked;
        ack_pending t
      end
      else begin
        (* Ack already seen (retransmitted data): complete the slot. *)
        let seq = Hashtbl.find t.acked (sender, msgid) in
        if seq >= t.nxt && not (Hashtbl.mem t.slots seq) then begin
          Hashtbl.replace t.slots seq (sender, msgid, body);
          drain t
        end
      end
  | Ack { seq; sender; msgid; next_token } ->
      charge t t.cost.group_deliver_ns;
      apply_ack t ~seq ~sender ~msgid ~next_token;
      if gap t then arm_repair t
  | Nack { seq; reply_to } ->
      charge t t.cost.group_deliver_ns;
      if seq mod t.n = t.idx then begin
        match Hashtbl.find_opt t.hist seq with
        | Some (sender, msgid, body) ->
            ucast t ~dst:reply_to (Retrans { seq; sender; msgid; body })
        | None -> ()
      end
  | Retrans { seq; sender; msgid; body } ->
      charge t t.cost.group_deliver_ns;
      if seq >= t.nxt then begin
        Hashtbl.replace t.acked (sender, msgid) seq;
        Hashtbl.replace t.slots seq (sender, msgid, body);
        t.max_seen <- max t.max_seen seq;
        drain t
      end

let submit t ~msgid ~body ~done_ =
  if not (Ivar.is_full done_) then begin
    mcast t (Data { sender = t.idx; msgid; body });
    (* Our own data must enter our own buffers too. *)
    if not (Hashtbl.mem t.acked (t.idx, msgid)) then begin
      Hashtbl.replace t.data_buf (t.idx, msgid) body;
      Queue.push (t.idx, msgid) t.unacked;
      ack_pending t
    end;
    ignore
      (Engine.schedule t.engine ~after:t.cost.retrans_timeout_ns (fun () ->
           Channel.send t.inbox (Submit { msgid; body; done_ })))
  end

let node_loop t () =
  let rec loop () =
    (match Channel.recv t.engine t.inbox with
    | Wire w -> handle t w
    | Submit { msgid; body; done_ } -> submit t ~msgid ~body ~done_);
    loop ()
  in
  loop ()

let make_node ~idx ~n ~gaddr flip =
  let machine = Flip.machine flip in
  let t =
    {
      idx;
      n;
      flip;
      machine;
      engine = Machine.engine machine;
      cost = Machine.cost machine;
      gaddr;
      kaddr = Flip.fresh_addr flip;
      peer_addrs = [||];
      inbox = Channel.create ();
      deliveries = Channel.create ();
      token = 0;
      next_seq = 0;
      nxt = 0;
      unacked = Queue.create ();
      data_buf = Hashtbl.create 32;
      acked = Hashtbl.create 64;
      slots = Hashtbl.create 32;
      hist = Hashtbl.create 256;
      pending = None;
      msgid_counter = 0;
      delivered_count = 0;
      repair_armed = false;
      max_seen = -1;
    }
  in
  let on_packet p =
    match p.Packet.body with
    | Cm w -> Channel.send t.inbox (Wire w)
    | _ -> ()
  in
  Flip.register flip t.kaddr on_packet;
  Flip.register_group flip gaddr on_packet;
  Engine.spawn t.engine (node_loop t);
  t

let make_group flips =
  match flips with
  | [] -> []
  | first :: _ ->
      let gaddr = Flip.fresh_addr first in
      let n = List.length flips in
      List.mapi (fun idx flip -> make_node ~idx ~n ~gaddr flip) flips

(* Blocking send: multicast the data, wait for local delivery, with a
   retransmission timer against lost data or acks. *)
let send t body =
  t.msgid_counter <- t.msgid_counter + 1;
  let msgid = t.msgid_counter in
  let p = { p_msgid = msgid; p_done = Ivar.create () } in
  t.pending <- Some p;
  charge_user t;
  charge t t.cost.group_send_ns;
  Channel.send t.inbox (Submit { msgid; body; done_ = p.p_done });
  Ivar.read t.engine p.p_done;
  charge_user t

let events t = t.deliveries
let delivered t = t.delivered_count
let node_index t = t.idx

let debug_state t =
  Printf.sprintf
    "node %d: token=%d next_seq=%d nxt=%d unacked=[%s] slots=%d data_buf=%d pending=%b"
    t.idx t.token t.next_seq t.nxt
    (String.concat ";"
       (List.map (fun (s, m) -> Printf.sprintf "%d.%d" s m)
          (List.of_seq (Queue.to_seq t.unacked))))
    (Hashtbl.length t.slots) (Hashtbl.length t.data_buf)
    (match t.pending with Some _ -> true | None -> false)
