(** The Chang–Maxemchuk token-site reliable broadcast (paper §6).

    The comparison baseline the Amoeba protocol was designed against:
    every data message is {e broadcast}; a distinguished {e token
    site} broadcasts an acknowledgement carrying the sequence number,
    and the token-site role rotates to the next member on every
    acknowledgement.  Consequences measured in the benches:

    - 2 broadcasts per message (sometimes 3 with an explicit token
      transfer), versus Amoeba-PB's 1 point-to-point + 1 multicast;
    - every broadcast interrupts all other members, so each message
      costs at least 2(n-1) interrupts versus Amoeba's n.

    Failure handling (token-site regeneration) is out of scope — the
    paper compares failure-free performance; lost messages are
    repaired with negative acknowledgements against the previous token
    sites' histories. *)

open Amoeba_sim
open Amoeba_flip
open Types_baseline

type node

val make_group : Flip.t list -> node list
(** One node per FLIP stack; membership is fixed at creation.  The
    initial token site is node 0. *)

val send : node -> bytes -> unit
(** Blocking totally-ordered broadcast: returns once the message has
    been sequenced and delivered locally. *)

val events : node -> delivery Channel.t

val delivered : node -> int

val node_index : node -> int

(** {1 Introspection for tests} *)

val debug_state : node -> string
