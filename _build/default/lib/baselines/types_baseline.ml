type delivery = {
  seq : int;
  sender : int;
  body : bytes;
}
