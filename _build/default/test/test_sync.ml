(* Tests for the thread-synchronisation primitives. *)

open Amoeba_sim

let run scenario =
  let eng = Engine.create () in
  scenario eng;
  Engine.run eng

let test_mutex_exclusion () =
  run (fun eng ->
      let m = Sync.Mutex.create eng in
      let inside = ref 0 in
      let max_inside = ref 0 in
      for _ = 1 to 5 do
        Engine.spawn eng (fun () ->
            Sync.Mutex.lock m;
            incr inside;
            max_inside := max !max_inside !inside;
            Engine.sleep eng 10;
            decr inside;
            Sync.Mutex.unlock m)
      done);
  ()

let test_mutex_fifo_handoff () =
  let eng = Engine.create () in
  let m = Sync.Mutex.create eng in
  let order = ref [] in
  for i = 1 to 4 do
    Engine.spawn eng (fun () ->
        Sync.Mutex.lock m;
        order := i :: !order;
        Engine.sleep eng 10;
        Sync.Mutex.unlock m)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4 ] (List.rev !order)

let test_mutex_unlock_unheld () =
  let eng = Engine.create () in
  let m = Sync.Mutex.create eng in
  Alcotest.check_raises "unlock unheld"
    (Invalid_argument "Sync.Mutex.unlock: not held") (fun () ->
      Sync.Mutex.unlock m)

let test_with_lock_releases_on_exception () =
  let eng = Engine.create () in
  let m = Sync.Mutex.create eng in
  let reacquired = ref false in
  Engine.spawn eng (fun () ->
      (try Sync.Mutex.with_lock m (fun () -> failwith "boom")
       with Failure _ -> ());
      Sync.Mutex.lock m;
      reacquired := true;
      Sync.Mutex.unlock m);
  Engine.run eng;
  Alcotest.(check bool) "lock available after exception" true !reacquired

let test_semaphore_counting () =
  let eng = Engine.create () in
  let s = Sync.Semaphore.create eng 2 in
  let concurrent = ref 0 and peak = ref 0 in
  for _ = 1 to 6 do
    Engine.spawn eng (fun () ->
        Sync.Semaphore.acquire s;
        incr concurrent;
        peak := max !peak !concurrent;
        Engine.sleep eng 10;
        decr concurrent;
        Sync.Semaphore.release s)
  done;
  Engine.run eng;
  Alcotest.(check int) "at most 2 inside" 2 !peak

let test_semaphore_try_acquire () =
  let eng = Engine.create () in
  let s = Sync.Semaphore.create eng 1 in
  Alcotest.(check bool) "first succeeds" true (Sync.Semaphore.try_acquire s);
  Alcotest.(check bool) "second fails" false (Sync.Semaphore.try_acquire s);
  Sync.Semaphore.release s;
  Alcotest.(check bool) "after release" true (Sync.Semaphore.try_acquire s)

let test_condition_signal () =
  let eng = Engine.create () in
  let m = Sync.Mutex.create eng in
  let c = Sync.Condition.create eng in
  let queue = Queue.create () in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      Sync.Mutex.lock m;
      while Queue.is_empty queue do
        Sync.Condition.wait c m
      done;
      got := Queue.pop queue :: !got;
      Sync.Mutex.unlock m);
  Engine.spawn eng (fun () ->
      Engine.sleep eng 50;
      Sync.Mutex.lock m;
      Queue.push 42 queue;
      Sync.Condition.signal c;
      Sync.Mutex.unlock m);
  Engine.run eng;
  Alcotest.(check (list int)) "consumer woke with the item" [ 42 ] !got

let test_condition_broadcast () =
  let eng = Engine.create () in
  let m = Sync.Mutex.create eng in
  let c = Sync.Condition.create eng in
  let flag = ref false in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn eng (fun () ->
        Sync.Mutex.lock m;
        while not !flag do
          Sync.Condition.wait c m
        done;
        incr woken;
        Sync.Mutex.unlock m)
  done;
  Engine.spawn eng (fun () ->
      Engine.sleep eng 10;
      Sync.Mutex.lock m;
      flag := true;
      Sync.Condition.broadcast c;
      Sync.Mutex.unlock m);
  Engine.run eng;
  Alcotest.(check int) "all three woke" 3 !woken

let test_barrier_rounds () =
  let eng = Engine.create () in
  let b = Sync.Barrier.create eng ~parties:3 in
  let log = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Engine.sleep eng (i * 10);
        ignore (Sync.Barrier.wait b);
        log := ("a", i, Engine.now eng) :: !log;
        ignore (Sync.Barrier.wait b);
        log := ("b", i, Engine.now eng) :: !log)
  done;
  Engine.run eng;
  (* All phase-a crossings happen at the last arrival (t=30) and no
     phase-b entry may precede any phase-a entry. *)
  let phase_a = List.filter (fun (p, _, _) -> p = "a") !log in
  Alcotest.(check int) "all crossed a" 3 (List.length phase_a);
  List.iter
    (fun (_, _, t) -> Alcotest.(check int) "crossed together" 30 t)
    phase_a

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "sync",
    [
      tc "mutex exclusion" test_mutex_exclusion;
      tc "mutex fifo handoff" test_mutex_fifo_handoff;
      tc "mutex unlock unheld" test_mutex_unlock_unheld;
      tc "with_lock releases on exception" test_with_lock_releases_on_exception;
      tc "semaphore counting" test_semaphore_counting;
      tc "semaphore try_acquire" test_semaphore_try_acquire;
      tc "condition signal" test_condition_signal;
      tc "condition broadcast" test_condition_broadcast;
      tc "barrier rounds" test_barrier_rounds;
    ] )
