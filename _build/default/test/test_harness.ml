(* Sanity tests for the experiment harness itself: if these drift, the
   benchmark tables silently lie. *)

open Amoeba_harness
module T = Amoeba_core.Types
module E = Experiments

let test_delay_matches_anchor () =
  let d = E.broadcast_delay ~samples:10 ~n:2 ~size:0 ~send_method:T.Pb () in
  Alcotest.(check bool)
    (Printf.sprintf "0B delay %.2f ms within the calibration band" d.E.mean_ms)
    true
    (d.E.mean_ms > 2.4 && d.E.mean_ms < 3.0)

let test_delay_monotonic_in_size () =
  let d size =
    (E.broadcast_delay ~samples:6 ~n:4 ~size ~send_method:T.Pb ()).E.mean_ms
  in
  let d0 = d 0 and d1 = d 1024 and d8 = d 8000 in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f < %.2f < %.2f" d0 d1 d8)
    true
    (d0 < d1 && d1 < d8)

let test_bb_beats_pb_on_large_messages () =
  let d m =
    (E.broadcast_delay ~samples:6 ~n:4 ~size:8000 ~send_method:m ()).E.mean_ms
  in
  Alcotest.(check bool) "bb < pb at 8000B" true (d T.Bb < d T.Pb)

let test_throughput_in_band () =
  let t =
    E.group_throughput ~duration_ms:1_000 ~n:4 ~size:0 ~send_method:T.Pb ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f msg/s within the calibration band" t.E.msgs_per_sec)
    true
    (t.E.msgs_per_sec > 600. && t.E.msgs_per_sec < 900.)

let test_critical_path_consistent () =
  let layers, total = E.critical_path () in
  let sum = List.fold_left (fun a (_, v) -> a +. v) 0. layers in
  (* The measured total includes queueing; it must exceed the layer
     sum but not by much on a quiet network. *)
  Alcotest.(check bool)
    (Printf.sprintf "sum %.0f <= total %.0f <= sum + 400" sum total)
    true
    (total >= sum -. 50. && total <= sum +. 400.);
  Alcotest.(check (list string))
    "layer names"
    [ "user"; "group"; "flip"; "ether" ]
    (List.map fst layers)

let test_scaled_processing_scales () =
  let base = Amoeba_net.Cost_model.default in
  let half = E.scaled_processing 0.5 in
  Alcotest.(check int) "interrupt halved" (base.interrupt_ns / 2)
    half.Amoeba_net.Cost_model.interrupt_ns;
  Alcotest.(check int) "wire untouched" base.wire_ns_per_byte
    half.Amoeba_net.Cost_model.wire_ns_per_byte

let test_user_space_costs_add_crossings () =
  let base = Amoeba_net.Cost_model.default in
  let us = E.user_space_costs in
  Alcotest.(check int) "two extra switches on the send path"
    (base.group_send_ns + (2 * base.context_switch_ns))
    us.Amoeba_net.Cost_model.group_send_ns

let test_multigroup_aggregates () =
  let one = (E.multigroup_throughput ~duration_ms:800 ~groups:1 ~members:2 ()).E.total_msgs_per_sec in
  let three = (E.multigroup_throughput ~duration_ms:800 ~groups:3 ~members:2 ()).E.total_msgs_per_sec in
  Alcotest.(check bool)
    (Printf.sprintf "3 groups (%.0f) > 2x one group (%.0f)" three one)
    true
    (three > 2. *. one)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "harness",
    [
      tc "delay matches the calibration anchor" test_delay_matches_anchor;
      tc "delay monotonic in message size" test_delay_monotonic_in_size;
      tc "bb beats pb on large messages" test_bb_beats_pb_on_large_messages;
      tc "throughput within the calibration band" test_throughput_in_band;
      tc "critical path layers consistent" test_critical_path_consistent;
      tc "scaled processing scales host costs only" test_scaled_processing_scales;
      tc "user-space model adds boundary crossings"
        test_user_space_costs_add_crossings;
      tc "multigroup throughput aggregates" test_multigroup_aggregates;
    ] )
