(* Tests for the public API surface (paper Table 1 semantics). *)

open Amoeba_sim
open Amoeba_core
open Amoeba_harness
module T = Types

let body = Bytes.of_string

let with_cluster n scenario =
  let cl = Cluster.create ~n () in
  let failure = ref None in
  Cluster.spawn cl (fun () -> try scenario cl with e -> failure := Some e);
  Cluster.run ~until:(Time.sec 600) cl;
  match !failure with Some e -> raise e | None -> ()

let test_info_reflects_configuration () =
  with_cluster 2 (fun cl ->
      let g =
        Api.create_group (Cluster.flip cl 0) ~resilience:3 ~send_method:T.Bb
          ~history:64 ()
      in
      let info = Api.get_info_group g in
      Alcotest.(check int) "resilience" 3 info.Api.resilience;
      Alcotest.(check bool) "method" true (info.Api.send_method = T.Bb);
      Alcotest.(check int) "seq starts at 0" 0 info.Api.next_seq)

let test_receive_opt () =
  with_cluster 2 (fun cl ->
      let g = Api.create_group (Cluster.flip cl 0) () in
      Alcotest.(check bool) "empty at first" true (Api.receive_opt g = None);
      ignore (Api.send_to_group g (body "x"));
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      (match Api.receive_opt g with
      | Some (T.Message { body = b; _ }) ->
          Alcotest.(check string) "body" "x" (Bytes.to_string b)
      | _ -> Alcotest.fail "expected a message");
      Alcotest.(check bool) "drained" true (Api.receive_opt g = None))

let test_group_address_is_stable () =
  with_cluster 2 (fun cl ->
      let g = Api.create_group (Cluster.flip cl 0) () in
      let a1 = Api.group_address g in
      let g1 = Result.get_ok (Api.join_group (Cluster.flip cl 1) a1) in
      Alcotest.(check bool) "same address at both members" true
        (Amoeba_flip.Addr.equal a1 (Api.group_address g1)))

let test_double_leave_fails () =
  with_cluster 2 (fun cl ->
      let g0 = Api.create_group (Cluster.flip cl 0) () in
      let g1 =
        Result.get_ok (Api.join_group (Cluster.flip cl 1) (Api.group_address g0))
      in
      Alcotest.(check bool) "first leave ok" true (Api.leave_group g1 = Ok ());
      Alcotest.(check bool) "second leave refused" true
        (Api.leave_group g1 = Error T.Not_a_member))

let test_send_empty_message () =
  with_cluster 2 (fun cl ->
      let g0 = Api.create_group (Cluster.flip cl 0) () in
      let g1 =
        Result.get_ok (Api.join_group (Cluster.flip cl 1) (Api.group_address g0))
      in
      ignore (Api.send_to_group g0 Bytes.empty);
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      match Api.receive_opt g1 with
      | Some (T.Message { body = b; _ }) ->
          Alcotest.(check int) "zero length" 0 (Bytes.length b)
      | _ -> Alcotest.fail "empty message not delivered")

let test_large_message_beyond_paper_cap () =
  (* The paper capped measurements at 8000 bytes (multicast flow
     control was an open problem) but the layer itself fragments and
     reassembles arbitrarily large messages. *)
  with_cluster 2 (fun cl ->
      let g0 = Api.create_group (Cluster.flip cl 0) () in
      let g1 =
        Result.get_ok (Api.join_group (Cluster.flip cl 1) (Api.group_address g0))
      in
      let big = Bytes.init 50_000 (fun i -> Char.chr (i mod 256)) in
      ignore (Api.send_to_group g0 big);
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      match Api.receive_opt g1 with
      | Some (T.Message { body = b; _ }) ->
          Alcotest.(check int) "full size" 50_000 (Bytes.length b);
          Alcotest.(check bool) "content intact" true (Bytes.equal b big)
      | _ -> Alcotest.fail "large message not delivered")

let test_message_payload_isolation () =
  (* Mutating the sender's buffer after SendToGroup must not corrupt
     what receivers observe (the paper's semantics: the message is
     taken at call time). *)
  with_cluster 2 (fun cl ->
      let g0 = Api.create_group (Cluster.flip cl 0) () in
      let g1 =
        Result.get_ok (Api.join_group (Cluster.flip cl 1) (Api.group_address g0))
      in
      let buf = Bytes.of_string "orig" in
      ignore (Api.send_to_group g0 buf);
      Bytes.set buf 0 'X';
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      match Api.receive_opt g1 with
      | Some (T.Message { body = b; _ }) ->
          Alcotest.(check string) "unchanged" "orig" (Bytes.to_string b)
      | _ -> Alcotest.fail "not delivered")

let test_many_threads_one_member () =
  (* The paper's programming model: parallelism through multiple
     blocking threads per process. *)
  with_cluster 2 (fun cl ->
      let g0 = Api.create_group (Cluster.flip cl 0) () in
      let g1 =
        Result.get_ok (Api.join_group (Cluster.flip cl 1) (Api.group_address g0))
      in
      let oks = ref 0 in
      for _ = 1 to 4 do
        Cluster.spawn cl (fun () ->
            for _ = 1 to 3 do
              match Api.send_to_group g1 (body "t") with
              | Ok _ -> incr oks
              | Error _ -> ()
            done)
      done;
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check int) "all 12 thread-sends complete" 12 !oks;
      let info = Api.get_info_group g0 in
      (* 12 sends plus member 1's join, which is itself a sequenced event *)
      Alcotest.(check int) "12 messages + 1 join sequenced" 13 info.Api.next_seq)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "api",
    [
      tc "get_info reflects configuration" test_info_reflects_configuration;
      tc "receive_opt is non-blocking" test_receive_opt;
      tc "group address is stable" test_group_address_is_stable;
      tc "double leave fails" test_double_leave_fails;
      tc "empty message roundtrip" test_send_empty_message;
      tc "50KB message beyond the paper's cap" test_large_message_beyond_paper_cap;
      tc "payload isolation" test_message_payload_isolation;
      tc "many sending threads per member" test_many_threads_one_member;
    ] )
