test/test_rpc.ml: Alcotest Amoeba_flip Amoeba_harness Amoeba_net Amoeba_rpc Amoeba_sim Bytes Cluster Engine Ether Flip Frame Machine Printf Rpc Time Types_rpc
