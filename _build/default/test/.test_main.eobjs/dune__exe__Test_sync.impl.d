test/test_sync.ml: Alcotest Amoeba_sim Engine List Queue Sync
