test/test_api.ml: Alcotest Amoeba_core Amoeba_flip Amoeba_harness Amoeba_sim Api Bytes Char Cluster Engine Result Time Types
