test/test_sim.ml: Alcotest Amoeba_sim Channel Engine Float Gen Ivar List Pqueue QCheck QCheck_alcotest Resource Stats Time Trace
