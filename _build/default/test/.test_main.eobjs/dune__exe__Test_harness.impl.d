test/test_harness.ml: Alcotest Amoeba_core Amoeba_harness Amoeba_net Experiments List Printf
