test/test_flip.ml: Alcotest Amoeba_flip Amoeba_net Amoeba_sim Cost_model Engine Ether Flip List Machine Packet Printf QCheck QCheck_alcotest Time Trace
