test/test_wire.ml: Alcotest Amoeba_core Amoeba_flip Amoeba_net Bytes Cost_model List Types Wire
