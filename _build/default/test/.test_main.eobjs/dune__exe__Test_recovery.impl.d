test/test_recovery.ml: Alcotest Amoeba_core Amoeba_harness Amoeba_net Amoeba_sim Api Bytes Cluster Engine Ether Frame Kernel List Machine Printf QCheck QCheck_alcotest Result Time Types
