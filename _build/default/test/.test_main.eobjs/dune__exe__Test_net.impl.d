test/test_net.ml: Alcotest Amoeba_net Amoeba_sim Cost_model Engine Ether Frame Hashtbl List Machine Nic Printf QCheck QCheck_alcotest Random Resource Time Trace
