test/test_failure_detector.ml: Alcotest Amoeba_core Amoeba_harness Amoeba_net Amoeba_sim Cluster Ether Failure_detector Frame List Machine Time
