test/test_orca.ml: Alcotest Amoeba_harness Amoeba_net Amoeba_orca Amoeba_sim Bytes Cluster Engine Ether Fun List Option Orca Printf QCheck QCheck_alcotest Result String Time
