(* Parallel branch-and-bound TSP on Orca-style shared objects — the
   canonical application of the Amoeba group system (the paper's
   reference [30], "Parallel programming using shared objects and
   broadcasting").

   Three shared objects drive the computation:
   - "bound":   the best tour length found so far.  Workers read it
                locally on every node expansion (reads are free) and
                broadcast an update only when they improve it.
   - "jobs":    a work queue of partial tours, fed by the master,
                consumed by guarded pops.
   - "credits": an outstanding-work counter for distributed
                termination detection.

   Run with: dune exec examples/orca_tsp.exe *)

open Amoeba_sim
open Amoeba_orca
open Amoeba_harness

let n_workers = 6
let n_cities = 9

(* A deterministic asymmetric distance matrix. *)
let dist =
  Array.init n_cities (fun i ->
      Array.init n_cities (fun j ->
          if i = j then 0 else 10 + ((i * 37) + (j * 61) + (i * j * 13)) mod 90))

let encode_ints l = Bytes.of_string (String.concat "," (List.map string_of_int l))

let decode_ints b =
  let s = Bytes.to_string b in
  if s = "" then Some []
  else
    try Some (List.map int_of_string (String.split_on_char ',' s))
    with Failure _ -> None

(* The global bound: minimised under broadcast; the result tells the
   writer whether its candidate won. *)
module Bound_obj = struct
  type state = int
  type op = Propose of int
  type result = bool

  let apply st (Propose v) = if v < st then (v, true) else (st, false)
  let encode_op (Propose v) = encode_ints [ v ]
  let decode_op b =
    match decode_ints b with Some [ v ] -> Some (Propose v) | _ -> None
end

(* Jobs are partial tours (city prefixes). *)
module Jobs_obj = struct
  type state = int list list
  type op = Push of int list | Pop
  type result = int list option

  let apply st = function
    | Push j -> (j :: st, None)
    | Pop -> ( match st with [] -> ([], None) | j :: rest -> (rest, Some j))

  let encode_op = function
    | Push j -> Bytes.cat (Bytes.of_string "+") (encode_ints j)
    | Pop -> Bytes.of_string "-"

  let decode_op b =
    if Bytes.length b = 0 then None
    else if Bytes.get b 0 = '-' then Some Pop
    else
      Option.map (fun j -> Push j)
        (decode_ints (Bytes.sub b 1 (Bytes.length b - 1)))
end

module Credits_obj = struct
  type state = int
  type op = Delta of int
  type result = int

  let apply st (Delta d) = (st + d, st + d)
  let encode_op (Delta d) = encode_ints [ d ]
  let decode_op b =
    match decode_ints b with Some [ d ] -> Some (Delta d) | _ -> None
end

module Bound = Orca.Make (Bound_obj)
module Jobs = Orca.Make (Jobs_obj)
module Credits = Orca.Make (Credits_obj)

(* Sequential depth-first expansion of one partial tour, pruning
   against the shared bound. *)
let expand machine bound partial =
  let visited = Array.make n_cities false in
  List.iter (fun c -> visited.(c) <- true) partial;
  let best_local = ref max_int in
  let rec go tour len count =
    (* charge a little simulated CPU per node *)
    Amoeba_net.Machine.work machine ~layer:"user" (Time.us 2);
    if len < Bound.read bound Fun.id then begin
      if count = n_cities then begin
        let total = len + dist.(List.hd tour).(0) in
        if total < !best_local then best_local := total
      end
      else
        for c = 0 to n_cities - 1 do
          if not visited.(c) then begin
            visited.(c) <- true;
            go (c :: tour) (len + dist.(List.hd tour).(c)) (count + 1);
            visited.(c) <- false
          end
        done
    end
  in
  let len =
    let rec path_len = function
      | a :: (b :: _ as rest) -> dist.(b).(a) + path_len rest
      | _ -> 0
    in
    path_len partial
  in
  go partial len (List.length partial);
  !best_local

(* Reference answer, computed sequentially on the host. *)
let sequential_optimum () =
  let visited = Array.make n_cities false in
  visited.(0) <- true;
  let best = ref max_int in
  let rec go last len count =
    if len < !best then begin
      if count = n_cities then best := min !best (len + dist.(last).(0))
      else
        for c = 0 to n_cities - 1 do
          if not visited.(c) then begin
            visited.(c) <- true;
            go c (len + dist.(last).(c)) (count + 1);
            visited.(c) <- false
          end
        done
    end
  in
  go 0 0 1;
  !best

let () =
  let cl = Cluster.create ~n:n_workers () in
  let answer = ref max_int in
  Cluster.spawn cl (fun () ->
      let rt0 = Orca.Runtime.create (Cluster.flip cl 0) in
      let rts =
        rt0
        :: List.init (n_workers - 1) (fun i ->
               Result.get_ok
                 (Orca.Runtime.join (Cluster.flip cl (i + 1))
                    (Orca.Runtime.address rt0)))
      in
      let objs =
        List.map
          (fun rt ->
            ( Bound.declare rt ~name:"bound" ~init:max_int,
              Jobs.declare rt ~name:"jobs" ~init:[],
              Credits.declare rt ~name:"credits" ~init:0 ))
          rts
      in
      (* Master: one job per (first hop, second hop) prefix. *)
      let bound0, jobs0, credits0 = List.hd objs in
      let jobs =
        List.concat_map
          (fun a ->
            if a = 0 then []
            else
              List.filter_map
                (fun b -> if b <> 0 && b <> a then Some [ b; a; 0 ] else None)
                (List.init n_cities Fun.id))
          (List.init n_cities Fun.id)
      in
      ignore (Credits.write credits0 (Credits_obj.Delta (List.length jobs)));
      List.iter (fun j -> ignore (Jobs.write jobs0 (Jobs_obj.Push j))) jobs;
      Printf.printf "master seeded %d jobs for %d workers\n%!" (List.length jobs)
        n_workers;
      (* Workers. *)
      List.iteri
        (fun w (bound, jobs_h, credits) ->
          Cluster.spawn cl (fun () ->
              let machine = Cluster.machine cl w in
              let rec work () =
                Jobs.await jobs_h (fun q -> q <> []);
                match Result.get_ok (Jobs.write jobs_h Jobs_obj.Pop) with
                | None ->
                    (* Someone stole the job between guard and pop. *)
                    if Credits.read credits Fun.id > 0 then work ()
                | Some job ->
                    let local_best = expand machine bound job in
                    if local_best < Bound.read bound Fun.id then begin
                      match Bound.write bound (Bound_obj.Propose local_best) with
                      | Ok true ->
                          Printf.printf "worker %d improved the bound to %d\n%!"
                            w local_best
                      | Ok false | Error _ -> ()
                    end;
                    ignore (Credits.write credits (Credits_obj.Delta (-1)));
                    if Credits.read credits Fun.id > 0 then work ()
              in
              work ()))
        objs;
      (* Termination: all credits consumed. *)
      Credits.await credits0 (fun c -> c = 0);
      (* Wait a moment for any in-flight bound update. *)
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      answer := Bound.read bound0 Fun.id;
      Printf.printf "parallel optimum: %d (at t=%.1f ms simulated)\n%!" !answer
        (Time.to_ms (Engine.now cl.Cluster.engine)));
  Cluster.run ~until:(Time.sec 600) cl;
  let seq = sequential_optimum () in
  Printf.printf "sequential optimum: %d; agreement: %b\n" seq (!answer = seq);
  print_endline "orca_tsp done"
