(* Quickstart: create a group, join members, exchange totally-ordered
   messages, observe that every member sees the same stream.

   Run with: dune exec examples/quickstart.exe *)

open Amoeba_sim
open Amoeba_core
open Amoeba_harness
module T = Types

let () =
  (* A simulated testbed: 3 machines on one Ethernet segment. *)
  let cl = Cluster.create ~n:3 () in

  Cluster.spawn cl (fun () ->
      (* Machine 0 creates the group (and hosts the sequencer)... *)
      let alice = Api.create_group (Cluster.flip cl 0) () in
      let port = Api.group_address alice in

      (* ...and the others join.  The group address is the "port" you
         would distribute out of band (in Amoeba: as a capability). *)
      let bob = Result.get_ok (Api.join_group (Cluster.flip cl 1) port) in
      let carol = Result.get_ok (Api.join_group (Cluster.flip cl 2) port) in

      let members = [ ("alice", alice); ("bob", bob); ("carol", carol) ] in

      (* Every member prints its delivery stream: the streams are
         identical, whatever the send interleaving. *)
      List.iter
        (fun (name, g) ->
          Cluster.spawn cl (fun () ->
              let rec loop () =
                (match Api.receive_from_group g with
                | T.Message { seq; sender; body } ->
                    Printf.printf "  [%-5s] seq %2d from member %d: %s\n" name
                      seq sender (Bytes.to_string body)
                | T.Member_joined { mid; _ } ->
                    Printf.printf "  [%-5s] member %d joined\n" name mid
                | ev -> Format.printf "  [%-5s] %a@." name T.pp_event ev);
                loop ()
              in
              loop ()))
        members;

      (* Two members send concurrently. *)
      Cluster.spawn cl (fun () ->
          for i = 1 to 3 do
            ignore
              (Api.send_to_group bob
                 (Bytes.of_string (Printf.sprintf "bob #%d" i)))
          done);
      Cluster.spawn cl (fun () ->
          for i = 1 to 3 do
            ignore
              (Api.send_to_group carol
                 (Bytes.of_string (Printf.sprintf "carol #%d" i)))
          done);

      Engine.sleep cl.Cluster.engine (Time.ms 100);
      let info = Api.get_info_group alice in
      Printf.printf
        "group info: %d members, sequencer is member %d, next seq %d\n"
        (List.length info.Api.members)
        info.Api.sequencer info.Api.next_seq);

  Cluster.run ~until:(Time.sec 5) cl;
  print_endline "quickstart done"
