examples/orca_tsp.mli:
