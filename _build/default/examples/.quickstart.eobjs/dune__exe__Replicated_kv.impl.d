examples/replicated_kv.ml: Amoeba_core Amoeba_harness Amoeba_net Amoeba_sim Api Bytes Cluster Engine Hashtbl List Machine Printf Result String Time Types
