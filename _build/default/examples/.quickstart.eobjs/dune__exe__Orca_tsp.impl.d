examples/orca_tsp.ml: Amoeba_harness Amoeba_net Amoeba_orca Amoeba_sim Array Bytes Cluster Engine Fun List Option Orca Printf Result String Time
