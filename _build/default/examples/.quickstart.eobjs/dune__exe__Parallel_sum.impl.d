examples/parallel_sum.ml: Amoeba_core Amoeba_harness Amoeba_net Amoeba_sim Api Array Bytes Cluster List Printf Result String Time Types
