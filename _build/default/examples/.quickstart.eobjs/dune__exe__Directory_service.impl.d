examples/directory_service.ml: Amoeba_core Amoeba_flip Amoeba_harness Amoeba_net Amoeba_rpc Amoeba_sim Api Bytes Cluster Engine Hashtbl List Machine Printf Result Rpc String Time Types Types_rpc
