examples/quickstart.mli:
