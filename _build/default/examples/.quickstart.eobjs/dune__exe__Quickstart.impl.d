examples/quickstart.ml: Amoeba_core Amoeba_harness Amoeba_sim Api Bytes Cluster Engine Format List Printf Result Time Types
