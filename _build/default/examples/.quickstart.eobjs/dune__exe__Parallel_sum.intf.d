examples/parallel_sum.mli:
