(* A parallel computation in lockstep: the paper's other application
   class (section 5) — parallel programs that broadcast with
   resilience degree 0 and simply restart on failure.

   Each of 8 workers owns a slice of a big array.  In every round,
   each worker broadcasts its partial sum; because broadcasts are
   totally ordered, every worker folds the partials in the same order
   and all workers derive the identical global sum without any
   further synchronisation — the "processes running in lockstep"
   programming model of section 2.2.

   Run with: dune exec examples/parallel_sum.exe *)

open Amoeba_sim
open Amoeba_core
open Amoeba_harness
module T = Types

let workers = 8
let elements = 80_000
let rounds = 3

let () =
  let cl = Cluster.create ~n:workers () in
  let data = Array.init elements (fun i -> (i * 37 mod 101) - 50) in
  let expected = Array.fold_left ( + ) 0 data in
  let agreed = ref [] in

  Cluster.spawn cl (fun () ->
      let g0 = Api.create_group (Cluster.flip cl 0) () in
      let addr = Api.group_address g0 in
      let groups =
        g0
        :: List.init (workers - 1) (fun i ->
               Result.get_ok (Api.join_group (Cluster.flip cl (i + 1)) addr))
      in
      List.iteri
        (fun w g ->
          Cluster.spawn cl (fun () ->
              (* This worker's slice. *)
              let lo = w * elements / workers in
              let hi = ((w + 1) * elements / workers) - 1 in
              for round = 1 to rounds do
                let partial = ref 0 in
                for i = lo to hi do
                  partial := !partial + data.(i)
                done;
                (* Charge the computation to this worker's simulated
                   CPU: 1 us per 100 elements on a 20-MHz 68030 is
                   generous but keeps the example fast. *)
                Amoeba_net.Machine.work (Cluster.machine cl w) ~layer:"user"
                  (Time.us ((hi - lo) / 100));
                ignore
                  (Api.send_to_group g
                     (Bytes.of_string (Printf.sprintf "%d %d" round !partial)));
                (* Collect this round's partials from the totally
                   ordered stream; everyone sees them in the same
                   order, so everyone folds the same total. *)
                let total = ref 0 in
                let seen = ref 0 in
                while !seen < workers do
                  match Api.receive_from_group g with
                  | T.Message { body; _ } ->
                      (match String.split_on_char ' ' (Bytes.to_string body) with
                      | [ r; p ] when int_of_string r = round ->
                          total := !total + int_of_string p;
                          incr seen
                      | _ -> ())
                  | _ -> ()
                done;
                if w = 0 then
                  Printf.printf "round %d: worker 0 computed global sum %d\n"
                    round !total;
                if round = rounds then agreed := !total :: !agreed
              done))
        groups);

  Cluster.run ~until:(Time.sec 60) cl;
  let all_equal = List.for_all (fun s -> s = expected) !agreed in
  Printf.printf "workers reporting: %d; all agree with the true sum %d: %b\n"
    (List.length !agreed) expected all_equal;
  print_endline "parallel_sum done"
