(* A fault-tolerant directory service, after Kaashoek, Tanenbaum and
   Verstoep, "Using group communication to implement a fault-tolerant
   directory service" (the paper's reference [18]).

   Three directory servers replicate a name -> address mapping through
   totally-ordered group communication (updates, r = 1) and answer
   client lookups over plain RPC.  A server that does not own a fresh
   enough copy can pass a request on with ForwardRequest.  We crash
   one server and show the directory keeps answering.

   Run with: dune exec examples/directory_service.exe *)

open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Amoeba_rpc
open Amoeba_harness
module T = Types

let n_servers = 3

type server = {
  name : string;
  group : Api.group;
  table : (string, string) Hashtbl.t;
  rpc_addr : Amoeba_flip.Addr.t;
}

(* Directory updates ride the group; every server applies them in the
   same order. *)
let apply_updates cl s =
  Cluster.spawn cl (fun () ->
      let rec loop () =
        (match Api.receive_from_group s.group with
        | T.Message { body; _ } -> (
            match String.split_on_char ' ' (Bytes.to_string body) with
            | [ "reg"; name; addr ] -> Hashtbl.replace s.table name addr
            | [ "unreg"; name ] -> Hashtbl.remove s.table name
            | _ -> ())
        | _ -> ());
        loop ()
      in
      loop ())

(* Lookups are cheap local reads over RPC; registrations go through
   the group so all replicas stay consistent. *)
let serve_rpc flip s =
  let handler req =
    match String.split_on_char ' ' (Bytes.to_string req) with
    | [ "lookup"; name ] ->
        Types_rpc.Reply
          (Bytes.of_string
             (match Hashtbl.find_opt s.table name with
             | Some a -> "found " ^ a
             | None -> "unknown"))
    | "reg" :: _ | "unreg" :: _ ->
        ignore (Api.send_to_group s.group req);
        Types_rpc.Reply (Bytes.of_string "ok")
    | _ -> Types_rpc.Reply (Bytes.of_string "bad request")
  in
  ignore (Rpc.serve flip ~addr:s.rpc_addr handler)

let () =
  let cl = Cluster.create ~n:(n_servers + 1) () in
  let client_machine = n_servers in
  Cluster.spawn cl (fun () ->
      let g0 = Api.create_group (Cluster.flip cl 0) ~resilience:1 () in
      let gaddr = Api.group_address g0 in
      let servers =
        List.init n_servers (fun i ->
            let flip = Cluster.flip cl i in
            let group =
              if i = 0 then g0
              else Result.get_ok (Api.join_group flip ~resilience:1 gaddr)
            in
            let s =
              {
                name = Printf.sprintf "dir%d" i;
                group;
                table = Hashtbl.create 32;
                rpc_addr = Amoeba_flip.Flip.fresh_addr flip;
              }
            in
            apply_updates cl s;
            serve_rpc flip s;
            s)
      in
      let client = Rpc.client (Cluster.flip cl client_machine) in
      let ask i msg =
        match
          Rpc.call client ~dst:(List.nth servers i).rpc_addr (Bytes.of_string msg)
        with
        | Ok r -> Bytes.to_string r
        | Error `Timeout -> "<timeout>"
        | Error `No_route -> "<no route>"
      in
      Printf.printf "register printer via dir0: %s\n" (ask 0 "reg printer cap:0xbeef");
      Printf.printf "register filesvr via dir1: %s\n" (ask 1 "reg filesvr cap:0xcafe");
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      Printf.printf "lookup printer at dir2: %s\n" (ask 2 "lookup printer");
      Printf.printf "lookup filesvr at dir0: %s\n" (ask 0 "lookup filesvr");

      print_endline "crashing dir0 (the sequencer)...";
      Machine.crash (Cluster.machine cl 0);
      (match Api.reset_group (List.nth servers 1).group ~min_members:2 with
      | Ok survivors -> Printf.printf "directory group rebuilt with %d servers\n" survivors
      | Error e -> Printf.printf "reset failed: %s\n" (T.error_to_string e));

      Printf.printf "register plotter via dir2: %s\n" (ask 2 "reg plotter cap:0xf00d");
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      Printf.printf "lookup plotter at dir1: %s\n" (ask 1 "lookup plotter");
      Printf.printf "lookup printer at dir1 (pre-crash data): %s\n"
        (ask 1 "lookup printer"));
  Cluster.run ~until:(Time.sec 30) cl;
  print_endline "directory_service done"
