(* A replicated key-value store: the paper's "replicated servers"
   application class (section 5).

   Three replicas apply totally-ordered updates (resilience degree 2:
   a SendToGroup returns only once at least two other kernels hold the
   message, so any two machines can crash without losing an
   acknowledged update).  We kill the sequencer's machine mid-run,
   rebuild the group with ResetGroup, and show that the surviving
   replicas agree and keep serving.

   Run with: dune exec examples/replicated_kv.exe *)

open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Amoeba_harness
module T = Types

type command =
  | Put of string * string
  | Del of string

let encode = function
  | Put (k, v) -> Bytes.of_string (Printf.sprintf "P %s %s" k v)
  | Del k -> Bytes.of_string (Printf.sprintf "D %s" k)

let decode b =
  match String.split_on_char ' ' (Bytes.to_string b) with
  | [ "P"; k; v ] -> Some (Put (k, v))
  | [ "D"; k ] -> Some (Del k)
  | _ -> None

type replica = {
  name : string;
  group : Api.group;
  store : (string, string) Hashtbl.t;
}

(* Applies the totally-ordered command stream to the local store.
   Because every replica sees the same stream, the stores never
   diverge — no further coordination needed. *)
let run_replica cl r =
  Cluster.spawn cl (fun () ->
      let rec loop () =
        (match Api.receive_from_group r.group with
        | T.Message { body; _ } -> (
            match decode body with
            | Some (Put (k, v)) -> Hashtbl.replace r.store k v
            | Some (Del k) -> Hashtbl.remove r.store k
            | None -> ())
        | T.Group_reset { incarnation; members; _ } ->
            Printf.printf "  [%s] group reset: era %d, members %s\n" r.name
              (T.incarnation_era incarnation)
              (String.concat "," (List.map string_of_int members))
        | _ -> ());
        loop ()
      in
      loop ())

let dump r =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.store []
    |> List.sort compare
    |> List.map (fun (k, v) -> k ^ "=" ^ v)
  in
  Printf.printf "  [%s] store: {%s}\n" r.name (String.concat "; " entries)

let put g k v = ignore (Api.send_to_group g (encode (Put (k, v))))

let () =
  let cl = Cluster.create ~n:3 () in
  Cluster.spawn cl (fun () ->
      let g0 = Api.create_group (Cluster.flip cl 0) ~resilience:2 () in
      let addr = Api.group_address g0 in
      let g1 = Result.get_ok (Api.join_group (Cluster.flip cl 1) ~resilience:2 addr) in
      let g2 = Result.get_ok (Api.join_group (Cluster.flip cl 2) ~resilience:2 addr) in
      let replicas =
        [
          { name = "r0"; group = g0; store = Hashtbl.create 16 };
          { name = "r1"; group = g1; store = Hashtbl.create 16 };
          { name = "r2"; group = g2; store = Hashtbl.create 16 };
        ]
      in
      List.iter (run_replica cl) replicas;

      print_endline "writing through replica 1...";
      put g1 "tuesday" "rain";
      put g1 "wednesday" "sun";
      put g2 "thursday" "fog";
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      List.iter dump replicas;

      print_endline "crashing the sequencer's machine (replica 0)...";
      Machine.crash (Cluster.machine cl 0);
      (match Api.reset_group g1 ~min_members:2 with
      | Ok n -> Printf.printf "reset ok: %d survivors\n" n
      | Error e -> Printf.printf "reset failed: %s\n" (T.error_to_string e));

      print_endline "writing through replica 2 after the crash...";
      put g2 "thursday" "storm";
      put g1 "friday" "clear";
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      List.iter dump (List.tl replicas);

      let s1 = Hashtbl.fold (fun k v acc -> (k, v) :: acc) (List.nth replicas 1).store [] in
      let s2 = Hashtbl.fold (fun k v acc -> (k, v) :: acc) (List.nth replicas 2).store [] in
      Printf.printf "survivors agree: %b\n"
        (List.sort compare s1 = List.sort compare s2));
  Cluster.run ~until:(Time.sec 30) cl;
  print_endline "replicated_kv done"
