open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Types
module Store = Amoeba_grouplib.Stable_store

type outcome = {
  seed : int;
  schedule : Fault.schedule;
  verdicts : Checker.verdict list;
  durability_checked : bool;
  sends_started : int;
  sends_completed : int;
  sends_aborted : int;
  nacks : int;
  retransmissions : int;
  solicitations : int;
  resets : int;
  frames_lost : int;
  partition_drops : int;
  queue_drops : int;  (** switch fabric tail drops (0 on the shared wire) *)
  rx_overflows : int;
  machine_restarts : int;
  duplicates_dropped : int;  (** kernel-refused duplicate/stale frames *)
  corrupt_dropped : int;  (** group-checksum rejections, summed over kernels *)
  reorders_absorbed : int;
  flip_checksum_drops : int;  (** header-corrupt frames dropped at FLIP *)
  oneway_drops : int;
  cond_losses : int;  (** Gilbert–Elliott losses *)
  dups_injected : int;
  corruptions_injected : int;
  batches_sent : int;  (** multi-op sends, summed over members *)
  ops_per_batch_avg : float;
  pipeline_depth_hwm : int;  (** max over members *)
  durable : bool;  (** members logged deliveries to a stable store *)
  power_cycles : int;  (** whole-cluster power losses that fired *)
  wal_appends : int;
  disk_writes_dropped : int;  (** I/O lost to dead machines *)
  wal_records_replayed : int;
  torn_tails_truncated : int;
  checksum_rejects : int;
}

let ok o = Checker.all_ok o.verdicts

(* Durability is only promised while failures stay within the
   resilience degree.  Partitions, one-way cuts and pauses can cut a
   minority (or a stalled sequencer) off with
   completed-but-undistributed messages — the "more than r failures"
   regime where the paper makes no guarantee — so any such schedule
   turns the durability check off.  Loss (uniform or bursty),
   duplication, jitter and corruption are exactly what the NACK
   machinery repairs, so they leave the check on. *)
let durability_applies ~resilience sched =
  Fault.crash_count sched <= resilience
  && not
       (List.exists
          (fun s ->
            match s.Fault.action with
            | Fault.Partition _ | Fault.Pause _ | Fault.Oneway _
            | Fault.Power_cycle_all _ ->
                true
            | _ -> false)
          sched)

(* WAL payloads are "<sender> <body>": decode one replay into the
   checker's view of a recovered log. *)
let wal_entries replay =
  List.filter_map
    (fun (seq, payload) ->
      let s = Bytes.to_string payload in
      match String.index_opt s ' ' with
      | None -> None
      | Some sp ->
          Option.map
            (fun sender ->
              {
                Checker.w_seq = seq;
                w_sender = sender;
                w_body = String.sub s (sp + 1) (String.length s - sp - 1);
              })
            (int_of_string_opt (String.sub s 0 sp)))
    replay.Store.records

let run ?(n = 4) ?(groups = 1) ?(resilience = 0) ?(send_method = Pb)
    ?(msgs = 4) ?(horizon = Time.ms 2000) ?schedule ?(net = Medium.clean)
    ?(fabric = Medium.Shared) ?(pipeline = 1) ?(ops_per_send = 1) ?disk ~seed
    () =
  if groups < 1 then invalid_arg "Chaos.run: groups < 1";
  let ops_per_send = max 1 ops_per_send in
  let sched =
    match schedule with
    | Some s -> s
    | None -> Fault.random ~seed ~n ~horizon ()
  in
  let cycles =
    List.length
      (List.filter
         (fun s ->
           match s.Fault.action with
           | Fault.Power_cycle_all _ -> true
           | _ -> false)
         sched)
  in
  if cycles > 1 then
    invalid_arg "Chaos.run: at most one Power_cycle_all per schedule";
  if cycles > 0 && disk = None then
    invalid_arg "Chaos.run: Power_cycle_all needs a disk (pass ~disk)";
  let has_cycle = cycles > 0 in
  let c =
    match disk with
    | None -> Cluster.create ~seed ~fabric ~n ()
    | Some d ->
        Cluster.create ~seed ~fabric
          ~cost:{ Cost_model.default with Cost_model.disk = d }
          ~n ()
  in
  let store =
    match disk with Some _ -> Some (Store.create ()) | None -> None
  in
  let eng = c.Cluster.engine in
  (* Persistent adversarial conditions for the whole active phase,
     cleared shortly after the horizon — before the flush sends — so
     tail-gap repair runs on a quiet net, the same contract the
     schedule's bounded bursts obey (every burst ends by
     horizon + 800ms). *)
  if net <> Medium.clean then begin
    Medium.set_conditions c.Cluster.net net;
    ignore
      (Engine.schedule eng ~after:(horizon + Time.sec 1) (fun () ->
           Medium.set_conditions c.Cluster.net Medium.clean))
  end;
  let crashed = Array.make n false in
  List.iter
    (fun s ->
      match s.Fault.action with
      | Fault.Crash i -> crashed.(i) <- true
      | _ -> ())
    sched;
  let handles = ref [] in
  (* Streams and completed sends are tagged with the group index, so
     the invariants can be checked independently per group: each group
     is its own total order — the partitioned-service contract. *)
  let streams = ref [] in
  let completed = Array.init groups (fun _ -> ref []) in
  (* Sends acknowledged after a power cycle land here instead:
     [completed] freezes at the cut into exactly "what the application
     was told before the power went", which is what the durability
     invariant is about. *)
  let post_completed = Array.init groups (fun _ -> ref []) in
  let cut_done = ref false in
  let fired_cycles = ref 0 in
  let recovered = ref [] in
  let started = ref 0 and n_ok = ref 0 and n_err = ref 0 in
  (* Application processes run *on* their machine ([Cluster.spawn_on]):
     a crash is fail-stop for the whole host, so collectors and senders
     are crash-stopped with it by the engine's process groups — no
     application-layer liveness checks needed.  The old application
     does not come back on restart; a reboot starts a fresh member. *)
  let label j i =
    if groups = 1 then Printf.sprintf "m%d" i else Printf.sprintf "g%d:m%d" j i
  in
  let add_stream j lbl full i g =
    handles := g :: !handles;
    let evs = ref [] in
    streams := (j, lbl, evs, full, i, !cut_done) :: !streams;
    Cluster.spawn_on c i (fun () ->
        let rec collect () =
          let e = Api.receive_from_group g in
          evs := e :: !evs;
          (* In durable mode every delivered message is logged —
             synchronously, so the record is on the platter before the
             next receive.  A crash mid-append loses the record but the
             log stays a prefix of the stream, which is all the
             recovery invariant asks. *)
          (match (e, store) with
          | Message { seq; sender; body }, Some st ->
              let sc = Api.storage_counters g in
              if
                Store.wal_append st (Cluster.machine c i)
                  ~log:("chaos:" ^ lbl) ~sync:true ~index:seq
                  (Bytes.of_string
                     (Printf.sprintf "%d %s" sender (Bytes.to_string body)))
              then begin
                sc.Api.wal_appends <- sc.Api.wal_appends + 1;
                sc.Api.wal_fsyncs <- sc.Api.wal_fsyncs + 1
              end
              else
                sc.Api.disk_writes_dropped <- sc.Api.disk_writes_dropped + 1
          | _ -> ());
          match e with Expelled -> () | _ -> collect ()
        in
        collect ())
  in
  (* [ops_per_send] only declares a batch to the kernel's cost and
     wire accounting — the body itself stays one opaque tagged string,
     so the checker's body matching is untouched. *)
  let record_send j mid body g =
    incr started;
    match Api.send_to_group ~ops:ops_per_send g (Bytes.of_string body) with
    | Ok _ ->
        incr n_ok;
        let dst = if !cut_done then post_completed.(j) else completed.(j) in
        dst := (mid, body) :: !dst
    | Error _ -> incr n_err
  in
  let spawn_sender j i g =
    let mid = (Api.get_info_group g).Api.my_mid in
    let gap = max (Time.ms 1) (horizon * 2 / 3 / max 1 msgs) in
    Cluster.spawn_on c i (fun () ->
        Engine.sleep eng (Time.ms 30 + (mid * Time.ms 7) + (j * Time.ms 3));
        for k = 1 to msgs do
          record_send j mid (Printf.sprintf "o%d.%d" mid k) g;
          Engine.sleep eng gap
        done)
  in
  (* A flush after the horizon (quiet net: loss bursts over,
     partitions healed) gives every member that silently lost the
     tail of the stream a later sequence number to notice the gap
     against, so NACK repair can run before the invariants are read. *)
  let spawn_flush j i g =
    let mid = (Api.get_info_group g).Api.my_mid in
    Cluster.spawn_on c i (fun () ->
        Engine.sleep eng (max 0 (horizon + Time.sec 3 - Engine.now eng));
        record_send j mid (Printf.sprintf "o%d.%d" mid (msgs + 1)) g)
  in
  let addrs = Array.make groups None in
  Cluster.spawn c (fun () ->
      (* Group [j]'s creator — and thus its sequencer — is machine
         [j mod n]: concurrent groups spread their sequencers like a
         shard map does, and all share the one wire. *)
      for j = 0 to groups - 1 do
        let creator = j mod n in
        let gj =
          Api.create_group (Cluster.flip c creator) ~resilience ~send_method
            ~auto_heal:true ~pipeline ()
        in
        let addr = Api.group_address gj in
        addrs.(j) <- Some addr;
        add_stream j (label j creator)
          ((not crashed.(creator)) && not has_cycle)
          creator gj;
        spawn_sender j creator gj;
        spawn_flush j creator gj;
        for k = 1 to n - 1 do
          let i = (creator + k) mod n in
          match
            Api.join_group (Cluster.flip c i) ~resilience ~send_method
              ~auto_heal:true ~pipeline addr
          with
          | Ok g ->
              add_stream j (label j i) ((not crashed.(i)) && not has_cycle) i g;
              spawn_sender j i g;
              spawn_flush j i g
          | Error _ ->
              (* A hostile enough net can defeat the join handshake's
                 bounded retries; the member simply never joins.  On a
                 quiet net setup joins always succeed. *)
              ()
        done
      done;
      (* Rebooted machines come back with fresh state and rejoin as
         new members; their streams are partial, never "full". *)
      (* The rejoin runs on the rebooted machine's fresh group: if the
         host crashes again mid-join, the joiner dies with it. *)
      let on_restart i =
        for j = 0 to groups - 1 do
          match addrs.(j) with
          | None -> ()
          | Some addr ->
              Cluster.spawn_on c i (fun () ->
                  match
                    Api.join_group (Cluster.flip c i) ~resilience ~send_method
                      ~auto_heal:true ~pipeline addr
                  with
                  | Ok g ->
                      add_stream j
                        (Printf.sprintf "%s+%d" (label j i)
                           (Machine.restarts (Cluster.machine c i)))
                        false i g
                  | Error _ -> ())
        done
      in
      (* Power-loss bracket.  At the cut, [completed] freezes (later
         acks go to [post_completed]) and every stream created so far
         is pre-cut.  When power returns, a root process replays every
         pre-cut log on its own machine (a real, costed sequential
         read), then re-forms each group from scratch — the machine
         whose disk yielded the longest log becomes the creator, the
         natural "most durable state wins" recovery rule — and each
         member sends one post-recovery message so redelivery of
         recovered bodies would be caught. *)
      let on_power_down () = cut_done := true in
      let on_power_up () =
        incr fired_cycles;
        Cluster.spawn c (fun () ->
            let st = match store with Some st -> st | None -> assert false in
            let pre =
              List.filter (fun (_, _, _, _, _, post) -> not post) !streams
            in
            let replays =
              List.map
                (fun (j, lbl, _, _, i, _) ->
                  let iv = Ivar.create () in
                  Cluster.spawn_on c i (fun () ->
                      Ivar.fill iv
                        (Store.wal_replay st (Cluster.machine c i)
                           ~log:("chaos:" ^ lbl)));
                  (j, lbl, i, iv))
                pre
            in
            let recs =
              List.map
                (fun (j, lbl, i, iv) ->
                  (j, lbl, i, wal_entries (Ivar.read eng iv)))
                replays
            in
            recovered := List.map (fun (j, lbl, _, es) -> (j, lbl, es)) recs;
            for j = 0 to groups - 1 do
              let mine = List.filter (fun (j', _, _, _) -> j' = j) recs in
              let creator, _ =
                List.fold_left
                  (fun (bi, bn) (_, _, i, es) ->
                    let ln = List.length es in
                    if ln > bn then (i, ln) else (bi, bn))
                  (j mod n, -1) mine
              in
              let gj =
                Api.create_group (Cluster.flip c creator) ~resilience
                  ~send_method ~auto_heal:true ~pipeline ()
              in
              let addr = Api.group_address gj in
              addrs.(j) <- Some addr;
              let plabel i = label j i ^ "+P" in
              let post_send i g =
                let mid = (Api.get_info_group g).Api.my_mid in
                Cluster.spawn_on c i (fun () ->
                    Engine.sleep eng (Time.ms 50 + (mid * Time.ms 7));
                    record_send j mid
                      (Printf.sprintf "o%d.%d" mid (msgs + 2))
                      g)
              in
              add_stream j (plabel creator) false creator gj;
              post_send creator gj;
              for k = 1 to n - 1 do
                let i = (creator + k) mod n in
                match
                  Api.join_group (Cluster.flip c i) ~resilience ~send_method
                    ~auto_heal:true ~pipeline addr
                with
                | Ok g ->
                    add_stream j (plabel i) false i g;
                    post_send i g
                | Error _ -> ()
              done
            done)
      in
      Fault.apply ~on_restart ~on_power_down ~on_power_up c sched);
  Cluster.run ~until:(horizon + Time.sec 8) c;
  let streams_of ?(post = false) j =
    List.filter (fun (j', _, _, _, _, p) -> j' = j && p = post) !streams
    |> List.rev_map (fun (_, label, evs, full, _, _) ->
           { Checker.label; events = List.rev !evs; full })
  in
  if Sys.getenv_opt "CHAOS_DEBUG" <> None then
    for j = 0 to groups - 1 do
      List.iter
        (fun s ->
          Printf.eprintf "%s:" s.Checker.label;
          List.iter
            (fun e ->
              match e with
              | Message { seq; sender; body } ->
                  Printf.eprintf " %d(m%d:%s)" seq sender (Bytes.to_string body)
              | Member_joined { seq; mid } ->
                  Printf.eprintf " %d(join%d)" seq mid
              | Member_left { seq; mid } -> Printf.eprintf " %d(left%d)" seq mid
              | Group_reset { seq; incarnation; _ } ->
                  Printf.eprintf " %d(reset@%d)" seq incarnation
              | Expelled -> Printf.eprintf " EXPELLED")
            s.Checker.events;
          Printf.eprintf "\n")
        (streams_of j @ streams_of ~post:true j)
    done;
  let dur_applies = durability_applies ~resilience sched in
  (* One independent checker run per group: each group promises its
     own total order, never anything across groups. *)
  let verdicts =
    List.concat
      (List.init groups (fun j ->
           let pre = streams_of j in
           let base =
             Checker.run ~durability_applies:dur_applies ~streams:pre
               ~completed:!(completed.(j)) ()
           in
           let extra =
             match store with
             | None -> []
             | Some st ->
                 if has_cycle then (
                   (* The four classic invariants hold within each
                      epoch — the post-recovery group is a new total
                      order, so it gets its own run — and I5 bridges
                      the cut.  Post streams are never "full" (every
                      machine rebooted) so the in-epoch durability
                      check is vacuous there; I5's clause (b) is the
                      real durability claim for this run. *)
                   let post = streams_of ~post:true j in
                   let postv =
                     Checker.run ~durability_applies:false ~streams:post
                       ~completed:!(post_completed.(j)) ()
                     |> List.map (fun v ->
                            {
                              v with
                              Checker.invariant = "post:" ^ v.Checker.invariant;
                            })
                   in
                   let rec_j =
                     List.filter_map
                       (fun (j', l, es) -> if j' = j then Some (l, es) else None)
                       !recovered
                   in
                   postv
                   @ [
                       Checker.durable_recovery ~pre ~recovered:rec_j
                         ~completed:!(completed.(j)) ~post;
                     ])
                 else
                   (* No power loss, but the disks must still agree
                      with the streams: every log an exact prefix of
                      its member's deliveries, nothing acknowledged
                      missing inside the logged ranges. *)
                   let rec_j =
                     List.filter
                       (fun (j', _, _, _, _, p) -> j' = j && not p)
                       !streams
                     |> List.rev_map (fun (_, lbl, _, _, i, _) ->
                            ( lbl,
                              wal_entries
                                (Store.wal_read st
                                   ~machine_name:
                                     (Machine.name (Cluster.machine c i))
                                   ~log:("chaos:" ^ lbl)) ))
                   in
                   [
                     Checker.durable_recovery ~pre ~recovered:rec_j
                       ~completed:!(completed.(j)) ~post:[];
                   ]
           in
           let vs = base @ extra in
           if groups = 1 then vs
           else
             List.map
               (fun v ->
                 {
                   v with
                   Checker.invariant = Printf.sprintf "g%d:%s" j v.Checker.invariant;
                 })
               vs))
  in
  let sum f =
    List.fold_left (fun acc g -> acc + f (Api.get_info_group g)) 0 !handles
  in
  {
    seed;
    schedule = sched;
    verdicts;
    durability_checked = dur_applies;
    sends_started = !started;
    sends_completed = !n_ok;
    sends_aborted = !n_err;
    nacks = sum (fun i -> i.Api.nacks_sent);
    retransmissions = sum (fun i -> i.Api.retransmissions);
    solicitations = sum (fun i -> i.Api.status_solicitations);
    resets = sum (fun i -> i.Api.resets_survived);
    frames_lost = Medium.frames_lost c.Cluster.net;
    partition_drops = Medium.partition_drops c.Cluster.net;
    queue_drops = Medium.queue_drops c.Cluster.net;
    rx_overflows =
      Array.fold_left
        (fun acc m -> acc + Nic.rx_dropped (Machine.nic m))
        0 c.Cluster.machines;
    machine_restarts =
      Array.fold_left
        (fun acc m -> acc + Machine.restarts m)
        0 c.Cluster.machines;
    duplicates_dropped = sum (fun i -> i.Api.duplicates_dropped);
    corrupt_dropped = sum (fun i -> i.Api.corrupt_dropped);
    reorders_absorbed = sum (fun i -> i.Api.reorders_absorbed);
    flip_checksum_drops =
      (let acc = ref 0 in
       for i = 0 to n - 1 do
         acc := !acc + Amoeba_flip.Flip.corrupt_dropped (Cluster.flip c i)
       done;
       !acc);
    oneway_drops = Medium.oneway_drops c.Cluster.net;
    cond_losses = Medium.cond_losses c.Cluster.net;
    dups_injected = Medium.duplicates_injected c.Cluster.net;
    corruptions_injected = Medium.corruptions_injected c.Cluster.net;
    batches_sent = sum (fun i -> i.Api.batches_sent);
    ops_per_batch_avg =
      (* batched-op totals reconstructed from each member's average *)
      (let b = ref 0 and ops = ref 0. in
       List.iter
         (fun g ->
           let i = Api.get_info_group g in
           b := !b + i.Api.batches_sent;
           ops :=
             !ops +. (float_of_int i.Api.batches_sent *. i.Api.ops_per_batch_avg))
         !handles;
       if !b = 0 then 1. else !ops /. float_of_int !b);
    pipeline_depth_hwm =
      List.fold_left
        (fun acc g -> max acc (Api.get_info_group g).Api.pipeline_depth_hwm)
        0 !handles;
    durable = store <> None;
    power_cycles = !fired_cycles;
    wal_appends =
      (match store with
      | Some st -> (Store.counters st).Store.wal_appends
      | None -> 0);
    disk_writes_dropped =
      (match store with
      | Some st -> (Store.counters st).Store.writes_dropped
      | None -> 0);
    wal_records_replayed =
      (match store with
      | Some st -> (Store.counters st).Store.records_replayed
      | None -> 0);
    torn_tails_truncated =
      (match store with
      | Some st -> (Store.counters st).Store.torn_tails
      | None -> 0);
    checksum_rejects =
      (match store with
      | Some st -> (Store.counters st).Store.checksum_rejects
      | None -> 0);
  }

let print_report o =
  Printf.printf "chaos run: seed %d\n" o.seed;
  Printf.printf "schedule:  %s\n"
    (if o.schedule = [] then "(none)" else Fault.to_string o.schedule);
  Format.printf "%a" Fault.pp o.schedule;
  Printf.printf "invariants:\n";
  List.iter
    (fun v -> Format.printf "  %a@." Checker.pp_verdict v)
    o.verdicts;
  Printf.printf "sends:     %d started, %d completed, %d aborted, %d stuck\n"
    o.sends_started o.sends_completed o.sends_aborted
    (o.sends_started - o.sends_completed - o.sends_aborted);
  Printf.printf
    "recovery:  %d nacks, %d retransmissions, %d solicitations, %d resets \
     survived, %d reboots\n"
    o.nacks o.retransmissions o.solicitations o.resets o.machine_restarts;
  Printf.printf "network:   %d frames lost, %d partition drops, %d rx overflows\n"
    o.frames_lost o.partition_drops o.rx_overflows;
  if o.queue_drops > 0 then
    Printf.printf "fabric:    %d switch queue tail drops\n" o.queue_drops;
  Printf.printf
    "adversary: %d burst losses, %d oneway drops, %d dups injected, %d \
     corruptions injected\n"
    o.cond_losses o.oneway_drops o.dups_injected o.corruptions_injected;
  Printf.printf
    "absorbed:  %d duplicates dropped, %d corrupt dropped (%d at flip), %d \
     reorders absorbed\n"
    o.duplicates_dropped o.corrupt_dropped o.flip_checksum_drops
    o.reorders_absorbed;
  if o.batches_sent > 0 || o.pipeline_depth_hwm > 1 then
    Printf.printf
      "batching:  %d batched sends, %.1f ops/batch avg, pipeline hwm %d\n"
      o.batches_sent o.ops_per_batch_avg o.pipeline_depth_hwm;
  if o.durable then begin
    Printf.printf
      "storage:   %d wal appends, %d writes lost to dead machines, %d power \
       cycle%s\n"
      o.wal_appends o.disk_writes_dropped o.power_cycles
      (if o.power_cycles = 1 then "" else "s");
    if o.power_cycles > 0 then
      Printf.printf
        "replayed:  %d records recovered, %d torn tails truncated, %d \
         checksum rejects\n"
        o.wal_records_replayed o.torn_tails_truncated o.checksum_rejects
  end;
  if not o.durability_checked then
    Printf.printf "note:      durability not applicable to this schedule\n";
  Printf.printf "verdict:   %s\n" (if ok o then "PASS" else "FAIL")
