open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Types

type outcome = {
  seed : int;
  schedule : Fault.schedule;
  verdicts : Checker.verdict list;
  durability_checked : bool;
  sends_started : int;
  sends_completed : int;
  sends_aborted : int;
  nacks : int;
  retransmissions : int;
  solicitations : int;
  resets : int;
  frames_lost : int;
  partition_drops : int;
  rx_overflows : int;
  machine_restarts : int;
  duplicates_dropped : int;  (** kernel-refused duplicate/stale frames *)
  corrupt_dropped : int;  (** group-checksum rejections, summed over kernels *)
  reorders_absorbed : int;
  flip_checksum_drops : int;  (** header-corrupt frames dropped at FLIP *)
  oneway_drops : int;
  cond_losses : int;  (** Gilbert–Elliott losses *)
  dups_injected : int;
  corruptions_injected : int;
  batches_sent : int;  (** multi-op sends, summed over members *)
  ops_per_batch_avg : float;
  pipeline_depth_hwm : int;  (** max over members *)
}

let ok o = Checker.all_ok o.verdicts

(* Durability is only promised while failures stay within the
   resilience degree.  Partitions, one-way cuts and pauses can cut a
   minority (or a stalled sequencer) off with
   completed-but-undistributed messages — the "more than r failures"
   regime where the paper makes no guarantee — so any such schedule
   turns the durability check off.  Loss (uniform or bursty),
   duplication, jitter and corruption are exactly what the NACK
   machinery repairs, so they leave the check on. *)
let durability_applies ~resilience sched =
  Fault.crash_count sched <= resilience
  && not
       (List.exists
          (fun s ->
            match s.Fault.action with
            | Fault.Partition _ | Fault.Pause _ | Fault.Oneway _ -> true
            | _ -> false)
          sched)

let run ?(n = 4) ?(groups = 1) ?(resilience = 0) ?(send_method = Pb)
    ?(msgs = 4) ?(horizon = Time.ms 2000) ?schedule ?(net = Ether.clean)
    ?(pipeline = 1) ?(ops_per_send = 1) ~seed () =
  if groups < 1 then invalid_arg "Chaos.run: groups < 1";
  let ops_per_send = max 1 ops_per_send in
  let sched =
    match schedule with
    | Some s -> s
    | None -> Fault.random ~seed ~n ~horizon ()
  in
  let c = Cluster.create ~seed ~n () in
  let eng = c.Cluster.engine in
  (* Persistent adversarial conditions for the whole active phase,
     cleared shortly after the horizon — before the flush sends — so
     tail-gap repair runs on a quiet net, the same contract the
     schedule's bounded bursts obey (every burst ends by
     horizon + 800ms). *)
  if net <> Ether.clean then begin
    Ether.set_conditions c.Cluster.ether net;
    ignore
      (Engine.schedule eng ~after:(horizon + Time.sec 1) (fun () ->
           Ether.set_conditions c.Cluster.ether Ether.clean))
  end;
  let crashed = Array.make n false in
  List.iter
    (fun s ->
      match s.Fault.action with
      | Fault.Crash i -> crashed.(i) <- true
      | _ -> ())
    sched;
  let handles = ref [] in
  (* Streams and completed sends are tagged with the group index, so
     the invariants can be checked independently per group: each group
     is its own total order — the partitioned-service contract. *)
  let streams = ref [] in
  let completed = Array.init groups (fun _ -> ref []) in
  let started = ref 0 and n_ok = ref 0 and n_err = ref 0 in
  (* Application processes run *on* their machine ([Cluster.spawn_on]):
     a crash is fail-stop for the whole host, so collectors and senders
     are crash-stopped with it by the engine's process groups — no
     application-layer liveness checks needed.  The old application
     does not come back on restart; a reboot starts a fresh member. *)
  let label j i =
    if groups = 1 then Printf.sprintf "m%d" i else Printf.sprintf "g%d:m%d" j i
  in
  let add_stream j lbl full i g =
    handles := g :: !handles;
    let evs = ref [] in
    streams := (j, lbl, evs, full) :: !streams;
    Cluster.spawn_on c i (fun () ->
        let rec collect () =
          let e = Api.receive_from_group g in
          evs := e :: !evs;
          match e with Expelled -> () | _ -> collect ()
        in
        collect ())
  in
  (* [ops_per_send] only declares a batch to the kernel's cost and
     wire accounting — the body itself stays one opaque tagged string,
     so the checker's body matching is untouched. *)
  let record_send j mid body g =
    incr started;
    match Api.send_to_group ~ops:ops_per_send g (Bytes.of_string body) with
    | Ok _ ->
        incr n_ok;
        completed.(j) := (mid, body) :: !(completed.(j))
    | Error _ -> incr n_err
  in
  let spawn_sender j i g =
    let mid = (Api.get_info_group g).Api.my_mid in
    let gap = max (Time.ms 1) (horizon * 2 / 3 / max 1 msgs) in
    Cluster.spawn_on c i (fun () ->
        Engine.sleep eng (Time.ms 30 + (mid * Time.ms 7) + (j * Time.ms 3));
        for k = 1 to msgs do
          record_send j mid (Printf.sprintf "o%d.%d" mid k) g;
          Engine.sleep eng gap
        done)
  in
  (* A flush after the horizon (quiet net: loss bursts over,
     partitions healed) gives every member that silently lost the
     tail of the stream a later sequence number to notice the gap
     against, so NACK repair can run before the invariants are read. *)
  let spawn_flush j i g =
    let mid = (Api.get_info_group g).Api.my_mid in
    Cluster.spawn_on c i (fun () ->
        Engine.sleep eng (max 0 (horizon + Time.sec 3 - Engine.now eng));
        record_send j mid (Printf.sprintf "o%d.%d" mid (msgs + 1)) g)
  in
  let addrs = Array.make groups None in
  Cluster.spawn c (fun () ->
      (* Group [j]'s creator — and thus its sequencer — is machine
         [j mod n]: concurrent groups spread their sequencers like a
         shard map does, and all share the one wire. *)
      for j = 0 to groups - 1 do
        let creator = j mod n in
        let gj =
          Api.create_group (Cluster.flip c creator) ~resilience ~send_method
            ~auto_heal:true ~pipeline ()
        in
        let addr = Api.group_address gj in
        addrs.(j) <- Some addr;
        add_stream j (label j creator) (not crashed.(creator)) creator gj;
        spawn_sender j creator gj;
        spawn_flush j creator gj;
        for k = 1 to n - 1 do
          let i = (creator + k) mod n in
          match
            Api.join_group (Cluster.flip c i) ~resilience ~send_method
              ~auto_heal:true ~pipeline addr
          with
          | Ok g ->
              add_stream j (label j i) (not crashed.(i)) i g;
              spawn_sender j i g;
              spawn_flush j i g
          | Error _ ->
              (* A hostile enough net can defeat the join handshake's
                 bounded retries; the member simply never joins.  On a
                 quiet net setup joins always succeed. *)
              ()
        done
      done;
      (* Rebooted machines come back with fresh state and rejoin as
         new members; their streams are partial, never "full". *)
      (* The rejoin runs on the rebooted machine's fresh group: if the
         host crashes again mid-join, the joiner dies with it. *)
      let on_restart i =
        for j = 0 to groups - 1 do
          match addrs.(j) with
          | None -> ()
          | Some addr ->
              Cluster.spawn_on c i (fun () ->
                  match
                    Api.join_group (Cluster.flip c i) ~resilience ~send_method
                      ~auto_heal:true ~pipeline addr
                  with
                  | Ok g ->
                      add_stream j
                        (Printf.sprintf "%s+%d" (label j i)
                           (Machine.restarts (Cluster.machine c i)))
                        false i g
                  | Error _ -> ())
        done
      in
      Fault.apply ~on_restart c sched);
  Cluster.run ~until:(horizon + Time.sec 8) c;
  let streams_of j =
    List.filter (fun (j', _, _, _) -> j' = j) !streams
    |> List.rev_map (fun (_, label, evs, full) ->
           { Checker.label; events = List.rev !evs; full })
  in
  if Sys.getenv_opt "CHAOS_DEBUG" <> None then
    for j = 0 to groups - 1 do
      List.iter
        (fun s ->
          Printf.eprintf "%s:" s.Checker.label;
          List.iter
            (fun e ->
              match e with
              | Message { seq; sender; body } ->
                  Printf.eprintf " %d(m%d:%s)" seq sender (Bytes.to_string body)
              | Member_joined { seq; mid } ->
                  Printf.eprintf " %d(join%d)" seq mid
              | Member_left { seq; mid } -> Printf.eprintf " %d(left%d)" seq mid
              | Group_reset { seq; incarnation; _ } ->
                  Printf.eprintf " %d(reset@%d)" seq incarnation
              | Expelled -> Printf.eprintf " EXPELLED")
            s.Checker.events;
          Printf.eprintf "\n")
        (streams_of j)
    done;
  let dur_applies = durability_applies ~resilience sched in
  (* One independent checker run per group: each group promises its
     own total order, never anything across groups. *)
  let verdicts =
    List.concat
      (List.init groups (fun j ->
           let vs =
             Checker.run ~durability_applies:dur_applies ~streams:(streams_of j)
               ~completed:!(completed.(j)) ()
           in
           if groups = 1 then vs
           else
             List.map
               (fun v ->
                 {
                   v with
                   Checker.invariant = Printf.sprintf "g%d:%s" j v.Checker.invariant;
                 })
               vs))
  in
  let sum f =
    List.fold_left (fun acc g -> acc + f (Api.get_info_group g)) 0 !handles
  in
  {
    seed;
    schedule = sched;
    verdicts;
    durability_checked = dur_applies;
    sends_started = !started;
    sends_completed = !n_ok;
    sends_aborted = !n_err;
    nacks = sum (fun i -> i.Api.nacks_sent);
    retransmissions = sum (fun i -> i.Api.retransmissions);
    solicitations = sum (fun i -> i.Api.status_solicitations);
    resets = sum (fun i -> i.Api.resets_survived);
    frames_lost = Ether.frames_lost c.Cluster.ether;
    partition_drops = Ether.partition_drops c.Cluster.ether;
    rx_overflows =
      Array.fold_left
        (fun acc m -> acc + Nic.rx_dropped (Machine.nic m))
        0 c.Cluster.machines;
    machine_restarts =
      Array.fold_left
        (fun acc m -> acc + Machine.restarts m)
        0 c.Cluster.machines;
    duplicates_dropped = sum (fun i -> i.Api.duplicates_dropped);
    corrupt_dropped = sum (fun i -> i.Api.corrupt_dropped);
    reorders_absorbed = sum (fun i -> i.Api.reorders_absorbed);
    flip_checksum_drops =
      (let acc = ref 0 in
       for i = 0 to n - 1 do
         acc := !acc + Amoeba_flip.Flip.corrupt_dropped (Cluster.flip c i)
       done;
       !acc);
    oneway_drops = Ether.oneway_drops c.Cluster.ether;
    cond_losses = Ether.cond_losses c.Cluster.ether;
    dups_injected = Ether.duplicates_injected c.Cluster.ether;
    corruptions_injected = Ether.corruptions_injected c.Cluster.ether;
    batches_sent = sum (fun i -> i.Api.batches_sent);
    ops_per_batch_avg =
      (* batched-op totals reconstructed from each member's average *)
      (let b = ref 0 and ops = ref 0. in
       List.iter
         (fun g ->
           let i = Api.get_info_group g in
           b := !b + i.Api.batches_sent;
           ops :=
             !ops +. (float_of_int i.Api.batches_sent *. i.Api.ops_per_batch_avg))
         !handles;
       if !b = 0 then 1. else !ops /. float_of_int !b);
    pipeline_depth_hwm =
      List.fold_left
        (fun acc g -> max acc (Api.get_info_group g).Api.pipeline_depth_hwm)
        0 !handles;
  }

let print_report o =
  Printf.printf "chaos run: seed %d\n" o.seed;
  Printf.printf "schedule:  %s\n"
    (if o.schedule = [] then "(none)" else Fault.to_string o.schedule);
  Format.printf "%a" Fault.pp o.schedule;
  Printf.printf "invariants:\n";
  List.iter
    (fun v -> Format.printf "  %a@." Checker.pp_verdict v)
    o.verdicts;
  Printf.printf "sends:     %d started, %d completed, %d aborted, %d stuck\n"
    o.sends_started o.sends_completed o.sends_aborted
    (o.sends_started - o.sends_completed - o.sends_aborted);
  Printf.printf
    "recovery:  %d nacks, %d retransmissions, %d solicitations, %d resets \
     survived, %d reboots\n"
    o.nacks o.retransmissions o.solicitations o.resets o.machine_restarts;
  Printf.printf "network:   %d frames lost, %d partition drops, %d rx overflows\n"
    o.frames_lost o.partition_drops o.rx_overflows;
  Printf.printf
    "adversary: %d burst losses, %d oneway drops, %d dups injected, %d \
     corruptions injected\n"
    o.cond_losses o.oneway_drops o.dups_injected o.corruptions_injected;
  Printf.printf
    "absorbed:  %d duplicates dropped, %d corrupt dropped (%d at flip), %d \
     reorders absorbed\n"
    o.duplicates_dropped o.corrupt_dropped o.flip_checksum_drops
    o.reorders_absorbed;
  if o.batches_sent > 0 || o.pipeline_depth_hwm > 1 then
    Printf.printf
      "batching:  %d batched sends, %.1f ops/batch avg, pipeline hwm %d\n"
      o.batches_sent o.ops_per_batch_avg o.pipeline_depth_hwm;
  if not o.durability_checked then
    Printf.printf "note:      durability not applicable to this schedule\n";
  Printf.printf "verdict:   %s\n" (if ok o then "PASS" else "FAIL")
