(** Seeded chaos runs: a workload of concurrent group sends under a
    {!Fault} schedule, with the {!Checker} invariants evaluated over
    every member's delivery log afterwards.

    Everything is deterministic in [seed]: the cluster RNG, the
    workload pacing and (when no explicit schedule is given) the fault
    schedule itself, so any failing run — from the swarm test or the
    [chaos] CLI — replays exactly. *)

open Amoeba_sim
open Amoeba_core

type outcome = {
  seed : int;
  schedule : Fault.schedule;
  verdicts : Checker.verdict list;
  durability_checked : bool;
      (** false when the schedule exceeds the resilience degree *)
  sends_started : int;
  sends_completed : int;
  sends_aborted : int;  (** sends that returned an error *)
  nacks : int;
  retransmissions : int;
  solicitations : int;
  resets : int;  (** recovery incarnations installed, summed over members *)
  frames_lost : int;  (** frames dropped by loss injection *)
  partition_drops : int;  (** receptions suppressed by partitions *)
  queue_drops : int;
      (** switch-fabric tail drops (ingress + egress + uplink FIFOs);
          always 0 on the shared wire *)
  rx_overflows : int;  (** frames lost to full receive rings *)
  machine_restarts : int;
  duplicates_dropped : int;
      (** duplicate/stale frames refused by kernel receive paths *)
  corrupt_dropped : int;
      (** group-checksum rejections of damaged payloads, over kernels *)
  reorders_absorbed : int;  (** late frames slotted instead of refused *)
  flip_checksum_drops : int;
      (** header-corrupt frames dropped whole at the FLIP layer *)
  oneway_drops : int;  (** receptions suppressed by one-way cuts *)
  cond_losses : int;  (** frames lost to Gilbert–Elliott bursts *)
  dups_injected : int;
  corruptions_injected : int;
  batches_sent : int;  (** multi-op sends, summed over members *)
  ops_per_batch_avg : float;  (** mean ops per batched send; 1.0 if none *)
  pipeline_depth_hwm : int;
      (** most unacknowledged rounds any member had in flight *)
  durable : bool;
      (** a disk model was installed and members logged deliveries *)
  power_cycles : int;  (** whole-cluster power losses that fired *)
  wal_appends : int;  (** records logged across all member WALs *)
  disk_writes_dropped : int;  (** I/O lost to dead machines *)
  wal_records_replayed : int;  (** recovered after the power cycle *)
  torn_tails_truncated : int;  (** incomplete tail records dropped by replay *)
  checksum_rejects : int;  (** damaged records (and suffixes) refused *)
}

val run :
  ?n:int ->
  ?groups:int ->
  ?resilience:int ->
  ?send_method:Types.send_method ->
  ?msgs:int ->
  ?horizon:Time.t ->
  ?schedule:Fault.schedule ->
  ?net:Amoeba_net.Ether.conditions ->
  ?fabric:Amoeba_net.Medium.spec ->
  ?pipeline:int ->
  ?ops_per_send:int ->
  ?disk:Amoeba_net.Cost_model.disk ->
  seed:int ->
  unit ->
  outcome
(** [run ~seed ()] builds an [n]-machine cluster (default 4), forms
    [groups] concurrent groups (default 1) with [auto_heal] on — group
    [j] created by machine [j mod n], every machine a member of every
    group, all sharing the one Ethernet — has every member send [msgs]
    tagged messages per group over the first 2/3 of [horizon] (default
    2s) plus one flush message after the faults end, applies the
    schedule (default: {!Fault.random} from [seed]), runs 8 simulated
    seconds past the horizon so recovery can settle, and checks all
    four invariants {e independently per group} (verdicts are prefixed
    ["g<j>:"] when [groups > 1]): each group is its own total order,
    and traffic on one group must never leak into, duplicate within,
    or reorder another.

    [net] installs persistent link conditions (bursty loss,
    duplication, jitter, corruption) for the whole active phase; they
    are cleared one second after the horizon so tail repair and the
    flush run on a quiet net, like the schedule's bounded bursts.

    [fabric] (default [Medium.Shared]) selects the medium the cluster
    is built on: the paper's shared CSMA/CD wire or a switched
    full-duplex fabric ([Medium.Switched p]).  Schedules, conditions
    and invariants run unchanged on either.

    [pipeline] (default 1) sets every kernel's in-flight round depth;
    [ops_per_send] (default 1) declares each send as a batch of that
    many ops to the kernel's cost accounting — the body stays one
    opaque tagged string, so the checker still matches completed sends
    against delivered bodies.  Together they exercise the invariants
    with batching and pipelining on.

    [disk] turns on durable mode: the cluster's cost model uses that
    disk profile, every member synchronously logs each delivered
    message to a per-stream WAL in a shared
    {!Amoeba_grouplib.Stable_store}, and the run is additionally
    checked with {!Checker.durable_recovery} — on a healthy run the
    disks must agree with the streams; after a [Fault.Power_cycle_all]
    (which {e requires} [disk], at most one per schedule) the pre-cut
    logs are replayed with real I/O cost when power returns, each
    group is re-formed with the longest-log machine as creator, every
    member sends one post-recovery message, and the classic invariants
    run separately on the pre- and post-cut epochs (post verdicts
    prefixed ["post:"]) with I5 bridging them. *)

val ok : outcome -> bool

val durability_applies : resilience:int -> Fault.schedule -> bool
(** Whether a schedule stays within the regime where completed sends
    are guaranteed durable: at most [resilience] crashes and no
    partitions, one-way cuts, pauses or whole-cluster power cycles
    (any can sever a member — or a stalled sequencer — holding
    completed messages the survivors discard; a power cycle downs
    everyone, which is I5's regime, not I3's).  Loss, duplication,
    jitter and corruption do not turn the check off: repairing those
    is the protocol's whole claim. *)

val print_report : outcome -> unit
