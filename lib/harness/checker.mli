(** Executable invariants over per-member delivery logs.

    Each member of a group yields a {!stream}: the ordered list of
    events its application received, one stream per kernel lifetime
    (a member that is expelled and rejoins contributes two streams).
    The four invariants are the correctness claims of the paper's
    protocol — total order, exactly-once gap-free delivery, durability
    of completed sends up to the resilience degree, and monotone
    recovery incarnations. *)

open Amoeba_core.Types

type stream = {
  label : string;  (** e.g. ["m2"], or ["m2+"] for a rejoin *)
  events : event list;  (** in the order the application received them *)
  full : bool;
      (** member from group creation to the end of the run, never
          crashed or restarted — durability must hold for it.
          Streams that end in [Expelled] are excluded automatically. *)
}

type verdict = { invariant : string; ok : bool; detail : string }

val total_order : stream list -> verdict
(** I1: any two members that both delivered sequence number [s]
    delivered the same event at [s].  Expelled streams are excluded —
    with r=0 their tentative tail is legitimately discarded by a
    reset. *)

val no_dup_no_skip : stream list -> verdict
(** I2: per stream, sequence numbers are consecutive, no body is
    delivered twice, and per-origin bodies of the form ["o<i>.<k>"]
    arrive with strictly increasing [k]. *)

val durability : streams:stream list -> completed:(mid * string) list -> verdict
(** I3: every [completed] send (origin, body) appears in every full,
    non-expelled stream.  Only meaningful when the fault schedule is
    within the resilience degree — see {!run}'s [durability_applies]. *)

val monotone_incarnations : stream list -> verdict
(** I4: group-reset incarnation numbers are strictly increasing per
    stream. *)

type wal_entry = { w_seq : int; w_sender : mid; w_body : string }
(** One record recovered from a machine's WAL: the delivered message
    it logged. *)

val durable_recovery :
  pre:stream list ->
  recovered:(string * wal_entry list) list ->
  completed:(mid * string) list ->
  post:stream list ->
  verdict
(** I5 — durability across restart, for a whole-cluster power loss.
    [pre] are the delivery streams up to the cut; [recovered] maps
    each pre-cut stream's label to what its machine's WAL yielded
    after replay; [completed] are the sends acknowledged before the
    power went (snapshotted at power-down); [post] are the streams of
    the re-formed groups.  Checks that (a) every recovered log is an
    exact prefix of its own stream's message subsequence — no
    divergence, duplication, skips or phantoms in what the disks
    returned; (b) no acknowledged send inside some log's recovered
    range is missing from every disk — losses are only legal beyond
    the durable frontier the fsync policy bounds; (c) no recovered
    body is delivered again after recovery.  Unlike I3 this invariant
    applies regardless of crash counts: total power loss is exactly
    what it is for. *)

type owner = {
  ow_host : int;  (** machine index holding a replica of the shard *)
  ow_group : string;  (** printed group address the replica serves *)
  ow_live : bool;  (** machine alive at the end of the run *)
  ow_retired : bool;  (** replica retired by a migration cutover *)
}
(** One replica's claim on a shard at the end of a run — the
    migration checker's view of who believes they own the shard. *)

val migration_safety :
  owners:owner list ->
  streams:stream list ->
  completed:(mid * string) list ->
  verdict
(** I6 — migration safety.  After a live shard migration (completed,
    rolled back, or interrupted by crashes / power loss), checks that
    (a) {e exactly one owner}: at least one live non-retired replica
    serves the shard and all of them serve the same group — no
    orphaned shard, no split brain across the handoff; (b) {e no
    committed op lost}: every acknowledged write was sequenced in at
    least one replica stream (source or destination, live or not);
    (c) {e no dup through the dual-routing window}: no acknowledged
    write is sequenced twice within any single stream — uid-tagged
    idempotent retries must have deduplicated the overlap.  [streams]
    should include the retired source replicas' streams so (b) can
    credit writes that never crossed the cutover. *)

val run :
  ?durability_applies:bool ->
  streams:stream list ->
  completed:(mid * string) list ->
  unit ->
  verdict list
(** All four, with durability replaced by a vacuous pass (detail
    ["not applicable"]) when [durability_applies] is false — i.e. when
    the schedule crashed more than [r] machines, partitioned the net
    or paused a CPU, cases in which the paper's method makes no
    delivery promise to expelled minorities. *)

val all_ok : verdict list -> bool

val pp_verdict : Format.formatter -> verdict -> unit
