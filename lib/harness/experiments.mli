(** Experiment runners used by the benchmark harness and by the
    calibration tests.  Each runner builds a fresh simulated testbed
    (matching the paper's: MC68030s on one 10 Mbit/s Ethernet), runs
    the workload, and returns the measurements the paper reports. *)

open Amoeba_core

type delay_result = {
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  samples : int;
}

val broadcast_delay :
  ?cost:Amoeba_net.Cost_model.t ->
  ?samples:int ->
  ?resilience:int ->
  ?net:Amoeba_net.Ether.conditions ->
  ?fabric:Amoeba_net.Medium.spec ->
  n:int ->
  size:int ->
  send_method:Types.send_method ->
  unit ->
  delay_result
(** Figures 1, 3 and 7: one member (on a different machine than the
    sequencer when [n > 1]) broadcasts continuously; every member
    receives.  Reports the SendToGroup delay.  [net] installs
    persistent link conditions for the measurement loop (setup stays
    clean); a send that exhausts its retries under injected loss is
    dropped from the sample set rather than failing the run.  [fabric]
    selects the medium (shared wire by default). *)

type throughput_result = {
  msgs_per_sec : float;
  rx_dropped : int;  (** receive-ring overflows anywhere in the group *)
  retransmissions : int;
  meaningful : bool;
      (** false when drops forced retransmission stalls — the
          configurations the paper could not measure meaningfully *)
}

val group_throughput :
  ?cost:Amoeba_net.Cost_model.t ->
  ?duration_ms:int ->
  ?resilience:int ->
  ?history:int ->
  n:int ->
  size:int ->
  send_method:Types.send_method ->
  unit ->
  throughput_result
(** Figures 4, 5 and 8: every member of the group sends continuously;
    reports how many messages per second the group sequences. *)

type multigroup_result = {
  total_msgs_per_sec : float;
  ether_utilisation : float;
  collisions : int;
}

val multigroup_throughput :
  ?duration_ms:int -> groups:int -> members:int -> unit -> multigroup_result
(** Figure 6: disjoint groups of equal size run in parallel on the
    same Ethernet, all members sending 0-byte messages continuously. *)

val critical_path : unit -> (string * float) list * float
(** Figure 2 / Table 3: per-layer microseconds on the critical path of
    a single 0-byte SendToGroup in a group of 2 (PB), plus the total. *)

val null_rpc_delay_ms : unit -> float
(** The paper's RPC baseline: null RPC delay on the same hardware. *)

type baseline_protocol = Amoeba_pb | Amoeba_bb | Cm_token | Pos_ack | Migrating

val baseline_name : baseline_protocol -> string

type baseline_result = {
  delay_ms : float;  (** 1-sender broadcast delay *)
  tput_per_sec : float;  (** all-senders throughput *)
  frames_per_msg : float;  (** network frames per delivered broadcast *)
  interrupts_per_msg : float;  (** per-receiver interrupts per broadcast *)
}

val baseline_compare :
  ?duration_ms:int -> n:int -> baseline_protocol -> baseline_result
(** Section 6 quantified: the same workload across Amoeba and the
    comparison protocols. *)

val burst_delay :
  ?bursts:int -> ?burst_len:int -> n:int -> [ `Static | `Migrating ] -> float
(** Section 5 ablation: mean per-message delay when one member sends
    messages in bursts, static versus migrating sequencer. *)

type load_point = {
  offered_per_sec : float;
  completed_per_sec : float;
  mean_delay_ms : float;
}

val open_loop_load :
  ?duration_ms:int -> n:int -> rate_per_sec:float -> unit -> load_point
(** Open-loop (Poisson) load: arrivals at [rate_per_sec] spread over
    the group's members, each send on its own thread.  Shows the
    queueing knee at the sequencer as offered load approaches the
    closed-loop throughput ceiling — conclusion 1 in queueing form. *)

val scaled_processing : float -> Amoeba_net.Cost_model.t
(** The default cost model with every host software cost (interrupt,
    driver, protocol layers, copies, context switches) multiplied by
    the factor — "a faster CPU" for < 1.  Wire timing is physics and
    stays fixed.  Supports the paper's conclusion that throughput is
    limited by message processing time, not by the protocol. *)

val user_space_costs : Amoeba_net.Cost_model.t
(** The cost model of a user-space protocol implementation (paper §5,
    Oey et al.): every message crosses the kernel/user boundary twice
    more, adding two context switches per packet on the send and
    receive paths. *)
