open Amoeba_core.Types

type stream = {
  label : string;
  events : event list;
  full : bool;
}

type verdict = { invariant : string; ok : bool; detail : string }

let v invariant = function
  | [] -> { invariant; ok = true; detail = "" }
  | problems ->
      let shown = List.filteri (fun i _ -> i < 3) problems in
      let detail =
        String.concat "; " shown
        ^
        match List.length problems - List.length shown with
        | 0 -> ""
        | more -> Printf.sprintf " (+%d more)" more
      in
      { invariant; ok = false; detail }

let expelled s = List.mem Expelled s.events

let seq_of = function
  | Message { seq; _ }
  | Member_joined { seq; _ }
  | Member_left { seq; _ }
  | Group_reset { seq; _ } ->
      Some seq
  | Expelled -> None

let fingerprint = function
  | Message { seq = _; sender; body } ->
      Printf.sprintf "msg from %d %S" sender (Bytes.to_string body)
  | Member_joined { seq = _; mid } -> Printf.sprintf "join %d" mid
  | Member_left { seq = _; mid } -> Printf.sprintf "leave %d" mid
  | Group_reset { seq = _; incarnation; members } ->
      Printf.sprintf "reset inc=%d [%s]" incarnation
        (String.concat "," (List.map string_of_int members))
  | Expelled -> "expelled"

(* I1 — total order: every two members that both delivered sequence
   number [s] delivered the same event at [s].  Streams that end in
   [Expelled] are excluded: with r=0 an expelled member may hold
   tentative deliveries beyond the survivors' global-max, which the
   reset legitimately discards and reassigns.

   Total order is an invariant *per configuration*: a member that was
   unreachable (paused, partitioned) while a reset ran was dropped
   from the new configuration, and every sequence number from the
   reset point on belongs to the new incarnation's stream.  Such a
   member is expelled in fact even if it never learns — e.g. an old
   sequencer with resilience 0 resuming into a quiescent group hears
   nothing that would tell it.  So a stream that never installed the
   run's highest incarnation is compared only below the first reset
   it missed; its deliveries past that point are the tentative tail
   the reset legitimately discarded. *)
let total_order streams =
  (* Every reset any stream delivered, as (incarnation, seq). *)
  let resets =
    List.concat_map
      (fun s ->
        List.filter_map
          (function
            | Group_reset { seq; incarnation; _ } -> Some (incarnation, seq)
            | _ -> None)
          s.events)
      streams
  in
  (* The highest incarnation a stream installed; min_int when it never
     saw a reset (still on the group's founding incarnation). *)
  let installed s =
    List.fold_left
      (fun acc e ->
        match e with
        | Group_reset { incarnation; _ } -> max acc incarnation
        | _ -> acc)
      min_int s.events
  in
  (* First seq reassigned by a reset this stream missed; max_int when
     it saw them all. *)
  let cutoff s =
    let mine = installed s in
    List.fold_left
      (fun acc (inc, seq) -> if inc > mine then min acc seq else acc)
      max_int resets
  in
  let seen : (int, string * string) Hashtbl.t = Hashtbl.create 64 in
  let problems = ref [] in
  List.iter
    (fun s ->
      if not (expelled s) then
        let cut = cutoff s in
        List.iter
          (fun e ->
            match seq_of e with
            | None -> ()
            | Some seq when seq >= cut -> ()
            | Some seq -> (
                let fp = fingerprint e in
                match Hashtbl.find_opt seen seq with
                | None -> Hashtbl.replace seen seq (fp, s.label)
                | Some (fp', who) ->
                    if fp <> fp' then
                      problems :=
                        Printf.sprintf "seq %d: %s saw {%s} but %s saw {%s}"
                          seq who fp' s.label fp
                        :: !problems))
          s.events)
    streams;
  v "total-order" (List.rev !problems)

(* I2 — no duplicate, no skip: within one member's lifetime sequence
   numbers are consecutive (kernels deliver through a gap-free
   window), no message body is delivered twice, and each origin's
   messages arrive in the order they were sent (bodies are the
   workload's unique "o<origin>.<k>" tags). *)
let no_dup_no_skip streams =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  List.iter
    (fun s ->
      let last_seq = ref None in
      let bodies = Hashtbl.create 64 in
      let per_origin = Hashtbl.create 8 in
      List.iter
        (fun e ->
          (match seq_of e with
          | None -> ()
          | Some seq ->
              (match !last_seq with
              | Some prev when seq <> prev + 1 ->
                  if seq <= prev then
                    problem "%s: seq went %d -> %d (reorder/dup)" s.label prev
                      seq
                  else
                    problem "%s: skipped seqs %d..%d" s.label (prev + 1)
                      (seq - 1)
              | Some _ | None -> ());
              last_seq := Some seq);
          match e with
          | Message { sender; body; _ } -> (
              let b = Bytes.to_string body in
              if Hashtbl.mem bodies b then
                problem "%s: body %S delivered twice" s.label b
              else Hashtbl.replace bodies b ();
              try
                Scanf.sscanf b "o%d.%d" (fun o k ->
                    ignore o;
                    match Hashtbl.find_opt per_origin sender with
                    | Some k' when k <= k' ->
                        problem "%s: origin %d sent #%d after #%d" s.label
                          sender k k'
                    | _ -> Hashtbl.replace per_origin sender k)
              with Scanf.Scan_failure _ | End_of_file -> ())
          | _ -> ())
        s.events)
    streams;
  v "no-dup-no-skip" (List.rev !problems)

(* I3 — durability: a send that returned [Ok] is delivered by every
   member that observed the whole run (never crashed or expelled).  A
   member whose join was itself delayed — e.g. by a hostile net losing
   its join handshake — legitimately starts mid-history, so each
   stream vouches only for sends sequenced at or after its first
   event; a send nobody delivered is a violation everywhere.  Only
   meaningful when the fault schedule stays within the resilience
   degree; the caller gates it. *)
let durability ~streams ~completed =
  let full = List.filter (fun s -> s.full && not (expelled s)) streams in
  (* Where each completed send landed in the total order, from
     whichever stream delivered it (total-order makes this
     unambiguous). *)
  let send_seq = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter
        (function
          | Message { seq; sender; body } ->
              let key = (sender, Bytes.to_string body) in
              if not (Hashtbl.mem send_seq key) then
                Hashtbl.replace send_seq key seq
          | _ -> ())
        s.events)
    streams;
  let problems = ref [] in
  List.iter
    (fun s ->
      let first_seq =
        List.fold_left
          (fun acc e -> match acc with Some _ -> acc | None -> seq_of e)
          None s.events
      in
      let covered (origin, body) =
        match (Hashtbl.find_opt send_seq (origin, body), first_seq) with
        | Some seq, Some first -> seq >= first
        | Some _, None -> false  (* empty stream vouches for nothing *)
        | None, _ -> true  (* delivered nowhere: a problem for everyone *)
      in
      let seen = Hashtbl.create 64 in
      List.iter
        (function
          | Message { sender; body; _ } ->
              Hashtbl.replace seen (sender, Bytes.to_string body) ()
          | _ -> ())
        s.events;
      List.iter
        (fun (origin, body) ->
          if covered (origin, body) && not (Hashtbl.mem seen (origin, body))
          then
            problems :=
              Printf.sprintf "%s never delivered completed send %S from %d"
                s.label body origin
              :: !problems)
        completed)
    full;
  v "durability" (List.rev !problems)

(* I4 — monotone incarnations: the group resets a member witnesses
   carry strictly increasing incarnation numbers. *)
let monotone_incarnations streams =
  let problems = ref [] in
  List.iter
    (fun s ->
      let last = ref None in
      List.iter
        (function
          | Group_reset { incarnation; _ } ->
              (match !last with
              | Some prev when incarnation <= prev ->
                  problems :=
                    Printf.sprintf "%s: incarnation %d after %d" s.label
                      incarnation prev
                    :: !problems
              | _ -> ());
              last := Some incarnation
          | _ -> ())
        s.events)
    streams;
  v "monotone-incarnation" (List.rev !problems)

type wal_entry = { w_seq : int; w_sender : mid; w_body : string }

(* I5 — durable recovery: what came back from the disks after a total
   power loss is consistent with what was delivered before it, and
   with what the application was told had completed.

   (a) Prefix integrity: each machine's recovered log is an EXACT
       prefix of its own pre-cut stream's message subsequence — same
       seqs, same senders, same bodies, nothing invented, nothing
       reordered, nothing eaten from the middle.  (Replay already
       truncated torn tails and refused damaged suffixes; whatever
       survived must still be a prefix.)
   (b) Acknowledged writes survive up to the durable frontier: a send
       completed before the power went may only be missing from the
       disks if NO log's range covers its position in the total order
       — i.e. it sat beyond every machine's durable frontier (the
       fsync policy's window), or before a late joiner's first record.
       If some log spans its seq and it is absent everywhere, it was
       eaten.
   (c) No duplicates across the restart: a recovered body must not be
       delivered again in any post-recovery stream — replay must not
       resubmit what it restored. *)
let durable_recovery ~pre ~recovered ~completed ~post =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  (* Message subsequence of each pre stream, by label. *)
  let messages_of s =
    List.filter_map
      (function
        | Message { seq; sender; body } ->
            Some { w_seq = seq; w_sender = sender; w_body = Bytes.to_string body }
        | _ -> None)
      s.events
  in
  let by_label = List.map (fun s -> (s.label, messages_of s)) pre in
  (* (a) exact prefix, per log *)
  List.iter
    (fun (label, log) ->
      match List.assoc_opt label by_label with
      | None ->
          if log <> [] then
            problem "log %s: %d records but no such pre-cut stream" label
              (List.length log)
      | Some msgs ->
          let rec walk log msgs =
            match (log, msgs) with
            | [], _ -> ()
            | l :: _, [] ->
                problem "log %s: phantom record seq %d beyond its stream" label
                  l.w_seq
            | l :: lrest, m :: mrest ->
                if
                  l.w_seq <> m.w_seq || l.w_sender <> m.w_sender
                  || l.w_body <> m.w_body
                then
                  problem
                    "log %s: record (seq %d, from %d, %S) diverges from \
                     delivered (seq %d, from %d, %S)"
                    label l.w_seq l.w_sender l.w_body m.w_seq m.w_sender
                    m.w_body
                else walk lrest mrest
          in
          walk log msgs)
    recovered;
  (* (b) coverage of acknowledged sends *)
  let ranges =
    List.filter_map
      (fun (_, log) ->
        match log with
        | [] -> None
        | first :: _ ->
            let last = List.fold_left (fun _ l -> l.w_seq) first.w_seq log in
            Some (first.w_seq, last))
      recovered
  in
  let seq_of_send = Hashtbl.create 64 in
  List.iter
    (fun (_, msgs) ->
      List.iter
        (fun m ->
          let key = (m.w_sender, m.w_body) in
          if not (Hashtbl.mem seq_of_send key) then
            Hashtbl.replace seq_of_send key m.w_seq)
        msgs)
    by_label;
  let on_disk = Hashtbl.create 64 in
  List.iter
    (fun (_, log) ->
      List.iter (fun l -> Hashtbl.replace on_disk (l.w_sender, l.w_body) ()) log)
    recovered;
  List.iter
    (fun (origin, body) ->
      match Hashtbl.find_opt seq_of_send (origin, body) with
      | None -> () (* delivered nowhere pre-cut: not I5's claim (I3's) *)
      | Some seq ->
          if
            (not (Hashtbl.mem on_disk (origin, body)))
            && List.exists (fun (lo, hi) -> lo <= seq && seq <= hi) ranges
          then
            problem
              "completed send %S from %d (seq %d) inside a recovered log's \
               range but on no disk"
              body origin seq)
    completed;
  (* (c) no duplicate delivery across the restart *)
  let recovered_bodies = Hashtbl.create 64 in
  List.iter
    (fun (_, log) ->
      List.iter (fun l -> Hashtbl.replace recovered_bodies l.w_body ()) log)
    recovered;
  List.iter
    (fun s ->
      List.iter
        (function
          | Message { body; _ } ->
              let b = Bytes.to_string body in
              if Hashtbl.mem recovered_bodies b then
                problem "%s: recovered body %S delivered again after recovery"
                  s.label b
          | _ -> ())
        s.events)
    post;
  v "durable-recovery" (List.rev !problems)

type owner = {
  ow_host : int;
  ow_group : string;
  ow_live : bool;
  ow_retired : bool;
}

(* I6 — migration safety: after a live shard migration (completed,
   aborted, or interrupted by faults), the shard still has exactly one
   owning group and the cutover lost nothing.

   (a) Exactly one owner: at least one live, non-retired replica
       serves the shard, and all of them belong to the same group —
       never zero owners (an orphaned shard) and never two groups both
       believing they own it (split brain across the handoff).
   (b) No committed op lost: every acknowledged write was sequenced —
       its body appears in at least one replica stream, source or
       destination, live, retired or crashed.  An ack with no stream
       behind it was invented by the dual-routing window.
   (c) No duplicate through the dual-routing window: while old and new
       endpoints both serve, a retried write must not be sequenced
       twice — each acknowledged body appears at most once per live
       owner stream (idempotent uid-tagged retries are the cover). *)
let migration_safety ~owners ~streams ~completed =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  (* (a) exactly one owner *)
  let serving = List.filter (fun o -> o.ow_live && not o.ow_retired) owners in
  (match serving with
  | [] -> problem "no live owner: the shard is orphaned"
  | o :: rest ->
      List.iter
        (fun o' ->
          if o'.ow_group <> o.ow_group then
            problem "split brain: m%d serves group %s but m%d serves %s"
              o.ow_host o.ow_group o'.ow_host o'.ow_group)
        rest);
  (* (b) every acked write sequenced somewhere *)
  let sequenced = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter
        (function
          | Message { sender; body; _ } ->
              Hashtbl.replace sequenced (sender, Bytes.to_string body) ()
          | _ -> ())
        s.events)
    streams;
  List.iter
    (fun (origin, body) ->
      if not (Hashtbl.mem sequenced (origin, body)) then
        problem "completed write %S from %d sequenced in no stream" body origin)
    completed;
  (* (c) no acked write sequenced twice in a live owner's stream *)
  let acked = Hashtbl.create 64 in
  List.iter
    (fun (origin, body) -> Hashtbl.replace acked (origin, body) ())
    completed;
  List.iter
    (fun s ->
      let counts = Hashtbl.create 64 in
      List.iter
        (function
          | Message { sender; body; _ } ->
              let key = (sender, Bytes.to_string body) in
              if Hashtbl.mem acked key then
                Hashtbl.replace counts key
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
          | _ -> ())
        s.events;
      Hashtbl.iter
        (fun (origin, body) n ->
          if n > 1 then
            problem "%s delivered acked write %S from %d %d times" s.label body
              origin n)
        counts)
    streams;
  v "migration-safety" (List.rev !problems)

let run ?(durability_applies = true) ~streams ~completed () =
  [
    total_order streams;
    no_dup_no_skip streams;
    (if durability_applies then durability ~streams ~completed
     else { invariant = "durability"; ok = true; detail = "not applicable" });
    monotone_incarnations streams;
  ]

let all_ok = List.for_all (fun x -> x.ok)

let pp_verdict ppf x =
  Format.fprintf ppf "%-20s %s%s" x.invariant
    (if x.ok then "OK" else "VIOLATED")
    (if x.detail = "" then "" else ": " ^ x.detail)
