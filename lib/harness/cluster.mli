(** A simulated testbed: engine + network fabric (the shared Ethernet
    by default, or a full-duplex switch) + n machines, each with a
    FLIP stack — the fixture every test, example and benchmark builds
    on. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_flip

type t = {
  engine : Engine.t;
  cost : Cost_model.t;
  trace : Trace.t;
  net : Medium.t;
  machines : Machine.t array;
  flips : Flip.t array;
}

val create :
  ?cost:Cost_model.t -> ?seed:int -> ?fabric:Medium.spec -> n:int -> unit -> t
(** [create ~n ()] builds [n] machines named m0..m(n-1) on one shared
    medium.  The default [fabric] is [Medium.Shared] — one Ethernet
    segment, the paper's single-LAN testbed; [Medium.Switched p] puts
    the same machines on a switched full-duplex fabric instead. *)

val size : t -> int

val machine : t -> int -> Machine.t

val flip : t -> int -> Flip.t

val restart : t -> int -> unit
(** Reboots machine [i] if it crashed: {!Machine.restart} plus a fresh
    FLIP stack, so churn scenarios can re-join groups via the new
    [flip t i].  The pre-crash FLIP and its kernels stay dead.  No-op
    on a live machine. *)

val spawn : t -> (unit -> unit) -> unit
(** Spawns an orchestration process in the engine's root group: it
    survives machine crashes (use it for the test driver itself). *)

val spawn_on : t -> int -> (unit -> unit) -> unit
(** [spawn_on t i f] runs [f] as an application process {e on} machine
    [i]: it joins the machine's current lifecycle group and is
    crash-stopped with its host.  It does not come back on restart —
    a reboot starts fresh processes. *)

val run : ?until:Time.t -> t -> unit

val now : t -> Time.t
