(** Declarative fault schedules for chaos testing.

    A schedule is a list of timestamped fault actions applied to a
    {!Cluster.t}: crash/restart, CPU pause/resume (the "live but slow"
    member of the paper's expulsion discussion), network partitions
    and transient loss bursts.  Schedules are plain data — they can be
    generated from a seed, printed, parsed back and replayed exactly,
    which is what lets a failing swarm-test seed be re-run from the
    [chaos] CLI and shrunk to a minimal counterexample. *)

open Amoeba_sim

type action =
  | Crash of int  (** fail-stop machine [i] *)
  | Restart of int
      (** reboot machine [i] if crashed: memory and kernel state are
          fresh, but the machine remounts its disk — durable state in
          the stable store (minus the write cache lost at the crash)
          is readable again *)
  | Pause of int  (** stall machine [i]'s CPU; the wire keeps running *)
  | Resume of int  (** release a pause *)
  | Partition of int list * int list
      (** cut the Ethernet between two sets of station ids *)
  | Heal  (** remove all partition cuts *)
  | Loss_burst of float * Time.t
      (** [(rate, dur)]: random frame loss at [rate] for [dur], then
          the previous loss rate is restored *)
  | Oneway of int * int
      (** [(src, dst)]: directed cut — frames from station [src] never
          reach [dst] while the reverse path stays up.  Removed by
          [Heal], like partitions. *)
  | Burst of float * float * float * Time.t
      (** [(p_gb, p_bg, loss_bad, dur)]: Gilbert–Elliott correlated
          loss on every link for [dur] (good-state loss 0), then the
          previous condition is restored *)
  | Duplicate of float * Time.t
      (** [(prob, dur)]: each delivered frame arrives twice with
          probability [prob] *)
  | Jitter of int * Time.t
      (** [(ns, dur)]: per-frame delivery delay uniform in [0, ns], so
          frames can overtake each other *)
  | Corrupt of float * Time.t
      (** [(prob, dur)]: each delivered copy has bits flipped at a
          random byte offset with probability [prob]; checksums must
          catch it *)
  | Power_cycle_all of Time.t
      (** total power loss: {e every} machine (already-crashed ones
          included) goes down at once, and after the outage duration
          power returns and all of them reboot together.  Nothing
          survives in memory anywhere — recovery must come from the
          stable store, which is what the durability invariant
          checks. *)

type step = { at : Time.t; action : action }
(** [at] is absolute simulated time. *)

type schedule = step list

val apply :
  ?on_restart:(int -> unit) ->
  ?on_power_down:(unit -> unit) ->
  ?on_power_up:(unit -> unit) ->
  Cluster.t ->
  schedule ->
  unit
(** Schedules every step on the cluster's engine (steps whose time has
    already passed fire immediately).  [on_restart i] runs right after
    machine [i] reboots from a plain [Restart], so the harness can
    rebuild its FLIP stack's group membership.  [Power_cycle_all]
    instead brackets itself with [on_power_down] (the instant before
    everything dies — snapshot what "was acknowledged" means) and
    [on_power_up] (after every machine has rebooted — run durable
    recovery); the per-machine [on_restart] hook does {e not} fire for
    it, because there is no surviving group to rejoin. *)

val random :
  seed:int -> n:int -> ?horizon:Time.t -> ?power_cycles:bool -> unit -> schedule
(** A seeded random schedule for an [n]-machine cluster, with faults
    in [50ms, horizon] (default 2s).  Pure function of [seed]: it uses
    its own RNG, not the engine's.  Pauses are paired with resumes,
    partitions and one-way cuts with heals, and condition bursts
    (Gilbert–Elliott loss, duplication, jitter, corruption) carry
    their own bounded duration; at most [(n-1)/2] machines crash, so a
    majority quorum of the survivors remains for auto-heal recovery.
    With [~power_cycles:true] one [Power_cycle_all] is additionally
    drawn (after the main loop, so the base schedule for a seed is
    unchanged).  The power cycle is exempt from the (n-1)/2 bound —
    that bound protects quorum recovery among survivors, and a total
    power loss deliberately has none; it also makes {!crash_count} an
    undercount of what dies, which is why r-resilience durability
    claims must be gated off for such schedules (see
    [Chaos.durability_applies]). *)

val crash_count : schedule -> int
(** Number of [Crash] steps (restarts not subtracted; a
    [Power_cycle_all] is NOT counted — it downs everything) — used to
    decide whether r-resilience durability is guaranteed for a
    schedule. *)

val to_string : schedule -> string
(** One line, e.g. ["150000000:crash 0; 500000000:part 0,1/2,3; ..."].
    Round-trips exactly through {!of_string}. *)

val of_string : string -> schedule
(** Parses {!to_string}'s format; raises [Invalid_argument] on
    malformed input.  The result is sorted by time. *)

val pp : Format.formatter -> schedule -> unit
(** Multi-line human-readable rendering (times in ms). *)
