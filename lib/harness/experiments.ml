open Amoeba_sim
open Amoeba_net
open Amoeba_core
module T = Types

type delay_result = {
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  samples : int;
}

type throughput_result = {
  msgs_per_sec : float;
  rx_dropped : int;
  retransmissions : int;
  meaningful : bool;
}

type multigroup_result = {
  total_msgs_per_sec : float;
  ether_utilisation : float;
  collisions : int;
}

type baseline_protocol = Amoeba_pb | Amoeba_bb | Cm_token | Pos_ack | Migrating

let baseline_name = function
  | Amoeba_pb -> "Amoeba PB"
  | Amoeba_bb -> "Amoeba BB"
  | Cm_token -> "Chang-Maxemchuk"
  | Pos_ack -> "positive acks"
  | Migrating -> "migrating seq"

(* Consume every member's delivery stream so the event channels do not
   grow without bound (and so receive-side user costs are charged, as
   in the paper's experiments where all members call
   ReceiveFromGroup). *)
let drain_events cl g =
  Cluster.spawn cl (fun () ->
      let rec loop () =
        ignore (Api.receive_from_group g);
        loop ()
      in
      loop ())

let build_group ?(resilience = 0) ?(send_method = T.Pb) ?history cl ~n =
  let creator =
    Api.create_group (Cluster.flip cl 0) ~resilience ~send_method ?history ()
  in
  let addr = Api.group_address creator in
  let joiners =
    List.init (n - 1) (fun i ->
        match
          Api.join_group (Cluster.flip cl (i + 1)) ~resilience ~send_method
            ?history addr
        with
        | Ok g -> g
        | Error e -> failwith ("join failed: " ^ T.error_to_string e))
  in
  creator :: joiners

let broadcast_delay ?(cost = Cost_model.default) ?(samples = 20)
    ?(resilience = 0) ?(net = Medium.clean) ?(fabric = Medium.Shared) ~n ~size
    ~send_method () =
  let cl = Cluster.create ~cost ~fabric ~n:(max n 2) () in
  let result = ref { mean_ms = 0.; min_ms = 0.; max_ms = 0.; samples = 0 } in
  Cluster.spawn cl (fun () ->
      let groups = build_group ~resilience ~send_method cl ~n in
      List.iter (drain_events cl) groups;
      (* Adversarial conditions apply to the measurement loop only;
         setup runs on a quiet net, like the paper's warm testbed. *)
      if net <> Medium.clean then Medium.set_conditions cl.Cluster.net net;
      (* The paper measures a sender on a different machine than the
         sequencer. *)
      let sender = if n > 1 then List.nth groups 1 else List.hd groups in
      let payload = Bytes.create size in
      for _ = 1 to 5 do
        ignore (Api.send_to_group sender payload)
      done;
      let stats = Stats.create () in
      for _ = 1 to samples do
        let t0 = Cluster.now cl in
        (match Api.send_to_group sender payload with
        | Ok _ -> Stats.add stats (Time.to_ms (Cluster.now cl - t0))
        | Error e ->
            (* Under injected loss a send may exhaust its bounded
               retries; that sample is simply not a delay.  On a clean
               net a failure is a real bug. *)
            if net = Medium.clean then
              failwith ("send failed: " ^ T.error_to_string e));
        (* A short pause between sends, as in a measurement loop. *)
        Engine.sleep cl.Cluster.engine (Time.us 200)
      done;
      result :=
        {
          mean_ms = Stats.mean stats;
          min_ms = Stats.min_value stats;
          max_ms = Stats.max_value stats;
          samples = Stats.count stats;
        });
  Cluster.run ~until:(Time.sec 600) cl;
  !result

let sum_rx_dropped cl =
  Array.fold_left
    (fun acc m -> acc + Nic.rx_dropped (Machine.nic m))
    0 cl.Cluster.machines

let group_throughput ?(cost = Cost_model.default) ?(duration_ms = 2_000)
    ?(resilience = 0) ?history ~n ~size ~send_method () =
  let cl = Cluster.create ~cost ~n:(max n 2) () in
  let measured = ref (0., 0, 0) in
  let deadline = Time.ms duration_ms in
  let warmup = deadline / 4 in
  Cluster.spawn cl (fun () ->
      let groups = build_group ~resilience ~send_method ?history cl ~n in
      List.iter (drain_events cl) groups;
      let payload = Bytes.create size in
      List.iter
        (fun g ->
          Cluster.spawn cl (fun () ->
              let rec loop () =
                if Cluster.now cl < deadline then begin
                  ignore (Api.send_to_group g payload);
                  loop ()
                end
              in
              loop ()))
        groups;
      let sequencer = List.hd groups in
      Cluster.spawn cl (fun () ->
          Engine.sleep cl.Cluster.engine warmup;
          let c0 = Kernel.next_expected (Api.kernel sequencer) in
          let d0 = sum_rx_dropped cl in
          Engine.sleep cl.Cluster.engine (deadline - warmup);
          let c1 = Kernel.next_expected (Api.kernel sequencer) in
          let d1 = sum_rx_dropped cl in
          let retrans =
            List.fold_left
              (fun acc g ->
                acc + (Kernel.stats (Api.kernel g)).Kernel.retransmissions)
              0 groups
          in
          let secs = Time.to_sec (deadline - warmup) in
          measured := (float_of_int (c1 - c0) /. secs, d1 - d0, retrans)));
  Cluster.run ~until:(deadline + Time.sec 1) cl;
  let rate, dropped, retrans = !measured in
  {
    msgs_per_sec = rate;
    rx_dropped = dropped;
    retransmissions = retrans;
    meaningful = float_of_int retrans < 0.1 *. rate *. Time.to_sec (deadline - warmup) +. 5.;
  }

let multigroup_throughput ?(duration_ms = 2_000) ~groups ~members () =
  let n = groups * members in
  let cl = Cluster.create ~n () in
  let deadline = Time.ms duration_ms in
  let warmup = deadline / 4 in
  let measured = ref (0., 0., 0) in
  Cluster.spawn cl (fun () ->
      let sequencers = ref [] in
      for g = 0 to groups - 1 do
        let base = g * members in
        let creator = Api.create_group (Cluster.flip cl base) () in
        sequencers := creator :: !sequencers;
        let addr = Api.group_address creator in
        let mems =
          creator
          :: List.init (members - 1) (fun i ->
                 match Api.join_group (Cluster.flip cl (base + i + 1)) addr with
                 | Ok m -> m
                 | Error e -> failwith ("join failed: " ^ T.error_to_string e))
        in
        List.iter (drain_events cl) mems;
        List.iter
          (fun m ->
            Cluster.spawn cl (fun () ->
                let rec loop () =
                  if Cluster.now cl < deadline then begin
                    ignore (Api.send_to_group m Bytes.empty);
                    loop ()
                  end
                in
                loop ()))
          mems
      done;
      Cluster.spawn cl (fun () ->
          Engine.sleep cl.Cluster.engine warmup;
          (* Measure utilisation over the same window as the message
             rate: the group-formation warmup used to dilute it. *)
          Medium.reset_utilisation_window cl.Cluster.net;
          let count () =
            List.fold_left
              (fun acc s -> acc + Kernel.next_expected (Api.kernel s))
              0 !sequencers
          in
          let c0 = count () in
          Engine.sleep cl.Cluster.engine (deadline - warmup);
          let c1 = count () in
          let secs = Time.to_sec (deadline - warmup) in
          measured :=
            ( float_of_int (c1 - c0) /. secs,
              Medium.utilisation cl.Cluster.net,
              Medium.collisions cl.Cluster.net )));
  Cluster.run ~until:(deadline + Time.sec 1) cl;
  let rate, util, coll = !measured in
  { total_msgs_per_sec = rate; ether_utilisation = util; collisions = coll }

(* Figure 2 / Table 3: the critical path of one 0-byte PB SendToGroup
   in a group of 2.  The layer split is read off the cost model (it is
   a sum of deterministic per-packet constants); the total is
   cross-checked against the simulated delay. *)
let critical_path () =
  let c = Cost_model.default in
  let us ns = float_of_int ns /. 1_000. in
  let hdr = Cost_model.headers_total c in
  let wire = Cost_model.frame_time c ~bytes_on_wire:hdr in
  let copy = hdr * c.copy_ns_per_byte in
  let user = 2 * c.context_switch_ns in
  let group =
    c.group_send_ns + c.group_seq_ns + (2 * c.group_seq_member_ns)
    + c.group_deliver_ns
  in
  let flip = (2 * c.flip_tx_ns) + (2 * c.flip_rx_ns) in
  let ether =
    (* sender tx + wire + sequencer rx + sequencer tx + wire + sender rx *)
    (c.driver_tx_ns + copy) + wire
    + (c.interrupt_ns + c.driver_rx_ns + copy)
    + (c.driver_tx_ns + copy) + wire
    + (c.interrupt_ns + c.driver_rx_ns + copy)
  in
  let measured =
    (broadcast_delay ~samples:5 ~n:2 ~size:0 ~send_method:T.Pb ()).mean_ms
  in
  ( [ ("user", us user); ("group", us group); ("flip", us flip);
      ("ether", us ether) ],
    measured *. 1_000. )

let null_rpc_delay_ms () =
  let cl = Cluster.create ~n:2 () in
  let out = ref 0. in
  Cluster.spawn cl (fun () ->
      let flip1 = Cluster.flip cl 1 in
      let addr = Amoeba_flip.Flip.fresh_addr flip1 in
      let _server =
        Amoeba_rpc.Rpc.serve flip1 ~addr (fun _ ->
            Amoeba_rpc.Types_rpc.Reply Bytes.empty)
      in
      let client = Amoeba_rpc.Rpc.client (Cluster.flip cl 0) in
      ignore (Amoeba_rpc.Rpc.call client ~dst:addr Bytes.empty);
      let stats = Stats.create () in
      for _ = 1 to 10 do
        let t0 = Cluster.now cl in
        ignore (Amoeba_rpc.Rpc.call client ~dst:addr Bytes.empty);
        Stats.add stats (Time.to_ms (Cluster.now cl - t0))
      done;
      out := Stats.mean stats);
  Cluster.run ~until:(Time.sec 60) cl;
  !out

type baseline_result = {
  delay_ms : float;
  tput_per_sec : float;
  frames_per_msg : float;
  interrupts_per_msg : float;
}

(* A uniform view over Amoeba and the baseline protocols. *)
type proto_instance = {
  pi_send : int -> bytes -> unit;  (** by member index *)
  pi_count : unit -> int;  (** messages sequenced so far *)
}

let frames_per_msg_ref = ref 0.
let interrupts_per_msg_ref = ref 0.

let instantiate cl ~n proto =
  match proto with
  | Amoeba_pb | Amoeba_bb ->
        let send_method = if proto = Amoeba_pb then T.Pb else T.Bb in
        let groups = build_group ~send_method cl ~n in
        List.iter (drain_events cl) groups;
        let arr = Array.of_list groups in
        {
          pi_send = (fun i b -> ignore (Api.send_to_group arr.(i) b));
          pi_count = (fun () -> Kernel.next_expected (Api.kernel arr.(0)));
        }
  | Cm_token ->
        let nodes =
          Amoeba_baselines.Cm.make_group
            (Array.to_list (Array.sub cl.Cluster.flips 0 n))
        in
        let arr = Array.of_list nodes in
        Array.iter
          (fun nd ->
            Cluster.spawn cl (fun () ->
                let rec loop () =
                  ignore
                    (Channel.recv cl.Cluster.engine
                       (Amoeba_baselines.Cm.events nd));
                  loop ()
                in
                loop ()))
          arr;
        {
          pi_send = (fun i b -> Amoeba_baselines.Cm.send arr.(i) b);
          pi_count = (fun () -> Amoeba_baselines.Cm.delivered arr.(0));
        }
  | Pos_ack ->
        let nodes =
          Amoeba_baselines.Posack.make_group
            (Array.to_list (Array.sub cl.Cluster.flips 0 n))
        in
        let arr = Array.of_list nodes in
        Array.iter
          (fun nd ->
            Cluster.spawn cl (fun () ->
                let rec loop () =
                  ignore
                    (Channel.recv cl.Cluster.engine
                       (Amoeba_baselines.Posack.events nd));
                  loop ()
                in
                loop ()))
          arr;
        {
          pi_send = (fun i b -> Amoeba_baselines.Posack.send arr.(i) b);
          pi_count = (fun () -> Amoeba_baselines.Posack.delivered arr.(0));
        }
  | Migrating ->
        let nodes =
          Amoeba_baselines.Migrating.make_group
            (Array.to_list (Array.sub cl.Cluster.flips 0 n))
        in
        let arr = Array.of_list nodes in
        Array.iter
          (fun nd ->
            Cluster.spawn cl (fun () ->
                let rec loop () =
                  ignore
                    (Channel.recv cl.Cluster.engine
                       (Amoeba_baselines.Migrating.events nd));
                  loop ()
                in
                loop ()))
          arr;
        {
          pi_send = (fun i b -> Amoeba_baselines.Migrating.send arr.(i) b);
          pi_count = (fun () -> Amoeba_baselines.Migrating.delivered arr.(0));
        }

let baseline_compare ?(duration_ms = 1_500) ~n proto =
  (* Delay: one sender (member 1), quiet network. *)
  let delay =
    let cl = Cluster.create ~n () in
    let out = ref 0. in
    Cluster.spawn cl (fun () ->
        let pi = instantiate cl ~n proto in
        for _ = 1 to 3 do
          pi.pi_send 1 Bytes.empty
        done;
        let frames0 = Medium.frames_delivered cl.Cluster.net in
        let intr0 =
          Nic.interrupts (Machine.nic (Cluster.machine cl (n - 1)))
        in
        let stats = Stats.create () in
        let k = 10 in
        for _ = 1 to k do
          let t0 = Cluster.now cl in
          pi.pi_send 1 Bytes.empty;
          Stats.add stats (Time.to_ms (Cluster.now cl - t0));
          Engine.sleep cl.Cluster.engine (Time.ms 2)
        done;
        Engine.sleep cl.Cluster.engine (Time.ms 100);
        let frames1 = Medium.frames_delivered cl.Cluster.net in
        let intr1 =
          Nic.interrupts (Machine.nic (Cluster.machine cl (n - 1)))
        in
        out := Stats.mean stats;
        (* stash counters in globals via closure *)
        frames_per_msg_ref := float_of_int (frames1 - frames0) /. float_of_int k;
        interrupts_per_msg_ref :=
          float_of_int (intr1 - intr0) /. float_of_int k);
    Cluster.run ~until:(Time.sec 120) cl;
    !out
  in
  let fpm = !frames_per_msg_ref and ipm = !interrupts_per_msg_ref in
  (* Throughput: every member sends continuously. *)
  let tput =
    let cl = Cluster.create ~n () in
    let deadline = Time.ms duration_ms in
    let warmup = deadline / 4 in
    let out = ref 0. in
    Cluster.spawn cl (fun () ->
        let pi = instantiate cl ~n proto in
        for i = 0 to n - 1 do
          Cluster.spawn cl (fun () ->
              let rec loop () =
                if Cluster.now cl < deadline then begin
                  pi.pi_send i Bytes.empty;
                  loop ()
                end
              in
              loop ())
        done;
        Cluster.spawn cl (fun () ->
            Engine.sleep cl.Cluster.engine warmup;
            let c0 = pi.pi_count () in
            Engine.sleep cl.Cluster.engine (deadline - warmup);
            let c1 = pi.pi_count () in
            out := float_of_int (c1 - c0) /. Time.to_sec (deadline - warmup)));
    Cluster.run ~until:(deadline + Time.sec 1) cl;
    !out
  in
  { delay_ms = delay; tput_per_sec = tput; frames_per_msg = fpm;
    interrupts_per_msg = ipm }

let burst_delay ?(bursts = 5) ?(burst_len = 8) ~n which =
  let cl = Cluster.create ~n () in
  let out = ref 0. in
  Cluster.spawn cl (fun () ->
      let stats = Stats.create () in
      let send =
        match which with
        | `Static ->
            let groups = build_group cl ~n in
            List.iter (drain_events cl) groups;
            let sender = List.nth groups 1 in
            fun b -> ignore (Api.send_to_group sender b)
        | `Migrating ->
            let nodes =
              Amoeba_baselines.Migrating.make_group
                (Array.to_list cl.Cluster.flips)
            in
            List.iter
              (fun nd ->
                Cluster.spawn cl (fun () ->
                    let rec loop () =
                      ignore
                        (Channel.recv cl.Cluster.engine
                           (Amoeba_baselines.Migrating.events nd));
                      loop ()
                    in
                    loop ()))
              nodes;
            let sender = List.nth nodes 1 in
            fun b -> Amoeba_baselines.Migrating.send sender b
      in
      send Bytes.empty;
      for _ = 1 to bursts do
        Engine.sleep cl.Cluster.engine (Time.ms 50);
        for _ = 1 to burst_len do
          let t0 = Cluster.now cl in
          send Bytes.empty;
          Stats.add stats (Time.to_ms (Cluster.now cl - t0))
        done
      done;
      out := Stats.mean stats);
  Cluster.run ~until:(Time.sec 120) cl;
  !out

(* Host software costs scaled by a factor; the wire stays physical. *)
let scaled_processing factor =
  let c = Cost_model.default in
  let f ns = int_of_float (factor *. float_of_int ns) in
  {
    c with
    interrupt_ns = f c.interrupt_ns;
    driver_tx_ns = f c.driver_tx_ns;
    driver_rx_ns = f c.driver_rx_ns;
    copy_ns_per_byte = f c.copy_ns_per_byte;
    context_switch_ns = f c.context_switch_ns;
    flip_tx_ns = f c.flip_tx_ns;
    flip_rx_ns = f c.flip_rx_ns;
    group_send_ns = f c.group_send_ns;
    group_seq_ns = f c.group_seq_ns;
    group_deliver_ns = f c.group_deliver_ns;
  }

(* A user-space implementation pays two extra kernel/user boundary
   crossings per packet on each of the send and receive paths. *)
let user_space_costs =
  let c = Cost_model.default in
  let extra = 2 * c.context_switch_ns in
  {
    c with
    group_send_ns = c.group_send_ns + extra;
    group_seq_ns = c.group_seq_ns + extra;
    group_deliver_ns = c.group_deliver_ns + extra;
  }

type load_point = {
  offered_per_sec : float;
  completed_per_sec : float;
  mean_delay_ms : float;
}

(* Open-loop Poisson arrivals: unlike the paper's closed-loop senders,
   offered load is independent of service time, so the sequencer's
   queue (and the delay) grows without bound past the knee. *)
let open_loop_load ?(duration_ms = 2_000) ~n ~rate_per_sec () =
  let cl = Cluster.create ~n () in
  let deadline = Time.ms duration_ms in
  let warmup = deadline / 4 in
  let stats = Stats.create () in
  let completed = ref 0 in
  let offered = ref 0 in
  Cluster.spawn cl (fun () ->
      let groups = build_group cl ~n in
      List.iter (drain_events cl) groups;
      let arr = Array.of_list groups in
      let rng = Engine.rng cl.Cluster.engine in
      let exp_gap () =
        let u = Random.State.float rng 1.0 in
        Time.of_us_float (-.log (max 1e-9 u) /. rate_per_sec *. 1_000_000.)
      in
      let rec arrivals i =
        if Cluster.now cl < deadline then begin
          Engine.sleep cl.Cluster.engine (exp_gap ());
          if Cluster.now cl < deadline then begin
            let g = arr.(i mod Array.length arr) in
            let in_window = Cluster.now cl >= warmup in
            if in_window then incr offered;
            Cluster.spawn cl (fun () ->
                let t0 = Cluster.now cl in
                match Api.send_to_group g Bytes.empty with
                | Ok _ ->
                    if in_window then begin
                      incr completed;
                      Stats.add stats (Time.to_ms (Cluster.now cl - t0))
                    end
                | Error _ -> ());
            arrivals (i + 1)
          end
        end
      in
      arrivals 0);
  Cluster.run ~until:(deadline + Time.sec 2) cl;
  let secs = Time.to_sec (deadline - warmup) in
  {
    offered_per_sec = float_of_int !offered /. secs;
    completed_per_sec = float_of_int !completed /. secs;
    mean_delay_ms = Stats.mean stats;
  }
