open Amoeba_sim
open Amoeba_net

type action =
  | Crash of int
  | Restart of int
  | Pause of int
  | Resume of int
  | Partition of int list * int list
  | Heal
  | Loss_burst of float * Time.t
  | Oneway of int * int
  | Burst of float * float * float * Time.t
  | Duplicate of float * Time.t
  | Jitter of int * Time.t
  | Corrupt of float * Time.t
  | Power_cycle_all of Time.t

type step = { at : Time.t; action : action }
type schedule = step list

let crash_count sched =
  List.fold_left
    (fun acc s -> match s.action with Crash _ -> acc + 1 | _ -> acc)
    0 sched

let sort sched = List.stable_sort (fun a b -> compare a.at b.at) sched

(* ----- execution ----- *)

let fire ?(on_restart = fun _ -> ()) ?(on_power_down = fun () -> ())
    ?(on_power_up = fun () -> ()) (c : Cluster.t) action =
  match action with
  | Crash i -> Machine.crash (Cluster.machine c i)
  | Restart i ->
      if not (Machine.is_alive (Cluster.machine c i)) then begin
        Cluster.restart c i;
        on_restart i
      end
  | Pause i -> Machine.pause (Cluster.machine c i)
  | Resume i -> Machine.resume (Cluster.machine c i)
  | Partition (a, b) -> Medium.partition c.Cluster.net a b
  | Heal -> Medium.heal c.Cluster.net
  | Loss_burst (rate, dur) ->
      let prev = Medium.loss_rate c.Cluster.net in
      Medium.set_loss_rate c.Cluster.net rate;
      ignore
        (Engine.schedule c.Cluster.engine ~after:dur (fun () ->
             Medium.set_loss_rate c.Cluster.net prev))
  | Oneway (src, dst) -> Medium.cut_oneway c.Cluster.net ~src ~dst
  | Burst (p_gb, p_bg, loss_bad, dur) ->
      let e = c.Cluster.net in
      let prev = (Medium.conditions e).Medium.gilbert in
      Medium.set_conditions e
        {
          (Medium.conditions e) with
          Medium.gilbert = Some { Medium.p_gb; p_bg; loss_good = 0.; loss_bad };
        };
      ignore
        (Engine.schedule c.Cluster.engine ~after:dur (fun () ->
             (* Restore only our own field, reading the then-current
                conditions: overlapping condition bursts of different
                kinds must compose, not clobber each other. *)
             Medium.set_conditions e
               { (Medium.conditions e) with Medium.gilbert = prev }))
  | Duplicate (prob, dur) ->
      let e = c.Cluster.net in
      let prev = (Medium.conditions e).Medium.dup_prob in
      Medium.set_conditions e { (Medium.conditions e) with Medium.dup_prob = prob };
      ignore
        (Engine.schedule c.Cluster.engine ~after:dur (fun () ->
             Medium.set_conditions e
               { (Medium.conditions e) with Medium.dup_prob = prev }))
  | Jitter (ns, dur) ->
      let e = c.Cluster.net in
      let prev = (Medium.conditions e).Medium.jitter_ns in
      Medium.set_conditions e { (Medium.conditions e) with Medium.jitter_ns = ns };
      ignore
        (Engine.schedule c.Cluster.engine ~after:dur (fun () ->
             Medium.set_conditions e
               { (Medium.conditions e) with Medium.jitter_ns = prev }))
  | Corrupt (prob, dur) ->
      let e = c.Cluster.net in
      let prev = (Medium.conditions e).Medium.corrupt_prob in
      Medium.set_conditions e
        { (Medium.conditions e) with Medium.corrupt_prob = prob };
      ignore
        (Engine.schedule c.Cluster.engine ~after:dur (fun () ->
             Medium.set_conditions e
               { (Medium.conditions e) with Medium.corrupt_prob = prev }))
  | Power_cycle_all outage ->
      (* Total power loss: every machine — already-crashed ones
         included — is down for [outage], then power returns and all
         of them reboot together.  Restarted machines do NOT get the
         per-machine [on_restart] rejoin hook: memory is gone
         cluster-wide, so there is no surviving group to rejoin —
         [on_power_up] owns recovery (from the stable store). *)
      on_power_down ();
      for i = 0 to Cluster.size c - 1 do
        Machine.crash (Cluster.machine c i)
      done;
      ignore
        (Engine.schedule c.Cluster.engine ~after:outage (fun () ->
             for i = 0 to Cluster.size c - 1 do
               Cluster.restart c i
             done;
             on_power_up ()))

let apply ?on_restart ?on_power_down ?on_power_up c sched =
  let now = Cluster.now c in
  List.iter
    (fun { at; action } ->
      ignore
        (Engine.schedule c.Cluster.engine
           ~after:(max 0 (at - now))
           (fun () -> fire ?on_restart ?on_power_down ?on_power_up c action)))
    sched

(* ----- random schedules ----- *)

let random ~seed ~n ?(horizon = Time.ms 2000) ?(power_cycles = false) () =
  (* Own random state, not the engine's: the schedule must be a pure
     function of [seed] so a failing seed replays identically from the
     CLI, regardless of what the workload drew from the engine RNG. *)
  let st = Random.State.make [| 0x5EED; seed |] in
  let int lo hi = lo + Random.State.full_int st (hi - lo + 1) in
  let rand_t () = int (Time.ms 50) horizon in
  let steps = ref [] in
  let push at action = steps := { at; action } :: !steps in
  (* Never crash a majority: auto-heal recovery demands a quorum of
     the pre-failure membership, so a schedule that crashes more can
     only end in [Not_enough_members] — legal, but boring. *)
  let crash_budget = ref ((n - 1) / 2) in
  let loss_burst () =
    let rate = float_of_int (int 20 300) /. 1000. in
    let dur = int (Time.ms 50) (Time.ms 500) in
    push (rand_t ()) (Loss_burst (rate, dur))
  in
  (* Probabilities are generated in 1/1000 steps so the %g text form
     round-trips exactly (see the text-form comment below). *)
  let milli lo hi = float_of_int (int lo hi) /. 1000. in
  let n_events = int 2 5 in
  for _ = 1 to n_events do
    match int 0 8 with
    | 0 when !crash_budget > 0 ->
        decr crash_budget;
        let i = Random.State.int st n in
        let at = rand_t () in
        push at (Crash i);
        if Random.State.bool st then
          push (at + int (Time.ms 300) (Time.ms 1500)) (Restart i)
    | 0 -> loss_burst ()
    | 1 ->
        let i = Random.State.int st n in
        let at = rand_t () in
        push at (Pause i);
        push (at + int (Time.ms 200) (Time.sec 2)) (Resume i)
    | 2 when n >= 2 ->
        let side = Array.init n (fun _ -> Random.State.bool st) in
        (* Force both sides non-empty, at two distinct indices. *)
        let i_t = Random.State.int st n in
        let i_f = (i_t + 1 + Random.State.int st (n - 1)) mod n in
        side.(i_t) <- true;
        side.(i_f) <- false;
        let pick v =
          Array.to_list side
          |> List.mapi (fun i s -> if s = v then Some i else None)
          |> List.filter_map Fun.id
        in
        let at = rand_t () in
        push at (Partition (pick true, pick false));
        push (at + int (Time.ms 100) (Time.ms 800)) Heal
    | 3 -> loss_burst ()
    | 4 when n >= 2 ->
        (* One-way cut: [dst] goes deaf to [src] but keeps talking.
           Healed with a full heal, like partitions. *)
        let src = Random.State.int st n in
        let dst = (src + 1 + Random.State.int st (n - 1)) mod n in
        let at = rand_t () in
        push at (Oneway (src, dst));
        push (at + int (Time.ms 100) (Time.ms 800)) Heal
    | 5 ->
        push (rand_t ())
          (Burst (milli 5 50, milli 100 500, milli 300 900,
                  int (Time.ms 100) (Time.ms 800)))
    | 6 ->
        push (rand_t ()) (Duplicate (milli 20 200, int (Time.ms 100) (Time.ms 800)))
    | 7 ->
        push (rand_t ())
          (Jitter (int (Time.us 200) (Time.ms 3), int (Time.ms 100) (Time.ms 800)))
    | _ ->
        push (rand_t ()) (Corrupt (milli 5 50, int (Time.ms 100) (Time.ms 800)))
  done;
  (* The power cycle is drawn AFTER the main loop, so schedules with
     [power_cycles:false] (the default, and every pre-existing caller)
     are byte-identical to what this seed always produced.  One per
     schedule: it takes everything down regardless of the crash budget
     — the (n-1)/2 bound protects quorum recovery among SURVIVORS, and
     a total power loss has none; durable recovery, not auto-heal, is
     what brings the group back. *)
  if power_cycles then
    push
      (int (horizon / 4) horizon)
      (Power_cycle_all (int (Time.ms 100) (Time.ms 400)));
  sort (List.rev !steps)

(* ----- text form -----

   Times in integer nanoseconds so [of_string (to_string s)] replays
   the exact schedule; loss rates are generated in 1/1000 steps, which
   %g prints and [float_of_string] reads back to the same float. *)

let ids l = String.concat "," (List.map string_of_int l)

let action_to_string = function
  | Crash i -> Printf.sprintf "crash %d" i
  | Restart i -> Printf.sprintf "restart %d" i
  | Pause i -> Printf.sprintf "pause %d" i
  | Resume i -> Printf.sprintf "resume %d" i
  | Partition (a, b) -> Printf.sprintf "part %s/%s" (ids a) (ids b)
  | Heal -> "heal"
  | Loss_burst (rate, dur) -> Printf.sprintf "loss %g %d" rate dur
  | Oneway (src, dst) -> Printf.sprintf "oneway %d %d" src dst
  | Burst (p_gb, p_bg, loss_bad, dur) ->
      Printf.sprintf "burst %g %g %g %d" p_gb p_bg loss_bad dur
  | Duplicate (prob, dur) -> Printf.sprintf "dup %g %d" prob dur
  | Jitter (ns, dur) -> Printf.sprintf "jitter %d %d" ns dur
  | Corrupt (prob, dur) -> Printf.sprintf "corrupt %g %d" prob dur
  | Power_cycle_all outage -> Printf.sprintf "powercycle %d" outage

let to_string sched =
  String.concat "; "
    (List.map (fun s -> Printf.sprintf "%d:%s" s.at (action_to_string s.action)) sched)

let parse_ids s = List.map int_of_string (String.split_on_char ',' s)

let action_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "crash"; i ] -> Crash (int_of_string i)
  | [ "restart"; i ] -> Restart (int_of_string i)
  | [ "pause"; i ] -> Pause (int_of_string i)
  | [ "resume"; i ] -> Resume (int_of_string i)
  | [ "part"; sides ] -> (
      match String.split_on_char '/' sides with
      | [ a; b ] -> Partition (parse_ids a, parse_ids b)
      | _ -> invalid_arg ("Fault.of_string: bad partition " ^ s))
  | [ "heal" ] -> Heal
  | [ "loss"; rate; dur ] -> Loss_burst (float_of_string rate, int_of_string dur)
  | [ "oneway"; src; dst ] -> Oneway (int_of_string src, int_of_string dst)
  | [ "burst"; p_gb; p_bg; loss_bad; dur ] ->
      Burst
        ( float_of_string p_gb,
          float_of_string p_bg,
          float_of_string loss_bad,
          int_of_string dur )
  | [ "dup"; prob; dur ] -> Duplicate (float_of_string prob, int_of_string dur)
  | [ "jitter"; ns; dur ] -> Jitter (int_of_string ns, int_of_string dur)
  | [ "corrupt"; prob; dur ] -> Corrupt (float_of_string prob, int_of_string dur)
  | [ "powercycle"; outage ] -> Power_cycle_all (int_of_string outage)
  | _ -> invalid_arg ("Fault.of_string: bad action " ^ s)

let of_string str =
  let step s =
    match String.index_opt s ':' with
    | None -> invalid_arg ("Fault.of_string: missing time in " ^ s)
    | Some i ->
        {
          at = int_of_string (String.trim (String.sub s 0 i));
          action =
            action_of_string (String.sub s (i + 1) (String.length s - i - 1));
        }
  in
  String.split_on_char ';' str
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map step |> sort

let pp ppf sched =
  List.iter
    (fun s ->
      Format.fprintf ppf "  %8.1f ms  %s@." (Time.to_ms s.at)
        (action_to_string s.action))
    sched
