open Amoeba_sim
open Amoeba_net
open Amoeba_flip

type t = {
  engine : Engine.t;
  cost : Cost_model.t;
  trace : Trace.t;
  net : Medium.t;
  machines : Machine.t array;
  flips : Flip.t array;
}

let create ?(cost = Cost_model.default) ?(seed = 1) ?(fabric = Medium.Shared)
    ~n () =
  let engine = Engine.create ~seed () in
  let trace = Trace.create () in
  let net = Medium.create engine cost fabric in
  let machines =
    Array.init n (fun i ->
        Machine.create engine cost trace net ~name:(Printf.sprintf "m%d" i)
          ~id:i)
  in
  let flips = Array.map Flip.create machines in
  { engine; cost; trace; net; machines; flips }

let size t = Array.length t.machines
let machine t i = t.machines.(i)
let flip t i = t.flips.(i)

(* Reboot a crashed machine: fresh NIC under the old station id, and a
   fresh FLIP stack installed as its handler.  The old flip (and any
   kernels on it) stays dead with the old NIC; callers re-join groups
   through the new [flip t i]. *)
let restart t i =
  if not (Machine.is_alive t.machines.(i)) then begin
    Machine.restart t.machines.(i);
    t.flips.(i) <- Flip.create t.machines.(i)
  end
let spawn t f = Engine.spawn t.engine f

(* Run an application process *on* machine [i]: it joins the machine's
   current lifecycle group, so it is crash-stopped with its host (and
   does not come back on restart — reboots start fresh processes). *)
let spawn_on t i f =
  Engine.spawn ~group:(Machine.group t.machines.(i)) t.engine f
let run ?until t = Engine.run ?until t.engine
let now t = Engine.now t.engine
