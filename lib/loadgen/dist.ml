type t = Fixed of int | Uniform of int * int | Lognormal of float * float

let of_string s =
  let int_arg name v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (Printf.sprintf "%s: bad size %S" name v)
  in
  match String.split_on_char ':' s with
  | [ "fixed"; n ] -> Result.map (fun n -> Fixed n) (int_arg "fixed" n)
  | [ "uniform"; a; b ] -> (
      match (int_arg "uniform" a, int_arg "uniform" b) with
      | Ok a, Ok b when a <= b -> Ok (Uniform (a, b))
      | Ok _, Ok _ -> Error "uniform: min > max"
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | [ "lognormal"; m; sg ] -> (
      match (float_of_string_opt m, float_of_string_opt sg) with
      | Some m, Some sg when m >= 1.0 && sg >= 0.0 -> Ok (Lognormal (m, sg))
      | _ -> Error (Printf.sprintf "lognormal: bad median/sigma %S:%S" m sg))
  | _ ->
      Error
        (Printf.sprintf
           "unknown value distribution %S (fixed:N | uniform:MIN:MAX | \
            lognormal:MEDIAN:SIGMA)"
           s)

let to_string = function
  | Fixed n -> Printf.sprintf "fixed:%d" n
  | Uniform (a, b) -> Printf.sprintf "uniform:%d:%d" a b
  | Lognormal (m, sg) -> Printf.sprintf "lognormal:%g:%g" m sg

let draw t rng =
  match t with
  | Fixed n -> n
  | Uniform (a, b) -> a + Random.State.int rng (b - a + 1)
  | Lognormal (median, sigma) ->
      (* Box-Muller; both uniforms are always drawn so the rng stream
         stays aligned whatever the outcome. *)
      let u1 = Random.State.float rng 1.0 in
      let u2 = Random.State.float rng 1.0 in
      let z = sqrt (-2.0 *. log (1.0 -. u1)) *. cos (2.0 *. Float.pi *. u2) in
      max 1 (int_of_float (Float.round (median *. exp (sigma *. z))))

let mean = function
  | Fixed n -> float_of_int n
  | Uniform (a, b) -> float_of_int (a + b) /. 2.0
  | Lognormal (median, sigma) -> median *. exp (sigma *. sigma /. 2.0)
