(** SLO-driven saturation search: the highest offered load a
    configuration sustains while meeting a tail-latency SLO.

    The search is generic over the measurement function so the policy
    is testable without a simulator: bracket the knee by doubling the
    rate until the SLO fails, then bisect the bracket geometrically
    (probe at [sqrt (lo · hi)] — rates live on a log scale) until
    [hi / lo <= 1 + tol].  Deterministic given a deterministic
    measurement function, which {!Driver.run} is under a fixed seed. *)

type slo = {
  p99_ms : float;  (** the trial's p99 must not exceed this *)
  min_completion : float;
      (** and its completed/attempted ratio must reach this (0.95
          catches a meltdown whose survivors still look fast) *)
}

type measurement = {
  m_p99_ms : float;
  m_completion : float;
  m_throughput : float;
}

type probe = {
  rate : float;
  p99_ms : float;
  completion : float;
  throughput : float;
  pass : bool;
}

type outcome = {
  knee : float;
      (** highest offered rate that passed the SLO; 0 if even the
          floor rate failed *)
  throughput_at_knee : float;
  p99_at_knee : float;
  completion_at_knee : float;
  probes : probe list;  (** in evaluation order *)
  converged : bool;
      (** a failing bracket was found and tightened to within [tol]
          inside the probe budget *)
}

val search :
  ?lo:float ->
  ?tol:float ->
  ?max_probes:int ->
  slo:slo ->
  (float -> measurement) ->
  outcome
(** [lo] (default 50.0) is the floor rate the search starts from;
    [tol] (default 0.05) the relative width the bracket must reach;
    [max_probes] (default 14) bounds total measurements.  The doubling
    phase gives up (unconverged) if the SLO still passes at [2^20·lo]
    — an unsaturable configuration, not a knee. *)

val pp_outcome : Format.formatter -> outcome -> unit
