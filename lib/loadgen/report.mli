(** The loadgen sweep: saturation search across shard count × fabric,
    the knee-of-curve table, and the validated [BENCH_loadgen.json]
    emission shared by [bench/main.exe loadgen] and [amoeba loadgen
    --sweep]. *)

type params = {
  slo : Saturation.slo;
  mix : Mix.t;
  keys : int;
  value_dist : Dist.t;
  txn_size : int;
  duration_ms : int;
  warmup_ms : int;
  replication : int;
  wire_mbps : int;
  max_batch : int;
  pipeline_depth : int;
  lo : float;  (** floor rate the search starts from *)
  tol : float;
  max_probes : int;
  seed : int;
}

val default_params : smoke:bool -> params
(** Full: YCSB-A + 5 % 3-key transactions, p99 ≤ 50 ms at ≥ 95 %
    completion, 2 s windows.  Smoke: tiny windows and probe budget. *)

type row = {
  shards : int;
  hosts : int;
  routers : int;
  net : string;  (** as {!Amoeba_net.Medium.net_of_string} accepts *)
  outcome : Saturation.outcome;
}

val sweep_configs : smoke:bool -> (int * int * int * string) list
(** [(shards, hosts, routers, net)] per configuration.  Full: shard
    counts 1/2/4/8 on both the shared Ether and the switch, plus
    bursty-loss rows on each fabric — 10 configurations.  Smoke: two
    tiny ones, one with the adversarial profile. *)

val run_row :
  params -> shards:int -> hosts:int -> routers:int -> net:string -> row
(** One saturation search; raises [Failure] on an unparseable [net]. *)

val sweep : ?progress:(row -> unit) -> smoke:bool -> params -> row list

val print_header : unit -> unit

val print_row : row -> unit

val to_json : params -> row list -> Bench_json.t
(** The full [BENCH_loadgen.json] document.  Always passes
    {!validate} by construction. *)

val validate : Bench_json.t -> (unit, string) result
(** The schema check: the document must carry
    [schema]/[suite]/[slo_p99_ms]/[rows], and every row the required
    fields ([shards], [hosts], [net], [mix], [knee_ops_per_sec],
    [p99_ms_at_knee], [completion_at_knee], [probes], [converged],
    [seed]) with the right JSON types. *)

val write_json : path:string -> params -> row list -> unit
(** Validates, then writes; raises [Failure] if validation fails (a
    schema bug, not an I/O condition). *)
