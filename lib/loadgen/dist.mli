(** Value-size distributions for generated writes. *)

type t =
  | Fixed of int  (** every value exactly this many bytes *)
  | Uniform of int * int  (** inclusive [min, max] *)
  | Lognormal of float * float
      (** [(median, sigma)]: sizes are [median · exp(σZ)], Z standard
          normal — the classic heavy-tailed object-size shape (most
          values small, a fat tail of large ones) *)

val of_string : string -> (t, string) result
(** ["fixed:32"], ["uniform:16:256"], ["lognormal:64:1.0"]. *)

val to_string : t -> string

val draw : t -> Random.State.t -> int
(** A size in bytes, always >= 1.  Each draw consumes a fixed number
    of rng draws per constructor, so a seeded stream is reproducible
    independent of the values drawn. *)

val mean : t -> float
(** The distribution's expected size (exact for [Fixed]/[Uniform],
    the analytic [median·exp(σ²/2)] for [Lognormal]). *)
