type slo = { p99_ms : float; min_completion : float }

type measurement = {
  m_p99_ms : float;
  m_completion : float;
  m_throughput : float;
}

type probe = {
  rate : float;
  p99_ms : float;
  completion : float;
  throughput : float;
  pass : bool;
}

type outcome = {
  knee : float;
  throughput_at_knee : float;
  p99_at_knee : float;
  completion_at_knee : float;
  probes : probe list;
  converged : bool;
}

let search ?(lo = 50.0) ?(tol = 0.05) ?(max_probes = 14) ~slo:(slo : slo) f =
  if lo <= 0.0 then invalid_arg "Saturation.search: lo <= 0";
  if tol <= 0.0 then invalid_arg "Saturation.search: tol <= 0";
  let probes = ref [] in
  let eval rate =
    let m = f rate in
    let p =
      {
        rate;
        p99_ms = m.m_p99_ms;
        completion = m.m_completion;
        throughput = m.m_throughput;
        pass =
          (* A nan p99 (no completions at all) must fail, so compare
             in the passing direction. *)
          m.m_p99_ms <= slo.p99_ms && m.m_completion >= slo.min_completion;
      }
    in
    probes := p :: !probes;
    p
  in
  let budget () = List.length !probes < max_probes in
  let finish best converged =
    match best with
    | None ->
        {
          knee = 0.0;
          throughput_at_knee = 0.0;
          p99_at_knee = nan;
          completion_at_knee = nan;
          probes = List.rev !probes;
          converged;
        }
    | Some (b : probe) ->
        {
          knee = b.rate;
          throughput_at_knee = b.throughput;
          p99_at_knee = b.p99_ms;
          completion_at_knee = b.completion;
          probes = List.rev !probes;
          converged;
        }
  in
  (* Phase 2: geometric bisection of a (passing lo, failing hi)
     bracket. *)
  let rec bisect lo_r best hi_r =
    if hi_r /. lo_r <= 1.0 +. tol then finish (Some best) true
    else if not (budget ()) then finish (Some best) false
    else
      let mid = sqrt (lo_r *. hi_r) in
      let p = eval mid in
      if p.pass then bisect mid p hi_r else bisect lo_r best mid
  in
  (* Phase 1: bracket by doubling from the floor. *)
  let rec bracket lo_r best doublings =
    if doublings > 20 then finish (Some best) false
    else if not (budget ()) then finish (Some best) false
    else
      let r = lo_r *. 2.0 in
      let p = eval r in
      if p.pass then bracket r p (doublings + 1) else bisect lo_r best r
  in
  let p0 = eval lo in
  if not p0.pass then finish None false else bracket lo p0 0

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>%a@,knee %.0f ops/s (throughput %.0f, p99 %.2f ms, \
              completion %.3f) after %d probes%s@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf p ->
         Fmt.pf ppf "  probe %8.0f ops/s: p99 %8.2f ms  completion %.3f  %s"
           p.rate p.p99_ms p.completion
           (if p.pass then "pass" else "FAIL")))
    o.probes o.knee o.throughput_at_knee o.p99_at_knee o.completion_at_knee
    (List.length o.probes)
    (if o.converged then "" else "  [did not converge]")
