open Amoeba_sim
open Amoeba_net
open Amoeba_harness
open Amoeba_service

type config = {
  shards : int;
  hosts : int;
  routers : int;
  replication : int;
  wire_mbps : int;
  net : Medium.spec * Medium.conditions;
  max_batch : int;
  batch_delay_us : int;
  pipeline_depth : int;
  mix : Mix.t;
  keys : int;
  value_dist : Dist.t;
  txn_size : int;
  duration : Time.t;
  warmup : Time.t;
  seed : int;
}

let default =
  {
    shards = 1;
    hosts = 4;
    routers = 2;
    replication = 2;
    wire_mbps = 100;
    net = (Medium.Shared, Medium.clean);
    max_batch = 32;
    batch_delay_us = 500;
    pipeline_depth = 4;
    mix = Mix.ycsb_a;
    keys = 1_000;
    value_dist = Dist.Fixed 32;
    txn_size = 3;
    duration = Time.sec 2;
    warmup = Time.ms 500;
    seed = 11;
  }

type trial = {
  offered : float;
  attempted : int;
  completed : int;
  failed : int;
  throughput : float;
  completion : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  reads : int;
  updates : int;
  inserts : int;
  txns : int;
  hist : Histogram.t;
}

type acc = {
  hist : Histogram.t;
  mutable attempted : int;
  mutable completed : int;
  mutable failed : int;
  mutable reads : int;
  mutable updates : int;
  mutable inserts : int;
  mutable txns : int;
  mutable in_flight : int;
  mutable issued : int;
}

(* Multi-key transactions are single-shard by contract, so pick the
   base key's shard and walk the key space forward collecting keys
   that hash onto it.  Shards are balanced, so the expected scan is
   ~[want * shards] keys; the cap only guards a pathological map. *)
let colocated_keys map ~keys ~base ~want =
  let s0 = Shard_map.shard_of_key map (Keygen.key base) in
  let found = ref [ base ] and n = ref 1 and j = ref 1 in
  while !n < want && !j < keys && !j < 4096 do
    let ki = (base + !j) mod keys in
    if Shard_map.shard_of_key map (Keygen.key ki) = s0 then begin
      found := ki :: !found;
      incr n
    end;
    incr j
  done;
  List.rev !found

let make_value cfg rng ~issued =
  let size = Dist.draw cfg.value_dist rng in
  (* Unique stamp then pad: distinct bodies keep the checker's
     no-duplicates invariant meaningful (same scheme as Workload). *)
  let stamp = Printf.sprintf "v%d." issued in
  let pad = max 0 (size - String.length stamp) in
  stamp ^ String.make pad 'x'

let one_op eng cfg ~map ~acc ~kg ~rng ~arrive ~measure_from router =
  let kind = Mix.draw cfg.mix rng in
  let measured = arrive >= measure_from in
  acc.issued <- acc.issued + 1;
  let issued = acc.issued in
  if measured then acc.attempted <- acc.attempted + 1;
  acc.in_flight <- acc.in_flight + 1;
  let ok =
    match kind with
    | Mix.Read -> (
        let ki = Keygen.sample kg rng in
        match Router.get router (Keygen.key ki) with
        | Router.Failed _ -> false
        | Router.Value _ | Router.Not_found | Router.Written -> true)
    | Mix.Update -> (
        let ki = Keygen.sample kg rng in
        let v = make_value cfg rng ~issued in
        match Router.put router (Keygen.key ki) v with
        | Router.Failed _ -> false
        | _ -> true)
    | Mix.Insert -> (
        let ki = Keygen.insert kg in
        let v = make_value cfg rng ~issued in
        match Router.put router (Keygen.key ki) v with
        | Router.Failed _ -> false
        | _ -> true)
    | Mix.Txn -> (
        let base = Keygen.sample kg rng in
        let kis =
          colocated_keys map ~keys:cfg.keys ~base ~want:(max 1 cfg.txn_size)
        in
        (* Read-modify-write: read every key, then rewrite every key —
           one batch RPC, whose writes commit as one sequencer round. *)
        let gets = List.map (fun ki -> Router.Get (Keygen.key ki)) kis in
        let puts =
          List.map
            (fun ki -> Router.Put (Keygen.key ki, make_value cfg rng ~issued))
            kis
        in
        match Router.txn router (gets @ puts) with
        | Error _ -> false
        | Ok replies ->
            not
              (List.exists
                 (function Router.Failed _ -> true | _ -> false)
                 replies))
  in
  (* CO-safe accounting: latency runs from the intended arrival, so
     time spent queued behind a backlog is charged, never skipped. *)
  let dt_ms = Time.to_ms (Engine.now eng - arrive) in
  acc.in_flight <- acc.in_flight - 1;
  if measured then
    if not ok then acc.failed <- acc.failed + 1
    else begin
      acc.completed <- acc.completed + 1;
      Histogram.add acc.hist dt_ms;
      match kind with
      | Mix.Read -> acc.reads <- acc.reads + 1
      | Mix.Update -> acc.updates <- acc.updates + 1
      | Mix.Insert -> acc.inserts <- acc.inserts + 1
      | Mix.Txn -> acc.txns <- acc.txns + 1
    end

let run cfg ~rate =
  if rate <= 0.0 then invalid_arg "Driver.run: rate <= 0";
  let fabric, conditions = cfg.net in
  let map =
    Shard_map.create ~shards:cfg.shards ~replication:cfg.replication
      ~hosts:(List.init cfg.hosts Fun.id) ()
  in
  let cost = Cost_model.(with_mbps cfg.wire_mbps default) in
  let cl =
    Cluster.create ~cost ~seed:cfg.seed ~fabric ~n:(cfg.hosts + cfg.routers) ()
  in
  let eng = cl.Cluster.engine in
  let acc =
    {
      hist = Histogram.create ();
      attempted = 0;
      completed = 0;
      failed = 0;
      reads = 0;
      updates = 0;
      inserts = 0;
      txns = 0;
      in_flight = 0;
      issued = 0;
    }
  in
  Cluster.spawn cl (fun () ->
      let svc =
        Service.deploy cl ~map ~resilience:1 ~pipeline:cfg.pipeline_depth ()
      in
      let routers =
        Array.init cfg.routers (fun i ->
            Router.create
              (Cluster.flip cl (cfg.hosts + i))
              ~max_batch:cfg.max_batch
              ~pipeline:(if cfg.max_batch > 1 then 1 else 4)
              ~batch_delay:(Time.us cfg.batch_delay_us)
              ~map
              ~endpoints:(Service.endpoints svc) ())
      in
      (* Impair the wire only once the service stands: the trial
         measures steady state under these conditions, not whether
         bring-up survives them (the chaos suites cover that). *)
      Medium.set_conditions cl.Cluster.net conditions;
      let kg = Keygen.create ~keys:cfg.keys cfg.mix.Mix.dist in
      let start = Engine.now eng in
      let measure_from = start + cfg.warmup in
      let stop = start + cfg.warmup + cfg.duration in
      let arrivals = Random.State.make [| cfg.seed; 0x10ad |] in
      (* Arrival times accumulate in float ns from the trial start so
         rounding never drifts the offered rate. *)
      let t_next = ref 0.0 in
      let k = ref 0 in
      let continue = ref true in
      while !continue do
        let u = Random.State.float arrivals 1.0 in
        t_next := !t_next +. (-.log (1.0 -. u) /. rate *. 1e9);
        let arrive = start + int_of_float !t_next in
        if arrive >= stop then continue := false
        else begin
          Engine.sleep eng (max 0 (arrive - Engine.now eng));
          let kk = !k in
          incr k;
          let rng = Random.State.make [| cfg.seed; 0x10ae; kk |] in
          Cluster.spawn cl (fun () ->
              one_op eng cfg ~map ~acc ~kg ~rng ~arrive ~measure_from
                routers.(kk mod cfg.routers))
        end
      done;
      (* Drain stragglers, bounded by a grace period: whatever is
         still stuck counts against the completion ratio. *)
      let deadline = Engine.now eng + Time.sec 3 in
      while acc.in_flight > 0 && Engine.now eng < deadline do
        Engine.sleep eng (Time.ms 10)
      done);
  Cluster.run ~until:(cfg.warmup + cfg.duration + Time.sec 60) cl;
  let dur_s = Time.to_sec cfg.duration in
  {
    offered = rate;
    attempted = acc.attempted;
    completed = acc.completed;
    failed = acc.failed;
    throughput =
      (if dur_s > 0.0 then float_of_int acc.completed /. dur_s else 0.0);
    completion =
      (if acc.attempted = 0 then 1.0
       else float_of_int acc.completed /. float_of_int acc.attempted);
    mean_ms = Histogram.mean acc.hist;
    p50_ms = Histogram.percentile acc.hist 50.0;
    p95_ms = Histogram.percentile acc.hist 95.0;
    p99_ms = Histogram.percentile acc.hist 99.0;
    max_ms = Histogram.max_value acc.hist;
    reads = acc.reads;
    updates = acc.updates;
    inserts = acc.inserts;
    txns = acc.txns;
    hist = acc.hist;
  }

let pp_trial ppf (t : trial) =
  Fmt.pf ppf
    "@[<v>offered %.0f ops/s: %d attempted, %d completed, %d failed \
     (%.0f ops/s through, completion %.3f)@,\
     latency ms: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f@,\
     %d reads, %d updates, %d inserts, %d txns@]"
    t.offered t.attempted t.completed t.failed t.throughput t.completion
    t.mean_ms t.p50_ms t.p95_ms t.p99_ms t.max_ms t.reads t.updates t.inserts
    t.txns
