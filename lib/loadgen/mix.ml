module Keygen = Amoeba_service.Keygen

type t = {
  name : string;
  read : float;
  insert : float;
  txn : float;
  dist : Keygen.dist;
}

type op_kind = Read | Update | Insert | Txn

let zipf = Keygen.Zipf 0.99

let ycsb_a = { name = "ycsb-a"; read = 0.5; insert = 0.0; txn = 0.0; dist = zipf }
let ycsb_b = { name = "ycsb-b"; read = 0.95; insert = 0.0; txn = 0.0; dist = zipf }
let ycsb_c = { name = "ycsb-c"; read = 1.0; insert = 0.0; txn = 0.0; dist = zipf }

let ycsb_d =
  { name = "ycsb-d"; read = 0.95; insert = 0.05; txn = 0.0;
    dist = Keygen.Latest 0.99 }

let of_string s =
  let s = String.lowercase_ascii s in
  let s =
    if String.length s > 5 && String.sub s 0 5 = "ycsb-" then
      String.sub s 5 (String.length s - 5)
    else s
  in
  match s with
  | "a" -> Ok ycsb_a
  | "b" -> Ok ycsb_b
  | "c" -> Ok ycsb_c
  | "d" -> Ok ycsb_d
  | _ -> Error (Printf.sprintf "unknown mix %S (a|b|c|d)" s)

let with_txn m ~size_hint ratio =
  if ratio < 0.0 || ratio > 1.0 then invalid_arg "Mix.with_txn: bad ratio";
  let update = 1.0 -. m.read -. m.insert -. m.txn in
  let from_update = Float.min update ratio in
  let from_read = ratio -. from_update in
  if from_read > m.read +. 1e-9 then
    invalid_arg "Mix.with_txn: ratio exceeds update + read share";
  {
    m with
    read = m.read -. from_read;
    txn = m.txn +. ratio;
    name = Printf.sprintf "%s+txn%g@%d" m.name ratio size_hint;
  }

let draw m rng =
  let u = Random.State.float rng 1.0 in
  if u < m.read then Read
  else if u < m.read +. m.insert then Insert
  else if u < m.read +. m.insert +. m.txn then Txn
  else Update
