(** The open-loop load driver: one measured trial of a YCSB-style mix
    against a freshly deployed sharded service at a fixed offered rate.

    Open-loop and coordinated-omission-safe by construction: arrivals
    are a Poisson process scheduled on the simulation clock,
    {e independent} of completions — a saturated service cannot slow
    the arrival stream down — and each operation's latency is measured
    from its {e intended arrival time}, so queueing delay a backlogged
    service inflicts is charged to the operation rather than silently
    skipped.  Latencies accumulate into a log-bucketed {!Histogram}
    (O(1) per sample; ≤ [gamma−1] relative error on percentiles).

    Every trial builds its own cluster from the config seed, so a trial
    is a pure function of [(config, rate)] — the property the
    {!Saturation} search needs to be deterministic. *)

open Amoeba_sim
open Amoeba_net

type config = {
  shards : int;
  hosts : int;  (** replica machines; router machines come extra *)
  routers : int;
  replication : int;
  wire_mbps : int;
  net : Medium.spec * Medium.conditions;
      (** fabric + impairment profile (see {!Medium.net_of_string});
          conditions are applied after deploy, so the measured window
          sees them but cluster bring-up does not *)
  max_batch : int;
  batch_delay_us : int;
  pipeline_depth : int;
  mix : Mix.t;
  keys : int;
  value_dist : Dist.t;
  txn_size : int;  (** keys per multi-key transaction *)
  duration : Time.t;  (** measured window *)
  warmup : Time.t;  (** excluded from every reported figure *)
  seed : int;
}

val default : config
(** 1 shard over 4 hosts + 2 routers, replication 2, 100 Mbit clean
    Ether, batch 32 / depth 4, YCSB-A over 1000 keys, 32-byte values,
    3-key transactions, 2 s window after 500 ms warmup, seed 11. *)

type trial = {
  offered : float;  (** the rate this trial was driven at (ops/s) *)
  attempted : int;  (** arrivals inside the measured window *)
  completed : int;
  failed : int;  (** explicit failures (attempts exhausted / txn error) *)
  throughput : float;  (** completed per second of measured window *)
  completion : float;
      (** completed / attempted — ops still stuck at drain time count
          against it, which is how the SLO predicate sees a meltdown
          even when nothing returned [Failed] *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  reads : int;
  updates : int;
  inserts : int;
  txns : int;
  hist : Histogram.t;
}

val run : config -> rate:float -> trial
(** Deterministic in [(config, rate)].  Blocks for the whole simulated
    trial (bring-up + warmup + window + a 3 s drain grace). *)

val pp_trial : Format.formatter -> trial -> unit
