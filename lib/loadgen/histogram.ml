(* Range covered at full resolution, in ms: 1 µs to ~3 hours.  Values
   below land in bucket 0 (underflow); values above clamp to the last
   bucket.  Sim latencies live well inside this. *)
let lo_bound = 1e-3
let hi_bound = 1e7

type t = {
  gamma : float;
  log_gamma : float;
  counts : int array;
  mutable n : int;
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(gamma = 1.02) () =
  if gamma <= 1.0 then invalid_arg "Histogram.create: gamma <= 1";
  let log_gamma = log gamma in
  let nb = 2 + int_of_float (ceil (log (hi_bound /. lo_bound) /. log_gamma)) in
  {
    gamma;
    log_gamma;
    counts = Array.make nb 0;
    n = 0;
    vmin = infinity;
    vmax = neg_infinity;
  }

let gamma t = t.gamma
let max_rel_error t = t.gamma -. 1.0

let bucket_of t v =
  if v <= lo_bound then 0
  else
    min
      (Array.length t.counts - 1)
      (1 + int_of_float (log (v /. lo_bound) /. t.log_gamma))

(* Upper edge of bucket i: every value in the bucket is <= this and
   > this/gamma, hence the <= gamma-1 relative error bound. *)
let repr t i =
  if i = 0 then lo_bound else lo_bound *. (t.gamma ** float_of_int i)

let add t v =
  let v = if Float.is_nan v then 0.0 else Float.max v 0.0 in
  t.counts.(bucket_of t v) <- t.counts.(bucket_of t v) + 1;
  t.n <- t.n + 1;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.n

let merge a b =
  if a.gamma <> b.gamma then invalid_arg "Histogram.merge: gamma mismatch";
  let counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts in
  {
    gamma = a.gamma;
    log_gamma = a.log_gamma;
    counts;
    n = a.n + b.n;
    vmin = Float.min a.vmin b.vmin;
    vmax = Float.max a.vmax b.vmax;
  }

let clamp t v = Float.max t.vmin (Float.min t.vmax v)

let mean t =
  if t.n = 0 then nan
  else begin
    let sum = ref 0.0 in
    Array.iteri
      (fun i c -> if c > 0 then sum := !sum +. (float_of_int c *. repr t i))
      t.counts;
    !sum /. float_of_int t.n
  end

let min_value t = if t.n = 0 then nan else t.vmin
let max_value t = if t.n = 0 then nan else t.vmax

let percentile t p =
  if t.n = 0 then nan
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.n)))
    in
    let rank = min rank t.n in
    let acc = ref 0 and found = ref nan and i = ref 0 in
    while Float.is_nan !found && !i < Array.length t.counts do
      acc := !acc + t.counts.(!i);
      if !acc >= rank then found := clamp t (repr t !i);
      incr i
    done;
    !found
  end

let buckets t = Array.copy t.counts
