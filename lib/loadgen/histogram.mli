(** A log-bucketed latency histogram (HdrHistogram-style).

    Buckets grow geometrically by a factor [gamma]: bucket [i] covers
    [(lo·γ^(i-1), lo·γ^i]], so any recorded value is reported with a
    relative error of at most [γ - 1] (1.02 ⇒ 2 %) whatever its
    magnitude.  Recording is O(1) — one [log] and an array increment —
    which is what an open-loop driver needs: the measurement must never
    backpressure the arrival process, or the histogram itself would
    reintroduce the coordinated omission it exists to avoid.

    Counts are integers, so {!merge} is exact and associative — the
    per-worker histograms of a sweep can be combined in any order and
    every reported figure (including {!mean}, which is derived from the
    bucket representatives, not a float sum) comes out identical. *)

type t

val create : ?gamma:float -> unit -> t
(** [gamma] (default 1.02) is the bucket growth factor; must be
    > 1.  The value range covered with full resolution is
    [1e-3 .. 1e7] ms (1 µs to ~3 h); values outside clamp to the end
    buckets. *)

val gamma : t -> float

val max_rel_error : t -> float
(** [gamma t -. 1.0] — the worst-case relative error of any reported
    percentile against the exact value. *)

val add : t -> float -> unit
(** Record one value (ms).  Negative values count as zero. *)

val count : t -> int

val merge : t -> t -> t
(** Pointwise sum — a new histogram; inputs unchanged.  Associative
    and commutative (integer counts; min/max fold).  Raises
    [Invalid_argument] if the gammas differ. *)

val mean : t -> float
(** Mean of the bucket representatives — within [max_rel_error] of the
    exact mean, and stable under any merge order.  [nan] when empty. *)

val min_value : t -> float
(** Exact smallest recorded value ([nan] when empty). *)

val max_value : t -> float
(** Exact largest recorded value ([nan] when empty). *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100]: the upper edge of the bucket
    holding the value of rank [⌈p/100·count⌉], clamped to the exact
    observed [[min, max]].  [nan] when empty. *)

val buckets : t -> int array
(** A copy of the raw bucket counts (index 0 = the underflow bucket) —
    test hook for the merge-associativity property. *)
