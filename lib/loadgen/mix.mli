(** YCSB-style operation mixes.

    A mix is the probability split over operation kinds plus the key
    popularity shape the generator samples from (shared with the
    closed-loop workload engine via {!Amoeba_service.Keygen}). *)

type t = {
  name : string;  (** for tables and JSON rows, e.g. ["ycsb-a"] *)
  read : float;  (** P(single-key read) *)
  insert : float;  (** P(insert of a brand-new key) — YCSB-D *)
  txn : float;  (** P(multi-key read-modify-write transaction) *)
  dist : Amoeba_service.Keygen.dist;
}
(** The remaining probability mass, [1 - read - insert - txn], is
    single-key updates. *)

type op_kind = Read | Update | Insert | Txn

val ycsb_a : t
(** 50 % reads / 50 % updates, Zipf 0.99 — update-heavy. *)

val ycsb_b : t
(** 95 % reads / 5 % updates, Zipf 0.99 — read-mostly. *)

val ycsb_c : t
(** 100 % reads, Zipf 0.99. *)

val ycsb_d : t
(** 95 % reads / 5 % inserts, read-latest popularity: reads skew to
    the most recently inserted keys. *)

val of_string : string -> (t, string) result
(** ["a"] | ["b"] | ["c"] | ["d"] (also with a ["ycsb-"] prefix). *)

val with_txn : t -> size_hint:int -> float -> t
(** [with_txn m ratio] moves [ratio] of the probability mass into
    multi-key transactions, taken from the update share first, then
    from reads.  [size_hint] only decorates the name (["+txnR@N"]).
    Raises [Invalid_argument] if [ratio] exceeds the available mass. *)

val draw : t -> Random.State.t -> op_kind
(** One rng draw, always consumed. *)
