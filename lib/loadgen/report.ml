open Amoeba_net

type params = {
  slo : Saturation.slo;
  mix : Mix.t;
  keys : int;
  value_dist : Dist.t;
  txn_size : int;
  duration_ms : int;
  warmup_ms : int;
  replication : int;
  wire_mbps : int;
  max_batch : int;
  pipeline_depth : int;
  lo : float;
  tol : float;
  max_probes : int;
  seed : int;
}

let default_params ~smoke =
  {
    slo = { Saturation.p99_ms = 50.0; min_completion = 0.95 };
    mix = Mix.with_txn Mix.ycsb_a ~size_hint:3 0.05;
    keys = (if smoke then 200 else 1_000);
    value_dist = Dist.Fixed 32;
    txn_size = 3;
    duration_ms = (if smoke then 400 else 2_000);
    warmup_ms = (if smoke then 100 else 500);
    replication = 2;
    wire_mbps = 100;
    max_batch = 32;
    pipeline_depth = 4;
    lo = (if smoke then 100.0 else 50.0);
    tol = (if smoke then 0.25 else 0.08);
    max_probes = (if smoke then 8 else 14);
    seed = 11;
  }

type row = {
  shards : int;
  hosts : int;
  routers : int;
  net : string;
  outcome : Saturation.outcome;
}

(* 8 replica hosts + 4 routers matches the shard-scaling bench; every
   group member keeps its own machine up to 4 shards at replication 2.
   The impaired rows use the named --net profiles: dup and reorder
   impair the wire but leave a 50 ms SLO reachable (the knee shows
   what they cost); bursty loss puts 250 ms RPC-timeout stalls in the
   tail, so its row documents an SLO-infeasible configuration (knee 0,
   unconverged) rather than a knee.  Smoke keeps one clean and one
   adversarial config so the impaired and the all-fail paths stay
   exercised in CI. *)
let sweep_configs ~smoke =
  if smoke then [ (1, 4, 2, "ether"); (1, 4, 2, "ether+adversarial") ]
  else
    [
      (1, 8, 4, "ether");
      (2, 8, 4, "ether");
      (4, 8, 4, "ether");
      (8, 8, 4, "ether");
      (1, 8, 4, "switch");
      (2, 8, 4, "switch");
      (4, 8, 4, "switch");
      (8, 8, 4, "switch");
      (4, 8, 4, "ether+dup");
      (4, 8, 4, "ether+reorder");
      (8, 8, 4, "switch+bursty");
    ]

let config_of params ~shards ~hosts ~routers ~net =
  let netspec =
    match Medium.net_of_string net with
    | Ok n -> n
    | Error e -> failwith ("loadgen sweep: " ^ e)
  in
  {
    Driver.shards;
    hosts;
    routers;
    replication = params.replication;
    wire_mbps = params.wire_mbps;
    net = netspec;
    max_batch = params.max_batch;
    batch_delay_us = 500;
    pipeline_depth = params.pipeline_depth;
    mix = params.mix;
    keys = params.keys;
    value_dist = params.value_dist;
    txn_size = params.txn_size;
    duration = Amoeba_sim.Time.ms params.duration_ms;
    warmup = Amoeba_sim.Time.ms params.warmup_ms;
    seed = params.seed;
  }

let run_row params ~shards ~hosts ~routers ~net =
  let cfg = config_of params ~shards ~hosts ~routers ~net in
  let measure rate =
    let t = Driver.run cfg ~rate in
    {
      Saturation.m_p99_ms = t.Driver.p99_ms;
      m_completion = t.Driver.completion;
      m_throughput = t.Driver.throughput;
    }
  in
  let outcome =
    Saturation.search ~lo:params.lo ~tol:params.tol
      ~max_probes:params.max_probes ~slo:params.slo measure
  in
  { shards; hosts; routers; net; outcome }

let sweep ?progress ~smoke params =
  List.map
    (fun (shards, hosts, routers, net) ->
      let row = run_row params ~shards ~hosts ~routers ~net in
      Option.iter (fun f -> f row) progress;
      row)
    (sweep_configs ~smoke)

let print_header () =
  Printf.printf "%7s %6s | %-18s %10s %10s %9s %6s %7s %5s\n" "shards" "hosts"
    "net" "knee op/s" "through" "p99 ms" "compl" "probes" "conv"

let print_row r =
  let o = r.outcome in
  Printf.printf "%7d %6d | %-18s %10.0f %10.0f %9.2f %6.3f %7d %5s\n%!"
    r.shards r.hosts r.net o.Saturation.knee o.Saturation.throughput_at_knee
    o.Saturation.p99_at_knee o.Saturation.completion_at_knee
    (List.length o.Saturation.probes)
    (if o.Saturation.converged then "yes" else "NO")

(* JSON floats must be finite: an all-fail row has nan p99/completion,
   which Bench_json would print as "nan" — not JSON.  Encode as null. *)
let jfloat x = if Float.is_nan x then Bench_json.Null else Bench_json.Float x

let row_to_json params r =
  let o = r.outcome in
  Bench_json.Obj
    [
      ("shards", Bench_json.Int r.shards);
      ("hosts", Bench_json.Int r.hosts);
      ("routers", Bench_json.Int r.routers);
      ("net", Bench_json.Str r.net);
      ("mix", Bench_json.Str params.mix.Mix.name);
      ("knee_ops_per_sec", Bench_json.Float o.Saturation.knee);
      ("throughput_at_knee", Bench_json.Float o.Saturation.throughput_at_knee);
      ("p99_ms_at_knee", jfloat o.Saturation.p99_at_knee);
      ("completion_at_knee", jfloat o.Saturation.completion_at_knee);
      ("probes", Bench_json.Int (List.length o.Saturation.probes));
      ("converged", Bench_json.Bool o.Saturation.converged);
      ("seed", Bench_json.Int params.seed);
      ( "probe_rates",
        Bench_json.List
          (List.map
             (fun (p : Saturation.probe) ->
               Bench_json.Obj
                 [
                   ("rate", Bench_json.Float p.Saturation.rate);
                   ("p99_ms", jfloat p.Saturation.p99_ms);
                   ("completion", jfloat p.Saturation.completion);
                   ("pass", Bench_json.Bool p.Saturation.pass);
                 ])
             o.Saturation.probes) );
    ]

let to_json params rows =
  Bench_json.Obj
    [
      ("schema", Bench_json.Str "amoeba-bench/1");
      ("suite", Bench_json.Str "loadgen");
      ("slo_p99_ms", Bench_json.Float params.slo.Saturation.p99_ms);
      ("min_completion", Bench_json.Float params.slo.Saturation.min_completion);
      ("mix", Bench_json.Str params.mix.Mix.name);
      ("keys", Bench_json.Int params.keys);
      ("value_dist", Bench_json.Str (Dist.to_string params.value_dist));
      ("txn_size", Bench_json.Int params.txn_size);
      ("duration_ms", Bench_json.Int params.duration_ms);
      ("warmup_ms", Bench_json.Int params.warmup_ms);
      ("replication", Bench_json.Int params.replication);
      ("wire_mbps", Bench_json.Int params.wire_mbps);
      ("max_batch", Bench_json.Int params.max_batch);
      ("pipeline_depth", Bench_json.Int params.pipeline_depth);
      ("search_tol", Bench_json.Float params.tol);
      ("seed", Bench_json.Int params.seed);
      ("rows", Bench_json.List (List.map (row_to_json params) rows));
    ]

(* --- schema check --- *)

type jty = T_int | T_float | T_bool | T_str

let required_row_fields =
  [
    ("shards", T_int);
    ("hosts", T_int);
    ("net", T_str);
    ("mix", T_str);
    ("knee_ops_per_sec", T_float);
    ("p99_ms_at_knee", T_float);
    ("completion_at_knee", T_float);
    ("probes", T_int);
    ("converged", T_bool);
    ("seed", T_int);
  ]

let type_ok ty (v : Bench_json.t) =
  match (ty, v) with
  | T_int, Bench_json.Int _ -> true
  | T_float, (Bench_json.Float _ | Bench_json.Int _ | Bench_json.Null) ->
      (* Null = "no measurement" (all probes failed); consumers must
         handle it, so the schema admits it for float fields. *)
      true
  | T_bool, Bench_json.Bool _ -> true
  | T_str, Bench_json.Str _ -> true
  | _ -> false

let validate (doc : Bench_json.t) =
  let ( let* ) = Result.bind in
  let field name obj =
    match List.assoc_opt name obj with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  match doc with
  | Bench_json.Obj top ->
      let* schema = field "schema" top in
      let* () =
        if schema = Bench_json.Str "amoeba-bench/1" then Ok ()
        else Error "bad schema tag"
      in
      let* suite = field "suite" top in
      let* () =
        if suite = Bench_json.Str "loadgen" then Ok ()
        else Error "suite is not \"loadgen\""
      in
      let* slo = field "slo_p99_ms" top in
      let* () =
        if type_ok T_float slo && slo <> Bench_json.Null then Ok ()
        else Error "slo_p99_ms must be a number"
      in
      let* rows = field "rows" top in
      let* rows =
        match rows with
        | Bench_json.List l -> Ok l
        | _ -> Error "rows must be a list"
      in
      let check_row i = function
        | Bench_json.Obj fields ->
            List.fold_left
              (fun acc (name, ty) ->
                let* () = acc in
                let* v = Result.map_error (Printf.sprintf "row %d: %s" i)
                    (field name fields)
                in
                if type_ok ty v then Ok ()
                else
                  Error
                    (Printf.sprintf "row %d: field %S has the wrong type" i
                       name))
              (Ok ()) required_row_fields
        | _ -> Error (Printf.sprintf "row %d is not an object" i)
      in
      List.fold_left
        (fun acc (i, r) ->
          let* () = acc in
          check_row i r)
        (Ok ())
        (List.mapi (fun i r -> (i, r)) rows)
  | _ -> Error "document is not an object"

let write_json ~path params rows =
  let doc = to_json params rows in
  (match validate doc with
  | Ok () -> ()
  | Error e -> failwith ("BENCH_loadgen.json schema check failed: " ^ e));
  Bench_json.write_file path doc
