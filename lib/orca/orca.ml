open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Amoeba_core
module T = Types

module Runtime = struct
  type t = {
    flip : Flip.t;
    g : Api.group;
    engine : Engine.t;
    registry : (string, sender:int -> op_id:int -> bytes -> unit) Hashtbl.t;
    mutable next_op : int;
  }

  (* Wire format inside a group message: the object name, the writer's
     operation id, then the raw operation bytes.  Framed in a single
     allocation — this path runs once per broadcast operation. *)
  let encode ~name ~op_id op =
    let header = Printf.sprintf "%s\n%d\n" name op_id in
    let hn = String.length header and on = Bytes.length op in
    let framed = Bytes.create (hn + on) in
    Bytes.blit_string header 0 framed 0 hn;
    Bytes.blit op 0 framed hn on;
    framed

  let decode body =
    let s = Bytes.to_string body in
    match String.index_opt s '\n' with
    | None -> None
    | Some i -> (
        match String.index_from_opt s (i + 1) '\n' with
        | None -> None
        | Some j ->
            let name = String.sub s 0 i in
            let op_id = int_of_string (String.sub s (i + 1) (j - i - 1)) in
            let op = Bytes.sub body (j + 1) (Bytes.length body - j - 1) in
            Some (name, op_id, op))

  let applier t () =
    let rec loop () =
      (match Api.receive_from_group t.g with
      | T.Message { sender; body; _ } -> (
          match decode body with
          | Some (name, op_id, op) -> (
              match Hashtbl.find_opt t.registry name with
              | Some handler -> handler ~sender ~op_id op
              | None -> ())
          | None -> ())
      | T.Member_joined _ | T.Member_left _ | T.Group_reset _ | T.Expelled -> ());
      loop ()
    in
    loop ()

  let make flip g =
    let t =
      {
        flip;
        g;
        engine = Machine.engine (Flip.machine flip);
        registry = Hashtbl.create 16;
        next_op = 0;
      }
    in
    Engine.spawn t.engine (applier t);
    t

  let create flip = make flip (Api.create_group flip ())

  let join flip addr =
    match Api.join_group flip addr with
    | Ok g -> Ok (make flip g)
    | Error e -> Error e

  let address t = Api.group_address t.g
  let group t = t.g
end

module type OBJ = sig
  type state
  type op
  type result

  val apply : state -> op -> state * result
  val encode_op : op -> bytes
  val decode_op : bytes -> op option
end

module Make (O : OBJ) = struct
  type handle = {
    rt : Runtime.t;
    name : string;
    mutable st : O.state;
    pending : (int, (O.result, T.error) result Ivar.t) Hashtbl.t;
    mutable guards : ((O.state -> bool) * (unit -> unit)) list;
  }

  let run_guards h =
    let ready, blocked =
      List.partition (fun (pred, _) -> pred h.st) h.guards
    in
    h.guards <- blocked;
    List.iter (fun (_, resume) -> resume ()) ready

  let declare rt ~name ~init =
    if Hashtbl.mem rt.Runtime.registry name then
      invalid_arg ("Orca.declare: duplicate object name " ^ name);
    let h = { rt; name; st = init; pending = Hashtbl.create 8; guards = [] } in
    let my_mid () = (Api.get_info_group rt.Runtime.g).Api.my_mid in
    let handler ~sender ~op_id op =
      match O.decode_op op with
      | None -> ()
      | Some o ->
          let st', result = O.apply h.st o in
          h.st <- st';
          (if sender = my_mid () then
             match Hashtbl.find_opt h.pending op_id with
             | Some iv ->
                 Hashtbl.remove h.pending op_id;
                 ignore (Ivar.try_fill iv (Ok result))
             | None -> ());
          run_guards h
    in
    Hashtbl.replace rt.Runtime.registry name handler;
    h

  let write h op =
    let rt = h.rt in
    rt.Runtime.next_op <- rt.Runtime.next_op + 1;
    let op_id = rt.Runtime.next_op in
    let iv = Ivar.create () in
    Hashtbl.replace h.pending op_id iv;
    match
      Api.send_to_group ~copy:false rt.Runtime.g
        (Runtime.encode ~name:h.name ~op_id (O.encode_op op))
    with
    | Error e ->
        Hashtbl.remove h.pending op_id;
        Error e
    | Ok _ -> Ivar.read rt.Runtime.engine iv

  let read h f = f h.st

  let await h pred =
    let rec wait () =
      if not (pred h.st) then begin
        Engine.suspend h.rt.Runtime.engine ~register:(fun resume ->
            h.guards <- (pred, resume) :: h.guards);
        wait ()
      end
    in
    wait ()
end
