open Amoeba_sim
open Amoeba_harness

type dist = Keygen.dist = Uniform | Zipf of float | Latest of float
type mode = Closed of int | Open of float

type spec = {
  keys : int;
  value_bytes : int;
  read_ratio : float;
  dist : dist;
  mode : mode;
  duration : Time.t;
  ramp : Time.t;
  seed : int;
}

type result = {
  attempted : int;
  completed : int;
  failed : int;
  ops_per_sec : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  reads : int;
  writes : int;
  per_shard : int array;
}

(* Key popularity lives in {!Keygen} (shared with the loadgen
   subsystem's generators): one shared table, per-client rngs. *)
let make_sampler spec =
  let kg = Keygen.create ~keys:spec.keys spec.dist in
  fun rng -> Keygen.sample kg rng

type acc = {
  stats : Stats.t;
  mutable attempted : int;
  mutable completed : int;
  mutable failed : int;
  mutable reads : int;
  mutable writes : int;
  per_shard : int array;
  mutable in_flight : int;
  mutable issued : int;  (* every op ever started, warmup included *)
}

let one_op eng ~map ~acc ~sampler ~spec ~rng ~measure_from router =
  let key = "k" ^ string_of_int (sampler rng) in
  let is_read = Random.State.float rng 1.0 < spec.read_ratio in
  let t0 = Engine.now eng in
  (* Warmup exclusion: ops issued while the ramp is still admitting
     clients carry real load but are not measured — the figures
     describe the full herd at steady state, not the slow start. *)
  let measured = t0 >= measure_from in
  acc.issued <- acc.issued + 1;
  if measured then acc.attempted <- acc.attempted + 1;
  acc.in_flight <- acc.in_flight + 1;
  let reply =
    if is_read then Router.get router key
    else begin
      (* Values carry a unique stamp then pad to size: distinct bodies
         keep the checker's no-duplicates invariant meaningful. *)
      let stamp = Printf.sprintf "v%d." acc.issued in
      let pad = max 0 (spec.value_bytes - String.length stamp) in
      Router.put router key (stamp ^ String.make pad 'x')
    end
  in
  let dt_ms = Time.to_ms (Engine.now eng - t0) in
  acc.in_flight <- acc.in_flight - 1;
  if measured then
    match reply with
    | Router.Failed _ -> acc.failed <- acc.failed + 1
    | Router.Value _ | Router.Not_found | Router.Written ->
        acc.completed <- acc.completed + 1;
        Stats.add acc.stats dt_ms;
        if is_read then acc.reads <- acc.reads + 1
        else acc.writes <- acc.writes + 1;
        let s = Shard_map.shard_of_key map key in
        acc.per_shard.(s) <- acc.per_shard.(s) + 1

let run cl ~routers ~map spec =
  let eng = cl.Cluster.engine in
  let acc =
    {
      stats = Stats.create ();
      attempted = 0;
      completed = 0;
      failed = 0;
      reads = 0;
      writes = 0;
      per_shard = Array.make (Shard_map.shards map) 0;
      in_flight = 0;
      issued = 0;
    }
  in
  let sampler = make_sampler spec in
  let routers = Array.of_list routers in
  let nr = Array.length routers in
  if nr = 0 then invalid_arg "Workload.run: no routers";
  let start = Engine.now eng in
  let stop = start + spec.duration in
  let ramp = max 0 (min spec.ramp spec.duration) in
  let measure_from = start + ramp in
  (match spec.mode with
  | Closed n ->
      let remaining = ref n in
      let all_done = Ivar.create () in
      for i = 0 to n - 1 do
        let rng = Random.State.make [| spec.seed; 0x6b1d; i |] in
        let router = routers.(i mod nr) in
        Cluster.spawn cl (fun () ->
            (* Slow start: stagger client arrivals over the ramp
               window.  A few thousand clients all firing at t=0
               starve every host's CPU at once (locate broadcasts,
               first-contact RPCs), which the group kernels read as
               member failures — the measurement then starts with a
               reset storm no real deployment would begin from. *)
            if ramp > 0 && n > 1 then
              Engine.sleep eng (i * ramp / (n - 1));
            while Engine.now eng < stop do
              one_op eng ~map ~acc ~sampler ~spec ~rng ~measure_from router
            done;
            decr remaining;
            if !remaining = 0 then Ivar.fill all_done ())
      done;
      Ivar.read eng all_done
  | Open rate ->
      if rate <= 0.0 then invalid_arg "Workload.run: rate <= 0";
      let arrivals = Random.State.make [| spec.seed; 0x09e4 |] in
      let i = ref 0 in
      while Engine.now eng < stop do
        (* Poisson arrivals: exponential inter-arrival times. *)
        let u = Random.State.float arrivals 1.0 in
        let dt = -.log (1.0 -. u) /. rate in
        Engine.sleep eng (Time.ns (int_of_float (dt *. 1e9)));
        if Engine.now eng < stop then begin
          let k = !i in
          incr i;
          let rng = Random.State.make [| spec.seed; 0x09e5; k |] in
          Cluster.spawn cl (fun () ->
              one_op eng ~map ~acc ~sampler ~spec ~rng ~measure_from
                routers.(k mod nr))
        end
      done;
      (* Drain in-flight operations, bounded by a grace period. *)
      let deadline = Engine.now eng + Time.sec 3 in
      while acc.in_flight > 0 && Engine.now eng < deadline do
        Engine.sleep eng (Time.ms 10)
      done);
  let dur_s = Time.to_sec (spec.duration - ramp) in
  {
    attempted = acc.attempted;
    completed = acc.completed;
    failed = acc.failed;
    ops_per_sec = (if dur_s > 0.0 then float_of_int acc.completed /. dur_s else 0.0);
    mean_ms = Stats.mean acc.stats;
    p50_ms = Stats.percentile acc.stats 50.0;
    p95_ms = Stats.percentile acc.stats 95.0;
    p99_ms = Stats.percentile acc.stats 99.0;
    max_ms = Stats.max_value acc.stats;
    reads = acc.reads;
    writes = acc.writes;
    per_shard = acc.per_shard;
  }

let pp_result ppf (r : result) =
  Fmt.pf ppf
    "@[<v>%d attempted, %d completed, %d failed (%.0f ops/s)@,\
     latency ms: mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f@,\
     %d reads, %d writes; per shard: %a@]"
    r.attempted r.completed r.failed r.ops_per_sec r.mean_ms r.p50_ms r.p95_ms
    r.p99_ms r.max_ms r.reads r.writes
    Fmt.(brackets (list ~sep:comma int))
    (Array.to_list r.per_shard)
