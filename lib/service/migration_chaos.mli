(** Seeded mid-migration chaos: a live shard migration under a running
    Zipf workload, with crashes and power loss aimed at the transfer
    window, checked against {!Checker.migration_safety} plus the base
    invariants.

    The fixed scenario: 2 durable shards (replication 2, resilience 1,
    SSD disks) on 7 server hosts plus 2 router machines; a third of
    the way into the run shard 0 live-migrates from its deployed
    replicas to two fresh hosts, and the fault plan fires 10–150 ms
    into the transfer: crash the source sequencer, crash the
    destination head, and/or power off every server host (restarting
    275 ms later into a union-host {!Service.recover} and a sentinel
    readback under fsync-per-commit).  Everything is deterministic in
    the seed; a failing case prints an [amoeba migration-chaos] line
    that replays it exactly. *)

open Amoeba_harness
module Medium = Amoeba_net.Medium

type spec = {
  mc_seed : int;
  mc_fabric : Medium.spec;
  mc_hostile : bool;
      (** persistently adversarial links: bursty loss, dup, reorder,
          corruption — the chaos swarms' profile *)
  mc_crash_source : bool;
  mc_crash_dest : bool;
  mc_power_cycle : bool;
  mc_workers : int;
  mc_duration_ms : int;
}

val default : seed:int -> spec
(** Clean shared wire, no faults, 8 workers, 1200 ms. *)

type outcome = {
  o_spec : spec;
  o_migration : (unit, string) result option;
      (** [None] if the run ended before the attempt returned *)
  o_completed : int;  (** workload ops acknowledged *)
  o_failed : int;
  o_crashed : int list;  (** hosts killed (and, sans power cycle, left dead) *)
  o_recovered : bool;  (** a mid-migration power loss was recovered *)
  o_sentinels_acked : int;
  o_sentinels_lost : int;
  o_verdicts : (string * Checker.verdict) list;
      (** per shard; primed labels are the recovered service's *)
  o_ok : bool;
}

val run : spec -> outcome
(** One deterministic run; builds its own cluster. *)

val ok : outcome -> bool
(** Every verdict holds and (under fsync-per-commit) no acked sentinel
    was lost across the power cycle. *)

val replay_line : spec -> string
(** The CLI invocation that replays this spec. *)

val pp_outcome : Format.formatter -> outcome -> unit
