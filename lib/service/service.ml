open Amoeba_sim
open Amoeba_flip
open Amoeba_core
open Amoeba_harness
module T = Types
module R = Kv.Rsm_store
module Rpc = Amoeba_rpc.Rpc

module Rsm = Amoeba_grouplib.Rsm

type endpoint = {
  ep_shard : int;
  ep_host : int;
  ep_addr : Addr.t;
  ep_probe : Addr.t;
}

type durable_config = {
  d_store : Amoeba_grouplib.Stable_store.t;
  d_sync : Rsm.sync_policy;
  d_checkpoint_every : int;
}

(* A shard's durable identity on each of its hosts' disks.  Group
   addresses change across re-creation, so the log is named by the
   shard index — what {!recover} looks for after a power loss. *)
let shard_log shard = Printf.sprintf "shard%d" shard

let durability_of dc shard =
  {
    Rsm.store = dc.d_store;
    log = shard_log shard;
    sync = dc.d_sync;
    checkpoint_every = dc.d_checkpoint_every;
  }

type host_recovery = {
  hr_host : int;
  hr_applied : int;
  hr_error : string option;
  hr_stats : Rsm.recovery_stats option;
}

type shard_recovery = {
  sr_shard : int;
  sr_creator : int;
  sr_applied : int;
  sr_hosts : host_recovery list;
}

type replica = {
  r_shard : int;
  r_host : int;
  r_rsm : R.t;
  r_events : T.event list ref;  (* newest first; only if recording *)
}

type t = {
  cluster : Cluster.t;
  map : Shard_map.t;
  resilience : int;
  recording : bool;
  mutable replicas : replica list array;  (* per shard, creator first *)
  mutable eps : endpoint array array;
  completed_w : (T.mid * string) list ref array;  (* newest first *)
  uid : int ref;
  mutable n_reads : int;
  mutable n_writes_ok : int;
  mutable n_writes_busy : int;
  mutable recovery : shard_recovery list;
}

let map t = t.map
let endpoints t = t.eps
let reads t = t.n_reads
let writes_ok t = t.n_writes_ok
let writes_busy t = t.n_writes_busy
let recovery_report t = t.recovery

let submit_write t r u =
  match R.submit r.r_rsm u with
  | Ok _ ->
      t.n_writes_ok <- t.n_writes_ok + 1;
      if t.recording then begin
        let mid = (Api.get_info_group (R.group r.r_rsm)).Api.my_mid in
        t.completed_w.(r.r_shard) :=
          (mid, Bytes.to_string (R.wire_of_update u))
          :: !(t.completed_w.(r.r_shard))
      end;
      Kv.Written
  | Error e ->
      t.n_writes_busy <- t.n_writes_busy + 1;
      Kv.Busy (T.error_to_string e)

(* Submits a vector of updates as one sequencer round (one 'B' frame on
   the group stream; a single update falls back to the plain 'U' path).
   Returns the per-update reply.  The checker's durability log gets the
   exact on-stream bytes, which depend on that fallback. *)
let submit_write_batch t r us =
  let n = List.length us in
  match R.submit_batch r.r_rsm us with
  | Ok _ ->
      t.n_writes_ok <- t.n_writes_ok + n;
      if t.recording then begin
        let mid = (Api.get_info_group (R.group r.r_rsm)).Api.my_mid in
        let body =
          match us with
          | [ u ] -> R.wire_of_update u
          | _ -> R.wire_of_batch us
        in
        t.completed_w.(r.r_shard) :=
          (mid, Bytes.to_string body) :: !(t.completed_w.(r.r_shard))
      end;
      Kv.Written
  | Error e ->
      t.n_writes_busy <- t.n_writes_busy + n;
      Kv.Busy (T.error_to_string e)

let handle_one t r req =
  let s = Shard_map.shard_of_key t.map (Kv.request_key req) in
  if s <> r.r_shard then Kv.Wrong_shard s
  else (
    match req with
    | Kv.Get k ->
        t.n_reads <- t.n_reads + 1;
        (match Kv.Smap.find_opt k (R.state r.r_rsm) with
        | Some v -> Kv.Value v
        | None -> Kv.Not_found)
    | Kv.Stale_get k ->
        (* Bounded-staleness read: answered from the last durable
           checkpoint when there is one — the state a power loss could
           never take away — without touching the ordered stream.  A
           replica that has not checkpointed yet falls back to its
           live copy. *)
        t.n_reads <- t.n_reads + 1;
        let state =
          match R.durable_snapshot r.r_rsm with
          | Some (st, _) ->
              let sc = Api.storage_counters (R.group r.r_rsm) in
              sc.Api.stale_reads <- sc.Api.stale_reads + 1;
              st
          | None -> R.state r.r_rsm
        in
        (match Kv.Smap.find_opt k state with
        | Some v -> Kv.Value v
        | None -> Kv.Not_found)
    | Kv.Put (k, v) ->
        incr t.uid;
        submit_write t r (Kv.Store.Put { uid = !(t.uid); key = k; value = v })
    | Kv.Del k ->
        incr t.uid;
        submit_write t r (Kv.Store.Del { uid = !(t.uid); key = k }))

(* A batch: every op is shard-checked individually, all the writes ride
   one totally-ordered group round (fresh uids keep a retried batch
   distinct on the stream), and reads are answered from the local copy
   after the batch's writes applied — so a batch reads its own writes.
   Replies are fanned back positionally, one per request. *)
let handle_batch t r reqs =
  let n = List.length reqs in
  let replies = Array.make n Kv.Not_found in
  let writes = ref [] in
  (* newest first: (position, update) *)
  List.iteri
    (fun i req ->
      let s = Shard_map.shard_of_key t.map (Kv.request_key req) in
      if s <> r.r_shard then replies.(i) <- Kv.Wrong_shard s
      else
        match req with
        | Kv.Get _ | Kv.Stale_get _ -> ()
        | Kv.Put (k, v) ->
            incr t.uid;
            writes :=
              (i, Kv.Store.Put { uid = !(t.uid); key = k; value = v })
              :: !writes
        | Kv.Del k ->
            incr t.uid;
            writes := (i, Kv.Store.Del { uid = !(t.uid); key = k }) :: !writes)
    reqs;
  (match List.rev !writes with
  | [] -> ()
  | ws ->
      let verdict = submit_write_batch t r (List.map snd ws) in
      List.iter (fun (i, _) -> replies.(i) <- verdict) ws);
  List.iteri
    (fun i req ->
      (* wrong-shard Gets already hold their Wrong_shard reply *)
      match (req, replies.(i)) with
      | (Kv.Get _ | Kv.Stale_get _), Kv.Not_found ->
          replies.(i) <- handle_one t r req
      | _ -> ())
    reqs;
  Array.to_list replies

let handle t r payload =
  if Bytes.length payload > 0 && Bytes.get payload 0 = 'B' then
    let reply =
      match Kv.decode_batch_request payload with
      | None -> Kv.encode_reply (Kv.Busy "bad-request")
      | Some reqs -> Kv.encode_batch_reply (handle_batch t r reqs)
    in
    Amoeba_rpc.Types_rpc.Reply reply
  else
    let reply =
      match Kv.decode_request payload with
      | None -> Kv.Busy "bad-request"
      | Some req -> handle_one t r req
    in
    Amoeba_rpc.Types_rpc.Reply (Kv.encode_reply reply)

(* The shared bring-up: [hosts_for shard] lists the shard's hosts with
   the intended creator FIRST, and [seed_for shard] optionally seeds
   the creator's replica (the recovery path).  [deploy] and [recover]
   are thin wrappers. *)
let build cl ~map ?(resilience = 1) ?(send_method = T.Pb) ?(pipeline = 1)
    ?checkpoint ?durable ?(record = false) ?(eps_per_replica = 4) ~hosts_for
    ~seed_for () =
  let eng = cl.Cluster.engine in
  let shards = Shard_map.shards map in
  let t =
    {
      cluster = cl;
      map;
      resilience;
      recording = record;
      replicas = Array.make shards [];
      eps = [||];
      completed_w = Array.init shards (fun _ -> ref []);
      uid = ref 0;
      n_reads = 0;
      n_writes_ok = 0;
      n_writes_busy = 0;
      recovery = [];
    }
  in
  (* One failure-detector responder per machine, shared by all the
     replicas it hosts; created lazily, inside the machine's lifecycle
     group so it dies with the host. *)
  let detectors = Hashtbl.create 8 in
  let probe_addr host =
    match Hashtbl.find_opt detectors host with
    | Some a -> a
    | None ->
        let iv = Ivar.create () in
        Cluster.spawn_on cl host (fun () ->
            Ivar.fill iv
              (Failure_detector.address
                 (Failure_detector.create (Cluster.flip cl host))));
        let a = Ivar.read eng iv in
        Hashtbl.add detectors host a;
        a
  in
  (* Brings one replica up on [host]: create or join the shard's
     group, then serve the request protocol at [eps_per_replica] fresh
     endpoints.  RPC endpoints service one request at a time, and a
     write holds its endpoint for the whole submit round-trip — so a
     single endpoint would cap the replica near 1/latency ops/s.  A
     small pool of endpoints over the same replica is the classic
     server worker pool, and the kernel inbox serialises the
     concurrent submits.  All of it runs on the host machine, so a
     crash takes the replica and its endpoints down together. *)
  let start_replica ~shard ~host ~creator =
    let iv = Ivar.create () in
    Cluster.spawn_on cl host (fun () ->
        let flip = Cluster.flip cl host in
        let events = ref [] in
        let tap =
          if record then Some (fun ev -> events := ev :: !events) else None
        in
        let durable_arg = Option.map (fun dc -> durability_of dc shard) durable in
        let rsm =
          match creator with
          | None ->
              Ok
                (R.create flip ~resilience ~send_method ~auto_heal:true
                   ~pipeline ?checkpoint ?durable:durable_arg
                   ?seed:(seed_for shard) ?tap ())
          | Some addr ->
              R.join flip ~resilience ~send_method ~auto_heal:true ~pipeline
                ?checkpoint ?durable:durable_arg ?tap addr
        in
        match rsm with
        | Error e -> failwith ("Service.deploy: join failed: " ^ T.error_to_string e)
        | Ok rsm ->
            let r = { r_shard = shard; r_host = host; r_rsm = rsm; r_events = events } in
            let probe = probe_addr host in
            let eps =
              List.init eps_per_replica (fun _ ->
                  let addr = Flip.fresh_addr flip in
                  let (_ : Rpc.server) = Rpc.serve flip ~addr (handle t r) in
                  { ep_shard = shard; ep_host = host; ep_addr = addr;
                    ep_probe = probe })
            in
            Ivar.fill iv (r, eps));
    iv
  in
  t.eps <-
    Array.init shards (fun shard ->
        let hosts = hosts_for shard in
        let iv0 = start_replica ~shard ~host:(List.hd hosts) ~creator:None in
        let r0, eps0 = Ivar.read eng iv0 in
        t.replicas.(shard) <- [ r0 ];
        let addr = R.address r0.r_rsm in
        let rest =
          List.concat_map
            (fun host ->
              let iv = start_replica ~shard ~host ~creator:(Some addr) in
              let r, eps = Ivar.read eng iv in
              t.replicas.(shard) <- t.replicas.(shard) @ [ r ];
              eps)
            (List.tl hosts)
        in
        Array.of_list (eps0 @ rest));
  t

let deploy cl ~map ?resilience ?send_method ?pipeline ?checkpoint ?durable
    ?record ?eps_per_replica () =
  build cl ~map ?resilience ?send_method ?pipeline ?checkpoint ?durable
    ?record ?eps_per_replica
    ~hosts_for:(fun shard -> Shard_map.replica_hosts map shard)
    ~seed_for:(fun _ -> None)
    ()

(* Whole-cluster power-loss recovery: every shard's every host reads
   its own disk back (checkpoint + WAL replay, real I/O), the host
   with the most recovered updates re-creates the shard's group seeded
   with that state, and the rest join by atomic state transfer (their
   disks are wiped to the transferred state by the joiner reconcile in
   [Rsm.join]).  A host whose disk refuses recovery (damage) simply
   joins — it re-syncs from the creator; if EVERY host refuses, the
   shard restarts empty, which is the honest reading of "all the disks
   are damaged". *)
let recover cl ~map ~durable ?resilience ?send_method ?pipeline ?record
    ?eps_per_replica () =
  let eng = cl.Cluster.engine in
  let shards = Shard_map.shards map in
  let seed_of = Hashtbl.create shards in
  let reports =
    List.init shards (fun shard ->
        let d = durability_of durable shard in
        (* all hosts read their disks concurrently; each on its own
           machine, each paying its own sequential-scan cost *)
        let results =
          Shard_map.replica_hosts map shard
          |> List.map (fun host ->
                 let iv = Ivar.create () in
                 Cluster.spawn_on cl host (fun () ->
                     Ivar.fill iv (R.recover d (Cluster.machine cl host)));
                 (host, iv))
          |> List.map (fun (host, iv) -> (host, Ivar.read eng iv))
        in
        let creator =
          List.fold_left
            (fun best (host, res) ->
              match (res, best) with
              | Error _, _ -> best
              | Ok rec_, Some (_, b) when b.R.r_applied >= rec_.R.r_applied ->
                  best
              | Ok rec_, _ -> Some (host, rec_))
            None results
        in
        let creator_host, applied =
          match creator with
          | Some (host, rec_) ->
              Hashtbl.replace seed_of shard (rec_.R.r_state, rec_.R.r_applied);
              (host, rec_.R.r_applied)
          | None -> (List.hd (Shard_map.replica_hosts map shard), 0)
        in
        {
          sr_shard = shard;
          sr_creator = creator_host;
          sr_applied = applied;
          sr_hosts =
            List.map
              (fun (host, res) ->
                match res with
                | Ok rec_ ->
                    {
                      hr_host = host;
                      hr_applied = rec_.R.r_applied;
                      hr_error = None;
                      hr_stats = Some rec_.R.r_stats;
                    }
                | Error msg ->
                    {
                      hr_host = host;
                      hr_applied = 0;
                      hr_error = Some msg;
                      hr_stats = None;
                    })
              results;
        })
  in
  let t =
    build cl ~map ?resilience ?send_method ?pipeline ~durable ?record
      ?eps_per_replica
      ~hosts_for:(fun shard ->
        let sr = List.nth reports shard in
        sr.sr_creator
        :: List.filter
             (fun h -> h <> sr.sr_creator)
             (Shard_map.replica_hosts map shard))
      ~seed_for:(fun shard -> Hashtbl.find_opt seed_of shard)
      ()
  in
  t.recovery <- reports;
  (* Surface what recovery found through each replica's own group-info
     counters, so GetInfoGroup tells the whole durability story. *)
  List.iter
    (fun sr ->
      List.iter
        (fun hr ->
          match hr.hr_stats with
          | None -> ()
          | Some st -> (
              match
                List.find_opt
                  (fun r -> r.r_host = hr.hr_host)
                  t.replicas.(sr.sr_shard)
              with
              | None -> ()
              | Some r ->
                  let sc = Api.storage_counters (R.group r.r_rsm) in
                  sc.Api.wal_records_replayed <-
                    sc.Api.wal_records_replayed + st.Rsm.records_replayed;
                  sc.Api.torn_tails_truncated <-
                    sc.Api.torn_tails_truncated + st.Rsm.torn_tails;
                  sc.Api.checksum_rejects <-
                    sc.Api.checksum_rejects + st.Rsm.checksum_rejects))
        sr.sr_hosts)
    reports;
  t

let applied t shard =
  List.map (fun r -> (r.r_host, R.applied r.r_rsm)) t.replicas.(shard)

let checker_streams t ~shard ~crashed =
  List.map
    (fun r ->
      {
        Checker.label = Printf.sprintf "s%d/m%d" r.r_shard r.r_host;
        events = List.rev !(r.r_events);
        full = not (crashed r.r_host);
      })
    t.replicas.(shard)

let completed t ~shard = List.rev !(t.completed_w.(shard))

let check t ~crashed =
  let is_crashed h = List.mem h crashed in
  List.init (Shard_map.shards t.map) (fun shard ->
      let streams = checker_streams t ~shard ~crashed:is_crashed in
      let dead_replicas =
        List.length
          (List.filter is_crashed (Shard_map.replica_hosts t.map shard))
      in
      let verdicts =
        Checker.run
          ~durability_applies:(dead_replicas <= t.resilience)
          ~streams
          ~completed:(completed t ~shard)
          ()
      in
      (shard, verdicts))
