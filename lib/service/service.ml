open Amoeba_sim
open Amoeba_flip
open Amoeba_core
open Amoeba_harness
module T = Types
module R = Kv.Rsm_store
module Rpc = Amoeba_rpc.Rpc

type endpoint = {
  ep_shard : int;
  ep_host : int;
  ep_addr : Addr.t;
  ep_probe : Addr.t;
}

type replica = {
  r_shard : int;
  r_host : int;
  r_rsm : R.t;
  r_events : T.event list ref;  (* newest first; only if recording *)
}

type t = {
  cluster : Cluster.t;
  map : Shard_map.t;
  resilience : int;
  recording : bool;
  mutable replicas : replica list array;  (* per shard, creator first *)
  mutable eps : endpoint array array;
  completed_w : (T.mid * string) list ref array;  (* newest first *)
  uid : int ref;
  mutable n_reads : int;
  mutable n_writes_ok : int;
  mutable n_writes_busy : int;
}

let map t = t.map
let endpoints t = t.eps
let reads t = t.n_reads
let writes_ok t = t.n_writes_ok
let writes_busy t = t.n_writes_busy

let submit_write t r u =
  match R.submit r.r_rsm u with
  | Ok _ ->
      t.n_writes_ok <- t.n_writes_ok + 1;
      if t.recording then begin
        let mid = (Api.get_info_group (R.group r.r_rsm)).Api.my_mid in
        t.completed_w.(r.r_shard) :=
          (mid, Bytes.to_string (R.wire_of_update u))
          :: !(t.completed_w.(r.r_shard))
      end;
      Kv.Written
  | Error e ->
      t.n_writes_busy <- t.n_writes_busy + 1;
      Kv.Busy (T.error_to_string e)

(* Submits a vector of updates as one sequencer round (one 'B' frame on
   the group stream; a single update falls back to the plain 'U' path).
   Returns the per-update reply.  The checker's durability log gets the
   exact on-stream bytes, which depend on that fallback. *)
let submit_write_batch t r us =
  let n = List.length us in
  match R.submit_batch r.r_rsm us with
  | Ok _ ->
      t.n_writes_ok <- t.n_writes_ok + n;
      if t.recording then begin
        let mid = (Api.get_info_group (R.group r.r_rsm)).Api.my_mid in
        let body =
          match us with
          | [ u ] -> R.wire_of_update u
          | _ -> R.wire_of_batch us
        in
        t.completed_w.(r.r_shard) :=
          (mid, Bytes.to_string body) :: !(t.completed_w.(r.r_shard))
      end;
      Kv.Written
  | Error e ->
      t.n_writes_busy <- t.n_writes_busy + n;
      Kv.Busy (T.error_to_string e)

let handle_one t r req =
  let s = Shard_map.shard_of_key t.map (Kv.request_key req) in
  if s <> r.r_shard then Kv.Wrong_shard s
  else (
    match req with
    | Kv.Get k ->
        t.n_reads <- t.n_reads + 1;
        (match Kv.Smap.find_opt k (R.state r.r_rsm) with
        | Some v -> Kv.Value v
        | None -> Kv.Not_found)
    | Kv.Put (k, v) ->
        incr t.uid;
        submit_write t r (Kv.Store.Put { uid = !(t.uid); key = k; value = v })
    | Kv.Del k ->
        incr t.uid;
        submit_write t r (Kv.Store.Del { uid = !(t.uid); key = k }))

(* A batch: every op is shard-checked individually, all the writes ride
   one totally-ordered group round (fresh uids keep a retried batch
   distinct on the stream), and reads are answered from the local copy
   after the batch's writes applied — so a batch reads its own writes.
   Replies are fanned back positionally, one per request. *)
let handle_batch t r reqs =
  let n = List.length reqs in
  let replies = Array.make n Kv.Not_found in
  let writes = ref [] in
  (* newest first: (position, update) *)
  List.iteri
    (fun i req ->
      let s = Shard_map.shard_of_key t.map (Kv.request_key req) in
      if s <> r.r_shard then replies.(i) <- Kv.Wrong_shard s
      else
        match req with
        | Kv.Get _ -> ()
        | Kv.Put (k, v) ->
            incr t.uid;
            writes :=
              (i, Kv.Store.Put { uid = !(t.uid); key = k; value = v })
              :: !writes
        | Kv.Del k ->
            incr t.uid;
            writes := (i, Kv.Store.Del { uid = !(t.uid); key = k }) :: !writes)
    reqs;
  (match List.rev !writes with
  | [] -> ()
  | ws ->
      let verdict = submit_write_batch t r (List.map snd ws) in
      List.iter (fun (i, _) -> replies.(i) <- verdict) ws);
  List.iteri
    (fun i req ->
      (* wrong-shard Gets already hold their Wrong_shard reply *)
      match (req, replies.(i)) with
      | Kv.Get k, Kv.Not_found ->
          t.n_reads <- t.n_reads + 1;
          replies.(i) <-
            (match Kv.Smap.find_opt k (R.state r.r_rsm) with
            | Some v -> Kv.Value v
            | None -> Kv.Not_found)
      | _ -> ())
    reqs;
  Array.to_list replies

let handle t r payload =
  if Bytes.length payload > 0 && Bytes.get payload 0 = 'B' then
    let reply =
      match Kv.decode_batch_request payload with
      | None -> Kv.encode_reply (Kv.Busy "bad-request")
      | Some reqs -> Kv.encode_batch_reply (handle_batch t r reqs)
    in
    Amoeba_rpc.Types_rpc.Reply reply
  else
    let reply =
      match Kv.decode_request payload with
      | None -> Kv.Busy "bad-request"
      | Some req -> handle_one t r req
    in
    Amoeba_rpc.Types_rpc.Reply (Kv.encode_reply reply)

let deploy cl ~map ?(resilience = 1) ?(send_method = T.Pb) ?(pipeline = 1)
    ?checkpoint ?(record = false) ?(eps_per_replica = 4) () =
  let eng = cl.Cluster.engine in
  let shards = Shard_map.shards map in
  let t =
    {
      cluster = cl;
      map;
      resilience;
      recording = record;
      replicas = Array.make shards [];
      eps = [||];
      completed_w = Array.init shards (fun _ -> ref []);
      uid = ref 0;
      n_reads = 0;
      n_writes_ok = 0;
      n_writes_busy = 0;
    }
  in
  (* One failure-detector responder per machine, shared by all the
     replicas it hosts; created lazily, inside the machine's lifecycle
     group so it dies with the host. *)
  let detectors = Hashtbl.create 8 in
  let probe_addr host =
    match Hashtbl.find_opt detectors host with
    | Some a -> a
    | None ->
        let iv = Ivar.create () in
        Cluster.spawn_on cl host (fun () ->
            Ivar.fill iv
              (Failure_detector.address
                 (Failure_detector.create (Cluster.flip cl host))));
        let a = Ivar.read eng iv in
        Hashtbl.add detectors host a;
        a
  in
  (* Brings one replica up on [host]: create or join the shard's
     group, then serve the request protocol at [eps_per_replica] fresh
     endpoints.  RPC endpoints service one request at a time, and a
     write holds its endpoint for the whole submit round-trip — so a
     single endpoint would cap the replica near 1/latency ops/s.  A
     small pool of endpoints over the same replica is the classic
     server worker pool, and the kernel inbox serialises the
     concurrent submits.  All of it runs on the host machine, so a
     crash takes the replica and its endpoints down together. *)
  let start_replica ~shard ~host ~creator =
    let iv = Ivar.create () in
    Cluster.spawn_on cl host (fun () ->
        let flip = Cluster.flip cl host in
        let events = ref [] in
        let tap =
          if record then Some (fun ev -> events := ev :: !events) else None
        in
        let rsm =
          match creator with
          | None ->
              Ok
                (R.create flip ~resilience ~send_method ~auto_heal:true
                   ~pipeline ?checkpoint ?tap ())
          | Some addr ->
              R.join flip ~resilience ~send_method ~auto_heal:true ~pipeline
                ?checkpoint ?tap addr
        in
        match rsm with
        | Error e -> failwith ("Service.deploy: join failed: " ^ T.error_to_string e)
        | Ok rsm ->
            let r = { r_shard = shard; r_host = host; r_rsm = rsm; r_events = events } in
            let probe = probe_addr host in
            let eps =
              List.init eps_per_replica (fun _ ->
                  let addr = Flip.fresh_addr flip in
                  let (_ : Rpc.server) = Rpc.serve flip ~addr (handle t r) in
                  { ep_shard = shard; ep_host = host; ep_addr = addr;
                    ep_probe = probe })
            in
            Ivar.fill iv (r, eps));
    iv
  in
  t.eps <-
    Array.init shards (fun shard ->
        let hosts = Shard_map.replica_hosts t.map shard in
        let iv0 = start_replica ~shard ~host:(List.hd hosts) ~creator:None in
        let r0, eps0 = Ivar.read eng iv0 in
        t.replicas.(shard) <- [ r0 ];
        let addr = R.address r0.r_rsm in
        let rest =
          List.concat_map
            (fun host ->
              let iv = start_replica ~shard ~host ~creator:(Some addr) in
              let r, eps = Ivar.read eng iv in
              t.replicas.(shard) <- t.replicas.(shard) @ [ r ];
              eps)
            (List.tl hosts)
        in
        Array.of_list (eps0 @ rest));
  t

let applied t shard =
  List.map (fun r -> (r.r_host, R.applied r.r_rsm)) t.replicas.(shard)

let checker_streams t ~shard ~crashed =
  List.map
    (fun r ->
      {
        Checker.label = Printf.sprintf "s%d/m%d" r.r_shard r.r_host;
        events = List.rev !(r.r_events);
        full = not (crashed r.r_host);
      })
    t.replicas.(shard)

let completed t ~shard = List.rev !(t.completed_w.(shard))

let check t ~crashed =
  let is_crashed h = List.mem h crashed in
  List.init (Shard_map.shards t.map) (fun shard ->
      let streams = checker_streams t ~shard ~crashed:is_crashed in
      let dead_replicas =
        List.length
          (List.filter is_crashed (Shard_map.replica_hosts t.map shard))
      in
      let verdicts =
        Checker.run
          ~durability_applies:(dead_replicas <= t.resilience)
          ~streams
          ~completed:(completed t ~shard)
          ()
      in
      (shard, verdicts))
