open Amoeba_sim
open Amoeba_flip
open Amoeba_core
open Amoeba_harness
module T = Types
module R = Kv.Rsm_store
module Rpc = Amoeba_rpc.Rpc
module Machine = Amoeba_net.Machine
module Stable_store = Amoeba_grouplib.Stable_store

module Rsm = Amoeba_grouplib.Rsm

type endpoint = {
  ep_shard : int;
  ep_host : int;
  ep_addr : Addr.t;
  ep_probe : Addr.t;
}

type durable_config = {
  d_store : Stable_store.t;
  d_sync : Rsm.sync_policy;
  d_checkpoint_every : int;
}

(* A shard's durable identity on each of its hosts' disks.  Group
   addresses change across re-creation, so the log is named by the
   shard index — what {!recover} looks for after a power loss. *)
let shard_log shard = Printf.sprintf "shard%d" shard

let durability_of dc shard =
  {
    Rsm.store = dc.d_store;
    log = shard_log shard;
    sync = dc.d_sync;
    checkpoint_every = dc.d_checkpoint_every;
  }

type host_recovery = {
  hr_host : int;
  hr_applied : int;
  hr_error : string option;
  hr_stats : Rsm.recovery_stats option;
}

type shard_recovery = {
  sr_shard : int;
  sr_creator : int;
  sr_applied : int;
  sr_hosts : host_recovery list;
}

(* Deployment-time knobs, kept on the service so a later
   {!migrate_shard} brings destination replicas up exactly as the
   original deployment did. *)
type params = {
  p_resilience : int;
  p_send_method : T.send_method;
  p_pipeline : int;
  p_checkpoint : (Stable_store.t * int) option;
  p_durable : durable_config option;
  p_record : bool;
  p_eps : int;
}

type replica = {
  r_shard : int;
  r_host : int;
  r_gen : int;  (* Machine.restarts when the replica came up *)
  r_mid : T.mid;  (* its member id in the shard's group *)
  r_rsm : R.t;
  mutable r_eps : endpoint list;
  r_events : T.event list ref;  (* newest first; only if recording *)
  mutable r_retired : bool;
      (* cut over by a migration: answers [Busy] so the router walks
         away, and no longer counts as an owner of the shard *)
}

type migration = {
  m_shard : int;
  m_from : int list;
  m_to : int list;
  m_started : Time.t;
  m_finished : Time.t;
  m_result : (unit, string) result;
}

type t = {
  cluster : Cluster.t;
  params : params;
  detectors : (int, Addr.t) Hashtbl.t;
  mutable map : Shard_map.t;
  mutable replicas : replica list array;  (* per shard, sequencer first *)
  retired : replica list array;  (* per shard, newest first *)
  mutable eps : endpoint array array;
  completed_w : (T.mid * string) list ref array;  (* newest first *)
  uid : int ref;
  shard_ops : int array;  (* requests handled, per shard — load signal *)
  migrated : bool array;
  mutable migrations : migration list;  (* newest first *)
  mutable n_reads : int;
  mutable n_writes_ok : int;
  mutable n_writes_busy : int;
  mutable recovery : shard_recovery list;
}

let map t = t.map
let endpoints t = t.eps
let reads t = t.n_reads
let writes_ok t = t.n_writes_ok
let writes_busy t = t.n_writes_busy
let recovery_report t = t.recovery
let shard_ops t = Array.copy t.shard_ops
let migrations t = List.rev t.migrations

let submit_write t r u =
  match R.submit r.r_rsm u with
  | Ok _ ->
      t.n_writes_ok <- t.n_writes_ok + 1;
      if t.params.p_record then begin
        let mid = (Api.get_info_group (R.group r.r_rsm)).Api.my_mid in
        t.completed_w.(r.r_shard) :=
          (mid, Bytes.to_string (R.wire_of_update u))
          :: !(t.completed_w.(r.r_shard))
      end;
      Kv.Written
  | Error e ->
      t.n_writes_busy <- t.n_writes_busy + 1;
      Kv.Busy (T.error_to_string e)

(* Submits a vector of updates as one sequencer round (one 'B' frame on
   the group stream; a single update falls back to the plain 'U' path).
   Returns the per-update reply.  The checker's durability log gets the
   exact on-stream bytes, which depend on that fallback. *)
let submit_write_batch t r us =
  let n = List.length us in
  match R.submit_batch r.r_rsm us with
  | Ok _ ->
      t.n_writes_ok <- t.n_writes_ok + n;
      if t.params.p_record then begin
        let mid = (Api.get_info_group (R.group r.r_rsm)).Api.my_mid in
        let body =
          match us with
          | [ u ] -> R.wire_of_update u
          | _ -> R.wire_of_batch us
        in
        t.completed_w.(r.r_shard) :=
          (mid, Bytes.to_string body) :: !(t.completed_w.(r.r_shard))
      end;
      Kv.Written
  | Error e ->
      t.n_writes_busy <- t.n_writes_busy + n;
      Kv.Busy (T.error_to_string e)

let handle_one t r req =
  let s = Shard_map.shard_of_key t.map (Kv.request_key req) in
  if s <> r.r_shard then Kv.Wrong_shard s
  else (
    match req with
    | Kv.Get k ->
        t.n_reads <- t.n_reads + 1;
        (match Kv.Smap.find_opt k (R.state r.r_rsm) with
        | Some v -> Kv.Value v
        | None -> Kv.Not_found)
    | Kv.Stale_get k ->
        (* Bounded-staleness read: answered from the last durable
           checkpoint when there is one — the state a power loss could
           never take away — without touching the ordered stream.  A
           replica that has not checkpointed yet falls back to its
           live copy. *)
        t.n_reads <- t.n_reads + 1;
        let state =
          match R.durable_snapshot r.r_rsm with
          | Some (st, _) ->
              let sc = Api.storage_counters (R.group r.r_rsm) in
              sc.Api.stale_reads <- sc.Api.stale_reads + 1;
              st
          | None -> R.state r.r_rsm
        in
        (match Kv.Smap.find_opt k state with
        | Some v -> Kv.Value v
        | None -> Kv.Not_found)
    | Kv.Put (k, v) ->
        incr t.uid;
        submit_write t r (Kv.Store.Put { uid = !(t.uid); key = k; value = v })
    | Kv.Del k ->
        incr t.uid;
        submit_write t r (Kv.Store.Del { uid = !(t.uid); key = k }))

(* A batch: every op is shard-checked individually, all the writes ride
   one totally-ordered group round (fresh uids keep a retried batch
   distinct on the stream), and reads are answered from the local copy
   after the batch's writes applied — so a batch reads its own writes.
   Replies are fanned back positionally, one per request. *)
let handle_batch t r reqs =
  let n = List.length reqs in
  let replies = Array.make n Kv.Not_found in
  let writes = ref [] in
  (* newest first: (position, update) *)
  List.iteri
    (fun i req ->
      let s = Shard_map.shard_of_key t.map (Kv.request_key req) in
      if s <> r.r_shard then replies.(i) <- Kv.Wrong_shard s
      else
        match req with
        | Kv.Get _ | Kv.Stale_get _ -> ()
        | Kv.Put (k, v) ->
            incr t.uid;
            writes :=
              (i, Kv.Store.Put { uid = !(t.uid); key = k; value = v })
              :: !writes
        | Kv.Del k ->
            incr t.uid;
            writes := (i, Kv.Store.Del { uid = !(t.uid); key = k }) :: !writes)
    reqs;
  (match List.rev !writes with
  | [] -> ()
  | ws ->
      let verdict = submit_write_batch t r (List.map snd ws) in
      List.iter (fun (i, _) -> replies.(i) <- verdict) ws);
  List.iteri
    (fun i req ->
      (* wrong-shard Gets already hold their Wrong_shard reply *)
      match (req, replies.(i)) with
      | (Kv.Get _ | Kv.Stale_get _), Kv.Not_found ->
          replies.(i) <- handle_one t r req
      | _ -> ())
    reqs;
  Array.to_list replies

(* A retired replica (its shard was migrated away) answers [Busy] to
   everything: the router backs off, and once the endpoint swap lands
   its retry goes to the shard's new owners.  The uid-tagged retry
   discipline makes the dual-routing window safe — a write the old
   owner did sequence before retiring is acknowledged through the old
   stream, one it refused is re-submitted fresh to the new. *)
let handle t r payload =
  if Bytes.length payload > 0 && Bytes.get payload 0 = 'B' then
    let reply =
      match Kv.decode_batch_request payload with
      | None -> Kv.encode_reply (Kv.Busy "bad-request")
      | Some reqs when r.r_retired ->
          Kv.encode_batch_reply (List.map (fun _ -> Kv.Busy "retired") reqs)
      | Some reqs ->
          t.shard_ops.(r.r_shard) <- t.shard_ops.(r.r_shard) + List.length reqs;
          Kv.encode_batch_reply (handle_batch t r reqs)
    in
    Amoeba_rpc.Types_rpc.Reply reply
  else
    let reply =
      match Kv.decode_request payload with
      | None -> Kv.Busy "bad-request"
      | Some _ when r.r_retired -> Kv.Busy "retired"
      | Some req ->
          t.shard_ops.(r.r_shard) <- t.shard_ops.(r.r_shard) + 1;
          handle_one t r req
    in
    Amoeba_rpc.Types_rpc.Reply (Kv.encode_reply reply)

(* One failure-detector responder per machine, shared by all the
   replicas it hosts; created lazily, inside the machine's lifecycle
   group so it dies with the host. *)
let probe_addr t host =
  match Hashtbl.find_opt t.detectors host with
  | Some a -> a
  | None ->
      let iv = Ivar.create () in
      Cluster.spawn_on t.cluster host (fun () ->
          Ivar.fill iv
            (Failure_detector.address
               (Failure_detector.create (Cluster.flip t.cluster host))));
      let a = Ivar.read t.cluster.Cluster.engine iv in
      Hashtbl.add t.detectors host a;
      a

(* Brings one replica up on [host]: create or join the shard's group,
   then serve the request protocol at [p_eps] fresh endpoints.  RPC
   endpoints service one request at a time, and a write holds its
   endpoint for the whole submit round-trip — so a single endpoint
   would cap the replica near 1/latency ops/s.  A small pool of
   endpoints over the same replica is the classic server worker pool,
   and the kernel inbox serialises the concurrent submits.  All of it
   runs on the host machine, so a crash takes the replica and its
   endpoints down together.  The ivar yields [Error] instead of a
   cluster-wide failure so a migration can roll back a refused join;
   it is filled with [try_fill] so a caller-side watchdog can turn a
   crashed bring-up into a timely verdict. *)
let start_replica t ~shard ~host ~creator ~seed =
  let p = t.params in
  let iv = Ivar.create () in
  Cluster.spawn_on t.cluster host (fun () ->
      let flip = Cluster.flip t.cluster host in
      let events = ref [] in
      let tap =
        if p.p_record then Some (fun ev -> events := ev :: !events) else None
      in
      let durable_arg =
        Option.map (fun dc -> durability_of dc shard) p.p_durable
      in
      let rsm =
        match creator with
        | None ->
            Ok
              (R.create flip ~resilience:p.p_resilience
                 ~send_method:p.p_send_method ~auto_heal:true
                 ~pipeline:p.p_pipeline ?checkpoint:p.p_checkpoint
                 ?durable:durable_arg ?seed ?tap ())
        | Some addr ->
            R.join flip ~resilience:p.p_resilience ~send_method:p.p_send_method
              ~auto_heal:true ~pipeline:p.p_pipeline ?checkpoint:p.p_checkpoint
              ?durable:durable_arg ?tap addr
      in
      match rsm with
      | Error e -> ignore (Ivar.try_fill iv (Error (T.error_to_string e)))
      | Ok rsm ->
          let machine = Cluster.machine t.cluster host in
          let r =
            {
              r_shard = shard;
              r_host = host;
              r_gen = Machine.restarts machine;
              r_mid = (Api.get_info_group (R.group rsm)).Api.my_mid;
              r_rsm = rsm;
              r_eps = [];
              r_events = events;
              r_retired = false;
            }
          in
          let probe = probe_addr t host in
          let eps =
            List.init p.p_eps (fun _ ->
                let addr = Flip.fresh_addr flip in
                let (_ : Rpc.server) = Rpc.serve flip ~addr (handle t r) in
                {
                  ep_shard = shard;
                  ep_host = host;
                  ep_addr = addr;
                  ep_probe = probe;
                })
          in
          r.r_eps <- eps;
          ignore (Ivar.try_fill iv (Ok (r, eps))));
  iv

(* The shared bring-up: [hosts_for shard] lists the shard's hosts with
   the intended creator FIRST, and [seed_for shard] optionally seeds
   the creator's replica (the recovery path).  [deploy] and [recover]
   are thin wrappers. *)
let build cl ~map ?(resilience = 1) ?(send_method = T.Pb) ?(pipeline = 1)
    ?checkpoint ?durable ?(record = false) ?(eps_per_replica = 4) ~hosts_for
    ~seed_for () =
  let eng = cl.Cluster.engine in
  let shards = Shard_map.shards map in
  let t =
    {
      cluster = cl;
      params =
        {
          p_resilience = resilience;
          p_send_method = send_method;
          p_pipeline = pipeline;
          p_checkpoint = checkpoint;
          p_durable = durable;
          p_record = record;
          p_eps = eps_per_replica;
        };
      detectors = Hashtbl.create 8;
      map;
      replicas = Array.make shards [];
      retired = Array.make shards [];
      eps = [||];
      completed_w = Array.init shards (fun _ -> ref []);
      uid = ref 0;
      shard_ops = Array.make shards 0;
      migrated = Array.make shards false;
      migrations = [];
      n_reads = 0;
      n_writes_ok = 0;
      n_writes_busy = 0;
      recovery = [];
    }
  in
  t.eps <-
    Array.init shards (fun shard ->
        let hosts = hosts_for shard in
        let iv0 =
          start_replica t ~shard ~host:(List.hd hosts) ~creator:None
            ~seed:(seed_for shard)
        in
        match Ivar.read eng iv0 with
        | Error e -> failwith ("Service.deploy: create failed: " ^ e)
        | Ok (r0, eps0) ->
            t.replicas.(shard) <- [ r0 ];
            let addr = R.address r0.r_rsm in
            let rest =
              List.concat_map
                (fun host ->
                  let iv =
                    start_replica t ~shard ~host ~creator:(Some addr)
                      ~seed:None
                  in
                  match Ivar.read eng iv with
                  | Error e -> failwith ("Service.deploy: join failed: " ^ e)
                  | Ok (r, eps) ->
                      t.replicas.(shard) <- t.replicas.(shard) @ [ r ];
                      eps)
                (List.tl hosts)
            in
            Array.of_list (eps0 @ rest));
  t

let deploy cl ~map ?resilience ?send_method ?pipeline ?checkpoint ?durable
    ?record ?eps_per_replica () =
  build cl ~map ?resilience ?send_method ?pipeline ?checkpoint ?durable
    ?record ?eps_per_replica
    ~hosts_for:(fun shard -> Shard_map.replica_hosts map shard)
    ~seed_for:(fun _ -> None)
    ()

(* Whole-cluster power-loss recovery: every shard's every host reads
   its own disk back (checkpoint + WAL replay, real I/O), the host
   with the most recovered updates re-creates the shard's group seeded
   with that state, and the rest join by atomic state transfer (their
   disks are wiped to the transferred state by the joiner reconcile in
   [Rsm.join]).  A host whose disk refuses recovery (damage) simply
   joins — it re-syncs from the creator; if EVERY host refuses, the
   shard restarts empty, which is the honest reading of "all the disks
   are damaged".  [hosts_for] overrides the per-shard host list — the
   mid-migration recovery path, where a shard's durable state may sit
   on the union of its old and new replica sets; whichever disk
   recovered the most updates wins, everyone else reconciles to it, so
   the shard restarts with exactly one owner whatever instant the
   power died at. *)
let recover cl ~map ~durable ?resilience ?send_method ?pipeline ?record
    ?eps_per_replica ?hosts_for () =
  let eng = cl.Cluster.engine in
  let shards = Shard_map.shards map in
  let hosts_for =
    match hosts_for with
    | Some f -> f
    | None -> fun shard -> Shard_map.replica_hosts map shard
  in
  let seed_of = Hashtbl.create shards in
  let reports =
    List.init shards (fun shard ->
        let d = durability_of durable shard in
        (* all hosts read their disks concurrently; each on its own
           machine, each paying its own sequential-scan cost *)
        let results =
          hosts_for shard
          |> List.map (fun host ->
                 let iv = Ivar.create () in
                 Cluster.spawn_on cl host (fun () ->
                     Ivar.fill iv (R.recover d (Cluster.machine cl host)));
                 (host, iv))
          |> List.map (fun (host, iv) -> (host, Ivar.read eng iv))
        in
        let creator =
          List.fold_left
            (fun best (host, res) ->
              match (res, best) with
              | Error _, _ -> best
              | Ok rec_, Some (_, b) when b.R.r_applied >= rec_.R.r_applied ->
                  best
              | Ok rec_, _ -> Some (host, rec_))
            None results
        in
        let creator_host, applied =
          match creator with
          | Some (host, rec_) ->
              Hashtbl.replace seed_of shard (rec_.R.r_state, rec_.R.r_applied);
              (host, rec_.R.r_applied)
          | None -> (List.hd (hosts_for shard), 0)
        in
        {
          sr_shard = shard;
          sr_creator = creator_host;
          sr_applied = applied;
          sr_hosts =
            List.map
              (fun (host, res) ->
                match res with
                | Ok rec_ ->
                    {
                      hr_host = host;
                      hr_applied = rec_.R.r_applied;
                      hr_error = None;
                      hr_stats = Some rec_.R.r_stats;
                    }
                | Error msg ->
                    {
                      hr_host = host;
                      hr_applied = 0;
                      hr_error = Some msg;
                      hr_stats = None;
                    })
              results;
        })
  in
  let t =
    build cl ~map ?resilience ?send_method ?pipeline ~durable ?record
      ?eps_per_replica
      ~hosts_for:(fun shard ->
        let sr = List.nth reports shard in
        sr.sr_creator
        :: List.filter (fun h -> h <> sr.sr_creator) (hosts_for shard))
      ~seed_for:(fun shard -> Hashtbl.find_opt seed_of shard)
      ()
  in
  t.recovery <- reports;
  (* Surface what recovery found through each replica's own group-info
     counters, so GetInfoGroup tells the whole durability story. *)
  List.iter
    (fun sr ->
      List.iter
        (fun hr ->
          match hr.hr_stats with
          | None -> ()
          | Some st -> (
              match
                List.find_opt
                  (fun r -> r.r_host = hr.hr_host)
                  t.replicas.(sr.sr_shard)
              with
              | None -> ()
              | Some r ->
                  let sc = Api.storage_counters (R.group r.r_rsm) in
                  sc.Api.wal_records_replayed <-
                    sc.Api.wal_records_replayed + st.Rsm.records_replayed;
                  sc.Api.torn_tails_truncated <-
                    sc.Api.torn_tails_truncated + st.Rsm.torn_tails;
                  sc.Api.checksum_rejects <-
                    sc.Api.checksum_rejects + st.Rsm.checksum_rejects))
        sr.sr_hosts)
    reports;
  t

(* ------------------------------------------------------------------ *)
(* Live shard migration                                               *)

let alive t host = Machine.is_alive (Cluster.machine t.cluster host)

(* Root-side watchdog: every blocking step of a migration runs on some
   machine that chaos may crash mid-step, leaving the ivar forever
   empty — the watchdog turns that into a timely [Error] verdict the
   protocol can roll back from. *)
let watchdog t ~timeout iv msg =
  let eng = t.cluster.Cluster.engine in
  Engine.spawn eng (fun () ->
      Engine.sleep eng timeout;
      ignore (Ivar.try_fill iv (Error msg)))

(* Graceful exit of one retired replica, on its own machine.  The
   kernel's Leave handler sequences the departure on the group stream:
   when the leaver is the sequencer, duty passes deterministically to
   the lowest-numbered survivor at that point of the stream — the
   view-synchronous cutover this migration builds on. *)
let leave_replica t ~timeout r =
  if not (alive t r.r_host) then Error "host dead"
  else begin
    let iv = Ivar.create () in
    Cluster.spawn_on t.cluster r.r_host (fun () ->
        let res =
          match R.leave r.r_rsm with
          | Ok () -> Ok ()
          | Error e -> Error (T.error_to_string e)
        in
        ignore (Ivar.try_fill iv res));
    watchdog t ~timeout iv (Printf.sprintf "leave of m%d timed out" r.r_host);
    Ivar.read t.cluster.Cluster.engine iv
  end

(* The durable half of the handoff: once a replica has left its group,
   its disk no longer speaks for the shard — wipe the WAL and
   checkpoint so a later power-loss recovery finds the shard's state
   only on its current owners.  Guarded by the machine generation: if
   the host power-cycled since the replica came up, whatever is on
   that disk now belongs to a recovery this migration must not touch. *)
let retire_disk t r =
  match t.params.p_durable with
  | None -> ()
  | Some dc ->
      let m = Cluster.machine t.cluster r.r_host in
      if Machine.restarts m = r.r_gen then begin
        let d = durability_of dc r.r_shard in
        Stable_store.remove dc.d_store ~machine_name:(Machine.name m)
          ~key:(Rsm.ckpt_name d);
        Stable_store.wal_reset dc.d_store ~machine_name:(Machine.name m)
          ~log:(Rsm.wal_name d)
      end

let record_migration t ~shard ~from_ ~to_ ~started result =
  t.migrations <-
    {
      m_shard = shard;
      m_from = from_;
      m_to = to_;
      m_started = started;
      m_finished = Engine.now t.cluster.Cluster.engine;
      m_result = result;
    }
    :: t.migrations;
  result

(* State-transfers one shard's group onto [hosts] while it keeps
   serving.  Phase 1 (no service interruption): each destination joins
   the running group — [Rsm.join] is an atomic state transfer, the
   creator's checkpoint at a stream cut plus the buffered delta beyond
   it, and the joiner reconciles its disk to the transferred state.
   Phase 2 (the cutover): outgoing replicas retire (they answer [Busy]
   from here on), follower leavers go first and the outgoing sequencer
   leaves LAST, handing duty view-synchronously to the lowest-numbered
   survivor; each fully-left source disk is wiped.  The shard's map
   entry is then reassigned with the actual new sequencer's host first
   — hand {!endpoints} to [Router.update_endpoints] to end the
   dual-routing window.  Any join failure rolls back: the half-joined
   destinations retire and leave, the source keeps the shard, and the
   error says why — at every instant the shard has exactly one owning
   group. *)
let migrate_shard t ~shard ?(timeout = Time.ms 2000) ~hosts () =
  let eng = t.cluster.Cluster.engine in
  let started = Engine.now eng in
  let finish = record_migration t ~shard ~started in
  if shard < 0 || shard >= Array.length t.replicas then
    Error (Printf.sprintf "no such shard %d" shard)
  else begin
    let old = t.replicas.(shard) in
    let old_hosts = List.map (fun r -> r.r_host) old in
    let finish = finish ~from_:old_hosts ~to_:hosts in
    if hosts = [] then finish (Error "no target hosts")
    else if List.length (List.sort_uniq compare hosts) <> List.length hosts
    then finish (Error "duplicate target hosts")
    else if
      List.exists (fun h -> not (List.mem h (Shard_map.hosts t.map))) hosts
    then finish (Error "target host outside the map's pool")
    else begin
      let keeps = List.filter (fun r -> List.mem r.r_host hosts) old in
      let drops = List.filter (fun r -> not (List.mem r.r_host hosts)) old in
      let joins = List.filter (fun h -> not (List.mem h old_hosts)) hosts in
      if drops = [] && joins = [] then finish (Ok ())
      else begin
        match List.find_opt (fun r -> alive t r.r_host) old with
        | None -> finish (Error "no live replica to transfer from")
        | Some src ->
            let addr = R.address src.r_rsm in
            (* phase 1: destinations join (checkpoint + delta catch-up) *)
            let joined = ref [] and join_err = ref None in
            List.iter
              (fun h ->
                if !join_err = None then
                  if not (alive t h) then
                    join_err := Some (Printf.sprintf "target m%d is dead" h)
                  else begin
                    let iv =
                      start_replica t ~shard ~host:h ~creator:(Some addr)
                        ~seed:None
                    in
                    watchdog t ~timeout iv
                      (Printf.sprintf "join of m%d timed out" h);
                    match Ivar.read eng iv with
                    | Ok (r, _) -> joined := r :: !joined
                    | Error e ->
                        join_err :=
                          Some (Printf.sprintf "join of m%d failed: %s" h e)
                  end)
              joins;
            let fresh = List.rev !joined in
            match !join_err with
            | Some e ->
                (* roll back: the half-joined destinations retire and
                   leave; the source never stopped owning the shard *)
                List.iter
                  (fun r ->
                    r.r_retired <- true;
                    (match leave_replica t ~timeout r with
                    | Ok () -> retire_disk t r
                    | Error _ -> ());
                    t.retired.(shard) <- r :: t.retired.(shard))
                  fresh;
                finish (Error e)
            | None ->
                (* phase 2: cutover.  Retired sources answer Busy from
                   here — the blackout window until the router learns
                   the new endpoints. *)
                List.iter (fun r -> r.r_retired <- true) drops;
                let members = keeps @ fresh in
                let is_seq r =
                  alive t r.r_host
                  &&
                  let info = Api.get_info_group (R.group r.r_rsm) in
                  info.Api.my_mid = info.Api.sequencer
                in
                let drop_seq, drop_rest = List.partition is_seq drops in
                List.iter
                  (fun r ->
                    match leave_replica t ~timeout r with
                    | Ok () -> retire_disk t r
                    | Error _ ->
                        (* a dead leaver is expelled by auto_heal; its
                           stale disk is left alone — recovery driven
                           by the new map never reads it *)
                        ())
                  (drop_rest @ drop_seq);
                t.retired.(shard) <- drops @ t.retired.(shard);
                (* order the survivors with the group's actual
                   sequencer first — the contract [Router]'s reserve
                   set and the map's spreading metrics rely on *)
                let seq_host =
                  match List.find_opt (fun r -> alive t r.r_host) members with
                  | None -> List.hd hosts
                  | Some probe -> (
                      let info = Api.get_info_group (R.group probe.r_rsm) in
                      match
                        List.find_opt
                          (fun r -> r.r_mid = info.Api.sequencer)
                          members
                      with
                      | Some r -> r.r_host
                      | None -> probe.r_host)
                in
                let final_hosts =
                  seq_host :: List.filter (fun h -> h <> seq_host) hosts
                in
                let ordered =
                  List.map
                    (fun h -> List.find (fun r -> r.r_host = h) members)
                    final_hosts
                in
                t.replicas.(shard) <- ordered;
                t.eps.(shard) <-
                  Array.of_list (List.concat_map (fun r -> r.r_eps) ordered);
                t.map <- Shard_map.reassign t.map ~shard ~hosts:final_hosts;
                t.migrated.(shard) <- true;
                finish (Ok ())
      end
    end
  end

let sequencer_of t shard =
  match
    List.find_opt
      (fun r -> (not r.r_retired) && alive t r.r_host)
      t.replicas.(shard)
  with
  | None -> Shard_map.sequencer_host t.map shard
  | Some r -> (
      let info = Api.get_info_group (R.group r.r_rsm) in
      match
        List.find_opt (fun r' -> r'.r_mid = info.Api.sequencer) t.replicas.(shard)
      with
      | Some r' -> r'.r_host
      | None -> r.r_host)

(* ------------------------------------------------------------------ *)

let applied t shard =
  List.map (fun r -> (r.r_host, R.applied r.r_rsm)) t.replicas.(shard)

(* Retired replicas' streams ride along (never held to durability, and
   labelled with a trailing '-'): the total-order and migration-safety
   invariants must see both sides of a cutover, since the source's
   stream vouches for writes acknowledged before the handoff.

   A member never delivers its own [Member_left] — its lifetime ends
   just before the seq its leave was stamped with.  Anything its stale
   kernel hears past that point (a recovery reset racing the cutover,
   the expulsion notice) is post-membership noise, and keeping it
   would show the checker a gap exactly where the leave seq sits.  So
   each retired stream is truncated at its own leave point, found by
   mid in whichever stream delivered the [Member_left]. *)
let checker_streams t ~shard ~crashed =
  let live =
    List.map
      (fun r ->
        {
          Checker.label = Printf.sprintf "s%d/m%d" r.r_shard r.r_host;
          events = List.rev !(r.r_events);
          full = not (crashed r.r_host);
        })
      t.replicas.(shard)
  in
  let all_events =
    List.concat_map (fun r -> !(r.r_events)) t.replicas.(shard)
    @ List.concat_map (fun r -> !(r.r_events)) t.retired.(shard)
  in
  let leave_seq_of mid =
    List.fold_left
      (fun acc e ->
        match e with
        | T.Member_left { seq; mid = m } when m = mid -> Some seq
        | _ -> acc)
      None all_events
  in
  let retired_events r =
    let evs = List.rev !(r.r_events) in
    match leave_seq_of r.r_mid with
    | None -> evs
    | Some cut ->
        List.filter
          (fun e ->
            match e with
            | T.Expelled -> false
            | T.Message { seq; _ }
            | T.Member_joined { seq; _ }
            | T.Member_left { seq; _ }
            | T.Group_reset { seq; _ } ->
                seq < cut)
          evs
  in
  live
  @ List.map
      (fun r ->
        {
          Checker.label = Printf.sprintf "s%d/m%d-" r.r_shard r.r_host;
          events = retired_events r;
          full = false;
        })
      t.retired.(shard)

let completed t ~shard = List.rev !(t.completed_w.(shard))

let owners t ~shard ~crashed =
  let of_replica ~retired r =
    {
      Checker.ow_host = r.r_host;
      ow_group = Format.asprintf "%a" Addr.pp (R.address r.r_rsm);
      ow_live = (not (crashed r.r_host)) && alive t r.r_host;
      ow_retired = retired || r.r_retired;
    }
  in
  List.map (of_replica ~retired:false) t.replicas.(shard)
  @ List.map (of_replica ~retired:true) t.retired.(shard)

let check_migration t ~shard ~crashed =
  let is_crashed h = List.mem h crashed in
  Checker.migration_safety
    ~owners:(owners t ~shard ~crashed:is_crashed)
    ~streams:(checker_streams t ~shard ~crashed:is_crashed)
    ~completed:(completed t ~shard)

let check t ~crashed =
  let is_crashed h = List.mem h crashed in
  List.init (Shard_map.shards t.map) (fun shard ->
      let streams = checker_streams t ~shard ~crashed:is_crashed in
      let dead_replicas =
        List.length
          (List.filter is_crashed (Shard_map.replica_hosts t.map shard))
      in
      let verdicts =
        Checker.run
          ~durability_applies:(dead_replicas <= t.params.p_resilience)
          ~streams
          ~completed:(completed t ~shard)
          ()
      in
      let verdicts =
        if t.migrated.(shard) || t.retired.(shard) <> [] then
          verdicts @ [ check_migration t ~shard ~crashed ]
        else verdicts
      in
      (shard, verdicts))
