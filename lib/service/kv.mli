(** The replicated application hosted by each shard — a string
    key/value store — plus the request/reply wire protocol spoken
    between routers and replicas over {!Amoeba_rpc.Rpc}.

    Every write carries a service-wide unique [uid], which makes
    updates idempotent to the eye of the chaos checker (two retries of
    the same logical write are distinct stream bodies) and lets the
    at-least-once router retry across a failover without tripping the
    no-duplicates invariant. *)

module Smap : Map.S with type key = string

(** The [Rsm.APP] instance replicated inside each shard's group. *)
module Store : sig
  type state = string Smap.t

  type update =
    | Put of { uid : int; key : string; value : string }
    | Del of { uid : int; key : string }

  val initial : state
  val apply : state -> update -> state
  val encode_update : update -> bytes
  val decode_update : bytes -> update option
  val encode_state : state -> bytes
  val decode_state : bytes -> state option
end

module Rsm_store : module type of Amoeba_grouplib.Rsm.Make (Store)

(** {1 Router/replica request protocol} *)

type request =
  | Get of string
  | Stale_get of string
      (** bounded-staleness read: the replica may answer from its last
          durable checkpoint (the durable frontier) instead of the
          live, totally-ordered state — never newer than the live
          state, never older than the last checkpoint *)
  | Put of string * string
  | Del of string

type reply =
  | Value of string  (** [Get] hit *)
  | Not_found  (** [Get] miss *)
  | Written  (** write sequenced and applied locally *)
  | Wrong_shard of int  (** contacted replica does not own this key *)
  | Busy of string  (** transient failure; the router should retry *)

val request_key : request -> string
val encode_request : request -> bytes
val decode_request : bytes -> request option
val encode_reply : reply -> bytes
val decode_reply : bytes -> reply option

(** {1 Batched request protocol}

    A router that accumulates several client ops for the same shard
    ships them as one RPC ("B" frame) and gets one reply vector back
    ("R" frame), positionally matched to the requests.  The tag bytes
    are disjoint from the single-op frames, so a replica can serve
    both on one endpoint. *)

val encode_batch_request : request list -> bytes
val decode_batch_request : bytes -> request list option
val encode_batch_reply : reply list -> bytes
val decode_batch_reply : bytes -> reply list option
