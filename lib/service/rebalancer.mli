(** Elastic rebalancing: a sampling loop that watches per-shard load
    and live-migrates hot shards off overloaded sequencer machines.

    The paper's central measurement is that a group's throughput cost
    lands on its sequencer's CPU, so the load metric is sequencing
    load: each shard's handled-op delta over the sampling interval,
    credited wholly to the machine hosting its sequencer.  When one
    machine's share exceeds [hot_factor] times the pool mean, the
    hottest shard it sequences is {!Service.migrate_shard}'d onto the
    coldest machines currently holding none of its replicas — the
    whole replica set moves, so the first (coldest) joiner is the
    lowest-numbered survivor after the cutover and provably inherits
    the sequencer role.  The Zipf workload's hot-key skew is exactly
    what trips this.

    A move happens only when it strictly improves the balance: the
    coldest candidate's load plus the shard's load must be below the
    hot host's load.  A machine that is hot purely because its one
    shard is hot gains nothing from relocation (the hot spot would
    just follow the shard and ping-pong), so the trigger in practice
    is sequencer colocation — more shards than machines, or crash
    healing having stacked two sequencers on one host. *)

open Amoeba_sim
open Amoeba_harness

type config = {
  interval : Time.t;  (** sampling period (default 250 ms) *)
  hot_factor : float;
      (** a host is hot when its sequencing load exceeds this multiple
          of the pool mean (default 2.0) *)
  min_ops : int;
      (** ignore intervals with fewer handled ops than this — idle
          noise is not load evidence (default 32) *)
  max_moves : int;  (** stop after this many migrations (default 4) *)
}

val default_config : config

type move = {
  mv_time : Time.t;
  mv_shard : int;
  mv_from : int list;
  mv_to : int list;
  mv_result : (unit, string) result;
}

type t

val start :
  Cluster.t ->
  Service.t ->
  ?config:config ->
  ?on_move:(move -> unit) ->
  unit ->
  t
(** Spawns the sampling loop as a root (crash-surviving) process.
    [on_move] fires after every migration attempt, successful or not —
    hand the service's refreshed {!Service.endpoints} to each router's
    [update_endpoints] there.  The loop exits after [max_moves]
    attempts or {!stop}. *)

val moves : t -> move list
(** Migration attempts so far, oldest first. *)

val stop : t -> unit
(** The loop exits at its next tick. *)
