(** Partitioning a key space over N independent totally-ordered
    groups.

    The paper's own measurements (section 4) put the throughput
    ceiling at the sequencer: one CPU stamps every message, so a
    single group cannot exceed ~815 msg/s no matter how many machines
    join it.  The standard escape — the paper's Figure 6, and Ring
    Paxos's partitioned deployments — is to run many disjoint groups
    and spread their sequencers over distinct machines.  A shard map
    is the static piece of that design: a consistent-hash ring mapping
    keys to shards, plus a deterministic placement of each shard's
    replicas with the {e sequencer-hosting} replica (the group
    creator) spread across distinct machines. *)

type t

val create :
  ?virtual_nodes:int ->
  ?replication:int ->
  shards:int ->
  hosts:int list ->
  unit ->
  t
(** [create ~shards ~hosts ()] builds the map.  [hosts] are the
    machine indices available to host replicas.  [replication]
    (default 3, clamped to the host count) is the number of replicas
    per shard.  Placement is deterministic: shard [i]'s sequencer
    lives on [hosts.(i mod h)] — distinct machines whenever
    [shards <= h] — and its remaining replicas stride across the host
    list so no machine is hit twice by one shard.  [virtual_nodes]
    (default 64) sets the ring resolution per shard.

    @raise Invalid_argument on an empty host list, [shards < 1] or
    [replication < 1]. *)

val shards : t -> int

val replication : t -> int

val hosts : t -> int list

val shard_of_key : t -> string -> int
(** Consistent: a pure function of the key and the ring (FNV-1a over
    the key, nearest virtual node clockwise).  Every router and every
    replica computes the same answer with no coordination. *)

val sequencer_host : t -> int -> int
(** The machine whose replica creates shard [i]'s group — and
    therefore hosts its sequencer (the creator is member 0). *)

val replica_hosts : t -> int -> int list
(** All machines holding a replica of shard [i], sequencer host
    first.  Pairwise distinct; follower replicas avoid every
    sequencer host whenever the pool has enough non-sequencing
    machines (the sequencer's cycles are the shard's scarce
    resource). *)

val reassign : t -> shard:int -> hosts:int list -> t
(** [reassign t ~shard ~hosts] is [t] with shard [shard]'s replicas
    placed on [hosts] (sequencer host first) — the map-level half of a
    live migration.  The key ring is untouched: {!shard_of_key} is
    unchanged for every key, and {!replica_hosts}/{!sequencer_host}
    change for exactly the reassigned shard (minimal disruption).
    [hosts] may differ in length from the map's default replication.

    @raise Invalid_argument on an out-of-range shard, an empty or
    duplicate-carrying host list, or a host outside the pool. *)

val pp : Format.formatter -> t -> unit
