open Amoeba_sim
open Amoeba_harness

type config = {
  interval : Time.t;
  hot_factor : float;
  min_ops : int;
  max_moves : int;
}

let default_config =
  { interval = Time.ms 250; hot_factor = 2.0; min_ops = 32; max_moves = 4 }

type move = {
  mv_time : Time.t;
  mv_shard : int;
  mv_from : int list;
  mv_to : int list;
  mv_result : (unit, string) result;
}

type t = {
  config : config;
  mutable moves : move list;  (* newest first *)
  mutable stopped : bool;
}

let moves t = List.rev t.moves
let stop t = t.stopped <- true

(* Per-shard op deltas since the last tick are credited wholly to each
   shard's sequencer host — the paper's measurement is that the
   sequencer CPU is where a shard's cost lands, so that is the load
   being balanced. *)
let start cl svc ?(config = default_config) ?(on_move = fun (_ : move) -> ())
    () =
  let eng = cl.Cluster.engine in
  let t = { config; moves = []; stopped = false } in
  let last = ref (Service.shard_ops svc) in
  Cluster.spawn cl (fun () ->
      let rec loop () =
        if (not t.stopped) && List.length t.moves < config.max_moves then begin
          Engine.sleep eng config.interval;
          if not t.stopped then begin
            let now_ops = Service.shard_ops svc in
            let map = Service.map svc in
            let shards = Shard_map.shards map in
            let pool = Shard_map.hosts map in
            let delta = Array.init shards (fun s -> now_ops.(s) - !last.(s)) in
            last := now_ops;
            let total = Array.fold_left ( + ) 0 delta in
            (if total >= config.min_ops then begin
               let seq_of =
                 Array.init shards (fun s -> Service.sequencer_of svc s)
               in
               let seq_load = Hashtbl.create 8 in
               Array.iteri
                 (fun s d ->
                   let h = seq_of.(s) in
                   Hashtbl.replace seq_load h
                     (d
                     + Option.value ~default:0 (Hashtbl.find_opt seq_load h)))
                 delta;
               let load h =
                 Option.value ~default:0 (Hashtbl.find_opt seq_load h)
               in
               let mean =
                 float_of_int total /. float_of_int (List.length pool)
               in
               let hot =
                 List.fold_left
                   (fun best h ->
                     match best with
                     | Some b when load b >= load h -> best
                     | _ -> Some h)
                   None pool
               in
               match hot with
               | Some hot when float_of_int (load hot) > config.hot_factor *. mean
                 -> (
                   (* hottest shard sequenced by the overloaded host *)
                   let shard = ref (-1) in
                   Array.iteri
                     (fun s d ->
                       if
                         seq_of.(s) = hot
                         && (!shard < 0 || d > delta.(!shard))
                       then shard := s)
                     delta;
                   match !shard with
                   | -1 -> ()
                   | s ->
                       let cur = Shard_map.replica_hosts map s in
                       let k = List.length cur in
                       (* the whole replica set moves to the coldest
                          fresh hosts: with every member new, the first
                          joiner is the lowest-numbered survivor after
                          the cutover, so the sequencer provably lands
                          on the coldest machine *)
                       let candidates =
                         List.filter (fun h -> not (List.mem h cur)) pool
                         |> List.stable_sort (fun a b ->
                                compare (load a, a) (load b, b))
                       in
                       (* strict improvement only: the new sequencer
                          (the coldest candidate) inherits the shard's
                          load on top of its own, and unless that sum
                          is strictly below the hot host's load the
                          move just relocates the hot spot — and the
                          next tick would move it again, forever.  A
                          host hot purely because one shard is hot is
                          a key-skew problem, not a placement one. *)
                       if
                         List.length candidates >= k
                         && load (List.hd candidates) + delta.(s) < load hot
                       then begin
                         let target =
                           List.filteri (fun i _ -> i < k) candidates
                         in
                         let res =
                           Service.migrate_shard svc ~shard:s ~hosts:target ()
                         in
                         let mv =
                           {
                             mv_time = Engine.now eng;
                             mv_shard = s;
                             mv_from = cur;
                             mv_to = target;
                             mv_result = res;
                           }
                         in
                         t.moves <- mv :: t.moves;
                         (* the migration window's traffic is not load
                            evidence; restart the baseline *)
                         last := Service.shard_ops svc;
                         on_move mv
                       end)
               | _ -> ()
             end);
            loop ()
          end
        end
      in
      loop ());
  t
