module Smap = Map.Make (String)

(* Update wire format (inside the group's 'U' frame):
     "P<uid> <klen> <key><value>"   put
     "D<uid> <key>"                 delete
   State wire format: a run of "<klen> <vlen> <key><value>" records. *)
module Store = struct
  type state = string Smap.t

  type update =
    | Put of { uid : int; key : string; value : string }
    | Del of { uid : int; key : string }

  let initial = Smap.empty

  let apply s = function
    | Put { key; value; _ } -> Smap.add key value s
    | Del { key; _ } -> Smap.remove key s

  let encode_update = function
    | Put { uid; key; value } ->
        Bytes.of_string
          (Printf.sprintf "P%d %d %s%s" uid (String.length key) key value)
    | Del { uid; key } -> Bytes.of_string (Printf.sprintf "D%d %s" uid key)

  let decode_update b =
    let s = Bytes.to_string b in
    let len = String.length s in
    if len = 0 then None
    else
      match s.[0] with
      | 'P' -> (
          match String.index_opt s ' ' with
          | None -> None
          | Some i1 -> (
              match String.index_from_opt s (i1 + 1) ' ' with
              | None -> None
              | Some i2 -> (
                  match
                    ( int_of_string_opt (String.sub s 1 (i1 - 1)),
                      int_of_string_opt (String.sub s (i1 + 1) (i2 - i1 - 1)) )
                  with
                  | Some uid, Some klen
                    when klen >= 0 && i2 + 1 + klen <= len ->
                      let key = String.sub s (i2 + 1) klen in
                      let value =
                        String.sub s (i2 + 1 + klen) (len - i2 - 1 - klen)
                      in
                      Some (Put { uid; key; value })
                  | _ -> None)))
      | 'D' -> (
          match String.index_opt s ' ' with
          | None -> None
          | Some i -> (
              match int_of_string_opt (String.sub s 1 (i - 1)) with
              | Some uid -> Some (Del { uid; key = String.sub s (i + 1) (len - i - 1) })
              | None -> None))
      | _ -> None

  let encode_state s =
    let buf = Buffer.create 256 in
    Smap.iter
      (fun k v ->
        Buffer.add_string buf
          (Printf.sprintf "%d %d %s%s" (String.length k) (String.length v) k v))
      s;
    Bytes.of_string (Buffer.contents buf)

  let decode_state b =
    let s = Bytes.to_string b in
    let len = String.length s in
    let rec go pos acc =
      if pos >= len then Some acc
      else
        match String.index_from_opt s pos ' ' with
        | None -> None
        | Some i1 -> (
            match String.index_from_opt s (i1 + 1) ' ' with
            | None -> None
            | Some i2 -> (
                match
                  ( int_of_string_opt (String.sub s pos (i1 - pos)),
                    int_of_string_opt (String.sub s (i1 + 1) (i2 - i1 - 1)) )
                with
                | Some klen, Some vlen
                  when klen >= 0 && vlen >= 0 && i2 + 1 + klen + vlen <= len ->
                    let k = String.sub s (i2 + 1) klen in
                    let v = String.sub s (i2 + 1 + klen) vlen in
                    go (i2 + 1 + klen + vlen) (Smap.add k v acc)
                | _ -> None))
    in
    go 0 Smap.empty
end

module Rsm_store = Amoeba_grouplib.Rsm.Make (Store)

(* Request wire format (over RPC):
     "G<key>"              get
     "S<key>"              stale get (bounded-staleness read)
     "P<klen> <key><value>"  put
     "D<key>"              delete
     "B<n> (<len> <req>)*"   batch of n requests, in order
   Reply wire format:
     "V<value>" | "N" | "K" | "W<shard>" | "E<reason>"
     "R<n> (<len> <reply>)*" batch reply, one per request, same order *)

type request =
  | Get of string
  | Stale_get of string
  | Put of string * string
  | Del of string

type reply =
  | Value of string
  | Not_found
  | Written
  | Wrong_shard of int
  | Busy of string

let request_key = function
  | Get k | Stale_get k | Del k -> k
  | Put (k, _) -> k

let encode_request = function
  | Get k -> Bytes.of_string ("G" ^ k)
  | Stale_get k -> Bytes.of_string ("S" ^ k)
  | Put (k, v) ->
      Bytes.of_string (Printf.sprintf "P%d %s%s" (String.length k) k v)
  | Del k -> Bytes.of_string ("D" ^ k)

let decode_request b =
  let s = Bytes.to_string b in
  let len = String.length s in
  if len = 0 then None
  else
    match s.[0] with
    | 'G' -> Some (Get (String.sub s 1 (len - 1)))
    | 'S' -> Some (Stale_get (String.sub s 1 (len - 1)))
    | 'D' -> Some (Del (String.sub s 1 (len - 1)))
    | 'P' -> (
        match String.index_opt s ' ' with
        | None -> None
        | Some i -> (
            match int_of_string_opt (String.sub s 1 (i - 1)) with
            | Some klen when klen >= 0 && i + 1 + klen <= len ->
                Some
                  (Put
                     ( String.sub s (i + 1) klen,
                       String.sub s (i + 1 + klen) (len - i - 1 - klen) ))
            | _ -> None))
    | _ -> None

let encode_reply = function
  | Value v -> Bytes.of_string ("V" ^ v)
  | Not_found -> Bytes.of_string "N"
  | Written -> Bytes.of_string "K"
  | Wrong_shard s -> Bytes.of_string (Printf.sprintf "W%d" s)
  | Busy msg -> Bytes.of_string ("E" ^ msg)

let decode_reply b =
  let s = Bytes.to_string b in
  let len = String.length s in
  if len = 0 then None
  else
    match s.[0] with
    | 'V' -> Some (Value (String.sub s 1 (len - 1)))
    | 'N' when len = 1 -> Some Not_found
    | 'K' when len = 1 -> Some Written
    | 'W' -> (
        match int_of_string_opt (String.sub s 1 (len - 1)) with
        | Some shard -> Some (Wrong_shard shard)
        | None -> None)
    | 'E' -> Some (Busy (String.sub s 1 (len - 1)))
    | _ -> None

(* Counted length-prefixed vectors, shared by batch requests ('B') and
   batch replies ('R'). *)
let encode_counted tag encode items =
  let buf = Buffer.create 64 in
  Buffer.add_char buf tag;
  Buffer.add_string buf (string_of_int (List.length items));
  Buffer.add_char buf ' ';
  List.iter
    (fun item ->
      let enc = encode item in
      Buffer.add_string buf (string_of_int (Bytes.length enc));
      Buffer.add_char buf ' ';
      Buffer.add_bytes buf enc)
    items;
  Buffer.to_bytes buf

let decode_counted tag decode b =
  let len = Bytes.length b in
  if len = 0 || Bytes.get b 0 <> tag then None
  else
    let int_sp pos =
      match Bytes.index_from_opt b pos ' ' with
      | None -> None
      | Some sp -> (
          match int_of_string_opt (Bytes.sub_string b pos (sp - pos)) with
          | Some v -> Some (v, sp + 1)
          | None -> None)
    in
    match int_sp 1 with
    | None -> None
    | Some (n, pos) ->
        let rec go acc pos = function
          | 0 -> if pos = len then Some (List.rev acc) else None
          | k -> (
              match int_sp pos with
              | None -> None
              | Some (l, pos) ->
                  if l < 0 || pos + l > len then None
                  else
                    match decode (Bytes.sub b pos l) with
                    | None -> None
                    | Some item -> go (item :: acc) (pos + l) (k - 1))
        in
        if n < 0 then None else go [] pos n

let encode_batch_request = encode_counted 'B' encode_request
let decode_batch_request = decode_counted 'B' decode_request
let encode_batch_reply = encode_counted 'R' encode_reply
let decode_batch_reply = decode_counted 'R' decode_reply
