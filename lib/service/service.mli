(** The server side of the sharded service: one {!Amoeba_grouplib.Rsm}
    key/value replica group per shard, deployed over a
    {!Amoeba_harness.Cluster} according to a {!Shard_map}.

    Each replica exposes an RPC endpoint speaking the {!Kv} request
    protocol; writes are submitted to the shard's totally-ordered
    group (so every replica of a shard applies the same update
    sequence), reads are answered from the local copy.  Each host also
    runs a failure-detector responder, which routers probe to tell a
    slow replica from a dead one.  Replica groups are created with
    [auto_heal] on: when a shard's sequencer machine crashes, the
    surviving replicas expel it and elect a new sequencer without any
    help from this layer. *)

open Amoeba_flip
open Amoeba_core
open Amoeba_harness

type endpoint = {
  ep_shard : int;
  ep_host : int;  (** machine index in the cluster *)
  ep_addr : Addr.t;  (** RPC request endpoint *)
  ep_probe : Addr.t;  (** failure-detector responder on that host *)
}

type t

val deploy :
  Cluster.t ->
  map:Shard_map.t ->
  ?resilience:int ->
  ?send_method:Types.send_method ->
  ?pipeline:int ->
  ?checkpoint:Amoeba_grouplib.Stable_store.t * int ->
  ?record:bool ->
  ?eps_per_replica:int ->
  unit ->
  t
(** Creates every shard's group and joins its replicas (atomic state
    transfer included), per the map's placement.  Blocking — call it
    from a cluster process; it returns once all replicas are up.
    [resilience] (default 1) is each group's resilience degree.
    [checkpoint] enables consistent checkpointing on every replica.
    [record] (default false) taps every replica's delivery stream and
    logs every completed write, so {!check} can run the chaos
    invariants per shard after a faulted run.  [eps_per_replica]
    (default 4) is the RPC worker pool per replica: endpoints service
    one request at a time and a write occupies its endpoint for the
    whole submit round-trip, so a pool is what lets one replica hold
    several writes in flight.  [pipeline] (default 1) is each replica
    kernel's in-flight sequencer-round depth: with several endpoint
    workers submitting concurrently, depth > 1 lets a replica keep
    that many rounds unacknowledged instead of lock-stepping them. *)

val map : t -> Shard_map.t

val endpoints : t -> endpoint array array
(** Per shard, the sequencer host's pool first — what a {!Router}
    needs.  Round-robin over the whole array spreads load evenly over
    replicas and over each replica's endpoint pool. *)

val applied : t -> int -> (int * int) list
(** [applied t shard] is [(host, updates applied)] per live replica. *)

val reads : t -> int

val writes_ok : t -> int

val writes_busy : t -> int
(** Writes refused with a transient [Busy] reply (submit failed, e.g.
    mid-recovery) — the router retries these. *)

val checker_streams :
  t -> shard:int -> crashed:(int -> bool) -> Checker.stream list
(** Per-replica delivery streams of one shard (empty unless deployed
    with [~record:true]).  [crashed host] marks streams that must not
    be held to the durability invariant. *)

val completed : t -> shard:int -> (Types.mid * string) list
(** Completed writes of one shard, as (member, on-stream bytes) — the
    checker's durability obligations. *)

val check : t -> crashed:int list -> (int * Checker.verdict list) list
(** Runs all four chaos invariants independently per shard.
    Durability applies to a shard only when the crashed machines
    hosting its replicas number at most the resilience degree. *)
