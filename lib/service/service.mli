(** The server side of the sharded service: one {!Amoeba_grouplib.Rsm}
    key/value replica group per shard, deployed over a
    {!Amoeba_harness.Cluster} according to a {!Shard_map}.

    Each replica exposes an RPC endpoint speaking the {!Kv} request
    protocol; writes are submitted to the shard's totally-ordered
    group (so every replica of a shard applies the same update
    sequence), reads are answered from the local copy.  Each host also
    runs a failure-detector responder, which routers probe to tell a
    slow replica from a dead one.  Replica groups are created with
    [auto_heal] on: when a shard's sequencer machine crashes, the
    surviving replicas expel it and elect a new sequencer without any
    help from this layer. *)

open Amoeba_flip
open Amoeba_core
open Amoeba_harness

type endpoint = {
  ep_shard : int;
  ep_host : int;  (** machine index in the cluster *)
  ep_addr : Addr.t;  (** RPC request endpoint *)
  ep_probe : Addr.t;  (** failure-detector responder on that host *)
}

type durable_config = {
  d_store : Amoeba_grouplib.Stable_store.t;
  d_sync : Amoeba_grouplib.Rsm.sync_policy;
  d_checkpoint_every : int;
}
(** Durable-shard configuration: each replica of shard [i] keeps a WAL
    and checkpoints under the stable identity ["shard<i>"] on its own
    host's disk (see {!Amoeba_grouplib.Rsm.durability}). *)

type host_recovery = {
  hr_host : int;
  hr_applied : int;  (** updates its disk could reconstruct; 0 on refusal *)
  hr_error : string option;  (** the loud refusal, when the disk is damaged *)
  hr_stats : Amoeba_grouplib.Rsm.recovery_stats option;
}

type shard_recovery = {
  sr_shard : int;
  sr_creator : int;  (** host whose recovered state won (most applied) *)
  sr_applied : int;  (** the applied count the shard restarted from *)
  sr_hosts : host_recovery list;
}

type t

val deploy :
  Cluster.t ->
  map:Shard_map.t ->
  ?resilience:int ->
  ?send_method:Types.send_method ->
  ?pipeline:int ->
  ?checkpoint:Amoeba_grouplib.Stable_store.t * int ->
  ?durable:durable_config ->
  ?record:bool ->
  ?eps_per_replica:int ->
  unit ->
  t
(** Creates every shard's group and joins its replicas (atomic state
    transfer included), per the map's placement.  Blocking — call it
    from a cluster process; it returns once all replicas are up.
    [resilience] (default 1) is each group's resilience degree.
    [checkpoint] enables consistent checkpointing on every replica.
    [record] (default false) taps every replica's delivery stream and
    logs every completed write, so {!check} can run the chaos
    invariants per shard after a faulted run.  [eps_per_replica]
    (default 4) is the RPC worker pool per replica: endpoints service
    one request at a time and a write occupies its endpoint for the
    whole submit round-trip, so a pool is what lets one replica hold
    several writes in flight.  [pipeline] (default 1) is each replica
    kernel's in-flight sequencer-round depth: with several endpoint
    workers submitting concurrently, depth > 1 lets a replica keep
    that many rounds unacknowledged instead of lock-stepping them.
    [durable] makes every replica log committed updates to a WAL and
    checkpoint per the config's policy, so {!recover} can bring the
    whole service back after a total power loss. *)

val recover :
  Cluster.t ->
  map:Shard_map.t ->
  durable:durable_config ->
  ?resilience:int ->
  ?send_method:Types.send_method ->
  ?pipeline:int ->
  ?record:bool ->
  ?eps_per_replica:int ->
  ?hosts_for:(int -> int list) ->
  unit ->
  t
(** Whole-cluster power-loss recovery, for a cluster whose machines
    have all been restarted: every host of every shard reads its own
    disk back (checkpoint + WAL replay, with real I/O cost, all hosts
    in parallel), the host that reconstructed the most updates
    re-creates the shard's group seeded with that state, and the
    others join by atomic state transfer — a host whose disk refuses
    recovery (damage) re-syncs that way too.  Blocking; returns once
    every shard serves again.  {!recovery_report} says what each disk
    yielded, and the per-replica [GetInfoGroup] counters account the
    replayed/torn/rejected records.  Endpoint arrays put the new
    creator's pool first — hand them to [Router.update_endpoints].

    [hosts_for] overrides the per-shard host list (default: the map's
    placement) — the mid-migration recovery path.  When the power died
    somewhere inside a {!migrate_shard}, the shard's durable state may
    sit on its old replica set, its new one, or both; pass the union
    and the longest-log election plus joiner disk reconcile restart
    the shard with exactly one owner whatever instant the cut hit. *)

val recovery_report : t -> shard_recovery list
(** Per-shard recovery outcomes ([[]] for a {!deploy}ed service). *)

val map : t -> Shard_map.t

val endpoints : t -> endpoint array array
(** Per shard, the sequencer host's pool first — what a {!Router}
    needs.  Round-robin over the whole array spreads load evenly over
    replicas and over each replica's endpoint pool. *)

val applied : t -> int -> (int * int) list
(** [applied t shard] is [(host, updates applied)] per live replica. *)

val reads : t -> int

val writes_ok : t -> int

val writes_busy : t -> int
(** Writes refused with a transient [Busy] reply (submit failed, e.g.
    mid-recovery) — the router retries these. *)

val checker_streams :
  t -> shard:int -> crashed:(int -> bool) -> Checker.stream list
(** Per-replica delivery streams of one shard (empty unless deployed
    with [~record:true]).  [crashed host] marks streams that must not
    be held to the durability invariant. *)

val completed : t -> shard:int -> (Types.mid * string) list
(** Completed writes of one shard, as (member, on-stream bytes) — the
    checker's durability obligations. *)

val check : t -> crashed:int list -> (int * Checker.verdict list) list
(** Runs all four chaos invariants independently per shard.
    Durability applies to a shard only when the crashed machines
    hosting its replicas number at most the resilience degree.  A
    shard a migration touched (completed or rolled back) additionally
    gets the {!Checker.migration_safety} verdict. *)

(** {2 Live migration} *)

type migration = {
  m_shard : int;
  m_from : int list;  (** replica hosts before the attempt *)
  m_to : int list;  (** requested target hosts *)
  m_started : Amoeba_sim.Time.t;
  m_finished : Amoeba_sim.Time.t;
  m_result : (unit, string) result;
}

val migrate_shard :
  t ->
  shard:int ->
  ?timeout:Amoeba_sim.Time.t ->
  hosts:int list ->
  unit ->
  (unit, string) result
(** State-transfers shard [shard]'s group onto [hosts] while the
    workload keeps running.  Blocking — call from a cluster process.

    Phase 1, no interruption: each destination {e joins} the running
    group, an atomic state transfer (the creator's checkpoint at a
    stream cut plus the buffered delta past it) after which the
    joiner's disk is reconciled to the transferred state.  Phase 2,
    the cutover: outgoing replicas retire (answering [Busy] so the
    router walks away), followers leave first and the outgoing
    sequencer leaves {e last} — the kernel's graceful-leave rule hands
    sequencer duty to the lowest-numbered survivor at a fixed point of
    the stream, so ordering is view-synchronous across the handoff —
    and each fully-left source disk is wiped (the durable handoff).
    The map entry is reassigned with the new sequencer's host first;
    hand {!endpoints} to [Router.update_endpoints] to close the
    dual-routing window, during which retried writes are covered by
    fresh-uid idempotence.

    Hosts shared between the old and new set keep their replica —
    moving only the sequencer away is
    [migrate_shard ~hosts:(followers @ [new_host])].

    Crash-safe: [timeout] (default 2 s) bounds every blocking step via
    root-side watchdogs; a destination dying mid-join rolls the whole
    attempt back (destinations retire and leave, the source keeps the
    shard) and returns [Error].  At every instant the shard has
    exactly one owning group — the {!Checker.migration_safety}
    invariant the chaos swarm enforces. *)

val migrations : t -> migration list
(** Every attempt, oldest first — including rolled-back ones. *)

val sequencer_of : t -> int -> int
(** The machine currently hosting shard [i]'s sequencer, per the live
    group's own view (falls back to the map when no replica answers) —
    where the shard's ordering CPU cost lands, which is what a
    {!Rebalancer} balances. *)

val shard_ops : t -> int array
(** Requests handled per shard since deployment (reads + writes +
    batched ops) — the load signal a {!Rebalancer} samples. *)

val check_migration : t -> shard:int -> crashed:int list -> Checker.verdict
(** Just the {!Checker.migration_safety} verdict for one shard — for
    drivers that need it on a service {!check} would not cover, e.g. a
    freshly {!recover}ed one after a mid-migration power loss. *)
