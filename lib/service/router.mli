(** The client front-end of the sharded service.

    A router lives on a client machine.  It hashes each request's key
    through the {!Shard_map}, queues it on that shard's pipeline, and
    a pool of worker processes per shard performs the RPCs — so one
    slow shard never blocks traffic to the others, and each shard
    sustains several in-flight requests at once.

    Requests spread round-robin over the shard's replicas (any replica
    can serve a read from its local copy or submit a write — the
    group's sequencer orders writes regardless of which member submits
    them).  Failure handling is at-least-once with idempotent,
    uid-tagged updates: on an RPC timeout the router probes the
    replica's failure detector — a {e slow} replica is retried, a
    {e dead} one is marked suspect and the request fails over to the
    next replica.  [Busy] replies (a shard mid-recovery) back off and
    retry; [Wrong_shard] redirects re-hash onto the right shard. *)

open Amoeba_sim
open Amoeba_flip

type t

val create :
  Flip.t ->
  ?pipeline:int ->
  ?max_batch:int ->
  ?batch_delay:Time.t ->
  ?timeout:Time.t ->
  ?attempts:int ->
  ?stale_reads:bool ->
  map:Shard_map.t ->
  endpoints:Service.endpoint array array ->
  unit ->
  t
(** [pipeline] (default 4) is the number of concurrent workers per
    shard; [timeout] (default 250 ms) bounds each RPC attempt;
    [attempts] (default 12) bounds retries/failovers per request; a
    dead-host verdict suspects every endpoint on that machine at
    once, so one failover spends one attempt however many endpoints
    the victim served.

    [stale_reads] (default false) makes every {!get} a bounded-
    staleness read ([Kv.Stale_get]): the replica answers from its last
    durable checkpoint when it has one, trading freshness — the read
    may miss updates applied since that checkpoint, but never ones a
    power loss could revoke — for a read that reflects only
    crash-proof state.  Writes are unaffected.

    [max_batch] (default 1) turns on op batching: a worker that takes
    an op off its shard's pipeline keeps accumulating until it holds
    [max_batch] ops or [batch_delay] (default 500 µs, Nagle-style) has
    passed since the first — whichever fires first — and ships the lot
    as one RPC, which the replica submits as one sequencer round.  At
    the default 1 the request path is exactly the unbatched one.  A
    failed or timed-out batch is retried whole; the fresh uid every
    write carries makes the replay safe (idempotent under the
    checker's no-duplicates invariant). *)

type reply =
  | Value of string
  | Not_found
  | Written
  | Failed of string  (** all attempts exhausted *)

val get : t -> string -> reply

val put : t -> string -> string -> reply

val del : t -> string -> reply
(** Blocking operations — call from a process. *)

type op = Get of string | Put of string * string | Del of string

val txn : t -> op list -> (reply list, string) result
(** A multi-key single-shard transaction.  Every key must hash to the
    same shard ([Error] otherwise, nothing sent).  The whole op list
    ships as one batch RPC and the replica submits its writes as
    {e one} sequencer round ({!Amoeba_grouplib.Rsm.submit_batch}), so
    they occupy contiguous slots of the shard's totally-ordered stream
    — atomic with respect to every other client.  Reads are answered
    after the transaction's own writes applied (the committed
    post-image).  Replies come back positionally, one per op.  Retries
    replay the remaining transaction whole; the fresh uid each write
    carries per submission keeps replays idempotent.  Blocking. *)

type stats = {
  ops : int;  (** operations accepted *)
  retries : int;  (** extra attempts on a live replica *)
  failovers : int;  (** switched replica after a suspected death *)
  redirects : int;  (** [Wrong_shard] replies followed *)
  probes_dead : int;  (** failure-detector verdicts of "dead" *)
  batches_sent : int;  (** multi-op RPCs shipped *)
  ops_batched : int;  (** total ops across those batches *)
  partial_flushes : int;
      (** flushes forced by the [batch_delay] timer before the batch
          filled *)
  batch_retries : int;  (** whole-batch replays after failure or Busy *)
  stale_gets : int;  (** gets issued as bounded-staleness reads *)
  txns : int;  (** multi-key transactions accepted (ops counted in [ops]) *)
}

val stats : t -> stats

val update_endpoints : t -> Service.endpoint array array -> unit
(** Swaps in a fresh per-shard endpoint map — the handoff after
    [Service.recover] re-created the groups or [Service.migrate_shard]
    moved one.  Suspicion {e carries over} for hosts present in both
    the old and new map (a swap must not reset the failure detector
    and aim the next request of every untouched shard at a known-dead
    host); hosts new to a shard start trusted.  Round-robin cursors
    reset; the reserve (sequencer-host) set is re-derived from each
    shard's first endpoint, which recovery and migration guarantee
    belongs to the new sequencer's machine. *)

val suspected : t -> int -> int list
(** The machine indices shard [i]'s rotation currently suspects dead —
    a test hook for the carry-over contract above. *)

val suspect_host_for_test : t -> int -> int -> unit
(** [suspect_host_for_test t shard host] marks every one of shard
    [shard]'s endpoints on machine [host] suspect, as a dead-host
    verdict would.  Test hook. *)
