(** Seeded key-popularity generators, shared between the closed/open
    loop {!Workload} engine and the loadgen subsystem's mixed-workload
    generators — one Zipf implementation, not two.

    A generator owns any precomputed tables (the Zipf cumulative
    weights) and the mutable insert frontier the "latest" distribution
    follows; the caller supplies the [Random.State.t], so one shared
    generator serves many independently-seeded clients without
    coupling their draw sequences. *)

type dist =
  | Uniform
  | Zipf of float  (** skew exponent; 0.99 is the YCSB default *)
  | Latest of float
      (** YCSB-D's read-latest popularity: a Zipf-skewed offset back
          from the newest inserted key, so recent inserts are hot and
          popularity decays with age.  The frontier starts at [keys]
          and advances with {!insert}. *)

type t

val create : keys:int -> dist -> t
(** A generator over key indices [0 .. keys-1] (the initial key space;
    {!insert} can extend it).  Building a Zipf/Latest generator
    precomputes the cumulative weight table once — O(keys). *)

val sample : t -> Random.State.t -> int
(** Draw one key index.  Uniform: O(1).  Zipf/Latest: O(log keys) by
    inverse-CDF binary search over the precomputed table — exact, no
    rejection loop.  Latest indices count back from the current
    frontier, newest first. *)

val insert : t -> int
(** Allocate the next key index (the current frontier) and advance the
    frontier — the "insert" op of a YCSB-D-style workload.  Returns
    the allocated index.  Affects only where {!sample} aims a [Latest]
    generator; Uniform/Zipf keep drawing from the initial space. *)

val frontier : t -> int
(** Keys allocated so far (initially [keys]). *)

val key : int -> string
(** The wire key for an index: [key 7 = "k7"] — the [Workload]
    convention every service workload uses. *)
