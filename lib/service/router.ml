open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Amoeba_core
module Rpc = Amoeba_rpc.Rpc

type reply =
  | Value of string
  | Not_found
  | Written
  | Failed of string

type stats = {
  ops : int;
  retries : int;
  failovers : int;
  redirects : int;
  probes_dead : int;
  batches_sent : int;
  ops_batched : int;
  partial_flushes : int;
  batch_retries : int;
  stale_gets : int;
  txns : int;
}

type op = Get of string | Put of string * string | Del of string

type shard_state = {
  queue : (Kv.request * reply Ivar.t) Channel.t;
  turn : unit Channel.t;
      (* one token: the right to gather the next batch off the queue
         (batching mode only) *)
  mutable eps : Service.endpoint array;
  mutable suspect : bool array;
  mutable reserve : bool array;
      (* endpoints on the shard's sequencer host: kept out of the
         rotation while any other replica answers, so the sequencer
         machine spends its cycles ordering, not serving RPCs *)
  mutable rr : int;  (* round-robin cursor over replicas *)
}

type t = {
  engine : Engine.t;
  flip : Flip.t;
  map : Shard_map.t;
  shards : shard_state array;
  det : Failure_detector.t;
  timeout : Time.t;
  attempts : int;
  max_batch : int;
  batch_delay : Time.t;
  stale_reads : bool;
  mutable txn_client : Rpc.client option;
      (* created on first [txn]: an idle client must cost nothing, so
         a router that never runs transactions stays bit-identical *)
  mutable jseed : int;  (* xorshift state for retry-backoff jitter *)
  mutable s_stale_gets : int;
  mutable s_ops : int;
  mutable s_retries : int;
  mutable s_failovers : int;
  mutable s_redirects : int;
  mutable s_probes_dead : int;
  mutable s_batches_sent : int;
  mutable s_ops_batched : int;
  mutable s_partial_flushes : int;
  mutable s_batch_retries : int;
  mutable s_txns : int;
}

(* Next replica to try: round-robin over the ones not currently
   suspected dead, leaving the sequencer host's endpoints in reserve
   while any follower answers.  If every replica is suspect, forgive
   them all — the detector can be wrong, and a healed shard must
   become reachable again. *)
let pick ss =
  let n = Array.length ss.eps in
  if n = 0 then None
    (* a recovery handoff can momentarily leave a shard with no
       endpoints; the caller backs off rather than dividing by zero *)
  else begin
    let usable i = not ss.suspect.(i) in
    if not (Array.exists Fun.id (Array.init n usable)) then
      Array.fill ss.suspect 0 n false;
    let follower_up =
      Array.exists Fun.id
        (Array.init n (fun i -> usable i && not ss.reserve.(i)))
    in
    let want i = usable i && ((not follower_up) || not ss.reserve.(i)) in
    let rec go tries =
      let i = ss.rr mod n in
      ss.rr <- ss.rr + 1;
      if (not (want i)) && tries < 2 * n then go (tries + 1) else i
    in
    Some (go 0)
  end

(* Retry backoff with ±25% jitter.  Clients that all timed out on the
   same drowning replica back off by the same [ms * attempt], wake on
   the same boundary and re-collide forever — the herd just
   resynchronises at each step.  A per-router xorshift spreads them
   out deterministically; the stream is only consumed on a retry, so
   a healthy run sleeps zero times and stays bit-identical. *)
let backoff t ms attempt =
  let s = t.jseed in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  t.jseed <- s land max_int;
  let base = Time.ms (ms * attempt) in
  Engine.sleep t.engine (base / 1000 * (750 + (t.jseed mod 501)))

(* Endpoints on one machine share fate: a dead-host verdict for one
   condemns its whole pool, so the rotation skips them all instead of
   burning a timeout-and-probe cycle per sibling. *)
let suspect_host ss host =
  Array.iteri
    (fun j ep -> if ep.Service.ep_host = host then ss.suspect.(j) <- true)
    ss.eps

let perform t client ss req =
  let payload = Kv.encode_request req in
  let rec go attempt =
    if attempt > t.attempts then Failed "attempts exhausted"
    else begin
      if attempt > 1 then t.s_retries <- t.s_retries + 1;
      match pick ss with
      | None ->
          (* Mid-recovery: no endpoints installed yet.  Back off like
             a [Busy] reply until [update_endpoints] lands. *)
          backoff t 25 attempt;
          go (attempt + 1)
      | Some i -> (
          (* Snapshot the arrays [i] indexes before the blocking call:
             a power-cycle recovery may run [update_endpoints] while
             the RPC is in flight, swapping in arrays of a different
             length, and the post-call verdict must land on the
             endpoint actually tried — not index out of bounds in the
             fresh state. *)
          let eps = ss.eps and suspect = ss.suspect in
          let ep = eps.(i) in
          match
            Rpc.call client ~dst:ep.Service.ep_addr ~timeout:t.timeout
              ~retries:1 payload
          with
          | Ok bytes -> (
              suspect.(i) <- false;
              match Kv.decode_reply bytes with
              | Some (Kv.Value v) -> Value v
              | Some Kv.Not_found -> Not_found
              | Some Kv.Written -> Written
              | Some (Kv.Wrong_shard _) ->
                  (* Static map: can only happen on a stale/buggy peer.
                     Re-enqueue on the shard the key really hashes to. *)
                  t.s_redirects <- t.s_redirects + 1;
                  let s = Shard_map.shard_of_key t.map (Kv.request_key req) in
                  let iv = Ivar.create () in
                  Channel.send t.shards.(s).queue (req, iv);
                  Ivar.read t.engine iv
              | Some (Kv.Busy _) ->
                  (* The shard is recovering; give it a moment. *)
                  backoff t 25 attempt;
                  go (attempt + 1)
              | None -> go (attempt + 1))
          | Error `No_route ->
              (* FLIP could not locate the endpoint.  A dead host looks
                 like this, but so does a congested wire eating the locate
                 probes — so step aside briefly before hammering another
                 replica. *)
              t.s_failovers <- t.s_failovers + 1;
              suspect_host ss ep.Service.ep_host;
              backoff t 5 attempt;
              go (attempt + 1)
          | Error `Timeout ->
              (* Slow or dead?  Ask the failure detector, like the group
                 kernel would.  Alive means congested — the request is
                 probably still sitting in the replica's queue, so an
                 immediate resend doubles its load exactly when it is
                 drowning.  Back off before retrying; only a dead
                 verdict fails over at once. *)
              if Failure_detector.probe t.det ep.Service.ep_probe then begin
                backoff t 25 attempt;
                go (attempt + 1)
              end
              else begin
                t.s_probes_dead <- t.s_probes_dead + 1;
                t.s_failovers <- t.s_failovers + 1;
                suspect_host ss ep.Service.ep_host;
                go (attempt + 1)
              end)
    end
  in
  go 1

(* One RPC carrying a whole batch of ops for this shard.  Definitive
   per-op replies fan back to their waiters; [Wrong_shard] ops re-hash
   and re-enqueue on the right shard; [Busy] ops and transport failures
   retry the remaining batch {e whole} — every write in it carries a
   fresh service-wide uid, so a replayed batch is a distinct stream
   body and the no-duplicates invariant is untouched. *)
let rec perform_batch t client ss items attempt =
  match items with
  | [] -> ()
  | _ when attempt > t.attempts ->
      List.iter
        (fun (_, iv) -> ignore (Ivar.try_fill iv (Failed "attempts exhausted")))
        items
  | _ ->
      if attempt > 1 then begin
        t.s_retries <- t.s_retries + 1;
        t.s_batch_retries <- t.s_batch_retries + 1
      end;
      let payload = Kv.encode_batch_request (List.map fst items) in
      match pick ss with
      | None ->
          (* Mid-recovery: no endpoints yet; see [perform]. *)
          backoff t 25 attempt;
          perform_batch t client ss items (attempt + 1)
      | Some i -> (
      (* Same snapshot rule as [perform]: [update_endpoints] may swap
         the arrays while the batch RPC is in flight. *)
      let eps = ss.eps and suspect = ss.suspect in
      let ep = eps.(i) in
      match
        Rpc.call client ~dst:ep.Service.ep_addr ~timeout:t.timeout ~retries:1
          payload
      with
      | Ok bytes -> (
          suspect.(i) <- false;
          match Kv.decode_batch_reply bytes with
          | Some replies when List.length replies = List.length items ->
              let busy = ref [] in
              List.iter2
                (fun ((req, iv) as item) rep ->
                  match rep with
                  | Kv.Value v -> ignore (Ivar.try_fill iv (Value v))
                  | Kv.Not_found -> ignore (Ivar.try_fill iv Not_found)
                  | Kv.Written -> ignore (Ivar.try_fill iv Written)
                  | Kv.Wrong_shard _ ->
                      t.s_redirects <- t.s_redirects + 1;
                      let s =
                        Shard_map.shard_of_key t.map (Kv.request_key req)
                      in
                      Channel.send t.shards.(s).queue (req, iv)
                  | Kv.Busy _ -> busy := item :: !busy)
                items replies;
              (match List.rev !busy with
              | [] -> ()
              | leftover ->
                  (* The shard is recovering; give it a moment. *)
                  backoff t 25 attempt;
                  perform_batch t client ss leftover (attempt + 1))
          | Some _ | None -> perform_batch t client ss items (attempt + 1))
      | Error `No_route ->
          t.s_failovers <- t.s_failovers + 1;
          suspect_host ss ep.Service.ep_host;
          backoff t 5 attempt;
          perform_batch t client ss items (attempt + 1)
      | Error `Timeout ->
          (* Same congestion rule as [perform]: alive-but-slow backs
             off instead of re-shipping the whole batch into the
             replica's backlog. *)
          if Failure_detector.probe t.det ep.Service.ep_probe then begin
            backoff t 25 attempt;
            perform_batch t client ss items (attempt + 1)
          end
          else begin
            t.s_probes_dead <- t.s_probes_dead + 1;
            t.s_failovers <- t.s_failovers + 1;
            suspect_host ss ep.Service.ep_host;
            perform_batch t client ss items (attempt + 1)
          end)

(* Nagle-style accumulation: having taken one op, keep the pipeline
   open until the batch fills or [batch_delay] expires — whichever
   fires first.  Returns the batch (submission order) and whether the
   flush was forced by the timer rather than by size. *)
let gather t ss first =
  let deadline = Engine.now t.engine + t.batch_delay in
  let rec go acc n =
    if n >= t.max_batch then (List.rev acc, false)
    else
      match Channel.try_recv ss.queue with
      | Some item -> go (item :: acc) (n + 1)
      | None ->
          let remaining = deadline - Engine.now t.engine in
          if remaining <= 0 then (List.rev acc, true)
          else (
            match Channel.recv_timeout t.engine ss.queue ~timeout:remaining with
            | Some item -> go (item :: acc) (n + 1)
            | None -> (List.rev acc, true))
  in
  go [ first ] 1

(* Leader/follower batching: the shard's single [turn] token is the
   right to gather the next batch, and only an {e idle} worker holds
   it.  While every worker is busy shipping, arrivals pile up on the
   queue untouched — they would only be waiting in line anyway — and
   the first worker to free up drains that whole backlog into one
   batch at once.  So batches grow exactly when the shard is saturated
   (where amortising the sequencer round matters) and the [batch_delay]
   Nagle timer only ever adds latency when there is spare capacity. *)
let worker t flip ss () =
  let client = Rpc.client flip in
  let rec loop () =
    (if t.max_batch <= 1 then begin
       (* the exact pre-batching path: no timer, no batch framing *)
       let req, iv = Channel.recv t.engine ss.queue in
       ignore (Ivar.try_fill iv (perform t client ss req))
     end
     else begin
       Channel.recv t.engine ss.turn;
       let first = Channel.recv t.engine ss.queue in
       let items, timed_out = gather t ss first in
       (* hand the gathering right to the next idle worker before the
          (long) RPC, so accumulation never stops *)
       Channel.send ss.turn ();
       if timed_out then t.s_partial_flushes <- t.s_partial_flushes + 1;
       match items with
       | [ (req, iv) ] ->
           (* a lone op keeps the single-op wire frame *)
           ignore (Ivar.try_fill iv (perform t client ss req))
       | items ->
           t.s_batches_sent <- t.s_batches_sent + 1;
           t.s_ops_batched <- t.s_ops_batched + List.length items;
           perform_batch t client ss items 1
     end);
    loop ()
  in
  loop ()

let create flip ?(pipeline = 4) ?(max_batch = 1) ?(batch_delay = Time.us 500)
    ?(timeout = Time.ms 250) ?(attempts = 12) ?(stale_reads = false) ~map
    ~endpoints () =
  let machine = Flip.machine flip in
  let engine = Machine.engine machine in
  let t =
    {
      engine;
      flip;
      map;
      shards =
        Array.mapi
          (fun shard eps ->
            let seq_host = Shard_map.sequencer_host map shard in
            {
              queue = Channel.create ();
              turn = Channel.create ();
              eps;
              suspect = Array.make (Array.length eps) false;
              reserve =
                Array.map
                  (fun ep -> ep.Service.ep_host = seq_host)
                  eps;
              rr = 0;
            })
          endpoints;
      det = Failure_detector.create flip;
      timeout;
      attempts;
      max_batch = max 1 max_batch;
      batch_delay;
      stale_reads;
      txn_client = None;
      jseed = 0x2545F491;
      s_stale_gets = 0;
      s_ops = 0;
      s_retries = 0;
      s_failovers = 0;
      s_redirects = 0;
      s_probes_dead = 0;
      s_batches_sent = 0;
      s_ops_batched = 0;
      s_partial_flushes = 0;
      s_batch_retries = 0;
      s_txns = 0;
    }
  in
  Array.iter
    (fun ss ->
      if t.max_batch > 1 then Channel.send ss.turn ();
      for _ = 1 to pipeline do
        Engine.spawn engine ~group:(Machine.group machine) (worker t flip ss)
      done)
    t.shards;
  t

let request t req =
  t.s_ops <- t.s_ops + 1;
  let s = Shard_map.shard_of_key t.map (Kv.request_key req) in
  let iv = Ivar.create () in
  Channel.send t.shards.(s).queue (req, iv);
  Ivar.read t.engine iv

let get t k =
  if t.stale_reads then begin
    t.s_stale_gets <- t.s_stale_gets + 1;
    request t (Kv.Stale_get k)
  end
  else request t (Kv.Get k)

let put t k v = request t (Kv.Put (k, v))
let del t k = request t (Kv.Del k)

(* A multi-key single-shard transaction: the whole op list ships as
   ONE batch RPC, whose writes the replica submits as ONE sequencer
   round ([Rsm.submit_batch]) — so the writes land contiguously on the
   shard's totally-ordered stream (atomic: no other client's update
   interleaves them) and the reads are answered after they applied
   (the committed post-image).  Bypasses the Nagle gatherer: a
   transaction must never be split across sequencer rounds nor merged
   with a stranger's ops.  Failure handling is the batch path's —
   whole-transaction retry with fresh-uid idempotence. *)
let txn t ops =
  match ops with
  | [] -> Error "empty transaction"
  | _ -> (
      let reqs =
        List.map
          (function
            | Get k -> Kv.Get k
            | Put (k, v) -> Kv.Put (k, v)
            | Del k -> Kv.Del k)
          ops
      in
      let shard_of r = Shard_map.shard_of_key t.map (Kv.request_key r) in
      let s0 = shard_of (List.hd reqs) in
      match List.find_opt (fun r -> shard_of r <> s0) reqs with
      | Some r ->
          Error
            (Printf.sprintf "transaction spans shards (%S on %d, %S on %d)"
               (Kv.request_key (List.hd reqs))
               s0 (Kv.request_key r) (shard_of r))
      | None ->
          t.s_ops <- t.s_ops + List.length reqs;
          t.s_txns <- t.s_txns + 1;
          let client =
            match t.txn_client with
            | Some c -> c
            | None ->
                let c = Rpc.client t.flip in
                t.txn_client <- Some c;
                c
          in
          let items = List.map (fun r -> (r, Ivar.create ())) reqs in
          perform_batch t client t.shards.(s0) items 1;
          Ok (List.map (fun (_, iv) -> Ivar.read t.engine iv) items))

(* Swap in a fresh endpoint map — the recovery or migration handoff.
   The new sequencer host's pool comes first in each shard's array
   (that is [Service.recover] / [Service.migrate_shard]'s contract),
   so the reserve set is re-derived from it rather than from the
   static shard map, whose sequencer placement the swap may have
   changed.  Health state {e carries over} for hosts present in both
   maps: a migration typically moves one shard while the others keep
   their replicas, and resetting their suspicion would send the next
   request of every pinned shard straight back into a known-dead host
   — a spurious timeout-probe-failover wave per swap.  Hosts new to a
   shard start trusted.  Requests already queued simply get performed
   against the new endpoints; in-flight attempts against dead
   addresses fail over normally. *)
let update_endpoints t endpoints =
  Array.iteri
    (fun shard eps ->
      if shard < Array.length t.shards then begin
        let ss = t.shards.(shard) in
        let bad_host h =
          Array.exists Fun.id
            (Array.mapi
               (fun j ep -> ss.suspect.(j) && ep.Service.ep_host = h)
               ss.eps)
        in
        let suspect = Array.map (fun ep -> bad_host ep.Service.ep_host) eps in
        ss.eps <- eps;
        ss.suspect <- suspect;
        ss.reserve <-
          (if Array.length eps = 0 then [||]
           else
             let seq_host = eps.(0).Service.ep_host in
             Array.map (fun ep -> ep.Service.ep_host = seq_host) eps);
        ss.rr <- 0
      end)
    endpoints

(* Test hook: the hosts shard [i]'s rotation currently suspects. *)
let suspected t shard =
  let ss = t.shards.(shard) in
  List.sort_uniq compare
    (List.concat
       (Array.to_list
          (Array.mapi
             (fun j ep -> if ss.suspect.(j) then [ ep.Service.ep_host ] else [])
             ss.eps)))

let suspect_host_for_test t shard host = suspect_host t.shards.(shard) host

let stats t =
  {
    ops = t.s_ops;
    retries = t.s_retries;
    failovers = t.s_failovers;
    redirects = t.s_redirects;
    probes_dead = t.s_probes_dead;
    batches_sent = t.s_batches_sent;
    ops_batched = t.s_ops_batched;
    partial_flushes = t.s_partial_flushes;
    batch_retries = t.s_batch_retries;
    stale_gets = t.s_stale_gets;
    txns = t.s_txns;
  }
