open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Amoeba_core
module Rpc = Amoeba_rpc.Rpc

type reply =
  | Value of string
  | Not_found
  | Written
  | Failed of string

type stats = {
  ops : int;
  retries : int;
  failovers : int;
  redirects : int;
  probes_dead : int;
}

type shard_state = {
  queue : (Kv.request * reply Ivar.t) Channel.t;
  eps : Service.endpoint array;
  suspect : bool array;
  reserve : bool array;
      (* endpoints on the shard's sequencer host: kept out of the
         rotation while any other replica answers, so the sequencer
         machine spends its cycles ordering, not serving RPCs *)
  mutable rr : int;  (* round-robin cursor over replicas *)
}

type t = {
  engine : Engine.t;
  map : Shard_map.t;
  shards : shard_state array;
  det : Failure_detector.t;
  timeout : Time.t;
  attempts : int;
  mutable s_ops : int;
  mutable s_retries : int;
  mutable s_failovers : int;
  mutable s_redirects : int;
  mutable s_probes_dead : int;
}

(* Next replica to try: round-robin over the ones not currently
   suspected dead, leaving the sequencer host's endpoints in reserve
   while any follower answers.  If every replica is suspect, forgive
   them all — the detector can be wrong, and a healed shard must
   become reachable again. *)
let pick ss =
  let n = Array.length ss.eps in
  let usable i = not ss.suspect.(i) in
  if not (Array.exists Fun.id (Array.init n usable)) then
    Array.fill ss.suspect 0 n false;
  let follower_up =
    Array.exists Fun.id
      (Array.init n (fun i -> usable i && not ss.reserve.(i)))
  in
  let want i = usable i && ((not follower_up) || not ss.reserve.(i)) in
  let rec go tries =
    let i = ss.rr mod n in
    ss.rr <- ss.rr + 1;
    if (not (want i)) && tries < 2 * n then go (tries + 1) else i
  in
  go 0

(* Endpoints on one machine share fate: a dead-host verdict for one
   condemns its whole pool, so the rotation skips them all instead of
   burning a timeout-and-probe cycle per sibling. *)
let suspect_host ss host =
  Array.iteri
    (fun j ep -> if ep.Service.ep_host = host then ss.suspect.(j) <- true)
    ss.eps

let perform t client ss req =
  let payload = Kv.encode_request req in
  let rec go attempt =
    if attempt > t.attempts then Failed "attempts exhausted"
    else begin
      if attempt > 1 then t.s_retries <- t.s_retries + 1;
      let i = pick ss in
      let ep = ss.eps.(i) in
      match Rpc.call client ~dst:ep.Service.ep_addr ~timeout:t.timeout ~retries:1 payload with
      | Ok bytes -> (
          ss.suspect.(i) <- false;
          match Kv.decode_reply bytes with
          | Some (Kv.Value v) -> Value v
          | Some Kv.Not_found -> Not_found
          | Some Kv.Written -> Written
          | Some (Kv.Wrong_shard _) ->
              (* Static map: can only happen on a stale/buggy peer.
                 Re-enqueue on the shard the key really hashes to. *)
              t.s_redirects <- t.s_redirects + 1;
              let s = Shard_map.shard_of_key t.map (Kv.request_key req) in
              let iv = Ivar.create () in
              Channel.send t.shards.(s).queue (req, iv);
              Ivar.read t.engine iv
          | Some (Kv.Busy _) ->
              (* The shard is recovering; give it a moment. *)
              Engine.sleep t.engine (Time.ms (25 * attempt));
              go (attempt + 1)
          | None -> go (attempt + 1))
      | Error `No_route ->
          (* FLIP could not locate the endpoint.  A dead host looks
             like this, but so does a congested wire eating the locate
             probes — so step aside briefly before hammering another
             replica. *)
          t.s_failovers <- t.s_failovers + 1;
          suspect_host ss ep.Service.ep_host;
          Engine.sleep t.engine (Time.ms (5 * attempt));
          go (attempt + 1)
      | Error `Timeout ->
          (* Slow or dead?  Ask the failure detector, like the group
             kernel would. *)
          if Failure_detector.probe t.det ep.Service.ep_probe then go (attempt + 1)
          else begin
            t.s_probes_dead <- t.s_probes_dead + 1;
            t.s_failovers <- t.s_failovers + 1;
            suspect_host ss ep.Service.ep_host;
            go (attempt + 1)
          end
    end
  in
  go 1

let worker t flip ss () =
  let client = Rpc.client flip in
  let rec loop () =
    let req, iv = Channel.recv t.engine ss.queue in
    ignore (Ivar.try_fill iv (perform t client ss req));
    loop ()
  in
  loop ()

let create flip ?(pipeline = 4) ?(timeout = Time.ms 250) ?(attempts = 12) ~map
    ~endpoints () =
  let machine = Flip.machine flip in
  let engine = Machine.engine machine in
  let t =
    {
      engine;
      map;
      shards =
        Array.mapi
          (fun shard eps ->
            let seq_host = Shard_map.sequencer_host map shard in
            {
              queue = Channel.create ();
              eps;
              suspect = Array.make (Array.length eps) false;
              reserve =
                Array.map
                  (fun ep -> ep.Service.ep_host = seq_host)
                  eps;
              rr = 0;
            })
          endpoints;
      det = Failure_detector.create flip;
      timeout;
      attempts;
      s_ops = 0;
      s_retries = 0;
      s_failovers = 0;
      s_redirects = 0;
      s_probes_dead = 0;
    }
  in
  Array.iter
    (fun ss ->
      for _ = 1 to pipeline do
        Engine.spawn engine ~group:(Machine.group machine) (worker t flip ss)
      done)
    t.shards;
  t

let request t req =
  t.s_ops <- t.s_ops + 1;
  let s = Shard_map.shard_of_key t.map (Kv.request_key req) in
  let iv = Ivar.create () in
  Channel.send t.shards.(s).queue (req, iv);
  Ivar.read t.engine iv

let get t k = request t (Kv.Get k)
let put t k v = request t (Kv.Put (k, v))
let del t k = request t (Kv.Del k)

let stats t =
  {
    ops = t.s_ops;
    retries = t.s_retries;
    failovers = t.s_failovers;
    redirects = t.s_redirects;
    probes_dead = t.s_probes_dead;
  }
