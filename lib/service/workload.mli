(** A deterministic workload engine for the sharded service.

    Drives one or more {!Router}s with a synthetic key/value load and
    measures what the paper measured — throughput and latency — at the
    service level: open-loop (Poisson arrivals at a fixed rate) or
    closed-loop (N clients, think time zero), uniform or Zipfian key
    popularity, a configurable read/write mix.  All randomness is
    seeded per client, so a run is exactly reproducible given the
    cluster seed and the spec. *)

open Amoeba_sim
open Amoeba_harness

type dist =
  | Uniform
  | Zipf of float  (** skew exponent; 0.99 is the YCSB default *)

type mode =
  | Closed of int  (** this many clients, each one op at a time *)
  | Open of float  (** Poisson arrivals, ops per simulated second *)

type spec = {
  keys : int;  (** key space size; keys are ["k0"].. *)
  value_bytes : int;
  read_ratio : float;  (** 0.0 = write-only, 1.0 = read-only *)
  dist : dist;
  mode : mode;
  duration : Time.t;  (** measurement window *)
  ramp : Time.t;
      (** closed-loop slow start: client [i] of [n] enters the loop at
          [i * ramp / (n-1)], so the full herd is running only after
          [ramp].  Zero (the default everywhere) keeps the historical
          all-at-once start.  Ignored in open-loop mode, whose Poisson
          arrivals have no initial stampede to soften. *)
  seed : int;  (** workload seed (independent of the cluster's) *)
}

type result = {
  attempted : int;
  completed : int;
  failed : int;  (** [Router.Failed] replies (attempts exhausted) *)
  ops_per_sec : float;  (** completed ops per simulated second *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  reads : int;
  writes : int;
  per_shard : int array;  (** completed ops by shard *)
}

val run :
  Cluster.t -> routers:Router.t list -> map:Shard_map.t -> spec -> result
(** Blocking — call from a cluster process.  Clients round-robin over
    [routers].  Returns once the window has elapsed and in-flight
    operations have drained (a short grace period). *)

val pp_result : Format.formatter -> result -> unit
