(** A deterministic workload engine for the sharded service.

    Drives one or more {!Router}s with a synthetic key/value load and
    measures what the paper measured — throughput and latency — at the
    service level: open-loop (Poisson arrivals at a fixed rate) or
    closed-loop (N clients, think time zero), uniform or Zipfian key
    popularity, a configurable read/write mix.  All randomness is
    seeded per client, so a run is exactly reproducible given the
    cluster seed and the spec. *)

open Amoeba_sim
open Amoeba_harness

type dist = Keygen.dist =
  | Uniform
  | Zipf of float  (** skew exponent; 0.99 is the YCSB default *)
  | Latest of float
      (** recency skew: a Zipf-distributed offset back from the newest
          key (YCSB-D's read-latest popularity); with the fixed key
          space here the newest key is [keys - 1] *)

type mode =
  | Closed of int  (** this many clients, each one op at a time *)
  | Open of float  (** Poisson arrivals, ops per simulated second *)

type spec = {
  keys : int;  (** key space size; keys are ["k0"].. *)
  value_bytes : int;
  read_ratio : float;  (** 0.0 = write-only, 1.0 = read-only *)
  dist : dist;
  mode : mode;
  duration : Time.t;  (** measurement window *)
  ramp : Time.t;
      (** warmup window: ops issued in the first [ramp] of the run
          carry real load but are excluded from every reported figure
          — text and JSON paths share the one accumulator, so the two
          can never disagree.  In closed-loop mode the ramp also
          slow-starts the herd: client [i] of [n] enters the loop at
          [i * ramp / (n-1)], so the full complement is running only
          after [ramp].  In open-loop mode Poisson arrivals have no
          stampede to soften, but the warmup exclusion still applies.
          Zero (the default everywhere) measures from t=0. *)
  seed : int;  (** workload seed (independent of the cluster's) *)
}

type result = {
  attempted : int;
  completed : int;
  failed : int;  (** [Router.Failed] replies (attempts exhausted) *)
  ops_per_sec : float;  (** completed ops per simulated second *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  reads : int;
  writes : int;
  per_shard : int array;  (** completed ops by shard *)
}

val run :
  Cluster.t -> routers:Router.t list -> map:Shard_map.t -> spec -> result
(** Blocking — call from a cluster process.  Clients round-robin over
    [routers].  Returns once the window has elapsed and in-flight
    operations have drained (a short grace period). *)

val pp_result : Format.formatter -> result -> unit
