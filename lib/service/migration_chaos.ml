open Amoeba_sim
open Amoeba_harness
module Medium = Amoeba_net.Medium
module Machine = Amoeba_net.Machine
module Cost_model = Amoeba_net.Cost_model
module Rsm = Amoeba_grouplib.Rsm
module Stable_store = Amoeba_grouplib.Stable_store

(* The scenario: a 2-shard durable service on 7 hosts, a Zipf workload
   running throughout, and a live migration of shard 0 from its
   deployed replicas to two fresh hosts a third of the way in — while
   the fault plan crashes the source sequencer, crashes the
   destination head, and/or power-cycles the whole cluster a few
   hundred ms into the transfer.  Deterministic in the seed, like the
   other chaos runners, so any failing case replays from its printed
   CLI line. *)

type spec = {
  mc_seed : int;
  mc_fabric : Medium.spec;
  mc_hostile : bool;  (* persistently adversarial link conditions *)
  mc_crash_source : bool;  (* crash the source sequencer mid-migration *)
  mc_crash_dest : bool;  (* crash the destination head mid-migration *)
  mc_power_cycle : bool;  (* power-cycle every server host mid-migration *)
  mc_workers : int;
  mc_duration_ms : int;
}

let default ~seed =
  {
    mc_seed = seed;
    mc_fabric = Medium.Shared;
    mc_hostile = false;
    mc_crash_source = false;
    mc_crash_dest = false;
    mc_power_cycle = false;
    mc_workers = 8;
    mc_duration_ms = 1200;
  }

type outcome = {
  o_spec : spec;
  o_migration : (unit, string) result option;
  o_completed : int;
  o_failed : int;
  o_crashed : int list;
  o_recovered : bool;
  o_sentinels_acked : int;
  o_sentinels_lost : int;
  o_verdicts : (string * Checker.verdict) list;
  o_ok : bool;
}

let ok o = o.o_ok

let hosts = 7
let shards = 2
let routers_n = 2
let target = [ 4; 5 ]  (* fresh hosts: neither shard places replicas there *)

(* Same moderately-hostile profile as the chaos swarms: bursty
   Gilbert–Elliott loss, duplication, reordering jitter, corruption. *)
let adversarial_net =
  {
    Medium.gilbert =
      Some { Medium.p_gb = 0.01; p_bg = 0.3; loss_good = 0.002; loss_bad = 0.4 };
    dup_prob = 0.05;
    jitter_ns = Time.ms 2;
    corrupt_prob = 0.01;
  }

let fabric_to_string = function
  | Medium.Shared -> "ether"
  | Medium.Switched p -> Amoeba_net.Switch.profile_to_string p

let replay_line spec =
  Printf.sprintf "amoeba migration-chaos --seed %d --net %s+%s%s%s%s"
    spec.mc_seed
    (fabric_to_string spec.mc_fabric)
    (if spec.mc_hostile then "adversarial" else "clean")
    (if spec.mc_crash_source then " --crash-source" else "")
    (if spec.mc_crash_dest then " --crash-dest" else "")
    (if spec.mc_power_cycle then " --power-cycle" else "")

let run spec =
  let seed = spec.mc_seed in
  let duration = Time.ms spec.mc_duration_ms in
  let host_list = List.init hosts Fun.id in
  let map = Shard_map.create ~shards ~replication:2 ~hosts:host_list () in
  let cost =
    let base = Cost_model.(with_mbps 100 default) in
    { base with Cost_model.disk = Cost_model.ssd }
  in
  let cl =
    Cluster.create ~cost ~seed ~fabric:spec.mc_fabric ~n:(hosts + routers_n) ()
  in
  let eng = cl.Cluster.engine in
  (* Fault offsets past migration start, drawn up front so a spec's
     timing is identical whichever flags are set. *)
  let rng = Random.State.make [| seed; 0x715A |] in
  let off () = Time.ms (10 + Random.State.int rng 140) in
  let d_src = off () in
  let d_dst = off () in
  let d_pc = off () in
  let t_m = duration / 3 in
  let dc =
    {
      Service.d_store = Stable_store.create ();
      d_sync =
        (if spec.mc_power_cycle then Rsm.Every_commit else Rsm.Group_fsync 8);
      d_checkpoint_every = 32;
    }
  in
  let mig_result = ref None in
  let crashed = ref [] in
  let recovered = ref None in
  let sent_acked = ref [] in
  let sent_lost = ref [] in
  let completed = ref 0 in
  let failed = ref 0 in
  let verdicts = ref [] in
  let all_ok = ref true in
  Cluster.spawn cl (fun () ->
      if spec.mc_hostile then
        Medium.set_conditions cl.Cluster.net adversarial_net;
      let svc =
        Service.deploy cl ~map ~resilience:1 ~record:true ~durable:dc ()
      in
      let rs =
        List.init routers_n (fun i ->
            Router.create
              (Cluster.flip cl (hosts + i))
              ~map
              ~endpoints:(Service.endpoints svc) ())
      in
      (* Both the migration and the recovery fibers repoint the
         routers; whichever runs later must win, so both aim at the
         newest service. *)
      let repoint () =
        let s = match !recovered with Some s -> s | None -> svc in
        List.iter (fun r -> Router.update_endpoints r (Service.endpoints s)) rs
      in
      (if spec.mc_power_cycle then
         (* sentinel writes before the migration: the acked ones are
            obligations the mid-migration power loss must not revoke *)
         Cluster.spawn cl (fun () ->
             Engine.sleep eng (duration / 4);
             let r0 = List.hd rs in
             for i = 0 to 5 do
               let k = Printf.sprintf "sentinel-%d" i in
               match Router.put r0 k (Printf.sprintf "s%d" i) with
               | Router.Written -> sent_acked := k :: !sent_acked
               | _ -> ()
             done));
      Cluster.spawn cl (fun () ->
          Engine.sleep eng t_m;
          let res =
            Service.migrate_shard svc ~shard:0 ~timeout:(Time.ms 600)
              ~hosts:target ()
          in
          mig_result := Some res;
          repoint ());
      let crash_at d h =
        Cluster.spawn cl (fun () ->
            Engine.sleep eng (t_m + d);
            if Machine.is_alive (Cluster.machine cl h) then begin
              Machine.crash (Cluster.machine cl h);
              crashed := h :: !crashed
            end)
      in
      if spec.mc_crash_source then
        crash_at d_src (Shard_map.sequencer_host map 0);
      if spec.mc_crash_dest then crash_at d_dst (List.hd target);
      (if spec.mc_power_cycle then
         Cluster.spawn cl (fun () ->
             Engine.sleep eng (t_m + d_pc);
             List.iter
               (fun h ->
                 let m = Cluster.machine cl h in
                 if Machine.is_alive m then Machine.crash m)
               host_list;
             Engine.sleep eng (Time.ms 275);
             List.iter (fun h -> Cluster.restart cl h) host_list;
             (* mid-migration recovery: the shard's durable state may
                sit on the old replicas, the new ones, or both — read
                the union and let the longest-log election decide *)
             let union_hosts shard =
               let base = Shard_map.replica_hosts map shard in
               if shard = 0 then
                 base @ List.filter (fun h -> not (List.mem h base)) target
               else base
             in
             let svc' =
               Service.recover cl ~map ~durable:dc ~resilience:1 ~record:true
                 ~hosts_for:union_hosts ()
             in
             recovered := Some svc';
             repoint ();
             let r0 = List.hd rs in
             List.iter
               (fun k ->
                 match Router.get r0 k with
                 | Router.Value _ -> ()
                 | _ -> sent_lost := k :: !sent_lost)
               (List.rev !sent_acked)));
      let wspec =
        {
          Workload.keys = 200;
          value_bytes = 16;
          read_ratio = 0.25;
          dist = Workload.Zipf 0.99;
          mode = Workload.Closed spec.mc_workers;
          duration;
          ramp = Time.ms 50;
          seed;
        }
      in
      let res = Workload.run cl ~routers:rs ~map wspec in
      completed := res.Workload.completed;
      failed := res.Workload.failed;
      (* quiesce: let nack repair and slow-member catch-up drain the
         last acked writes into every stream before judging them *)
      Engine.sleep eng (Time.sec 5);
      let add label v =
        verdicts := (label, v) :: !verdicts;
        if not v.Checker.ok then all_ok := false
      in
      (match !recovered with
      | None ->
          List.iter
            (fun (shard, vs) ->
              List.iter (fun v -> add (Printf.sprintf "shard %d" shard) v) vs)
            (Service.check svc ~crashed:!crashed)
      | Some svc' ->
          (* The power loss killed every pre-cut replica, so ownership
             belongs to the recovered service; the pre-cut streams
             still owe the base invariants, including total order
             across the cutover. *)
          for shard = 0 to shards - 1 do
            List.iter
              (fun v -> add (Printf.sprintf "shard %d" shard) v)
              (Checker.run ~durability_applies:false
                 ~streams:
                   (Service.checker_streams svc ~shard ~crashed:(fun _ -> true))
                 ~completed:(Service.completed svc ~shard)
                 ())
          done;
          List.iter
            (fun (shard, vs) ->
              List.iter (fun v -> add (Printf.sprintf "shard %d'" shard) v) vs)
            (Service.check svc' ~crashed:[]);
          for shard = 0 to shards - 1 do
            add
              (Printf.sprintf "shard %d'" shard)
              (Service.check_migration svc' ~shard ~crashed:[])
          done;
          if !sent_lost <> [] then
            (* Every_commit: every acked sentinel must survive *)
            all_ok := false));
  Cluster.run ~until:(duration + Time.sec 60) cl;
  {
    o_spec = spec;
    o_migration = !mig_result;
    o_completed = !completed;
    o_failed = !failed;
    o_crashed = List.rev !crashed;
    o_recovered = !recovered <> None;
    o_sentinels_acked = List.length !sent_acked;
    o_sentinels_lost = List.length !sent_lost;
    o_verdicts = List.rev !verdicts;
    o_ok = !all_ok;
  }

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>%s@," (replay_line o.o_spec);
  Fmt.pf ppf "migration: %s@,"
    (match o.o_migration with
    | None -> "never returned"
    | Some (Ok ()) -> "completed"
    | Some (Error e) -> "rolled back (" ^ e ^ ")");
  Fmt.pf ppf "workload:  %d completed, %d failed@," o.o_completed o.o_failed;
  if o.o_crashed <> [] then
    Fmt.pf ppf "crashed:   %a@,"
      Fmt.(list ~sep:(any ", ") (fmt "m%d"))
      o.o_crashed;
  if o.o_recovered then
    Fmt.pf ppf "power:     recovered; sentinels %d acked, %d lost@,"
      o.o_sentinels_acked o.o_sentinels_lost;
  List.iter
    (fun (label, v) ->
      Fmt.pf ppf "%s: %a@," label Checker.pp_verdict v)
    o.o_verdicts;
  Fmt.pf ppf "verdict:   %s@]" (if o.o_ok then "PASS" else "FAIL")
