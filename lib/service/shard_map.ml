(* Consistent hashing of keys onto shards, and deterministic placement
   of each shard's replicas (sequencer host first) over the machine
   pool. *)

type t = {
  shards : int;
  replication : int;
  hosts : int array;
  ring : (int * int) array;  (* (point, shard), sorted by point *)
  assign : int list array;  (* per-shard replica hosts, sequencer first *)
}

(* 64-bit FNV-1a with a splitmix64 finaliser (plain FNV has weak
   high-bit avalanche on short similar strings, which skews the ring
   badly), folded into OCaml's 63-bit native int.  Deterministic
   across runs — unlike [Hashtbl.hash] no seeding is involved — so
   every router and replica agrees on the ring forever. *)
let fnv1a s =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := mul (logxor !h (of_int (Char.code c))) 0x100000001b3L)
    s;
  let z = !h in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  let z = logxor z (shift_right_logical z 31) in
  to_int z land Stdlib.max_int

(* The sequencer's CPU is each shard's scarce resource (the paper's
   central measurement), so followers keep off the sequencer machines
   entirely whenever the pool is big enough: they are drawn
   round-robin from the hosts that sequence no shard, which both keeps
   a shard's members pairwise distinct and spreads follower load
   evenly.  When every host sequences some shard (shards >= hosts)
   there is nowhere to hide, and followers fall back to striding
   across the whole pool. *)
let default_assign ~shards ~replication hosts i =
  let h = Array.length hosts in
  let seq = hosts.(i mod h) in
  let followers = replication - 1 in
  let free = if shards >= h then [||] else Array.sub hosts shards (h - shards) in
  if Array.length free >= followers then
    seq
    :: List.init followers (fun j ->
           free.(((i * followers) + j) mod Array.length free))
  else
    let step = max 1 (h / replication) in
    List.init replication (fun j -> hosts.((i + (j * step)) mod h))

let create ?(virtual_nodes = 64) ?(replication = 3) ~shards ~hosts () =
  if shards < 1 then invalid_arg "Shard_map.create: shards < 1";
  if replication < 1 then invalid_arg "Shard_map.create: replication < 1";
  if hosts = [] then invalid_arg "Shard_map.create: no hosts";
  if virtual_nodes < 1 then invalid_arg "Shard_map.create: virtual_nodes < 1";
  let hosts = Array.of_list hosts in
  let replication = min replication (Array.length hosts) in
  let ring =
    Array.init (shards * virtual_nodes) (fun i ->
        let shard = i / virtual_nodes and vnode = i mod virtual_nodes in
        (fnv1a (Printf.sprintf "shard-%d#%d" shard vnode), shard))
  in
  Array.sort compare ring;
  let assign = Array.init shards (default_assign ~shards ~replication hosts) in
  { shards; replication; hosts; ring; assign }

let shards t = t.shards
let replication t = t.replication
let hosts t = Array.to_list t.hosts

(* First ring point clockwise from the key's hash (wrapping). *)
let shard_of_key t key =
  let h = fnv1a key in
  let n = Array.length t.ring in
  (* Binary search for the first point >= h. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  snd t.ring.(if !lo = n then 0 else !lo)

let sequencer_host t i =
  if i < 0 || i >= t.shards then invalid_arg "Shard_map.sequencer_host";
  List.hd t.assign.(i)

let replica_hosts t i =
  if i < 0 || i >= t.shards then invalid_arg "Shard_map.replica_hosts";
  t.assign.(i)

(* Shards-to-hosts is the only part of the map a migration moves: the
   key ring never changes, so every router keeps hashing keys to the
   same shard indices and the reassignment disturbs exactly one
   shard's placement. *)
let reassign t ~shard ~hosts =
  if shard < 0 || shard >= t.shards then invalid_arg "Shard_map.reassign";
  if hosts = [] then invalid_arg "Shard_map.reassign: no hosts";
  if List.length (List.sort_uniq compare hosts) <> List.length hosts then
    invalid_arg "Shard_map.reassign: duplicate hosts";
  List.iter
    (fun h ->
      if not (Array.exists (fun x -> x = h) t.hosts) then
        invalid_arg "Shard_map.reassign: host outside the pool")
    hosts;
  let assign = Array.copy t.assign in
  assign.(shard) <- hosts;
  { t with assign }

let pp ppf t =
  Fmt.pf ppf "@[<v>%d shard(s), replication %d, hosts %a@," t.shards
    t.replication
    Fmt.(brackets (list ~sep:(any ", ") int))
    (Array.to_list t.hosts);
  for i = 0 to t.shards - 1 do
    Fmt.pf ppf "shard %d: sequencer m%d, replicas %a@," i (sequencer_host t i)
      Fmt.(list ~sep:(any ", ") (fmt "m%d"))
      (replica_hosts t i)
  done;
  Fmt.pf ppf "@]"
