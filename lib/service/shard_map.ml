(* Consistent hashing of keys onto shards, and deterministic placement
   of each shard's replicas (sequencer host first) over the machine
   pool. *)

type t = {
  shards : int;
  replication : int;
  hosts : int array;
  ring : (int * int) array;  (* (point, shard), sorted by point *)
}

(* 64-bit FNV-1a with a splitmix64 finaliser (plain FNV has weak
   high-bit avalanche on short similar strings, which skews the ring
   badly), folded into OCaml's 63-bit native int.  Deterministic
   across runs — unlike [Hashtbl.hash] no seeding is involved — so
   every router and replica agrees on the ring forever. *)
let fnv1a s =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := mul (logxor !h (of_int (Char.code c))) 0x100000001b3L)
    s;
  let z = !h in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  let z = logxor z (shift_right_logical z 31) in
  to_int z land Stdlib.max_int

let create ?(virtual_nodes = 64) ?(replication = 3) ~shards ~hosts () =
  if shards < 1 then invalid_arg "Shard_map.create: shards < 1";
  if replication < 1 then invalid_arg "Shard_map.create: replication < 1";
  if hosts = [] then invalid_arg "Shard_map.create: no hosts";
  if virtual_nodes < 1 then invalid_arg "Shard_map.create: virtual_nodes < 1";
  let hosts = Array.of_list hosts in
  let replication = min replication (Array.length hosts) in
  let ring =
    Array.init (shards * virtual_nodes) (fun i ->
        let shard = i / virtual_nodes and vnode = i mod virtual_nodes in
        (fnv1a (Printf.sprintf "shard-%d#%d" shard vnode), shard))
  in
  Array.sort compare ring;
  { shards; replication; hosts; ring }

let shards t = t.shards
let replication t = t.replication
let hosts t = Array.to_list t.hosts

(* First ring point clockwise from the key's hash (wrapping). *)
let shard_of_key t key =
  let h = fnv1a key in
  let n = Array.length t.ring in
  (* Binary search for the first point >= h. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  snd t.ring.(if !lo = n then 0 else !lo)

let sequencer_host t i =
  if i < 0 || i >= t.shards then invalid_arg "Shard_map.sequencer_host";
  t.hosts.(i mod Array.length t.hosts)

(* The sequencer's CPU is each shard's scarce resource (the paper's
   central measurement), so followers keep off the sequencer machines
   entirely whenever the pool is big enough: they are drawn
   round-robin from the hosts that sequence no shard, which both keeps
   a shard's members pairwise distinct and spreads follower load
   evenly.  When every host sequences some shard (shards >= hosts)
   there is nowhere to hide, and followers fall back to striding
   across the whole pool. *)
let replica_hosts t i =
  if i < 0 || i >= t.shards then invalid_arg "Shard_map.replica_hosts";
  let h = Array.length t.hosts in
  let seq = t.hosts.(i mod h) in
  let followers = t.replication - 1 in
  let free =
    if t.shards >= h then [||]
    else Array.sub t.hosts t.shards (h - t.shards)
  in
  if Array.length free >= followers then
    seq
    :: List.init followers (fun j ->
           free.(((i * followers) + j) mod Array.length free))
  else
    let step = max 1 (h / t.replication) in
    List.init t.replication (fun j -> t.hosts.((i + (j * step)) mod h))

let pp ppf t =
  Fmt.pf ppf "@[<v>%d shard(s), replication %d, hosts %a@," t.shards
    t.replication
    Fmt.(brackets (list ~sep:(any ", ") int))
    (Array.to_list t.hosts);
  for i = 0 to t.shards - 1 do
    Fmt.pf ppf "shard %d: sequencer m%d, replicas %a@," i (sequencer_host t i)
      Fmt.(list ~sep:(any ", ") (fmt "m%d"))
      (replica_hosts t i)
  done;
  Fmt.pf ppf "@]"
