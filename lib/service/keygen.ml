type dist = Uniform | Zipf of float | Latest of float

(* Zipf by inverse-CDF lookup over precomputed cumulative weights
   (exact, no rejection loop).  The table is built once per generator;
   each draw costs one float draw plus a binary search. *)
type zipf_table = { cum : float array; total : float }

type shape =
  | S_uniform
  | S_zipf of zipf_table
  | S_latest of zipf_table  (* offset back from the frontier *)

type t = { keys : int; shape : shape; mutable frontier : int }

let zipf_table ~keys alpha =
  let cum = Array.make keys 0.0 in
  let total = ref 0.0 in
  for i = 0 to keys - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** alpha));
    cum.(i) <- !total
  done;
  { cum; total = !total }

let create ~keys dist =
  if keys <= 0 then invalid_arg "Keygen.create: keys <= 0";
  let shape =
    match dist with
    | Uniform -> S_uniform
    | Zipf alpha -> S_zipf (zipf_table ~keys alpha)
    | Latest alpha -> S_latest (zipf_table ~keys alpha)
  in
  { keys; shape; frontier = keys }

let draw_zipf zt rng =
  let u = Random.State.float rng zt.total in
  let lo = ref 0 and hi = ref (Array.length zt.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if zt.cum.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let sample t rng =
  match t.shape with
  | S_uniform -> Random.State.int rng t.keys
  | S_zipf zt -> draw_zipf zt rng
  | S_latest zt ->
      (* Rank 0 is the newest key.  The table spans the initial key
         space; a frontier grown past it just shifts which keys the
         ranks land on, keeping recency-skew without rebuilding. *)
      let off = draw_zipf zt rng mod t.frontier in
      t.frontier - 1 - off

let insert t =
  let k = t.frontier in
  t.frontier <- t.frontier + 1;
  k

let frontier t = t.frontier
let key i = "k" ^ string_of_int i
