(** Replicated state machines over totally-ordered broadcast, with the
    two pieces of library support the paper's section 5 found missing:

    - {b atomic state transfer} for joiners (as Isis provided): a new
      replica obtains a snapshot positioned exactly in the message
      stream, so it observes the same state sequence as everyone else;
    - {b consistent checkpointing} (reference [15]): because updates
      are totally ordered, a snapshot taken every k-th update is a
      consistent cut; written to stable storage it survives even a
      whole-group failure.

    This is the state-machine approach the paper cites (Schneider
    [28]): keep replicas identical by feeding every replica the same
    totally-ordered update stream. *)

open Amoeba_flip
open Amoeba_core

(** The application plugged into the state machine. *)
module type APP = sig
  type state

  type update

  val initial : state

  val apply : state -> update -> state
  (** Must be deterministic: replicas apply the same stream. *)

  val encode_update : update -> bytes

  val decode_update : bytes -> update option

  val encode_state : state -> bytes

  val decode_state : bytes -> state option
end

module Make (App : APP) : sig
  type t

  val create :
    Flip.t ->
    ?resilience:int ->
    ?send_method:Types.send_method ->
    ?auto_heal:bool ->
    ?pipeline:int ->
    ?checkpoint:Stable_store.t * int ->
    ?seed:App.state * int ->
    ?tap:(Types.event -> unit) ->
    unit ->
    t
  (** Creates the group with this machine as first replica.
      [?checkpoint:(store, k)] writes a consistent snapshot to stable
      storage every [k] applied updates.  [?seed] starts from a
      recovered checkpoint (state and its update count) instead of
      [App.initial].  [?auto_heal] turns on in-kernel failure
      detection, so a replicated service recovers from a crashed
      sequencer without application involvement.  [?tap] observes
      every raw delivery-stream event before it is applied — the hook
      the chaos checker uses to collect per-replica streams.
      [?pipeline] is the kernel's in-flight round depth
      ({!Amoeba_core.Api.create_group}); 1 is lock-step. *)

  val join :
    Flip.t ->
    ?resilience:int ->
    ?send_method:Types.send_method ->
    ?auto_heal:bool ->
    ?pipeline:int ->
    ?checkpoint:Stable_store.t * int ->
    ?tap:(Types.event -> unit) ->
    Addr.t ->
    (t, Types.error) result
  (** Joins and performs atomic state transfer: blocks until this
      replica holds a snapshot consistent with its position in the
      stream.  The transferred state reflects every update sequenced
      before the transfer point; updates after it are applied
      normally. *)

  val address : t -> Addr.t

  val group : t -> Api.group

  val submit : t -> App.update -> (Types.seqno, Types.error) result
  (** Blocking totally-ordered update. *)

  val submit_batch : t -> App.update list -> (Types.seqno, Types.error) result
  (** Blocking totally-ordered batch: one sequencer round carries the
      whole vector of updates, which every replica applies atomically
      in list order.  A single-element list takes the plain {!submit}
      path (identical bytes on the stream); the empty list is a
      programming error.  Batching amortises the sequencer's
      per-message CPU cost across the ops, the point of the exercise —
      Ring-Paxos-style batching on the paper's protocol. *)

  val wire_of_update : App.update -> bytes
  (** The exact on-stream bytes {!submit} broadcasts for an update —
      what a delivery-stream tap will observe as the message body
      (used by checkers to match completed submits against delivered
      events). *)

  val wire_of_batch : App.update list -> bytes
  (** The exact on-stream bytes {!submit_batch} broadcasts for a batch
      of two or more updates (the checker-matching counterpart of
      {!wire_of_update}). *)

  val state : t -> App.state
  (** This replica's current state (reads are local, as in the
      paper's replicated servers). *)

  val applied : t -> int
  (** Number of updates applied so far (identical at any two replicas
      whenever they have delivered the same prefix). *)

  val leave : t -> (unit, Types.error) result

  val reset : t -> min_members:int -> (int, Types.error) result

  val checkpointed : Stable_store.t -> machine_name:string ->
    (App.state * int) option
  (** Reads this machine's last consistent checkpoint back from
      stable storage (usable after a crash, or even after the whole
      group failed — pass it to [create ~seed]). *)
end
