(** Replicated state machines over totally-ordered broadcast, with the
    two pieces of library support the paper's section 5 found missing:

    - {b atomic state transfer} for joiners (as Isis provided): a new
      replica obtains a snapshot positioned exactly in the message
      stream, so it observes the same state sequence as everyone else;
    - {b consistent checkpointing} (reference [15]): because updates
      are totally ordered, a snapshot taken every k-th update is a
      consistent cut; written to stable storage it survives even a
      whole-group failure.

    This is the state-machine approach the paper cites (Schneider
    [28]): keep replicas identical by feeding every replica the same
    totally-ordered update stream. *)

open Amoeba_flip
open Amoeba_core

type sync_policy =
  | Every_commit  (** fsync the WAL after every applied update *)
  | Group_fsync of int  (** fsync every k-th applied update *)
  | Checkpoint_only
      (** never fsync the WAL; only checkpoints (and the trims they
          trigger, which sync) advance the durable frontier *)

type durability = {
  store : Stable_store.t;
  log : string;
      (** this replica's stable identity on its own disk (e.g.
          ["shard0"]) — group addresses change across re-creation, so
          they cannot name durable state that must be found again
          after a whole-cluster restart *)
  sync : sync_policy;
  checkpoint_every : int;
      (** checkpoint (and trim the WAL) every k applied updates; 0
          disables checkpointing — pure WAL *)
}
(** Durable-replica configuration: every applied update is logged to a
    per-record-checksummed WAL, state is checkpointed on the given
    policy, and {!Make.recover} rebuilds the replica from
    checkpoint + WAL replay after a crash — including a whole-cluster
    power loss.  What survives is bounded by the {e durable frontier}:
    the fsync policy decides how many acknowledged-but-unsynced
    updates a power failure may eat. *)

val wal_name : durability -> string
(** The {!Stable_store} log id a durable replica journals to
    (["wal:<log>"]) — exposed for tests and disk-inspection tools. *)

val ckpt_name : durability -> string
(** The {!Stable_store} key its checkpoints live under
    (["ckpt:<log>"]). *)

type recovery_stats = {
  ckpt_count : int;  (** applied count restored from the checkpoint *)
  checkpoint_damaged : bool;
      (** the checkpoint existed but failed its checksum or decode;
          recovery fell back to replaying from the start of the WAL *)
  records_replayed : int;  (** WAL records applied on top *)
  torn_tails : int;  (** incomplete tail records truncated *)
  checksum_rejects : int;  (** damaged records (suffix refused) *)
}

(** The application plugged into the state machine. *)
module type APP = sig
  type state

  type update

  val initial : state

  val apply : state -> update -> state
  (** Must be deterministic: replicas apply the same stream. *)

  val encode_update : update -> bytes

  val decode_update : bytes -> update option

  val encode_state : state -> bytes

  val decode_state : bytes -> state option
end

module Make (App : APP) : sig
  type t

  val create :
    Flip.t ->
    ?resilience:int ->
    ?send_method:Types.send_method ->
    ?auto_heal:bool ->
    ?pipeline:int ->
    ?checkpoint:Stable_store.t * int ->
    ?durable:durability ->
    ?seed:App.state * int ->
    ?tap:(Types.event -> unit) ->
    unit ->
    t
  (** Creates the group with this machine as first replica.
      [?checkpoint:(store, k)] writes a consistent snapshot to stable
      storage every [k] applied updates (the legacy, non-WAL scheme).
      [?durable] makes the replica fully durable: committed updates
      are WAL-logged per the fsync policy, checkpoints trim the log,
      and {!recover} can rebuild the replica after any crash.  Without
      [?seed], the durable log is re-initialised — a fresh group is a
      fresh history; with [?seed] (typically from {!recover}) the WAL
      continues from the seed's update count.  [?auto_heal] turns on
      in-kernel failure detection, so a replicated service recovers
      from a crashed sequencer without application involvement.
      [?tap] observes every raw delivery-stream event before it is
      applied — the hook the chaos checker uses to collect per-replica
      streams.  [?pipeline] is the kernel's in-flight round depth
      ({!Amoeba_core.Api.create_group}); 1 is lock-step. *)

  val join :
    Flip.t ->
    ?resilience:int ->
    ?send_method:Types.send_method ->
    ?auto_heal:bool ->
    ?pipeline:int ->
    ?checkpoint:Stable_store.t * int ->
    ?durable:durability ->
    ?tap:(Types.event -> unit) ->
    Addr.t ->
    (t, Types.error) result
  (** Joins and performs atomic state transfer: blocks until this
      replica holds a snapshot consistent with its position in the
      stream.  The transferred state reflects every update sequenced
      before the transfer point; updates after it are applied
      normally.  With [?durable], the joiner's disk is reconciled
      after the transfer: any previous life of the log is wiped and a
      fresh checkpoint of the transferred state written, so a later
      {!recover} never replays records from a different history (a
      crash mid-reconcile leaves an empty log — the replica recovers
      as applied-0 and re-syncs by state transfer). *)

  val address : t -> Addr.t

  val group : t -> Api.group

  val submit : t -> App.update -> (Types.seqno, Types.error) result
  (** Blocking totally-ordered update. *)

  val submit_batch : t -> App.update list -> (Types.seqno, Types.error) result
  (** Blocking totally-ordered batch: one sequencer round carries the
      whole vector of updates, which every replica applies atomically
      in list order.  A single-element list takes the plain {!submit}
      path (identical bytes on the stream); the empty list is a
      programming error.  Batching amortises the sequencer's
      per-message CPU cost across the ops, the point of the exercise —
      Ring-Paxos-style batching on the paper's protocol. *)

  val wire_of_update : App.update -> bytes
  (** The exact on-stream bytes {!submit} broadcasts for an update —
      what a delivery-stream tap will observe as the message body
      (used by checkers to match completed submits against delivered
      events). *)

  val wire_of_batch : App.update list -> bytes
  (** The exact on-stream bytes {!submit_batch} broadcasts for a batch
      of two or more updates (the checker-matching counterpart of
      {!wire_of_update}). *)

  val state : t -> App.state
  (** This replica's current state (reads are local, as in the
      paper's replicated servers). *)

  val applied : t -> int
  (** Number of updates applied so far (identical at any two replicas
      whenever they have delivered the same prefix). *)

  val leave : t -> (unit, Types.error) result

  val reset : t -> min_members:int -> (int, Types.error) result

  val checkpointed : Stable_store.t -> machine_name:string ->
    (App.state * int) option
  (** Reads this machine's last consistent checkpoint back from
      stable storage (usable after a crash, or even after the whole
      group failed — pass it to [create ~seed]).  The legacy scheme;
      durable replicas use {!recover}. *)

  val durable_snapshot : t -> (App.state * int) option
  (** The last durably checkpointed (state, applied count) of this
      replica — the durable frontier a bounded-staleness read may be
      served from without touching the ordered stream.  [None] when
      the replica is not durable or has not checkpointed yet. *)

  type recovered = {
    r_state : App.state;
    r_applied : int;
    r_stats : recovery_stats;
  }

  val recover :
    durability -> Amoeba_net.Machine.t -> (recovered, string) result
  (** Crash-restart recovery from this machine's own disk: load the
      checkpoint (checksum-verified; a damaged one is skipped and
      counted), then replay the WAL from the checkpoint's update
      count, skipping already-covered indices (the
      crash-between-checkpoint-and-trim window) and stopping at a torn
      tail or damaged record.  Blocking and costed — call it from a
      process on the recovering machine, then pass [r_state,
      r_applied] to [create ~seed] (or discard it and re-join by state
      transfer).  [Error] is a loud refusal: the surviving records
      cannot reconstruct any consistent prefix (an index gap, or a
      CRC-valid record that fails to decode); never applies a damaged
      suffix. *)
end
