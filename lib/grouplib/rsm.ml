open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Amoeba_core
module T = Types

module type APP = sig
  type state
  type update

  val initial : state
  val apply : state -> update -> state
  val encode_update : update -> bytes
  val decode_update : bytes -> update option
  val encode_state : state -> bytes
  val decode_state : bytes -> state option
end

(* On-stream message format: one tag byte, then the payload.
   'U' <update>                       ordinary update
   'B' <n> ' ' (<len> ' ' <update>)*  batch of n updates, applied in order
   'Q' <reply-addr> ' ' <nonce>       a joiner requests state transfer *)
let tag_update = 'U'
let tag_batch = 'B'
let tag_query = 'Q'

type sync_policy = Every_commit | Group_fsync of int | Checkpoint_only

type durability = {
  store : Stable_store.t;
  log : string;
  sync : sync_policy;
  checkpoint_every : int;
}

type recovery_stats = {
  ckpt_count : int;
  checkpoint_damaged : bool;
  records_replayed : int;
  torn_tails : int;
  checksum_rejects : int;
}

(* The caller-supplied [log] is the replica's stable identity ("the
   file name"): group addresses change every time a group is
   re-created, so they cannot key durable state that must be found
   again after a whole-cluster restart. *)
let wal_name d = "wal:" ^ d.log
let ckpt_name d = "ckpt:" ^ d.log

module Make (App : APP) = struct
  type mode =
    | Normal
    | Syncing of {
        nonce : int;
        mutable buffer : (T.seqno * App.update) list;  (** newest first *)
        mutable query_seq : T.seqno option;
      }

  type t = {
    flip : Flip.t;
    g : Api.group;
    machine : Machine.t;
    engine : Engine.t;
    mutable st : App.state;
    mutable n_applied : int;
    mutable mode : mode;
    checkpoint : (Stable_store.t * int) option;
    durable : durability option;
    mutable ckpt_inflight : bool;
        (** one background durable checkpoint at a time *)
    mutable durable_snap : (App.state * int) option;
        (** last durably checkpointed (state, count): what a
            bounded-staleness read may be served from *)
    snapshots : (int * bytes) Channel.t;  (** applied count, state *)
    snap_addr : Addr.t;
    tap : (T.event -> unit) option;
        (** observer of the raw delivery stream (chaos checkers) *)
  }

  let ckpt_key g = Printf.sprintf "rsm:%d" (Addr.to_int (Api.group_address g))

  let write_checkpoint t =
    match t.checkpoint with
    | Some (store, every) when t.n_applied mod every = 0 && t.n_applied > 0 ->
        let payload =
          Bytes.cat
            (Bytes.of_string (Printf.sprintf "%d " t.n_applied))
            (App.encode_state t.st)
        in
        let key = ckpt_key t.g in
        (* The write happens "in the background" (a disk DMA), so the
           replica keeps applying while it runs.  It belongs to the
           machine's lifecycle group: a write races a crash, it must
           not land after the machine is dead. *)
        Engine.spawn ~group:(Machine.group t.machine) t.engine (fun () ->
            if not (Stable_store.write store t.machine ~key payload) then begin
              let sc = Api.storage_counters t.g in
              sc.Api.disk_writes_dropped <- sc.Api.disk_writes_dropped + 1
            end)
    | Some _ | None -> ()

  (* WAL one applied update, synchronously in the applier: a
     fsync-per-commit replica really does stall on its disk — that is
     the overhead the [recovery] bench measures. *)
  let log_update t u =
    match t.durable with
    | None -> ()
    | Some d ->
        let sc = Api.storage_counters t.g in
        let sync =
          match d.sync with
          | Every_commit -> true
          | Group_fsync k -> k <= 1 || t.n_applied mod k = 0
          | Checkpoint_only -> false
        in
        if
          Stable_store.wal_append d.store t.machine ~log:(wal_name d) ~sync
            ~index:t.n_applied (App.encode_update u)
        then begin
          sc.Api.wal_appends <- sc.Api.wal_appends + 1;
          if sync then sc.Api.wal_fsyncs <- sc.Api.wal_fsyncs + 1
        end
        else sc.Api.disk_writes_dropped <- sc.Api.disk_writes_dropped + 1

  let ckpt_payload st count =
    let enc = App.encode_state st in
    Bytes.cat
      (Bytes.of_string
         (Printf.sprintf "%d %d " count (Stable_store.checksum enc)))
      enc

  (* Durable checkpoint: write the whole state aside (atomic rename in
     the store), then trim the WAL records it covers.  Runs in the
     background under the machine's lifecycle group; a crash between
     the checkpoint commit and the trim leaves already-covered records
     in the WAL, which recovery skips by index. *)
  let maybe_checkpoint t =
    match t.durable with
    | Some d
      when d.checkpoint_every > 0
           && t.n_applied mod d.checkpoint_every = 0
           && t.n_applied > 0
           && not t.ckpt_inflight ->
        t.ckpt_inflight <- true;
        let st = t.st and count = t.n_applied in
        let payload = ckpt_payload st count in
        Engine.spawn ~group:(Machine.group t.machine) t.engine (fun () ->
            let sc = Api.storage_counters t.g in
            if Stable_store.write d.store t.machine ~key:(ckpt_name d) payload
            then begin
              sc.Api.checkpoints_written <- sc.Api.checkpoints_written + 1;
              t.durable_snap <- Some (st, count);
              if
                not
                  (Stable_store.wal_trim d.store t.machine ~log:(wal_name d)
                     ~upto:count)
              then sc.Api.disk_writes_dropped <- sc.Api.disk_writes_dropped + 1
            end
            else sc.Api.disk_writes_dropped <- sc.Api.disk_writes_dropped + 1;
            t.ckpt_inflight <- false)
    | Some _ | None -> ()

  let apply_update t seq u =
    match t.mode with
    | Normal ->
        t.st <- App.apply t.st u;
        t.n_applied <- t.n_applied + 1;
        log_update t u;
        write_checkpoint t;
        maybe_checkpoint t
    | Syncing s -> s.buffer <- (seq, u) :: s.buffer

  (* Atomic state transfer, responder side: the lowest-numbered member
     other than the joiner pushes its state as of the query's position
     in the stream. *)
  let serve_query t ~seq ~sender ~reply_to =
    ignore seq;
    match t.mode with
    | Syncing _ -> ()
    | Normal ->
        let info = Api.get_info_group t.g in
        let responder =
          List.filter (fun m -> m <> sender) info.Api.members
          |> function [] -> -1 | m :: _ -> m
        in
        if info.Api.my_mid = responder then begin
          let payload =
            Bytes.cat
              (Bytes.of_string (Printf.sprintf "%d " t.n_applied))
              (App.encode_state t.st)
          in
          Engine.spawn t.engine (fun () ->
              let client = Amoeba_rpc.Rpc.client t.flip in
              ignore (Amoeba_rpc.Rpc.call client ~dst:reply_to payload))
        end

  let parse_counted payload =
    match Bytes.index_opt payload ' ' with
    | None -> None
    | Some i ->
        let count = int_of_string (Bytes.sub_string payload 0 i) in
        let rest = Bytes.sub payload (i + 1) (Bytes.length payload - i - 1) in
        Some (count, rest)

  (* Reads "<int> " starting at [pos]; returns the value and the
     position just past the space, or None on malformed input. *)
  let parse_int_sp body pos =
    match Bytes.index_from_opt body pos ' ' with
    | None -> None
    | Some sp -> (
        match int_of_string_opt (Bytes.sub_string body pos (sp - pos)) with
        | Some v -> Some (v, sp + 1)
        | None -> None)

  (* Decodes a 'B' frame into its updates, in submission order.
     Returns None if any op fails to parse — a batch applies
     atomically or not at all, so replicas never diverge on a
     half-understood frame. *)
  let decode_batch body =
    match parse_int_sp body 1 with
    | None -> None
    | Some (n, pos) ->
        let rec ops acc pos = function
          | 0 -> if pos = Bytes.length body then Some (List.rev acc) else None
          | k -> (
              match parse_int_sp body pos with
              | None -> None
              | Some (len, pos) ->
                  if pos + len > Bytes.length body then None
                  else
                    match App.decode_update (Bytes.sub body pos len) with
                    | None -> None
                    | Some u -> ops (u :: acc) (pos + len) (k - 1))
        in
        if n < 1 then None else ops [] pos n

  let handle_message t ~seq ~sender body =
    if Bytes.length body > 0 then begin
      match Bytes.get body 0 with
      | c when c = tag_update -> (
          match App.decode_update (Bytes.sub body 1 (Bytes.length body - 1)) with
          | Some u -> apply_update t seq u
          | None -> ())
      | c when c = tag_batch -> (
          match decode_batch body with
          | Some us -> List.iter (fun u -> apply_update t seq u) us
          | None -> ())
      | c when c = tag_query -> (
          match
            String.split_on_char ' '
              (Bytes.sub_string body 1 (Bytes.length body - 1))
          with
          | [ addr; nonce ] -> (
              let reply_to = Addr.of_int (int_of_string addr) in
              let nonce = int_of_string nonce in
              serve_query t ~seq ~sender ~reply_to;
              (* Our own query marks the cut-off point: the snapshot
                 covers everything before it. *)
              match t.mode with
              | Syncing s when s.nonce = nonce -> s.query_seq <- Some seq
              | Syncing _ | Normal -> ())
          | _ -> ())
      | _ -> ()
    end

  let applier t () =
    let rec loop () =
      let ev = Api.receive_from_group t.g in
      (match t.tap with Some f -> f ev | None -> ());
      (match ev with
      | T.Message { seq; sender; body } -> handle_message t ~seq ~sender body
      | T.Member_joined _ | T.Member_left _ | T.Group_reset _ -> ()
      | T.Expelled -> ());
      match ev with T.Expelled -> () | _ -> loop ()
    in
    loop ()

  let make flip g ~checkpoint ~durable ~seed ~tap =
    let machine = Flip.machine flip in
    let st, n_applied = Option.value seed ~default:(App.initial, 0) in
    let t =
      {
        flip;
        g;
        machine;
        engine = Machine.engine machine;
        st;
        n_applied;
        mode = Normal;
        checkpoint;
        durable;
        ckpt_inflight = false;
        (* A recovered seed came off the disk, so it is durable by
           construction and may serve bounded-staleness reads. *)
        durable_snap =
          (match (durable, seed) with
          | Some _, Some (st, count) -> Some (st, count)
          | _ -> None);
        snapshots = Channel.create ();
        snap_addr = Flip.fresh_addr flip;
        tap;
      }
    in
    (* Snapshots for state transfer arrive over RPC. *)
    let _server =
      Amoeba_rpc.Rpc.serve flip ~addr:t.snap_addr (fun payload ->
          (match parse_counted payload with
          | Some (count, state_bytes) ->
              Channel.send t.snapshots (count, state_bytes)
          | None -> ());
          Amoeba_rpc.Types_rpc.Reply Bytes.empty)
    in
    Engine.spawn t.engine (applier t);
    t

  let create flip ?(resilience = 0) ?(send_method = T.Pb) ?(auto_heal = false)
      ?(pipeline = 1) ?checkpoint ?durable ?seed ?tap () =
    let g =
      Api.create_group flip ~resilience ~send_method ~auto_heal ~pipeline ()
    in
    let t = make flip g ~checkpoint ~durable ~seed ~tap in
    (match (durable, seed) with
    | Some d, None ->
        (* A fresh durable group must not inherit records a previous
           life of this log left behind: re-initialise the media
           (instant metadata ops). *)
        let machine_name = Machine.name t.machine in
        Stable_store.wal_reset d.store ~machine_name ~log:(wal_name d);
        Stable_store.remove d.store ~machine_name ~key:(ckpt_name d)
    | Some _, Some _ | None, _ -> ());
    t

  let address t = Api.group_address t.g
  let group t = t.g

  (* The exact on-stream bytes of an update, framed in one allocation
     (the submit hot path: no [Bytes.cat] of a one-byte tag). *)
  let wire_of_update u =
    let enc = App.encode_update u in
    let n = Bytes.length enc in
    let framed = Bytes.create (n + 1) in
    Bytes.set framed 0 tag_update;
    Bytes.blit enc 0 framed 1 n;
    framed

  let submit t u =
    (* The framed buffer is fresh and never reused: hand it to the
       kernel without the user→kernel defensive copy. *)
    Api.send_to_group ~copy:false t.g (wire_of_update u)

  (* The exact on-stream bytes of a batch: one 'B' frame carrying every
     update length-prefixed, in order. *)
  let wire_of_batch us =
    let buf = Buffer.create 64 in
    Buffer.add_char buf tag_batch;
    Buffer.add_string buf (string_of_int (List.length us));
    Buffer.add_char buf ' ';
    List.iter
      (fun u ->
        let enc = App.encode_update u in
        Buffer.add_string buf (string_of_int (Bytes.length enc));
        Buffer.add_char buf ' ';
        Buffer.add_bytes buf enc)
      us;
    Buffer.to_bytes buf

  let submit_batch t us =
    match us with
    | [] -> invalid_arg "Rsm.submit_batch: empty batch"
    | [ u ] -> submit t u
    | _ ->
        (* One sequencer round carries the whole vector; the kernel is
           told the op count so the simulation charges the message its
           real marginal per-op wire bytes and CPU. *)
        Api.send_to_group ~copy:false ~ops:(List.length us) t.g
          (wire_of_batch us)

  let state t = t.st
  let applied t = t.n_applied
  let leave t = Api.leave_group t.g
  let reset t ~min_members = Api.reset_group t.g ~min_members

  (* Atomic state transfer, joiner side. *)
  let sync t =
    let rec attempt tries =
      if tries > 4 then Error T.Sequencer_unreachable
      else begin
        let nonce = Random.State.int (Engine.rng t.engine) 1_000_000 in
        let sync_state = Syncing { nonce; buffer = []; query_seq = None } in
        t.mode <- sync_state;
        let q =
          Bytes.of_string
            (Printf.sprintf "%c%d %d" tag_query (Addr.to_int t.snap_addr) nonce)
        in
        match Api.send_to_group t.g q with
        | Error e -> Error e
        | Ok _ -> (
            (* The responder serves the query from its applier, in
               stream position — behind whatever apply backlog its
               disk has accumulated — and a big snapshot takes real
               wire time, so each retry waits twice as long as the
               last (500 ms, 1 s, 2 s, 4 s).  A caller in a hurry
               bounds the whole join with its own watchdog anyway. *)
            match
              Channel.recv_timeout t.engine t.snapshots
                ~timeout:(Time.ms (500 * (1 lsl (tries - 1))))
            with
            | None -> attempt (tries + 1)
            | Some (count, state_bytes) -> (
                match App.decode_state state_bytes with
                | None -> attempt (tries + 1)
                | Some st -> (
                    match t.mode with
                    | Normal -> Ok ()  (* concurrent success *)
                    | Syncing s ->
                        let cut = Option.value s.query_seq ~default:max_int in
                        t.st <- st;
                        t.n_applied <- count;
                        (* Apply what was sequenced after our query. *)
                        List.iter
                          (fun (seq, u) ->
                            if seq > cut then begin
                              t.st <- App.apply t.st u;
                              t.n_applied <- t.n_applied + 1
                            end)
                          (List.rev s.buffer);
                        t.mode <- Normal;
                        Ok ())))
      end
    in
    attempt 1

  (* A joiner's disk may hold durable state from a previous life of
     this log — possibly from a different history.  Wipe it (instant
     metadata ops) and write a fresh checkpoint of the transferred
     state.  A crash before the checkpoint commits leaves an empty
     log: that replica recovers as applied-0 and re-syncs by state
     transfer — never a divergent replay. *)
  let reconcile_disk t =
    match t.durable with
    | None -> ()
    | Some d ->
        let machine_name = Machine.name t.machine in
        Stable_store.wal_reset d.store ~machine_name ~log:(wal_name d);
        Stable_store.remove d.store ~machine_name ~key:(ckpt_name d);
        let sc = Api.storage_counters t.g in
        let st = t.st and count = t.n_applied in
        if
          Stable_store.write d.store t.machine ~key:(ckpt_name d)
            (ckpt_payload st count)
        then begin
          sc.Api.checkpoints_written <- sc.Api.checkpoints_written + 1;
          t.durable_snap <- Some (st, count)
        end
        else sc.Api.disk_writes_dropped <- sc.Api.disk_writes_dropped + 1

  let join flip ?(resilience = 0) ?(send_method = T.Pb) ?(auto_heal = false)
      ?(pipeline = 1) ?checkpoint ?durable ?tap addr =
    match
      Api.join_group flip ~resilience ~send_method ~auto_heal ~pipeline addr
    with
    | Error e -> Error e
    | Ok g -> (
        let t = make flip g ~checkpoint ~durable ~seed:None ~tap in
        (* Alone in the group?  Then there is nothing to transfer. *)
        let info = Api.get_info_group g in
        if List.length info.Api.members <= 1 then begin
          reconcile_disk t;
          Ok t
        end
        else
          match sync t with
          | Ok () ->
              reconcile_disk t;
              Ok t
          | Error e -> Error e)

  let durable_snapshot t = t.durable_snap

  type recovered = {
    r_state : App.state;
    r_applied : int;
    r_stats : recovery_stats;
  }

  (* Parses "<count> <crc> <state>"; None if truncated, garbled, or
     the state bytes fail their checksum. *)
  let parse_ckpt payload =
    match parse_int_sp payload 0 with
    | None -> None
    | Some (count, pos) -> (
        match parse_int_sp payload pos with
        | None -> None
        | Some (crc, pos) -> (
            let enc = Bytes.sub payload pos (Bytes.length payload - pos) in
            if Stable_store.checksum enc <> crc then None
            else
              match App.decode_state enc with
              | None -> None
              | Some st -> Some (st, count)))

  (* Crash-restart recovery for one replica, from its own disk:
     checkpoint load + WAL replay.  Blocking and costed (a sequential
     scan of the media), so call it from a process on the recovering
     machine.  Restores a consistent prefix — records the scan
     truncated (torn tail) or refused (damage) just shorten it — but
     REFUSES loudly, with [Error], if the surviving records cannot
     reconstruct any consistent prefix: an index gap means updates
     were trimmed whose covering checkpoint is unreadable, and a
     CRC-valid record that fails to decode is not media damage but
     corruption the checksum cannot vouch against.  The caller should
     then re-sync this replica by state transfer instead. *)
  let recover (d : durability) machine =
    let machine_name = Machine.name machine in
    let dsk = (Machine.cost machine).Cost_model.disk in
    let base_st, base_count, ckpt_damaged =
      match Stable_store.read d.store ~machine_name ~key:(ckpt_name d) with
      | None -> (App.initial, 0, false)
      | Some payload -> (
          Engine.sleep (Machine.engine machine)
            (dsk.Cost_model.disk_seek_ns
            + (Bytes.length payload * dsk.Cost_model.disk_ns_per_byte));
          match parse_ckpt payload with
          | Some (st, count) -> (st, count, false)
          | None -> (App.initial, 0, true))
    in
    let rp = Stable_store.wal_replay d.store machine ~log:(wal_name d) in
    let st = ref base_st in
    let applied = ref base_count in
    let next = ref (base_count + 1) in
    let err = ref None in
    List.iter
      (fun (idx, payload) ->
        if !err = None then
          if idx < !next then () (* covered by the checkpoint: skip *)
          else if idx > !next then
            err :=
              Some
                (Printf.sprintf
                   "WAL gap on %s/%s: expected record %d, found %d"
                   machine_name d.log !next idx)
          else
            match App.decode_update payload with
            | None ->
                err :=
                  Some
                    (Printf.sprintf
                       "undecodable WAL record %d on %s/%s (checksum valid)"
                       idx machine_name d.log)
            | Some u ->
                st := App.apply !st u;
                applied := idx;
                next := idx + 1)
      rp.Stable_store.records;
    match !err with
    | Some e -> Error e
    | None ->
        Ok
          {
            r_state = !st;
            r_applied = !applied;
            r_stats =
              {
                ckpt_count = base_count;
                checkpoint_damaged = ckpt_damaged;
                records_replayed = !applied - base_count;
                torn_tails = rp.Stable_store.torn_tails;
                checksum_rejects =
                  (rp.Stable_store.checksum_rejects
                  + if ckpt_damaged then 1 else 0);
              };
          }

  (* Scans this machine's rsm:* checkpoints and returns the most
     advanced one. *)
  let checkpointed store ~machine_name =
    let best = ref None in
    List.iter
      (fun key ->
        if String.length key > 4 && String.sub key 0 4 = "rsm:" then
          match Stable_store.read store ~machine_name ~key with
          | None -> ()
          | Some payload -> (
              match parse_counted payload with
              | Some (count, state_bytes) -> (
                  match App.decode_state state_bytes with
                  | Some st -> (
                      match !best with
                      | Some (_, c) when c >= count -> ()
                      | _ -> best := Some (st, count))
                  | None -> ())
              | None -> ()))
      (Stable_store.keys store ~machine_name);
    !best
end
