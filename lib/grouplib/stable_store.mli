(** Simulated stable storage: per-machine checkpoint files and
    append-only write-ahead logs.

    Section 5's consistent checkpointing scheme (reference [15]) needs
    state that survives a processor crash.  A {!t} is keyed by machine
    name and, unlike the machine itself, remains readable after
    {!Amoeba_net.Machine.crash} — exactly like a disk that a restarted
    machine remounts.  All I/O is costed against the owning machine's
    disk (see [Amoeba_net.Cost_model.disk]) and serialised on its
    spindle ([Amoeba_net.Machine.disk]).

    {2 Durability model}

    A WAL has a {e durable frontier}: bytes below it are on the
    platter; bytes above it are in the disk's volatile write cache.
    An append lands in the cache; a sync (explicit, or [~sync:true] on
    the append, or the implicit one in a trim) advances the frontier
    to the end of the log.  {!Amoeba_net.Machine.crash} triggers a
    power-loss hook: the cache suffix survives only as a deterministic
    torn fragment, which replay detects (incomplete record) and
    truncates.  Checkpoint writes ({!write}) are
    build-aside-then-rename: a crash mid-write leaves the {e old}
    value, never a half-written one.

    Every record carries a checksum.  Replay stops at a torn tail
    (counted in [torn_tails]) and {e refuses the whole suffix} after a
    corrupt record (counted in [checksum_rejects]): nothing after
    damage can be trusted. *)

open Amoeba_net

type t

type counters = {
  mutable kv_writes : int;  (** checkpoint-style writes committed *)
  mutable writes_dropped : int;
      (** I/O attempted on (or lost to) a dead machine *)
  mutable wal_appends : int;
  mutable fsyncs : int;
  mutable wal_trims : int;
  mutable records_replayed : int;  (** via costed {!wal_replay} only *)
  mutable torn_tails : int;  (** found by {!wal_replay} *)
  mutable checksum_rejects : int;  (** found by {!wal_replay} *)
}

type replay = {
  records : (int * bytes) list;  (** (index, payload) in log order *)
  torn_tails : int;  (** incomplete trailing record dropped *)
  checksum_rejects : int;
      (** damaged record hit; everything after it was refused *)
  bytes_scanned : int;
}

val create : unit -> t
(** One store per simulated world (a disk array, one spindle per
    machine). *)

val counters : t -> counters

val checksum : bytes -> int
(** The per-record FNV-1a checksum (30 bits), exposed so callers can
    frame their own checkpoint payloads. *)

val write : t -> Machine.t -> key:string -> bytes -> bool
(** Atomic checkpoint-style write (blocks for seek + transfer + sync).
    Returns [false] — and counts [writes_dropped] — when the machine
    is dead at the start or dies before the commit point; the old
    value, if any, is left intact. *)

val read : t -> machine_name:string -> key:string -> bytes option
(** Reads survive the owner's crash (the disk is intact). *)

val keys : t -> machine_name:string -> string list

val remove : t -> machine_name:string -> key:string -> unit
(** Instant metadata op (unlink), used when re-initialising a replica's
    durable state. *)

val wal_append :
  t -> Machine.t -> log:string -> ?sync:bool -> index:int -> bytes -> bool
(** Appends one checksummed record.  With [~sync:true] (default
    false) the write cache is flushed too — the record is durable when
    the call returns; otherwise it sits in the cache until a later
    sync and is lost (modulo a torn fragment) to a power failure. *)

val wal_sync : t -> Machine.t -> log:string -> bool
(** Flush the write cache: advances the durable frontier to the
    current end of log. *)

val wal_trim : t -> Machine.t -> log:string -> upto:int -> bool
(** Drops records with [index <= upto] by rewriting the log head (a
    real, costed rewrite — this is why checkpoint-then-trim has a
    crash window, which recovery closes by skipping already
    checkpointed indices).  The rewrite syncs. *)

val wal_reset : t -> machine_name:string -> log:string -> unit
(** Instant metadata truncate-to-empty, for (re)initialising a log. *)

val wal_size : t -> machine_name:string -> log:string -> int
(** Bytes in the log image, cache included. *)

val wal_durable : t -> machine_name:string -> log:string -> int
(** The durable frontier, in bytes. *)

val wal_replay : t -> Machine.t -> log:string -> replay
(** Recovery scan: costs a sequential read of the whole log on the
    machine's disk, parses it, and accounts what it found in
    {!counters}.  The machine should be alive (it is recovering). *)

val wal_read : t -> machine_name:string -> log:string -> replay
(** The same parse with no simulated cost and no counter traffic: the
    omniscient checker's view, also usable on dead machines. *)

val corrupt_wal : t -> machine_name:string -> log:string -> at:int -> unit
(** Test hook: flip one bit of the log image at byte [at]. *)

val truncate_value : t -> machine_name:string -> key:string -> len:int -> unit
(** Test hook: truncate a checkpoint value to [len] bytes, simulating
    a torn checkpoint file. *)
