open Amoeba_sim
open Amoeba_net

type counters = {
  mutable kv_writes : int;
  mutable writes_dropped : int;
  mutable wal_appends : int;
  mutable fsyncs : int;
  mutable wal_trims : int;
  mutable records_replayed : int;
  mutable torn_tails : int;
  mutable checksum_rejects : int;
}

type replay = {
  records : (int * bytes) list;
  torn_tails : int;
  checksum_rejects : int;
  bytes_scanned : int;
}

(* One append-only log.  [buf] is the full platter-plus-write-cache
   image; [durable] is how much of it is guaranteed to survive a power
   failure (advanced by fsync, or by a trim, which is a rewrite).  A
   crash hook turns the cache suffix into a torn tail. *)
type wal = { buf : Buffer.t; mutable durable : int }

type t = {
  kv : (string * string, bytes) Hashtbl.t;
  wals : (string * string, wal) Hashtbl.t;
  hooked : (string, unit) Hashtbl.t;
  c : counters;
}

let create () =
  {
    kv = Hashtbl.create 32;
    wals = Hashtbl.create 32;
    hooked = Hashtbl.create 8;
    c =
      {
        kv_writes = 0;
        writes_dropped = 0;
        wal_appends = 0;
        fsyncs = 0;
        wal_trims = 0;
        records_replayed = 0;
        torn_tails = 0;
        checksum_rejects = 0;
      };
  }

let counters t = t.c

(* FNV-1a, folded to 30 bits so the decimal text form stays short. *)
let checksum b =
  let h = ref 0x811c9dc5 in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193 land 0xFFFFFFFF
  done;
  !h land 0x3FFFFFFF

let wal_of t machine_name log =
  let key = (machine_name, log) in
  match Hashtbl.find_opt t.wals key with
  | Some w -> w
  | None ->
      let w = { buf = Buffer.create 256; durable = 0 } in
      Hashtbl.replace t.wals key w;
      w

(* Power loss: everything beyond the durable frontier was only in the
   disk's volatile write cache.  A deterministic fragment of it — some
   prefix of the in-flight bytes — made it to the platter before the
   power went; the rest is gone.  Replay sees the fragment as a torn
   tail and truncates it. *)
let torn_keep ~machine ~log ~durable ~cached =
  checksum
    (Bytes.of_string (Printf.sprintf "%s|%s|%d|%d" machine log durable cached))
  mod (cached + 1)

let power_loss t machine_name =
  Hashtbl.iter
    (fun (m, log) w ->
      if m = machine_name then begin
        let len = Buffer.length w.buf in
        if len > w.durable then begin
          let keep =
            torn_keep ~machine:m ~log ~durable:w.durable ~cached:(len - w.durable)
          in
          Buffer.truncate w.buf (w.durable + keep);
          w.durable <- Buffer.length w.buf
        end
      end)
    t.wals

let ensure_hook t machine =
  let name = Machine.name machine in
  if not (Hashtbl.mem t.hooked name) then begin
    Hashtbl.replace t.hooked name ();
    Machine.on_crash machine (fun () -> power_loss t name)
  end

let disk_of machine = (Machine.cost machine).Cost_model.disk

(* One disk I/O on [machine]: take the spindle, run [prepare] (bytes
   land in the write cache; returns the I/O's duration), hold the
   spindle for that long (a slice of it costs CPU — the transfer
   itself is DMA), then [commit] — the durability point — and release.
   If the machine dies mid-transfer the commit never happens: a fiber
   in the machine's group is cancelled outright, and a harness fiber
   that survives sees the generation check fail and skips the tail.
   Returns false (and counts a dropped write) when nothing was
   committed. *)
let io t machine ~prepare ~commit =
  if not (Machine.is_alive machine) then begin
    t.c.writes_dropped <- t.c.writes_dropped + 1;
    false
  end
  else begin
    let gen = Machine.restarts machine in
    let disk = Machine.disk machine in
    let live () = Machine.is_alive machine && Machine.restarts machine = gen in
    Resource.acquire disk;
    let ok =
      if not (live ()) then false
      else begin
        let cost = prepare () in
        Resource.consume (Machine.cpu machine) (cost / 10);
        Engine.sleep (Machine.engine machine) cost;
        if live () then begin
          commit ();
          true
        end
        else false
      end
    in
    Resource.release disk;
    if not ok then t.c.writes_dropped <- t.c.writes_dropped + 1;
    ok
  end

(* Checkpoint-style write: build the new value to the side, one atomic
   rename at I/O completion.  A crash mid-write leaves the old value
   intact — never a half-written checkpoint (torn checkpoints in tests
   are injected with [truncate_value]). *)
let write t machine ~key value =
  ensure_hook t machine;
  let d = disk_of machine in
  let name = Machine.name machine in
  let ok =
    io t machine
      ~prepare:(fun () ->
        d.Cost_model.disk_seek_ns
        + (Bytes.length value * d.Cost_model.disk_ns_per_byte)
        + d.Cost_model.disk_fsync_ns)
      ~commit:(fun () -> Hashtbl.replace t.kv (name, key) (Bytes.copy value))
  in
  if ok then t.c.kv_writes <- t.c.kv_writes + 1;
  ok

let read t ~machine_name ~key =
  Option.map Bytes.copy (Hashtbl.find_opt t.kv (machine_name, key))

let keys t ~machine_name =
  Hashtbl.fold
    (fun (m, k) _ acc -> if m = machine_name then k :: acc else acc)
    t.kv []
  |> List.sort_uniq compare

let remove t ~machine_name ~key = Hashtbl.remove t.kv (machine_name, key)

(* Record framing: "<index> <len> <crc> " in decimal text, then [len]
   raw payload bytes.  Parsed by lengths, so payloads may contain
   anything. *)
let add_record buf ~index payload =
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d " index (Bytes.length payload) (checksum payload));
  Buffer.add_bytes buf payload

exception Stop

(* Scan a log image into records.  A record that runs off the end of
   the image (header or payload) is a torn tail: truncated, counted,
   scan ends.  A record whose header is garbled or whose payload fails
   its checksum is damage: counted as a reject and the scan REFUSES
   the whole suffix — recovery must never apply bytes after a damaged
   record, because nothing downstream of it can be trusted. *)
let parse data =
  let n = String.length data in
  let records = ref [] in
  let torn = ref 0 in
  let rejects = ref 0 in
  let pos = ref 0 in
  (try
     while !pos < n do
       let read_int () =
         let start = !pos in
         let j = ref start in
         while !j < n && String.get data !j <> ' ' do
           incr j
         done;
         if !j >= n then begin
           incr torn;
           raise Stop
         end;
         let s = String.sub data start (!j - start) in
         pos := !j + 1;
         match int_of_string_opt s with
         | Some v when v >= 0 -> v
         | _ ->
             incr rejects;
             raise Stop
       in
       let index = read_int () in
       let len = read_int () in
       let crc = read_int () in
       if len > n - !pos then begin
         incr torn;
         raise Stop
       end;
       let payload = Bytes.of_string (String.sub data !pos len) in
       pos := !pos + len;
       if checksum payload <> crc then begin
         incr rejects;
         raise Stop
       end;
       records := (index, payload) :: !records
     done
   with Stop -> ());
  (List.rev !records, !torn, !rejects)

let wal_append t machine ~log ?(sync = false) ~index payload =
  ensure_hook t machine;
  let d = disk_of machine in
  let w = wal_of t (Machine.name machine) log in
  let ok =
    io t machine
      ~prepare:(fun () ->
        let before = Buffer.length w.buf in
        add_record w.buf ~index payload;
        d.Cost_model.disk_seek_ns
        + ((Buffer.length w.buf - before) * d.Cost_model.disk_ns_per_byte)
        + if sync then d.Cost_model.disk_fsync_ns else 0)
      ~commit:(fun () -> if sync then w.durable <- Buffer.length w.buf)
  in
  if ok then begin
    t.c.wal_appends <- t.c.wal_appends + 1;
    if sync then t.c.fsyncs <- t.c.fsyncs + 1
  end;
  ok

let wal_sync t machine ~log =
  ensure_hook t machine;
  let d = disk_of machine in
  let w = wal_of t (Machine.name machine) log in
  let ok =
    io t machine
      ~prepare:(fun () -> d.Cost_model.disk_fsync_ns)
      ~commit:(fun () -> w.durable <- Buffer.length w.buf)
  in
  if ok then t.c.fsyncs <- t.c.fsyncs + 1;
  ok

(* Drop records with index <= upto by rewriting the log head.  The
   filtered image is computed under the spindle (appends can't
   interleave) and swapped in at commit, with the rewrite counting as
   its own sync: a crash mid-trim leaves the untrimmed log — recovery
   replays a few extra records and skips them by index. *)
let wal_trim t machine ~log ~upto =
  ensure_hook t machine;
  let d = disk_of machine in
  let w = wal_of t (Machine.name machine) log in
  let out = Buffer.create 256 in
  let ok =
    io t machine
      ~prepare:(fun () ->
        let records, _, _ = parse (Buffer.contents w.buf) in
        List.iter
          (fun (i, p) -> if i > upto then add_record out ~index:i p)
          records;
        d.Cost_model.disk_seek_ns
        + (Buffer.length out * d.Cost_model.disk_ns_per_byte)
        + d.Cost_model.disk_fsync_ns)
      ~commit:(fun () ->
        Buffer.clear w.buf;
        Buffer.add_buffer w.buf out;
        w.durable <- Buffer.length w.buf)
  in
  if ok then t.c.wal_trims <- t.c.wal_trims + 1;
  ok

let wal_reset t ~machine_name ~log =
  match Hashtbl.find_opt t.wals (machine_name, log) with
  | Some w ->
      Buffer.clear w.buf;
      w.durable <- 0
  | None -> ()

let wal_size t ~machine_name ~log =
  match Hashtbl.find_opt t.wals (machine_name, log) with
  | Some w -> Buffer.length w.buf
  | None -> 0

let wal_durable t ~machine_name ~log =
  match Hashtbl.find_opt t.wals (machine_name, log) with
  | Some w -> w.durable
  | None -> 0

let wal_read t ~machine_name ~log =
  let data =
    match Hashtbl.find_opt t.wals (machine_name, log) with
    | Some w -> Buffer.contents w.buf
    | None -> ""
  in
  let records, torn_tails, checksum_rejects = parse data in
  { records; torn_tails; checksum_rejects; bytes_scanned = String.length data }

let wal_replay t machine ~log =
  ensure_hook t machine;
  let d = disk_of machine in
  let name = Machine.name machine in
  let size = wal_size t ~machine_name:name ~log in
  ignore
    (io t machine
       ~prepare:(fun () ->
         d.Cost_model.disk_seek_ns + (size * d.Cost_model.disk_ns_per_byte))
       ~commit:(fun () -> ()));
  let rp = wal_read t ~machine_name:name ~log in
  t.c.records_replayed <- t.c.records_replayed + List.length rp.records;
  t.c.torn_tails <- t.c.torn_tails + rp.torn_tails;
  t.c.checksum_rejects <- t.c.checksum_rejects + rp.checksum_rejects;
  rp

let corrupt_wal t ~machine_name ~log ~at =
  match Hashtbl.find_opt t.wals (machine_name, log) with
  | Some w when at >= 0 && at < Buffer.length w.buf ->
      let b = Buffer.to_bytes w.buf in
      Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x40));
      Buffer.clear w.buf;
      Buffer.add_bytes w.buf b
  | _ -> ()

let truncate_value t ~machine_name ~key ~len =
  match Hashtbl.find_opt t.kv (machine_name, key) with
  | Some v when len >= 0 && len < Bytes.length v ->
      Hashtbl.replace t.kv (machine_name, key) (Bytes.sub v 0 len)
  | _ -> ()
