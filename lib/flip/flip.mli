(** The Fast Local Internet Protocol layer (one instance per machine).

    Provides connectionless unicast and multicast datagrams addressed
    to processes/groups rather than hosts.  Destinations of unicast
    packets are located with a broadcast WHOIS exchange and cached, as
    in the real protocol; multicast maps group addresses onto hardware
    multicast.  Packets larger than one Ethernet frame are fragmented
    and reassembled transparently (the paper's experiments cap
    messages at 8000 bytes because multicast flow control for larger
    messages was an open problem; we inherit the cap in the benches
    but not in the layer itself). *)

open Amoeba_net

type t

val create : Machine.t -> t
(** Creates the FLIP instance and installs it as the machine's NIC
    handler. *)

val machine : t -> Machine.t

val fresh_addr : t -> Addr.t

val register : t -> Addr.t -> (Packet.t -> unit) -> unit
(** [register t addr handler] makes [addr] a local endpoint.
    [handler] runs in the receive path after FLIP costs are charged;
    it must not block (hand off to a channel for real work). *)

val unregister : t -> Addr.t -> unit

val register_group : t -> Addr.t -> (Packet.t -> unit) -> unit
(** Like {!register} but also subscribes the NIC to the group's
    hardware multicast address. *)

val unregister_group : t -> Addr.t -> unit

val send : t -> Packet.t -> [ `Sent | `No_route | `Dropped ]
(** Blocking unicast.  [`No_route] after the locate protocol fails
    (destination crashed or unregistered); [`Dropped] if the wire gave
    up (excessive collisions) — reliability is the caller's job. *)

val multicast : t -> Packet.t -> [ `Sent | `Dropped ]
(** Blocking multicast of one packet to a group address, delivered to
    remote subscribers via hardware multicast.  As with the Lance
    hardware, the sending station does not receive its own multicast;
    a kernel that needs its own message already has it. *)

val max_fragment : t -> int
(** Largest packet size that still fits one Ethernet frame. *)

val locate_cache_size : t -> int
(** Number of cached address-to-station routes (for tests). *)

(** {1 Adversarial-delivery counters}

    The receive path tolerates frames a hostile network hands it:
    header-corrupt frames fail the FLIP header checksum and are
    dropped whole; payload-corrupt Data fragments travel up wrapped in
    {!Packet.Corrupt} for the layer above to reject; duplicated and
    metadata-invalid fragments are discarded without advancing
    reassembly. *)

val corrupt_dropped : t -> int
(** Frames dropped because the header checksum failed on receipt. *)

val dup_fragments : t -> int
(** Duplicate fragments discarded by the reassembly bitmap. *)

val invalid_fragments : t -> int
(** Fragments with out-of-range metadata, or a fragment count that
    disagreed with the entry their siblings created. *)

val partial_count : t -> int
(** Reassembly entries currently buffered (for the purge tests). *)

val packet_of_frame : Amoeba_net.Frame.t -> Packet.t option
(** Peeks at the FLIP packet inside a data frame (any fragment), for
    fault-injection filters in tests and benchmarks. *)
