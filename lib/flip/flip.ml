open Amoeba_sim
open Amoeba_net

type fragment = {
  packet : Packet.t;
  msg_id : int;
  frag : int;  (** 0-based fragment index *)
  frags : int;  (** total fragments of this packet *)
}

type Frame.body +=
  | Data of fragment
  | Whois of Addr.t
  | Iam of { addr : Addr.t; station : int }

module Addr_tbl = Hashtbl.Make (struct
  type t = Addr.t

  let equal = Addr.equal
  let hash = Addr.hash
end)

type reassembly = {
  seen : bool array;
      (** per-fragment arrival bitmap: a duplicated fragment must not
          count towards completion, or reassembly would finish with a
          fragment still missing *)
  mutable received : int;
  total : int;
  first_seen : Time.t;
  whole : Packet.t;
  mutable corrupt : bool;  (** some fragment arrived payload-damaged *)
}

type t = {
  machine : Machine.t;
  endpoints : (Packet.t -> unit) Addr_tbl.t;
  group_endpoints : (Packet.t -> unit) Addr_tbl.t;
  route_cache : int Addr_tbl.t;  (** address -> station *)
  pending_locates : int Channel.t list ref Addr_tbl.t;
  partial : (int * int, reassembly) Hashtbl.t;  (** (station, msg_id) *)
  mutable next_msg_id : int;
  mutable n_corrupt_dropped : int;
      (** frames whose header checksum failed on receipt *)
  mutable n_dup_fragments : int;
  mutable n_invalid_fragments : int;
      (** fragments whose metadata was out of range or disagreed with
          the reassembly entry *)
}

let locate_timeout = Time.ms 5
let locate_retries = 3

let flip_wire_header c =
  c.Cost_model.header_ether + c.Cost_model.header_flow_control
  + c.Cost_model.header_flip

let max_fragment t =
  let c = Machine.cost t.machine in
  c.Cost_model.max_frame_bytes - flip_wire_header c

let eng t = Machine.engine t.machine
let cost t = Machine.cost t.machine

let work t d = Machine.work t.machine ~layer:"flip" d

let deliver_local t (packet : Packet.t) =
  match Addr_tbl.find_opt t.endpoints packet.dst with
  | Some handler -> handler packet
  | None -> (
      match Addr_tbl.find_opt t.group_endpoints packet.dst with
      | Some handler -> handler packet
      | None -> ())

(* Reassembly: fragments of one packet share a (station, msg_id) key.
   Stale entries (peer crashed mid-message, fragment lost) are purged
   lazily. *)
let purge_stale t =
  if Hashtbl.length t.partial > 256 then begin
    let now = Engine.now (eng t) in
    let stale =
      Hashtbl.fold
        (fun key r acc -> if now - r.first_seen > Time.sec 1 then key :: acc else acc)
        t.partial []
    in
    List.iter (Hashtbl.remove t.partial) stale
  end

let deliver_maybe_corrupt t (p : Packet.t) ~corrupt =
  if corrupt then deliver_local t { p with Packet.body = Packet.Corrupt p.Packet.body }
  else deliver_local t p

let on_data ?(corrupt = false) t ~station (f : fragment) =
  work t (cost t).Cost_model.flip_rx_ns;
  if f.frags <= 0 || f.frag < 0 || f.frag >= f.frags then
    (* Out-of-range metadata: a damaged or forged fragment header must
       not index the bitmap or create an entry that can never fill. *)
    t.n_invalid_fragments <- t.n_invalid_fragments + 1
  else if f.frags = 1 then deliver_maybe_corrupt t f.packet ~corrupt
  else begin
    purge_stale t;
    let key = (station, f.msg_id) in
    match Hashtbl.find_opt t.partial key with
    | Some r when r.total <> f.frags ->
        (* Fragment count disagrees with the entry its siblings
           created: one of them lied. *)
        t.n_invalid_fragments <- t.n_invalid_fragments + 1
    | Some r when r.seen.(f.frag) -> t.n_dup_fragments <- t.n_dup_fragments + 1
    | existing ->
        let r =
          match existing with
          | Some r -> r
          | None ->
              let r =
                {
                  seen = Array.make f.frags false;
                  received = 0;
                  total = f.frags;
                  first_seen = Engine.now (eng t);
                  whole = f.packet;
                  corrupt = false;
                }
              in
              Hashtbl.add t.partial key r;
              r
        in
        r.seen.(f.frag) <- true;
        r.received <- r.received + 1;
        if corrupt then r.corrupt <- true;
        if r.received = r.total then begin
          Hashtbl.remove t.partial key;
          deliver_maybe_corrupt t r.whole ~corrupt:r.corrupt
        end
  end

let on_whois t addr =
  work t (cost t).Cost_model.flip_rx_ns;
  if Addr_tbl.mem t.endpoints addr then begin
    let c = cost t in
    let reply =
      {
        Frame.src = Machine.id t.machine;
        dest = Frame.Broadcast;
        size_on_wire = flip_wire_header c;
        body = Iam { addr; station = Machine.id t.machine };
      }
    in
    (* Reply from a fresh process: the receive path must not stall
       behind a wire transmission. *)
    Engine.spawn (eng t) (fun () ->
        work t c.Cost_model.flip_tx_ns;
        ignore (Nic.send (Machine.nic t.machine) reply))
  end

let on_iam t ~addr ~station =
  work t (cost t).Cost_model.flip_rx_ns;
  Addr_tbl.replace t.route_cache addr station;
  match Addr_tbl.find_opt t.pending_locates addr with
  | None -> ()
  | Some waiters ->
      List.iter (fun ch -> Channel.send ch station) !waiters;
      Addr_tbl.remove t.pending_locates addr

(* A frame arrived with flipped bits.  The byte offset of the damage
   decides which layer notices: inside the wire-header region the FLIP
   header checksum fails and the frame is dropped whole; beyond it the
   headers verify but the payload is garbage, so a Data fragment
   travels up wrapped in {!Packet.Corrupt} for the layer above to
   reject by its own checksum.  Either way nothing corrupt is ever
   interpreted as a valid message. *)
let on_corrupted t ~station ~(orig : Frame.body) ~byte =
  let c = cost t in
  match orig with
  | Data f when byte >= flip_wire_header c ->
      on_data ~corrupt:true t ~station f
  | _ ->
      (* Header damage — or a control frame, which is header-only. *)
      work t c.Cost_model.flip_rx_ns;
      t.n_corrupt_dropped <- t.n_corrupt_dropped + 1

let on_frame t (frame : Frame.t) =
  match frame.body with
  | Data f -> on_data t ~station:frame.src f
  | Whois addr -> on_whois t addr
  | Iam { addr; station } -> on_iam t ~addr ~station
  | Frame.Corrupted { orig; byte } -> on_corrupted t ~station:frame.src ~orig ~byte
  | _ -> ()

let create machine =
  let t =
    {
      machine;
      endpoints = Addr_tbl.create 8;
      group_endpoints = Addr_tbl.create 8;
      route_cache = Addr_tbl.create 32;
      pending_locates = Addr_tbl.create 8;
      partial = Hashtbl.create 32;
      next_msg_id = 0;
      n_corrupt_dropped = 0;
      n_dup_fragments = 0;
      n_invalid_fragments = 0;
    }
  in
  Nic.set_handler (Machine.nic machine) (on_frame t);
  t

let machine t = t.machine
let fresh_addr t = Addr.fresh (Engine.rng (eng t))
let register t addr handler = Addr_tbl.replace t.endpoints addr handler
let unregister t addr = Addr_tbl.remove t.endpoints addr

let register_group t addr handler =
  Addr_tbl.replace t.group_endpoints addr handler;
  Nic.join_multicast (Machine.nic t.machine) (Addr.multicast_id addr)

let unregister_group t addr =
  Addr_tbl.remove t.group_endpoints addr;
  Nic.leave_multicast (Machine.nic t.machine) (Addr.multicast_id addr)

(* Locating a unicast destination: broadcast WHOIS, wait for IAM,
   retry a bounded number of times.  Results are cached; the cache is
   invalidated by callers' higher-level timeouts simply by the entry
   being overwritten on the next successful locate. *)
let locate t addr =
  match Addr_tbl.find_opt t.route_cache addr with
  | Some station -> Some station
  | None ->
      let c = cost t in
      let ch = Channel.create () in
      let waiters =
        match Addr_tbl.find_opt t.pending_locates addr with
        | Some l -> l
        | None ->
            let l = ref [] in
            Addr_tbl.add t.pending_locates addr l;
            l
      in
      waiters := ch :: !waiters;
      let whois =
        {
          Frame.src = Machine.id t.machine;
          dest = Frame.Broadcast;
          size_on_wire = flip_wire_header c;
          body = Whois addr;
        }
      in
      let rec attempt n =
        if n > locate_retries then begin
          (match Addr_tbl.find_opt t.pending_locates addr with
          | Some l ->
              l := List.filter (fun c' -> c' != ch) !l;
              if !l = [] then Addr_tbl.remove t.pending_locates addr
          | None -> ());
          None
        end
        else begin
          work t c.Cost_model.flip_tx_ns;
          ignore (Nic.send (Machine.nic t.machine) whois);
          match Channel.recv_timeout (eng t) ch ~timeout:locate_timeout with
          | Some station -> Some station
          | None -> attempt (n + 1)
        end
      in
      attempt 1

let fragments_of t (packet : Packet.t) =
  let max_frag = max_fragment t in
  let frags = max 1 ((packet.size + max_frag - 1) / max_frag) in
  List.init frags (fun i ->
      let bytes =
        if i = frags - 1 then packet.size - ((frags - 1) * max_frag)
        else max_frag
      in
      ({ packet; msg_id = 0; frag = i; frags }, bytes))

let rec transmit_fragments ?(paced = false) t (packet : Packet.t) ~dest =
  let c = cost t in
  let msg_id = t.next_msg_id in
  t.next_msg_id <- t.next_msg_id + 1;
  if packet.size <= max_fragment t then begin
    (* Single-fragment fast path: no fragment list, no pacing. *)
    work t c.Cost_model.flip_tx_ns;
    let frame =
      {
        Frame.src = Machine.id t.machine;
        dest;
        size_on_wire = flip_wire_header c + packet.size;
        body = Data { packet; msg_id; frag = 0; frags = 1 };
      }
    in
    (Nic.send (Machine.nic t.machine) frame :> [ `Sent | `Dropped ])
  end
  else transmit_fragment_list ~paced t packet ~dest ~msg_id

and transmit_fragment_list ~paced t packet ~dest ~msg_id =
  let c = cost t in
  let outcome = ref `Sent in
  let gap = if paced then c.Cost_model.multicast_frag_gap_ns else 0 in
  List.iteri
    (fun i (frag, bytes) ->
      (* Rate pacing between multicast fragments lets the slowest
         receiver's ring drain (the paper's open flow-control problem,
         section 4). *)
      if i > 0 && gap > 0 then Engine.sleep (eng t) gap;
      work t c.Cost_model.flip_tx_ns;
      let frame =
        {
          Frame.src = Machine.id t.machine;
          dest;
          size_on_wire = flip_wire_header c + bytes;
          body = Data { frag with msg_id };
        }
      in
      match Nic.send (Machine.nic t.machine) frame with
      | `Sent -> ()
      | `Dropped -> outcome := `Dropped)
    (fragments_of t packet);
  !outcome

let send t (packet : Packet.t) =
  if Addr_tbl.mem t.endpoints packet.dst then begin
    (* Same-machine shortcut: no wire, but the layer still runs. *)
    let c = cost t in
    work t c.Cost_model.flip_tx_ns;
    work t c.Cost_model.flip_rx_ns;
    deliver_local t packet;
    `Sent
  end
  else begin
    match locate t packet.dst with
    | None -> `No_route
    | Some station ->
        (transmit_fragments t packet ~dest:(Frame.Unicast station)
          :> [ `Sent | `No_route | `Dropped ])
  end

let multicast t (packet : Packet.t) =
  transmit_fragments ~paced:true t packet
    ~dest:(Frame.Multicast (Addr.multicast_id packet.dst))

let locate_cache_size t = Addr_tbl.length t.route_cache
let corrupt_dropped t = t.n_corrupt_dropped
let dup_fragments t = t.n_dup_fragments
let invalid_fragments t = t.n_invalid_fragments
let partial_count t = Hashtbl.length t.partial

let packet_of_frame (frame : Frame.t) =
  match frame.body with Data f -> Some f.packet | _ -> None
