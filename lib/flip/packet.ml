type body = ..
type body += Empty
type body += Corrupt of body

type t = {
  src : Addr.t;
  dst : Addr.t;
  size : int;
  body : body;
}

let make ~src ~dst ~size body = { src; dst; size; body }
