(** FLIP datagrams.

    The body is an extensible variant so that the layers above (group
    communication, RPC) define their own message constructors without
    the FLIP layer depending on them.  [size] is the number of bytes
    above the FLIP header (the paper's group + user headers plus user
    data); it drives fragmentation and wire timing. *)

type body = ..

type body += Empty

type body += Corrupt of body
(** Payload damaged in flight but not caught by the FLIP header
    checksum: the datagram arrives, yet its contents are garbage.  The
    layer above must reject it by its own checksum ([Wire.decode])
    rather than interpret it. *)

type t = {
  src : Addr.t;
  dst : Addr.t;
  size : int;  (** bytes above the FLIP header *)
  body : body;
}

val make : src:Addr.t -> dst:Addr.t -> size:int -> body -> t
