(** The Amoeba group communication primitives (paper Table 1).

    {v
    CreateGroup       Create a group and join it.
    JoinGroup         Join a given group.
    LeaveGroup        Leave a given group.
    SendToGroup       Atomically send a message to a group.
    ReceiveFromGroup  Receive a message from a group.
    ResetGroup        Reform the group after a processor failure.
    GetInfoGroup      Return state information about a group.
    ForwardRequest    Forward an RPC request to another group member
                      (provided by the companion Amoeba_rpc library).
    v}

    All primitives are blocking, as in Amoeba; concurrency is obtained
    by calling them from multiple simulated threads
    ({!Amoeba_sim.Engine.spawn}). *)

open Amoeba_flip
open Types

type group

type storage = {
  mutable disk_writes_dropped : int;
      (** durable writes lost to a dead machine *)
  mutable wal_appends : int;
  mutable wal_fsyncs : int;
  mutable checkpoints_written : int;
  mutable wal_records_replayed : int;  (** during recovery *)
  mutable torn_tails_truncated : int;  (** during recovery *)
  mutable checksum_rejects : int;  (** during recovery *)
  mutable stale_reads : int;  (** reads served from the durable frontier *)
}
(** Durable-storage counters for one group member.  The kernel knows
    nothing about disks: the replication layer above
    ([Amoeba_grouplib.Rsm]) bumps them via {!storage_counters}, and
    {!get_info_group} reports them with the protocol stats. *)

type info = {
  my_mid : mid;
  sequencer : mid;
  incarnation : int;
  members : mid list;
  resilience : int;
  send_method : send_method;
  next_seq : seqno;
  nacks_sent : int;  (** repair requests this member multicast *)
  retransmissions : int;  (** repairs this member served from history *)
  status_solicitations : int;
      (** status requests multicast to unblock a full history *)
  resets_survived : int;  (** recovery incarnations installed *)
  duplicates_dropped : int;
      (** duplicated or stale frames refused by the receive paths *)
  corrupt_dropped : int;  (** checksum-rejected damaged payloads *)
  reorders_absorbed : int;  (** frames slotted despite arriving late *)
  batches_sent : int;  (** sends carrying more than one client op *)
  ops_per_batch_avg : float;
      (** mean ops per batched send; 1.0 when nothing was batched *)
  pipeline_depth_hwm : int;
      (** most unacknowledged rounds ever in flight at once *)
  disk_writes_dropped : int;
  wal_appends : int;
  wal_fsyncs : int;
  checkpoints_written : int;
  wal_records_replayed : int;
  torn_tails_truncated : int;
  checksum_rejects : int;
  stale_reads : int;
      (** the {!storage} counters at the moment of the call *)
}

val create_group :
  Flip.t ->
  ?resilience:int ->
  ?send_method:send_method ->
  ?history:int ->
  ?auto_heal:bool ->
  ?pipeline:int ->
  unit ->
  group
(** Creates a group; the creator is member 0 and its machine hosts the
    sequencer.  [resilience] is the paper's [r]: [SendToGroup] returns
    only once at least [r] other kernels hold the message, and the
    group survives any [r] simultaneous processor failures without
    losing delivered messages.  [pipeline] (default 1) is the number
    of unacknowledged sequencer rounds this member may keep in flight;
    1 is the paper's lock-step behaviour. *)

val group_address : group -> Addr.t
(** The group's FLIP address — the "port" a joiner needs.  Distributed
    out of band (in Amoeba, as a capability via the directory
    service). *)

val join_group :
  Flip.t ->
  ?resilience:int ->
  ?send_method:send_method ->
  ?history:int ->
  ?auto_heal:bool ->
  ?pipeline:int ->
  Addr.t ->
  (group, error) result

val leave_group : group -> (unit, error) result

val send_to_group :
  ?copy:bool -> ?ops:int -> group -> bytes -> (seqno, error) result
(** [copy] (default true) mirrors Amoeba's user→kernel copy: the
    message is taken at call time so the caller may reuse its buffer.
    Library layers that frame into a fresh buffer per send pass
    [~copy:false] to hand the buffer over and skip the allocation.
    [ops] (default 1) declares how many client operations the body
    carries so the simulation charges a batched message its real
    per-op wire bytes and CPU; the payload itself stays opaque. *)

val receive_from_group : group -> event
(** Blocks until the next totally-ordered event (message, membership
    change or reset notice). *)

val receive_opt : group -> event option
(** Non-blocking variant. *)

val reset_group : group -> min_members:int -> (int, error) result

val get_info_group : group -> info

val storage_counters : group -> storage
(** The mutable durable-storage counter block, for the replication
    layer to account its disk traffic against. *)

val kernel : group -> Kernel.t
(** Escape hatch for tests and benchmarks. *)
