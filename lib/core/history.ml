open Types

type entry = {
  seq : seqno;
  sender : mid;
  msgid : int;
  ops : int;
  payload : payload;
}

(* The window [low, high] is always contiguous (add only accepts
   [high + 1]; add_evicting restarts the window otherwise), so a ring
   indexed by [seq land mask] gives O(1) add/find/prune with no
   per-entry allocation.  Cleared cells are overwritten with [dummy]
   so evicted payloads become collectable. *)

let dummy =
  { seq = -1; sender = -1; msgid = -1; ops = 1; payload = User Bytes.empty }

type t = {
  cap : int;
  mask : int;  (* ring size - 1; ring size = power of two >= cap *)
  ring : entry array;
  mutable low : seqno;  (** lowest buffered seq; [high + 1] when empty *)
  mutable high : seqno;  (** highest buffered seq; [low - 1] when empty *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "History.create: capacity must be positive";
  let n = ref 1 in
  while !n < capacity do
    n := !n * 2
  done;
  { cap = capacity; mask = !n - 1; ring = Array.make !n dummy; low = 0; high = -1 }

let capacity t = t.cap
let length t = t.high - t.low + 1
let is_empty t = length t = 0
let is_full t = length t >= t.cap
let lo t = t.low
let hi t = t.high

let add t entry =
  if is_full t then Error `Full
  else if (not (is_empty t)) && entry.seq <> t.high + 1 then Error `Out_of_order
  else begin
    if is_empty t then t.low <- entry.seq;
    t.high <- entry.seq;
    t.ring.(entry.seq land t.mask) <- entry;
    Ok ()
  end

let drop_lowest t =
  t.ring.(t.low land t.mask) <- dummy;
  t.low <- t.low + 1

let add_evicting t entry =
  if is_full t then drop_lowest t;
  match add t entry with
  | Ok () -> ()
  | Error `Full -> assert false
  | Error `Out_of_order ->
      (* A member that skipped ahead (e.g. fresh joiner) restarts its
         window at the new sequence number. *)
      for seq = t.low to t.high do
        t.ring.(seq land t.mask) <- dummy
      done;
      t.low <- entry.seq;
      t.high <- entry.seq;
      t.ring.(entry.seq land t.mask) <- entry

let find t seq =
  if seq >= t.low && seq <= t.high then Some t.ring.(seq land t.mask) else None

let prune_below t bound =
  while (not (is_empty t)) && t.low < bound do
    drop_lowest t
  done

let range t ~lo ~hi =
  let lo = if lo < t.low then t.low else lo in
  let hi = if hi > t.high then t.high else hi in
  let rec collect seq acc =
    if seq < lo then acc
    else collect (seq - 1) (t.ring.(seq land t.mask) :: acc)
  in
  collect hi []
