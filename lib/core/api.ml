open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Types

(* Per-group durable-storage counters.  The kernel knows nothing about
   disks; the storage layer above (Amoeba_grouplib.Rsm over
   Stable_store) bumps these so GetInfoGroup can report them alongside
   the protocol stats. *)
type storage = {
  mutable disk_writes_dropped : int;
  mutable wal_appends : int;
  mutable wal_fsyncs : int;
  mutable checkpoints_written : int;
  mutable wal_records_replayed : int;
  mutable torn_tails_truncated : int;
  mutable checksum_rejects : int;
  mutable stale_reads : int;
}

type group = {
  k : Kernel.t;
  machine : Machine.t;
  engine : Engine.t;
  cost : Cost_model.t;
  storage : storage;
}

type info = {
  my_mid : mid;
  sequencer : mid;
  incarnation : int;
  members : mid list;
  resilience : int;
  send_method : send_method;
  next_seq : seqno;
  nacks_sent : int;
  retransmissions : int;
  status_solicitations : int;
  resets_survived : int;
  duplicates_dropped : int;
  corrupt_dropped : int;
  reorders_absorbed : int;
  batches_sent : int;
  ops_per_batch_avg : float;
  pipeline_depth_hwm : int;
  disk_writes_dropped : int;
  wal_appends : int;
  wal_fsyncs : int;
  checkpoints_written : int;
  wal_records_replayed : int;
  torn_tails_truncated : int;
  checksum_rejects : int;
  stale_reads : int;
}

let wrap flip k =
  let machine = Flip.machine flip in
  {
    k;
    machine;
    engine = Machine.engine machine;
    cost = Machine.cost machine;
    storage =
      {
        disk_writes_dropped = 0;
        wal_appends = 0;
        wal_fsyncs = 0;
        checkpoints_written = 0;
        wal_records_replayed = 0;
        torn_tails_truncated = 0;
        checksum_rejects = 0;
        stale_reads = 0;
      };
  }

let config ~resilience ~send_method ~history ~auto_heal ~pipeline =
  {
    Kernel.resilience;
    method_ = send_method;
    history_capacity =
      (match history with Some h -> h | None -> Cost_model.default.history_buffer);
    auto_heal;
    pipeline_depth = pipeline;
  }

let create_group flip ?(resilience = 0) ?(send_method = Pb) ?history
    ?(auto_heal = false) ?(pipeline = 1) () =
  let cfg = config ~resilience ~send_method ~history ~auto_heal ~pipeline in
  wrap flip (Kernel.create_group flip ~config:cfg ())

let group_address g = Kernel.group_addr g.k

let join_group flip ?(resilience = 0) ?(send_method = Pb) ?history
    ?(auto_heal = false) ?(pipeline = 1) addr =
  let cfg = config ~resilience ~send_method ~history ~auto_heal ~pipeline in
  match Kernel.join_group flip ~config:cfg ~group_addr:addr () with
  | Ok k -> Ok (wrap flip k)
  | Error e -> Error e

let leave_group g = Kernel.leave g.k

(* The user-layer cost on either side of a primitive is dominated by
   the thread context switch (paper Figure 2 / Table 3). *)
let user_cost g = Machine.work g.machine ~layer:"user" g.cost.context_switch_ns

let send_to_group ?(copy = true) ?(ops = 1) g body =
  user_cost g;
  (* The message is taken at call time: the caller may reuse its
     buffer immediately (Amoeba copies into the kernel too).  A caller
     that hands over a buffer it will never touch again passes
     [~copy:false] and saves the allocation; zero-length bodies have
     nothing to alias and are never copied. *)
  let owned = if copy && Bytes.length body > 0 then Bytes.copy body else body in
  let result = Kernel.send ~ops g.k owned in
  (* Waking the blocked sending thread costs a second switch. *)
  user_cost g;
  result

let receive_from_group g =
  let ev = Channel.recv g.engine (Kernel.events g.k) in
  user_cost g;
  ev

let receive_opt g =
  match Channel.try_recv (Kernel.events g.k) with
  | Some ev ->
      user_cost g;
      Some ev
  | None -> None

let reset_group g ~min_members = Kernel.reset g.k ~min_members

let get_info_group g =
  {
    my_mid = Kernel.my_mid g.k;
    sequencer = Kernel.sequencer_mid g.k;
    incarnation = Kernel.incarnation g.k;
    members = List.map fst (Kernel.member_list g.k);
    resilience = (Kernel.config g.k).Kernel.resilience;
    send_method = (Kernel.config g.k).Kernel.method_;
    next_seq = Kernel.next_expected g.k;
    nacks_sent = (Kernel.stats g.k).Kernel.nacks_sent;
    retransmissions = (Kernel.stats g.k).Kernel.retransmissions;
    status_solicitations = (Kernel.stats g.k).Kernel.status_solicitations;
    resets_survived = (Kernel.stats g.k).Kernel.resets_survived;
    duplicates_dropped = (Kernel.stats g.k).Kernel.duplicates_dropped;
    corrupt_dropped = (Kernel.stats g.k).Kernel.corrupt_dropped;
    reorders_absorbed = (Kernel.stats g.k).Kernel.reorders_absorbed;
    batches_sent = (Kernel.stats g.k).Kernel.batches_sent;
    ops_per_batch_avg =
      (let st = Kernel.stats g.k in
       if st.Kernel.batches_sent = 0 then 1.
       else float_of_int st.Kernel.batched_ops /. float_of_int st.Kernel.batches_sent);
    pipeline_depth_hwm = (Kernel.stats g.k).Kernel.pipeline_depth_hwm;
    disk_writes_dropped = g.storage.disk_writes_dropped;
    wal_appends = g.storage.wal_appends;
    wal_fsyncs = g.storage.wal_fsyncs;
    checkpoints_written = g.storage.checkpoints_written;
    wal_records_replayed = g.storage.wal_records_replayed;
    torn_tails_truncated = g.storage.torn_tails_truncated;
    checksum_rejects = g.storage.checksum_rejects;
    stale_reads = g.storage.stale_reads;
  }

let storage_counters g = g.storage
let kernel g = g.k
