open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Types

type config = {
  resilience : int;
  method_ : send_method;
  history_capacity : int;
  auto_heal : bool;
  pipeline_depth : int;
}

let default_config =
  {
    resilience = 0;
    method_ = Pb;
    history_capacity = 128;
    auto_heal = false;
    pipeline_depth = 1;
  }

type stats = {
  mutable delivered : int;
  mutable sends_completed : int;
  mutable nacks_sent : int;
  mutable retransmissions : int;
  mutable duplicates_dropped : int;
  mutable acks_collected : int;
  mutable status_solicitations : int;
  mutable resets_survived : int;
  mutable corrupt_dropped : int;
      (** packets whose group-header checksum rejected damaged payload *)
  mutable reorders_absorbed : int;
      (** data frames that arrived behind a higher sequence number and
          were slotted into the window instead of being refused *)
  mutable batches_sent : int;
      (** sends that carried more than one client op *)
  mutable batched_ops : int;  (** total ops across those batched sends *)
  mutable pipeline_depth_hwm : int;
      (** most unacknowledged rounds this member ever had in flight *)
}

type pending_send = {
  mutable p_msgid : int;  (** assigned by the kernel process *)
  p_body : bytes;
  p_ops : int;  (** client ops carried (1 unless the caller batched) *)
  p_result : (seqno, error) result Ivar.t;
  mutable p_tries : int;
  mutable p_timer : Engine.handle option;  (** armed retransmission timer *)
}

(* A member-side slot: a sequence number we know about but have not
   delivered yet.  Complete (payload present and accepted) slots are
   delivered in contiguous seq order. *)
type slot = {
  mutable s_data : (mid * int * int * payload) option;
      (** sender, msgid, ops, payload *)
  mutable s_accepted : bool;
}

(* A sequenced message at the sequencer that is not yet stable: either
   awaiting resilience acknowledgements, or stable by itself but
   blocked behind an earlier tentative (history is appended in seq
   order). *)
type tent = {
  t_entry : History.entry;
  t_needs_accept : bool;
  mutable t_wait : mid list;  (** ackers still awaited *)
  mutable t_accepted : bool;
}

type seq_state = {
  mutable next_seq : seqno;
  mutable stable_frontier : seqno;  (** next seq to append to history *)
  mutable acks : seqno array;
      (** piggybacked, mid-indexed: member -> last seq held; -1 = none.
          Entries for departed members go stale but are never read:
          pruning folds over the current membership only. *)
  mutable dedup_msgid : int array;  (** mid-indexed: sender -> last msgid; -1 = none *)
  mutable dedup_seq : seqno array;  (** seq assigned to that msgid *)
  tents : (seqno, tent) Hashtbl.t;
  parked : Wire.msg Queue.t;  (** requests waiting for history space *)
  mutable soliciting : bool;
  mutable next_mid : mid;
  mutable pending_joins : (Addr.t * mid) list;  (** sequenced, undelivered *)
}

type reset_phase =
  | Collect
  | Fetching of { holder : Addr.t; upto : seqno }
  | Adopting  (** superseded by a higher-precedence coordinator *)

type reset_run = {
  r_inc : int;
  r_min : int;
  r_result : (int, error) result Ivar.t;
  mutable r_await : (mid * Addr.t) list;
  mutable r_acked : (mid * Addr.t * seqno * int * seqno) list;
      (** (mid, addr, last_stable, installed incarnation, seq where
          that incarnation began); excludes self *)
  mutable r_tries : int;
  mutable r_rounds : int;
  mutable r_phase : reset_phase;
  mutable r_seq : int;  (** tick epoch: stale ticks are ignored *)
}

type life = Joining | Normal | Frozen | Left | Expelled

type input =
  | Net of Wire.msg * Addr.t  (** message and source kernel address *)
  | Do_send of pending_send
  | Do_leave of (unit, error) result Ivar.t
  | Do_reset of { min_members : int; result : (int, error) result Ivar.t }
  | Resend_tick of int  (** msgid the timer was armed for *)
  | Repair_tick
  | Solicit_tick
  | Reset_tick of int  (** epoch *)
  | Frozen_tick of int  (** incarnation we froze for *)
  | Heal_tick  (** auto-heal heartbeat *)
  | Leave_tick of int  (** retries used *)

type t = {
  flip : Flip.t;
  machine : Machine.t;
  engine : Engine.t;
  k_group : Engine.group;
      (** the machine's lifecycle group at kernel creation; the kernel
          loop and every armed timer go through it, so a crash cancels
          them all.  Operations like [create_group]/[join_group] run in
          the caller's fiber (often the orchestrator's group), which is
          why arming passes the group explicitly instead of relying on
          inheritance. *)
  cost : Cost_model.t;
  cfg : config;
  gaddr : Addr.t;
  kaddr : Addr.t;
  inbox : input Channel.t;
  event_out : event Channel.t;
  st : stats;
  mutable life : life;
  mutable inc : int;
  mutable members : (mid * Addr.t) list;  (** sorted by mid *)
  mutable member_addrs : Addr.t option array;
      (** mid-indexed view of [members]; rebuilt by [set_members] *)
  mutable member_count : int;
  mutable member_mids : mid list;  (** [List.map fst members], cached *)
  mutable mid : mid;
  mutable seq_mid : mid;
  mutable nxt : seqno;  (** next sequence number to deliver *)
  mutable max_seen : seqno;  (** highest seq heard of *)
  history : History.t;
  slots : slot Window.t;
  bb_wait : (int, int * payload) Hashtbl.t;
      (** (ops, payload) keyed by [bb_key ~sender ~msgid] *)
  mutable last_msgid : int array;
      (** mid-indexed delivery dedup across recoveries; [min_int] = none *)
  mutable status_req : int * Wire.msg;  (** interned per incarnation *)
  mutable msgid_counter : int;
  mutable inflight : pending_send list;
      (** unacknowledged rounds, oldest first; at most
          [cfg.pipeline_depth] long.  A list, not a queue: an older
          round can error out while a newer one completes, so removal
          happens anywhere *)
  send_queue : pending_send Queue.t;
  mutable seqs : seq_state option;
  mutable repair_armed : bool;
  mutable repair_mark : seqno;
      (** delivery frontier when the repair timer was armed: a nack is
          sent only if no progress happened in a full period, so a
          merely-loaded group does not nack itself into a
          retransmission storm *)
  mutable join_replies : Wire.msg Channel.t;  (** used only while joining *)
  mutable run : reset_run option;
  mutable frozen_inc : int;  (** highest incarnation we acked an invite for *)
  mutable inc_seq : seqno;
      (** stream position where the current incarnation began: sequence
          numbers from older incarnations are comparable only below it *)
  mutable frozen_failover : bool;
      (** a frozen-grace timeout already escalated to a recovery run of
          our own; the next timeout makes the expulsion final *)
  mutable pending_leave : (unit, error) result Ivar.t option;
  mutable heal_waiting : int option;  (** nonce of an unanswered ping *)
  mutable heal_misses : int;
  mutable heal_nonce : int;
  mutable heal_frontier : seqno;
      (** sequencer-side heal: stable frontier seen at the last tick.
          Tentatives stuck awaiting accepts while this stands still
          mean an acker died — a plain member's silence is invisible
          to the ping path, which only watches the sequencer. *)
  mutable reset_epoch : int;
      (** tick-stamp generator for this kernel's reset runs.  Per
          kernel, not process-global: epochs must never leak between
          engines (multi-cluster runs, test ordering), or a stale tick
          from one simulation could match a run in another. *)
}

let new_stats () =
  {
    delivered = 0;
    sends_completed = 0;
    nacks_sent = 0;
    retransmissions = 0;
    duplicates_dropped = 0;
    acks_collected = 0;
    status_solicitations = 0;
    resets_survived = 0;
    corrupt_dropped = 0;
    reorders_absorbed = 0;
    batches_sent = 0;
    batched_ops = 0;
    pipeline_depth_hwm = 0;
  }

(* ----- small helpers ----- *)

let addr_of t m =
  if m >= 0 && m < Array.length t.member_addrs then t.member_addrs.(m)
  else None

let member_mids t = t.member_mids

(* Every membership change goes through here so the mid-indexed
   lookup caches stay in sync with the assoc list. *)
let set_members t ms =
  t.members <- ms;
  let maxm = List.fold_left (fun acc (m, _) -> if m > acc then m else acc) (-1) ms in
  let arr = Array.make (maxm + 1) None in
  List.iter (fun (m, a) -> arr.(m) <- Some a) ms;
  t.member_addrs <- arr;
  t.member_count <- List.length ms;
  t.member_mids <- List.map fst ms

(* mids stay below 2^20 (see [era_bits]); msgids count messages.  The
   packed key fits easily and avoids a tuple allocation per lookup. *)
let bb_key ~sender ~msgid = (sender lsl 40) lxor msgid

let last_msgid_of t m =
  if m >= 0 && m < Array.length t.last_msgid then t.last_msgid.(m)
  else min_int

let note_msgid t m v =
  let n = Array.length t.last_msgid in
  if m >= n then begin
    let arr = Array.make (max (m + 1) (2 * max n 8)) min_int in
    Array.blit t.last_msgid 0 arr 0 n;
    t.last_msgid <- arr
  end;
  if v > t.last_msgid.(m) then t.last_msgid.(m) <- v

let ack_get s m = if m >= 0 && m < Array.length s.acks then s.acks.(m) else -1

(* Acknowledgements are monotone, so a max-set is equivalent to the
   per-site replace/max dance the Hashtbl version did. *)
let ack_set s m v =
  let n = Array.length s.acks in
  if m >= n then begin
    let arr = Array.make (max (m + 1) (2 * max n 8)) (-1) in
    Array.blit s.acks 0 arr 0 n;
    s.acks <- arr
  end;
  if v > s.acks.(m) then s.acks.(m) <- v

let dedup_set s m ~msgid ~seq =
  let n = Array.length s.dedup_msgid in
  if m >= n then begin
    let size = max (m + 1) (2 * max n 8) in
    let dm = Array.make size (-1) in
    let ds = Array.make size (-1) in
    Array.blit s.dedup_msgid 0 dm 0 n;
    Array.blit s.dedup_seq 0 ds 0 n;
    s.dedup_msgid <- dm;
    s.dedup_seq <- ds
  end;
  s.dedup_msgid.(m) <- msgid;
  s.dedup_seq.(m) <- seq

let charge t d = Machine.work t.machine ~layer:"group" d

(* The fixed protocol cost is per message; a batched message pays only
   the marginal per-op cost for each op past the first.  At [ops = 1]
   both reduce to exactly the unbatched charge. *)
let charge_seq ?(ops = 1) t =
  charge t
    (t.cost.group_seq_ns
    + (t.member_count * t.cost.group_seq_member_ns)
    + ((ops - 1) * t.cost.group_seq_op_ns))

let charge_deliver ?(ops = 1) t =
  charge t (t.cost.group_deliver_ns + ((ops - 1) * t.cost.group_deliver_op_ns))

(* The solicit message carries only the incarnation: intern it. *)
let status_req t =
  let inc, msg = t.status_req in
  if inc = t.inc then msg
  else begin
    let msg = Wire.Status_req { inc = t.inc } in
    t.status_req <- (t.inc, msg);
    msg
  end

let post_event t ev =
  Channel.send t.event_out ev;
  t.st.delivered <- t.st.delivered + 1

(* All wire output goes through these; FLIP and NIC charge their own
   costs.  Results are ignored: reliability comes from the protocol's
   own timers, exactly as in the paper. *)
let unicast t ~dst msg =
  let size = Wire.size t.cost msg in
  ignore (Flip.send t.flip (Packet.make ~src:t.kaddr ~dst ~size (Wire.Group msg)))

let unicast_mid t ~mid msg =
  match addr_of t mid with Some a -> unicast t ~dst:a msg | None -> ()

let multicast t msg =
  let size = Wire.size t.cost msg in
  ignore
    (Flip.multicast t.flip
       (Packet.make ~src:t.kaddr ~dst:t.gaddr ~size (Wire.Group msg)))

(* The r lowest-numbered members besides the sender acknowledge a
   tentative broadcast (paper section 3.1). *)
let ackers t ~sender =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | m :: rest -> if m = sender then take n rest else m :: take (n - 1) rest
  in
  take t.cfg.resilience (member_mids t)

(* ----- in-flight sends ----- *)

let inflight_find t msgid =
  List.find_opt (fun p -> p.p_msgid = msgid) t.inflight

let inflight_remove t p =
  t.inflight <- List.filter (fun q -> not (q == p)) t.inflight

(* Abort every in-flight round at once — expulsion and similar
   terminal transitions, where no round can ever complete. *)
let abort_inflight t =
  let ps = t.inflight in
  t.inflight <- [];
  List.iter
    (fun p ->
      (match p.p_timer with Some h -> Engine.cancel h | None -> ());
      p.p_timer <- None;
      ignore (Ivar.try_fill p.p_result (Error Send_aborted)))
    ps

(* ----- timers ----- *)

(* +/-20% on retransmission timers: synchronized timeouts across many
   senders cause retry storms that feed on themselves. *)
let timer_jitter t d =
  let spread = d / 5 in
  d - (spread / 2) + Random.State.int (Engine.rng t.engine) (max 1 spread)

(* All tick arming goes through the kernel's lifecycle group: these
   helpers are also reached from fibers of other groups (create_group /
   join_group run in the caller's fiber), and a timer that outlives its
   machine's crash would be a zombie. *)

let arm_resend t ~msgid =
  Engine.schedule ~group:t.k_group t.engine
    ~after:(timer_jitter t t.cost.retrans_timeout_ns)
    (fun () -> Channel.send t.inbox (Resend_tick msgid))

let arm_repair t =
  if not t.repair_armed then begin
    t.repair_armed <- true;
    t.repair_mark <- t.nxt;
    ignore
      (Engine.schedule ~group:t.k_group t.engine
         ~after:(timer_jitter t t.cost.nack_timeout_ns)
         (fun () -> Channel.send t.inbox Repair_tick))
  end

let arm_solicit t =
  ignore
    (Engine.schedule ~group:t.k_group t.engine ~after:t.cost.nack_timeout_ns
       (fun () -> Channel.send t.inbox Solicit_tick))

let arm_leave_retry t ~tries =
  ignore
    (Engine.schedule ~group:t.k_group t.engine
       ~after:(timer_jitter t t.cost.retrans_timeout_ns)
       (fun () -> Channel.send t.inbox (Leave_tick tries)))

let arm_heal t =
  if t.cfg.auto_heal then
    ignore
      (Engine.schedule ~group:t.k_group t.engine
         ~after:(timer_jitter t (2 * t.cost.probe_timeout_ns))
         (fun () -> Channel.send t.inbox Heal_tick))

let arm_reset_tick t epoch ~after =
  ignore
    (Engine.schedule ~group:t.k_group t.engine ~after:(timer_jitter t after)
       (fun () -> Channel.send t.inbox (Reset_tick epoch)))

(* ----- negative acknowledgements (member side) ----- *)

let send_nack t =
  match addr_of t t.seq_mid with
  | None -> ()
  | Some seq_addr ->
      t.st.nacks_sent <- t.st.nacks_sent + 1;
      unicast t ~dst:seq_addr
        (Wire.Nack { from = t.mid; expected = t.nxt; piggy = t.nxt - 1; inc = t.inc })

(* A hard gap — the data for the next sequence number is missing — is
   nacked immediately (paper: "as soon as it discovers that it has
   missed a message").  A tentative that merely awaits its accept is
   NOT a gap: the accept is on its way in the failure-free case, and
   the repair timer covers the case where it was lost. *)
let hard_gap t =
  t.max_seen >= t.nxt
  &&
  match Window.find t.slots t.nxt with
  | Some s -> s.s_data = None
  | None -> true

let awaiting_accept t =
  match Window.find t.slots t.nxt with
  | Some s -> s.s_data <> None && not s.s_accepted
  | None -> false

let gap_present t = hard_gap t || awaiting_accept t

(* ----- delivery (member side) ----- *)

let duplicate_user_message t ~sender ~msgid payload =
  match payload with
  | Ctrl _ -> false
  | User _ -> msgid <= last_msgid_of t sender

let rec become_sequencer t ~first_seq =
  let next_mid =
    1 + List.fold_left (fun acc (m, _) -> max acc m) (-1) t.members
  in
  t.seqs <-
    Some
      {
        next_seq = first_seq;
        stable_frontier = first_seq;
        acks = Array.make (max next_mid 8) (-1);
        dedup_msgid = Array.make (max next_mid 8) (-1);
        dedup_seq = Array.make (max next_mid 8) (-1);
        tents = Hashtbl.create 8;
        parked = Queue.create ();
        soliciting = false;
        next_mid;
        pending_joins = [];
      };
  t.seq_mid <- t.mid;
  (* Fresh acknowledgement state: ask everyone where they stand so the
     history can be pruned again. *)
  if t.member_count > 1 then begin
    t.st.status_solicitations <- t.st.status_solicitations + 1;
    multicast t (status_req t)
  end

and deliver_entry t (e : History.entry) =
  let dup = duplicate_user_message t ~sender:e.sender ~msgid:e.msgid e.payload in
  if dup then t.st.duplicates_dropped <- t.st.duplicates_dropped + 1;
  (match e.payload with
  | User _ -> note_msgid t e.sender e.msgid
  | Ctrl _ -> ());
  (* The sequencer's history is managed strictly (appended at
     stabilisation, pruned by acknowledgements); only a plain member
     records deliveries in its evicting window here. *)
  (match t.seqs with
  | Some s ->
      t.nxt <- e.seq + 1;
      ack_set s t.mid e.seq
  | None ->
      History.add_evicting t.history e;
      t.nxt <- e.seq + 1);
  (* Application-visible effect *)
  (match e.payload with
  | User body when not dup ->
      (* Hand the application its own copy: the original stays in the
         history buffer for retransmissions. *)
      post_event t
        (Message { seq = e.seq; sender = e.sender; body = Bytes.copy body })
  | User _ -> ()
  | Ctrl c -> deliver_control t e.seq c);
  (* Completing our own send *)
  match (if e.sender = t.mid then inflight_find t e.msgid else None) with
  | Some p ->
      inflight_remove t p;
      (* The retransmission timer can never usefully fire now; drop it
         so the event queue is not churning through stale ticks. *)
      (match p.p_timer with Some h -> Engine.cancel h | None -> ());
      p.p_timer <- None;
      t.st.sends_completed <- t.st.sends_completed + 1;
      ignore (Ivar.try_fill p.p_result (Ok e.seq));
      next_queued_send t
  | None -> ()

and deliver_control t seq c =
  match c with
  | Join { mid; kaddr } ->
      if not (List.mem_assoc mid t.members) then
        set_members t (List.sort compare ((mid, kaddr) :: t.members));
      (match t.seqs with
      | Some s ->
          ack_set s mid seq;
          s.pending_joins <-
            List.filter (fun (a, _) -> not (Addr.equal a kaddr)) s.pending_joins;
          (* The joiner learns its identity from this reply; its join
             becomes visible to everyone at the same point in the
             stream. *)
          unicast t ~dst:kaddr
            (Wire.Join_reply
               {
                 mid;
                 inc = t.inc;
                 next_seq = seq + 1;
                 members = t.members;
                 seq_mid = t.seq_mid;
               })
      | None -> ());
      if mid <> t.mid then post_event t (Member_joined { seq; mid })
  | Leave { mid } ->
      set_members t (List.remove_assoc mid t.members);
      (match t.seqs with
      | Some s ->
          (* A departed member can no longer acknowledge: release any
             tentative that was waiting on it, or resilient sends in
             flight during the leave would stall forever. *)
          let release =
            Hashtbl.fold
              (fun seq tent acc ->
                if List.mem mid tent.t_wait then begin
                  tent.t_wait <- List.filter (fun m -> m <> mid) tent.t_wait;
                  if tent.t_wait = [] && not tent.t_accepted then seq :: acc
                  else acc
                end
                else acc)
              s.tents []
          in
          List.iter (fun seq -> seq_make_stable t s seq) release
      | None -> ());
      if mid = t.mid then begin
        t.life <- Left;
        match t.pending_leave with
        | Some iv ->
            t.pending_leave <- None;
            ignore (Ivar.try_fill iv (Ok ()))
        | None -> ()
      end
      else begin
        post_event t (Member_left { seq; mid });
        if mid = t.seq_mid then begin
          (* Sequencer handover: duty passes deterministically to the
             lowest-numbered survivor at this point of the stream. *)
          match member_mids t with
          | [] -> ()
          | lowest :: _ ->
              t.seq_mid <- lowest;
              if lowest = t.mid && t.seqs = None then
                become_sequencer t ~first_seq:(seq + 1)
        end
      end
  | Reset { incarnation; members } ->
      if incarnation > t.inc && not (List.mem t.mid members) then begin
        (* Replaying a reset we were not part of, whose configuration
           dropped us: our identity died at this point of the stream
           (and the mid may already belong to a later joiner), so any
           recovery we are running with it is void.  Stop here rather
           than deliver the successor's stream as a ghost. *)
        t.life <- Expelled;
        t.frozen_inc <- max t.frozen_inc incarnation;
        post_event t Expelled;
        (match t.run with
        | Some run ->
            ignore (Ivar.try_fill run.r_result (Error Not_enough_members));
            t.run <- None
        | None -> ());
        abort_inflight t
      end
      else post_event t (Group_reset { seq; incarnation; members })

and drain t =
  if t.life = Normal || t.life = Frozen then begin
    match Window.find t.slots t.nxt with
    | Some s when s.s_accepted -> (
        match s.s_data with
        | Some (sender, msgid, ops, payload) ->
            Window.remove t.slots t.nxt;
            deliver_entry t { seq = t.nxt; sender; msgid; ops; payload };
            drain t
        | None -> ())
    | Some _ | None -> ()
  end

and next_queued_send t =
  while
    List.length t.inflight < t.cfg.pipeline_depth
    && not (Queue.is_empty t.send_queue)
  do
    start_send t (Queue.pop t.send_queue)
  done

(* ----- send path ----- *)

and start_send t p =
  t.msgid_counter <- t.msgid_counter + 1;
  p.p_msgid <- t.msgid_counter;
  t.inflight <- t.inflight @ [ p ];
  let depth = List.length t.inflight in
  if depth > t.st.pipeline_depth_hwm then t.st.pipeline_depth_hwm <- depth;
  if p.p_ops > 1 then begin
    t.st.batches_sent <- t.st.batches_sent + 1;
    t.st.batched_ops <- t.st.batched_ops + p.p_ops
  end;
  charge t t.cost.group_send_ns;
  submit_send t p;
  (* Armed even if the submit completed synchronously (co-located
     sequencer): the tick finds no matching in-flight round and is a
     no-op, and arming unconditionally keeps the timer-jitter RNG
     stream identical to the lock-step path. *)
  p.p_timer <- Some (arm_resend t ~msgid:p.p_msgid)

and submit_send t p =
  (* Frozen means mid-recovery: our last_stable is (being) reported to
     a coordinator, so nothing new may enter the old incarnation — a
     frozen co-located sequencer would otherwise self-assign sequence
     numbers the reset is about to hand out again.  The send stays
     pending; the resend timer holds it and the new configuration
     resubmits it (or expulsion aborts it). *)
  if t.life = Frozen then ()
  else
  let payload = User p.p_body in
  match t.seqs with
  | Some _ ->
      (* A sender co-located with the sequencer sequences directly:
         this is why the paper recommends placing the busiest sender
         on the sequencer's machine. *)
      sequencer_accept t ~sender:t.mid ~msgid:p.p_msgid ~piggy:(t.nxt - 1)
        ~ops:p.p_ops payload
  | None -> (
      let use_bb =
        match t.cfg.method_ with
        | Pb -> false
        | Bb -> t.cfg.resilience = 0
        | Auto ->
            t.cfg.resilience = 0 && Bytes.length p.p_body >= t.cost.bb_threshold_bytes
      in
      if use_bb then
        multicast t
          (Wire.Bb_data
             {
               sender = t.mid;
               msgid = p.p_msgid;
               piggy = t.nxt - 1;
               inc = t.inc;
               ops = p.p_ops;
               payload;
             })
      else
        match addr_of t t.seq_mid with
        | Some seq_addr ->
            unicast t ~dst:seq_addr
              (Wire.Req
                 {
                   sender = t.mid;
                   msgid = p.p_msgid;
                   piggy = t.nxt - 1;
                   inc = t.inc;
                   ops = p.p_ops;
                   payload;
                 })
        | None -> ())

(* ----- sequencer side ----- *)

and seq_find_entry s seq =
  match Hashtbl.find_opt s.tents seq with
  | Some tent -> Some (tent.t_entry, tent.t_needs_accept && not tent.t_accepted)
  | None -> None

and seq_space_available t s =
  (not (History.is_full t.history)) && Hashtbl.length s.tents < t.cfg.history_capacity

and seq_prune t s =
  let min_ack =
    List.fold_left (fun acc (m, _) -> min acc (ack_get s m)) max_int t.members
  in
  if min_ack >= 0 && min_ack < max_int then History.prune_below t.history (min_ack + 1);
  (* Freed space lets parked requests through. *)
  while (not (Queue.is_empty s.parked)) && seq_space_available t s do
    let msg = Queue.pop s.parked in
    handle_at_sequencer t s msg
  done

and seq_make_stable t s seq =
  match Hashtbl.find_opt s.tents seq with
  | None -> ()
  | Some tent ->
      tent.t_accepted <- true;
      if tent.t_needs_accept then
        multicast t
          (Wire.Accept
             {
               seq;
               sender = tent.t_entry.sender;
               msgid = tent.t_entry.msgid;
               inc = t.inc;
             });
      (* Append to history in seq order only. *)
      let rec advance () =
        match Hashtbl.find_opt s.tents s.stable_frontier with
        | Some tn when tn.t_accepted ->
            Hashtbl.remove s.tents s.stable_frontier;
            (match History.add t.history tn.t_entry with
            | Ok () -> ()
            | Error _ ->
                (* Space was checked at sequencing time; the entry may
                   also already be present via local delivery. *)
                ());
            s.stable_frontier <- s.stable_frontier + 1;
            advance ()
        | Some _ | None -> ()
      in
      advance ();
      (* Local member view: the accept applies to us too. *)
      (match Window.find t.slots seq with
      | Some slot -> slot.s_accepted <- true
      | None -> ());
      drain t

(* Accept a new message for sequencing: assign the next sequence
   number and multicast it (PB: full data; BB: the short accept). *)
and sequencer_accept ?(via_bb = false) ?(ops = 1) t ~sender ~msgid ~piggy
    payload =
  match t.seqs with
  | None -> ()
  | Some s -> (
      ack_set s sender piggy;
      seq_prune t s;
      let last_msgid =
        if sender >= 0 && sender < Array.length s.dedup_msgid then
          s.dedup_msgid.(sender)
        else -1
      in
      match () with
      | () when last_msgid = msgid ->
          (* Duplicate request: the sender missed our multicast. *)
          let sq = s.dedup_seq.(sender) in
          t.st.duplicates_dropped <- t.st.duplicates_dropped + 1;
          (match seq_find_entry s sq with
          | Some (e, needs_accept) ->
              unicast_mid t ~mid:sender
                (Wire.Data
                   {
                     seq = e.seq;
                     sender = e.sender;
                     msgid = e.msgid;
                     inc = t.inc;
                     ops = e.ops;
                     payload = e.payload;
                     needs_accept;
                   })
          | None -> (
              match History.find t.history sq with
              | Some e ->
                  unicast_mid t ~mid:sender
                    (Wire.Data
                       {
                         seq = e.seq;
                         sender = e.sender;
                         msgid = e.msgid;
                         inc = t.inc;
                         ops = e.ops;
                         payload = e.payload;
                         needs_accept = false;
                       })
              | None -> ()))
      | () when msgid < last_msgid ->
          t.st.duplicates_dropped <- t.st.duplicates_dropped + 1
      | () ->
          if not (seq_space_available t s) then begin
            (* History full: park the request and solicit member
               status so pruning can make room. *)
            Queue.push
              (Wire.Req { sender; msgid; piggy; inc = t.inc; ops; payload })
              s.parked;
            if not s.soliciting then begin
              s.soliciting <- true;
              t.st.status_solicitations <- t.st.status_solicitations + 1;
              multicast t (status_req t);
              arm_solicit t
            end
          end
          else begin
            let seq = s.next_seq in
            s.next_seq <- seq + 1;
            dedup_set s sender ~msgid ~seq;
            let needs_accept =
              (match payload with User _ -> true | Ctrl _ -> false)
              && t.cfg.resilience > 0
            in
            let wait =
              if needs_accept then
                List.filter (fun m -> m <> t.mid) (ackers t ~sender)
              else []
            in
            let entry = { History.seq; sender; msgid; ops; payload } in
            Hashtbl.replace s.tents seq
              { t_entry = entry; t_needs_accept = needs_accept; t_wait = wait;
                t_accepted = false };
            (* Announce to the group. *)
            if via_bb then
              multicast t (Wire.Accept { seq; sender; msgid; inc = t.inc })
            else
              multicast t
                (Wire.Data
                   { seq; sender; msgid; inc = t.inc; ops; payload; needs_accept });
            (* Local member processing of our own announcement. *)
            charge_deliver ~ops t;
            member_data t ~seq ~sender ~msgid ~ops ~payload ~needs_accept;
            if wait = [] then seq_make_stable t s seq
          end)

and handle_at_sequencer t s msg =
  match msg with
  | Wire.Req { sender; msgid; piggy; ops; payload; _ } ->
      sequencer_accept t ~sender ~msgid ~piggy ~ops payload
  | Wire.Bb_data { sender; msgid; piggy; ops; payload; _ } ->
      (* Keep the payload for our own delivery and for repairs. *)
      sequencer_accept ~via_bb:true t ~sender ~msgid ~piggy ~ops payload
  | Wire.Ack_tent { seq; from; _ } -> (
      match Hashtbl.find_opt s.tents seq with
      | None -> ()
      | Some tent ->
          if List.mem from tent.t_wait then begin
            t.st.acks_collected <- t.st.acks_collected + 1;
            tent.t_wait <- List.filter (fun m -> m <> from) tent.t_wait;
            if tent.t_wait = [] && not tent.t_accepted then seq_make_stable t s seq
          end)
  | Wire.Nack { from; expected; piggy; _ } ->
      ack_set s from piggy;
      seq_prune t s;
      (* The repair batch is bounded in messages AND bytes: answering a
         nack with dozens of multi-kilobyte retransmissions at once
         would bury the requester (it re-nacks for the rest). *)
      let upto = min (s.next_seq - 1) (expected + 31) in
      let budget = ref (4 * t.cost.max_frame_bytes) in
      let rec resend seq =
        if seq <= upto && !budget > 0 then begin
          let entry =
            match seq_find_entry s seq with
            | Some (e, needs_accept) -> Some (e, needs_accept)
            | None -> (
                match History.find t.history seq with
                | Some e -> Some (e, false)
                | None -> None)
          in
          (match entry with
          | Some (e, needs_accept) ->
              t.st.retransmissions <- t.st.retransmissions + 1;
              budget := !budget - payload_bytes e.payload;
              unicast_mid t ~mid:from
                (Wire.Data
                   {
                     seq = e.seq;
                     sender = e.sender;
                     msgid = e.msgid;
                     inc = t.inc;
                     ops = e.ops;
                     payload = e.payload;
                     needs_accept;
                   })
          | None -> ());
          resend (seq + 1)
        end
      in
      resend expected
  | Wire.Status { from; piggy; _ } ->
      ack_set s from piggy;
      seq_prune t s;
      if Queue.is_empty s.parked then s.soliciting <- false
  | Wire.Join_req { kaddr } -> (
      match List.find_opt (fun (_, a) -> Addr.equal a kaddr) t.members with
      | Some (mid, _) ->
          (* Duplicate join from an existing member: re-reply. *)
          unicast t ~dst:kaddr
            (Wire.Join_reply
               {
                 mid;
                 inc = t.inc;
                 next_seq = t.nxt;
                 members = t.members;
                 seq_mid = t.seq_mid;
               })
      | None -> (
          match List.find_opt (fun (a, _) -> Addr.equal a kaddr) s.pending_joins with
          | Some _ -> ()  (* already sequenced; reply follows delivery *)
          | None ->
              let mid = s.next_mid in
              s.next_mid <- mid + 1;
              s.pending_joins <- (kaddr, mid) :: s.pending_joins;
              t.msgid_counter <- t.msgid_counter + 1;
              sequencer_accept t ~sender:t.mid ~msgid:t.msgid_counter
                ~piggy:(t.nxt - 1)
                (Ctrl (Join { mid; kaddr }))))
  | Wire.Leave_req { mid } ->
      if List.mem_assoc mid t.members then begin
        t.msgid_counter <- t.msgid_counter + 1;
        sequencer_accept t ~sender:t.mid ~msgid:t.msgid_counter
          ~piggy:(t.nxt - 1)
          (Ctrl (Leave { mid }))
      end
  | Wire.Data _ | Wire.Accept _ | Wire.Status_req _ | Wire.Ping _ | Wire.Pong _
  | Wire.Join_reply _ | Wire.Invite _ | Wire.Invite_ack _ | Wire.Fetch _
  | Wire.Fetch_reply _ | Wire.New_config _ ->
      ()

(* ----- member side ----- *)

and member_data ?(count = true) ?(ops = 1) t ~seq ~sender ~msgid ~payload
    ~needs_accept =
  if seq < t.nxt then begin
    (* Stale retransmission or duplicate of something already
       delivered: at-most-once is enforced here.  [count] is off for
       fetch-reply replay, which legitimately revisits old entries. *)
    if count then t.st.duplicates_dropped <- t.st.duplicates_dropped + 1
  end
  else begin
    if count && seq < t.max_seen then
      (* Arrived behind a higher sequence number — a reordering the
         window absorbs rather than refuses. *)
      t.st.reorders_absorbed <- t.st.reorders_absorbed + 1;
    t.max_seen <- max t.max_seen seq;
    let slot =
      match Window.find t.slots seq with
      | Some s -> s
      | None ->
          let s = { s_data = None; s_accepted = false } in
          Window.set t.slots seq s;
          s
    in
    (match slot.s_data with
    | Some _ ->
        (* Duplicate of an undelivered slot.  Keep the first copy, but
           fall through: the re-ack below must still happen, or a lost
           Ack_tent could stall a resilient send forever. *)
        if count then t.st.duplicates_dropped <- t.st.duplicates_dropped + 1
    | None -> slot.s_data <- Some (sender, msgid, ops, payload));
    if not needs_accept then slot.s_accepted <- true;
    (* Resilience: the r lowest-numbered members acknowledge.  The
       sequencer's own copy was counted at sequencing time. *)
    if needs_accept && t.seqs = None && List.mem t.mid (ackers t ~sender) then
      unicast_mid t ~mid:t.seq_mid (Wire.Ack_tent { seq; from = t.mid; inc = t.inc });
    drain t;
    if hard_gap t then begin
      if not t.repair_armed then send_nack t;
      arm_repair t
    end
    else if awaiting_accept t then arm_repair t
  end

and member_accept t ~seq ~sender ~msgid =
  if seq < t.nxt then
    (* Accept for a sequence number already delivered: a duplicated or
       stale frame, dropped without touching the window. *)
    t.st.duplicates_dropped <- t.st.duplicates_dropped + 1
  else begin
    if seq < t.max_seen then
      t.st.reorders_absorbed <- t.st.reorders_absorbed + 1;
    t.max_seen <- max t.max_seen seq;
    (* BB: marry the accept with buffered broadcast data.  Our own
       broadcast never loops back, but we hold the payload in the
       in-flight send. *)
    let own_payload =
      if sender = t.mid then
        match inflight_find t msgid with
        | Some p -> Some (p.p_ops, User p.p_body)
        | None -> None
      else None
    in
    (match own_payload with
    | Some (ops, payload) ->
        let slot =
          match Window.find t.slots seq with
          | Some s -> s
          | None ->
              let s = { s_data = None; s_accepted = false } in
              Window.set t.slots seq s;
              s
        in
        slot.s_data <- Some (sender, msgid, ops, payload);
        slot.s_accepted <- true
    | None -> ());
    (let key = bb_key ~sender ~msgid in
     match Hashtbl.find_opt t.bb_wait key with
     | Some (ops, payload) ->
         Hashtbl.remove t.bb_wait key;
         let slot =
           match Window.find t.slots seq with
           | Some s -> s
           | None ->
               let s = { s_data = None; s_accepted = false } in
               Window.set t.slots seq s;
               s
         in
         slot.s_data <- Some (sender, msgid, ops, payload);
         slot.s_accepted <- true
     | None -> (
         match Window.find t.slots seq with
         | Some slot ->
             if slot.s_accepted then
               (* Duplicated accept for a slot already official. *)
               t.st.duplicates_dropped <- t.st.duplicates_dropped + 1
             else slot.s_accepted <- true
         | None ->
             (* Accept for data we never saw: remember the hole. *)
             Window.set t.slots seq { s_data = None; s_accepted = true }));
    drain t;
    if hard_gap t then begin
      if not t.repair_armed then send_nack t;
      arm_repair t
    end
    else if awaiting_accept t then arm_repair t
  end

and member_bb_data t ~sender ~msgid ~ops ~payload =
  if sender <> t.mid then begin
    if msgid <= last_msgid_of t sender then
      (* Stale broadcast data for a message already delivered (a late
         retransmission, or a duplicated frame arriving after its
         accept).  Re-buffering it would plant a [bb_wait] entry no
         accept will ever consume, and the repair timer would nack
         forever on its account. *)
      t.st.duplicates_dropped <- t.st.duplicates_dropped + 1
    else if Hashtbl.mem t.bb_wait (bb_key ~sender ~msgid) then
      t.st.duplicates_dropped <- t.st.duplicates_dropped + 1
    else begin
      Hashtbl.replace t.bb_wait (bb_key ~sender ~msgid) (ops, payload);
      arm_repair t
    end
  end

(* ----- recovery ----- *)

let last_stable t = t.nxt - 1

(* Incarnation numbers double as recovery proposal numbers, so they
   must be unique per (era, coordinator): two members that start a
   recovery concurrently must not produce the same number, or members
   could acknowledge both and split the group.  The era lives in the
   high bits, the coordinator's member id in the low 20. *)
let era_bits = 20

let next_incarnation t =
  (((t.frozen_inc lsr era_bits) + 1) lsl era_bits) lor (t.mid land 0xFFFFF)

let bump_incarnation inc ~mid =
  (((inc lsr era_bits) + 1) lsl era_bits) lor (mid land 0xFFFFF)

let serve_fetch t ~dst ~from_seq ~upto =
  let entries = History.range t.history ~lo:from_seq ~hi:upto in
  unicast t ~dst (Wire.Fetch_reply { entries })

let finish_run t run result =
  ignore (Ivar.try_fill run.r_result result);
  (* Physical equality on the run record itself: [Some run] would
     allocate a fresh option and never compare equal. *)
  match t.run with Some r when r == run -> t.run <- None | Some _ | None -> ()

let rec start_reset t ~min_members ~result ~inc =
  let run =
    {
      r_inc = inc;
      r_min = min_members;
      r_result = result;
      r_await = List.filter (fun (m, _) -> m <> t.mid) t.members;
      r_acked = [];
      r_tries = 0;
      r_rounds = (match t.run with Some r -> r.r_rounds + 1 | None -> 0);
      r_phase = Collect;
      r_seq =
        (t.reset_epoch <- t.reset_epoch + 1;
         t.reset_epoch);
    }
  in
  t.run <- Some run;
  t.life <- Frozen;
  (* Freezing voids every buffered-but-undelivered slot: we report
     [last_stable] as our agreed position, and the recovery may assign
     different messages to every sequence number beyond it.  A stale
     tentative left in the window would otherwise shadow the replayed
     authoritative entry for its slot (member_data keeps the first
     payload it saw for a seq). *)
  Window.drop_above t.slots (last_stable t);
  t.frozen_inc <- max t.frozen_inc inc;
  if run.r_rounds > 4 then finish_run t run (Error Not_enough_members)
  else begin
    send_invites t run;
    arm_reset_tick t run.r_seq ~after:t.cost.probe_timeout_ns;
    if run.r_await = [] then collect_done t run
  end

and send_invites t run =
  List.iter
    (fun (_, a) ->
      unicast t ~dst:a
        (Wire.Invite { inc = run.r_inc; coord = t.mid; coord_addr = t.kaddr }))
    run.r_await

and collect_done t run =
  let survivors =
    (t.mid, t.kaddr, last_stable t, t.inc, t.inc_seq) :: run.r_acked
  in
  (* The authoritative position is the newest incarnation any survivor
     has installed.  Bare sequence numbers from older incarnations are
     comparable only below the point where that incarnation re-assigned
     them: anyone who kept delivering at or past it (a paused sequencer
     resumed onto a request backlog, say) holds a forked history that
     no fetch can undo. *)
  let best_inc, best_start =
    List.fold_left
      (fun (bi, bs) (_, _, _, ci, cs) -> if ci > bi then (ci, cs) else (bi, bs))
      (t.inc, t.inc_seq) survivors
  in
  let clean (_, _, ls, ci, _) = ci = best_inc || ls < best_start in
  if best_inc > t.inc && last_stable t >= best_start then begin
    (* Our own stream is the fork: the paper's answer is expulsion,
       not merging divergent histories. *)
    t.life <- Expelled;
    t.frozen_inc <- max t.frozen_inc run.r_inc;
    post_event t Expelled;
    finish_run t run (Error Not_enough_members);
    abort_inflight t
  end
  else begin
    (* Divergent ackers must not come along: left out of the new
       configuration, their own recovery attempt will diagnose the
       fork and expel them. *)
    run.r_acked <- List.filter clean run.r_acked;
    let survivors = List.filter clean survivors in
    if List.length survivors < run.r_min then
      (* Not enough survivors: try again from the top (the paper's
         algorithm "starts again until it succeeds or fails"). *)
      start_reset t ~min_members:run.r_min ~result:run.r_result
        ~inc:(bump_incarnation run.r_inc ~mid:t.mid)
    else begin
      let global_max =
        List.fold_left (fun acc (_, _, s, _, _) -> max acc s) (-1) survivors
      in
      if last_stable t >= global_max then install_new_config t run ~global_max
      else begin
        let holder =
          List.find_map
            (fun (m, a, s, _, _) ->
              if s = global_max && m <> t.mid then Some a else None)
            survivors
        in
        match holder with
        | None -> install_new_config t run ~global_max:(last_stable t)
        | Some holder ->
            run.r_phase <- Fetching { holder; upto = global_max };
            run.r_tries <- 0;
            (* Invalidate any still-pending collect ticks. *)
            t.reset_epoch <- t.reset_epoch + 1;
            run.r_seq <- t.reset_epoch;
            unicast t ~dst:holder
              (Wire.Fetch { from_seq = t.nxt; upto = global_max });
            arm_reset_tick t run.r_seq ~after:t.cost.probe_timeout_ns
      end
    end
  end

and install_new_config t run ~global_max =
  t.inc <- run.r_inc;
  t.frozen_inc <- run.r_inc;
  t.st.resets_survived <- t.st.resets_survived + 1;
  let members =
    List.sort compare
      ((t.mid, t.kaddr)
      :: List.map (fun (m, a, _, _, _) -> (m, a)) run.r_acked)
  in
  set_members t members;
  (* Tentative messages that never became stable are discarded; their
     senders' SendToGroup never returned, so nothing visible is lost. *)
  Window.drop_above t.slots global_max;
  Hashtbl.reset t.bb_wait;
  t.max_seen <- max t.max_seen global_max;
  t.inc_seq <- global_max + 1;
  become_sequencer t ~first_seq:(global_max + 1);
  t.life <- Normal;
  t.frozen_failover <- false;
  List.iter
    (fun (m, a) ->
      if m <> t.mid then
        unicast t ~dst:a
          (Wire.New_config
             { inc = run.r_inc; members; seq_mid = t.mid; last_seq = global_max }))
    members;
  (* The reset itself is a totally-ordered event of the new epoch. *)
  t.msgid_counter <- t.msgid_counter + 1;
  sequencer_accept t ~sender:t.mid ~msgid:t.msgid_counter
    ~piggy:(last_stable t)
    (Ctrl (Reset { incarnation = run.r_inc; members = List.map fst members }));
  (* Re-submit interrupted sends under the new sequencer; delivery
     deduplication makes this safe.  The reset control just consumed a
     fresh msgid of ours, so the in-flight rounds' older msgids would
     look like stale duplicates to our own dedup state: renumber them
     for the new epoch, oldest first so msgids stay increasing (any
     round that had been delivered was completed by the catch-up
     replay above and is no longer in flight).  Iterating a snapshot:
     a resubmit that completes synchronously mutates [t.inflight] but
     not this list. *)
  List.iter
    (fun p ->
      t.msgid_counter <- t.msgid_counter + 1;
      p.p_msgid <- t.msgid_counter;
      submit_send t p)
    t.inflight;
  finish_run t run (Ok (List.length members))

let handle_invite t ~inc ~coord ~coord_addr =
  ignore coord;
  if inc > t.inc && inc >= t.frozen_inc then begin
    (match t.run with
    | Some run when run.r_inc < inc ->
        (* A higher-precedence coordinator supersedes our run; adopt
           its outcome if it arrives, retry otherwise.  The adoption
           timeout must outlast a full collect phase (probe_retries
           ticks) plus the fetch/install work, or two coordinators
           chase each other through the eras — and the run's pending
           collect ticks must be invalidated (fresh epoch), or one of
           them would fire within a probe period and retry instantly. *)
        run.r_phase <- Adopting;
        t.reset_epoch <- t.reset_epoch + 1;
        run.r_seq <- t.reset_epoch;
        arm_reset_tick t run.r_seq
          ~after:((t.cost.probe_retries + 4) * t.cost.probe_timeout_ns)
    | Some _ | None -> ());
    t.frozen_inc <- inc;
    if t.life = Normal then begin
      t.life <- Frozen;
      (* Tentative slots are void from here on: the recovery we just
         acked may reassign every seq past the position we report. *)
      Window.drop_above t.slots (last_stable t);
      (* If the recovery never reaches us with a new configuration, we
         were declared dead: give up and report expulsion. *)
      ignore
        (Engine.schedule ~group:t.k_group t.engine
           ~after:(10 * t.cost.probe_timeout_ns)
           (fun () -> Channel.send t.inbox (Frozen_tick inc)))
    end;
    unicast t ~dst:coord_addr
      (Wire.Invite_ack
         { mid = t.mid; last_stable = last_stable t; inc; cur_inc = t.inc;
           inc_seq = t.inc_seq })
  end
  else if inc = t.frozen_inc then
    unicast t ~dst:coord_addr
      (Wire.Invite_ack
         { mid = t.mid; last_stable = last_stable t; inc; cur_inc = t.inc;
           inc_seq = t.inc_seq })

let handle_new_config t ~inc ~members ~seq_mid ~last_seq =
  if
    inc >= t.frozen_inc && inc > t.inc
    && (t.life = Normal || t.life = Frozen)
    && not (List.mem_assoc t.mid members)
  then begin
    (* An authoritative configuration that does not include us: the
       recovery declared us dead (we were unreachable while it ran).
       Adopting it anyway would leave a ghost member delivering the
       new stream — and our old mid can be reassigned to a later
       joiner, whose join event we would then swallow as our own. *)
    t.life <- Expelled;
    t.frozen_inc <- max t.frozen_inc inc;
    post_event t Expelled;
    (match t.run with
    | Some run -> finish_run t run (Error Not_enough_members)
    | None -> ());
    abort_inflight t
  end
  else if inc >= t.frozen_inc && inc > t.inc then begin
    t.inc <- inc;
    t.frozen_inc <- inc;
    t.st.resets_survived <- t.st.resets_survived + 1;
    set_members t (List.sort compare members);
    t.seq_mid <- seq_mid;
    t.seqs <- None;
    Window.drop_above t.slots last_seq;
    Hashtbl.reset t.bb_wait;
    t.max_seen <- max t.max_seen last_seq;
    t.inc_seq <- last_seq + 1;
    t.life <- Normal;
    t.frozen_failover <- false;
    (match t.run with
    | Some run -> finish_run t run (Ok (List.length members))
    | None -> ());
    if t.nxt <= last_seq then begin
      send_nack t;
      arm_repair t
    end;
    List.iter (fun p -> submit_send t p) t.inflight
  end

let handle_fetch_reply t entries =
  (* Catch-up: replay the fetched stream through the normal delivery
     machinery so control messages take effect too. *)
  List.iter
    (fun (e : History.entry) ->
      member_data ~count:false ~ops:e.ops t ~seq:e.seq ~sender:e.sender
        ~msgid:e.msgid ~payload:e.payload ~needs_accept:false)
    entries;
  match t.run with
  | Some ({ r_phase = Fetching { upto; _ }; _ } as run) ->
      if last_stable t >= upto then install_new_config t run ~global_max:upto
      else if
        match entries with
        | [] -> true
        | e :: _ -> e.History.seq > t.nxt
      then begin
        (* The holder's history starts past our position.  Histories
           are pruned only once every member of the configuration has
           acknowledged, so the stream can run out from under us only
           if we were not in that configuration: we were dropped, and
           our identity can never catch up.  Give up and report the
           expulsion rather than re-fetch forever. *)
        t.life <- Expelled;
        t.frozen_inc <- max t.frozen_inc run.r_inc;
        post_event t Expelled;
        finish_run t run (Error Not_enough_members);
        abort_inflight t
      end
  | Some _ | None -> ()

(* ----- incarnation filtering ----- *)

let detect_expulsion t msg_inc =
  if msg_inc > t.inc && t.life = Normal && t.run = None then begin
    (* A recovery we were not part of has moved on without us.  Under
       reordering, the unicast [New_config] that includes us can still
       be in flight behind the first new-incarnation multicast — so
       freeze and give it a grace period instead of declaring
       expulsion outright.  If the configuration never arrives, the
       [Frozen_tick] below makes the expulsion final; if it does,
       [handle_new_config] unfreezes us into the new incarnation. *)
    t.life <- Frozen;
    (* Whatever incarnation overtook us may have reassigned every seq
       past our frontier: void the undelivered tentatives. *)
    Window.drop_above t.slots (last_stable t);
    t.frozen_inc <- max t.frozen_inc msg_inc;
    ignore
      (Engine.schedule ~group:t.k_group t.engine
         ~after:(2 * t.cost.probe_timeout_ns)
         (fun () -> Channel.send t.inbox (Frozen_tick msg_inc)))
  end

(* ----- the kernel process ----- *)

(* A frozen member has reported its [last_stable] to a recovery
   coordinator (or is one): that value is its agreed position in the
   old incarnation, so it must not move past it by processing further
   old-incarnation traffic — the new configuration may reassign every
   sequence number beyond the collected maximum.  Catch-up during
   recovery flows only through [handle_fetch_reply]. *)
let handle_net t msg src =
  match msg with
  | Wire.Data { seq; sender; msgid; inc; ops; payload; needs_accept } ->
      if t.life = Joining then begin
        charge_deliver ~ops t;
        member_data t ~seq ~sender ~msgid ~ops ~payload ~needs_accept
      end
      else if inc = t.inc && t.life <> Frozen then begin
        charge_deliver ~ops t;
        member_data t ~seq ~sender ~msgid ~ops ~payload ~needs_accept
      end
      else if inc <> t.inc then detect_expulsion t inc
  | Wire.Accept { seq; sender; msgid; inc } ->
      if inc = t.inc && t.life <> Frozen then begin
        charge t t.cost.group_deliver_ns;
        (match t.seqs with
        | Some s -> handle_at_sequencer t s msg
        | None -> ());
        member_accept t ~seq ~sender ~msgid
      end
      else if inc <> t.inc then detect_expulsion t inc
  | Wire.Bb_data { sender; msgid; inc; ops; payload; _ } ->
      if inc = t.inc && t.life <> Frozen then begin
        match t.seqs with
        | Some s ->
            charge_seq ~ops t;
            handle_at_sequencer t s msg
        | None ->
            charge_deliver ~ops t;
            member_bb_data t ~sender ~msgid ~ops ~payload
      end
      else if inc <> t.inc then detect_expulsion t inc
  | Wire.Req { ops; _ } -> (
      match t.seqs with
      | Some s when t.life <> Frozen ->
          charge_seq ~ops t;
          handle_at_sequencer t s msg
      | Some _ | None -> ())
  | Wire.Ack_tent _ | Wire.Nack _ | Wire.Status _ | Wire.Join_req _
  | Wire.Leave_req _ -> (
      match t.seqs with
      | Some s when t.life <> Frozen ->
          charge_seq t;
          handle_at_sequencer t s msg
      | Some _ | None -> ())
  | Wire.Status_req { inc } ->
      if inc = t.inc && t.seqs = None then begin
        charge t t.cost.group_deliver_ns;
        unicast_mid t ~mid:t.seq_mid
          (Wire.Status { from = t.mid; piggy = last_stable t; inc = t.inc })
      end
  | Wire.Ping { nonce } ->
      charge t t.cost.group_deliver_ns;
      unicast t ~dst:src (Wire.Pong { nonce })
  | Wire.Pong { nonce } -> (
      match t.heal_waiting with
      | Some n when n = nonce ->
          t.heal_waiting <- None;
          t.heal_misses <- 0
      | Some _ | None -> ())
  | Wire.Join_reply _ ->
      if t.life = Joining then Channel.send t.join_replies msg
  | Wire.Invite { inc; coord; coord_addr } ->
      charge t t.cost.group_deliver_ns;
      handle_invite t ~inc ~coord ~coord_addr
  | Wire.Invite_ack { mid; last_stable = ls; inc; cur_inc; inc_seq } -> (
      match t.run with
      | Some ({ r_phase = Collect; _ } as run) when inc = run.r_inc ->
          if List.mem_assoc mid run.r_await then begin
            let addr = List.assoc mid run.r_await in
            run.r_await <- List.remove_assoc mid run.r_await;
            run.r_acked <- (mid, addr, ls, cur_inc, inc_seq) :: run.r_acked;
            if run.r_await = [] then collect_done t run
          end
      | Some _ | None -> ())
  | Wire.Fetch { from_seq; upto } ->
      charge t t.cost.group_deliver_ns;
      serve_fetch t ~dst:src ~from_seq ~upto
  | Wire.Fetch_reply { entries } ->
      charge t t.cost.group_deliver_ns;
      handle_fetch_reply t entries
  | Wire.New_config { inc; members; seq_mid; last_seq } ->
      charge t t.cost.group_deliver_ns;
      handle_new_config t ~inc ~members ~seq_mid ~last_seq

let handle_resend_tick t msgid =
  match inflight_find t msgid with
  | Some p ->
      if t.life = Normal then begin
        p.p_tries <- p.p_tries + 1;
        if p.p_tries > t.cost.probe_retries then begin
          inflight_remove t p;
          ignore (Ivar.try_fill p.p_result (Error Sequencer_unreachable));
          next_queued_send t
        end
        else begin
          submit_send t p;
          p.p_timer <- Some (arm_resend t ~msgid)
        end
      end
      else if t.life = Frozen then p.p_timer <- Some (arm_resend t ~msgid)
  | None -> ()

let handle_repair_tick t =
  t.repair_armed <- false;
  let mark = t.repair_mark in
  if t.life = Normal && (gap_present t || Hashtbl.length t.bb_wait > 0) then begin
    if t.nxt = mark then send_nack t;
    arm_repair t
  end

let handle_solicit_tick t =
  match t.seqs with
  | Some s when s.soliciting ->
      if not (Queue.is_empty s.parked) then begin
        t.st.status_solicitations <- t.st.status_solicitations + 1;
        multicast t (status_req t);
        arm_solicit t
      end
      else s.soliciting <- false
  | Some _ | None -> ()

(* Auto-heal: a plain member pings the sequencer on a heartbeat; after
   enough unanswered pings it initiates recovery itself, requiring a
   majority of the current membership to survive.

   The sequencer needs the mirror-image watch.  A ping tells a member
   the sequencer lives, but nothing tells the sequencer a member died
   — and with resilience > 0 a dead acker wedges every send forever:
   the tentative waits for an accept ack that will never come.  So on
   the same heartbeat the sequencer checks for tentatives stuck
   awaiting acks while the stable frontier stands still; enough
   stalled ticks in a row and it starts a recovery, whose collect
   phase declares the silent members dead and expels them. *)
let handle_heal_tick t =
  (if t.life = Normal && t.member_count > 1 then
     match t.seqs with
     | None -> (
         (match t.heal_waiting with
         | Some _ ->
             t.heal_misses <- t.heal_misses + 1;
             if t.heal_misses > t.cost.probe_retries then begin
               t.heal_waiting <- None;
               t.heal_misses <- 0;
               let majority = (t.member_count / 2) + 1 in
               start_reset t ~min_members:majority ~result:(Ivar.create ())
                 ~inc:(next_incarnation t)
             end
         | None -> ());
         if t.life = Normal then begin
           t.heal_nonce <- t.heal_nonce + 1;
           t.heal_waiting <- Some t.heal_nonce;
           unicast_mid t ~mid:t.seq_mid (Wire.Ping { nonce = t.heal_nonce })
         end)
     | Some s ->
         t.heal_waiting <- None;
         let stuck =
           Hashtbl.fold (fun _ tent acc -> acc || tent.t_wait <> []) s.tents false
         in
         if stuck && s.stable_frontier = t.heal_frontier then begin
           t.heal_misses <- t.heal_misses + 1;
           if t.heal_misses > t.cost.probe_retries then begin
             t.heal_misses <- 0;
             start_reset t
               ~min_members:((t.member_count / 2) + 1)
               ~result:(Ivar.create ()) ~inc:(next_incarnation t)
           end
         end
         else t.heal_misses <- 0;
         t.heal_frontier <- s.stable_frontier
   else begin
     t.heal_waiting <- None;
     t.heal_misses <- 0
   end);
  if t.life <> Left && t.life <> Expelled then arm_heal t

let handle_reset_tick t epoch =
  match t.run with
  | Some run when run.r_seq = epoch -> (
      match run.r_phase with
      | Collect ->
          run.r_tries <- run.r_tries + 1;
          if run.r_tries > t.cost.probe_retries then
            (* The silent members are declared dead (the paper's
               unreliable failure detection). *)
            collect_done t run
          else begin
            send_invites t run;
            arm_reset_tick t run.r_seq ~after:t.cost.probe_timeout_ns
          end
      | Fetching { holder; upto } ->
          if last_stable t >= upto then install_new_config t run ~global_max:upto
          else begin
            run.r_tries <- run.r_tries + 1;
            if run.r_tries > t.cost.probe_retries then
              (* The holder went silent mid-fetch: start over and let a
                 fresh collect pick a live holder (bounded by the round
                 cap, like a failed collect). *)
              start_reset t ~min_members:run.r_min ~result:run.r_result
                ~inc:(next_incarnation t)
            else begin
              unicast t ~dst:holder (Wire.Fetch { from_seq = t.nxt; upto });
              arm_reset_tick t run.r_seq ~after:t.cost.probe_timeout_ns
            end
          end
      | Adopting ->
          (* The superseding coordinator never delivered: take over. *)
          start_reset t ~min_members:run.r_min ~result:run.r_result
            ~inc:(next_incarnation t))
  | Some _ | None -> ()

let kernel_loop t () =
  let rec loop () =
    let input = Channel.recv t.engine t.inbox in
    (if t.life = Left || t.life = Expelled then
       (* Drain and refuse: the kernel is shut down. *)
       match input with
       | Do_send p -> ignore (Ivar.try_fill p.p_result (Error Not_a_member))
       | Do_leave iv -> ignore (Ivar.try_fill iv (Error Not_a_member))
       | Do_reset { result; _ } ->
           ignore (Ivar.try_fill result (Error Not_a_member))
       | Net _ | Resend_tick _ | Repair_tick | Solicit_tick | Reset_tick _
       | Frozen_tick _ | Heal_tick | Leave_tick _ ->
           ()
     else
       match input with
       | Net (msg, src) -> handle_net t msg src
       | Do_send p ->
           if List.length t.inflight < t.cfg.pipeline_depth then start_send t p
           else Queue.push p t.send_queue
       | Do_leave iv -> (
           t.pending_leave <- Some iv;
           arm_leave_retry t ~tries:0;
           match t.seqs with
           | Some s ->
               charge_seq t;
               handle_at_sequencer t s (Wire.Leave_req { mid = t.mid })
           | None -> (
               match addr_of t t.seq_mid with
               | Some a ->
                   charge t t.cost.group_send_ns;
                   unicast t ~dst:a (Wire.Leave_req { mid = t.mid })
               | None -> ignore (Ivar.try_fill iv (Error Sequencer_unreachable))))
       | Leave_tick tries -> (
           (* The leave confirmation (our own Leave in the stream) may
              have been lost; nack for repair and nudge the sequencer
              again (it deduplicates departed members). *)
           match t.pending_leave with
           | None -> ()
           | Some iv ->
               if tries > t.cost.probe_retries then begin
                 t.pending_leave <- None;
                 ignore (Ivar.try_fill iv (Error Sequencer_unreachable))
               end
               else begin
                 send_nack t;
                 (match t.seqs with
                 | Some s ->
                     handle_at_sequencer t s (Wire.Leave_req { mid = t.mid })
                 | None -> unicast_mid t ~mid:t.seq_mid (Wire.Leave_req { mid = t.mid }));
                 arm_leave_retry t ~tries:(tries + 1)
               end)
       | Do_reset { min_members; result } ->
           start_reset t ~min_members ~result ~inc:(next_incarnation t)
       | Resend_tick msgid -> handle_resend_tick t msgid
       | Repair_tick -> handle_repair_tick t
       | Solicit_tick -> handle_solicit_tick t
       | Reset_tick epoch -> handle_reset_tick t epoch
       | Heal_tick -> handle_heal_tick t
       | Frozen_tick inc ->
           if t.life = Frozen && t.inc < inc then begin
             let retick after =
               ignore
                 (Engine.schedule ~group:t.k_group t.engine ~after (fun () ->
                      Channel.send t.inbox (Frozen_tick inc)))
             in
             if t.run <> None then
               (* A recovery is still in flight; judge it when it is
                  done, not mid-run. *)
               retick (2 * t.cost.probe_timeout_ns)
             else if not t.frozen_failover then begin
               (* The configuration we froze for never arrived.  That
                  is ambiguous: we may have been dropped, but the
                  coordinator (or just its unicast to us) may equally
                  have died.  Probe the difference with a recovery of
                  our own — fetch-replaying the authoritative stream
                  either re-installs us or proves the expulsion (a
                  replayed reset that excludes us expels in
                  [deliver_control]).  If even that resolves nothing,
                  the next tick makes the expulsion final. *)
               t.frozen_failover <- true;
               start_reset t
                 ~min_members:((t.member_count / 2) + 1)
                 ~result:(Ivar.create ()) ~inc:(next_incarnation t);
               retick (2 * t.cost.probe_timeout_ns)
             end
             else begin
               t.life <- Expelled;
               post_event t Expelled;
               abort_inflight t
             end
           end);
    loop ()
  in
  loop ()

(* ----- construction and the public operations ----- *)

let make flip ~cfg ~gaddr =
  let cfg = { cfg with pipeline_depth = max 1 cfg.pipeline_depth } in
  let machine = Flip.machine flip in
  let t =
    {
      flip;
      machine;
      engine = Machine.engine machine;
      k_group = Machine.group machine;
      cost = Machine.cost machine;
      cfg;
      gaddr;
      kaddr = Flip.fresh_addr flip;
      inbox = Channel.create ();
      event_out = Channel.create ();
      st = new_stats ();
      life = Joining;
      inc = 0;
      members = [];
      member_addrs = [||];
      member_count = 0;
      member_mids = [];
      mid = -1;
      seq_mid = -1;
      nxt = 0;
      max_seen = -1;
      history = History.create ~capacity:cfg.history_capacity;
      slots =
        Window.create ~initial:64 ~dummy:{ s_data = None; s_accepted = false } ();
      bb_wait = Hashtbl.create 16;
      last_msgid = [||];
      status_req = (-1, Wire.Status_req { inc = -1 });
      msgid_counter = 0;
      inflight = [];
      send_queue = Queue.create ();
      seqs = None;
      repair_armed = false;
      join_replies = Channel.create ();
      repair_mark = -1;
      heal_waiting = None;
      heal_misses = 0;
      heal_nonce = 0;
      heal_frontier = -1;
      reset_epoch = 0;
      run = None;
      frozen_inc = 0;
      inc_seq = 0;
      frozen_failover = false;
      pending_leave = None;
    }
  in
  (* Pipelined senders keep several slots live around the stream head;
     pre-size the window so those bursts never rehash mid-round. *)
  if cfg.pipeline_depth > 1 then
    Window.ensure_capacity t.slots (2 * cfg.history_capacity);
  (* Total rx: [Wire.decode] never raises out of the NIC path.  A
     payload damaged in flight fails the group checksum here and is
     counted, never interpreted. *)
  let rx (p : Packet.t) =
    match Wire.decode p.Packet.body with
    | Ok msg -> Channel.send t.inbox (Net (msg, p.Packet.src))
    | Error `Corrupt -> t.st.corrupt_dropped <- t.st.corrupt_dropped + 1
    | Error `Foreign -> ()
  in
  Flip.register flip t.kaddr rx;
  Flip.register_group flip gaddr rx;
  Engine.spawn ~group:t.k_group t.engine (kernel_loop t);
  t

let create_group flip ?(config = default_config) () =
  let gaddr = Flip.fresh_addr flip in
  let t = make flip ~cfg:config ~gaddr in
  t.mid <- 0;
  set_members t [ (0, t.kaddr) ];
  t.life <- Normal;
  arm_heal t;
  become_sequencer t ~first_seq:0;
  (match t.seqs with Some s -> s.next_mid <- 1 | None -> ());
  t

let join_group flip ?(config = default_config) ~group_addr () =
  let t = make flip ~cfg:config ~gaddr:group_addr in
  let engine = t.engine in
  let rec attempt n =
    if n > t.cost.probe_retries then Error Sequencer_unreachable
    else begin
      Machine.work t.machine ~layer:"group" t.cost.group_send_ns;
      multicast t (Wire.Join_req { kaddr = t.kaddr });
      match
        Channel.recv_timeout engine t.join_replies ~timeout:t.cost.probe_timeout_ns
      with
      | Some (Wire.Join_reply { mid; inc; next_seq; members; seq_mid }) ->
          t.mid <- mid;
          t.inc <- inc;
          t.frozen_inc <- inc;
          set_members t (List.sort compare members);
          t.seq_mid <- seq_mid;
          t.nxt <- next_seq;
          (* Anything that raced ahead of the reply stays; older
             traffic is not ours to deliver. *)
          Window.drop_below t.slots next_seq;
          t.life <- Normal;
          arm_heal t;
          drain t;
          if gap_present t then begin
            send_nack t;
            arm_repair t
          end;
          Ok t
      | Some _ | None -> attempt (n + 1)
    end
  in
  attempt 1

let group_addr t = t.gaddr
let kernel_addr t = t.kaddr
let my_mid t = t.mid
let incarnation t = t.inc
let sequencer_mid t = t.seq_mid
let is_sequencer t = t.seqs <> None
let member_list t = t.members
let alive t = match t.life with Left | Expelled -> false | _ -> true
let config t = t.cfg
let events t = t.event_out
let stats t = t.st
let next_expected t = t.nxt

let send ?(ops = 1) t body =
  if not (alive t) then Error Not_a_member
  else begin
    let p =
      {
        p_msgid = 0;
        p_body = body;
        p_ops = max 1 ops;
        p_result = Ivar.create ();
        p_tries = 0;
        p_timer = None;
      }
    in
    Channel.send t.inbox (Do_send p);
    Ivar.read t.engine p.p_result
  end

let leave t =
  if not (alive t) then Error Not_a_member
  else begin
    let iv = Ivar.create () in
    Channel.send t.inbox (Do_leave iv);
    Ivar.read t.engine iv
  end

let reset t ~min_members =
  if not (alive t) then Error Not_a_member
  else begin
    let result = Ivar.create () in
    Channel.send t.inbox (Do_reset { min_members; result });
    Ivar.read t.engine result
  end
