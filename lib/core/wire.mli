(** Wire messages of the group protocol.

    Messages are FLIP packet bodies; [size] gives the byte count above
    the FLIP header (28-byte group header, plus the 32-byte user
    header and the user data for payload-bearing messages), which is
    what the simulated wire and copy costs are computed from. *)

open Types

type msg =
  (* Broadcast data path *)
  | Req of {
      sender : mid;
      msgid : int;
      piggy : seqno;  (** highest seq the sender has delivered *)
      inc : int;
      ops : int;  (** client ops in the payload; > 1 = batched *)
      payload : payload;
    }  (** PB: point-to-point from sender to sequencer *)
  | Data of {
      seq : seqno;
      sender : mid;
      msgid : int;
      inc : int;
      ops : int;
      payload : payload;
      needs_accept : bool;  (** true = tentative (resilient send) *)
    }  (** multicast (or retransmitted point-to-point) by the sequencer *)
  | Bb_data of {
      sender : mid;
      msgid : int;
      piggy : seqno;
      inc : int;
      ops : int;
      payload : payload;
    }  (** BB: multicast of the full message by the sender *)
  | Accept of { seq : seqno; sender : mid; msgid : int; inc : int }
      (** short multicast making a BB or tentative message official *)
  | Ack_tent of { seq : seqno; from : mid; inc : int }
      (** resilience acknowledgement, member to sequencer *)
  | Nack of { from : mid; expected : seqno; piggy : seqno; inc : int }
      (** negative acknowledgement: retransmit from [expected] *)
  | Status_req of { inc : int }
      (** sequencer solicits member state when its history fills *)
  | Status of { from : mid; piggy : seqno; inc : int }
  | Ping of { nonce : int }
      (** liveness probe (auto-heal heartbeat); any kernel answers *)
  | Pong of { nonce : int }
  (* Membership *)
  | Join_req of { kaddr : Amoeba_flip.Addr.t }
  | Join_reply of {
      mid : mid;
      inc : int;
      next_seq : seqno;
      members : (mid * Amoeba_flip.Addr.t) list;
      seq_mid : mid;
    }
  | Leave_req of { mid : mid }
  (* Recovery *)
  | Invite of { inc : int; coord : mid; coord_addr : Amoeba_flip.Addr.t }
  | Invite_ack of {
      mid : mid;
      last_stable : seqno;
      inc : int;
      cur_inc : int;  (** the acker's installed incarnation *)
      inc_seq : seqno;  (** stream position where [cur_inc] began *)
    }
  | Fetch of { from_seq : seqno; upto : seqno }
  | Fetch_reply of { entries : History.entry list }
  | New_config of {
      inc : int;
      members : (mid * Amoeba_flip.Addr.t) list;
      seq_mid : mid;
      last_seq : seqno;  (** highest stable seq of the old incarnation *)
    }

type Amoeba_flip.Packet.body += Group of msg

val size : Amoeba_net.Cost_model.t -> msg -> int
(** Bytes above the FLIP header. *)

val decode : Amoeba_flip.Packet.body -> (msg, [ `Corrupt | `Foreign ]) result
(** Total decode of a received packet body.  [`Corrupt] means the
    group-header checksum rejected a payload damaged in flight
    ({!Amoeba_flip.Packet.Corrupt}); [`Foreign] means the packet was
    never ours.  Never raises — malformed input is a counted error,
    not an exception out of the NIC rx path. *)

val describe : msg -> string
(** Constructor name, for logs and tests. *)
