(** The history buffer.

    The sequencer keeps every message it has sequenced until it knows
    (from sequence numbers piggybacked on incoming traffic) that all
    members have received it; members keep their recent deliveries so
    a survivor can reconstruct the stream during recovery.  The buffer
    is bounded (128 messages in the paper's experiments): the
    sequencer refuses to sequence new messages while full, which
    back-pressures senders until laggards catch up. *)

open Types

type entry = {
  seq : seqno;
  sender : mid;
  msgid : int;
  ops : int;  (** client ops carried by this message (1 unless batched) *)
  payload : payload;
}

type t

val create : capacity:int -> t

val capacity : t -> int

val is_empty : t -> bool

val is_full : t -> bool

val length : t -> int

val lo : t -> seqno
(** Lowest sequence number still buffered; meaningless when empty. *)

val hi : t -> seqno
(** Highest sequence number buffered; meaningless when empty. *)

val add : t -> entry -> (unit, [ `Full | `Out_of_order ]) result
(** Entries must arrive in strictly increasing, contiguous [seq]
    order (the sequencer assigns them that way). *)

val add_evicting : t -> entry -> unit
(** Like {!add} but evicts the oldest entry when full — the member
    side, which only keeps a recent window. *)

val find : t -> seqno -> entry option

val prune_below : t -> seqno -> unit
(** Drops all entries with [seq < bound]: everything every member has
    acknowledged. *)

val range : t -> lo:seqno -> hi:seqno -> entry list
(** Buffered entries within [lo..hi], ascending; silently skips
    missing ones. *)
