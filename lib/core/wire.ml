open Types

type msg =
  | Req of {
      sender : mid;
      msgid : int;
      piggy : seqno;
      inc : int;
      ops : int;
      payload : payload;
    }
  | Data of {
      seq : seqno;
      sender : mid;
      msgid : int;
      inc : int;
      ops : int;
      payload : payload;
      needs_accept : bool;
    }
  | Bb_data of {
      sender : mid;
      msgid : int;
      piggy : seqno;
      inc : int;
      ops : int;
      payload : payload;
    }
  | Accept of { seq : seqno; sender : mid; msgid : int; inc : int }
  | Ack_tent of { seq : seqno; from : mid; inc : int }
  | Nack of { from : mid; expected : seqno; piggy : seqno; inc : int }
  | Status_req of { inc : int }
  | Status of { from : mid; piggy : seqno; inc : int }
  | Ping of { nonce : int }
  | Pong of { nonce : int }
  | Join_req of { kaddr : Amoeba_flip.Addr.t }
  | Join_reply of {
      mid : mid;
      inc : int;
      next_seq : seqno;
      members : (mid * Amoeba_flip.Addr.t) list;
      seq_mid : mid;
    }
  | Leave_req of { mid : mid }
  | Invite of { inc : int; coord : mid; coord_addr : Amoeba_flip.Addr.t }
  | Invite_ack of {
      mid : mid;
      last_stable : seqno;
      inc : int;
      cur_inc : int;  (** the acker's installed incarnation *)
      inc_seq : seqno;  (** stream position where [cur_inc] began *)
    }
  | Fetch of { from_seq : seqno; upto : seqno }
  | Fetch_reply of { entries : History.entry list }
  | New_config of {
      inc : int;
      members : (mid * Amoeba_flip.Addr.t) list;
      seq_mid : mid;
      last_seq : seqno;
    }

type Amoeba_flip.Packet.body += Group of msg

let payload_size (c : Amoeba_net.Cost_model.t) p =
  c.header_user + payload_bytes p

(* Uniform on-the-wire accounting: every constructor field is charged
   — scalars (mids, seqnos, msgids, incarnations, nonces) as 4-byte
   words, FLIP addresses as 8 bytes, booleans as a flag byte, member
   entries as mid + address, payloads via [payload_size].  The fixed
   group-layer envelope (type tag, destination group, checksum) is
   [c.header_group], added once at the end. *)
let word = 4
let addr_bytes = 8
let member_bytes = word + addr_bytes

let size (c : Amoeba_net.Cost_model.t) msg =
  let body =
    match msg with
    (* A batched message (ops > 1) pays one extra word for the op
       count; singletons stay byte-identical to the unbatched wire. *)
    | Req { ops; _ } | Bb_data { ops; _ } ->
        (4 * word) + (if ops > 1 then word else 0)
        (* sender, msgid, piggy, inc [+ ops] *)
    | Data { ops; _ } ->
        (4 * word) + 1 + (if ops > 1 then word else 0)
        (* seq, sender, msgid, inc + accept flag [+ ops] *)
    | Accept _ -> 4 * word  (* seq, sender, msgid, inc *)
    | Ack_tent _ -> 3 * word  (* seq, from, inc *)
    | Nack _ -> 4 * word  (* from, expected, piggy, inc *)
    | Status_req _ -> word  (* inc *)
    | Status _ -> 3 * word  (* from, piggy, inc *)
    | Ping _ | Pong _ -> word  (* nonce *)
    | Join_req _ -> addr_bytes  (* kaddr *)
    | Leave_req _ -> word  (* mid *)
    | Invite _ -> (2 * word) + addr_bytes  (* inc, coord, coord_addr *)
    | Invite_ack _ -> 5 * word  (* mid, last_stable, inc, cur_inc, inc_seq *)
    | Fetch _ -> 2 * word  (* from_seq, upto *)
    | Join_reply { members; _ } ->
        (* mid, inc, next_seq, seq_mid + member table *)
        (4 * word) + (List.length members * member_bytes)
    | New_config { members; _ } ->
        (* inc, seq_mid, last_seq + member table *)
        (3 * word) + (List.length members * member_bytes)
    | Fetch_reply { entries } ->
        (* per entry: seq, sender, msgid [+ ops] + payload *)
        List.fold_left
          (fun acc e ->
            acc + (3 * word)
            + (if e.History.ops > 1 then word else 0)
            + payload_size c e.History.payload)
          0 entries
  in
  let payload =
    match msg with
    | Req { payload; _ } | Data { payload; _ } | Bb_data { payload; _ } ->
        payload_size c payload
    | _ -> 0
  in
  c.header_group + body + payload

(* Total decode of a received FLIP packet body.  The group layer
   carries its own checksum inside [header_group]; a packet whose
   payload was damaged in flight arrives wrapped in [Packet.Corrupt]
   and fails that check here, so malformed input becomes an error the
   rx path counts instead of an exception out of the NIC handler. *)
let rec decode (body : Amoeba_flip.Packet.body) =
  match body with
  | Group msg -> Ok msg
  | Amoeba_flip.Packet.Corrupt inner -> (
      (* The checksum rejects the damaged bytes whatever they used to
         be; recursing only distinguishes "was ours" from foreign
         traffic for the counters. *)
      match decode inner with
      | Ok _ | Error `Corrupt -> Error `Corrupt
      | Error `Foreign -> Error `Foreign)
  | _ -> Error `Foreign

let describe = function
  | Req _ -> "req"
  | Data _ -> "data"
  | Bb_data _ -> "bb_data"
  | Accept _ -> "accept"
  | Ack_tent _ -> "ack_tent"
  | Nack _ -> "nack"
  | Status_req _ -> "status_req"
  | Status _ -> "status"
  | Ping _ -> "ping"
  | Pong _ -> "pong"
  | Join_req _ -> "join_req"
  | Join_reply _ -> "join_reply"
  | Leave_req _ -> "leave_req"
  | Invite _ -> "invite"
  | Invite_ack _ -> "invite_ack"
  | Fetch _ -> "fetch"
  | Fetch_reply _ -> "fetch_reply"
  | New_config _ -> "new_config"
