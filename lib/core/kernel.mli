(** The per-machine group kernel.

    One kernel instance per (machine, group) pair, playing the member
    role and — on exactly one machine per incarnation — the sequencer
    role.  The kernel owns all protocol state; it is driven by a
    single process reading an inbox of network messages, application
    operations and timer ticks, so no state is ever touched
    concurrently.

    Protocol summary (paper sections 2-3):
    - PB: sender -> sequencer point-to-point, sequencer multicasts the
      sequence-numbered message.
    - BB: sender multicasts the data; the sequencer multicasts a short
      accept carrying the sequence number.
    - Lost messages are repaired with negative acknowledgements
      against the sequencer's history buffer; acknowledgements ride
      piggyback on requests, so the failure-free path stays at two
      messages per broadcast.
    - With resilience degree r > 0, the sequencer broadcasts
      tentatively, waits for r member acknowledgements, then
      broadcasts an accept; members deliver only accepted messages.
    - Joins, leaves and recoveries are themselves totally ordered
      events in the message stream. *)

open Amoeba_sim
open Amoeba_flip
open Types

type t

type config = {
  resilience : int;
  method_ : send_method;
  history_capacity : int;
  auto_heal : bool;
      (** in-kernel failure detection: members heartbeat the sequencer
          and run the recovery themselves (majority quorum) when it
          stops answering, instead of waiting for the application to
          call {!reset} *)
  pipeline_depth : int;
      (** unacknowledged sequencer rounds this member may keep in
          flight (default 1 = the paper's lock-step
          send->deliver->next).  Clamped to at least 1.  Each round
          still respects the delivery window and resilience degree;
          depth only overlaps the wait for sequencing. *)
}

val default_config : config

type stats = {
  mutable delivered : int;  (** messages delivered to the application *)
  mutable sends_completed : int;
  mutable nacks_sent : int;
  mutable retransmissions : int;  (** repairs served by the sequencer *)
  mutable duplicates_dropped : int;
  mutable acks_collected : int;  (** resilience acks at the sequencer *)
  mutable status_solicitations : int;
      (** status requests multicast to unblock a full history *)
  mutable resets_survived : int;
      (** recovery incarnations this member installed (as coordinator
          or by accepting a new configuration) *)
  mutable corrupt_dropped : int;
      (** packets whose group-header checksum rejected payload damaged
          in flight *)
  mutable reorders_absorbed : int;
      (** data/accept frames that arrived behind a higher sequence
          number and were slotted into the window instead of refused *)
  mutable batches_sent : int;
      (** sends that carried more than one client op *)
  mutable batched_ops : int;  (** total ops across those batched sends *)
  mutable pipeline_depth_hwm : int;
      (** most unacknowledged rounds this member ever had in flight *)
}

val create_group : Flip.t -> ?config:config -> unit -> t
(** Creates a group: the creator is member 0 and its machine hosts the
    sequencer. *)

val join_group : Flip.t -> ?config:config -> group_addr:Addr.t -> unit ->
  (t, error) result
(** Blocking join.  The join is a totally-ordered event: every member
    (including the joiner) observes it at the same point in the
    message stream. *)

val group_addr : t -> Addr.t

val kernel_addr : t -> Addr.t

val my_mid : t -> mid

val incarnation : t -> int

val sequencer_mid : t -> mid

val is_sequencer : t -> bool

val member_list : t -> (mid * Addr.t) list

val alive : t -> bool
(** False once expelled or left. *)

val send : ?ops:int -> t -> bytes -> (seqno, error) result
(** Blocking totally-ordered broadcast.  Returns the sequence number
    under which every member delivers the message.  With resilience
    degree r, does not return until at least r other kernels hold the
    message.  [ops] (default 1) declares how many client operations
    the body carries, for wire-size and CPU accounting: the payload
    stays opaque, but a batched message is charged its real marginal
    per-op cost at the sequencer and on delivery. *)

val events : t -> event Channel.t
(** The totally-ordered delivery stream (messages and membership
    events).  Consumed by {!Api.receive_from_group}. *)

val leave : t -> (unit, error) result
(** Blocking, totally-ordered leave.  If the sequencer's member
    leaves, sequencing duty passes to the lowest-numbered survivor. *)

val reset : t -> min_members:int -> (int, error) result
(** Rebuilds the group after a processor failure (paper section 2.1):
    probes all members, declares unresponsive ones dead, reconciles
    histories so every survivor can obtain every message stable before
    the failure, elects this kernel sequencer, and installs the new
    incarnation.  Returns the number of surviving members. *)

val config : t -> config

val stats : t -> stats

val next_expected : t -> seqno
(** Next sequence number this member will deliver (for tests). *)
