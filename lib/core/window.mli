(** Sparse sliding window keyed by (non-negative) sequence number.

    O(1) find/set/remove backed by a power-of-two ring; replaces the
    Hashtbl previously used for the kernel's delivery slots.  Keys are
    expected to cluster within a bounded span (the protocol's history
    window); far-apart keys are legal and handled by growing. *)

type 'a t

val create : ?initial:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills empty cells so removed values become collectable; it
    is never returned by {!find}. *)

val length : 'a t -> int

val find : 'a t -> int -> 'a option

val mem : 'a t -> int -> bool

val ensure_capacity : 'a t -> int -> unit
(** [ensure_capacity t span] grows the ring (preserving contents) until
    any contiguous key span of [span] maps collision-free — what a
    pipelined sender needs so bursts of in-flight slots don't rehash
    on every round.  Never shrinks. *)

val set : 'a t -> int -> 'a -> unit
(** Insert or overwrite. *)

val remove : 'a t -> int -> unit
(** Absent keys are a no-op. *)

val drop_below : 'a t -> int -> unit
(** Removes every binding with key < bound.  O(ring size). *)

val drop_above : 'a t -> int -> unit
(** Removes every binding with key > bound.  O(ring size). *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
