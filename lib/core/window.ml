(* Sparse sliding window keyed by sequence number.

   A power-of-two ring indexed by [key land mask], with the key stored
   per cell to detect collisions.  The kernel's delivery slots cluster
   around the stream head (the sequencer's bounded history
   back-pressures senders), so the live keys span at most a few
   hundred sequence numbers and collisions are resolved by doubling.
   All operations are O(1); [drop_below]/[drop_above] and [iter] scan
   the ring, which only recovery and join paths do. *)

type 'a t = {
  mutable keys : int array;  (* -1 = empty cell *)
  mutable vals : 'a array;
  mutable mask : int;
  mutable count : int;
  dummy : 'a;  (* fills empty cells so removed values are collectable *)
}

let create ?(initial = 64) ~dummy () =
  let n = ref 1 in
  while !n < initial do
    n := !n * 2
  done;
  {
    keys = Array.make !n (-1);
    vals = Array.make !n dummy;
    mask = !n - 1;
    count = 0;
    dummy;
  }

let length t = t.count

let find t k =
  let i = k land t.mask in
  if t.keys.(i) = k then Some t.vals.(i) else None

let mem t k = t.keys.(k land t.mask) = k

(* Grow until every present key (plus the incoming one) hashes to a
   distinct cell.  Terminates: keys are distinct, so any ring larger
   than their span is collision-free. *)
let rec rehash t n ~incoming =
  let keys = Array.make n (-1) in
  let vals = Array.make n t.dummy in
  let mask = n - 1 in
  let ok = ref true in
  Array.iteri
    (fun i k ->
      if !ok && k >= 0 then begin
        let j = k land mask in
        if keys.(j) >= 0 then ok := false
        else begin
          keys.(j) <- k;
          vals.(j) <- t.vals.(i)
        end
      end)
    t.keys;
  if !ok && keys.(incoming land mask) >= 0 then ok := false;
  if !ok then begin
    t.keys <- keys;
    t.vals <- vals;
    t.mask <- mask
  end
  else rehash t (2 * n) ~incoming

(* Pre-size the ring so a contiguous key span of [span] starting
   anywhere maps to distinct cells.  Pipelined senders make slot keys
   arrive in bursts of [pipeline_depth] around the stream head; sizing
   the ring up front avoids rehash churn on every burst. *)
let ensure_capacity t span =
  let need = ref (t.mask + 1) in
  while !need < span do
    need := !need * 2
  done;
  if !need > t.mask + 1 then begin
    let keys = Array.make !need (-1) in
    let vals = Array.make !need t.dummy in
    let mask = !need - 1 in
    let clean = ref true in
    Array.iteri
      (fun i k ->
        if !clean && k >= 0 then begin
          let j = k land mask in
          if keys.(j) >= 0 then clean := false
          else begin
            keys.(j) <- k;
            vals.(j) <- t.vals.(i)
          end
        end)
      t.keys;
    if !clean then begin
      t.keys <- keys;
      t.vals <- vals;
      t.mask <- mask
    end
    else rehash t (2 * !need) ~incoming:(-1)
  end

let set t k v =
  if k < 0 then invalid_arg "Window.set: negative key";
  let i = k land t.mask in
  if t.keys.(i) = k then t.vals.(i) <- v
  else begin
    if t.keys.(i) >= 0 then rehash t (2 * (t.mask + 1)) ~incoming:k;
    let i = k land t.mask in
    t.keys.(i) <- k;
    t.vals.(i) <- v;
    t.count <- t.count + 1
  end

let remove t k =
  let i = k land t.mask in
  if t.keys.(i) = k then begin
    t.keys.(i) <- -1;
    t.vals.(i) <- t.dummy;
    t.count <- t.count - 1
  end

let drop_below t bound =
  if t.count > 0 then
    Array.iteri
      (fun i k ->
        if k >= 0 && k < bound then begin
          t.keys.(i) <- -1;
          t.vals.(i) <- t.dummy;
          t.count <- t.count - 1
        end)
      t.keys

let drop_above t bound =
  if t.count > 0 then
    Array.iteri
      (fun i k ->
        if k > bound then begin
          t.keys.(i) <- -1;
          t.vals.(i) <- t.dummy;
          t.count <- t.count - 1
        end)
      t.keys

let iter f t =
  Array.iteri (fun i k -> if k >= 0 then f k t.vals.(i)) t.keys
