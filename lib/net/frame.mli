(** Ethernet frames.

    The body is an extensible variant: upper layers (FLIP) add their
    own packet constructors, so the network layer stays independent of
    what it carries.  [size_on_wire] is what timing is computed from;
    it must include all headers (the payload never needs to be
    serialised in the simulation). *)

type body = ..

type body += Empty

type body += Corrupted of { orig : body; byte : int }
(** A frame mangled in flight by fault injection.  [byte] is the
    offset of the flipped bits within [size_on_wire]: receivers decide
    from it which header's checksum catches the damage.  The original
    body is kept so layered models can tell what {e would} have
    arrived — it must never be delivered as valid payload. *)

type dest =
  | Unicast of int  (** station id *)
  | Multicast of int  (** multicast group id *)
  | Broadcast

type t = {
  src : int;  (** sending station id *)
  dest : dest;
  size_on_wire : int;  (** bytes incl. the 14-byte Ethernet header *)
  body : body;
}

val pp_dest : Format.formatter -> dest -> unit
