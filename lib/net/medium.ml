type t =
  | Ether of Ether.t
  | Switch of Switch.t

type port =
  | Ether_port of Ether.port
  | Switch_port of Switch.port

type spec =
  | Shared
  | Switched of Switch.profile

type gilbert = Ether.gilbert = {
  p_gb : float;
  p_bg : float;
  loss_good : float;
  loss_bad : float;
}

type conditions = Ether.conditions = {
  gilbert : gilbert option;
  dup_prob : float;
  jitter_ns : int;
  corrupt_prob : float;
}

let clean = Ether.clean

let create engine cost = function
  | Shared -> Ether (Ether.create engine cost)
  | Switched p -> Switch (Switch.create engine cost p)

let shared e = Ether e
let switched s = Switch s
let ether = function Ether e -> Some e | Switch _ -> None
let switch = function Switch s -> Some s | Ether _ -> None

let spec_of_string s =
  match s with
  | "ether" | "shared" | "bus" -> Ok Shared
  | s when String.length s >= 6 && String.sub s 0 6 = "switch" ->
      Result.map (fun p -> Switched p) (Switch.profile_of_string s)
  | s -> Error ("unknown fabric: " ^ s)

let spec_to_string = function
  | Shared -> "ether"
  | Switched p -> Switch.profile_to_string p

(* Named profiles of persistent link conditions.  One table serves the
   CLI (--net), the adversarial swarm test and the loadgen sweep, so a
   profile name means the same impairment everywhere.  The bursty-*
   variants vary Gilbert-Elliott burst severity for the
   loss-vs-delivery-delay table in EXPERIMENTS.md. *)
let condition_profiles =
  let burst p_gb p_bg loss_bad =
    { clean with gilbert = Some { p_gb; p_bg; loss_good = 0.005; loss_bad } }
  in
  [
    ("clean", clean);
    ("bursty-light", burst 0.01 0.4 0.3);
    ("bursty", burst 0.02 0.25 0.6);
    ("bursty-heavy", burst 0.05 0.15 0.9);
    ("dup", { clean with dup_prob = 0.05 });
    ("reorder", { clean with jitter_ns = Amoeba_sim.Time.ms 3 });
    ("corrupt", { clean with corrupt_prob = 0.02 });
    ( "adversarial",
      {
        gilbert =
          Some { p_gb = 0.01; p_bg = 0.3; loss_good = 0.002; loss_bad = 0.4 };
        dup_prob = 0.05;
        jitter_ns = Amoeba_sim.Time.ms 2;
        corrupt_prob = 0.01;
      } );
  ]

let net_of_string s =
  let parts = String.split_on_char '+' s in
  let rec go fabric cond = function
    | [] -> Ok (fabric, cond)
    | part :: rest -> (
        match List.assoc_opt part condition_profiles with
        | Some c -> go fabric c rest
        | None -> (
            match spec_of_string part with
            | Ok f -> go f cond rest
            | Error _ ->
                Error
                  (Printf.sprintf
                     "unknown net spec %S (fabric: ether|switch[:SxH@U]; \
                      profile: %s)"
                     part
                     (String.concat "|" (List.map fst condition_profiles)))))
  in
  go Shared clean parts

let net_to_string (fabric, c) =
  let prof =
    match List.find_opt (fun (_, c') -> c' = c) condition_profiles with
    | Some (name, _) -> name
    | None -> "<custom>"
  in
  spec_to_string fabric ^ if prof = "clean" then "" else "+" ^ prof

let attach ?id t ~rx =
  match t with
  | Ether e -> Ether_port (Ether.attach ?id e ~rx)
  | Switch s -> Switch_port (Switch.attach ?id s ~rx)

let port_id = function
  | Ether_port p -> Ether.port_id p
  | Switch_port p -> Switch.port_id p

let transmit t port frame =
  match (t, port) with
  | Ether e, Ether_port p -> Ether.transmit e p frame
  | Switch s, Switch_port p -> Switch.transmit s p frame
  | _ -> invalid_arg "Medium.transmit: port from another medium"

let set_drop_fun t f =
  match t with
  | Ether e -> Ether.set_drop_fun e f
  | Switch s -> Switch.set_drop_fun s f

let set_loss_rate t r =
  match t with
  | Ether e -> Ether.set_loss_rate e r
  | Switch s -> Switch.set_loss_rate s r

let loss_rate = function
  | Ether e -> Ether.loss_rate e
  | Switch s -> Switch.loss_rate s

let frames_lost = function
  | Ether e -> Ether.frames_lost e
  | Switch s -> Switch.frames_lost s

let partition t a b =
  match t with
  | Ether e -> Ether.partition e a b
  | Switch s -> Switch.partition s a b

let partition_pair t a b =
  match t with
  | Ether e -> Ether.partition_pair e a b
  | Switch s -> Switch.partition_pair s a b

let heal_pair t a b =
  match t with
  | Ether e -> Ether.heal_pair e a b
  | Switch s -> Switch.heal_pair s a b

let heal = function Ether e -> Ether.heal e | Switch s -> Switch.heal s

let partitioned t a b =
  match t with
  | Ether e -> Ether.partitioned e a b
  | Switch s -> Switch.partitioned s a b

let partition_drops = function
  | Ether e -> Ether.partition_drops e
  | Switch s -> Switch.partition_drops s

let cut_oneway t ~src ~dst =
  match t with
  | Ether e -> Ether.cut_oneway e ~src ~dst
  | Switch s -> Switch.cut_oneway s ~src ~dst

let heal_oneway t ~src ~dst =
  match t with
  | Ether e -> Ether.heal_oneway e ~src ~dst
  | Switch s -> Switch.heal_oneway s ~src ~dst

let oneway_cut t ~src ~dst =
  match t with
  | Ether e -> Ether.oneway_cut e ~src ~dst
  | Switch s -> Switch.oneway_cut s ~src ~dst

let oneway_drops = function
  | Ether e -> Ether.oneway_drops e
  | Switch s -> Switch.oneway_drops s

let set_conditions t c =
  match t with
  | Ether e -> Ether.set_conditions e c
  | Switch s -> Switch.set_conditions s c

let conditions = function
  | Ether e -> Ether.conditions e
  | Switch s -> Switch.conditions s

let set_link_conditions t ~src ~dst c =
  match t with
  | Ether e -> Ether.set_link_conditions e ~src ~dst c
  | Switch s -> Switch.set_link_conditions s ~src ~dst c

let link_conditions t ~src ~dst =
  match t with
  | Ether e -> Ether.link_conditions e ~src ~dst
  | Switch s -> Switch.link_conditions s ~src ~dst

let cond_losses = function
  | Ether e -> Ether.cond_losses e
  | Switch s -> Switch.cond_losses s

let duplicates_injected = function
  | Ether e -> Ether.duplicates_injected e
  | Switch s -> Switch.duplicates_injected s

let corruptions_injected = function
  | Ether e -> Ether.corruptions_injected e
  | Switch s -> Switch.corruptions_injected s

let frames_jittered = function
  | Ether e -> Ether.frames_jittered e
  | Switch s -> Switch.frames_jittered s

let collisions = function
  | Ether e -> Ether.collisions e
  | Switch _ -> 0 (* full duplex: collisions cannot happen *)

let frames_delivered = function
  | Ether e -> Ether.frames_delivered e
  | Switch s -> Switch.frames_delivered s

let bytes_delivered = function
  | Ether e -> Ether.bytes_delivered e
  | Switch s -> Switch.bytes_delivered s

let excessive_collision_drops = function
  | Ether e -> Ether.excessive_collision_drops e
  | Switch _ -> 0

let queue_drops = function
  | Ether _ -> 0 (* the shared wire has no queues to overflow *)
  | Switch s -> Switch.queue_drops s

let utilisation = function
  | Ether e -> Ether.utilisation e
  | Switch s -> Switch.utilisation s

let reset_utilisation_window = function
  | Ether e -> Ether.reset_utilisation_window e
  | Switch s -> Switch.reset_utilisation_window s
