open Amoeba_sim

type t = {
  engine : Engine.t;
  cost : Cost_model.t;
  trace : Trace.t;
  net : Medium.t;
  name : string;
  id : int;
  mutable cpu : Resource.t;
  mutable disk : Resource.t;
      (** the local disk spindle/queue; remounted (fresh resource) on
          restart — contents are the stable store's business *)
  mutable nic : Nic.t;
  mutable group : Engine.group;
      (** lifecycle group of the current incarnation: kernel loop, NIC
          service, timers, app processes spawned on this machine *)
  mutable alive : bool ref;  (** shared with the nic's alive closure *)
  mutable paused : bool;
  mutable pause_resume : (unit -> unit) option;
      (** wakes the process that is sitting on the CPU while paused *)
  mutable n_restarts : int;
  mutable crash_hooks : (unit -> unit) list;
      (** run inside {!crash}, after the alive flag drops and before
          the group is cancelled; persists across restarts (it models
          attached hardware, e.g. the stable store's power-loss
          behaviour) *)
}

let fresh_nic engine cost trace net ~group ~name ~id ~cpu =
  let alive = ref true in
  let nic =
    Nic.create engine cost trace net ~group ~station:id ~host:name ~cpu
      ~alive:(fun () -> !alive)
  in
  (nic, alive)

let create engine cost trace net ~name ~id =
  let group = Engine.create_group engine ~label:(name ^ "/0") in
  let cpu = Resource.create engine ~name:(name ^ ":cpu") in
  let disk = Resource.create engine ~name:(name ^ ":disk") in
  let nic, alive = fresh_nic engine cost trace net ~group ~name ~id ~cpu in
  {
    engine;
    cost;
    trace;
    net;
    name;
    id;
    cpu;
    disk;
    nic;
    group;
    alive;
    paused = false;
    pause_resume = None;
    n_restarts = 0;
    crash_hooks = [];
  }

let engine t = t.engine
let cost t = t.cost
let trace t = t.trace
let name t = t.name
let id t = t.id
let cpu t = t.cpu
let disk t = t.disk
let nic t = t.nic
let on_crash t f = t.crash_hooks <- f :: t.crash_hooks
let group t = t.group
let is_alive t = !(t.alive)

(* Crash-stop: gate the NIC *and* cancel the machine's whole process
   group — kernel loop, armed timers, channel waiters, app processes.
   A crashed machine contributes zero engine events afterwards.  Crash
   hooks (attached hardware — the stable store materialising power
   loss on the write cache) run after the alive flag drops but before
   the group dies, so they observe the exact moment of failure. *)
let crash t =
  if !(t.alive) then begin
    t.alive := false;
    t.paused <- false;
    t.pause_resume <- None;
    List.iter (fun f -> f ()) t.crash_hooks;
    Engine.cancel_group t.engine t.group
  end

let is_paused t = t.paused
let restarts t = t.n_restarts

(* Pausing stalls the CPU: a dedicated process takes the resource and
   holds it until [resume].  Everything charged to the machine — NIC
   service, protocol layers, application threads — queues up behind
   it, while the wire keeps delivering into the receive ring (which
   overflows under load, as on a real wedged host).  The machine is
   alive the whole time: this is the "live but slow" failure mode that
   unreliable failure detection mistakes for a crash. *)
let pause t =
  if !(t.alive) && not t.paused then begin
    t.paused <- true;
    Engine.spawn ~group:t.group t.engine (fun () ->
        Resource.acquire t.cpu;
        (* A resume (or restart) may have raced ahead of the acquire;
           only park if the pause is still in force. *)
        if t.paused then
          Engine.suspend t.engine ~register:(fun resume ->
              t.pause_resume <- Some resume);
        t.pause_resume <- None;
        Resource.release t.cpu)
  end

let resume t =
  if t.paused then begin
    t.paused <- false;
    match t.pause_resume with
    | Some r ->
        t.pause_resume <- None;
        r ()
    | None -> ()
  end

(* Un-crash: the machine reboots under a fresh lifecycle group (the
   restart generation is part of its label), with a fresh CPU — the old
   one may still be "held" by a fiber that died mid-consume and will
   never release it — a freshly mounted disk (same reasoning for the
   I/O queue; the *contents* survive in the stable store, which is the
   point of having one), and a fresh NIC (empty ring, no multicast
   subscriptions, no handler) attached under its old station id.  The
   fresh alive flag keeps the pre-crash NIC — and everything registered
   on it — dead.  Kernel state does not survive a reboot: the owner
   must build a new FLIP stack and re-join its groups (see
   Cluster.restart), but it can first replay its stable store. *)
let restart t =
  if not !(t.alive) then begin
    t.paused <- false;
    t.pause_resume <- None;
    t.n_restarts <- t.n_restarts + 1;
    t.group <-
      Engine.create_group t.engine
        ~label:(Printf.sprintf "%s/%d" t.name t.n_restarts);
    t.cpu <- Resource.create t.engine ~name:(t.name ^ ":cpu");
    t.disk <- Resource.create t.engine ~name:(t.name ^ ":disk");
    let nic, alive =
      fresh_nic t.engine t.cost t.trace t.net ~group:t.group ~name:t.name
        ~id:t.id ~cpu:t.cpu
    in
    t.nic <- nic;
    t.alive <- alive
  end

let jitter engine d = Cost_model.jitter (Engine.rng engine) d

let work t ~layer d =
  if !(t.alive) then begin
    let d = jitter t.engine d in
    Resource.consume t.cpu d;
    Trace.record t.trace t.engine ~layer ~host:t.name d
  end

let cpu_utilisation t =
  let elapsed = Engine.now t.engine in
  if elapsed = 0 then 0.
  else float_of_int (Resource.busy_time t.cpu) /. float_of_int elapsed
