type body = ..
type body += Empty

type body += Corrupted of { orig : body; byte : int }
(** A frame mangled in flight by fault injection.  [byte] is the
    offset of the flipped bits within [size_on_wire]: receivers decide
    from it which header's checksum catches the damage.  The original
    body is kept so layered models can tell what {e would} have
    arrived — it must never be delivered as valid payload. *)

type dest = Unicast of int | Multicast of int | Broadcast

type t = {
  src : int;
  dest : dest;
  size_on_wire : int;
  body : body;
}

let pp_dest fmt = function
  | Unicast id -> Format.fprintf fmt "uni:%d" id
  | Multicast id -> Format.fprintf fmt "mc:%d" id
  | Broadcast -> Format.fprintf fmt "bcast"
