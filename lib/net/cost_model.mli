(** All calibrated timing constants of the simulated testbed.

    The defaults model the paper's hardware: 20-MHz MC68030s with AMD
    Lance interfaces on a shared 10 Mbit/s Ethernet.  They are
    calibrated so the anchor measurements in DESIGN.md (2.7 ms 0-byte
    broadcast to a group of 2; 740 us group-layer share; ~800 us
    sequencer processing per message; ~600 us per resilience
    acknowledgement) land near the paper's numbers.  Everything else
    in the reproduced figures follows from the simulation. *)

type disk = {
  disk_seek_ns : int;  (** positioning delay charged once per I/O *)
  disk_ns_per_byte : int;  (** sequential transfer, ns per byte *)
  disk_fsync_ns : int;
      (** cost of forcing the write cache to the platter; a synchronous
          append pays it on top of seek + transfer *)
}
(** Timing model of one machine's local disk, used by
    [Amoeba_grouplib.Stable_store] for WAL appends, checkpoint writes
    and recovery scans.  Purely a cost model: contents live in the
    store, durability semantics in its write-cache/durable-frontier
    logic. *)

type t = {
  (* Wire *)
  wire_ns_per_byte : int;  (** 10 Mbit/s = 800 ns/byte *)
  preamble_bytes : int;  (** Ethernet preamble + SFD *)
  crc_bytes : int;
  min_frame_bytes : int;  (** minimum payload-bearing frame size *)
  max_frame_bytes : int;  (** MTU incl. 14-byte Ethernet header *)
  interframe_gap_ns : int;
  slot_time_ns : int;  (** collision window, 512 bit times *)
  jam_ns : int;
  max_backoff_exp : int;
  max_attempts : int;  (** excessive-collision drop threshold *)
  (* Host *)
  interrupt_ns : int;  (** taking one interrupt *)
  driver_tx_ns : int;  (** driver work per transmitted packet *)
  driver_rx_ns : int;  (** driver work per received packet *)
  copy_ns_per_byte : int;  (** one memory-to-memory copy *)
  context_switch_ns : int;  (** thread switch in user space *)
  (* Protocol layers (per packet) *)
  flip_tx_ns : int;
  flip_rx_ns : int;
  group_send_ns : int;  (** group layer, SendToGroup path *)
  group_seq_ns : int;  (** group layer at the sequencer, per message *)
  group_seq_member_ns : int;  (** sequencer cost per group member *)
  group_seq_op_ns : int;
      (** sequencer cost per {e additional} op in a batched message: a
          message carrying [k] ops costs [group_seq_ns + (k-1) *
          group_seq_op_ns], so the fixed ~800 us protocol processing
          is amortized, not waved away.  A singleton message costs
          exactly what it did unbatched. *)
  group_deliver_ns : int;  (** group layer, delivery path, per message *)
  group_deliver_op_ns : int;
      (** delivery cost per additional op in a batched message,
          mirroring {!group_seq_op_ns} on the receive side *)
  (* Device *)
  rx_ring_frames : int;  (** Lance buffering: 32 packets *)
  (* Protocol parameters *)
  header_ether : int;
  header_flow_control : int;
  header_flip : int;
  header_group : int;
  header_user : int;
  history_buffer : int;  (** sequencer history size, messages *)
  retrans_timeout_ns : int;  (** sender timeout awaiting sequencing *)
  nack_timeout_ns : int;  (** member timeout awaiting a retransmit *)
  probe_timeout_ns : int;  (** failure-detector probe timeout *)
  probe_retries : int;
  bb_threshold_bytes : int;  (** auto method: BB for messages >= this *)
  multicast_frag_gap_ns : int;
      (** multicast flow control (0 = off, the paper's configuration):
          pause between the fragments of a multi-packet multicast so a
          slow receiver's ring can drain — the open problem of section
          4, solved crudely by rate pacing *)
  disk : disk;  (** local-disk timing; {!hdd1996} in {!default} *)
  (* Switched fabric (Switch) *)
  switch_fwd_ns : int;
      (** store-and-forward lookup+forwarding latency per frame; also
          the per-port ingress service time, kept below the minimum
          frame time at 10/100 Mbit/s so ports forward at line rate *)
  switch_ingress_frames : int;  (** per-port ingress FIFO depth *)
  switch_egress_frames : int;  (** per-port egress FIFO depth *)
  switch_uplink_frames : int;
      (** per-direction FIFO depth of each segment uplink — the queue
          that overflows under fabric oversubscription *)
}

val default : t

val mc68030 : t
(** Alias of {!default}: the paper's testbed. *)

val hdd1996 : disk
(** The 1996-era disk the paper's machines would have had: ~10 ms
    seek+rotate, ~1 MB/s sequential, a flush costs another rotation.
    The default, so legacy checkpoint timing is unchanged. *)

val hdd : disk
(** Modern 7200-rpm spinning disk: ~8 ms positioning, ~160 MB/s. *)

val ssd : disk
(** SATA SSD: ~80 us access, ~500 MB/s, ~100 us flush. *)

val nvme : disk
(** NVMe flash: ~20 us access, ~1 GB/s, ~20 us flush. *)

val disk_profiles : (string * disk) list
(** Named disk profiles for [--disk]: hdd1996, hdd, ssd, nvme. *)

val with_mbps : int -> t -> t
(** The same stations on a faster (or slower) Ethernet: rescales the
    bit-timed medium constants (byte time, interframe gap, slot time,
    jam) to the given bit rate, leaving every host-side cost alone.
    [with_mbps 10 default = default].  On the paper's 10 Mbit/s the
    shared wire saturates near 850 service ops/s regardless of shard
    count; a faster wire moves the bottleneck back onto the machines
    so per-shard sequencers can scale. *)

val headers_total : t -> int
(** 116 bytes in the paper: Ethernet 14 + flow control 2 + FLIP 40 +
    group 28 + user 32. *)

val frame_time : t -> bytes_on_wire:int -> Amoeba_sim.Time.t
(** Time to clock one frame onto the wire, including preamble, CRC,
    minimum-frame padding and the interframe gap. *)

val jitter : Random.State.t -> int -> int
(** +/-5% perturbation of a host cost: real machines are not in
    lockstep, and perfect symmetry would make e.g. all resilience
    acknowledgements hit the wire at the same nanosecond and collide
    indefinitely. *)
