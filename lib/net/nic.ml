open Amoeba_sim

module Int_set = Set.Make (Int)

type t = {
  engine : Engine.t;
  cost : Cost_model.t;
  trace : Trace.t;
  net : Medium.t;
  port : Medium.port;
  station : int;
  host : string;
  cpu : Resource.t;
  alive : unit -> bool;
  tx_lock : Resource.t;
  ring : Frame.t Channel.t;
  mutable in_ring : int;
  mutable mc_groups : Int_set.t;
  mutable handler : (Frame.t -> unit) option;
  mutable n_rx_dropped : int;
  mutable n_rx : int;
  mutable n_tx : int;
  mutable n_interrupts : int;
}

let accepts t (frame : Frame.t) =
  match frame.dest with
  | Frame.Unicast id -> id = t.station
  | Frame.Broadcast -> true
  | Frame.Multicast g -> Int_set.mem g t.mc_groups

let on_wire_rx t frame =
  if t.alive () && accepts t frame then begin
    if t.in_ring >= t.cost.rx_ring_frames then
      t.n_rx_dropped <- t.n_rx_dropped + 1
    else begin
      t.in_ring <- t.in_ring + 1;
      Channel.send t.ring frame
    end
  end

(* Service process: one interrupt per buffered frame, driver work and
   a copy out of the Lance ring, then hand the frame up.  The ring
   slot frees only once the copy is done, so a slow host overflows
   the ring under load — as the paper's sequencer does at 4 KB. *)
let rec service t () =
  let frame = Channel.recv t.engine t.ring in
  let cost =
    Cost_model.jitter (Engine.rng t.engine)
      (t.cost.interrupt_ns + t.cost.driver_rx_ns
      + (frame.Frame.size_on_wire * t.cost.copy_ns_per_byte))
  in
  Resource.consume t.cpu cost;
  Trace.record t.trace t.engine ~layer:"ether" ~host:t.host cost;
  t.in_ring <- t.in_ring - 1;
  t.n_rx <- t.n_rx + 1;
  t.n_interrupts <- t.n_interrupts + 1;
  (if t.alive () then
     match t.handler with Some h -> h frame | None -> ());
  service t ()

let create engine cost trace net ~group ~station ~host ~cpu ~alive =
  let t_ref = ref None in
  (* A match, not Option.iter: this runs once per frame on the wire and
     a [fun t -> ...] capturing [frame] would allocate a closure per
     delivery. *)
  let rx frame =
    match !t_ref with Some t -> on_wire_rx t frame | None -> ()
  in
  let port = Medium.attach ~id:station net ~rx in
  let t =
    {
      engine;
      cost;
      trace;
      net;
      port;
      station;
      host;
      cpu;
      alive;
      tx_lock = Resource.create engine ~name:(host ^ ":tx");
      ring = Channel.create ();
      in_ring = 0;
      mc_groups = Int_set.empty;
      handler = None;
      n_rx_dropped = 0;
      n_rx = 0;
      n_tx = 0;
      n_interrupts = 0;
    }
  in
  t_ref := Some t;
  (* The service process belongs to the machine's lifecycle group, so a
     crash halts it (and any fiber it runs the rx handler in) outright
     rather than leaving it draining the ring behind a dead NIC gate. *)
  Engine.spawn ~group engine (service t);
  t

let station t = t.station
let set_handler t h = t.handler <- Some h
let join_multicast t g = t.mc_groups <- Int_set.add g t.mc_groups
let leave_multicast t g = t.mc_groups <- Int_set.remove g t.mc_groups

let send t frame =
  if not (t.alive ()) then `Dropped
  else begin
    let cost =
      Cost_model.jitter (Engine.rng t.engine)
        (t.cost.driver_tx_ns
        + (frame.Frame.size_on_wire * t.cost.copy_ns_per_byte))
    in
    Resource.consume t.cpu cost;
    Trace.record t.trace t.engine ~layer:"ether" ~host:t.host cost;
    Resource.acquire t.tx_lock;
    let wire_start = Engine.now t.engine in
    let outcome = Medium.transmit t.net t.port frame in
    Trace.record t.trace t.engine ~layer:"ether" ~host:"wire"
      (Engine.now t.engine - wire_start);
    Resource.release t.tx_lock;
    if outcome = `Sent then t.n_tx <- t.n_tx + 1;
    outcome
  end

let rx_dropped t = t.n_rx_dropped
let rx_frames t = t.n_rx
let tx_frames t = t.n_tx
let interrupts t = t.n_interrupts
