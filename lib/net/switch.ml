open Amoeba_sim

(* A switched full-duplex fabric: each station has a private two-way
   link into a store-and-forward switch.  There is no carrier sense
   and no collision domain — contention appears as *queueing*: every
   port has a bounded ingress and egress FIFO, every segment uplink a
   bounded FIFO per direction, and a full queue tail-drops the frame
   (counted honestly; the sender still observed `Sent`, exactly the
   loss model the NACK machinery exists for). *)

type profile = {
  segments : int;
  segment_size : int;
  uplink_mult : int;
}

let flat = { segments = 1; segment_size = max_int; uplink_mult = 1 }

let profile_to_string p =
  if p.segments <= 1 then "switch"
  else Printf.sprintf "switch:%dx%d@%d" p.segments p.segment_size p.uplink_mult

let profile_of_string s =
  if s = "switch" then Ok flat
  else
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "switch" -> (
        let spec = String.sub s (i + 1) (String.length s - i - 1) in
        let geom, mult =
          match String.index_opt spec '@' with
          | Some j ->
              ( String.sub spec 0 j,
                int_of_string_opt
                  (String.sub spec (j + 1) (String.length spec - j - 1)) )
          | None -> (spec, Some 10)
        in
        match (String.split_on_char 'x' geom, mult) with
        | [ segs; size ], Some mult -> (
            match (int_of_string_opt segs, int_of_string_opt size) with
            | Some segments, Some segment_size
              when segments >= 1 && segment_size >= 1 && mult >= 1 ->
                Ok { segments; segment_size; uplink_mult = mult }
            | _ -> Error ("bad switch profile: " ^ s))
        | _ -> Error ("bad switch profile: " ^ s))
    | _ -> Error ("bad switch profile: " ^ s)

type port = {
  id : int;
  rx : Frame.t -> unit;
}

type fifo = {
  frames : Frame.t Queue.t;
  cap : int;
  mutable busy : bool;  (** a drain process is running *)
  mutable drops : int;  (** tail drops on this queue *)
}

let fifo cap = { frames = Queue.create (); cap; busy = false; drops = 0 }

type station = {
  sid : int;
  seg : int;
  mutable rxs : port list;
      (** all ports attached under this station id, oldest first — a
          restarted machine re-attaches under its old id like on the
          Ether, and the dead NIC's [alive] gate filters for it *)
  ingress : fifo;  (** host -> switch *)
  egress : fifo;  (** switch -> host *)
}

type link_state = {
  mutable cond : Ether.conditions;
  mutable ge_bad : bool;
}

type uplink = {
  up : fifo;  (** leaf segment -> core *)
  down : fifo;  (** core -> leaf segment *)
}

type t = {
  engine : Engine.t;
  cost : Cost_model.t;
  profile : profile;
  stations : (int, station) Hashtbl.t;
  mutable stations_ordered : station array;  (** attach order *)
  mutable next_port : int;
  uplinks : uplink array;  (** one per segment; [||] when flat *)
  mutable drop_fun : (Frame.t -> bool) option;
  mutable loss_rate : float;
  mutable n_lost : int;
  cuts : (int, unit) Hashtbl.t;
  mutable n_partition_drops : int;
  dcuts : (int, unit) Hashtbl.t;
  mutable n_oneway_drops : int;
  default_link : link_state;
  links : (int, link_state) Hashtbl.t;
  mutable n_cond_lost : int;
  mutable n_duplicated : int;
  mutable n_corrupted : int;
  mutable n_jittered : int;
  mutable n_frames : int;
  mutable n_bytes : int;
  mutable busy_ns : Time.t;  (** summed egress (downlink) serialization *)
  mutable win_start : Time.t;
  mutable win_busy : Time.t;
}

let create engine cost profile =
  {
    engine;
    cost;
    profile;
    stations = Hashtbl.create 64;
    stations_ordered = [||];
    next_port = 0;
    uplinks =
      (if profile.segments <= 1 then [||]
       else
         Array.init profile.segments (fun _ ->
             {
               up = fifo cost.Cost_model.switch_uplink_frames;
               down = fifo cost.Cost_model.switch_uplink_frames;
             }));
    drop_fun = None;
    loss_rate = 0.;
    n_lost = 0;
    cuts = Hashtbl.create 8;
    n_partition_drops = 0;
    dcuts = Hashtbl.create 8;
    n_oneway_drops = 0;
    default_link = { cond = Ether.clean; ge_bad = false };
    links = Hashtbl.create 8;
    n_cond_lost = 0;
    n_duplicated = 0;
    n_corrupted = 0;
    n_jittered = 0;
    n_frames = 0;
    n_bytes = 0;
    busy_ns = Time.zero;
    win_start = Time.zero;
    win_busy = Time.zero;
  }

let profile t = t.profile

let seg_of t id =
  if t.profile.segments <= 1 then 0
  else min (id / t.profile.segment_size) (t.profile.segments - 1)

let station_for t id =
  match Hashtbl.find_opt t.stations id with
  | Some st -> st
  | None ->
      let st =
        {
          sid = id;
          seg = seg_of t id;
          rxs = [];
          ingress = fifo t.cost.Cost_model.switch_ingress_frames;
          egress = fifo t.cost.Cost_model.switch_egress_frames;
        }
      in
      Hashtbl.replace t.stations id st;
      t.stations_ordered <- Array.append t.stations_ordered [| st |];
      st

let attach ?id t ~rx =
  let id = match id with Some i -> i | None -> t.next_port in
  t.next_port <- max (id + 1) (t.next_port + 1);
  let port = { id; rx } in
  let st = station_for t id in
  st.rxs <- st.rxs @ [ port ];
  port

let port_id p = p.id

(* ----- fault injection state (same model as Ether) ----- *)

let injected_drop t frame =
  (match t.drop_fun with Some f -> f frame | None -> false)
  || (t.loss_rate > 0.
     && Random.State.float (Engine.rng t.engine) 1.0 < t.loss_rate)

let pair_key a b = if a < b then (a lsl 16) lor b else (b lsl 16) lor a
let dkey src dst = (src lsl 16) lor dst

let partitioned t a b = a <> b && Hashtbl.mem t.cuts (pair_key a b)

let partition_pair t a b = if a <> b then Hashtbl.replace t.cuts (pair_key a b) ()

let heal_pair t a b = Hashtbl.remove t.cuts (pair_key a b)

let partition t side_a side_b =
  List.iter (fun a -> List.iter (fun b -> partition_pair t a b) side_b) side_a

let cut_oneway t ~src ~dst =
  if src <> dst then Hashtbl.replace t.dcuts (dkey src dst) ()

let heal_oneway t ~src ~dst = Hashtbl.remove t.dcuts (dkey src dst)

let oneway_cut t ~src ~dst = Hashtbl.mem t.dcuts (dkey src dst)

let heal t =
  Hashtbl.reset t.cuts;
  Hashtbl.reset t.dcuts

let set_conditions t c =
  t.default_link.cond <- c;
  t.default_link.ge_bad <- false

let conditions t = t.default_link.cond

let set_link_conditions t ~src ~dst c =
  match c with
  | None -> Hashtbl.remove t.links (dkey src dst)
  | Some c -> Hashtbl.replace t.links (dkey src dst) { cond = c; ge_bad = false }

let link_conditions t ~src ~dst =
  match Hashtbl.find_opt t.links (dkey src dst) with
  | Some ls -> Some ls.cond
  | None -> None

let link_for t ~src ~dst =
  match Hashtbl.find_opt t.links (dkey src dst) with
  | Some ls -> ls
  | None -> t.default_link

let gilbert_loss t ls (g : Ether.gilbert) =
  let rng = Engine.rng t.engine in
  if ls.ge_bad then begin
    if Random.State.float rng 1.0 < g.Ether.p_bg then ls.ge_bad <- false
  end
  else if g.Ether.p_gb > 0. && Random.State.float rng 1.0 < g.Ether.p_gb then
    ls.ge_bad <- true;
  let p = if ls.ge_bad then g.Ether.loss_bad else g.Ether.loss_good in
  p > 0. && Random.State.float rng 1.0 < p

(* ----- delivery (the switch side of the host downlink) ----- *)

(* One copy to every port attached under the station, applying
   corruption and delivery jitter.  Jittered copies run in the root
   group, like everything else the fabric schedules: frames inside the
   switch outlive their sender. *)
let deliver_copy t st (c : Ether.conditions) frame =
  let rng = Engine.rng t.engine in
  let frame =
    if
      c.Ether.corrupt_prob > 0.
      && Random.State.float rng 1.0 < c.Ether.corrupt_prob
    then begin
      t.n_corrupted <- t.n_corrupted + 1;
      let byte = Random.State.int rng (max 1 frame.Frame.size_on_wire) in
      { frame with Frame.body = Frame.Corrupted { orig = frame.Frame.body; byte } }
    end
    else frame
  in
  let push () = List.iter (fun p -> p.rx frame) st.rxs in
  if c.Ether.jitter_ns > 0 then begin
    let delay = Random.State.int rng (c.Ether.jitter_ns + 1) in
    if delay > 0 then begin
      t.n_jittered <- t.n_jittered + 1;
      ignore
        (Engine.schedule ~group:(Engine.root_group t.engine) t.engine
           ~after:delay (fun () -> push ()))
    end
    else push ()
  end
  else push ()

(* Apply partitions, one-way cuts and per-directed-link conditions at
   the moment the egress port hands the frame to the station — the
   same observation point as the Ether's receiver loop, so the fault
   DSL behaves identically on both fabrics. *)
let deliver_station t st frame =
  let src = frame.Frame.src in
  if Hashtbl.length t.cuts > 0 && partitioned t src st.sid then
    t.n_partition_drops <- t.n_partition_drops + 1
  else if Hashtbl.length t.dcuts > 0 && Hashtbl.mem t.dcuts (dkey src st.sid)
  then t.n_oneway_drops <- t.n_oneway_drops + 1
  else begin
    let ls = link_for t ~src ~dst:st.sid in
    let c = ls.cond in
    let lost =
      match c.Ether.gilbert with Some g -> gilbert_loss t ls g | None -> false
    in
    if lost then t.n_cond_lost <- t.n_cond_lost + 1
    else begin
      deliver_copy t st c frame;
      if
        c.Ether.dup_prob > 0.
        && Random.State.float (Engine.rng t.engine) 1.0 < c.Ether.dup_prob
      then begin
        t.n_duplicated <- t.n_duplicated + 1;
        deliver_copy t st c frame
      end
    end
  end

(* ----- the queued forwarding path -----

   Every drain process runs in the engine's root group: queues are
   switch hardware, so a crashed sender's frames already inside the
   fabric are still forwarded and delivered (the Ether root-group
   rule), and a receiver's crash cannot wedge its egress port. *)

let rec egress_service t st () =
  match Queue.take_opt st.egress.frames with
  | None -> st.egress.busy <- false
  | Some frame ->
      let d =
        Cost_model.frame_time t.cost ~bytes_on_wire:frame.Frame.size_on_wire
      in
      Engine.sleep t.engine d;
      t.busy_ns <- t.busy_ns + d;
      deliver_station t st frame;
      egress_service t st ()

let to_egress t st frame =
  if st.sid <> frame.Frame.src then begin
    if Queue.length st.egress.frames >= st.egress.cap then
      st.egress.drops <- st.egress.drops + 1
    else begin
      Queue.push frame st.egress.frames;
      if not st.egress.busy then begin
        st.egress.busy <- true;
        Engine.spawn
          ~group:(Engine.root_group t.engine)
          t.engine (egress_service t st)
      end
    end
  end

let local_flood t seg frame =
  Array.iter
    (fun st -> if st.seg = seg then to_egress t st frame)
    t.stations_ordered

(* Uplinks serialize at [uplink_mult] times the host link rate; with
   [segment_size] hosts per segment the fabric is oversubscribed
   [segment_size / uplink_mult] to one. *)
let uplink_time t frame =
  let d = Cost_model.frame_time t.cost ~bytes_on_wire:frame.Frame.size_on_wire in
  max 1 (d / max 1 t.profile.uplink_mult)

let rec up_service t seg () =
  let u = t.uplinks.(seg) in
  match Queue.take_opt u.up.frames with
  | None -> u.up.busy <- false
  | Some frame ->
      Engine.sleep t.engine (uplink_time t frame);
      core_route t seg frame;
      up_service t seg ()

and down_service t seg () =
  let u = t.uplinks.(seg) in
  match Queue.take_opt u.down.frames with
  | None -> u.down.busy <- false
  | Some frame ->
      Engine.sleep t.engine (uplink_time t frame);
      (match frame.Frame.dest with
      | Frame.Unicast d -> (
          match Hashtbl.find_opt t.stations d with
          | Some dst when dst.seg = seg -> to_egress t dst frame
          | _ -> ())
      | Frame.Broadcast | Frame.Multicast _ -> local_flood t seg frame);
      down_service t seg ()

and to_uplink t seg dir frame =
  let u = t.uplinks.(seg) in
  let q = match dir with `Up -> u.up | `Down -> u.down in
  if Queue.length q.frames >= q.cap then q.drops <- q.drops + 1
  else begin
    Queue.push frame q.frames;
    if not q.busy then begin
      q.busy <- true;
      Engine.spawn
        ~group:(Engine.root_group t.engine)
        t.engine
        (match dir with `Up -> up_service t seg | `Down -> down_service t seg)
    end
  end

and core_route t sseg frame =
  (* The core crossbar itself is not a bottleneck; only the uplinks
     are.  One copy of a flooded frame per remote segment. *)
  match frame.Frame.dest with
  | Frame.Unicast d -> to_uplink t (seg_of t d) `Down frame
  | Frame.Broadcast | Frame.Multicast _ ->
      for s = 0 to Array.length t.uplinks - 1 do
        if s <> sseg then to_uplink t s `Down frame
      done

(* Forwarding after store-and-forward reception: look the destination
   up, then egress locally, or hand cross-segment traffic to the
   uplink.  Broadcast and multicast flood — the switch does no group
   snooping; NICs filter multicast, as on the shared wire. *)
let route t st frame =
  match frame.Frame.dest with
  | Frame.Unicast d ->
      if seg_of t d = st.seg then (
        match Hashtbl.find_opt t.stations d with
        | Some dst -> to_egress t dst frame
        | None -> () (* no such station: nothing behind that port *))
      else to_uplink t st.seg `Up frame
  | Frame.Broadcast | Frame.Multicast _ ->
      local_flood t st.seg frame;
      if Array.length t.uplinks > 0 then to_uplink t st.seg `Up frame

let rec ingress_service t st () =
  match Queue.take_opt st.ingress.frames with
  | None -> st.ingress.busy <- false
  | Some frame ->
      Engine.sleep t.engine t.cost.Cost_model.switch_fwd_ns;
      route t st frame;
      ingress_service t st ()

(* The frame has fully arrived at the switch (store-and-forward).
   Injected loss applies here, once per frame, like the Ether's
   [deliver]; then the bounded ingress FIFO either accepts or
   tail-drops it. *)
let ingress_accept t sid frame =
  if injected_drop t frame then t.n_lost <- t.n_lost + 1
  else begin
    t.n_frames <- t.n_frames + 1;
    t.n_bytes <- t.n_bytes + frame.Frame.size_on_wire;
    let st = station_for t sid in
    if Queue.length st.ingress.frames >= st.ingress.cap then
      st.ingress.drops <- st.ingress.drops + 1
    else begin
      Queue.push frame st.ingress.frames;
      if not st.ingress.busy then begin
        st.ingress.busy <- true;
        Engine.spawn
          ~group:(Engine.root_group t.engine)
          t.engine (ingress_service t st)
      end
    end
  end

(* Full duplex: no carrier sense, no collisions, never `Dropped`.  The
   sender blocks for its own serialization time (the NIC's tx lock
   already serializes frames per host), but arrival at the switch is a
   root-group event — once the first bit is on the private link the
   frame is committed, and the sender's crash mid-serialization does
   not claw it back (the Ether root-group rule). *)
let transmit t port frame =
  let d = Cost_model.frame_time t.cost ~bytes_on_wire:frame.Frame.size_on_wire in
  ignore
    (Engine.schedule ~group:(Engine.root_group t.engine) t.engine ~after:d
       (fun () -> ingress_accept t port.id frame));
  Engine.sleep t.engine d;
  `Sent

(* ----- statistics ----- *)

let set_drop_fun t f = t.drop_fun <- f
let set_loss_rate t r = t.loss_rate <- r
let loss_rate t = t.loss_rate
let frames_lost t = t.n_lost
let partition_drops t = t.n_partition_drops
let oneway_drops t = t.n_oneway_drops
let cond_losses t = t.n_cond_lost
let duplicates_injected t = t.n_duplicated
let corruptions_injected t = t.n_corrupted
let frames_jittered t = t.n_jittered
let frames_delivered t = t.n_frames
let bytes_delivered t = t.n_bytes

let fold_stations t f acc =
  Array.fold_left (fun acc st -> f acc st) acc t.stations_ordered

let ingress_drops t = fold_stations t (fun acc st -> acc + st.ingress.drops) 0
let egress_drops t = fold_stations t (fun acc st -> acc + st.egress.drops) 0

let uplink_drops t =
  Array.fold_left (fun acc u -> acc + u.up.drops + u.down.drops) 0 t.uplinks

let queue_drops t = ingress_drops t + egress_drops t + uplink_drops t

let reset_utilisation_window t =
  t.win_start <- Engine.now t.engine;
  t.win_busy <- t.busy_ns

(* Mean downlink utilisation across all ports: total egress
   serialization time over (window x port count).  A saturated single
   hot port in an otherwise idle 100-port fabric reads as ~1%, which
   is the honest fabric-level number; per-port bottleneck hunting is
   the bench's job. *)
let utilisation t =
  let elapsed = Engine.now t.engine - t.win_start in
  if elapsed <= 0 then 0.
  else
    let ports = max 1 (Array.length t.stations_ordered) in
    float_of_int (t.busy_ns - t.win_busy)
    /. (float_of_int elapsed *. float_of_int ports)
