open Amoeba_sim

type outcome = Won | Collided

type intent = {
  result : outcome Ivar.t;
  frame : Frame.t;
}

type state =
  | Idle
  | Contending of { since : Time.t; mutable intents : intent list }
  | Busy

type port = {
  id : int;
  rx : Frame.t -> unit;
}

(* Per-link adversarial conditions (see the mli): a [conditions]
   record describes what one directed src->dst path does to frames;
   [link_state] adds the Gilbert-Elliott channel state, which is
   mutable per link so loss stays correlated along one path. *)

type gilbert = {
  p_gb : float;  (** good -> bad transition probability, per frame *)
  p_bg : float;  (** bad -> good *)
  loss_good : float;
  loss_bad : float;
}

type conditions = {
  gilbert : gilbert option;
  dup_prob : float;
  jitter_ns : int;
  corrupt_prob : float;
}

let clean = { gilbert = None; dup_prob = 0.; jitter_ns = 0; corrupt_prob = 0. }

type link_state = {
  mutable cond : conditions;
  mutable ge_bad : bool;  (** current Gilbert-Elliott channel state *)
}

type t = {
  engine : Engine.t;
  cost : Cost_model.t;
  mutable state : state;
  mutable ports : port list;  (** newest first; delivery iterates all *)
  mutable ports_oldest : port array;
      (** oldest first; rebuilt on attach so delivery does not reverse
          the list for every frame *)
  mutable next_port : int;
  waiters : (unit -> unit) Queue.t;  (** carrier-sense blocked stations *)
  mutable n_collisions : int;
  mutable n_frames : int;
  mutable n_bytes : int;
  mutable n_excessive : int;
  mutable busy_ns : Time.t;
  mutable drop_fun : (Frame.t -> bool) option;
  mutable loss_rate : float;
  mutable n_lost : int;
  cuts : (int, unit) Hashtbl.t;
      (** severed station pairs, keyed by {!pair_key}; empty on the
          quiet-net path so partition checks cost one length read *)
  mutable n_partition_drops : int;
  dcuts : (int, unit) Hashtbl.t;  (** one-way cuts, keyed by {!dkey} *)
  mutable n_oneway_drops : int;
  default_link : link_state;  (** conditions for links with no override *)
  links : (int, link_state) Hashtbl.t;  (** per-link overrides, by {!dkey} *)
  mutable cond_active : bool;
      (** true iff any directed cut or non-clean condition is
          installed; with [cuts] empty and this false, delivery takes
          the original fast loop — the quiet-net guard the bench
          tracks *)
  mutable n_cond_lost : int;
  mutable n_duplicated : int;
  mutable n_corrupted : int;
  mutable n_jittered : int;
  mutable win_start : Time.t;
      (** start of the current utilisation window; 0 until the first
          {!reset_utilisation_window}, so legacy whole-run readings
          are unchanged *)
  mutable win_busy : Time.t;  (** [busy_ns] as of [win_start] *)
}

let create engine cost =
  {
    engine;
    cost;
    state = Idle;
    ports = [];
    ports_oldest = [||];
    next_port = 0;
    waiters = Queue.create ();
    n_collisions = 0;
    n_frames = 0;
    n_bytes = 0;
    n_excessive = 0;
    busy_ns = Time.zero;
    drop_fun = None;
    loss_rate = 0.;
    n_lost = 0;
    cuts = Hashtbl.create 8;
    n_partition_drops = 0;
    dcuts = Hashtbl.create 8;
    n_oneway_drops = 0;
    default_link = { cond = clean; ge_bad = false };
    links = Hashtbl.create 8;
    cond_active = false;
    n_cond_lost = 0;
    n_duplicated = 0;
    n_corrupted = 0;
    n_jittered = 0;
    win_start = Time.zero;
    win_busy = Time.zero;
  }

let attach ?id t ~rx =
  let id = match id with Some i -> i | None -> t.next_port in
  let port = { id; rx } in
  t.next_port <- max (id + 1) (t.next_port + 1);
  t.ports <- port :: t.ports;
  t.ports_oldest <- Array.of_list (List.rev t.ports);
  port

let port_id p = p.id

let wake_all t =
  Queue.iter (fun resume -> resume ()) t.waiters;
  Queue.clear t.waiters

let injected_drop t frame =
  (match t.drop_fun with Some f -> f frame | None -> false)
  || (t.loss_rate > 0.
     && Random.State.float (Engine.rng t.engine) 1.0 < t.loss_rate)

(* Partitions: a symmetric set of severed station pairs.  Stations stay
   attached and keep transmitting (carrier sense and collisions are
   physical and unaffected); delivery to a station on the far side of a
   cut is silently suppressed, as if a bridge between segments went
   down. *)
let pair_key a b = if a < b then (a lsl 16) lor b else (b lsl 16) lor a

let partitioned t a b = a <> b && Hashtbl.mem t.cuts (pair_key a b)

let partition_pair t a b = if a <> b then Hashtbl.replace t.cuts (pair_key a b) ()

let heal_pair t a b = Hashtbl.remove t.cuts (pair_key a b)

let partition t side_a side_b =
  List.iter (fun a -> List.iter (fun b -> partition_pair t a b) side_b) side_a

(* One-way cuts sever a single direction: frames from [src] never
   reach [dst], while the reverse path stays up.  Models a failing
   transceiver or an asymmetric routing fault — the nastiest partition
   shape, because [dst] still hears everyone and believes the net is
   healthy. *)
let dkey src dst = (src lsl 16) lor dst

let refresh_cond_active t =
  t.cond_active <-
    Hashtbl.length t.dcuts > 0
    || t.default_link.cond <> clean
    || Hashtbl.length t.links > 0

let cut_oneway t ~src ~dst =
  if src <> dst then Hashtbl.replace t.dcuts (dkey src dst) ();
  refresh_cond_active t

let heal_oneway t ~src ~dst =
  Hashtbl.remove t.dcuts (dkey src dst);
  refresh_cond_active t

let oneway_cut t ~src ~dst = Hashtbl.mem t.dcuts (dkey src dst)

let heal t =
  Hashtbl.reset t.cuts;
  Hashtbl.reset t.dcuts;
  refresh_cond_active t

let partition_drops t = t.n_partition_drops
let oneway_drops t = t.n_oneway_drops

let set_conditions t c =
  t.default_link.cond <- c;
  t.default_link.ge_bad <- false;
  refresh_cond_active t

let conditions t = t.default_link.cond

let set_link_conditions t ~src ~dst c =
  (match c with
  | None -> Hashtbl.remove t.links (dkey src dst)
  | Some c -> Hashtbl.replace t.links (dkey src dst) { cond = c; ge_bad = false });
  refresh_cond_active t

let link_conditions t ~src ~dst =
  match Hashtbl.find_opt t.links (dkey src dst) with
  | Some ls -> Some ls.cond
  | None -> None

let cond_losses t = t.n_cond_lost
let duplicates_injected t = t.n_duplicated
let corruptions_injected t = t.n_corrupted
let frames_jittered t = t.n_jittered

let link_for t ~src ~dst =
  match Hashtbl.find_opt t.links (dkey src dst) with
  | Some ls -> ls
  | None -> t.default_link

(* Advance the Gilbert-Elliott channel one frame, then draw loss in
   the state just entered.  Channel state lives on the link, so a
   burst that starts for one frame tends to swallow its successors. *)
let gilbert_loss t ls g =
  let rng = Engine.rng t.engine in
  if ls.ge_bad then begin
    if Random.State.float rng 1.0 < g.p_bg then ls.ge_bad <- false
  end
  else if g.p_gb > 0. && Random.State.float rng 1.0 < g.p_gb then
    ls.ge_bad <- true;
  let p = if ls.ge_bad then g.loss_bad else g.loss_good in
  p > 0. && Random.State.float rng 1.0 < p

(* Deliver one copy of [frame] to [port], applying corruption and
   delivery jitter.  Jittered frames run in the root group: frames on
   the wire outlive their sender, and a station's crash must not
   cancel deliveries to its peers. *)
let deliver_copy t port c frame =
  let rng = Engine.rng t.engine in
  let frame =
    if c.corrupt_prob > 0. && Random.State.float rng 1.0 < c.corrupt_prob then begin
      t.n_corrupted <- t.n_corrupted + 1;
      let byte = Random.State.int rng (max 1 frame.Frame.size_on_wire) in
      { frame with Frame.body = Frame.Corrupted { orig = frame.Frame.body; byte } }
    end
    else frame
  in
  if c.jitter_ns > 0 then begin
    let delay = Random.State.int rng (c.jitter_ns + 1) in
    if delay > 0 then begin
      t.n_jittered <- t.n_jittered + 1;
      ignore
        (Engine.schedule ~group:(Engine.root_group t.engine) t.engine
           ~after:delay (fun () -> port.rx frame))
    end
    else port.rx frame
  end
  else port.rx frame

let deliver_conditioned t port frame =
  let src = frame.Frame.src in
  let ls = link_for t ~src ~dst:port.id in
  let c = ls.cond in
  let lost = match c.gilbert with Some g -> gilbert_loss t ls g | None -> false in
  if lost then t.n_cond_lost <- t.n_cond_lost + 1
  else begin
    deliver_copy t port c frame;
    if
      c.dup_prob > 0.
      && Random.State.float (Engine.rng t.engine) 1.0 < c.dup_prob
    then begin
      t.n_duplicated <- t.n_duplicated + 1;
      deliver_copy t port c frame
    end
  end

let deliver t frame =
  if injected_drop t frame then t.n_lost <- t.n_lost + 1
  else begin
    t.n_frames <- t.n_frames + 1;
    t.n_bytes <- t.n_bytes + frame.Frame.size_on_wire;
    (* Oldest port first, for deterministic delivery order. *)
    let ports = t.ports_oldest in
    let src = frame.Frame.src in
    if Hashtbl.length t.cuts = 0 && not t.cond_active then
      (* Quiet net: no partitions, no directed cuts, no conditions.
         Two cheap reads guard the hot loop; the bench holds this path
         to < 5% of the pre-conditions cost. *)
      for i = 0 to Array.length ports - 1 do
        let port = Array.unsafe_get ports i in
        if port.id <> src then port.rx frame
      done
    else
      for i = 0 to Array.length ports - 1 do
        let port = Array.unsafe_get ports i in
        if port.id <> src then
          if partitioned t src port.id then
            t.n_partition_drops <- t.n_partition_drops + 1
          else if
            Hashtbl.length t.dcuts > 0 && Hashtbl.mem t.dcuts (dkey src port.id)
          then t.n_oneway_drops <- t.n_oneway_drops + 1
          else deliver_conditioned t port frame
      done
  end

(* The contention window closes one slot time after the first station
   began transmitting.  A single contender wins the medium; several
   contenders collide and back off. *)
let commit t since =
  match t.state with
  | Idle | Busy -> assert false
  | Contending c ->
      assert (c.since = since);
      (match c.intents with
      | [] -> assert false
      | [ winner ] ->
          t.state <- Busy;
          let duration =
            Cost_model.frame_time t.cost
              ~bytes_on_wire:winner.frame.Frame.size_on_wire
          in
          t.busy_ns <- t.busy_ns + duration;
          (* Wire state-machine events run in the root group: the
             medium is shared infrastructure, so a transmitting
             machine's crash must not cancel the event that returns
             the wire to Idle (that would wedge every station), and
             bits already committed to the wire are delivered even if
             their sender dies mid-flight. *)
          ignore
            (Engine.schedule ~group:(Engine.root_group t.engine) t.engine
               ~after:(since + duration - Engine.now t.engine)
               (fun () ->
                 t.state <- Idle;
                 deliver t winner.frame;
                 Ivar.fill winner.result Won;
                 wake_all t))
      | losers ->
          t.n_collisions <- t.n_collisions + 1;
          t.state <- Busy;
          t.busy_ns <- t.busy_ns + t.cost.jam_ns;
          ignore
            (Engine.schedule ~group:(Engine.root_group t.engine) t.engine
               ~after:t.cost.jam_ns
               (fun () ->
                 t.state <- Idle;
                 List.iter (fun i -> Ivar.fill i.result Collided) losers;
                 wake_all t)))

let backoff_slots t ~attempt =
  let exp = min attempt t.cost.max_backoff_exp in
  Random.State.int (Engine.rng t.engine) (1 lsl exp)

let transmit t port frame =
  let rec attempt n =
    if n > t.cost.max_attempts then begin
      t.n_excessive <- t.n_excessive + 1;
      `Dropped
    end
    else begin
      match t.state with
      | Busy ->
          Engine.suspend t.engine ~register:(fun resume ->
              Queue.push resume t.waiters);
          attempt n
      | Contending c ->
          let intent = { result = Ivar.create (); frame } in
          c.intents <- intent :: c.intents;
          await intent n
      | Idle ->
          let intent = { result = Ivar.create (); frame } in
          let since = Engine.now t.engine in
          t.state <- Contending { since; intents = [ intent ] };
          ignore
            (Engine.schedule ~group:(Engine.root_group t.engine) t.engine
               ~after:t.cost.slot_time_ns
               (fun () -> commit t since));
          await intent n
    end
  and await intent n =
    match Ivar.read t.engine intent.result with
    | Won -> `Sent
    | Collided ->
        let slots = backoff_slots t ~attempt:n in
        Engine.sleep t.engine (slots * t.cost.slot_time_ns);
        attempt (n + 1)
  in
  ignore port;
  attempt 1

let set_drop_fun t f = t.drop_fun <- f
let set_loss_rate t r = t.loss_rate <- r
let loss_rate t = t.loss_rate
let frames_lost t = t.n_lost
let collisions t = t.n_collisions
let frames_delivered t = t.n_frames
let bytes_delivered t = t.n_bytes
let excessive_collision_drops t = t.n_excessive

(* Utilisation is windowed: [reset_utilisation_window] marks the start
   of a measurement interval, so warmup and idle phases before it no
   longer dilute the reading.  Without a reset the window is the whole
   run, the pre-window behaviour. *)
let reset_utilisation_window t =
  t.win_start <- Engine.now t.engine;
  t.win_busy <- t.busy_ns

let utilisation t =
  let elapsed = Engine.now t.engine - t.win_start in
  if elapsed <= 0 then 0.
  else float_of_int (t.busy_ns - t.win_busy) /. float_of_int elapsed
