open Amoeba_sim

type outcome = Won | Collided

type intent = {
  result : outcome Ivar.t;
  frame : Frame.t;
}

type state =
  | Idle
  | Contending of { since : Time.t; mutable intents : intent list }
  | Busy

type port = {
  id : int;
  rx : Frame.t -> unit;
}

type t = {
  engine : Engine.t;
  cost : Cost_model.t;
  mutable state : state;
  mutable ports : port list;  (** newest first; delivery iterates all *)
  mutable ports_oldest : port array;
      (** oldest first; rebuilt on attach so delivery does not reverse
          the list for every frame *)
  mutable next_port : int;
  waiters : (unit -> unit) Queue.t;  (** carrier-sense blocked stations *)
  mutable n_collisions : int;
  mutable n_frames : int;
  mutable n_bytes : int;
  mutable n_excessive : int;
  mutable busy_ns : Time.t;
  mutable drop_fun : (Frame.t -> bool) option;
  mutable loss_rate : float;
  mutable n_lost : int;
  cuts : (int, unit) Hashtbl.t;
      (** severed station pairs, keyed by {!pair_key}; empty on the
          quiet-net path so partition checks cost one length read *)
  mutable n_partition_drops : int;
}

let create engine cost =
  {
    engine;
    cost;
    state = Idle;
    ports = [];
    ports_oldest = [||];
    next_port = 0;
    waiters = Queue.create ();
    n_collisions = 0;
    n_frames = 0;
    n_bytes = 0;
    n_excessive = 0;
    busy_ns = Time.zero;
    drop_fun = None;
    loss_rate = 0.;
    n_lost = 0;
    cuts = Hashtbl.create 8;
    n_partition_drops = 0;
  }

let attach ?id t ~rx =
  let id = match id with Some i -> i | None -> t.next_port in
  let port = { id; rx } in
  t.next_port <- max (id + 1) (t.next_port + 1);
  t.ports <- port :: t.ports;
  t.ports_oldest <- Array.of_list (List.rev t.ports);
  port

let port_id p = p.id

let wake_all t =
  Queue.iter (fun resume -> resume ()) t.waiters;
  Queue.clear t.waiters

let injected_drop t frame =
  (match t.drop_fun with Some f -> f frame | None -> false)
  || (t.loss_rate > 0.
     && Random.State.float (Engine.rng t.engine) 1.0 < t.loss_rate)

(* Partitions: a symmetric set of severed station pairs.  Stations stay
   attached and keep transmitting (carrier sense and collisions are
   physical and unaffected); delivery to a station on the far side of a
   cut is silently suppressed, as if a bridge between segments went
   down. *)
let pair_key a b = if a < b then (a lsl 16) lor b else (b lsl 16) lor a

let partitioned t a b = a <> b && Hashtbl.mem t.cuts (pair_key a b)

let partition_pair t a b = if a <> b then Hashtbl.replace t.cuts (pair_key a b) ()

let heal_pair t a b = Hashtbl.remove t.cuts (pair_key a b)

let partition t side_a side_b =
  List.iter (fun a -> List.iter (fun b -> partition_pair t a b) side_b) side_a

let heal t = Hashtbl.reset t.cuts

let partition_drops t = t.n_partition_drops

let deliver t frame =
  if injected_drop t frame then t.n_lost <- t.n_lost + 1
  else begin
    t.n_frames <- t.n_frames + 1;
    t.n_bytes <- t.n_bytes + frame.Frame.size_on_wire;
    (* Oldest port first, for deterministic delivery order. *)
    let ports = t.ports_oldest in
    let src = frame.Frame.src in
    if Hashtbl.length t.cuts = 0 then
      for i = 0 to Array.length ports - 1 do
        let port = Array.unsafe_get ports i in
        if port.id <> src then port.rx frame
      done
    else
      for i = 0 to Array.length ports - 1 do
        let port = Array.unsafe_get ports i in
        if port.id <> src then
          if partitioned t src port.id then
            t.n_partition_drops <- t.n_partition_drops + 1
          else port.rx frame
      done
  end

(* The contention window closes one slot time after the first station
   began transmitting.  A single contender wins the medium; several
   contenders collide and back off. *)
let commit t since =
  match t.state with
  | Idle | Busy -> assert false
  | Contending c ->
      assert (c.since = since);
      (match c.intents with
      | [] -> assert false
      | [ winner ] ->
          t.state <- Busy;
          let duration =
            Cost_model.frame_time t.cost
              ~bytes_on_wire:winner.frame.Frame.size_on_wire
          in
          t.busy_ns <- t.busy_ns + duration;
          (* Wire state-machine events run in the root group: the
             medium is shared infrastructure, so a transmitting
             machine's crash must not cancel the event that returns
             the wire to Idle (that would wedge every station), and
             bits already committed to the wire are delivered even if
             their sender dies mid-flight. *)
          ignore
            (Engine.schedule ~group:(Engine.root_group t.engine) t.engine
               ~after:(since + duration - Engine.now t.engine)
               (fun () ->
                 t.state <- Idle;
                 deliver t winner.frame;
                 Ivar.fill winner.result Won;
                 wake_all t))
      | losers ->
          t.n_collisions <- t.n_collisions + 1;
          t.state <- Busy;
          t.busy_ns <- t.busy_ns + t.cost.jam_ns;
          ignore
            (Engine.schedule ~group:(Engine.root_group t.engine) t.engine
               ~after:t.cost.jam_ns
               (fun () ->
                 t.state <- Idle;
                 List.iter (fun i -> Ivar.fill i.result Collided) losers;
                 wake_all t)))

let backoff_slots t ~attempt =
  let exp = min attempt t.cost.max_backoff_exp in
  Random.State.int (Engine.rng t.engine) (1 lsl exp)

let transmit t port frame =
  let rec attempt n =
    if n > t.cost.max_attempts then begin
      t.n_excessive <- t.n_excessive + 1;
      `Dropped
    end
    else begin
      match t.state with
      | Busy ->
          Engine.suspend t.engine ~register:(fun resume ->
              Queue.push resume t.waiters);
          attempt n
      | Contending c ->
          let intent = { result = Ivar.create (); frame } in
          c.intents <- intent :: c.intents;
          await intent n
      | Idle ->
          let intent = { result = Ivar.create (); frame } in
          let since = Engine.now t.engine in
          t.state <- Contending { since; intents = [ intent ] };
          ignore
            (Engine.schedule ~group:(Engine.root_group t.engine) t.engine
               ~after:t.cost.slot_time_ns
               (fun () -> commit t since));
          await intent n
    end
  and await intent n =
    match Ivar.read t.engine intent.result with
    | Won -> `Sent
    | Collided ->
        let slots = backoff_slots t ~attempt:n in
        Engine.sleep t.engine (slots * t.cost.slot_time_ns);
        attempt (n + 1)
  in
  ignore port;
  attempt 1

let set_drop_fun t f = t.drop_fun <- f
let set_loss_rate t r = t.loss_rate <- r
let loss_rate t = t.loss_rate
let frames_lost t = t.n_lost
let collisions t = t.n_collisions
let frames_delivered t = t.n_frames
let bytes_delivered t = t.n_bytes
let excessive_collision_drops t = t.n_excessive

let utilisation t =
  let elapsed = Engine.now t.engine in
  if elapsed = 0 then 0. else float_of_int t.busy_ns /. float_of_int elapsed
