type disk = {
  disk_seek_ns : int;
  disk_ns_per_byte : int;
  disk_fsync_ns : int;
}

(* 1996-era disk, matching the constants Stable_store hardcoded before
   the disk became part of the cost model: ~10 ms seek+rotate, ~1 MB/s
   sequential transfer, and a flush that costs another full
   rotation. *)
let hdd1996 =
  { disk_seek_ns = 10_000_000; disk_ns_per_byte = 1_000; disk_fsync_ns = 10_000_000 }

(* Modern profiles, for the recovery-time and fsync-overhead sweeps. *)
let hdd =
  (* 7200 rpm: ~8 ms positioning, ~160 MB/s sequential, fsync = one
     positioning delay (write cache disabled). *)
  { disk_seek_ns = 8_000_000; disk_ns_per_byte = 6; disk_fsync_ns = 8_000_000 }

let ssd =
  (* SATA SSD: ~80 us access, ~500 MB/s, ~100 us flush. *)
  { disk_seek_ns = 80_000; disk_ns_per_byte = 2; disk_fsync_ns = 100_000 }

let nvme =
  (* NVMe: ~20 us access, ~1 GB/s (integer ns/byte floors at 1), ~20 us
     flush. *)
  { disk_seek_ns = 20_000; disk_ns_per_byte = 1; disk_fsync_ns = 20_000 }

let disk_profiles =
  [ ("hdd1996", hdd1996); ("hdd", hdd); ("ssd", ssd); ("nvme", nvme) ]

type t = {
  wire_ns_per_byte : int;
  preamble_bytes : int;
  crc_bytes : int;
  min_frame_bytes : int;
  max_frame_bytes : int;
  interframe_gap_ns : int;
  slot_time_ns : int;
  jam_ns : int;
  max_backoff_exp : int;
  max_attempts : int;
  interrupt_ns : int;
  driver_tx_ns : int;
  driver_rx_ns : int;
  copy_ns_per_byte : int;
  context_switch_ns : int;
  flip_tx_ns : int;
  flip_rx_ns : int;
  group_send_ns : int;
  group_seq_ns : int;
  group_seq_member_ns : int;
  group_seq_op_ns : int;
  group_deliver_ns : int;
  group_deliver_op_ns : int;
  rx_ring_frames : int;
  header_ether : int;
  header_flow_control : int;
  header_flip : int;
  header_group : int;
  header_user : int;
  history_buffer : int;
  retrans_timeout_ns : int;
  nack_timeout_ns : int;
  probe_timeout_ns : int;
  probe_retries : int;
  bb_threshold_bytes : int;
  multicast_frag_gap_ns : int;
  disk : disk;
  switch_fwd_ns : int;
  switch_ingress_frames : int;
  switch_egress_frames : int;
  switch_uplink_frames : int;
}

let default =
  {
    wire_ns_per_byte = 800;
    preamble_bytes = 8;
    crc_bytes = 4;
    min_frame_bytes = 64;
    max_frame_bytes = 1514;
    interframe_gap_ns = 9_600;
    slot_time_ns = 51_200;
    jam_ns = 3_200;
    max_backoff_exp = 10;
    max_attempts = 16;
    interrupt_ns = 100_000;
    driver_tx_ns = 100_000;
    driver_rx_ns = 100_000;
    copy_ns_per_byte = 250;
    context_switch_ns = 170_000;
    flip_tx_ns = 110_000;
    flip_rx_ns = 110_000;
    group_send_ns = 250_000;
    group_seq_ns = 240_000;
    group_seq_member_ns = 4_000;
    group_seq_op_ns = 30_000;
    group_deliver_ns = 250_000;
    group_deliver_op_ns = 25_000;
    rx_ring_frames = 32;
    header_ether = 14;
    header_flow_control = 2;
    header_flip = 40;
    header_group = 28;
    header_user = 32;
    history_buffer = 128;
    retrans_timeout_ns = 100_000_000;
    nack_timeout_ns = 15_000_000;
    probe_timeout_ns = 100_000_000;
    probe_retries = 3;
    bb_threshold_bytes = 1_024;
    multicast_frag_gap_ns = 0;
    disk = hdd1996;
    (* Store-and-forward switch: ~2 us lookup+forward per frame —
       below the minimum frame time at 10 and 100 Mbit/s, so a port
       forwards at line rate and ingress drops only appear when the
       *fabric* (an oversubscribed uplink) is the bottleneck. *)
    switch_fwd_ns = 2_000;
    switch_ingress_frames = 64;
    switch_egress_frames = 64;
    switch_uplink_frames = 256;
  }

let mc68030 = default

(* The same stations timed against a faster wire: byte time,
   interframe gap, slot time and jam are fixed *bit* counts in the
   Ethernet spec, so they scale inversely with the bit rate.
   Host-side costs (interrupts, copies, protocol CPU) are untouched —
   on a fast wire the machines, not the medium, become the
   bottleneck, which is the regime the shard-scaling experiments
   probe.  [with_mbps 10 default = default]. *)
let with_mbps mbps t =
  if mbps < 1 then invalid_arg "Cost_model.with_mbps: mbps < 1";
  {
    t with
    wire_ns_per_byte = 8_000 / mbps;
    interframe_gap_ns = 96_000 / mbps;
    slot_time_ns = 512_000 / mbps;
    jam_ns = 32_000 / mbps;
  }

let headers_total t =
  t.header_ether + t.header_flow_control + t.header_flip + t.header_group
  + t.header_user

let jitter rng d =
  if d = 0 then 0
  else begin
    let r = Random.State.float rng 0.1 -. 0.05 in
    d + int_of_float (r *. float_of_int d)
  end

let frame_time t ~bytes_on_wire =
  let padded = max bytes_on_wire t.min_frame_bytes in
  let total = padded + t.preamble_bytes + t.crc_bytes in
  (total * t.wire_ns_per_byte) + t.interframe_gap_ns
