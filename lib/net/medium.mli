(** The shared medium interface {!Nic}, {!Machine} and the harness
    talk to: either the paper's shared CSMA/CD {!Ether} segment or the
    switched full-duplex {!Switch} fabric.

    A first-class variant rather than a functor so a cluster can be
    built over either fabric at runtime ([--net switch:2x48\@10]) and
    so the Ether path stays {e bit-identical}: dispatch adds one match
    per call, no RNG draws and no timing. *)

open Amoeba_sim

type t =
  | Ether of Ether.t
  | Switch of Switch.t

type port

(** How to build the medium for a cluster. *)
type spec =
  | Shared  (** one CSMA/CD Ether segment — the paper's testbed *)
  | Switched of Switch.profile

(** Re-exported from {!Ether} (type-equal), so condition records work
    unchanged against either fabric. *)
type gilbert = Ether.gilbert = {
  p_gb : float;
  p_bg : float;
  loss_good : float;
  loss_bad : float;
}

type conditions = Ether.conditions = {
  gilbert : gilbert option;
  dup_prob : float;
  jitter_ns : int;
  corrupt_prob : float;
}

val clean : conditions

val create : Engine.t -> Cost_model.t -> spec -> t

val shared : Ether.t -> t

val switched : Switch.t -> t

val ether : t -> Ether.t option

val switch : t -> Switch.t option

val spec_of_string : string -> (spec, string) result
(** ["ether"] (also ["shared"], ["bus"]) and ["switch"],
    ["switch:SxH\@U"] (see {!Switch.profile_of_string}). *)

val spec_to_string : spec -> string

val condition_profiles : (string * conditions) list
(** Named impairment profiles — [clean], [bursty-light], [bursty],
    [bursty-heavy] (Gilbert–Elliott loss), [dup], [reorder] (delivery
    jitter), [corrupt], [adversarial] (all of them, moderate).  The one
    table behind [--net], the adversarial swarm test and the loadgen
    sweep. *)

val net_of_string : string -> (spec * conditions, string) result
(** Parses a full ['+']-separated net description: each component is a
    fabric (as {!spec_of_string}) or a profile name from
    {!condition_profiles}.  ["switch:2x48\@10+bursty"] = two 48-port
    segments, 10x-oversubscribed uplink, bursty loss on every link.
    Defaults: [Shared] fabric, [clean] conditions. *)

val net_to_string : spec * conditions -> string
(** Inverse of {!net_of_string} for named profiles; a conditions record
    matching no profile prints as ["+<custom>"]. *)

val attach : ?id:int -> t -> rx:(Frame.t -> unit) -> port

val port_id : port -> int

val transmit : t -> port -> Frame.t -> [ `Sent | `Dropped ]

(** {1 Fault injection} — dispatched to the underlying fabric; see
    {!Ether} for the full semantics of each call. *)

val set_drop_fun : t -> (Frame.t -> bool) option -> unit

val set_loss_rate : t -> float -> unit

val loss_rate : t -> float

val frames_lost : t -> int

val partition : t -> int list -> int list -> unit

val partition_pair : t -> int -> int -> unit

val heal_pair : t -> int -> int -> unit

val heal : t -> unit

val partitioned : t -> int -> int -> bool

val partition_drops : t -> int

val cut_oneway : t -> src:int -> dst:int -> unit

val heal_oneway : t -> src:int -> dst:int -> unit

val oneway_cut : t -> src:int -> dst:int -> bool

val oneway_drops : t -> int

val set_conditions : t -> conditions -> unit

val conditions : t -> conditions

val set_link_conditions : t -> src:int -> dst:int -> conditions option -> unit

val link_conditions : t -> src:int -> dst:int -> conditions option

val cond_losses : t -> int

val duplicates_injected : t -> int

val corruptions_injected : t -> int

val frames_jittered : t -> int

(** {1 Statistics} *)

val collisions : t -> int
(** Always 0 on a switched fabric (full duplex). *)

val frames_delivered : t -> int

val bytes_delivered : t -> int

val excessive_collision_drops : t -> int

val queue_drops : t -> int
(** Switch tail drops (ingress + egress + uplink); always 0 on the
    shared wire, which has no queues. *)

val utilisation : t -> float

val reset_utilisation_window : t -> unit
