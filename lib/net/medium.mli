(** The shared medium interface {!Nic}, {!Machine} and the harness
    talk to: either the paper's shared CSMA/CD {!Ether} segment or the
    switched full-duplex {!Switch} fabric.

    A first-class variant rather than a functor so a cluster can be
    built over either fabric at runtime ([--net switch:2x48\@10]) and
    so the Ether path stays {e bit-identical}: dispatch adds one match
    per call, no RNG draws and no timing. *)

open Amoeba_sim

type t =
  | Ether of Ether.t
  | Switch of Switch.t

type port

(** How to build the medium for a cluster. *)
type spec =
  | Shared  (** one CSMA/CD Ether segment — the paper's testbed *)
  | Switched of Switch.profile

(** Re-exported from {!Ether} (type-equal), so condition records work
    unchanged against either fabric. *)
type gilbert = Ether.gilbert = {
  p_gb : float;
  p_bg : float;
  loss_good : float;
  loss_bad : float;
}

type conditions = Ether.conditions = {
  gilbert : gilbert option;
  dup_prob : float;
  jitter_ns : int;
  corrupt_prob : float;
}

val clean : conditions

val create : Engine.t -> Cost_model.t -> spec -> t

val shared : Ether.t -> t

val switched : Switch.t -> t

val ether : t -> Ether.t option

val switch : t -> Switch.t option

val spec_of_string : string -> (spec, string) result
(** ["ether"] (also ["shared"], ["bus"]) and ["switch"],
    ["switch:SxH\@U"] (see {!Switch.profile_of_string}). *)

val spec_to_string : spec -> string

val attach : ?id:int -> t -> rx:(Frame.t -> unit) -> port

val port_id : port -> int

val transmit : t -> port -> Frame.t -> [ `Sent | `Dropped ]

(** {1 Fault injection} — dispatched to the underlying fabric; see
    {!Ether} for the full semantics of each call. *)

val set_drop_fun : t -> (Frame.t -> bool) option -> unit

val set_loss_rate : t -> float -> unit

val loss_rate : t -> float

val frames_lost : t -> int

val partition : t -> int list -> int list -> unit

val partition_pair : t -> int -> int -> unit

val heal_pair : t -> int -> int -> unit

val heal : t -> unit

val partitioned : t -> int -> int -> bool

val partition_drops : t -> int

val cut_oneway : t -> src:int -> dst:int -> unit

val heal_oneway : t -> src:int -> dst:int -> unit

val oneway_cut : t -> src:int -> dst:int -> bool

val oneway_drops : t -> int

val set_conditions : t -> conditions -> unit

val conditions : t -> conditions

val set_link_conditions : t -> src:int -> dst:int -> conditions option -> unit

val link_conditions : t -> src:int -> dst:int -> conditions option

val cond_losses : t -> int

val duplicates_injected : t -> int

val corruptions_injected : t -> int

val frames_jittered : t -> int

(** {1 Statistics} *)

val collisions : t -> int
(** Always 0 on a switched fabric (full duplex). *)

val frames_delivered : t -> int

val bytes_delivered : t -> int

val excessive_collision_drops : t -> int

val queue_drops : t -> int
(** Switch tail drops (ingress + egress + uplink); always 0 on the
    shared wire, which has no queues. *)

val utilisation : t -> float

val reset_utilisation_window : t -> unit
