(** AMD Lance-style network interface.

    The receive ring buffers a fixed number of frames (32 in the
    paper's testbed); frames arriving while the ring is full are
    dropped silently, exactly the failure mode behind the missing
    large-message data points in Figures 4 and 5.  Every received
    frame costs the host an interrupt, driver work, and one copy out
    of the ring; every transmitted frame costs driver work and one
    copy into the ring. *)

open Amoeba_sim

type t

val create :
  Engine.t ->
  Cost_model.t ->
  Trace.t ->
  Medium.t ->
  group:Engine.group ->
  station:int ->
  host:string ->
  cpu:Resource.t ->
  alive:(unit -> bool) ->
  t
(** [group] is the owning machine's lifecycle group: the NIC's service
    process is spawned into it, so crash-stopping the machine halts
    frame processing (not just the [alive] gate). *)

val station : t -> int

val set_handler : t -> (Frame.t -> unit) -> unit
(** Installs the upper layer's receive function.  It runs in the NIC's
    service process, after the interrupt/driver/copy costs have been
    charged; it may block (and thereby back-pressure the ring). *)

val join_multicast : t -> int -> unit

val leave_multicast : t -> int -> unit

val send : t -> Frame.t -> [ `Sent | `Dropped ]
(** Blocking transmit: charges driver + copy cost to the host CPU,
    then contends for the wire.  Must be called from a process. *)

(** {1 Statistics} *)

val rx_dropped : t -> int
(** Frames lost to receive-ring overflow. *)

val rx_frames : t -> int

val tx_frames : t -> int

val interrupts : t -> int
(** Interrupts taken (one per received frame copied out). *)
