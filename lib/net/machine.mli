(** A simulated host: one CPU, one network interface, an alive flag.

    All protocol-layer work is charged to the machine's CPU via
    {!work}; CPU contention between the interrupt path, the protocol
    layers and application threads is what limits the sequencer's
    throughput in the reproduced experiments. *)

open Amoeba_sim

type t

val create :
  Engine.t -> Cost_model.t -> Trace.t -> Medium.t -> name:string -> id:int -> t

val engine : t -> Engine.t

val cost : t -> Cost_model.t

val trace : t -> Trace.t

val name : t -> string

val id : t -> int
(** Station id on the medium. *)

val cpu : t -> Resource.t
(** The CPU of the {e current} incarnation ({!restart} replaces it, so
    don't cache across a reboot). *)

val disk : t -> Resource.t
(** The local disk's I/O queue (spindle), serialising WAL appends,
    checkpoint writes and recovery scans against each other.  Like the
    CPU it belongs to the current incarnation — {!restart} remounts a
    fresh one — so fetch it at each I/O, never cache.  Disk {e
    contents} live in [Amoeba_grouplib.Stable_store] and survive both
    crash and restart (minus the write cache lost to power failure). *)

val on_crash : t -> (unit -> unit) -> unit
(** Registers a hook run inside {!crash}, after the alive flag drops
    and before the lifecycle group is cancelled.  Hooks persist across
    restarts: they model attached hardware, e.g. the stable store
    materialising the loss of the disk's volatile write cache at the
    instant the power goes. *)

val nic : t -> Nic.t

val group : t -> Engine.group
(** Lifecycle group of the current incarnation.  Spawn kernel loops,
    timers and machine-resident application processes into it so that
    {!crash} halts them. *)

val is_alive : t -> bool

val crash : t -> unit
(** Crash-stop failure: gates the NIC {e and} cancels the machine's
    lifecycle group, so the kernel loop, armed timers, channel waiters
    and machine-resident processes all halt — a crashed machine
    contributes zero engine events until {!restart}.  The group
    rebuilds without it; {!restart} models the reboot that lets the
    host rejoin later with fresh state.  No-op when already dead. *)

val restart : t -> unit
(** Reboots a crashed machine: alive again, under a {e fresh}
    lifecycle group (labelled with the restart generation), with a
    fresh CPU, a freshly mounted disk (see {!disk} — contents persist
    in the stable store) and a fresh NIC (empty receive ring, no
    multicast subscriptions) attached under the old station id.  The
    pre-crash group and everything in it stay dead — kernel and
    application {e memory} do not survive a reboot, so the owner must
    rebuild its FLIP stack and re-join its groups; durable state can
    be recovered from the stable store first.  No-op on a live
    machine. *)

val pause : t -> unit
(** Stalls the CPU until {!resume}: all protocol and application work
    queues behind a held CPU while the wire keeps filling the receive
    ring.  The machine stays alive — this is the "live but slow"
    member that unreliable failure detection may expel.  No-op while
    dead or already paused. *)

val resume : t -> unit
(** Releases a {!pause}.  No-op if not paused. *)

val is_paused : t -> bool

val restarts : t -> int
(** Number of {!restart}s this machine has been through. *)

val work : t -> layer:string -> Time.t -> unit
(** [work t ~layer d] occupies the CPU for [d] (+/-5% deterministic
    jitter — real machines are not in lockstep) and records a trace
    span.  Must be called from a process.  No-op on a crashed
    machine. *)

val jitter : Engine.t -> Time.t -> Time.t
(** The +/-5% cost perturbation, exposed for the NIC model. *)

val cpu_utilisation : t -> float
