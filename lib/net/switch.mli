(** Switched full-duplex fabric: per-host private links into a
    store-and-forward switch.

    The modern counterpart of the shared {!Ether} segment: no carrier
    sense and no collisions — contention shows up as queueing instead.
    Every port has a bounded ingress and egress FIFO and every segment
    uplink a bounded FIFO per direction; a full queue tail-drops the
    frame (the sender still observed [`Sent]), which is exactly the
    silent-loss model the group layer's NACK machinery recovers from.
    Frame serialization uses {!Cost_model.frame_time} on the host
    links and [1/uplink_mult] of it on the uplinks; each forwarded
    frame additionally pays [switch_fwd_ns] lookup latency.

    All queue drains and deliveries run in the engine's root group:
    frames inside the fabric outlive a crashed sender, mirroring the
    Ether's bits-on-the-wire rule. *)

open Amoeba_sim

type profile = {
  segments : int;  (** leaf segments joined through the core *)
  segment_size : int;
      (** station ids per segment: station [i] lives on segment
          [min (i / segment_size) (segments - 1)] *)
  uplink_mult : int;
      (** uplink bandwidth as a multiple of one host link; a segment
          of [segment_size] hosts is oversubscribed
          [segment_size / uplink_mult] : 1 *)
}

val flat : profile
(** One segment, no uplinks: every port at full bisection bandwidth. *)

val profile_of_string : string -> (profile, string) result
(** ["switch"] is {!flat}; ["switch:2x48\@10"] is 2 segments of 48
    stations with 10x uplinks (["switch:2x48"] defaults the uplink
    multiplier to 10). *)

val profile_to_string : profile -> string

type t

type port

val create : Engine.t -> Cost_model.t -> profile -> t

val profile : t -> profile

val attach : ?id:int -> t -> rx:(Frame.t -> unit) -> port
(** Same contract as {!Ether.attach}: [rx] runs outside any process
    and must not block; [id] pins the station id so a restarted
    machine reclaims its port. *)

val port_id : port -> int

val transmit : t -> port -> Frame.t -> [ `Sent | `Dropped ]
(** Blocking send: sleeps the frame's serialization time on the
    private host uplink, with arrival at the switch committed as a
    root-group event (a sender crash mid-serialization does not claw
    the frame back).  Full duplex never collides, so the result is
    always [`Sent]; loss happens inside the fabric, visible in the
    drop counters.  Must be called from a process. *)

(** {1 Fault injection}

    The same per-directed-link model as the shared wire — partitions,
    one-way cuts, Gilbert–Elliott bursts, duplication, jitter,
    corruption — applied where the egress port hands the frame to the
    station, so the fault DSL and chaos swarms behave identically on
    both fabrics. *)

val set_drop_fun : t -> (Frame.t -> bool) option -> unit

val set_loss_rate : t -> float -> unit

val loss_rate : t -> float

val frames_lost : t -> int

val partition : t -> int list -> int list -> unit

val partition_pair : t -> int -> int -> unit

val heal_pair : t -> int -> int -> unit

val heal : t -> unit

val partitioned : t -> int -> int -> bool

val partition_drops : t -> int

val cut_oneway : t -> src:int -> dst:int -> unit

val heal_oneway : t -> src:int -> dst:int -> unit

val oneway_cut : t -> src:int -> dst:int -> bool

val oneway_drops : t -> int

val set_conditions : t -> Ether.conditions -> unit

val conditions : t -> Ether.conditions

val set_link_conditions :
  t -> src:int -> dst:int -> Ether.conditions option -> unit

val link_conditions : t -> src:int -> dst:int -> Ether.conditions option

val cond_losses : t -> int

val duplicates_injected : t -> int

val corruptions_injected : t -> int

val frames_jittered : t -> int

(** {1 Statistics} *)

val frames_delivered : t -> int
(** Frames the fabric accepted from hosts (store-and-forward arrival
    survived loss injection). *)

val bytes_delivered : t -> int

val ingress_drops : t -> int
(** Tail drops on full per-port ingress FIFOs. *)

val egress_drops : t -> int
(** Tail drops on full per-port egress FIFOs — a fan-in hotspot. *)

val uplink_drops : t -> int
(** Tail drops on segment uplinks, both directions — oversubscription
    loss. *)

val queue_drops : t -> int
(** All tail drops: ingress + egress + uplink. *)

val utilisation : t -> float
(** Mean downlink (egress) utilisation across all ports over the
    current measurement window — same window semantics as
    {!Ether.utilisation}. *)

val reset_utilisation_window : t -> unit
