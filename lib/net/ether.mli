(** Shared 10 Mbit/s Ethernet segment with CSMA/CD.

    Stations that begin transmitting within one slot time of each
    other collide, jam, and retry after binary exponential backoff —
    the mechanism behind Figure 6's throughput collapse when many
    uncoordinated groups share the wire.  Transmission is modelled at
    frame granularity; propagation delay within the segment is folded
    into the slot time. *)

open Amoeba_sim

type t

type port

val create : Engine.t -> Cost_model.t -> t

val attach : ?id:int -> t -> rx:(Frame.t -> unit) -> port
(** [attach t ~rx] connects a station.  [rx] is invoked (outside any
    process; it must not block) for every frame another station
    finishes transmitting.  [id] fixes the station id explicitly — a
    restarted machine re-attaches a fresh NIC under its old station id
    so partitions and self-suppression keep working; by default ids
    are assigned sequentially. *)

val port_id : port -> int

val transmit : t -> port -> Frame.t -> [ `Sent | `Dropped ]
(** Blocking send with carrier sense, collision detection and
    exponential backoff.  Returns [`Dropped] after 16 failed attempts
    (excessive collisions); reliability above that is the protocols'
    job.  Must be called from a process. *)

(** {1 Fault injection} *)

val set_drop_fun : t -> (Frame.t -> bool) option -> unit
(** [set_drop_fun t (Some f)] silently discards every successfully
    transmitted frame for which [f] returns true — the "lost message"
    case the negative-acknowledgement machinery exists for.  The
    sender still observes [`Sent].  [None] disables injection. *)

val set_loss_rate : t -> float -> unit
(** Random independent frame loss with the given probability, drawn
    from the engine's deterministic RNG.  Composes with
    {!set_drop_fun}. *)

val loss_rate : t -> float
(** Current {!set_loss_rate} setting, so a transient burst can restore
    whatever rate was in force before it. *)

val frames_lost : t -> int
(** Frames discarded by fault injection. *)

(** {2 Partitions}

    A beyond-paper extension: the paper's testbed was one shared
    segment and only crash failures were modelled, but the recovery
    protocol is also exercised by members that are alive yet
    unreachable.  A partition severs a set of station {e pairs};
    transmission succeeds (the sender observes [`Sent]) and delivery
    to stations across a cut is silently suppressed. *)

val partition : t -> int list -> int list -> unit
(** [partition t side_a side_b] severs every pair with one station in
    [side_a] and the other in [side_b].  Pairs are symmetric. *)

val partition_pair : t -> int -> int -> unit

val heal_pair : t -> int -> int -> unit

val heal : t -> unit
(** Removes every cut. *)

val partitioned : t -> int -> int -> bool

val partition_drops : t -> int
(** Deliveries suppressed by partitions (counted per receiver, unlike
    {!frames_lost} which counts whole frames). *)

(** {2 One-way cuts}

    A directed partition: frames from [src] never reach [dst] while
    the reverse direction stays up — a failing transceiver or
    asymmetric routing fault.  Nastier than a symmetric cut because
    the deaf side still hears everyone and believes the net healthy. *)

val cut_oneway : t -> src:int -> dst:int -> unit

val heal_oneway : t -> src:int -> dst:int -> unit

val oneway_cut : t -> src:int -> dst:int -> bool

val oneway_drops : t -> int
(** Deliveries suppressed by one-way cuts (counted per receiver). *)

(** {2 Link conditions}

    Adversarial per-link behaviour beyond uniform loss: correlated
    (bursty) loss via a two-state Gilbert–Elliott channel,
    duplication, reordering via per-frame delivery jitter, and payload
    corruption.  Conditions apply per {e directed} link; a default
    applies to every link without an override.  With no conditions,
    directed cuts or partitions installed, delivery takes the original
    fast path — the guard is two cheap reads per frame. *)

type gilbert = {
  p_gb : float;  (** good → bad transition probability, per frame *)
  p_bg : float;  (** bad → good *)
  loss_good : float;  (** loss probability while in the good state *)
  loss_bad : float;  (** loss probability while in the bad state *)
}

type conditions = {
  gilbert : gilbert option;  (** bursty loss; [None] = lossless *)
  dup_prob : float;  (** probability a delivered frame arrives twice *)
  jitter_ns : int;
      (** each delivery is delayed by a uniform draw from
          [0, jitter_ns], so later frames can overtake earlier ones *)
  corrupt_prob : float;
      (** probability a delivered copy has a bit flipped at a random
          byte offset; receivers' checksums must catch it *)
}

val clean : conditions
(** No loss, duplication, jitter or corruption. *)

val set_conditions : t -> conditions -> unit
(** Sets the default conditions for every link without a per-link
    override, and resets the default Gilbert–Elliott channel to the
    good state. *)

val conditions : t -> conditions

val set_link_conditions : t -> src:int -> dst:int -> conditions option -> unit
(** Overrides the conditions on one directed link ([None] removes the
    override, falling back to the default). *)

val link_conditions : t -> src:int -> dst:int -> conditions option

val cond_losses : t -> int
(** Deliveries suppressed by Gilbert–Elliott loss (per receiver). *)

val duplicates_injected : t -> int

val corruptions_injected : t -> int

val frames_jittered : t -> int

(** {1 Statistics} *)

val collisions : t -> int

val frames_delivered : t -> int

val bytes_delivered : t -> int
(** Wire bytes (including headers, excluding preamble/CRC) of
    successfully transmitted frames. *)

val excessive_collision_drops : t -> int

val utilisation : t -> float
(** Fraction of the current measurement window the medium was carrying
    bits.  The window opens at creation and restarts at each
    {!reset_utilisation_window}; a report that resets the window when
    its warmup ends measures the steady state instead of a reading
    diluted by setup and idle time. *)

val reset_utilisation_window : t -> unit
(** Starts a fresh utilisation window at the current simulated time.
    Counters ({!collisions}, {!frames_delivered}, ...) are unaffected. *)
