type handle = Timer_wheel.ev
type group = Timer_wheel.group

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  queue : Timer_wheel.t;
  random : Random.State.t;
  mutable error : exn option;
  mutable steps : int;
  root : group;
  mutable current : group;  (* group of the event being executed *)
  mutable next_gid : int;
}

let create ?(seed = 0xA0EBA) () =
  let root = Timer_wheel.make_group ~gid:0 ~label:"root" in
  {
    clock = Time.zero;
    next_seq = 0;
    queue = Timer_wheel.create ();
    random = Random.State.make [| seed |];
    error = None;
    steps = 0;
    root;
    current = root;
    next_gid = 1;
  }

let now t = t.clock
let rng t = t.random
let step_count t = t.steps

(* ---- process groups ---- *)

let root_group t = t.root
let current_group t = t.current

let create_group t ~label =
  let gid = t.next_gid in
  t.next_gid <- gid + 1;
  Timer_wheel.make_group ~gid ~label

let cancel_group t g =
  if g != t.root then Timer_wheel.cancel_group_events t.queue g

let group_alive (g : group) = g.Timer_wheel.alive
let group_label (g : group) = g.Timer_wheel.label
let group_events (g : group) = g.Timer_wheel.events_run

let with_group t g f =
  let saved = t.current in
  t.current <- g;
  Fun.protect ~finally:(fun () -> t.current <- saved) f

(* ---- scheduling ---- *)

let schedule ?group t ~after run =
  assert (after >= 0);
  let g = match group with Some g -> g | None -> t.current in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev =
    Timer_wheel.schedule t.queue ~time:(t.clock + after) ~seq ~group:g run
  in
  (* Scheduling into a dead group yields an inert (cancelled) event, so
     late resumes and stray arming after a crash cannot revive it. *)
  if not (group_alive g) then Timer_wheel.cancel ev;
  ev

let cancel ev = Timer_wheel.cancel ev

(* The single effect from which all blocking operations are built.  A
   process performs [Suspend register]; the handler captures the
   continuation and hands [register] a one-shot resume function that
   re-schedules the continuation on the event queue. *)
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let run_fiber t f =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> if t.error = None then t.error <- Some e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* The handler runs at perform time, so [t.current]
                     is the suspending process's own group; capturing
                     it here (not at resume time) keeps the
                     continuation owned by its machine even when a
                     fiber of another group wakes it. *)
                  let g = t.current in
                  let fired = ref false in
                  let resume () =
                    if not !fired then begin
                      fired := true;
                      if group_alive g then
                        ignore
                          (schedule ~group:g t ~after:0 (fun () ->
                               continue k ()))
                      (* Dead group: drop the continuation.  The fiber
                         is killed at its suspension point. *)
                    end
                  in
                  register resume)
          | _ -> None);
    }
  in
  match_with f () handler

let spawn ?group t ?(after = 0) f =
  ignore (schedule ?group t ~after (fun () -> run_fiber t f))

let run ?until t =
  let stop_after = match until with None -> max_int | Some u -> u in
  let rec loop () =
    match t.error with
    | Some e ->
        t.error <- None;
        raise e
    | None -> (
        match Timer_wheel.peek t.queue with
        | None -> ()
        | Some ev when ev.Timer_wheel.time > stop_after -> t.clock <- stop_after
        | Some _ -> (
            match Timer_wheel.pop t.queue with
            | None -> ()
            | Some ev ->
                if not ev.Timer_wheel.cancelled then begin
                  t.clock <- ev.Timer_wheel.time;
                  t.steps <- t.steps + 1;
                  let g = ev.Timer_wheel.group in
                  Timer_wheel.note_ran g;
                  t.current <- g;
                  ev.Timer_wheel.run ();
                  t.current <- t.root
                end;
                loop ()))
  in
  loop ()

let suspend _t ~register = Effect.perform (Suspend register)

let sleep t d =
  Effect.perform (Suspend (fun resume -> ignore (schedule t ~after:d resume)))

let yield t = sleep t 0
