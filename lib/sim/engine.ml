type handle = Timer_wheel.ev

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  queue : Timer_wheel.t;
  random : Random.State.t;
  mutable error : exn option;
  mutable steps : int;
}

let create ?(seed = 0xA0EBA) () =
  {
    clock = Time.zero;
    next_seq = 0;
    queue = Timer_wheel.create ();
    random = Random.State.make [| seed |];
    error = None;
    steps = 0;
  }

let now t = t.clock
let rng t = t.random
let step_count t = t.steps

let schedule t ~after run =
  assert (after >= 0);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Timer_wheel.schedule t.queue ~time:(t.clock + after) ~seq run

let cancel ev = Timer_wheel.cancel ev

(* The single effect from which all blocking operations are built.  A
   process performs [Suspend register]; the handler captures the
   continuation and hands [register] a one-shot resume function that
   re-schedules the continuation on the event queue. *)
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let run_fiber t f =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc = (fun e -> if t.error = None then t.error <- Some e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let fired = ref false in
                  let resume () =
                    if not !fired then begin
                      fired := true;
                      ignore (schedule t ~after:0 (fun () -> continue k ()))
                    end
                  in
                  register resume)
          | _ -> None);
    }
  in
  match_with f () handler

let spawn t ?(after = 0) f = ignore (schedule t ~after (fun () -> run_fiber t f))

let run ?until t =
  let stop_after = match until with None -> max_int | Some u -> u in
  let rec loop () =
    match t.error with
    | Some e ->
        t.error <- None;
        raise e
    | None -> (
        match Timer_wheel.peek t.queue with
        | None -> ()
        | Some ev when ev.Timer_wheel.time > stop_after -> t.clock <- stop_after
        | Some _ -> (
            match Timer_wheel.pop t.queue with
            | None -> ()
            | Some ev ->
                if not ev.Timer_wheel.cancelled then begin
                  t.clock <- ev.Timer_wheel.time;
                  t.steps <- t.steps + 1;
                  ev.Timer_wheel.run ()
                end;
                loop ()))
  in
  loop ()

let suspend _t ~register = Effect.perform (Suspend register)

let sleep t d =
  Effect.perform (Suspend (fun resume -> ignore (schedule t ~after:d resume)))

let yield t = sleep t 0
