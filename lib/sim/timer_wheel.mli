(** Hierarchical timer wheel: the engine's event queue.

    Two 256-slot wheels (8.192 us and ~2.1 ms granularity) cover the
    packet- and protocol-timer scales of the simulation; a binary-heap
    overflow holds second-scale events.  A small monomorphic "due"
    heap totally orders the events of the slot under the cursor, so
    {!pop} yields events in exact [(time, seq)] order — identical to a
    single global heap, but with O(1) insertion for the common case
    and cheap lazy cancellation.

    Cancelled events are dropped in bulk when their slot is reached,
    or all at once by an internal sweep once more than half the queued
    events are cancelled. *)

type t

type ev = private {
  time : Time.t;
  seq : int;
  run : unit -> unit;
  mutable cancelled : bool;
  mutable queued : bool;
  owner : t;
}
(** Events are created by {!schedule}; fields are read-only outside
    this module ([cancelled] is flipped via {!cancel}). *)

val create : unit -> t

val length : t -> int
(** Queued events, cancelled ones included. *)

val is_empty : t -> bool

val cancelled_pending : t -> int
(** Queued events that are cancelled but not yet dropped (for tests
    and diagnostics of the lazy-deletion accounting). *)

val schedule : t -> time:Time.t -> seq:int -> (unit -> unit) -> ev
(** Allocates an event and inserts it.  [time] must be >= the time of
    the last popped event; [seq] must be unique and increasing (the
    engine uses its scheduling counter). *)

val cancel : ev -> unit
(** Lazy deletion: marks the event; it is skipped or dropped later.
    Cancelling an already-fired or cancelled event is a no-op. *)

val peek : t -> ev option
(** The minimum pending event by [(time, seq)].  May return an event
    whose [cancelled] field is set (matching the engine's historical
    heap semantics, which its [run ~until] clock clamping relies on). *)

val pop : t -> ev option
(** Removes and returns the minimum pending event; the caller is
    responsible for skipping it if cancelled. *)
