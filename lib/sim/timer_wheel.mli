(** Hierarchical timer wheel: the engine's event queue.

    Two 256-slot wheels (8.192 us and ~2.1 ms granularity) cover the
    packet- and protocol-timer scales of the simulation; a binary-heap
    overflow holds second-scale events.  A small monomorphic "due"
    heap totally orders the events of the slot under the cursor, so
    {!pop} yields events in exact [(time, seq)] order — identical to a
    single global heap, but with O(1) insertion for the common case
    and cheap lazy cancellation.

    Cancelled events are dropped in bulk when their slot is reached,
    or all at once by an internal sweep once more than half the queued
    events are cancelled. *)

type t

type group = private {
  gid : int;
  label : string;
  mutable alive : bool;
  mutable events_run : int;
}
(** A process group — the unit of crash-stop cancellation.  Created
    via {!make_group} (the engine wraps this in its own API); killed
    by {!cancel_group_events}.  [events_run] is bumped by the engine
    for every event of the group it executes, giving per-group event
    accounting. *)

type ev = private {
  time : Time.t;
  seq : int;
  run : unit -> unit;
  group : group;
  mutable cancelled : bool;
  mutable queued : bool;
  owner : t;
}
(** Events are created by {!schedule}; fields are read-only outside
    this module ([cancelled] is flipped via {!cancel}). *)

val create : unit -> t

val length : t -> int
(** Queued events, cancelled ones included. *)

val is_empty : t -> bool

val cancelled_pending : t -> int
(** Queued events that are cancelled but not yet dropped (for tests
    and diagnostics of the lazy-deletion accounting). *)

val make_group : gid:int -> label:string -> group
(** A fresh, alive group with a zero event count. *)

val note_ran : group -> unit
(** Increment the group's [events_run] counter (engine run loop). *)

val schedule : t -> time:Time.t -> seq:int -> group:group -> (unit -> unit) -> ev
(** Allocates an event and inserts it.  [time] must be >= the time of
    the last popped event; [seq] must be unique and increasing (the
    engine uses its scheduling counter). *)

val cancel_group_events : t -> group -> unit
(** Kill the group: mark it dead and cancel every pending event that
    belongs to it, in one O(queue) pass over all levels.  New events
    scheduled into a dead group must be cancelled by the caller (the
    engine does this). *)

val cancel : ev -> unit
(** Lazy deletion: marks the event; it is skipped or dropped later.
    Cancelling an already-fired or cancelled event is a no-op. *)

val peek : t -> ev option
(** The minimum pending event by [(time, seq)].  May return an event
    whose [cancelled] field is set (matching the engine's historical
    heap semantics, which its [run ~until] clock clamping relies on). *)

val pop : t -> ev option
(** Removes and returns the minimum pending event; the caller is
    responsible for skipping it if cancelled. *)
