(** Discrete-event simulation engine with effects-based processes.

    The engine maintains a clock and a priority queue of events.
    Protocol code is written in direct (blocking) style inside
    processes spawned with {!spawn}; blocking operations ({!sleep},
    {!Ivar.read}, {!Channel.recv}, ...) are implemented with OCaml 5
    effect handlers, so there is no monadic plumbing.

    Determinism: events scheduled for the same instant fire in the
    order they were scheduled, and all randomness flows through the
    engine's seeded {!rng}. *)

type t

type handle
(** A cancellable reference to a scheduled event. *)

type group
(** A process group: the unit of crash-stop cancellation.  Every event
    and process belongs to exactly one group; {!spawn} and {!schedule}
    inherit the group of the process that calls them unless told
    otherwise.  {!cancel_group} kills a group: its pending events are
    swept, its blocked processes are dropped at their suspension
    points, and anything later scheduled into it is stillborn. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a fresh engine whose clock reads 0. *)

val now : t -> Time.t
(** Current simulated time. *)

val rng : t -> Random.State.t
(** The engine's deterministic random state. *)

(** {1 Process groups} *)

val root_group : t -> group
(** The always-alive default group.  Top-level code, shared
    infrastructure (e.g. the wire itself) and orchestration live
    here; {!cancel_group} on it is a no-op. *)

val create_group : t -> label:string -> group
(** A fresh alive group.  [label] is for diagnostics (e.g.
    ["m2/1"] for machine m2's first restart incarnation). *)

val cancel_group : t -> group -> unit
(** Crash-stop the group: marks it dead and cancels every pending
    event that belongs to it (timers, queued resumes) in one pass.
    Blocked processes of the group are killed lazily — their resume
    becomes a no-op — and subsequent scheduling into the group is
    inert.  Idempotent. *)

val group_alive : group -> bool

val group_label : group -> string

val group_events : group -> int
(** Number of events of this group the engine has executed — the
    per-group accounting used to assert that a crashed machine
    contributes exactly zero events afterwards. *)

val current_group : t -> group
(** The group of the currently-executing event (the root group when
    called outside {!run}). *)

val with_group : t -> group -> (unit -> 'a) -> 'a
(** [with_group t g f] runs [f] with [g] as the current group, so
    spawns/schedules inside [f] inherit [g].  Restores the previous
    current group on exit. *)

val schedule : ?group:group -> t -> after:Time.t -> (unit -> unit) -> handle
(** [schedule t ~after f] arranges for [f] to run at [now t + after].
    [f] runs outside any process; it must not block.  The event joins
    [group] (default: the caller's group); if that group is dead the
    event is created already cancelled. *)

val cancel : handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val spawn : ?group:group -> t -> ?after:Time.t -> (unit -> unit) -> unit
(** [spawn t f] starts a new process running [f] in [group] (default:
    the caller's group).  [f] may block.  An exception escaping [f]
    aborts the simulation: {!run} re-raises it. *)

val run : ?until:Time.t -> t -> unit
(** Runs events until the queue is empty, or until the clock would
    pass [until].  Re-raises the first exception that escaped a
    process or event callback. *)

val step_count : t -> int
(** Number of events processed so far (for tests and diagnostics). *)

(** {1 Blocking operations (only valid inside a process)} *)

val sleep : t -> Time.t -> unit
(** Suspends the calling process for the given duration. *)

val yield : t -> unit
(** Re-schedules the calling process behind events already due now. *)

val suspend : t -> register:((unit -> unit) -> unit) -> unit
(** [suspend t ~register] parks the calling process.  [register] is
    called immediately with a [resume] function; invoking [resume]
    (at most once is honoured; later calls are ignored) schedules the
    process to continue at the then-current simulated time.  This is
    the primitive from which ivars, channels and resources are built. *)
