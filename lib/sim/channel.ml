type entry = {
  mutable active : bool;
  group : Engine.group;
  resume : unit -> unit;
}

type 'a t = {
  items : 'a Queue.t;
  readers : entry Queue.t;
}

let create () = { items = Queue.create (); readers = Queue.create () }

(* Skip entries deactivated by a receive timeout, and entries whose
   process group has been crash-stopped — either kind of stale entry
   would otherwise swallow the wakeup meant for a live reader. *)
let rec wake_one t =
  match Queue.take_opt t.readers with
  | None -> ()
  | Some e ->
      if e.active && Engine.group_alive e.group then e.resume ()
      else wake_one t

let send t v =
  Queue.push v t.items;
  wake_one t

(* A woken reader may find the queue empty again if another process
   consumed the item first, so receive loops until it wins an item. *)
let rec recv eng t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None ->
      Engine.suspend eng ~register:(fun resume ->
          Queue.push
            { active = true; group = Engine.current_group eng; resume }
            t.readers);
      recv eng t

let try_recv t = Queue.take_opt t.items

let recv_timeout eng t ~timeout =
  let deadline = Engine.now eng + timeout in
  let rec wait () =
    match Queue.take_opt t.items with
    | Some v -> Some v
    | None ->
        if Engine.now eng >= deadline then None
        else begin
          Engine.suspend eng ~register:(fun resume ->
              let entry =
                { active = true; group = Engine.current_group eng; resume }
              in
              Queue.push entry t.readers;
              ignore
                (Engine.schedule eng ~after:(deadline - Engine.now eng)
                   (fun () ->
                     if entry.active then begin
                       entry.active <- false;
                       resume ()
                     end)));
          wait ()
        end
  in
  wait ()

let length t = Queue.length t.items
