(* All waiter queues record the waiter's process group; handoff-style
   wakeups (mutex unlock, semaphore release) skip waiters whose group
   has been crash-stopped, otherwise a dead fiber would be handed
   ownership it can never pass on and wedge every live waiter behind
   it. *)

let push_waiter eng q resume = Queue.push (Engine.current_group eng, resume) q

let rec pop_live q =
  match Queue.take_opt q with
  | None -> None
  | Some (g, resume) ->
      if Engine.group_alive g then Some resume else pop_live q

module Mutex = struct
  type t = {
    engine : Engine.t;
    mutable held : bool;
    waiters : (Engine.group * (unit -> unit)) Queue.t;
  }

  let create engine = { engine; held = false; waiters = Queue.create () }

  let lock t =
    if not t.held then t.held <- true
    else
      (* Ownership is handed off by unlock, so a woken waiter owns the
         mutex when it resumes. *)
      Engine.suspend t.engine ~register:(fun resume ->
          push_waiter t.engine t.waiters resume)

  let unlock t =
    if not t.held then invalid_arg "Sync.Mutex.unlock: not held";
    match pop_live t.waiters with
    | Some resume -> resume ()
    | None -> t.held <- false

  let with_lock t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception e ->
        unlock t;
        raise e
end

module Semaphore = struct
  type t = {
    engine : Engine.t;
    mutable n : int;
    waiters : (Engine.group * (unit -> unit)) Queue.t;
  }

  let create engine n =
    if n < 0 then invalid_arg "Sync.Semaphore.create: negative count";
    { engine; n; waiters = Queue.create () }

  let acquire t =
    if t.n > 0 then t.n <- t.n - 1
    else
      (* The released unit is handed to the woken waiter directly. *)
      Engine.suspend t.engine ~register:(fun resume ->
          push_waiter t.engine t.waiters resume)

  let try_acquire t =
    if t.n > 0 then begin
      t.n <- t.n - 1;
      true
    end
    else false

  let release t =
    match pop_live t.waiters with
    | Some resume -> resume ()
    | None -> t.n <- t.n + 1

  let count t = t.n
end

module Condition = struct
  type t = {
    engine : Engine.t;
    waiters : (Engine.group * (unit -> unit)) Queue.t;
  }

  let create engine = { engine; waiters = Queue.create () }

  let wait t mutex =
    Engine.suspend t.engine ~register:(fun resume ->
        push_waiter t.engine t.waiters resume;
        (* Release only after registering, so a signal between unlock
           and sleep cannot be lost. *)
        Mutex.unlock mutex);
    Mutex.lock mutex

  let signal t =
    match pop_live t.waiters with Some resume -> resume () | None -> ()

  let broadcast t =
    Queue.iter
      (fun (g, resume) -> if Engine.group_alive g then resume ())
      t.waiters;
    Queue.clear t.waiters
end

module Barrier = struct
  type t = {
    engine : Engine.t;
    parties : int;
    mutable arrived : int;
    mutable waiters : (Engine.group * (unit -> unit)) list;  (** newest first *)
  }

  let create engine ~parties =
    if parties <= 0 then invalid_arg "Sync.Barrier.create: parties";
    { engine; parties; arrived = 0; waiters = [] }

  let wait t =
    let index = t.arrived in
    t.arrived <- t.arrived + 1;
    if t.arrived = t.parties then begin
      let wake = List.rev t.waiters in
      t.waiters <- [];
      t.arrived <- 0;
      List.iter (fun (g, resume) -> if Engine.group_alive g then resume ()) wake;
      index
    end
    else begin
      Engine.suspend t.engine ~register:(fun resume ->
          t.waiters <- (Engine.current_group t.engine, resume) :: t.waiters);
      index
    end
end
