type t = {
  engine : Engine.t;
  label : string;
  waiters : (Engine.group * (unit -> unit)) Queue.t;
  mutable held : bool;
  mutable held_since : Time.t;
  mutable busy_total : Time.t;
}

let create engine ~name =
  {
    engine;
    label = name;
    waiters = Queue.create ();
    held = false;
    held_since = Time.zero;
    busy_total = Time.zero;
  }

let name t = t.label

let acquire t =
  if not t.held then begin
    t.held <- true;
    t.held_since <- Engine.now t.engine
  end
  else
    (* Ownership is handed off directly by [release], so once resumed
       the caller owns the resource. *)
    Engine.suspend t.engine ~register:(fun resume ->
        Queue.push (Engine.current_group t.engine, resume) t.waiters)

(* Handoff must skip waiters whose group was crash-stopped: a dead
   fiber can never release, so handing it the resource would wedge
   every live waiter behind it. *)
let rec pop_live q =
  match Queue.take_opt q with
  | None -> None
  | Some (g, resume) ->
      if Engine.group_alive g then Some resume else pop_live q

let release t =
  if not t.held then invalid_arg "Resource.release: not held";
  t.busy_total <- t.busy_total + (Engine.now t.engine - t.held_since);
  t.held_since <- Engine.now t.engine;
  match pop_live t.waiters with
  | Some resume -> resume ()
  | None -> t.held <- false

let consume t d =
  acquire t;
  Engine.sleep t.engine d;
  release t

let busy_time t =
  if t.held then t.busy_total + (Engine.now t.engine - t.held_since)
  else t.busy_total

let queue_length t = Queue.length t.waiters
