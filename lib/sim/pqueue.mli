(** Array-backed binary min-heap.

    Used as the simulator's event queue.  Elements are ordered by a
    caller-supplied total order; ties must be broken by the caller
    (the engine orders events by [(time, sequence number)]). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val clear : 'a t -> unit
(** Empties the heap and drops the backing array so removed elements
    become collectable. *)

val compact : 'a t -> keep:('a -> bool) -> unit
(** [compact h ~keep] removes every element [x] for which [keep x] is
    false and restores the heap invariant, in O(n).  Used by the
    engine to purge lazily-deleted (cancelled) timers. *)
