(** Critical-path tracing.

    Layers of the simulated communication stack record spans (who
    spent how long where) when tracing is enabled.  The Table 3
    reproduction sums the spans of a single SendToGroup by layer.

    Span retention is bounded: spans are kept in a fixed-capacity ring
    (oldest evicted first) so long chaos-scale traced runs cannot grow
    memory without bound.  Per-layer totals are accumulated at record
    time, so {!by_layer} is exact over {e every} span recorded since
    the last {!clear}, evicted or not. *)

type span = {
  layer : string;  (** e.g. "user", "group", "flip", "ether" *)
  host : string;  (** machine name *)
  start : Time.t;
  stop : Time.t;
}

type t

val create : ?cap:int -> unit -> t
(** Tracing starts disabled.  [cap] bounds the number of retained
    spans (default 65536); it must be positive. *)

val enable : t -> unit

val disable : t -> unit

val clear : t -> unit
(** Drops retained spans and resets the running totals. *)

val record : t -> Engine.t -> layer:string -> host:string -> Time.t -> unit
(** [record t eng ~layer ~host d] records a span of duration [d]
    ending now.  No-op when disabled. *)

val spans : t -> span list
(** Retained spans, oldest first — at most [cap], the newest ones. *)

val recorded : t -> int
(** Spans recorded since the last {!clear}, including evicted ones. *)

val retained : t -> int
(** Spans currently retained (= [min recorded cap]). *)

val by_layer : t -> (string * Time.t) list
(** Total duration per layer over all recorded spans (evicted ones
    included), in first-seen order. *)
