type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable elems : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; elems = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.elems in
  if h.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let elems = Array.make ncap x in
    Array.blit h.elems 0 elems 0 h.size;
    h.elems <- elems
  end

(* Hole-based sifting: carry the moving element in a local, shift each
   blocker into the hole it leaves, and store the element once at its
   final slot.  Comparison-for-comparison the array evolves exactly as
   the textbook swap version (ties keep preferring the left child), so
   heap layout — and with it event ordering in the engine — is
   unchanged; only the per-level loads of [h.cmp]/[h.elems] and half
   the stores go away. *)
let sift_up h i0 =
  let cmp = h.cmp and elems = h.elems in
  let x = elems.(i0) in
  let i = ref i0 in
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    let p = elems.(parent) in
    if cmp x p < 0 then begin
      elems.(!i) <- p;
      i := parent
    end
    else moving := false
  done;
  elems.(!i) <- x

let push h x =
  grow h x;
  h.elems.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.elems.(0)

let sift_down h i0 =
  let cmp = h.cmp and elems = h.elems and size = h.size in
  let x = elems.(i0) in
  let i = ref i0 in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 in
    if l >= size then moving := false
    else begin
      let r = l + 1 in
      let c = if r < size && cmp elems.(r) elems.(l) < 0 then r else l in
      if cmp elems.(c) x < 0 then begin
        elems.(!i) <- elems.(c);
        i := c
      end
      else moving := false
    end
  done;
  elems.(!i) <- x

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.elems.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.elems.(0) <- h.elems.(h.size);
      sift_down h 0
    end;
    Some top
  end

let clear h =
  h.elems <- [||];
  h.size <- 0

let compact h ~keep =
  let j = ref 0 in
  for i = 0 to h.size - 1 do
    let x = h.elems.(i) in
    if keep x then begin
      h.elems.(!j) <- x;
      incr j
    end
  done;
  (* Overwrite the tail so removed elements become collectable. *)
  if !j = 0 then h.elems <- [||]
  else
    for i = !j to h.size - 1 do
      h.elems.(i) <- h.elems.(0)
    done;
  h.size <- !j;
  for i = (h.size / 2) - 1 downto 0 do
    sift_down h i
  done
