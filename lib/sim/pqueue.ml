type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable elems : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; elems = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.elems in
  if h.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let elems = Array.make ncap x in
    Array.blit h.elems 0 elems 0 h.size;
    h.elems <- elems
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.elems.(i) h.elems.(parent) < 0 then begin
      let tmp = h.elems.(i) in
      h.elems.(i) <- h.elems.(parent);
      h.elems.(parent) <- tmp;
      sift_up h parent
    end
  end

let push h x =
  grow h x;
  h.elems.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.elems.(0)

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.elems.(l) h.elems.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.elems.(r) h.elems.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.elems.(i) in
    h.elems.(i) <- h.elems.(!smallest);
    h.elems.(!smallest) <- tmp;
    sift_down h !smallest
  end

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.elems.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.elems.(0) <- h.elems.(h.size);
      sift_down h 0
    end;
    Some top
  end

let clear h =
  h.elems <- [||];
  h.size <- 0

let compact h ~keep =
  let j = ref 0 in
  for i = 0 to h.size - 1 do
    let x = h.elems.(i) in
    if keep x then begin
      h.elems.(!j) <- x;
      incr j
    end
  done;
  (* Overwrite the tail so removed elements become collectable. *)
  if !j = 0 then h.elems <- [||]
  else
    for i = !j to h.size - 1 do
      h.elems.(i) <- h.elems.(0)
    done;
  h.size <- !j;
  for i = (h.size / 2) - 1 downto 0 do
    sift_down h i
  done
