type t = {
  mutable data : float array;
  mutable size : int;
  mutable mean_acc : float;
  mutable m2 : float;  (* sum of squared deviations from the running mean *)
  mutable low : float;
  mutable high : float;
  mutable sorted : float array option;
      (* cached sorted copy for percentile; invalidated by [add] *)
}

let create () =
  {
    data = [||];
    size = 0;
    mean_acc = 0.;
    m2 = 0.;
    low = infinity;
    high = neg_infinity;
    sorted = None;
  }

(* Welford's online algorithm: numerically stable variance, unlike the
   sum_sq/n - mean^2 formula whose cancellation can go negative for
   large same-magnitude samples. *)
let add t x =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let data = Array.make ncap 0. in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- None;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.size);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.low then t.low <- x;
  if x > t.high then t.high <- x

let count t = t.size
let mean t = if t.size = 0 then 0. else t.mean_acc

let stddev t =
  if t.size < 2 then 0.
  else
    let v = t.m2 /. float_of_int t.size in
    if v <= 0. then 0. else sqrt v

let min_value t = if t.size = 0 then 0. else t.low
let max_value t = if t.size = 0 then 0. else t.high

let sorted_samples t =
  match t.sorted with
  | Some s -> s
  | None ->
      let s = Array.sub t.data 0 t.size in
      Array.sort Float.compare s;
      t.sorted <- Some s;
      s

let percentile t p =
  if t.size = 0 then 0.
  else begin
    let sorted = sorted_samples t in
    let rank =
      int_of_float (Float.round (p /. 100. *. float_of_int (t.size - 1)))
    in
    sorted.(max 0 (min (t.size - 1) rank))
  end

let samples t = Array.sub t.data 0 t.size
