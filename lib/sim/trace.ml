type span = {
  layer : string;
  host : string;
  start : Time.t;
  stop : Time.t;
}

(* Retained spans live in a fixed-capacity ring so a long (chaos-scale)
   traced run cannot grow memory without bound; per-layer totals are
   accumulated as spans are recorded, so [by_layer] stays exact even
   after old spans have been evicted from the ring. *)
type t = {
  mutable enabled : bool;
  cap : int;
  mutable ring : span array;  (* dummy-initialised; [count] slots valid *)
  mutable head : int;  (* next write position *)
  mutable count : int;  (* valid spans, <= cap *)
  mutable n_recorded : int;  (* total ever recorded since last clear *)
  totals : (string, Time.t ref) Hashtbl.t;
  mutable layer_order : string list;  (* first-seen, newest first *)
}

let dummy_span = { layer = ""; host = ""; start = 0; stop = 0 }
let default_cap = 65_536

let create ?(cap = default_cap) () =
  if cap <= 0 then invalid_arg "Trace.create: cap must be positive";
  {
    enabled = false;
    cap;
    ring = [||];
    head = 0;
    count = 0;
    n_recorded = 0;
    totals = Hashtbl.create 8;
    layer_order = [];
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false

let clear t =
  t.ring <- [||];
  t.head <- 0;
  t.count <- 0;
  t.n_recorded <- 0;
  Hashtbl.reset t.totals;
  t.layer_order <- []

let record t eng ~layer ~host d =
  if t.enabled then begin
    if Array.length t.ring = 0 then t.ring <- Array.make t.cap dummy_span;
    let stop = Engine.now eng in
    t.ring.(t.head) <- { layer; host; start = stop - d; stop };
    t.head <- (t.head + 1) mod t.cap;
    if t.count < t.cap then t.count <- t.count + 1;
    t.n_recorded <- t.n_recorded + 1;
    (match Hashtbl.find_opt t.totals layer with
    | Some r -> r := !r + d
    | None ->
        Hashtbl.add t.totals layer (ref d);
        t.layer_order <- layer :: t.layer_order)
  end

let recorded t = t.n_recorded
let retained t = t.count

let spans t =
  (* Oldest retained first.  When the ring has wrapped, the oldest
     span sits at [head]; before wrapping, at 0. *)
  let start = if t.count < t.cap then 0 else t.head in
  List.init t.count (fun i -> t.ring.((start + i) mod t.cap))

let by_layer t =
  List.rev_map (fun layer -> (layer, !(Hashtbl.find t.totals layer)))
    t.layer_order
