(* Hierarchical timer wheel backing the engine's event queue.

   Layout (all times in integer nanoseconds, ticks = time asr l0_bits):

   - [due]: a monomorphic binary min-heap ordered by (time, seq) with
     inline int comparisons.  Holds every pending event whose l0 tick
     is <= [cursor].  Its root is always the global minimum.
   - [l0]: 256 slots of 2^13 ns = 8.192 us each (~2.1 ms span).  Holds
     events in the cursor's current l1 epoch.  Packet-scale events
     (latencies, backoffs, fragment gaps) land here.
   - [l1]: 256 slots of ~2.1 ms each (~537 ms span).  Holds events in
     future epochs; a slot is cascaded into l0 when the cursor enters
     its epoch.  Protocol timers (15 ms nack, 100 ms retransmit/probe)
     land here.
   - [overflow]: a Pqueue for events beyond the l1 horizon
     (second-scale sleeps); drained back into the wheel as the cursor
     advances.

   Cancellation is lazy: [cancel] marks the event and it is dropped
   when a slot is dumped or cascaded, or when it is popped.  When more
   than half of the queued events are cancelled marks, [sweep] purges
   all levels so a cancel-heavy workload cannot hold memory or inflate
   dump costs. *)

let l0_bits = 13
let wheel_bits = 8
let wheel_slots = 1 lsl wheel_bits
let wheel_mask = wheel_slots - 1
let l1_bits = l0_bits + wheel_bits

(* A process group: the unit of crash-stop cancellation.  Every event
   belongs to exactly one group (the engine supplies a root group for
   ungrouped work, so the hot path never tests an option).  The record
   lives here rather than in Engine to avoid a dependency cycle; the
   engine re-exports it abstractly. *)
type group = {
  gid : int;
  label : string;
  mutable alive : bool;
  mutable events_run : int;  (* events of this group the engine has run *)
}

type ev = {
  time : Time.t;
  seq : int;
  run : unit -> unit;
  group : group;
  mutable cancelled : bool;
  mutable queued : bool;  (* still inside some level of the structure *)
  owner : t;
}

and t = {
  mutable due : ev array;
  mutable due_size : int;
  l0 : ev list array;
  l1 : ev list array;
  mutable l0_count : int;
  mutable l1_count : int;
  mutable cursor : int;  (* l0 tick; every event with tick <= cursor is in due *)
  overflow : ev Pqueue.t;
  mutable size : int;            (* queued events, cancelled included *)
  mutable cancelled_count : int; (* queued events with cancelled = true *)
}

let ev_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let ev_compare a b =
  if a.time <> b.time then compare (a.time : int) b.time
  else compare (a.seq : int) b.seq

let create () =
  {
    due = [||];
    due_size = 0;
    l0 = Array.make wheel_slots [];
    l1 = Array.make wheel_slots [];
    l0_count = 0;
    l1_count = 0;
    cursor = -1;
    overflow = Pqueue.create ~cmp:ev_compare;
    size = 0;
    cancelled_count = 0;
  }

let length t = t.size
let is_empty t = t.size = 0
let cancelled_pending t = t.cancelled_count
let make_group ~gid ~label = { gid; label; alive = true; events_run = 0 }
let note_ran g = g.events_run <- g.events_run + 1

(* ---- due heap (monomorphic; compares inline on int time/seq) ---- *)

let due_sift_down t i0 =
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.due_size && ev_lt t.due.(l) t.due.(!smallest) then smallest := l;
    if r < t.due_size && ev_lt t.due.(r) t.due.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.due.(!i) in
      t.due.(!i) <- t.due.(!smallest);
      t.due.(!smallest) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let due_push t e =
  let cap = Array.length t.due in
  if t.due_size >= cap then begin
    let ncap = if cap = 0 then 256 else cap * 2 in
    let a = Array.make ncap e in
    Array.blit t.due 0 a 0 t.due_size;
    t.due <- a
  end;
  t.due.(t.due_size) <- e;
  t.due_size <- t.due_size + 1;
  let i = ref (t.due_size - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if ev_lt t.due.(!i) t.due.(p) then begin
      let tmp = t.due.(!i) in
      t.due.(!i) <- t.due.(p);
      t.due.(p) <- tmp;
      i := p
    end
    else continue := false
  done

let due_pop t =
  let top = t.due.(0) in
  t.due_size <- t.due_size - 1;
  if t.due_size > 0 then begin
    t.due.(0) <- t.due.(t.due_size);
    due_sift_down t 0
  end;
  top

(* ---- placement ---- *)

let drop t e =
  e.queued <- false;
  t.size <- t.size - 1;
  t.cancelled_count <- t.cancelled_count - 1

let add t e =
  e.queued <- true;
  t.size <- t.size + 1;
  let tick0 = e.time asr l0_bits in
  if tick0 <= t.cursor then due_push t e
  else begin
    let c1 = t.cursor asr wheel_bits in
    let tick1 = tick0 asr wheel_bits in
    if tick1 = c1 then begin
      let s = tick0 land wheel_mask in
      t.l0.(s) <- e :: t.l0.(s);
      t.l0_count <- t.l0_count + 1
    end
    else if tick1 - c1 < wheel_slots then begin
      let s = tick1 land wheel_mask in
      t.l1.(s) <- e :: t.l1.(s);
      t.l1_count <- t.l1_count + 1
    end
    else Pqueue.push t.overflow e
  end

let schedule t ~time ~seq ~group run =
  let e =
    { time; seq; run; group; cancelled = false; queued = false; owner = t }
  in
  add t e;
  e

(* ---- cursor advance ---- *)

let dump_l0_slot t s =
  let l = t.l0.(s) in
  t.l0.(s) <- [];
  List.iter
    (fun e ->
      t.l0_count <- t.l0_count - 1;
      if e.cancelled then drop t e else due_push t e)
    l

(* Move every overflow event now within the l1 horizon into the wheel.
   Called right after the cursor is rebased, so every such event is in
   a strictly future epoch. *)
let drain_overflow t =
  let c1 = t.cursor asr wheel_bits in
  let continue = ref true in
  while !continue do
    match Pqueue.peek t.overflow with
    | Some e when (e.time asr l1_bits) - c1 < wheel_slots ->
        ignore (Pqueue.pop t.overflow);
        if e.cancelled then drop t e
        else begin
          let s = (e.time asr l1_bits) land wheel_mask in
          t.l1.(s) <- e :: t.l1.(s);
          t.l1_count <- t.l1_count + 1
        end
    | _ -> continue := false
  done

(* Dump l1 slot for epoch [e1] into l0.  Only called when l0 is empty
   and the cursor sits on the last tick of epoch [e1 - 1], so direct
   placement by l0 slot index cannot mix generations. *)
let cascade t e1 =
  let s1 = e1 land wheel_mask in
  let l = t.l1.(s1) in
  t.l1.(s1) <- [];
  List.iter
    (fun e ->
      t.l1_count <- t.l1_count - 1;
      if e.cancelled then drop t e
      else begin
        let s0 = (e.time asr l0_bits) land wheel_mask in
        t.l0.(s0) <- e :: t.l0.(s0);
        t.l0_count <- t.l0_count + 1
      end)
    l

(* Ensure [due] is non-empty unless the whole queue is empty. *)
let rec refill t =
  if t.due_size > 0 then ()
  else if t.l0_count > 0 then begin
    (* Walk the slots of the next tick's epoch; stop at the first
       non-empty one.  (After a cascade the cursor sits on the last
       tick of the previous epoch, so the epoch is the next tick's,
       not the cursor's.) *)
    let c1 = (t.cursor + 1) asr wheel_bits in
    let epoch_end = ((c1 + 1) lsl wheel_bits) - 1 in
    while t.due_size = 0 && t.cursor < epoch_end do
      t.cursor <- t.cursor + 1;
      let s = t.cursor land wheel_mask in
      if t.l0.(s) <> [] then dump_l0_slot t s
    done;
    (* Still empty if the dumped events were all cancelled, or the
       epoch is exhausted: recurse to keep advancing. *)
    if t.due_size = 0 then refill t
  end
  else begin
    let c1 = t.cursor asr wheel_bits in
    let next_l1 =
      if t.l1_count = 0 then max_int
      else begin
        (* All l1 events live in epochs (c1, c1 + wheel_slots). *)
        let found = ref max_int in
        let e1 = ref (c1 + 1) in
        while !found = max_int && !e1 < c1 + wheel_slots do
          if t.l1.(!e1 land wheel_mask) <> [] then found := !e1;
          incr e1
        done;
        !found
      end
    in
    let next_of =
      match Pqueue.peek t.overflow with
      | None -> max_int
      | Some e -> e.time asr l1_bits
    in
    let target = if next_l1 < next_of then next_l1 else next_of in
    if target <> max_int then begin
      (* Jump to just before the target epoch, pull newly-reachable
         overflow events in, cascade the epoch, and scan it. *)
      t.cursor <- (target lsl wheel_bits) - 1;
      drain_overflow t;
      cascade t target;
      refill t
    end
  end

let peek t =
  refill t;
  if t.due_size = 0 then None else Some t.due.(0)

let pop t =
  refill t;
  if t.due_size = 0 then None
  else begin
    let e = due_pop t in
    e.queued <- false;
    t.size <- t.size - 1;
    if e.cancelled then t.cancelled_count <- t.cancelled_count - 1;
    Some e
  end

(* ---- lazy deletion ---- *)

(* Purge cancelled marks from every level.  O(n); runs only when more
   than half the queue is dead, so the amortised cost per cancel is
   constant. *)
let sweep t =
  let j = ref 0 in
  for i = 0 to t.due_size - 1 do
    let e = t.due.(i) in
    if e.cancelled then e.queued <- false
    else begin
      t.due.(!j) <- e;
      incr j
    end
  done;
  if !j = 0 then t.due <- [||]
  else
    for i = !j to t.due_size - 1 do
      t.due.(i) <- t.due.(0)
    done;
  t.due_size <- !j;
  for i = (t.due_size / 2) - 1 downto 0 do
    due_sift_down t i
  done;
  let filter_level arr =
    let removed = ref 0 in
    for s = 0 to wheel_slots - 1 do
      match arr.(s) with
      | [] -> ()
      | l ->
          arr.(s) <-
            List.filter
              (fun e ->
                if e.cancelled then begin
                  e.queued <- false;
                  incr removed;
                  false
                end
                else true)
              l
    done;
    !removed
  in
  t.l0_count <- t.l0_count - filter_level t.l0;
  t.l1_count <- t.l1_count - filter_level t.l1;
  Pqueue.compact t.overflow ~keep:(fun e ->
      if e.cancelled then begin
        e.queued <- false;
        false
      end
      else true);
  t.size <- t.due_size + t.l0_count + t.l1_count + Pqueue.length t.overflow;
  t.cancelled_count <- 0

let cancel e =
  if not e.cancelled then begin
    e.cancelled <- true;
    if e.queued then begin
      let t = e.owner in
      t.cancelled_count <- t.cancelled_count + 1;
      if t.cancelled_count * 2 > t.size && t.size >= 64 then sweep t
    end
  end

(* ---- group cancellation ---- *)

(* Cancel every pending event of [g] in one O(queue) pass.  Crashes
   are rare, so a full walk beats per-event handle tracking (which
   would cost an allocation on every schedule).  Wheel levels are
   marked lazily; overflow events are removed outright because the
   compact already pays for the traversal. *)
let cancel_group_events t g =
  g.alive <- false;
  let mark e =
    if e.group == g && not e.cancelled then begin
      e.cancelled <- true;
      t.cancelled_count <- t.cancelled_count + 1
    end
  in
  for i = 0 to t.due_size - 1 do
    mark t.due.(i)
  done;
  for s = 0 to wheel_slots - 1 do
    List.iter mark t.l0.(s);
    List.iter mark t.l1.(s)
  done;
  Pqueue.compact t.overflow ~keep:(fun e ->
      if e.group == g then begin
        if e.cancelled then t.cancelled_count <- t.cancelled_count - 1;
        e.queued <- false;
        t.size <- t.size - 1;
        false
      end
      else true);
  if t.cancelled_count * 2 > t.size && t.size >= 64 then sweep t
