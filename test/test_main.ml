let () =
  Alcotest.run "amoeba-repro"
    [
      Test_sim.suite;
      Test_net.suite;
      Test_switch.suite;
      Test_flip.suite;
      Test_core.suite;
      Test_wire.suite;
      Test_sync.suite;
      Test_api.suite;
      Test_recovery.suite;
      Test_failure_detector.suite;
      Test_rpc.suite;
      Test_baselines.suite;
      Test_grouplib.suite;
      Test_orca.suite;
      Test_harness.suite;
      Test_chaos.suite;
      Test_service.suite;
      Test_durability.suite;
      Test_migration.suite;
      Test_loadgen.suite;
    ]
