(* Tests for the standalone failure detector (the paper's section 5
   lesson about separating this concern). *)

open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Amoeba_harness

let with_cluster n scenario =
  let cl = Cluster.create ~n () in
  let failure = ref None in
  Cluster.spawn cl (fun () -> try scenario cl with e -> failure := Some e);
  Cluster.run ~until:(Time.sec 600) cl;
  match !failure with Some e -> raise e | None -> ()

let test_alive_peer_detected () =
  with_cluster 2 (fun cl ->
      let fd0 = Failure_detector.create (Cluster.flip cl 0) in
      let fd1 = Failure_detector.create (Cluster.flip cl 1) in
      Alcotest.(check bool) "alive" true
        (Failure_detector.probe fd0 (Failure_detector.address fd1));
      Alcotest.(check bool) "answered once" true
        (Failure_detector.probes_answered fd1 >= 1))

let test_crashed_peer_declared_dead () =
  with_cluster 2 (fun cl ->
      let fd0 = Failure_detector.create (Cluster.flip cl 0) in
      let fd1 = Failure_detector.create (Cluster.flip cl 1) in
      (* Warm the route cache first so locate failure is not what we
         measure. *)
      ignore (Failure_detector.probe fd0 (Failure_detector.address fd1));
      Machine.crash (Cluster.machine cl 1);
      Alcotest.(check bool) "dead" false
        (Failure_detector.probe fd0 ~timeout:(Time.ms 20)
           (Failure_detector.address fd1)))

let test_false_suspicion_under_loss () =
  (* The paper's caveat: an alive-but-unlucky process can be declared
     dead.  Drop every reply and watch the detector give up. *)
  with_cluster 2 (fun cl ->
      let fd0 = Failure_detector.create (Cluster.flip cl 0) in
      let fd1 = Failure_detector.create (Cluster.flip cl 1) in
      ignore (Failure_detector.probe fd0 (Failure_detector.address fd1));
      Medium.set_drop_fun cl.Cluster.net (Some (fun f -> f.Frame.src = 1));
      Alcotest.(check bool) "falsely declared dead" false
        (Failure_detector.probe fd0 ~timeout:(Time.ms 20)
           (Failure_detector.address fd1));
      (* It was alive all along. *)
      Medium.set_drop_fun cl.Cluster.net None;
      Alcotest.(check bool) "alive again once the net heals" true
        (Failure_detector.probe fd0 (Failure_detector.address fd1)))

let test_retry_recovers_single_loss () =
  with_cluster 2 (fun cl ->
      let fd0 = Failure_detector.create (Cluster.flip cl 0) in
      let fd1 = Failure_detector.create (Cluster.flip cl 1) in
      ignore (Failure_detector.probe fd0 (Failure_detector.address fd1));
      (* Lose exactly the next frame (the first probe); the retry gets
         through. *)
      let dropped = ref false in
      Medium.set_drop_fun cl.Cluster.net
        (Some
           (fun _ ->
             if !dropped then false
             else begin
               dropped := true;
               true
             end));
      Alcotest.(check bool) "retry saves the verdict" true
        (Failure_detector.probe fd0 ~timeout:(Time.ms 30)
           (Failure_detector.address fd1)))

let test_probe_many_mixed () =
  with_cluster 4 (fun cl ->
      let fd0 = Failure_detector.create (Cluster.flip cl 0) in
      let fds =
        List.init 3 (fun i -> Failure_detector.create (Cluster.flip cl (i + 1)))
      in
      let addrs = List.map Failure_detector.address fds in
      (* Warm routes, then kill machine 2. *)
      List.iter (fun a -> ignore (Failure_detector.probe fd0 a)) addrs;
      Machine.crash (Cluster.machine cl 2);
      let verdicts =
        Failure_detector.probe_many fd0 ~timeout:(Time.ms 20) addrs
      in
      Alcotest.(check (list bool))
        "alive, dead, alive"
        [ true; false; true ]
        (List.map snd verdicts))

let test_stopped_detector_looks_dead () =
  with_cluster 2 (fun cl ->
      let fd0 = Failure_detector.create (Cluster.flip cl 0) in
      let fd1 = Failure_detector.create (Cluster.flip cl 1) in
      ignore (Failure_detector.probe fd0 (Failure_detector.address fd1));
      Failure_detector.stop fd1;
      Alcotest.(check bool) "stopped endpoint is dead" false
        (Failure_detector.probe fd0 ~timeout:(Time.ms 20)
           (Failure_detector.address fd1)))

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "failure-detector",
    [
      tc "alive peer detected" test_alive_peer_detected;
      tc "crashed peer declared dead" test_crashed_peer_declared_dead;
      tc "false suspicion under loss" test_false_suspicion_under_loss;
      tc "retry recovers a single loss" test_retry_recovers_single_loss;
      tc "probe_many with mixed verdicts" test_probe_many_mixed;
      tc "stopped detector looks dead" test_stopped_detector_looks_dead;
    ] )
