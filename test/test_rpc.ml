(* Tests for the RPC baseline and ForwardRequest. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_flip
open Amoeba_rpc
open Amoeba_harness

let body = Bytes.of_string

let test_null_rpc_roundtrip () =
  let cl = Cluster.create ~n:2 () in
  let result = ref None in
  Cluster.spawn cl (fun () ->
      let addr = Flip.fresh_addr (Cluster.flip cl 1) in
      let _server =
        Rpc.serve (Cluster.flip cl 1) ~addr (fun req ->
            Types_rpc.Reply (Bytes.cat req (body "-pong")))
      in
      let c = Rpc.client (Cluster.flip cl 0) in
      result := Some (Rpc.call c ~dst:addr (body "ping")));
  Cluster.run cl;
  match !result with
  | Some (Ok r) -> Alcotest.(check string) "reply" "ping-pong" (Bytes.to_string r)
  | Some (Error _) -> Alcotest.fail "rpc failed"
  | None -> Alcotest.fail "no result"

let test_rpc_delay_near_paper () =
  (* The paper's null RPC takes 2.8 ms on this hardware. *)
  let cl = Cluster.create ~n:2 () in
  let elapsed = ref 0 in
  Cluster.spawn cl (fun () ->
      let addr = Flip.fresh_addr (Cluster.flip cl 1) in
      let _server =
        Rpc.serve (Cluster.flip cl 1) ~addr (fun _ -> Types_rpc.Reply Bytes.empty)
      in
      let c = Rpc.client (Cluster.flip cl 0) in
      (* Warm the locate caches, then measure. *)
      ignore (Rpc.call c ~dst:addr Bytes.empty);
      let t0 = Engine.now cl.Cluster.engine in
      ignore (Rpc.call c ~dst:addr Bytes.empty);
      elapsed := Engine.now cl.Cluster.engine - t0);
  Cluster.run cl;
  let ms = Time.to_ms !elapsed in
  Alcotest.(check bool)
    (Printf.sprintf "null rpc = %.2f ms (expect 2.3..3.3)" ms)
    true
    (ms > 2.3 && ms < 3.3)

let test_rpc_timeout_when_server_dead () =
  let cl = Cluster.create ~n:2 () in
  let result = ref (Ok Bytes.empty) in
  Cluster.spawn cl (fun () ->
      let addr = Flip.fresh_addr (Cluster.flip cl 1) in
      let _server =
        Rpc.serve (Cluster.flip cl 1) ~addr (fun _ -> Types_rpc.Reply Bytes.empty)
      in
      Machine.crash (Cluster.machine cl 1);
      let c = Rpc.client (Cluster.flip cl 0) in
      result := Rpc.call c ~dst:addr ~timeout:(Time.ms 50) ~retries:2 Bytes.empty);
  Cluster.run cl;
  Alcotest.(check bool) "no route or timeout" true
    (match !result with Error (`Timeout | `No_route) -> true | Ok _ -> false)

let test_at_most_once () =
  (* Drop the first reply: the retried request must be served from the
     reply cache, not re-executed. *)
  let cl = Cluster.create ~n:2 () in
  let executions = ref 0 in
  let result = ref None in
  Cluster.spawn cl (fun () ->
      let addr = Flip.fresh_addr (Cluster.flip cl 1) in
      let _server =
        Rpc.serve (Cluster.flip cl 1) ~addr (fun _ ->
            incr executions;
            Types_rpc.Reply (body "done"))
      in
      let c = Rpc.client (Cluster.flip cl 0) in
      ignore (Rpc.call c ~dst:addr (body "warm"));
      let dropped = ref false in
      Medium.set_drop_fun cl.Cluster.net
        (Some
           (fun frame ->
             (* Drop the first server->client frame after warm-up. *)
             if (not !dropped) && frame.Frame.src = 1 then begin
               dropped := true;
               true
             end
             else false));
      result := Some (Rpc.call c ~dst:addr ~timeout:(Time.ms 100) (body "x")));
  Cluster.run cl;
  (match !result with
  | Some (Ok r) -> Alcotest.(check string) "reply" "done" (Bytes.to_string r)
  | _ -> Alcotest.fail "call failed");
  Alcotest.(check int) "handler ran twice total (warm + once)" 2 !executions

let test_forward_request () =
  (* The paper's ForwardRequest: server 1 forwards to server 2, which
     replies directly to the client. *)
  let cl = Cluster.create ~n:3 () in
  let result = ref None in
  let s1_ref = ref None in
  Cluster.spawn cl (fun () ->
      let addr1 = Flip.fresh_addr (Cluster.flip cl 1) in
      let addr2 = Flip.fresh_addr (Cluster.flip cl 2) in
      let s1 =
        Rpc.serve (Cluster.flip cl 1) ~addr:addr1 (fun _ -> Types_rpc.Forward addr2)
      in
      s1_ref := Some s1;
      let _s2 =
        Rpc.serve (Cluster.flip cl 2) ~addr:addr2 (fun req ->
            Types_rpc.Reply (Bytes.cat (body "via2:") req))
      in
      let c = Rpc.client (Cluster.flip cl 0) in
      result := Some (Rpc.call c ~dst:addr1 (body "job")));
  Cluster.run cl;
  (match !result with
  | Some (Ok r) -> Alcotest.(check string) "reply from member 2" "via2:job" (Bytes.to_string r)
  | _ -> Alcotest.fail "forwarded call failed");
  match !s1_ref with
  | Some s1 -> Alcotest.(check int) "s1 forwarded" 1 (Rpc.requests_forwarded s1)
  | None -> Alcotest.fail "no server"

let test_concurrent_clients () =
  let cl = Cluster.create ~n:4 () in
  let oks = ref 0 in
  Cluster.spawn cl (fun () ->
      let addr = Flip.fresh_addr (Cluster.flip cl 0) in
      let _server =
        Rpc.serve (Cluster.flip cl 0) ~addr (fun req -> Types_rpc.Reply req)
      in
      for i = 1 to 3 do
        Cluster.spawn cl (fun () ->
            let c = Rpc.client (Cluster.flip cl i) in
            for _ = 1 to 5 do
              match Rpc.call c ~dst:addr (body "x") with
              | Ok _ -> incr oks
              | Error _ -> ()
            done)
      done);
  Cluster.run cl;
  Alcotest.(check int) "all 15 calls succeed" 15 !oks

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "rpc",
    [
      tc "null rpc roundtrip" test_null_rpc_roundtrip;
      tc "null rpc delay near 2.8 ms" test_rpc_delay_near_paper;
      tc "timeout when server dead" test_rpc_timeout_when_server_dead;
      tc "at-most-once execution" test_at_most_once;
      tc "forward request" test_forward_request;
      tc "concurrent clients" test_concurrent_clients;
    ] )
