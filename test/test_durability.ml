(* Directed tests for the durability layer: WAL framing and damage
   handling, checkpoint fallback, the checkpoint/trim crash window,
   and whole-cluster power-loss recovery through the chaos harness. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Amoeba_grouplib
open Amoeba_harness
module T = Types

let ssd = { Cost_model.default with Cost_model.disk = Cost_model.ssd }

let payload k = Bytes.of_string (Printf.sprintf "record-%d" k)

(* ----- WAL model: round-trip, torn tails ----- *)

let test_wal_roundtrip_and_torn_tail () =
  (* Five synced records are durable; three unsynced ones sit in the
     write cache.  A power loss keeps the durable prefix plus at most
     a torn fragment of the cache — never a gap, never an invented
     record. *)
  let cl = Cluster.create ~cost:ssd ~n:1 () in
  let store = Stable_store.create () in
  Cluster.spawn_on cl 0 (fun () ->
      let m = Cluster.machine cl 0 in
      for k = 1 to 5 do
        assert (Stable_store.wal_append store m ~log:"t" ~sync:true ~index:k
                  (payload k))
      done;
      for k = 6 to 8 do
        assert (Stable_store.wal_append store m ~log:"t" ~sync:false ~index:k
                  (payload k))
      done);
  Cluster.spawn cl (fun () ->
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Machine.crash (Cluster.machine cl 0));
  Cluster.run ~until:(Time.sec 1) cl;
  let r = Stable_store.wal_read store ~machine_name:"m0" ~log:"t" in
  let n = List.length r.Stable_store.records in
  Alcotest.(check bool) "durable prefix survives" true (n >= 5 && n <= 8);
  Alcotest.(check bool) "at most one torn tail" true
    (r.Stable_store.torn_tails <= 1);
  Alcotest.(check int) "no checksum damage" 0 r.Stable_store.checksum_rejects;
  List.iteri
    (fun i (idx, b) ->
      Alcotest.(check int) "consecutive indices" (i + 1) idx;
      Alcotest.(check bytes) "payload intact" (payload (i + 1)) b)
    r.Stable_store.records

(* ----- WAL damage: a flipped bit refuses the whole suffix ----- *)

let test_wal_bitflip_refuses_suffix () =
  let cl = Cluster.create ~cost:ssd ~n:1 () in
  let store = Stable_store.create () in
  Cluster.spawn_on cl 0 (fun () ->
      let m = Cluster.machine cl 0 in
      for k = 1 to 6 do
        assert (Stable_store.wal_append store m ~log:"t" ~sync:true ~index:k
                  (payload k))
      done);
  Cluster.run ~until:(Time.sec 1) cl;
  let size = Stable_store.wal_size store ~machine_name:"m0" ~log:"t" in
  Stable_store.corrupt_wal store ~machine_name:"m0" ~log:"t" ~at:(size / 2);
  (* The costed replay an actual recovery would run. *)
  let result = ref None in
  Cluster.spawn_on cl 0 (fun () ->
      result :=
        Some (Stable_store.wal_replay store (Cluster.machine cl 0) ~log:"t"));
  Cluster.run ~until:(Time.sec 2) cl;
  match !result with
  | None -> Alcotest.fail "replay did not run"
  | Some r ->
      let n = List.length r.Stable_store.records in
      Alcotest.(check bool) "suffix refused" true (n < 6);
      Alcotest.(check int) "damage detected once" 1
        r.Stable_store.checksum_rejects;
      List.iteri
        (fun i (idx, b) ->
          Alcotest.(check int) "surviving prefix consecutive" (i + 1) idx;
          Alcotest.(check bytes) "surviving payload intact" (payload (i + 1)) b)
        r.Stable_store.records;
      Alcotest.(check bool) "counters account the damage" true
        ((Stable_store.counters store).Stable_store.checksum_rejects >= 1)

(* ----- Rsm recovery: the counter app from the grouplib tests ----- *)

module Log_app = struct
  type state = { entries : int list; sum : int }
  type update = int

  let initial = { entries = []; sum = 0 }
  let apply s u = { entries = u :: s.entries; sum = s.sum + u }
  let encode_update u = Bytes.of_string (string_of_int u)
  let decode_update b = int_of_string_opt (Bytes.to_string b)

  let encode_state s =
    Bytes.of_string (String.concat "," (List.map string_of_int s.entries))

  let decode_state b =
    let str = Bytes.to_string b in
    if str = "" then Some initial
    else
      let entries = List.map int_of_string (String.split_on_char ',' str) in
      Some { entries; sum = List.fold_left ( + ) 0 entries }
end

module R = Rsm.Make (Log_app)

let check_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (T.error_to_string e)

(* A truncated (torn) checkpoint whose WAL head was already trimmed:
   the surviving records cannot reconstruct any consistent prefix, and
   recovery must refuse loudly rather than guess. *)
let test_truncated_checkpoint_refused () =
  let store = Stable_store.create () in
  let d =
    {
      Rsm.store;
      log = "t3";
      sync = Rsm.Every_commit;
      checkpoint_every = 4;
    }
  in
  let cl = Cluster.create ~cost:ssd ~n:1 () in
  Cluster.spawn cl (fun () ->
      let r = R.create (Cluster.flip cl 0) ~durable:d () in
      for k = 1 to 10 do
        ignore (check_ok "submit" (R.submit r k))
      done;
      (* let the background checkpoint (at 8) and its WAL trim land *)
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      Machine.crash (Cluster.machine cl 0));
  Cluster.run ~until:(Time.sec 10) cl;
  (* Tear the checkpoint file, then reboot and try to recover. *)
  Stable_store.truncate_value store ~machine_name:"m0"
    ~key:(Rsm.ckpt_name d) ~len:3;
  Cluster.restart cl 0;
  let result = ref None in
  Cluster.spawn_on cl 0 (fun () ->
      result := Some (R.recover d (Cluster.machine cl 0)));
  Cluster.run ~until:(Time.sec 20) cl;
  match !result with
  | None -> Alcotest.fail "recovery did not run"
  | Some (Ok rec_) ->
      Alcotest.failf
        "recovered applied=%d from a torn checkpoint and a trimmed WAL"
        rec_.R.r_applied
  | Some (Error msg) ->
      Alcotest.(check bool)
        (Printf.sprintf "refusal names the gap (%s)" msg)
        true
        (String.length msg > 0)

(* The crash window between writing a checkpoint and trimming the WAL:
   the disk then holds a checkpoint at count 8 AND a WAL still
   covering 1..10.  Recovery must skip the already-checkpointed
   indices — replaying exactly 9 and 10, no double-apply. *)
let test_recover_skips_checkpointed_indices () =
  let store = Stable_store.create () in
  let d1 =
    { Rsm.store; log = "a"; sync = Rsm.Every_commit; checkpoint_every = 0 }
  in
  let d2 =
    { Rsm.store; log = "b"; sync = Rsm.Every_commit; checkpoint_every = 4 }
  in
  let cl = Cluster.create ~cost:ssd ~n:1 () in
  Cluster.spawn cl (fun () ->
      (* Replica "a" never checkpoints: its WAL keeps 1..10.  Replica
         "b" applies the same updates and checkpoints at 8; copying
         b's checkpoint under a's key forges the exact disk image of a
         crash between checkpoint write and WAL trim. *)
      let ra = R.create (Cluster.flip cl 0) ~durable:d1 () in
      let rb = R.create (Cluster.flip cl 0) ~durable:d2 () in
      for k = 1 to 10 do
        ignore (check_ok "submit a" (R.submit ra k));
        ignore (check_ok "submit b" (R.submit rb k))
      done;
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      (match Stable_store.read store ~machine_name:"m0" ~key:(Rsm.ckpt_name d2)
       with
      | None -> Alcotest.fail "replica b never checkpointed"
      | Some ckpt ->
          assert (Stable_store.write store (Cluster.machine cl 0)
                    ~key:(Rsm.ckpt_name d1) ckpt));
      Machine.crash (Cluster.machine cl 0));
  Cluster.run ~until:(Time.sec 10) cl;
  Cluster.restart cl 0;
  let result = ref None in
  Cluster.spawn_on cl 0 (fun () ->
      result := Some (R.recover d1 (Cluster.machine cl 0)));
  Cluster.run ~until:(Time.sec 20) cl;
  match !result with
  | None -> Alcotest.fail "recovery did not run"
  | Some (Error msg) -> Alcotest.failf "recovery refused: %s" msg
  | Some (Ok rec_) ->
      Alcotest.(check int) "checkpoint restored count" 8
        rec_.R.r_stats.Rsm.ckpt_count;
      Alcotest.(check bool) "checkpoint intact" false
        rec_.R.r_stats.Rsm.checkpoint_damaged;
      Alcotest.(check int) "only the uncovered suffix replayed" 2
        rec_.R.r_stats.Rsm.records_replayed;
      Alcotest.(check int) "all ten updates restored" 10 rec_.R.r_applied;
      Alcotest.(check int) "state consistent (no double-apply)" 55
        rec_.R.r_state.Log_app.sum

(* ----- state-transfer resumption: the migration destination's crash
   window ----- *)

(* A joiner's disk reconcile writes a fresh checkpoint of the
   transferred state; the WAL delta past it only accumulates as the
   replica keeps applying.  Crash the destination right inside that
   window — checkpoint installed, no delta applied — and its disk
   alone can only take it back to the transfer point.  Resumption is
   recover-from-checkpoint (zero records to replay) followed by a
   re-join: the atomic state transfer closes exactly the gap the
   crash left, and the reconciled disk then covers the full state. *)
let test_state_transfer_resumption () =
  let store = Stable_store.create () in
  let d =
    { Rsm.store; log = "xfer"; sync = Rsm.Every_commit; checkpoint_every = 4 }
  in
  let cl = Cluster.create ~cost:ssd ~n:2 () in
  let done_ = ref false in
  Cluster.spawn cl (fun () ->
      let eng = cl.Cluster.engine in
      let recover_on_m1 () =
        let ch = Channel.create () in
        Cluster.spawn_on cl 1 (fun () ->
            Channel.send ch (R.recover d (Cluster.machine cl 1)));
        Channel.recv eng ch
      in
      let src = R.create (Cluster.flip cl 0) ~durable:d () in
      for k = 1 to 8 do
        ignore (check_ok "seed submit" (R.submit src k))
      done;
      (* destination joins: atomic state transfer + disk reconcile
         (fresh checkpoint at applied=8 on m1's disk) *)
      let dst =
        check_ok "join" (R.join (Cluster.flip cl 1) ~durable:d (R.address src))
      in
      Alcotest.(check int) "transfer caught the seed state" 8 (R.applied dst);
      Engine.sleep eng (Time.ms 200);
      (* the crash window: checkpoint installed, no WAL delta yet *)
      Machine.crash (Cluster.machine cl 1);
      (* the delta the destination will have to catch up on lives only
         in the survivor's stream and WAL *)
      for k = 9 to 12 do
        ignore (check_ok "delta submit" (R.submit src k))
      done;
      Engine.sleep eng (Time.ms 200);
      Cluster.restart cl 1;
      (match recover_on_m1 () with
      | Error msg -> Alcotest.failf "resumption refused: %s" msg
      | Ok rec_ ->
          Alcotest.(check int) "checkpoint alone resumed the transfer" 8
            rec_.R.r_stats.Rsm.ckpt_count;
          Alcotest.(check int) "no delta was on disk yet" 0
            rec_.R.r_stats.Rsm.records_replayed;
          Alcotest.(check int) "recovered to the transfer point" 8
            rec_.R.r_applied);
      (* resumption completes by re-joining: the state transfer closes
         exactly the 9..12 gap and reconciles the disk to the full
         state *)
      let dst' =
        check_ok "re-join"
          (R.join (Cluster.flip cl 1) ~durable:d (R.address src))
      in
      Engine.sleep eng (Time.ms 200);
      Alcotest.(check int) "catch-up complete" 12 (R.applied dst');
      Alcotest.(check int) "state consistent" 78 (R.state dst').Log_app.sum;
      (* the reconciled disk now stands on its own: a second crash and
         recovery restores the caught-up state from m1's disk alone *)
      Machine.crash (Cluster.machine cl 1);
      Engine.sleep eng (Time.ms 100);
      Cluster.restart cl 1;
      (match recover_on_m1 () with
      | Error msg -> Alcotest.failf "post-catch-up recovery: %s" msg
      | Ok rec_ ->
          Alcotest.(check int) "disk covers the caught-up state" 12
            rec_.R.r_applied;
          Alcotest.(check int) "sum survives" 78 rec_.R.r_state.Log_app.sum);
      done_ := true);
  Cluster.run ~until:(Time.sec 60) cl;
  Alcotest.(check bool) "scenario finished" true !done_

(* ----- whole-cluster power loss through the chaos harness ----- *)

let power_cycle_schedule =
  [ { Fault.at = Time.ms 900; action = Fault.Power_cycle_all (Time.ms 250) } ]

let adversarial_net =
  {
    Medium.gilbert =
      Some { Medium.p_gb = 0.01; p_bg = 0.3; loss_good = 0.002; loss_bad = 0.4 };
    dup_prob = 0.05;
    jitter_ns = Time.ms 2;
    corrupt_prob = 0.01;
  }

let run_power_cycle ~net ~seed () =
  let o =
    Chaos.run ~n:4 ~schedule:power_cycle_schedule ~net
      ~disk:Cost_model.ssd ~seed ()
  in
  if not (Chaos.ok o) then (
    Chaos.print_report o;
    Alcotest.fail "power-cycle run violated an invariant");
  Alcotest.(check int) "the cycle fired" 1 o.Chaos.power_cycles;
  Alcotest.(check bool) "deliveries were logged" true (o.Chaos.wal_appends > 0);
  Alcotest.(check bool) "recovery replayed records" true
    (o.Chaos.wal_records_replayed > 0);
  Alcotest.(check bool) "the recovery invariant ran" true
    (List.exists
       (fun v -> v.Checker.invariant = "durable-recovery")
       o.Chaos.verdicts);
  Alcotest.(check bool) "the post-recovery epoch was checked" true
    (List.exists
       (fun v -> v.Checker.invariant = "post:total-order")
       o.Chaos.verdicts)

let test_power_cycle_clean () = run_power_cycle ~net:Medium.clean ~seed:7 ()

let test_power_cycle_adversarial () =
  run_power_cycle ~net:adversarial_net ~seed:7 ()

let test_healthy_durable_run () =
  (* No faults at all, but durable mode on: the disks must agree with
     the streams, and the classic invariants must be untouched by the
     logging. *)
  let o = Chaos.run ~n:4 ~schedule:[] ~disk:Cost_model.ssd ~seed:13 () in
  if not (Chaos.ok o) then (
    Chaos.print_report o;
    Alcotest.fail "healthy durable run violated an invariant");
  Alcotest.(check bool) "durable" true o.Chaos.durable;
  Alcotest.(check int) "no cycle" 0 o.Chaos.power_cycles;
  Alcotest.(check bool) "deliveries were logged" true (o.Chaos.wal_appends > 0)

(* ----- whole-service power loss: every server host dies at once,
   recovery rebuilds the shards from their disks, the router follows
   the handoff, and every acked write reads back ----- *)

let test_service_power_loss () =
  let open Amoeba_service in
  let cl = Cluster.create ~cost:ssd ~n:5 ~seed:5 () in
  let store = Stable_store.create () in
  let durable =
    { Service.d_store = store; d_sync = Rsm.Every_commit; d_checkpoint_every = 8 }
  in
  let done_ = ref false in
  Cluster.spawn cl (fun () ->
      let map =
        Shard_map.create ~shards:2 ~replication:2 ~hosts:[ 0; 1; 2; 3 ] ()
      in
      let svc = Service.deploy cl ~map ~resilience:0 ~durable () in
      let router =
        Router.create (Cluster.flip cl 4) ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      for i = 0 to 19 do
        match Router.put router ("k" ^ string_of_int i) ("v" ^ string_of_int i)
        with
        | Router.Written -> ()
        | _ -> Alcotest.failf "put k%d not written" i
      done;
      Engine.sleep cl.Cluster.engine (Time.ms 300);
      (* Total power loss: all four server hosts at once (the client
         machine keeps its router). *)
      for h = 0 to 3 do
        Machine.crash (Cluster.machine cl h)
      done;
      Engine.sleep cl.Cluster.engine (Time.ms 250);
      for h = 0 to 3 do
        Cluster.restart cl h
      done;
      let svc' = Service.recover cl ~map ~durable ~resilience:0 () in
      Router.update_endpoints router (Service.endpoints svc');
      List.iter
        (fun sr ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d restarted from disk" sr.Service.sr_shard)
            true (sr.Service.sr_applied > 0);
          List.iter
            (fun hr ->
              match hr.Service.hr_error with
              | Some e ->
                  Alcotest.failf "host %d refused recovery: %s"
                    hr.Service.hr_host e
              | None -> ())
            sr.Service.sr_hosts)
        (Service.recovery_report svc');
      (* Every acked write must read back: under Every_commit the ack
         implied a durable WAL record on the submitting replica, and
         the recovery creator is the host with the longest log. *)
      for i = 0 to 19 do
        let k = "k" ^ string_of_int i in
        match Router.get router k with
        | Router.Value v ->
            Alcotest.(check string) ("post-recovery get " ^ k)
              ("v" ^ string_of_int i) v
        | _ -> Alcotest.failf "acked write %s lost across the power cycle" k
      done;
      (* Bounded-staleness reads come from the durable frontier: never
         a wrong value, possibly a miss for keys past the replica's
         last checkpoint. *)
      let srouter =
        Router.create (Cluster.flip cl 4) ~stale_reads:true ~map
          ~endpoints:(Service.endpoints svc') ()
      in
      let hits = ref 0 in
      for i = 0 to 19 do
        let k = "k" ^ string_of_int i in
        match Router.get srouter k with
        | Router.Value v ->
            Alcotest.(check string) ("stale get " ^ k)
              ("v" ^ string_of_int i) v;
            incr hits
        | Router.Not_found -> ()
        | _ -> Alcotest.failf "stale get %s failed outright" k
      done;
      Alcotest.(check bool) "durable frontier serves reads" true (!hits > 0);
      Alcotest.(check int) "all gets went stale" 20
        (Router.stats srouter).Router.stale_gets;
      Alcotest.(check int) "plain router issued none" 0
        (Router.stats router).Router.stale_gets;
      done_ := true);
  Cluster.run ~until:(Time.sec 120) cl;
  Alcotest.(check bool) "scenario finished" true !done_

let test_power_cycle_requires_disk () =
  Alcotest.check_raises "no disk, no power cycle"
    (Invalid_argument "Chaos.run: Power_cycle_all needs a disk (pass ~disk)")
    (fun () -> ignore (Chaos.run ~schedule:power_cycle_schedule ~seed:1 ()))

(* ----- schedule generator and text round-trip ----- *)

let test_power_cycle_schedule_roundtrip () =
  let with_pc = Fault.random ~seed:42 ~n:4 ~power_cycles:true () in
  let cycles =
    List.filter
      (fun s ->
        match s.Fault.action with Fault.Power_cycle_all _ -> true | _ -> false)
      with_pc
  in
  Alcotest.(check int) "exactly one cycle drawn" 1 (List.length cycles);
  (* the base schedule for the seed is unchanged *)
  let base = Fault.random ~seed:42 ~n:4 () in
  Alcotest.(check bool) "base schedule untouched" true
    (List.filter
       (fun s ->
         match s.Fault.action with
         | Fault.Power_cycle_all _ -> false
         | _ -> true)
       with_pc
    = base);
  (* text round-trip ([of_string] sorts by time) *)
  let sorted = List.sort compare with_pc in
  Alcotest.(check bool) "text round-trip" true
    (List.sort compare (Fault.of_string (Fault.to_string with_pc)) = sorted)

let suite =
  ( "durability",
    let tc = Alcotest.test_case in
    [
      tc "wal round-trip and torn tail" `Quick test_wal_roundtrip_and_torn_tail;
      tc "wal bit-flip refuses the suffix" `Quick
        test_wal_bitflip_refuses_suffix;
      tc "truncated checkpoint is refused" `Quick
        test_truncated_checkpoint_refused;
      tc "recovery skips checkpointed indices" `Quick
        test_recover_skips_checkpointed_indices;
      tc "state-transfer resumption after a mid-window crash" `Quick
        test_state_transfer_resumption;
      tc "power cycle on a clean net" `Quick test_power_cycle_clean;
      tc "power cycle on a hostile net" `Quick test_power_cycle_adversarial;
      tc "healthy durable run" `Quick test_healthy_durable_run;
      tc "whole-service power loss" `Quick test_service_power_loss;
      tc "power cycle requires a disk" `Quick test_power_cycle_requires_disk;
      tc "power-cycle schedule round-trip" `Quick
        test_power_cycle_schedule_roundtrip;
    ] )
