(* Tests for the group communication protocol: ordering, reliability,
   resilience, membership and recovery. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Amoeba_harness
module T = Types

(* ----- fixtures ----- *)

(* Builds a group with one member per machine: the creator on machine
   0 (hosting the sequencer) and joiners on machines 1..n-1.  Runs
   inside a process and passes the members to [scenario]. *)
let with_group ?(machines = 0) ?(resilience = 0) ?(send_method = T.Pb) ?history
    ~n scenario =
  let cl = Cluster.create ~n:(max n machines) () in
  let failure = ref None in
  Cluster.spawn cl (fun () ->
      let creator =
        Api.create_group (Cluster.flip cl 0) ~resilience ~send_method ?history ()
      in
      let addr = Api.group_address creator in
      let joiners =
        List.init (n - 1) (fun i ->
            match
              Api.join_group (Cluster.flip cl (i + 1)) ~resilience ~send_method
                ?history addr
            with
            | Ok g -> g
            | Error e ->
                failwith (Printf.sprintf "join %d failed: %s" (i + 1)
                            (T.error_to_string e)))
      in
      try scenario cl (creator :: joiners)
      with e -> failure := Some e);
  (* Bounded run: scenarios with residual periodic repair traffic
     (e.g. an expelled member that keeps nacking) must still end. *)
  Cluster.run ~until:(Time.sec 2_000) cl;
  match !failure with Some e -> raise e | None -> ()

(* Spawns a consumer that appends every delivered event to a list. *)
let collector cl g =
  let acc = ref [] in
  Cluster.spawn cl (fun () ->
      let rec loop () =
        acc := Api.receive_from_group g :: !acc;
        loop ()
      in
      loop ());
  acc

let messages_of events =
  List.rev_map
    (function
      | T.Message { seq; sender; body } -> Some (seq, sender, Bytes.to_string body)
      | _ -> None)
    events
  |> List.filter_map Fun.id

let body s = Bytes.of_string s

let check_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (T.error_to_string e)

(* ----- basics ----- *)

let test_create_group () =
  with_group ~n:1 (fun _cl groups ->
      let g = List.hd groups in
      let info = Api.get_info_group g in
      Alcotest.(check int) "creator is member 0" 0 info.Api.my_mid;
      Alcotest.(check int) "creator sequences" 0 info.Api.sequencer;
      Alcotest.(check (list int)) "members" [ 0 ] info.Api.members;
      Alcotest.(check bool) "kernel role" true (Kernel.is_sequencer (Api.kernel g)))

let test_join_group () =
  with_group ~n:3 (fun _cl groups ->
      List.iteri
        (fun i g ->
          let info = Api.get_info_group g in
          Alcotest.(check int) (Printf.sprintf "mid of %d" i) i info.Api.my_mid;
          Alcotest.(check (list int)) "members" [ 0; 1; 2 ] info.Api.members;
          Alcotest.(check int) "sequencer" 0 info.Api.sequencer)
        groups)

let test_send_from_creator () =
  with_group ~n:2 (fun cl groups ->
      let g0 = List.nth groups 0 and g1 = List.nth groups 1 in
      let acc1 = collector cl g1 in
      let seq = check_ok "send" (Api.send_to_group g0 (body "hi")) in
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      Alcotest.(check (list (triple int int string)))
        "delivered at member 1"
        [ (seq, 0, "hi") ]
        (messages_of !acc1))

let test_send_from_joiner () =
  with_group ~n:2 (fun cl groups ->
      let g0 = List.nth groups 0 and g1 = List.nth groups 1 in
      let acc0 = collector cl g0 in
      let seq = check_ok "send" (Api.send_to_group g1 (body "from 1")) in
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      Alcotest.(check (list (triple int int string)))
        "delivered at creator"
        [ (seq, 1, "from 1") ]
        (messages_of !acc0))

let test_sender_receives_own_message () =
  with_group ~n:3 (fun cl groups ->
      let g1 = List.nth groups 1 in
      let acc1 = collector cl g1 in
      ignore (check_ok "send" (Api.send_to_group g1 (body "echo")));
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      Alcotest.(check int) "own message delivered" 1
        (List.length (messages_of !acc1)))

let test_seqno_increases () =
  with_group ~n:2 (fun _cl groups ->
      let g0 = List.hd groups in
      let s1 = check_ok "s1" (Api.send_to_group g0 (body "a")) in
      let s2 = check_ok "s2" (Api.send_to_group g0 (body "b")) in
      let s3 = check_ok "s3" (Api.send_to_group g0 (body "c")) in
      Alcotest.(check bool) "strictly increasing" true (s1 < s2 && s2 < s3))

(* ----- ordering ----- *)

let concurrent_senders_scenario ~send_method ~resilience ~n ~senders ~each () =
  with_group ~send_method ~resilience ~n (fun cl groups ->
      let accs = List.map (collector cl) groups in
      List.iteri
        (fun i g ->
          if i < senders then
            Cluster.spawn cl (fun () ->
                for k = 1 to each do
                  ignore
                    (check_ok "send"
                       (Api.send_to_group g (body (Printf.sprintf "%d.%d" i k))))
                done))
        groups;
      Engine.sleep cl.Cluster.engine (Time.sec 30);
      let streams = List.map (fun acc -> messages_of !acc) accs in
      let expected_count = senders * each in
      List.iteri
        (fun i s ->
          Alcotest.(check int)
            (Printf.sprintf "member %d got all" i)
            expected_count (List.length s))
        streams;
      (* Total order: every member sees the identical stream. *)
      let first = List.hd streams in
      List.iteri
        (fun i s ->
          Alcotest.(check bool)
            (Printf.sprintf "member %d stream identical" i)
            true (s = first))
        streams;
      (* FIFO per sender. *)
      List.init senders Fun.id
      |> List.iter (fun sender ->
             let mine = List.filter (fun (_, s, _) -> s = sender) first in
             let bodies = List.map (fun (_, _, b) -> b) mine in
             let expected =
               List.init each (fun k -> Printf.sprintf "%d.%d" sender (k + 1))
             in
             Alcotest.(check (list string))
               (Printf.sprintf "fifo for sender %d" sender)
               expected bodies))

let test_total_order_pb () =
  concurrent_senders_scenario ~send_method:T.Pb ~resilience:0 ~n:4 ~senders:3
    ~each:5 ()

let test_total_order_bb () =
  concurrent_senders_scenario ~send_method:T.Bb ~resilience:0 ~n:4 ~senders:3
    ~each:5 ()

let test_total_order_resilient () =
  concurrent_senders_scenario ~send_method:T.Pb ~resilience:2 ~n:4 ~senders:3
    ~each:4 ()

(* ----- methods ----- *)

let bytes_on_wire ~send_method ~size =
  let result = ref 0 in
  with_group ~send_method ~n:3 (fun cl groups ->
      let g1 = List.nth groups 1 in
      (* warm up locate caches etc. *)
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      let before = Medium.bytes_delivered cl.Cluster.net in
      ignore (check_ok "send" (Api.send_to_group g1 (Bytes.create size)));
      Engine.sleep cl.Cluster.engine (Time.ms 200);
      result := Medium.bytes_delivered cl.Cluster.net - before);
  !result

let test_bb_uses_half_the_bandwidth () =
  (* PB sends the full message twice (2n), BB once (n) plus a short
     accept: the paper's section 3.1 trade-off. *)
  let pb = bytes_on_wire ~send_method:T.Pb ~size:4096 in
  let bb = bytes_on_wire ~send_method:T.Bb ~size:4096 in
  Alcotest.(check bool)
    (Printf.sprintf "bb (%d) well below pb (%d)" bb pb)
    true
    (float_of_int bb < 0.65 *. float_of_int pb)

let test_auto_switches_by_size () =
  let small = bytes_on_wire ~send_method:T.Auto ~size:16 in
  let pb_small = bytes_on_wire ~send_method:T.Pb ~size:16 in
  let large = bytes_on_wire ~send_method:T.Auto ~size:8000 in
  let bb_large = bytes_on_wire ~send_method:T.Bb ~size:8000 in
  Alcotest.(check int) "auto = pb for small" pb_small small;
  Alcotest.(check int) "auto = bb for large" bb_large large

(* ----- loss recovery (negative acknowledgements) ----- *)

let drop_nth_matching cl ~n pred =
  let count = ref 0 in
  Medium.set_drop_fun cl.Cluster.net
    (Some
       (fun frame ->
         match Amoeba_flip.Flip.packet_of_frame frame with
         | Some p when pred p.Amoeba_flip.Packet.body ->
             incr count;
             !count = n
         | _ -> false))

let is_data = function
  | Wire.Group (Wire.Data { payload = T.User _; _ }) -> true
  | _ -> false

let is_req = function
  | Wire.Group (Wire.Req _) -> true
  | _ -> false

let is_accept = function
  | Wire.Group (Wire.Accept _) -> true
  | _ -> false

let test_lost_multicast_recovered_by_nack () =
  with_group ~n:3 (fun cl groups ->
      let g1 = List.nth groups 1 and g2 = List.nth groups 2 in
      let acc2 = collector cl g2 in
      (* warm up *)
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      drop_nth_matching cl ~n:1 is_data;
      ignore (check_ok "send" (Api.send_to_group g1 (body "lost-then-found")));
      ignore (check_ok "send2" (Api.send_to_group g1 (body "tail")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      let msgs = messages_of !acc2 in
      Alcotest.(check (list string))
        "all delivered in order despite loss"
        [ "w"; "lost-then-found"; "tail" ]
        (List.map (fun (_, _, b) -> b) msgs);
      let nacks =
        List.fold_left
          (fun acc g -> acc + (Kernel.stats (Api.kernel g)).Kernel.nacks_sent)
          0 groups
      in
      Alcotest.(check bool) "someone nacked" true (nacks > 0))

let test_lost_request_retransmitted_by_sender () =
  with_group ~n:2 (fun cl groups ->
      let g0 = List.nth groups 0 and g1 = List.nth groups 1 in
      let acc0 = collector cl g0 in
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      drop_nth_matching cl ~n:1 is_req;
      ignore (check_ok "send" (Api.send_to_group g1 (body "retry")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check (list string))
        "delivered exactly once"
        [ "w"; "retry" ]
        (List.map (fun (_, _, b) -> b) (messages_of !acc0)))

let test_lost_accept_recovered () =
  with_group ~send_method:T.Bb ~n:3 (fun cl groups ->
      let g1 = List.nth groups 1 and g2 = List.nth groups 2 in
      let acc2 = collector cl g2 in
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      drop_nth_matching cl ~n:1 is_accept;
      ignore (check_ok "send" (Api.send_to_group g1 (body "accepted late")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check (list string))
        "delivered despite lost accept"
        [ "w"; "accepted late" ]
        (List.map (fun (_, _, b) -> b) (messages_of !acc2)))

let test_no_duplicate_on_spurious_retransmit () =
  (* Drop the sequencer's multicast so the sender retransmits its
     request: the sequencer must answer from its dedup state, not
     sequence the message twice. *)
  with_group ~n:3 (fun cl groups ->
      let g1 = List.nth groups 1 in
      let accs = List.map (collector cl) groups in
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      drop_nth_matching cl ~n:1 is_data;
      ignore (check_ok "send" (Api.send_to_group g1 (body "once")));
      ignore (check_ok "flush" (Api.send_to_group g1 (body "flush")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      List.iteri
        (fun i acc ->
          Alcotest.(check (list string))
            (Printf.sprintf "member %d sees each message once" i)
            [ "w"; "once"; "flush" ]
            (List.map (fun (_, _, b) -> b) (messages_of !acc)))
        accs)

(* ----- resilience ----- *)

let test_resilient_send_collects_acks () =
  with_group ~resilience:2 ~n:4 (fun cl groups ->
      let g3 = List.nth groups 3 in
      ignore (check_ok "send" (Api.send_to_group g3 (body "safe")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      let seq_stats = Kernel.stats (Api.kernel (List.hd groups)) in
      Alcotest.(check bool) "acks collected" true
        (seq_stats.Kernel.acks_collected >= 1))

let test_resilient_messages_survive_r_crashes () =
  (* r = 2: crash two machines (including the sequencer's) right after
     a send completes; the survivors rebuild and must still hold every
     message that was delivered as stable. *)
  with_group ~resilience:2 ~n:4 (fun cl groups ->
      let g2 = List.nth groups 2 and g3 = List.nth groups 3 in
      let acc2 = collector cl g2 and acc3 = collector cl g3 in
      for k = 1 to 5 do
        ignore (check_ok "send" (Api.send_to_group g3 (body (Printf.sprintf "m%d" k))))
      done;
      (* Crash the sequencer machine and member 1's machine. *)
      Machine.crash (Cluster.machine cl 0);
      Machine.crash (Cluster.machine cl 1);
      let survivors = check_ok "reset" (Api.reset_group g2 ~min_members:2) in
      Alcotest.(check int) "two survivors" 2 survivors;
      (* The group works again. *)
      ignore (check_ok "post-reset send" (Api.send_to_group g3 (body "after")));
      Engine.sleep cl.Cluster.engine (Time.sec 5);
      let bodies acc =
        List.map (fun (_, _, b) -> b) (messages_of !acc)
      in
      List.iter
        (fun acc ->
          Alcotest.(check (list string))
            "all pre-crash messages plus the new one"
            [ "m1"; "m2"; "m3"; "m4"; "m5"; "after" ]
            (bodies acc))
        [ acc2; acc3 ];
      let info = Api.get_info_group g2 in
      Alcotest.(check (list int)) "members after reset" [ 2; 3 ] info.Api.members;
      Alcotest.(check bool) "new incarnation" true (info.Api.incarnation > 0))

(* ----- membership ----- *)

let test_join_is_totally_ordered () =
  with_group ~n:2 ~machines:3 (fun cl groups ->
      let g0 = List.nth groups 0 and g1 = List.nth groups 1 in
      let acc0 = collector cl g0 and acc1 = collector cl g1 in
      ignore (check_ok "pre" (Api.send_to_group g0 (body "pre")));
      let g2 =
        check_ok "join" (Api.join_group (Cluster.flip cl 2) (Api.group_address g0))
      in
      ignore (check_ok "post" (Api.send_to_group g0 (body "post")));
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      let shape acc =
        List.rev_map
          (function
            | T.Message { body; _ } -> "msg:" ^ Bytes.to_string body
            | T.Member_joined { mid; _ } -> Printf.sprintf "join:%d" mid
            | T.Member_left { mid; _ } -> Printf.sprintf "left:%d" mid
            | T.Group_reset _ -> "reset"
            | T.Expelled -> "expelled")
          !acc
      in
      (* The creator also witnessed member 1's join during setup; the
         event sat in its delivery stream before the collector started. *)
      Alcotest.(check (list string))
        "join appears between the sends at member 0"
        [ "join:1"; "msg:pre"; "join:2"; "msg:post" ]
        (shape acc0);
      Alcotest.(check (list string))
        "and at member 1"
        [ "msg:pre"; "join:2"; "msg:post" ]
        (shape acc1);
      let info = Api.get_info_group g2 in
      Alcotest.(check (list int)) "joiner sees 3 members" [ 0; 1; 2 ] info.Api.members)

let test_joiner_receives_messages_after_join () =
  with_group ~n:2 ~machines:3 (fun cl groups ->
      let g0 = List.nth groups 0 in
      ignore (check_ok "pre" (Api.send_to_group g0 (body "before-join")));
      let g2 =
        check_ok "join" (Api.join_group (Cluster.flip cl 2) (Api.group_address g0))
      in
      let acc2 = collector cl g2 in
      ignore (check_ok "post" (Api.send_to_group g0 (body "after-join")));
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      Alcotest.(check (list string))
        "only post-join traffic"
        [ "after-join" ]
        (List.map (fun (_, _, b) -> b) (messages_of !acc2)))

let test_leave_group () =
  with_group ~n:3 (fun cl groups ->
      let g0 = List.nth groups 0 and g1 = List.nth groups 1 in
      let acc0 = collector cl g0 in
      check_ok "leave" (Api.leave_group g1);
      ignore (check_ok "send" (Api.send_to_group g0 (body "bye")));
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      (match !acc0 with
      | _ -> ());
      let events0 =
        List.rev_map
          (function
            | T.Member_left { mid; _ } -> Some mid
            | _ -> None)
          !acc0
        |> List.filter_map Fun.id
      in
      Alcotest.(check (list int)) "member 1 left" [ 1 ] events0;
      let info = Api.get_info_group g0 in
      Alcotest.(check (list int)) "members" [ 0; 2 ] info.Api.members;
      Alcotest.(check bool) "leaver can no longer send" true
        (match Api.send_to_group g1 (body "x") with
        | Error T.Not_a_member -> true
        | _ -> false))

let test_sequencer_leave_hands_over () =
  with_group ~n:3 (fun cl groups ->
      let g0 = List.nth groups 0 and g1 = List.nth groups 1 and g2 = List.nth groups 2 in
      let acc2 = collector cl g2 in
      check_ok "sequencer leaves" (Api.leave_group g0);
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      let info = Api.get_info_group g1 in
      Alcotest.(check int) "lowest survivor sequences" 1 info.Api.sequencer;
      Alcotest.(check bool) "member 1's kernel is the sequencer" true
        (Kernel.is_sequencer (Api.kernel g1));
      (* The group still orders messages. *)
      ignore (check_ok "send via new sequencer" (Api.send_to_group g2 (body "alive")));
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      Alcotest.(check (list string))
        "delivery continues"
        [ "alive" ]
        (List.map (fun (_, _, b) -> b) (messages_of !acc2)))

(* ----- recovery ----- *)

let test_reset_after_sequencer_crash () =
  with_group ~n:3 (fun cl groups ->
      let g1 = List.nth groups 1 and g2 = List.nth groups 2 in
      let acc1 = collector cl g1 and acc2 = collector cl g2 in
      ignore (check_ok "send" (Api.send_to_group g1 (body "before")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Machine.crash (Cluster.machine cl 0);
      let survivors = check_ok "reset" (Api.reset_group g1 ~min_members:2) in
      Alcotest.(check int) "both survivors found" 2 survivors;
      Alcotest.(check bool) "g1 now sequences" true
        (Kernel.is_sequencer (Api.kernel g1));
      ignore (check_ok "send after" (Api.send_to_group g2 (body "after")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      List.iter
        (fun acc ->
          Alcotest.(check (list string))
            "stream spans the crash"
            [ "before"; "after" ]
            (List.map (fun (_, _, b) -> b) (messages_of !acc)))
        [ acc1; acc2 ];
      (* Everyone observed the reset notice in order. *)
      let resets =
        List.rev_map
          (function T.Group_reset { members; _ } -> Some members | _ -> None)
          !acc1
        |> List.filter_map Fun.id
      in
      Alcotest.(check (list (list int))) "reset notice" [ [ 1; 2 ] ] resets)

let test_send_fails_when_sequencer_dead () =
  with_group ~n:2 (fun cl groups ->
      let g1 = List.nth groups 1 in
      Machine.crash (Cluster.machine cl 0);
      match Api.send_to_group g1 (body "void") with
      | Error T.Sequencer_unreachable -> ()
      | Ok _ -> Alcotest.fail "send should not succeed"
      | Error e -> Alcotest.failf "unexpected error: %s" (T.error_to_string e))

let test_interrupted_send_completes_after_reset () =
  (* The sender's kernel re-submits its pending request to the new
     sequencer during recovery, so the send eventually succeeds. *)
  with_group ~n:3 (fun cl groups ->
      let g1 = List.nth groups 1 and g2 = List.nth groups 2 in
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Machine.crash (Cluster.machine cl 0);
      let send_result = ref None in
      Cluster.spawn cl (fun () ->
          send_result := Some (Api.send_to_group g2 (body "interrupted")));
      (* Recover before the sender's retries run out, so the kernel
         re-submits the pending request to the new sequencer. *)
      Engine.sleep cl.Cluster.engine (Time.ms 30);
      ignore (check_ok "reset" (Api.reset_group g1 ~min_members:2));
      Engine.sleep cl.Cluster.engine (Time.sec 60);
      match !send_result with
      | Some (Ok _) -> ()
      | Some (Error e) ->
          Alcotest.failf "send failed: %s" (T.error_to_string e)
      | None -> Alcotest.fail "send still blocked")

let test_falsely_suspected_member_is_expelled () =
  (* Member 2 is alive but partitioned away during the reset (we crash
     it, reset, then "revive" it is impossible — instead we reset with
     member 2 alive but drop all its frames so probes fail). *)
  with_group ~n:3 (fun cl groups ->
      let g1 = List.nth groups 1 and g2 = List.nth groups 2 in
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Machine.crash (Cluster.machine cl 0);
      (* Silence member 2: every frame it sends is lost. *)
      Medium.set_drop_fun cl.Cluster.net
        (Some (fun f -> f.Frame.src = 2));
      ignore (check_ok "reset excludes member 2" (Api.reset_group g1 ~min_members:1));
      Alcotest.(check (list int))
        "rebuilt without the silent member"
        [ 1 ]
        (List.map fst (Kernel.member_list (Api.kernel g1)));
      (* Member 2 comes back and hears new-incarnation traffic. *)
      Medium.set_drop_fun cl.Cluster.net None;
      ignore (check_ok "send" (Api.send_to_group g1 (body "new epoch")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check bool) "member 2 expelled" false
        (Kernel.alive (Api.kernel g2)))

(* ----- history ----- *)

let test_history_pruning_keeps_up () =
  (* Far more messages than the history holds: piggybacked
     acknowledgements must keep the buffer bounded and the stream
     flowing. *)
  with_group ~history:32 ~n:3 (fun cl groups ->
      let g0 = List.nth groups 0 and g1 = List.nth groups 1 in
      let acc1 = collector cl g1 in
      for k = 1 to 100 do
        ignore (check_ok "send" (Api.send_to_group g0 (body (string_of_int k))))
      done;
      ignore (check_ok "flush" (Api.send_to_group g1 (body "flush")));
      Engine.sleep cl.Cluster.engine (Time.sec 5);
      Alcotest.(check int) "all delivered" 101
        (List.length (messages_of !acc1)))

let test_idle_member_status_solicitation () =
  (* Member 2 never sends, so nothing piggybacks its state; the
     sequencer must solicit it when the history fills instead of
     stalling forever. *)
  with_group ~history:16 ~n:3 (fun cl groups ->
      let g0 = List.nth groups 0 in
      let g2 = List.nth groups 2 in
      let acc2 = collector cl g2 in
      for k = 1 to 60 do
        ignore (check_ok "send" (Api.send_to_group g0 (body (string_of_int k))))
      done;
      Engine.sleep cl.Cluster.engine (Time.sec 10);
      Alcotest.(check int) "idle member received everything" 60
        (List.length (messages_of !acc2)))

let test_membership_churn_under_traffic () =
  (* Joins, leaves and a re-join interleaved with a steady message
     stream: full-time members must agree exactly; churning members
     see contiguous windows. *)
  with_group ~n:2 ~machines:4 (fun cl groups ->
      let g0 = List.nth groups 0 and g1 = List.nth groups 1 in
      let acc0 = collector cl g0 and acc1 = collector cl g1 in
      let stop = ref false in
      Cluster.spawn cl (fun () ->
          let k = ref 0 in
          while not !stop do
            incr k;
            ignore (Api.send_to_group g0 (body (Printf.sprintf "m%d" !k)));
            Engine.sleep cl.Cluster.engine (Time.ms 2)
          done);
      (* Machine 2: join, leave, re-join with a fresh kernel. *)
      Engine.sleep cl.Cluster.engine (Time.ms 20);
      let g2 = check_ok "join" (Api.join_group (Cluster.flip cl 2) (Api.group_address g0)) in
      Engine.sleep cl.Cluster.engine (Time.ms 20);
      check_ok "leave" (Api.leave_group g2);
      Engine.sleep cl.Cluster.engine (Time.ms 20);
      let g2b = check_ok "rejoin" (Api.join_group (Cluster.flip cl 2) (Api.group_address g0)) in
      let acc2 = collector cl g2b in
      (* Machine 3 joins late and stays. *)
      let g3 = check_ok "join3" (Api.join_group (Cluster.flip cl 3) (Api.group_address g0)) in
      let acc3 = collector cl g3 in
      Engine.sleep cl.Cluster.engine (Time.ms 40);
      stop := true;
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      let s0 = messages_of !acc0 and s1 = messages_of !acc1 in
      Alcotest.(check bool) "full-time members agree" true (s0 = s1);
      Alcotest.(check bool) "messages flowed" true (List.length s0 > 10);
      (* Late joiners see a suffix of the full stream. *)
      let is_suffix small big =
        let ls = List.length small and lb = List.length big in
        ls <= lb
        && small = List.filteri (fun i _ -> i >= lb - ls) big
      in
      let s2 = messages_of !acc2 and s3 = messages_of !acc3 in
      Alcotest.(check bool) "rejoined member sees a suffix" true (is_suffix s2 s0);
      Alcotest.(check bool) "late member sees a suffix" true (is_suffix s3 s0);
      (* Membership settled to the four current members. *)
      let info = Api.get_info_group g0 in
      Alcotest.(check int) "4 members" 4 (List.length info.Api.members))

(* ----- properties ----- *)

let prop_total_order_under_loss =
  QCheck.Test.make ~name:"total order and completeness under random loss"
    ~count:15
    QCheck.(
      triple (int_range 2 5) (int_range 1 6) (int_range 0 1000))
    (fun (n, each, seed) ->
      let result = ref true in
      let cl = Cluster.create ~n ~seed () in
      Engine.spawn cl.Cluster.engine (fun () ->
          let creator = Api.create_group (Cluster.flip cl 0) () in
          let addr = Api.group_address creator in
          let joiners =
            List.init (n - 1) (fun i ->
                match Api.join_group (Cluster.flip cl (i + 1)) addr with
                | Ok g -> g
                | Error _ -> failwith "join failed")
          in
          let groups = creator :: joiners in
          let accs = List.map (collector cl) groups in
          Medium.set_loss_rate cl.Cluster.net 0.05;
          List.iteri
            (fun i g ->
              Cluster.spawn cl (fun () ->
                  for k = 1 to each do
                    ignore (Api.send_to_group g (body (Printf.sprintf "%d.%d" i k)))
                  done))
            groups;
          Engine.sleep cl.Cluster.engine (Time.sec 120);
          (* Converge the tail with a lossless flush. *)
          Medium.set_loss_rate cl.Cluster.net 0.;
          ignore (Api.send_to_group creator (body "flush"));
          Engine.sleep cl.Cluster.engine (Time.sec 30);
          let streams = List.map (fun acc -> messages_of !acc) accs in
          let expected = (n * each) + 1 in
          let first = List.hd streams in
          result :=
            List.for_all (fun s -> List.length s = expected && s = first) streams);
      Engine.run ~until:(Time.sec 2_000) cl.Cluster.engine;
      !result)

let prop_api_soup =
  (* A seed-driven interleaving of sends, joins and leaves under frame
     loss.  The contract is at-most-once with exactly-once-on-success:
     every send that reported Ok appears exactly once, in issue order;
     a send that reported an error may appear at most once (its
     confirmation, not the message, may be what was lost); nothing
     else appears. *)
  QCheck.Test.make ~name:"random api interleaving stays consistent" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let n = 4 in
      let cl = Cluster.create ~n ~seed () in
      let ok = ref false in
      Engine.spawn cl.Cluster.engine (fun () ->
          let creator = Api.create_group (Cluster.flip cl 0) () in
          let addr = Api.group_address creator in
          let acc = collector cl creator in
          (* machine i (1..3) -> current member handle, if any *)
          let handles = Array.make n None in
          handles.(0) <- Some creator;
          let rng = Random.State.make [| seed |] in
          let sent = ref [] in
          let attempted = ref [] in
          Medium.set_loss_rate cl.Cluster.net 0.02;
          for step = 1 to 12 do
            match Random.State.int rng 3 with
            | 0 -> (
                (* send from a random current member *)
                let members =
                  Array.to_list handles |> List.filter_map Fun.id
                in
                let g =
                  List.nth members (Random.State.int rng (List.length members))
                in
                let payload = Printf.sprintf "s%d" step in
                attempted := payload :: !attempted;
                match Api.send_to_group g (body payload) with
                | Ok _ -> sent := payload :: !sent
                | Error _ -> ())
            | 1 -> (
                (* join a machine that has no live member *)
                match
                  Array.to_list handles
                  |> List.mapi (fun i h -> (i, h))
                  |> List.filter (fun (i, h) -> i > 0 && h = None)
                with
                | [] -> ()
                | free ->
                    let i, _ =
                      List.nth free (Random.State.int rng (List.length free))
                    in
                    (match Api.join_group (Cluster.flip cl i) addr with
                    | Ok g -> handles.(i) <- Some g
                    | Error _ -> ()))
            | _ -> (
                (* leave with a random non-creator member *)
                match
                  Array.to_list handles
                  |> List.mapi (fun i h -> (i, h))
                  |> List.filter (fun (i, h) -> i > 0 && h <> None)
                with
                | [] -> ()
                | live ->
                    let i, h =
                      List.nth live (Random.State.int rng (List.length live))
                    in
                    (match h with
                    | Some g ->
                        (match Api.leave_group g with
                        | Ok () -> handles.(i) <- None
                        | Error _ -> ())
                    | None -> ()))
          done;
          (* lossless flush so the tail converges *)
          Medium.set_loss_rate cl.Cluster.net 0.;
          (match Api.send_to_group creator (body "flush") with
          | Ok _ ->
              sent := "flush" :: !sent;
              attempted := "flush" :: !attempted
          | Error _ -> ());
          Engine.sleep cl.Cluster.engine (Time.sec 30);
          let stream = List.map (fun (_, _, b) -> b) (messages_of !acc) in
          let successful = List.rev !sent in
          let all_attempted = List.rev !attempted in
          let no_dups =
            List.length stream = List.length (List.sort_uniq compare stream)
          in
          let successful_in_order =
            (* successful is a subsequence of stream *)
            let rec sub s t =
              match (s, t) with
              | [], _ -> true
              | _, [] -> false
              | x :: s', y :: t' -> if x = y then sub s' t' else sub s t'
            in
            sub successful stream
          in
          let only_attempted =
            List.for_all (fun m -> List.mem m all_attempted) stream
          in
          ok := no_dups && successful_in_order && only_attempted);
      Engine.run ~until:(Time.sec 2_000) cl.Cluster.engine;
      !ok)

let prop_resilient_total_order =
  QCheck.Test.make ~name:"resilient sends stay totally ordered" ~count:10
    QCheck.(pair (int_range 3 5) (int_range 1 4))
    (fun (n, each) ->
      let ok = ref true in
      (try
         concurrent_senders_scenario ~send_method:T.Pb ~resilience:(n - 2) ~n
           ~senders:n ~each ()
       with _ -> ok := false);
      !ok)

(* ----- history module units ----- *)

let entry seq =
  { History.seq; sender = 0; msgid = seq; ops = 1; payload = T.User (body "x") }

let test_history_basics () =
  let h = History.create ~capacity:4 in
  Alcotest.(check bool) "empty" true (History.is_empty h);
  List.iter (fun s -> Result.get_ok (History.add h (entry s))) [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "full" true (History.is_full h);
  Alcotest.(check bool) "add to full fails" true
    (History.add h (entry 4) = Error `Full);
  Alcotest.(check bool) "find" true (History.find h 2 <> None);
  History.prune_below h 2;
  Alcotest.(check int) "length after prune" 2 (History.length h);
  Alcotest.(check bool) "pruned entry gone" true (History.find h 1 = None);
  Result.get_ok (History.add h (entry 4));
  Alcotest.(check (list int)) "range"
    [ 2; 3; 4 ]
    (List.map (fun e -> e.History.seq) (History.range h ~lo:0 ~hi:10))

let test_history_out_of_order_rejected () =
  let h = History.create ~capacity:4 in
  Result.get_ok (History.add h (entry 0));
  Alcotest.(check bool) "gap rejected" true
    (History.add h (entry 2) = Error `Out_of_order)

let test_history_evicting () =
  let h = History.create ~capacity:3 in
  List.iter (fun s -> History.add_evicting h (entry s)) [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "bounded" 3 (History.length h);
  Alcotest.(check bool) "oldest evicted" true (History.find h 1 = None);
  Alcotest.(check bool) "newest kept" true (History.find h 4 <> None)

let test_history_evicting_restart () =
  (* An out-of-order add_evicting restarts the window at the new seq:
     the member resynchronised past a gap (e.g. after recovery). *)
  let h = History.create ~capacity:4 in
  List.iter (fun s -> History.add_evicting h (entry s)) [ 0; 1; 2 ];
  History.add_evicting h (entry 10);
  Alcotest.(check int) "window restarted" 1 (History.length h);
  Alcotest.(check int) "lo" 10 (History.lo h);
  Alcotest.(check int) "hi" 10 (History.hi h);
  Alcotest.(check bool) "old entries gone" true
    (History.find h 0 = None && History.find h 2 = None);
  Alcotest.(check bool) "new entry present" true (History.find h 10 <> None);
  (* The window grows contiguously from the restart point and evicts
     normally once full again. *)
  List.iter (fun s -> History.add_evicting h (entry s)) [ 11; 12; 13; 14 ];
  Alcotest.(check int) "bounded after restart" 4 (History.length h);
  Alcotest.(check bool) "oldest of new window evicted" true
    (History.find h 10 = None);
  Alcotest.(check (list int)) "new window contents"
    [ 11; 12; 13; 14 ]
    (List.map (fun e -> e.History.seq) (History.range h ~lo:0 ~hi:100))

let test_history_prune_range_edges () =
  let h = History.create ~capacity:4 in
  (* Empty. *)
  History.prune_below h 100;
  Alcotest.(check bool) "prune on empty is a no-op" true (History.is_empty h);
  Alcotest.(check (list int)) "range on empty" []
    (List.map (fun e -> e.History.seq) (History.range h ~lo:0 ~hi:10));
  (* Single entry. *)
  Result.get_ok (History.add h (entry 0));
  Alcotest.(check (list int)) "range hits single entry" [ 0 ]
    (List.map (fun e -> e.History.seq) (History.range h ~lo:0 ~hi:0));
  Alcotest.(check (list int)) "range misses single entry" []
    (List.map (fun e -> e.History.seq) (History.range h ~lo:1 ~hi:10));
  History.prune_below h 1;
  Alcotest.(check bool) "single entry pruned" true (History.is_empty h);
  (* An emptied history accepts a fresh stream position. *)
  Result.get_ok (History.add h (entry 1));
  Alcotest.(check int) "restarts at the added seq" 1 (History.lo h)

let test_history_full_capacity_eviction () =
  (* Cycle the ring many times past capacity; the window must stay
     exact at every wrap-around. *)
  let h = History.create ~capacity:3 in
  for s = 0 to 99 do
    History.add_evicting h (entry s)
  done;
  Alcotest.(check int) "length stays at capacity" 3 (History.length h);
  Alcotest.(check int) "lo" 97 (History.lo h);
  Alcotest.(check int) "hi" 99 (History.hi h);
  Alcotest.(check bool) "just-evicted entry gone" true (History.find h 96 = None);
  Alcotest.(check (list int)) "range clamps to the window"
    [ 97; 98; 99 ]
    (List.map (fun e -> e.History.seq) (History.range h ~lo:0 ~hi:1000))

(* ----- sparse window units ----- *)

let test_window_basics () =
  let w = Window.create ~initial:4 ~dummy:(-1) () in
  Alcotest.(check int) "starts empty" 0 (Window.length w);
  Window.set w 0 10;
  Window.set w 5 50;
  (* 4 land 3 collides with key 0: forces the rehash-doubling path. *)
  Window.set w 4 40;
  Alcotest.(check (option int)) "find 0" (Some 10) (Window.find w 0);
  Alcotest.(check (option int)) "find 4 after grow" (Some 40) (Window.find w 4);
  Alcotest.(check (option int)) "find 5 after grow" (Some 50) (Window.find w 5);
  Alcotest.(check bool) "mem" true (Window.mem w 5);
  Alcotest.(check (option int)) "absent key" None (Window.find w 7);
  Alcotest.(check int) "count" 3 (Window.length w);
  Window.set w 4 41;
  Alcotest.(check (option int)) "overwrite" (Some 41) (Window.find w 4);
  Alcotest.(check int) "overwrite keeps count" 3 (Window.length w);
  Window.remove w 5;
  Window.remove w 5;
  (* absent remove: no-op *)
  Alcotest.(check (option int)) "removed" None (Window.find w 5);
  Alcotest.(check int) "count after remove" 2 (Window.length w);
  Window.drop_below w 4;
  Alcotest.(check (option int)) "dropped below bound" None (Window.find w 0);
  Alcotest.(check (option int)) "kept at bound" (Some 41) (Window.find w 4);
  Window.drop_above w 3;
  Alcotest.(check int) "empty after drop_above" 0 (Window.length w)

let prop_history_window =
  QCheck.Test.make ~name:"evicting history keeps the trailing window" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 0 100))
    (fun (cap, n) ->
      let h = History.create ~capacity:cap in
      for s = 0 to n - 1 do
        History.add_evicting h (entry s)
      done;
      let expect_len = min cap n in
      History.length h = expect_len
      && (n = 0
         || List.for_all
              (fun s -> History.find h s <> None)
              (List.init expect_len (fun i -> n - 1 - i))))

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "core",
    [
      tc "create group" test_create_group;
      tc "join group" test_join_group;
      tc "send from creator" test_send_from_creator;
      tc "send from joiner" test_send_from_joiner;
      tc "sender receives own message" test_sender_receives_own_message;
      tc "sequence numbers increase" test_seqno_increases;
      tc "total order, PB" test_total_order_pb;
      tc "total order, BB" test_total_order_bb;
      tc "total order, resilient" test_total_order_resilient;
      tc "bb halves the bandwidth" test_bb_uses_half_the_bandwidth;
      tc "auto method switches by size" test_auto_switches_by_size;
      tc "lost multicast recovered by nack" test_lost_multicast_recovered_by_nack;
      tc "lost request retransmitted" test_lost_request_retransmitted_by_sender;
      tc "lost accept recovered" test_lost_accept_recovered;
      tc "no duplicates on spurious retransmit"
        test_no_duplicate_on_spurious_retransmit;
      tc "resilient send collects acks" test_resilient_send_collects_acks;
      tc "messages survive r crashes" test_resilient_messages_survive_r_crashes;
      tc "join is totally ordered" test_join_is_totally_ordered;
      tc "joiner sees only post-join traffic"
        test_joiner_receives_messages_after_join;
      tc "leave group" test_leave_group;
      tc "sequencer leave hands over" test_sequencer_leave_hands_over;
      tc "reset after sequencer crash" test_reset_after_sequencer_crash;
      tc "send fails when sequencer dead" test_send_fails_when_sequencer_dead;
      tc "interrupted send completes after reset"
        test_interrupted_send_completes_after_reset;
      tc "falsely suspected member expelled"
        test_falsely_suspected_member_is_expelled;
      tc "membership churn under traffic" test_membership_churn_under_traffic;
      tc "history pruning keeps up" test_history_pruning_keeps_up;
      tc "idle member status solicitation" test_idle_member_status_solicitation;
      tc "history basics" test_history_basics;
      tc "history rejects gaps" test_history_out_of_order_rejected;
      tc "history evicting window" test_history_evicting;
      tc "history evicting restart" test_history_evicting_restart;
      tc "history prune and range edges" test_history_prune_range_edges;
      tc "history full-capacity eviction" test_history_full_capacity_eviction;
      tc "window basics" test_window_basics;
      QCheck_alcotest.to_alcotest prop_total_order_under_loss;
      QCheck_alcotest.to_alcotest prop_api_soup;
      QCheck_alcotest.to_alcotest prop_resilient_total_order;
      QCheck_alcotest.to_alcotest prop_history_window;
    ] )
