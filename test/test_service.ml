(* Tests for the sharded service layer: the shard map, the wire
   codecs, isolation of multiple groups sharing one Ethernet, service
   end-to-end operation, router failover across a sequencer crash, and
   the workload engine. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Amoeba_harness
open Amoeba_service
module T = Types

(* ---------- shard map ---------- *)

let test_shard_map_placement () =
  let map = Shard_map.create ~shards:4 ~hosts:[ 0; 1; 2; 3; 4; 5; 6; 7 ] () in
  Alcotest.(check int) "shards" 4 (Shard_map.shards map);
  Alcotest.(check (list int))
    "sequencers on distinct machines" [ 0; 1; 2; 3 ]
    (List.init 4 (Shard_map.sequencer_host map));
  for s = 0 to 3 do
    let hosts = Shard_map.replica_hosts map s in
    Alcotest.(check int) "replication" 3 (List.length hosts);
    Alcotest.(check int) "pairwise distinct" 3
      (List.length (List.sort_uniq compare hosts));
    Alcotest.(check int)
      "sequencer host first"
      (Shard_map.sequencer_host map s)
      (List.hd hosts)
  done

let test_shard_map_deterministic_and_covering () =
  let m1 = Shard_map.create ~shards:8 ~hosts:[ 0; 1; 2; 3 ] () in
  let m2 = Shard_map.create ~shards:8 ~hosts:[ 0; 1; 2; 3 ] () in
  let hits = Array.make 8 0 in
  for i = 0 to 9_999 do
    let k = "key-" ^ string_of_int i in
    let s = Shard_map.shard_of_key m1 k in
    if s <> Shard_map.shard_of_key m2 k then
      Alcotest.failf "ring not deterministic for %s" k;
    hits.(s) <- hits.(s) + 1
  done;
  Array.iteri
    (fun s n ->
      if n < 300 then
        Alcotest.failf "shard %d badly underloaded: %d/10000 keys" s n)
    hits

(* ---------- codecs ---------- *)

let test_kv_codecs () =
  let module S = Kv.Store in
  let ups =
    [
      S.Put { uid = 7; key = "a b"; value = "x y z" };
      S.Put { uid = 123456; key = ""; value = "" };
      S.Del { uid = 9; key = "with space" };
    ]
  in
  List.iter
    (fun u ->
      Alcotest.(check bool)
        "update roundtrip" true
        (S.decode_update (S.encode_update u) = Some u))
    ups;
  let st =
    List.fold_left
      (fun m (k, v) -> Kv.Smap.add k v m)
      S.initial
      [ ("k1", "v1"); ("a key", "a value"); ("empty", ""); ("", "odd") ]
  in
  (match S.decode_state (S.encode_state st) with
  | Some st' -> Alcotest.(check bool) "state roundtrip" true (Kv.Smap.equal ( = ) st st')
  | None -> Alcotest.fail "state did not decode");
  let reqs = [ Kv.Get "k"; Kv.Put ("a b", "v w"); Kv.Del "x" ] in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "request roundtrip" true
        (Kv.decode_request (Kv.encode_request r) = Some r))
    reqs;
  let reps =
    [ Kv.Value "x y"; Kv.Not_found; Kv.Written; Kv.Wrong_shard 3; Kv.Busy "no" ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "reply roundtrip" true
        (Kv.decode_reply (Kv.encode_reply r) = Some r))
    reps

let test_kv_batch_codecs () =
  let reqs =
    [
      [ Kv.Get "k" ];
      [ Kv.Put ("a b", "v w"); Kv.Del "x"; Kv.Get "" ];
      List.init 40 (fun i -> Kv.Put ("k" ^ string_of_int i, "v"));
    ]
  in
  List.iter
    (fun rs ->
      Alcotest.(check bool)
        "batch request roundtrip" true
        (Kv.decode_batch_request (Kv.encode_batch_request rs) = Some rs))
    reqs;
  let reps =
    [
      [ Kv.Written ];
      [ Kv.Value "x y"; Kv.Not_found; Kv.Wrong_shard 3; Kv.Busy "no" ];
    ]
  in
  List.iter
    (fun rs ->
      Alcotest.(check bool)
        "batch reply roundtrip" true
        (Kv.decode_batch_reply (Kv.encode_batch_reply rs) = Some rs))
    reps;
  (* A batch frame must not decode as a single request and vice versa,
     and truncation must be rejected, not half-applied. *)
  let b = Kv.encode_batch_request [ Kv.Put ("k", "v"); Kv.Del "d" ] in
  Alcotest.(check bool) "batch is not a single request" true
    (Kv.decode_request b = None);
  Alcotest.(check bool) "single request is not a batch" true
    (Kv.decode_batch_request (Kv.encode_request (Kv.Get "k")) = None);
  Alcotest.(check bool) "truncated batch rejected" true
    (Kv.decode_batch_request (Bytes.sub b 0 (Bytes.length b - 1)) = None);
  Alcotest.(check bool) "padded batch rejected" true
    (Kv.decode_batch_request (Bytes.cat b (Bytes.of_string "x")) = None)

(* ---------- multiple groups on one Ethernet are isolated ---------- *)

(* Two independent groups (two members each) share the wire.  Each
   group broadcasts its own tagged bodies; every member must deliver
   exactly its group's messages, in the same total order as its peer,
   and nothing from the other group — under clean and under
   adversarial link conditions. *)
let run_isolation ~conditions () =
  let cl = Cluster.create ~n:4 ~seed:11 () in
  let logs = Array.init 4 (fun _ -> ref []) in
  let failures = ref [] in
  Cluster.spawn cl (fun () ->
      let ga = Api.create_group (Cluster.flip cl 0) () in
      let ga' =
        match Api.join_group (Cluster.flip cl 1) (Api.group_address ga) with
        | Ok g -> g
        | Error e -> Alcotest.failf "join A: %s" (T.error_to_string e)
      in
      let gb = Api.create_group (Cluster.flip cl 2) () in
      let gb' =
        match Api.join_group (Cluster.flip cl 3) (Api.group_address gb) with
        | Ok g -> g
        | Error e -> Alcotest.failf "join B: %s" (T.error_to_string e)
      in
      let receiver i g =
        Cluster.spawn cl (fun () ->
            let rec loop () =
              (match Api.receive_from_group g with
              | T.Message { body; _ } ->
                  logs.(i) := Bytes.to_string body :: !(logs.(i))
              | _ -> ());
              loop ()
            in
            loop ())
      in
      receiver 0 ga;
      receiver 1 ga';
      receiver 2 gb;
      receiver 3 gb';
      Medium.set_conditions cl.Cluster.net conditions;
      let sender g tag =
        Cluster.spawn cl (fun () ->
            for k = 1 to 10 do
              match Api.send_to_group g (Bytes.of_string (Printf.sprintf "%s.%d" tag k)) with
              | Ok _ -> ()
              | Error e ->
                  failures := Printf.sprintf "%s.%d: %s" tag k (T.error_to_string e) :: !failures
            done)
      in
      sender ga "A0";
      sender ga' "A1";
      sender gb "B0";
      sender gb' "B1";
      Engine.sleep cl.Cluster.engine (Time.sec 30);
      Medium.set_conditions cl.Cluster.net Medium.clean;
      (* One clean message per group flushes any pending repair. *)
      ignore (Api.send_to_group ga (Bytes.of_string "A0.flush"));
      ignore (Api.send_to_group gb (Bytes.of_string "B0.flush")));
  Cluster.run ~until:(Time.sec 60) cl;
  Alcotest.(check (list string)) "all sends accepted" [] !failures;
  let expected prefix =
    List.sort compare
      ((prefix ^ "0.flush")
      :: List.concat_map
           (fun m ->
             List.init 10 (fun k -> Printf.sprintf "%s%d.%d" prefix m (k + 1)))
           [ 0; 1 ])
  in
  let got i = List.rev !(logs.(i)) in
  (* Same total order at both members of a group. *)
  Alcotest.(check (list string)) "group A members agree" (got 0) (got 1);
  Alcotest.(check (list string)) "group B members agree" (got 2) (got 3);
  (* Exactly the group's own messages, nothing from the other wire
     sharer: no cross-group delivery, no duplicates, no losses. *)
  Alcotest.(check (list string))
    "group A delivered exactly its messages" (expected "A")
    (List.sort compare (got 0));
  Alcotest.(check (list string))
    "group B delivered exactly its messages" (expected "B")
    (List.sort compare (got 2))

let test_isolation_clean () = run_isolation ~conditions:Medium.clean ()

let test_isolation_adversarial () =
  run_isolation
    ~conditions:
      {
        Medium.gilbert =
          Some { p_gb = 0.01; p_bg = 0.3; loss_good = 0.002; loss_bad = 0.4 };
        dup_prob = 0.05;
        jitter_ns = Time.ms 2;
        corrupt_prob = 0.01;
      }
    ()

(* ---------- service end-to-end ---------- *)

let test_service_end_to_end () =
  let cl = Cluster.create ~n:5 ~seed:3 () in
  let done_ = ref false in
  Cluster.spawn cl (fun () ->
      let map =
        Shard_map.create ~shards:2 ~replication:2 ~hosts:[ 0; 1; 2; 3 ] ()
      in
      let svc = Service.deploy cl ~map ~resilience:0 () in
      let router =
        Router.create (Cluster.flip cl 4) ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      Alcotest.(check bool)
        "missing key" true
        (Router.get router "nope" = Router.Not_found);
      for i = 0 to 19 do
        let k = "k" ^ string_of_int i in
        match Router.put router k ("v" ^ string_of_int i) with
        | Router.Written -> ()
        | _ -> Alcotest.failf "put %s not written" k
      done;
      (* Let the slower replicas of each shard apply the tail, then
         read everything back (reads round-robin over replicas). *)
      Engine.sleep cl.Cluster.engine (Time.ms 300);
      for i = 0 to 19 do
        let k = "k" ^ string_of_int i in
        match Router.get router k with
        | Router.Value v ->
            Alcotest.(check string) ("get " ^ k) ("v" ^ string_of_int i) v
        | _ -> Alcotest.failf "get %s failed" k
      done;
      (match Router.del router "k0" with
      | Router.Written -> ()
      | _ -> Alcotest.fail "del k0 failed");
      Engine.sleep cl.Cluster.engine (Time.ms 300);
      Alcotest.(check bool)
        "deleted key gone" true
        (Router.get router "k0" = Router.Not_found);
      (* Every replica of a shard applied the same update count, and
         the shards together applied exactly the 21 writes. *)
      let total = ref 0 in
      for s = 0 to 1 do
        match Service.applied svc s with
        | (_, a) :: rest ->
            List.iter
              (fun (_, a') -> Alcotest.(check int) "replicas in step" a a')
              rest;
            total := !total + a
        | [] -> Alcotest.fail "no replicas"
      done;
      Alcotest.(check int) "all writes applied exactly once" 21 !total;
      Alcotest.(check int) "no transient rejections" 0 (Service.writes_busy svc);
      let st = Router.stats router in
      Alcotest.(check int) "no failovers on a healthy service" 0 st.Router.failovers;
      done_ := true);
  Cluster.run ~until:(Time.sec 60) cl;
  Alcotest.(check bool) "scenario finished" true !done_

(* ---------- router failover across a replica crash ----------

   Two crash scenarios, same shape: 10 writes, kill a machine, 15 more
   writes that must all commit, then the per-shard chaos invariants.
   Crashing a serving follower exercises the router's failover path
   (timeout/no-route -> probe -> suspect -> next replica, ultimately
   promoting the reserved sequencer-host endpoints); crashing the
   sequencer exercises the group's auto-heal underneath a router that
   keeps talking to the surviving followers. *)

let run_crash_scenario ~crash_host ~expect_failover () =
  let cl = Cluster.create ~n:5 ~seed:7 () in
  let verdicts = ref [] in
  let failover_stats = ref None in
  Cluster.spawn cl (fun () ->
      let map = Shard_map.create ~shards:1 ~replication:3 ~hosts:[ 0; 1; 2 ] () in
      let svc = Service.deploy cl ~map ~resilience:1 ~record:true () in
      let router =
        Router.create (Cluster.flip cl 4) ~attempts:30 ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      for i = 1 to 10 do
        match Router.put router ("k" ^ string_of_int i) "before" with
        | Router.Written -> ()
        | _ -> Alcotest.failf "pre-crash put %d failed" i
      done;
      let victim = crash_host map in
      Machine.crash (Cluster.machine cl victim);
      (* The group auto-heals around the dead member; the router must
         ride it out: probe, mark the replica suspect, fail over and
         retry until the write commits. *)
      for i = 11 to 25 do
        match Router.put router ("k" ^ string_of_int i) "after" with
        | Router.Written -> ()
        | r ->
            Alcotest.failf "post-crash put %d did not commit (%s)" i
              (match r with
              | Router.Failed m -> m
              | Router.Value _ -> "value?"
              | Router.Not_found -> "not found?"
              | Router.Written -> "")
      done;
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      failover_stats := Some (Router.stats router);
      verdicts := Service.check svc ~crashed:[ victim ]);
  Cluster.run ~until:(Time.sec 120) cl;
  (match !failover_stats with
  | None -> Alcotest.fail "scenario did not finish"
  | Some st ->
      if expect_failover then
        Alcotest.(check bool)
          "router failed over at least once" true (st.Router.failovers >= 1));
  match !verdicts with
  | [ (0, vs) ] ->
      List.iter
        (fun v ->
          if not v.Checker.ok then
            Alcotest.failf "invariant %s violated: %s" v.Checker.invariant
              v.Checker.detail)
        vs
  | _ -> Alcotest.fail "expected verdicts for exactly one shard"

let test_router_failover_on_follower_crash () =
  (* The first follower is in the router's serving rotation (the
     sequencer host's endpoints are reserved), so killing it forces a
     real failover. *)
  run_crash_scenario
    ~crash_host:(fun map ->
      match Shard_map.replica_hosts map 0 with
      | _seq :: follower :: _ -> follower
      | _ -> Alcotest.fail "expected a follower")
    ~expect_failover:true ()

let test_router_failover_on_sequencer_crash () =
  (* The sequencer host is in reserve, so the router sees no endpoint
     loss — only transient Busy while the group heals; no failover is
     required for the writes to commit. *)
  run_crash_scenario
    ~crash_host:(fun map -> Shard_map.sequencer_host map 0)
    ~expect_failover:false ()

(* ---------- endpoint swap mid-flight ----------

   Regression for the post-power-cycle failover path: a recovery hands
   the router endpoint arrays of a *different length* (and briefly no
   endpoints at all) while writes are in flight.  The router used to
   keep indices and per-endpoint state from the old arrays, so a
   shrink could raise out-of-bounds on the reply path; now it
   snapshots the arrays per attempt and backs off while the set is
   empty.  Every write must still commit. *)

let test_router_survives_endpoint_swap_mid_flight () =
  let cl = Cluster.create ~n:5 ~seed:11 () in
  let done_ = ref false in
  Cluster.spawn cl (fun () ->
      let map = Shard_map.create ~shards:1 ~replication:3 ~hosts:[ 0; 1; 2 ] () in
      let svc = Service.deploy cl ~map ~resilience:0 () in
      let full = Service.endpoints svc in
      let router =
        Router.create (Cluster.flip cl 4) ~attempts:30 ~map ~endpoints:full ()
      in
      let done_ch = Channel.create () in
      let keys = List.init 24 (fun i -> "k" ^ string_of_int i) in
      List.iter
        (fun k ->
          Cluster.spawn cl (fun () ->
              Channel.send done_ch (k, Router.put router k ("v." ^ k))))
        keys;
      (* Shrink to one endpoint per shard while the puts are in
         flight, pass through an empty window (recovery in progress),
         then restore the full set — three different array lengths. *)
      Engine.sleep cl.Cluster.engine (Time.ms 2);
      Router.update_endpoints router
        (Array.map (fun eps -> Array.sub eps 0 1) full);
      Engine.sleep cl.Cluster.engine (Time.ms 5);
      Router.update_endpoints router (Array.map (fun _ -> [||]) full);
      Engine.sleep cl.Cluster.engine (Time.ms 60);
      Router.update_endpoints router full;
      List.iter
        (fun _ ->
          match Channel.recv cl.Cluster.engine done_ch with
          | _, Router.Written -> ()
          | k, Router.Failed m -> Alcotest.failf "put %s failed: %s" k m
          | k, _ -> Alcotest.failf "put %s: unexpected reply" k)
        keys;
      (* The writes all applied exactly once despite the swaps. *)
      Engine.sleep cl.Cluster.engine (Time.ms 300);
      List.iter
        (fun (_, a) -> Alcotest.(check int) "applied exactly once" 24 a)
        (Service.applied svc 0);
      done_ := true);
  Cluster.run ~until:(Time.sec 60) cl;
  Alcotest.(check bool) "scenario finished" true !done_

(* ---------- suspect carry-over across an endpoint swap ----------

   A router that has probed a host dead must not forget it just
   because the endpoint set was refreshed: after update_endpoints, a
   host present in both the old and new arrays keeps its suspect
   state, while hosts new to the shard start trusted. *)

let test_router_suspects_carry_over () =
  let cl = Cluster.create ~n:6 ~seed:13 () in
  let done_ = ref false in
  Cluster.spawn cl (fun () ->
      let map =
        Shard_map.create ~shards:1 ~replication:3 ~hosts:[ 0; 1; 2; 3 ] ()
      in
      let svc = Service.deploy cl ~map ~resilience:0 () in
      let router =
        Router.create (Cluster.flip cl 5) ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      let hosts = Shard_map.replica_hosts map 0 in
      let doomed = List.nth hosts 1 in
      Router.suspect_host_for_test router 0 doomed;
      Alcotest.(check (list int))
        "host marked suspect" [ doomed ]
        (Router.suspected router 0);
      (* Same service, refreshed endpoint arrays: the suspicion must
         survive the swap for the host present in both. *)
      Router.update_endpoints router (Service.endpoints svc);
      Alcotest.(check (list int))
        "suspicion survived the endpoint swap" [ doomed ]
        (Router.suspected router 0);
      (* A migration-shaped swap: the shard moves to entirely different
         hosts — nothing carries over, the fresh hosts start trusted. *)
      let fresh =
        List.filter (fun h -> not (List.mem h hosts)) (Shard_map.hosts map)
      in
      (match Service.migrate_shard svc ~shard:0 ~hosts:(fresh @ [ List.hd hosts ]) () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "migration failed: %s" e);
      Router.update_endpoints router (Service.endpoints svc);
      Alcotest.(check (list int))
        "hosts new to the shard start trusted" []
        (Router.suspected router 0);
      done_ := true);
  Cluster.run ~until:(Time.sec 60) cl;
  Alcotest.(check bool) "scenario finished" true !done_

(* ---------- router-side batching ---------- *)

(* Fire all [ks] as concurrent puts through [router] and wait for
   every reply, failing on the first non-[Written]. *)
let parallel_puts cl router ks =
  let done_ch = Channel.create () in
  List.iter
    (fun k ->
      Cluster.spawn cl (fun () ->
          Channel.send done_ch (k, Router.put router k ("v." ^ k))))
    ks;
  List.iter
    (fun _ ->
      match Channel.recv cl.Cluster.engine done_ch with
      | _, Router.Written -> ()
      | k, Router.Failed m -> Alcotest.failf "put %s did not commit: %s" k m
      | k, _ -> Alcotest.failf "put %s: unexpected reply" k)
    ks

(* Eight concurrent puts against max_batch 4 and a 1 s Nagle timer:
   every flush must be forced by size — two full batches, zero timer
   flushes — and each replica must apply each op exactly once. *)
let test_batch_flush_on_size () =
  let cl = Cluster.create ~n:5 ~seed:21 () in
  let done_ = ref false in
  Cluster.spawn cl (fun () ->
      let map = Shard_map.create ~shards:1 ~replication:2 ~hosts:[ 0; 1 ] () in
      let svc = Service.deploy cl ~map ~resilience:0 () in
      let router =
        Router.create (Cluster.flip cl 4) ~max_batch:4 ~pipeline:1
          ~batch_delay:(Time.sec 1) ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      parallel_puts cl router (List.init 8 (fun i -> "k" ^ string_of_int i));
      let st = Router.stats router in
      Alcotest.(check bool) "ops went out in batches" true
        (st.Router.batches_sent >= 1);
      Alcotest.(check int) "every flush was a full batch"
        (4 * st.Router.batches_sent)
        st.Router.ops_batched;
      Alcotest.(check int) "no timer flushes under a 1 s Nagle" 0
        st.Router.partial_flushes;
      Engine.sleep cl.Cluster.engine (Time.ms 300);
      List.iter
        (fun (_, a) -> Alcotest.(check int) "each op applied exactly once" 8 a)
        (Service.applied svc 0);
      done_ := true);
  Cluster.run ~until:(Time.sec 60) cl;
  Alcotest.(check bool) "scenario finished" true !done_

(* Three concurrent puts against max_batch 64 and a 2 ms Nagle timer:
   the batch cannot fill, so the flush must come from the timer — one
   partial flush carrying all three ops. *)
let test_batch_flush_on_timeout () =
  let cl = Cluster.create ~n:5 ~seed:22 () in
  let done_ = ref false in
  Cluster.spawn cl (fun () ->
      let map = Shard_map.create ~shards:1 ~replication:2 ~hosts:[ 0; 1 ] () in
      let svc = Service.deploy cl ~map ~resilience:0 () in
      let router =
        Router.create (Cluster.flip cl 4) ~max_batch:64 ~pipeline:1
          ~batch_delay:(Time.ms 2) ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      parallel_puts cl router [ "a"; "b"; "c" ];
      let st = Router.stats router in
      Alcotest.(check bool) "the timer forced the flush" true
        (st.Router.partial_flushes >= 1);
      Alcotest.(check int) "one batch went out" 1 st.Router.batches_sent;
      Alcotest.(check int) "carrying all three ops" 3 st.Router.ops_batched;
      Engine.sleep cl.Cluster.engine (Time.ms 300);
      List.iter
        (fun (_, a) -> Alcotest.(check int) "each op applied exactly once" 3 a)
        (Service.applied svc 0);
      done_ := true);
  Cluster.run ~until:(Time.sec 60) cl;
  Alcotest.(check bool) "scenario finished" true !done_

(* A sequencer crash landing in the middle of a stream of batches: the
   crash fires 5 ms into a 24-put wave, so batches are in flight when
   the group loses its sequencer.  Every put must still commit (Busy
   backoff, whole-batch replays, failover) and the per-shard chaos
   invariants — one total order, no duplicates, no skips, durability —
   must hold over what the surviving replicas applied.  Replayed
   batches are safe because the replica mints fresh uids on every
   (re)submission, making each replay a distinct stream body. *)
let test_batch_spans_sequencer_crash () =
  let cl = Cluster.create ~n:5 ~seed:23 () in
  let verdicts = ref [] in
  let stats = ref None in
  Cluster.spawn cl (fun () ->
      let map = Shard_map.create ~shards:1 ~replication:3 ~hosts:[ 0; 1; 2 ] () in
      let svc = Service.deploy cl ~map ~resilience:1 ~record:true () in
      let router =
        Router.create (Cluster.flip cl 4) ~max_batch:8 ~pipeline:1
          ~batch_delay:(Time.ms 2) ~attempts:30 ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      parallel_puts cl router (List.init 8 (fun i -> "pre" ^ string_of_int i));
      let seq_host = Shard_map.sequencer_host map 0 in
      Cluster.spawn cl (fun () ->
          Engine.sleep cl.Cluster.engine (Time.ms 5);
          Machine.crash (Cluster.machine cl seq_host));
      parallel_puts cl router (List.init 24 (fun i -> "mid" ^ string_of_int i));
      parallel_puts cl router (List.init 8 (fun i -> "post" ^ string_of_int i));
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      stats := Some (Router.stats router);
      verdicts := Service.check svc ~crashed:[ seq_host ]);
  Cluster.run ~until:(Time.sec 120) cl;
  (match !stats with
  | None -> Alcotest.fail "scenario did not finish"
  | Some st ->
      Alcotest.(check bool) "ops really went out in batches" true
        (st.Router.batches_sent >= 3));
  match !verdicts with
  | [ (0, vs) ] ->
      List.iter
        (fun v ->
          if not v.Checker.ok then
            Alcotest.failf "invariant %s violated: %s" v.Checker.invariant
              v.Checker.detail)
        vs
  | _ -> Alcotest.fail "expected verdicts for exactly one shard"

(* ---------- workload engine ---------- *)

let run_workload ~seed () =
  let cl = Cluster.create ~n:6 ~seed:5 () in
  let result = ref None in
  Cluster.spawn cl (fun () ->
      let map =
        Shard_map.create ~shards:2 ~replication:2 ~hosts:[ 0; 1; 2; 3 ] ()
      in
      let svc = Service.deploy cl ~map ~resilience:0 () in
      let router i =
        Router.create (Cluster.flip cl i) ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      let spec =
        {
          Workload.keys = 50;
          value_bytes = 16;
          read_ratio = 0.5;
          dist = Workload.Zipf 0.99;
          mode = Workload.Closed 4;
          duration = Time.sec 2;
          ramp = Time.zero;
          seed;
        }
      in
      result := Some (Workload.run cl ~routers:[ router 4; router 5 ] ~map spec));
  Cluster.run ~until:(Time.sec 60) cl;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "workload did not finish"

let test_workload_smoke () =
  let r = run_workload ~seed:42 () in
  Alcotest.(check bool) "made progress" true (r.Workload.completed > 100);
  Alcotest.(check int) "no failures" 0 r.Workload.failed;
  Alcotest.(check int) "all ops accounted" r.Workload.attempted
    (r.Workload.completed + r.Workload.failed);
  Alcotest.(check bool) "both shards hit" true
    (Array.for_all (fun n -> n > 0) r.Workload.per_shard);
  Alcotest.(check bool) "mixed ops" true (r.Workload.reads > 0 && r.Workload.writes > 0);
  Alcotest.(check bool) "percentiles ordered" true
    (r.Workload.p50_ms <= r.Workload.p95_ms
    && r.Workload.p95_ms <= r.Workload.p99_ms
    && r.Workload.p99_ms <= r.Workload.max_ms)

let test_workload_deterministic () =
  let r1 = run_workload ~seed:42 () in
  let r2 = run_workload ~seed:42 () in
  Alcotest.(check int) "same completed" r1.Workload.completed r2.Workload.completed;
  Alcotest.(check int) "same attempted" r1.Workload.attempted r2.Workload.attempted;
  Alcotest.(check (float 0.0)) "same p99" r1.Workload.p99_ms r2.Workload.p99_ms

(* Retry backoff jitter must not cost determinism: the jitter stream
   is seeded per router and only consumed on retries, so two identical
   runs produce identical results. *)
let test_jitter_deterministic () =
  let r1 = run_workload ~seed:77 () in
  let r2 = run_workload ~seed:77 () in
  Alcotest.(check bool) "identical runs" true (r1 = r2)

let test_workload_open_loop () =
  let cl = Cluster.create ~n:5 ~seed:9 () in
  let result = ref None in
  Cluster.spawn cl (fun () ->
      let map = Shard_map.create ~shards:2 ~replication:2 ~hosts:[ 0; 1; 2; 3 ] () in
      let svc = Service.deploy cl ~map ~resilience:0 () in
      let router =
        Router.create (Cluster.flip cl 4) ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      let spec =
        {
          Workload.keys = 20;
          value_bytes = 8;
          read_ratio = 0.8;
          dist = Workload.Uniform;
          mode = Workload.Open 100.0;
          duration = Time.sec 2;
          ramp = Time.zero;
          seed = 1;
        }
      in
      result := Some (Workload.run cl ~routers:[ router ] ~map spec));
  Cluster.run ~until:(Time.sec 60) cl;
  match !result with
  | None -> Alcotest.fail "workload did not finish"
  | Some r ->
      (* ~200 Poisson arrivals in 2 s at rate 100/s. *)
      Alcotest.(check bool) "arrivals near the configured rate" true
        (r.Workload.attempted > 120 && r.Workload.attempted < 280);
      Alcotest.(check int) "no failures" 0 r.Workload.failed

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "service",
    [
      tc "shard map placement" test_shard_map_placement;
      tc "shard map deterministic and covering"
        test_shard_map_deterministic_and_covering;
      tc "kv codecs roundtrip" test_kv_codecs;
      tc "kv batch codecs roundtrip" test_kv_batch_codecs;
      tc "two groups on one wire are isolated" test_isolation_clean;
      tc "two groups stay isolated under adversarial conditions"
        test_isolation_adversarial;
      tc "service end to end" test_service_end_to_end;
      tc "router fails over a crashed follower"
        test_router_failover_on_follower_crash;
      tc "service rides out a crashed sequencer"
        test_router_failover_on_sequencer_crash;
      tc "router survives endpoint swap mid-flight"
        test_router_survives_endpoint_swap_mid_flight;
      tc "suspects carry over an endpoint swap"
        test_router_suspects_carry_over;
      tc "retry jitter keeps runs deterministic" test_jitter_deterministic;
      tc "batches flush on size" test_batch_flush_on_size;
      tc "batches flush on the Nagle timer" test_batch_flush_on_timeout;
      tc "batch stream spans a sequencer crash"
        test_batch_spans_sequencer_crash;
      tc "workload smoke" test_workload_smoke;
      tc "workload deterministic" test_workload_deterministic;
      tc "workload open loop" test_workload_open_loop;
    ] )
