(* Tests for the comparison protocols: Chang-Maxemchuk, positive
   acknowledgements, migrating sequencer. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_baselines
open Amoeba_harness

let body = Bytes.of_string

let collect_stream cl events acc =
  Cluster.spawn cl (fun () ->
      let rec loop () =
        let d = Channel.recv cl.Cluster.engine events in
        acc := (d.Types_baseline.seq, d.Types_baseline.sender, Bytes.to_string d.Types_baseline.body) :: !acc;
        loop ()
      in
      loop ())

(* Generic conformance scenario shared by all three baselines. *)
let total_order_scenario (type node) ~make_group
    ~(send : node -> bytes -> unit) ~(events : node -> Types_baseline.delivery Channel.t)
    ~n ~each () =
  let cl = Cluster.create ~n () in
  let streams = Array.make n [] in
  let failed = ref None in
  Cluster.spawn cl (fun () ->
      let nodes : node list = make_group (Array.to_list cl.Cluster.flips) in
      List.iteri
        (fun i node ->
          let acc = ref [] in
          collect_stream cl (events node) acc;
          Cluster.spawn cl (fun () ->
              for k = 1 to each do
                send node (body (Printf.sprintf "%d.%d" i k))
              done);
          Cluster.spawn cl (fun () ->
              Engine.sleep cl.Cluster.engine (Time.sec 60);
              streams.(i) <- List.rev !acc))
        nodes);
  (try Cluster.run ~until:(Time.sec 120) cl with e -> failed := Some e);
  (match !failed with Some e -> raise e | None -> ());
  let expected = n * each in
  Array.iteri
    (fun i s ->
      Alcotest.(check int) (Printf.sprintf "node %d got all" i) expected
        (List.length s))
    streams;
  Array.iter
    (fun s -> Alcotest.(check bool) "identical stream" true (s = streams.(0)))
    streams

let test_cm_total_order () =
  total_order_scenario ~make_group:Cm.make_group ~send:Cm.send ~events:Cm.events
    ~n:4 ~each:4 ()

let test_posack_total_order () =
  total_order_scenario ~make_group:Posack.make_group ~send:Posack.send
    ~events:Posack.events ~n:4 ~each:4 ()

let test_migrating_total_order () =
  total_order_scenario ~make_group:Migrating.make_group ~send:Migrating.send
    ~events:Migrating.events ~n:4 ~each:4 ()

let test_cm_interrupt_count () =
  (* Every CM broadcast interrupts all other members twice (data +
     ack); Amoeba-PB interrupts them once.  Paper section 6. *)
  let cl = Cluster.create ~n:4 () in
  Cluster.spawn cl (fun () ->
      let nodes = Cm.make_group (Array.to_list cl.Cluster.flips) in
      let sender = List.nth nodes 1 in
      for _ = 1 to 10 do
        Cm.send sender (body "x")
      done);
  Cluster.run ~until:(Time.sec 60) cl;
  (* A non-sender, non-token-site machine sees ~2 interrupts per
     message. *)
  let interrupts = Nic.interrupts (Machine.nic (Cluster.machine cl 3)) in
  Alcotest.(check bool)
    (Printf.sprintf "about 2 interrupts per message, got %d for 10 msgs" interrupts)
    true
    (interrupts >= 18 && interrupts <= 26)

let test_posack_ack_implosion () =
  (* n-1 positive acks arrive at the sequencer for every message. *)
  let cl = Cluster.create ~n:6 () in
  let acks = ref 0 in
  Cluster.spawn cl (fun () ->
      let nodes = Posack.make_group (Array.to_list cl.Cluster.flips) in
      let sender = List.nth nodes 2 in
      for _ = 1 to 10 do
        Posack.send sender (body "x")
      done;
      Engine.sleep cl.Cluster.engine (Time.sec 5);
      acks := Posack.acks_received (List.hd nodes));
  Cluster.run ~until:(Time.sec 60) cl;
  Alcotest.(check bool)
    (Printf.sprintf "~50 acks for 10 msgs in a 6-group, got %d" !acks)
    true
    (!acks >= 45 && !acks <= 55)

let test_migrating_token_follows_sender () =
  let cl = Cluster.create ~n:4 () in
  let moves = ref 0 in
  let frames_burst = ref 0 in
  Cluster.spawn cl (fun () ->
      let nodes = Migrating.make_group (Array.to_list cl.Cluster.flips) in
      let sender = List.nth nodes 2 in
      (* First send fetches the token remotely... *)
      Migrating.send sender (body "b1");
      Engine.sleep cl.Cluster.engine (Time.ms 5);
      let before = Medium.frames_delivered cl.Cluster.net in
      (* ...the rest of the burst sequences locally: 1 frame each.  A
         local send returns at sequencing time, before its multicast
         clears the wire, so let the frames settle before counting. *)
      for k = 2 to 6 do
        Migrating.send sender (body (Printf.sprintf "b%d" k))
      done;
      Engine.sleep cl.Cluster.engine (Time.ms 5);
      frames_burst := Medium.frames_delivered cl.Cluster.net - before;
      moves := Migrating.token_moves (List.nth nodes 2));
  Cluster.run ~until:(Time.sec 60) cl;
  Alcotest.(check int) "token moved to the burst sender once" 1 !moves;
  Alcotest.(check int) "one multicast per message once token is local" 5
    !frames_burst

let test_cm_loss_recovery () =
  let cl = Cluster.create ~n:3 () in
  let delivered = ref 0 in
  Cluster.spawn cl (fun () ->
      let nodes = Cm.make_group (Array.to_list cl.Cluster.flips) in
      let sender = List.nth nodes 1 in
      Cm.send sender (body "warm");
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      (* Drop one data frame; the retransmission machinery repairs. *)
      let dropped = ref false in
      Medium.set_drop_fun cl.Cluster.net
        (Some
           (fun frame ->
             match Amoeba_flip.Flip.packet_of_frame frame with
             | Some _ when not !dropped ->
                 dropped := true;
                 true
             | _ -> false));
      Cm.send sender (body "lost");
      Engine.sleep cl.Cluster.engine (Time.sec 10);
      delivered := Cm.delivered (List.nth nodes 2));
  Cluster.run ~until:(Time.sec 120) cl;
  Alcotest.(check int) "both messages delivered at node 2" 2 !delivered

let prop_baselines_agree_with_each_other =
  (* All three baselines implement the same abstract service: totally
     ordered reliable broadcast.  Whatever the protocol, the delivered
     multiset must equal what was sent. *)
  QCheck.Test.make ~name:"baselines deliver exactly what was sent" ~count:8
    QCheck.(pair (int_range 2 5) (int_range 1 4))
    (fun (n, each) ->
      let run_one make_group send events =
        let cl = Cluster.create ~n () in
        let count = ref 0 in
        Cluster.spawn cl (fun () ->
            let nodes = make_group (Array.to_list cl.Cluster.flips) in
            List.iteri
              (fun i node ->
                let acc = ref [] in
                collect_stream cl (events node) acc;
                if i = 0 then
                  Cluster.spawn cl (fun () ->
                      Engine.sleep cl.Cluster.engine (Time.sec 60);
                      count := List.length !acc);
                Cluster.spawn cl (fun () ->
                    for k = 1 to each do
                      send node (body (Printf.sprintf "%d.%d" i k))
                    done))
              nodes);
        Cluster.run ~until:(Time.sec 120) cl;
        !count = n * each
      in
      run_one Cm.make_group Cm.send Cm.events
      && run_one Posack.make_group Posack.send Posack.events
      && run_one Migrating.make_group Migrating.send Migrating.events)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "baselines",
    [
      tc "cm total order" test_cm_total_order;
      tc "posack total order" test_posack_total_order;
      tc "migrating total order" test_migrating_total_order;
      tc "cm interrupts twice per message" test_cm_interrupt_count;
      tc "posack ack implosion" test_posack_ack_implosion;
      tc "migrating token follows the sender" test_migrating_token_follows_sender;
      tc "cm recovers from loss" test_cm_loss_recovery;
      QCheck_alcotest.to_alcotest prop_baselines_agree_with_each_other;
    ] )
