(* The fault-injection harness turned on itself: swarm testing over
   seeded random fault schedules with the four delivery invariants
   checked after every run, plus targeted scenarios for the fault
   primitives (partitions, pause/resume, restart) and the recovery
   counters they exercise. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Amoeba_harness
module T = Types

let body = Bytes.of_string

let check_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (T.error_to_string e)

let with_cluster n scenario =
  let cl = Cluster.create ~n () in
  let failure = ref None in
  Cluster.spawn cl (fun () -> try scenario cl with e -> failure := Some e);
  Cluster.run ~until:(Time.sec 2_000) cl;
  match !failure with Some e -> raise e | None -> ()

let build_auto_heal ?(resilience = 0) cl n =
  let creator =
    Api.create_group (Cluster.flip cl 0) ~resilience ~auto_heal:true ()
  in
  let addr = Api.group_address creator in
  creator
  :: List.init (n - 1) (fun i ->
         check_ok "join"
           (Api.join_group (Cluster.flip cl (i + 1)) ~resilience
              ~auto_heal:true addr))

let message_bodies g =
  let rec drain acc =
    match Api.receive_opt g with
    | None -> List.rev acc
    | Some (T.Message { body; _ }) -> drain (Bytes.to_string body :: acc)
    | Some _ -> drain acc
  in
  drain []

let saw_expelled g =
  let rec drain () =
    match Api.receive_opt g with
    | None -> false
    | Some T.Expelled -> true
    | Some _ -> drain ()
  in
  drain ()

(* ----- the swarm: random schedules x workloads, shrunk on failure ----- *)

(* Every swarm case also draws the fabric the cluster runs on: the
   paper's shared wire, a flat full-duplex switch, or a two-segment
   switch whose 2x uplink is oversubscribed for groups of 3+ — so the
   same schedules and invariants cover queueing-loss fabrics too. *)
let fabrics =
  [
    Medium.Shared;
    Medium.Switched Switch.flat;
    Medium.Switched { Switch.segments = 2; segment_size = 3; uplink_mult = 2 };
  ]

let fabric_to_string = function
  | Medium.Shared -> "ether"
  | Medium.Switched p -> Switch.profile_to_string p

let swarm_case =
  let gen =
    QCheck.Gen.(
      int_range 3 5 >>= fun n ->
      int_range 0 (n - 2) >>= fun r ->
      oneofl [ T.Pb; T.Bb ] >>= fun m ->
      oneofl fabrics >>= fun fabric ->
      int_range 0 99_999 >>= fun seed ->
      return (n, r, m, fabric, seed, Fault.random ~seed ~n ()))
  in
  let print (n, r, m, fabric, seed, sched) =
    Printf.sprintf
      "n=%d r=%d method=%s net=%s seed=%d (replay: amoeba chaos --seed %d -m \
       %d -r %d --method %s --net %s --schedule %S)"
      n r
      (match m with T.Pb -> "pb" | T.Bb -> "bb" | T.Auto -> "auto")
      (fabric_to_string fabric) seed seed n r
      (match m with T.Pb -> "pb" | T.Bb -> "bb" | T.Auto -> "auto")
      (fabric_to_string fabric)
      (Fault.to_string sched)
  in
  (* Shrink only the schedule: QCheck peels steps off until the
     smallest fault sequence that still breaks an invariant remains,
     and [print] renders it as a chaos-CLI replay line. *)
  let shrink (n, r, m, fabric, seed, sched) =
    QCheck.Iter.map
      (fun sched' -> (n, r, m, fabric, seed, sched'))
      (QCheck.Shrink.list sched)
  in
  QCheck.make ~print ~shrink gen

let prop_swarm_invariants =
  QCheck.Test.make ~name:"swarm: invariants hold under random fault schedules"
    ~count:120 swarm_case (fun (n, r, m, fabric, seed, sched) ->
      Chaos.ok
        (Chaos.run ~n ~resilience:r ~send_method:m ~schedule:sched ~fabric
           ~seed ()))

let prop_schedule_roundtrip =
  QCheck.Test.make ~name:"fault schedule survives to_string/of_string"
    ~count:100
    QCheck.(pair (int_range 0 99_999) (int_range 2 6))
    (fun (seed, n) ->
      let s = Fault.random ~seed ~n () in
      Fault.of_string (Fault.to_string s) = s)

(* ----- adversarial link conditions -----

   Directed runs pin each receive-path hardening through the counters
   it exposes: the invariants must hold AND the adversary must really
   have fired AND the kernel must report absorbing it.  A second swarm
   then runs random fault schedules on top of persistently hostile
   link conditions. *)

let step at action = { Fault.at; action }

let test_duplication_absorbed () =
  let o =
    Chaos.run ~n:4 ~seed:11
      ~schedule:[ step (Time.ms 100) (Fault.Duplicate (1.0, Time.ms 1_500)) ]
      ()
  in
  Alcotest.(check bool) "invariants hold" true (Chaos.ok o);
  Alcotest.(check bool) "wire duplicated frames" true (o.Chaos.dups_injected > 0);
  Alcotest.(check bool) "kernels dropped duplicates" true
    (o.Chaos.duplicates_dropped > 0)

let test_reordering_absorbed () =
  let o =
    Chaos.run ~n:4 ~seed:12
      ~schedule:[ step (Time.ms 100) (Fault.Jitter (Time.ms 30, Time.ms 1_500)) ]
      ()
  in
  Alcotest.(check bool) "invariants hold" true (Chaos.ok o);
  Alcotest.(check bool) "kernels absorbed reorderings" true
    (o.Chaos.reorders_absorbed > 0)

let test_corruption_caught_by_checksums () =
  let o =
    Chaos.run ~n:4 ~seed:13
      ~schedule:[ step (Time.ms 100) (Fault.Corrupt (0.05, Time.ms 1_500)) ]
      ()
  in
  Alcotest.(check bool) "invariants hold" true (Chaos.ok o);
  Alcotest.(check bool) "corruptions were injected" true
    (o.Chaos.corruptions_injected > 0);
  Alcotest.(check bool) "every one was checksum-rejected somewhere" true
    (o.Chaos.corrupt_dropped + o.Chaos.flip_checksum_drops > 0)

let test_oneway_cut_survived () =
  let o =
    Chaos.run ~n:4 ~seed:14
      ~schedule:
        [ step (Time.ms 200) (Fault.Oneway (0, 2)); step (Time.ms 900) Fault.Heal ]
      ()
  in
  Alcotest.(check bool) "invariants hold" true (Chaos.ok o);
  Alcotest.(check bool) "the cut suppressed deliveries" true
    (o.Chaos.oneway_drops > 0)

let test_loss_burst_repaired () =
  let o =
    Chaos.run ~n:4 ~seed:15
      ~schedule:
        [ step (Time.ms 100) (Fault.Burst (0.05, 0.3, 0.9, Time.ms 1_200)) ]
      ()
  in
  Alcotest.(check bool) "invariants hold" true (Chaos.ok o);
  Alcotest.(check bool) "the burst lost frames" true (o.Chaos.cond_losses > 0);
  Alcotest.(check bool) "nacks repaired the gaps" true (o.Chaos.nacks > 0)

(* Persistent moderately-hostile conditions on every link for the
   whole active phase, under the same random schedules as the main
   swarm. *)
let adversarial_net =
  {
    Amoeba_net.Medium.gilbert =
      Some
        {
          Amoeba_net.Medium.p_gb = 0.01;
          p_bg = 0.3;
          loss_good = 0.002;
          loss_bad = 0.4;
        };
    dup_prob = 0.05;
    jitter_ns = Time.ms 2;
    corrupt_prob = 0.01;
  }

let prop_adversarial_swarm =
  QCheck.Test.make
    ~name:"swarm: invariants hold on a hostile net under random schedules"
    ~count:120 swarm_case (fun (n, r, m, fabric, seed, sched) ->
      Chaos.ok
        (Chaos.run ~n ~resilience:r ~send_method:m ~schedule:sched
           ~net:adversarial_net ~fabric ~seed ()))

(* The same hostile net and random schedules with batching and
   pipelining on: every send is declared as a 3-op batch to the
   kernel's accounting and each kernel keeps up to 4 sequencer rounds
   in flight — total order, agreement, no-dup/no-skip and durability
   must not care. *)
let prop_batched_adversarial_swarm =
  QCheck.Test.make
    ~name:"swarm: batching + pipelining hold invariants on a hostile net"
    ~count:120 swarm_case (fun (n, r, m, fabric, seed, sched) ->
      Chaos.ok
        (Chaos.run ~n ~resilience:r ~send_method:m ~schedule:sched
           ~net:adversarial_net ~fabric ~pipeline:4 ~ops_per_send:3 ~seed ()))

(* The power-loss swarm: random schedules that additionally yank the
   power on the whole cluster once mid-run, with every member logging
   deliveries to an SSD-modelled stable store.  Half the cases run on
   the hostile net.  The classic invariants are checked per epoch and
   the durability-across-restart invariant (I5) bridges the cut:
   recovered logs must be exact prefixes, acknowledged writes inside
   the durable frontier must be on some disk, and nothing recovered
   may be delivered twice. *)
let power_swarm_case =
  let gen =
    QCheck.Gen.(
      int_range 3 5 >>= fun n ->
      int_range 0 (n - 2) >>= fun r ->
      oneofl [ T.Pb; T.Bb ] >>= fun m ->
      oneofl fabrics >>= fun fabric ->
      int_range 0 99_999 >>= fun seed ->
      bool >>= fun hostile ->
      return
        (n, r, m, fabric, seed, hostile,
         Fault.random ~seed ~n ~power_cycles:true ()))
  in
  let print (n, r, m, fabric, seed, hostile, sched) =
    Printf.sprintf
      "n=%d r=%d method=%s seed=%d net=%s+%s (replay: amoeba chaos --seed %d \
       -m %d -r %d --method %s --disk ssd --net %s%s --schedule %S)"
      n r
      (match m with T.Pb -> "pb" | T.Bb -> "bb" | T.Auto -> "auto")
      seed
      (fabric_to_string fabric)
      (if hostile then "adversarial" else "clean")
      seed n r
      (match m with T.Pb -> "pb" | T.Bb -> "bb" | T.Auto -> "auto")
      (fabric_to_string fabric)
      (if hostile then "+adversarial" else "")
      (Fault.to_string sched)
  in
  let shrink (n, r, m, fabric, seed, hostile, sched) =
    QCheck.Iter.map
      (fun sched' -> (n, r, m, fabric, seed, hostile, sched'))
      (QCheck.Shrink.list sched)
  in
  QCheck.make ~print ~shrink gen

let prop_power_cycle_swarm =
  QCheck.Test.make
    ~name:"swarm: durability survives whole-cluster power loss"
    ~count:120 power_swarm_case (fun (n, r, m, fabric, seed, hostile, sched) ->
      (* the shrinker may peel the Power_cycle_all step off; the run is
         then an ordinary durable run, still a valid case *)
      Chaos.ok
        (Chaos.run ~n ~resilience:r ~send_method:m ~schedule:sched
           ~net:(if hostile then adversarial_net else Medium.clean)
           ~fabric ~disk:Cost_model.ssd ~seed ()))

(* Regression (found by the fabric swarm, reproduces on the shared
   wire too): the r=0 sequencer pauses, the survivors reset without
   it, one of them then crashes, and the old sequencer resumes into a
   near-quiet group.  Nothing pings an r=0 sequencer, so it never
   learns of its expulsion — the checker must still scope total order
   per configuration and discount the ghost's discarded tail. *)
let test_ghost_sequencer_after_missed_reset () =
  let schedule =
    [
      step 501_075_970 (Fault.Pause 0);
      step 1_881_750_145 (Fault.Crash 2);
      step 1_887_605_124 (Fault.Resume 0);
    ]
  in
  List.iter
    (fun fabric ->
      let o =
        Chaos.run ~n:3 ~resilience:0 ~send_method:T.Bb ~schedule ~fabric
          ~seed:90615 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "invariants hold on %s" (fabric_to_string fabric))
        true (Chaos.ok o);
      Alcotest.(check bool) "the group reset around the pause" true
        (o.Chaos.resets > 0))
    fabrics

let test_multigroup_invariants_per_group () =
  (* Three concurrent groups share the wire (sequencers on machines 0,
     1 and 2); machine 1 — one group's sequencer, a plain member of
     the others — crashes on a hostile net.  Every group must uphold
     its own invariants independently. *)
  let o =
    Chaos.run ~n:4 ~groups:3 ~resilience:1 ~seed:16
      ~schedule:[ step (Time.ms 400) (Fault.Crash 1) ]
      ~net:adversarial_net ()
  in
  Alcotest.(check bool) "per-group invariants hold" true (Chaos.ok o);
  Alcotest.(check int) "four verdicts per group" 12
    (List.length o.Chaos.verdicts);
  Alcotest.(check bool) "durability was in force" true o.Chaos.durability_checked

let prop_multigroup_deterministic =
  QCheck.Test.make ~name:"multi-group chaos replays bit-identically"
    ~count:6
    QCheck.(int_range 0 9_999)
    (fun seed ->
      let a = Chaos.run ~groups:2 ~seed () and b = Chaos.run ~groups:2 ~seed () in
      a = b)

let prop_chaos_deterministic =
  QCheck.Test.make ~name:"chaos runs replay bit-identically from a seed"
    ~count:12
    QCheck.(int_range 0 9_999)
    (fun seed ->
      let a = Chaos.run ~seed () and b = Chaos.run ~seed () in
      a = b)

(* ----- live but slow: the expulsion case the paper warns about ----- *)

let test_paused_sequencer_expelled_and_rejoins () =
  with_cluster 4 (fun cl ->
      let groups = build_auto_heal cl 4 in
      let g0 = List.hd groups and g1 = List.nth groups 1 in
      ignore (check_ok "warm" (Api.send_to_group g1 (body "before")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      (* The sequencer's host stalls.  It is alive — the wire still
         fills its receive ring — but the failure detector cannot tell
         a slow machine from a dead one, so the members rebuild the
         group without it. *)
      Machine.pause (Cluster.machine cl 0);
      Engine.sleep cl.Cluster.engine (Time.sec 4);
      let info = Api.get_info_group g1 in
      Alcotest.(check bool)
        "survivors expelled the stalled sequencer" false
        (List.mem 0 info.Api.members);
      Alcotest.(check bool)
        "a recovery incarnation was installed" true
        (info.Api.resets_survived > 0);
      (* It wakes up, drains its backlog, discovers the group moved on
         without it, and rejoins as a fresh member. *)
      Machine.resume (Cluster.machine cl 0);
      ignore (check_ok "post-reset send" (Api.send_to_group g1 (body "after")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check bool) "paused member learned of expulsion" true
        (saw_expelled g0);
      let g0' =
        check_ok "rejoin after expulsion"
          (Api.join_group (Cluster.flip cl 0) ~auto_heal:true
             (Api.group_address g0))
      in
      ignore (check_ok "rejoined send" (Api.send_to_group g0' (body "back")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check (list string))
        "survivor missed nothing" [ "before"; "after"; "back" ]
        (message_bodies g1))

let test_paused_member_catches_up () =
  with_cluster 3 (fun cl ->
      let groups = build_auto_heal cl 3 in
      let g1 = List.nth groups 1 and g2 = List.nth groups 2 in
      (* A stalled plain member is never probed, so it is not
         expelled; once it resumes, negative acknowledgements close
         the gap its nap left. *)
      Machine.pause (Cluster.machine cl 2);
      for k = 1 to 5 do
        ignore (check_ok "send" (Api.send_to_group g1 (body (string_of_int k))))
      done;
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      Machine.resume (Cluster.machine cl 2);
      ignore (check_ok "flush" (Api.send_to_group g1 (body "f")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check (list string))
        "resumed member has the whole stream"
        [ "1"; "2"; "3"; "4"; "5"; "f" ]
        (message_bodies g2))

(* ----- resilience under frame loss ----- *)

let test_resilient_sends_under_loss () =
  with_cluster 4 (fun cl ->
      let groups = build_auto_heal ~resilience:2 cl 4 in
      let g1 = List.nth groups 1 in
      (* High enough to provoke nack/retransmission repair, low enough
         that no send exhausts its bounded retries (probe_retries
         attempts) under this seed — a send that loses every attempt
         legitimately errors with Sequencer_unreachable. *)
      Medium.set_loss_rate cl.Cluster.net 0.12;
      List.iteri
        (fun i g ->
          Cluster.spawn cl (fun () ->
              for k = 1 to 4 do
                ignore
                  (check_ok "lossy send"
                     (Api.send_to_group g (body (Printf.sprintf "o%d.%d" i k))))
              done))
        groups;
      Engine.sleep cl.Cluster.engine (Time.sec 5);
      Medium.set_loss_rate cl.Cluster.net 0.;
      ignore (check_ok "flush" (Api.send_to_group g1 (body "flush")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      let streams = List.map message_bodies groups in
      let reference = List.hd streams in
      Alcotest.(check int) "every send delivered" 17 (List.length reference);
      List.iteri
        (fun i s ->
          Alcotest.(check (list string))
            (Printf.sprintf "member %d agrees" i)
            reference s)
        streams;
      (* The repair machinery did real work and reports it through
         GetInfoGroup. *)
      let nacks =
        List.fold_left
          (fun acc g -> acc + (Api.get_info_group g).Api.nacks_sent)
          0 groups
      and retrans =
        List.fold_left
          (fun acc g -> acc + (Api.get_info_group g).Api.retransmissions)
          0 groups
      in
      Alcotest.(check bool) "loss provoked nacks" true (nacks > 0);
      Alcotest.(check bool) "nacks provoked retransmissions" true (retrans > 0))

(* ----- fault primitives ----- *)

let test_partition_blocks_then_heals () =
  with_cluster 3 (fun cl ->
      let groups = build_auto_heal cl 3 in
      let g0 = List.hd groups and g2 = List.nth groups 2 in
      Medium.partition cl.Cluster.net [ 2 ] [ 0; 1 ];
      ignore (check_ok "cut send" (Api.send_to_group g0 (body "cut")));
      Engine.sleep cl.Cluster.engine (Time.ms 200);
      Alcotest.(check (list string)) "isolated member saw nothing" []
        (message_bodies g2);
      Alcotest.(check bool) "drops were counted" true
        (Medium.partition_drops cl.Cluster.net > 0);
      Medium.heal cl.Cluster.net;
      ignore (check_ok "healed send" (Api.send_to_group g0 (body "healed")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check (list string))
        "gap repaired after heal" [ "cut"; "healed" ] (message_bodies g2))

let test_restarted_machine_rejoins_fresh () =
  with_cluster 3 (fun cl ->
      let groups = build_auto_heal cl 3 in
      let g0 = List.hd groups in
      ignore (check_ok "pre" (Api.send_to_group g0 (body "pre")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Machine.crash (Cluster.machine cl 2);
      ignore (check_ok "reset" (Api.reset_group g0 ~min_members:2));
      Cluster.restart cl 2;
      Alcotest.(check bool) "machine is back" true
        (Machine.is_alive (Cluster.machine cl 2));
      Alcotest.(check int) "one reboot" 1
        (Machine.restarts (Cluster.machine cl 2));
      let g2' =
        check_ok "rejoin on rebooted machine"
          (Api.join_group (Cluster.flip cl 2) ~auto_heal:true
             (Api.group_address g0))
      in
      ignore (check_ok "post" (Api.send_to_group g0 (body "post")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      (* Fresh state: the reboot joined a group whose history started
         after the crash — it must see post-restart traffic only. *)
      Alcotest.(check (list string))
        "rebooted member sees only new traffic" [ "post" ]
        (message_bodies g2'))

let test_crashed_machine_schedules_zero_events () =
  (* The zombie-kernel property itself, asserted through the engine's
     per-group accounting rather than protocol symptoms: after
     Machine.crash the machine's process group is dead and never runs
     another event, no matter how much the survivors do. *)
  with_cluster 3 (fun cl ->
      let groups = build_auto_heal cl 3 in
      let g0 = List.hd groups in
      ignore (check_ok "warm" (Api.send_to_group g0 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      let m2 = Cluster.machine cl 2 in
      let dead = Machine.group m2 in
      Machine.crash m2;
      let at_crash = Engine.group_events dead in
      Alcotest.(check bool) "group dead after crash" false
        (Engine.group_alive dead);
      (* Drive activity that would tickle a zombie: a recovery, fresh
         traffic, and several heartbeat periods. *)
      ignore (check_ok "reset" (Api.reset_group g0 ~min_members:2));
      for k = 1 to 5 do
        ignore (check_ok "post" (Api.send_to_group g0 (body (string_of_int k))))
      done;
      Engine.sleep cl.Cluster.engine (Time.sec 10);
      Alcotest.(check int) "crashed machine ran zero events" at_crash
        (Engine.group_events dead);
      (* A restart is a new group, not a resurrection of the old one. *)
      Cluster.restart cl 2;
      let fresh = Machine.group m2 in
      Alcotest.(check bool) "restart builds a fresh live group" true
        ((not (fresh == dead)) && Engine.group_alive fresh);
      Alcotest.(check bool) "old group stays dead" false
        (Engine.group_alive dead);
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Alcotest.(check int) "dead group still at zero after restart" at_crash
        (Engine.group_events dead))

(* ----- the checker detects what it claims to detect ----- *)

let msg ~seq ~sender b = T.Message { seq; sender; body = Bytes.of_string b }
let stream label events = { Checker.label; events; full = true }

let test_checker_catches_violations () =
  let ok v = v.Checker.ok in
  Alcotest.(check bool) "divergent order flagged" false
    (ok
       (Checker.total_order
          [
            stream "a" [ msg ~seq:1 ~sender:0 "x" ];
            stream "b" [ msg ~seq:1 ~sender:0 "y" ];
          ]));
  Alcotest.(check bool) "duplicate body flagged" false
    (ok
       (Checker.no_dup_no_skip
          [ stream "a" [ msg ~seq:1 ~sender:0 "x"; msg ~seq:2 ~sender:0 "x" ] ]));
  Alcotest.(check bool) "skipped seq flagged" false
    (ok
       (Checker.no_dup_no_skip
          [ stream "a" [ msg ~seq:1 ~sender:0 "x"; msg ~seq:3 ~sender:0 "y" ] ]));
  Alcotest.(check bool) "lost completed send flagged" false
    (ok
       (Checker.durability
          ~streams:[ stream "a" [ msg ~seq:1 ~sender:0 "o0.1" ] ]
          ~completed:[ (0, "o0.1"); (1, "o1.1") ]));
  Alcotest.(check bool) "incarnation regression flagged" false
    (ok
       (Checker.monotone_incarnations
          [
            stream "a"
              [
                T.Group_reset { seq = 5; incarnation = 9; members = [ 0 ] };
                T.Group_reset { seq = 9; incarnation = 7; members = [ 0 ] };
              ];
          ]));
  (* An expelled stream's divergent tail is not a violation. *)
  Alcotest.(check bool) "expelled stream excluded from agreement" true
    (ok
       (Checker.total_order
          [
            stream "a" [ msg ~seq:1 ~sender:0 "x" ];
            stream "b" [ msg ~seq:1 ~sender:0 "y"; T.Expelled ];
          ]))

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let rand = Random.State.make [| 0xC4A05 |] in
  ( "chaos",
    [
      tc "paused sequencer expelled, rejoins"
        test_paused_sequencer_expelled_and_rejoins;
      tc "paused member catches up" test_paused_member_catches_up;
      tc "r=2 sends survive frame loss" test_resilient_sends_under_loss;
      tc "partition blocks then heals" test_partition_blocks_then_heals;
      tc "restarted machine rejoins fresh" test_restarted_machine_rejoins_fresh;
      tc "crashed machine schedules zero events"
        test_crashed_machine_schedules_zero_events;
      tc "checker catches violations" test_checker_catches_violations;
      tc "duplication absorbed" test_duplication_absorbed;
      tc "reordering absorbed" test_reordering_absorbed;
      tc "corruption caught by checksums" test_corruption_caught_by_checksums;
      tc "one-way cut survived" test_oneway_cut_survived;
      tc "loss burst repaired" test_loss_burst_repaired;
      tc "multi-group invariants hold per group"
        test_multigroup_invariants_per_group;
      tc "ghost sequencer after a missed reset"
        test_ghost_sequencer_after_missed_reset;
      QCheck_alcotest.to_alcotest ~rand prop_swarm_invariants;
      QCheck_alcotest.to_alcotest ~rand prop_adversarial_swarm;
      QCheck_alcotest.to_alcotest ~rand prop_batched_adversarial_swarm;
      QCheck_alcotest.to_alcotest ~rand prop_power_cycle_swarm;
      QCheck_alcotest.to_alcotest ~rand prop_schedule_roundtrip;
      QCheck_alcotest.to_alcotest ~rand prop_chaos_deterministic;
      QCheck_alcotest.to_alcotest ~rand prop_multigroup_deterministic;
    ] )
