(* Tests for the library layer: replicated state machines, atomic
   state transfer, consistent checkpointing, atomic group creation. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Amoeba_grouplib
open Amoeba_harness
module T = Types

(* A simple deterministic app: the state is the list of appended
   integers (newest first) plus their running sum. *)
module Log_app = struct
  type state = { entries : int list; sum : int }
  type update = int

  let initial = { entries = []; sum = 0 }
  let apply s u = { entries = u :: s.entries; sum = s.sum + u }
  let encode_update u = Bytes.of_string (string_of_int u)
  let decode_update b = int_of_string_opt (Bytes.to_string b)

  let encode_state s =
    Bytes.of_string (String.concat "," (List.map string_of_int s.entries))

  let decode_state b =
    let str = Bytes.to_string b in
    if str = "" then Some initial
    else
      let entries = List.map int_of_string (String.split_on_char ',' str) in
      Some { entries; sum = List.fold_left ( + ) 0 entries }
end

module R = Rsm.Make (Log_app)

let check_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (T.error_to_string e)

let test_rsm_replicas_agree () =
  let cl = Cluster.create ~n:3 () in
  let states = ref [] in
  Cluster.spawn cl (fun () ->
      let r0 = R.create (Cluster.flip cl 0) () in
      let r1 = check_ok "join" (R.join (Cluster.flip cl 1) (R.address r0)) in
      let r2 = check_ok "join" (R.join (Cluster.flip cl 2) (R.address r0)) in
      let rs = [ r0; r1; r2 ] in
      List.iteri
        (fun i r ->
          Cluster.spawn cl (fun () ->
              for k = 1 to 5 do
                ignore (R.submit r ((i * 100) + k))
              done))
        rs;
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      states := List.map (fun r -> (R.state r, R.applied r)) rs);
  Cluster.run ~until:(Time.sec 30) cl;
  match !states with
  | [ (s0, a0); (s1, a1); (s2, a2) ] ->
      Alcotest.(check int) "all applied" 15 a0;
      Alcotest.(check bool) "counts equal" true (a0 = a1 && a1 = a2);
      Alcotest.(check bool) "states equal" true
        (s0.Log_app.entries = s1.Log_app.entries
        && s1.Log_app.entries = s2.Log_app.entries);
      Alcotest.(check int) "sum" (List.fold_left ( + ) 0 s0.Log_app.entries)
        s0.Log_app.sum
  | _ -> Alcotest.fail "wrong arity"

let test_state_transfer_catches_up () =
  (* The joiner never saw the first ten updates; atomic state transfer
     must hand it a state that includes exactly those. *)
  let cl = Cluster.create ~n:3 () in
  let seen = ref None in
  Cluster.spawn cl (fun () ->
      let r0 = R.create (Cluster.flip cl 0) () in
      let r1 = check_ok "join1" (R.join (Cluster.flip cl 1) (R.address r0)) in
      ignore r1;
      for k = 1 to 10 do
        ignore (check_ok "submit" (R.submit r0 k))
      done;
      let r2 = check_ok "join2" (R.join (Cluster.flip cl 2) (R.address r0)) in
      Alcotest.(check int) "snapshot covers the past" 10 (R.applied r2);
      (* And the stream continues seamlessly. *)
      ignore (check_ok "post" (R.submit r0 11));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      seen := Some (R.state r2, R.applied r2, R.state r0));
  Cluster.run ~until:(Time.sec 30) cl;
  match !seen with
  | Some (s2, a2, s0) ->
      Alcotest.(check int) "applied after join" 11 a2;
      Alcotest.(check bool) "joiner state equals veteran state" true
        (s2.Log_app.entries = s0.Log_app.entries);
      Alcotest.(check int) "sum" 66 s2.Log_app.sum
  | None -> Alcotest.fail "scenario did not finish"

let test_state_transfer_under_concurrent_updates () =
  (* Updates keep flowing while the joiner synchronises: nothing may
     be duplicated or lost around the transfer point. *)
  let cl = Cluster.create ~n:3 () in
  let outcome = ref None in
  Cluster.spawn cl (fun () ->
      let r0 = R.create (Cluster.flip cl 0) () in
      let r1 = check_ok "join1" (R.join (Cluster.flip cl 1) (R.address r0)) in
      Cluster.spawn cl (fun () ->
          for k = 1 to 30 do
            ignore (R.submit r1 k)
          done);
      (* Join in the middle of the stream. *)
      Engine.sleep cl.Cluster.engine (Time.ms 20);
      let r2 = check_ok "join2" (R.join (Cluster.flip cl 2) (R.address r0)) in
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      outcome := Some (R.state r0, R.state r2, R.applied r0, R.applied r2));
  Cluster.run ~until:(Time.sec 30) cl;
  match !outcome with
  | Some (s0, s2, a0, a2) ->
      Alcotest.(check int) "all updates at veteran" 30 a0;
      Alcotest.(check int) "all updates at joiner" 30 a2;
      Alcotest.(check bool) "identical entries" true
        (s0.Log_app.entries = s2.Log_app.entries)
  | None -> Alcotest.fail "scenario did not finish"

let test_checkpoint_roundtrip () =
  let cl = Cluster.create ~n:2 () in
  let store = Stable_store.create () in
  let result = ref None in
  Cluster.spawn cl (fun () ->
      let r0 = R.create (Cluster.flip cl 0) ~checkpoint:(store, 5) () in
      for k = 1 to 12 do
        ignore (check_ok "submit" (R.submit r0 k))
      done;
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      result := R.checkpointed store ~machine_name:"m0");
  Cluster.run ~until:(Time.sec 30) cl;
  match !result with
  | Some (st, count) ->
      Alcotest.(check int) "checkpoint at a multiple of 5" 10 count;
      Alcotest.(check int) "checkpointed sum" 55 st.Log_app.sum
  | None -> Alcotest.fail "no checkpoint written"

let test_restart_from_checkpoint_after_total_failure () =
  (* Every machine dies.  A fresh group seeded from the last on-disk
     checkpoint continues from the consistent cut. *)
  let store = Stable_store.create () in
  let cl = Cluster.create ~n:2 () in
  Cluster.spawn cl (fun () ->
      let r0 = R.create (Cluster.flip cl 0) ~checkpoint:(store, 5) () in
      let _r1 = check_ok "join" (R.join (Cluster.flip cl 1) (R.address r0)) in
      for k = 1 to 10 do
        ignore (check_ok "submit" (R.submit r0 k))
      done;
      Engine.sleep cl.Cluster.engine (Time.ms 200);
      Machine.crash (Cluster.machine cl 0);
      Machine.crash (Cluster.machine cl 1));
  Cluster.run ~until:(Time.sec 30) cl;
  (* "Reboot": a new world that remounts the same disk. *)
  let cl2 = Cluster.create ~n:1 () in
  let final = ref None in
  Cluster.spawn cl2 (fun () ->
      match R.checkpointed store ~machine_name:"m0" with
      | None -> ()
      | Some (st, count) ->
          let r = R.create (Cluster.flip cl2 0) ~seed:(st, count) () in
          ignore (check_ok "post-restart submit" (R.submit r 99));
          Engine.sleep cl2.Cluster.engine (Time.ms 100);
          final := Some (R.state r, R.applied r));
  Cluster.run ~until:(Time.sec 30) cl2;
  match !final with
  | Some (st, applied) ->
      Alcotest.(check int) "continued from the cut" 11 applied;
      Alcotest.(check int) "sum includes checkpoint + new update"
        (55 + 99) st.Log_app.sum
  | None -> Alcotest.fail "no checkpoint survived"

(* Atomic state transfer while the wire misbehaves: the joiner's
   snapshot query, the RPC'd snapshot itself and the concurrent update
   stream are all exposed to the conditions; the repair machinery must
   still hand the joiner a state positioned exactly in the stream. *)
let run_transfer_under ~conditions ~seed () =
  let cl = Cluster.create ~n:3 ~seed () in
  let outcome = ref None in
  Cluster.spawn cl (fun () ->
      let r0 = R.create (Cluster.flip cl 0) () in
      let r1 = check_ok "join1" (R.join (Cluster.flip cl 1) (R.address r0)) in
      for k = 1 to 10 do
        ignore (check_ok "pre" (R.submit r0 k))
      done;
      Medium.set_conditions cl.Cluster.net conditions;
      Cluster.spawn cl (fun () ->
          for k = 11 to 25 do
            ignore (R.submit r1 k)
          done);
      Engine.sleep cl.Cluster.engine (Time.ms 20);
      (* Join mid-stream, with the conditions in force. *)
      let r2 = check_ok "join2" (R.join (Cluster.flip cl 2) (R.address r0)) in
      Engine.sleep cl.Cluster.engine (Time.sec 30);
      Medium.set_conditions cl.Cluster.net Medium.clean;
      ignore (check_ok "flush" (R.submit r0 26));
      Engine.sleep cl.Cluster.engine (Time.sec 5);
      outcome := Some (R.state r0, R.state r2, R.applied r0, R.applied r2));
  Cluster.run ~until:(Time.sec 120) cl;
  match !outcome with
  | Some (s0, s2, a0, a2) ->
      Alcotest.(check int) "veteran applied all" 26 a0;
      Alcotest.(check int) "joiner applied all" 26 a2;
      Alcotest.(check bool) "joiner state equals veteran state" true
        (s0.Log_app.entries = s2.Log_app.entries)
  | None -> Alcotest.fail "scenario did not finish"

let test_transfer_under_bursty_loss () =
  run_transfer_under ~seed:21
    ~conditions:
      {
        Medium.clean with
        gilbert =
          Some { p_gb = 0.02; p_bg = 0.25; loss_good = 0.005; loss_bad = 0.6 };
        dup_prob = 0.05;
      }
    ()

let test_transfer_under_reordering () =
  run_transfer_under ~seed:22
    ~conditions:{ Medium.clean with jitter_ns = Time.ms 3; dup_prob = 0.05 }
    ()

let test_checkpoint_restore_under_hostile_net () =
  (* Checkpoints taken while the wire drops, duplicates and reorders
     frames must still be consistent cuts: a fresh group seeded from
     the recovered checkpoint continues with the right state. *)
  let store = Stable_store.create () in
  let cl = Cluster.create ~n:2 ~seed:23 () in
  Cluster.spawn cl (fun () ->
      Medium.set_conditions cl.Cluster.net
        {
          Medium.gilbert =
            Some { p_gb = 0.02; p_bg = 0.3; loss_good = 0.01; loss_bad = 0.5 };
          dup_prob = 0.05;
          jitter_ns = Time.ms 2;
          corrupt_prob = 0.01;
        };
      let r0 = R.create (Cluster.flip cl 0) ~checkpoint:(store, 5) () in
      let _r1 = check_ok "join" (R.join (Cluster.flip cl 1) (R.address r0)) in
      for k = 1 to 12 do
        ignore (check_ok "submit" (R.submit r0 k))
      done;
      (* Wait out repair and the background disk write, then die. *)
      Engine.sleep cl.Cluster.engine (Time.sec 5);
      Alcotest.(check int) "all applied despite conditions" 12 (R.applied r0);
      Machine.crash (Cluster.machine cl 0);
      Machine.crash (Cluster.machine cl 1));
  Cluster.run ~until:(Time.sec 60) cl;
  let cl2 = Cluster.create ~n:1 () in
  let final = ref None in
  Cluster.spawn cl2 (fun () ->
      match R.checkpointed store ~machine_name:"m0" with
      | None -> ()
      | Some (st, count) ->
          let r = R.create (Cluster.flip cl2 0) ~seed:(st, count) () in
          ignore (check_ok "post-restart submit" (R.submit r 99));
          Engine.sleep cl2.Cluster.engine (Time.ms 100);
          final := Some (R.state r, R.applied r));
  Cluster.run ~until:(Time.sec 30) cl2;
  match !final with
  | Some (st, applied) ->
      Alcotest.(check int) "continued from the consistent cut" 11 applied;
      Alcotest.(check int) "sum = checkpointed 1..10 + new update"
        (55 + 99) st.Log_app.sum
  | None -> Alcotest.fail "no checkpoint survived"

let test_atomic_create_success () =
  let cl = Cluster.create ~n:3 () in
  let got = ref 0 in
  Cluster.spawn cl (fun () ->
      match Atomic_create.create_gathered (Array.to_list cl.Cluster.flips) with
      | Ok groups ->
          got := List.length groups;
          let info = Api.get_info_group (List.hd groups) in
          Alcotest.(check (list int)) "all members" [ 0; 1; 2 ] info.Api.members
      | Error e -> Alcotest.failf "atomic create failed: %s" (T.error_to_string e));
  Cluster.run ~until:(Time.sec 30) cl;
  Alcotest.(check int) "three handles" 3 !got

let test_atomic_create_aborts_on_dead_member () =
  let cl = Cluster.create ~n:3 () in
  let result = ref (Ok ()) in
  Cluster.spawn cl (fun () ->
      Machine.crash (Cluster.machine cl 2);
      match
        Atomic_create.create_gathered ~timeout:(Time.ms 500)
          (Array.to_list cl.Cluster.flips)
      with
      | Ok _ -> result := Error "should not succeed"
      | Error _ -> result := Ok ());
  Cluster.run ~until:(Time.sec 30) cl;
  match !result with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_stable_store_survives_crash () =
  let cl = Cluster.create ~n:1 () in
  let store = Stable_store.create () in
  let live_write = ref false in
  let dead_write = ref true in
  Cluster.spawn cl (fun () ->
      live_write :=
        Stable_store.write store (Cluster.machine cl 0) ~key:"a"
          (Bytes.of_string "payload");
      Machine.crash (Cluster.machine cl 0);
      (* A dead machine cannot write... *)
      dead_write :=
        Stable_store.write store (Cluster.machine cl 0) ~key:"b"
          (Bytes.of_string "lost"));
  Cluster.run ~until:(Time.sec 5) cl;
  Alcotest.(check bool) "live write reports success" true !live_write;
  Alcotest.(check bool) "dead write reports failure" false !dead_write;
  Alcotest.(check bool)
    "dropped write counted" true
    ((Stable_store.counters store).Stable_store.writes_dropped >= 1);
  (* ...but its disk is still readable. *)
  Alcotest.(check (option string))
    "written before the crash" (Some "payload")
    (Option.map Bytes.to_string (Stable_store.read store ~machine_name:"m0" ~key:"a"));
  Alcotest.(check (option string))
    "nothing after the crash" None
    (Option.map Bytes.to_string (Stable_store.read store ~machine_name:"m0" ~key:"b"))

let prop_rsm_agreement_under_loss =
  QCheck.Test.make ~name:"rsm replicas agree under random frame loss" ~count:8
    QCheck.(pair (int_range 2 4) (int_range 1 5))
    (fun (n, each) ->
      let cl = Cluster.create ~n () in
      let ok = ref false in
      Cluster.spawn cl (fun () ->
          let r0 = R.create (Cluster.flip cl 0) () in
          let rest =
            List.init (n - 1) (fun i ->
                Result.get_ok (R.join (Cluster.flip cl (i + 1)) (R.address r0)))
          in
          let rs = r0 :: rest in
          Amoeba_net.Medium.set_loss_rate cl.Cluster.net 0.03;
          List.iteri
            (fun i r ->
              Cluster.spawn cl (fun () ->
                  for k = 1 to each do
                    ignore (R.submit r ((i * 1000) + k))
                  done))
            rs;
          Engine.sleep cl.Cluster.engine (Time.sec 60);
          Amoeba_net.Medium.set_loss_rate cl.Cluster.net 0.;
          ignore (R.submit r0 424242);
          Engine.sleep cl.Cluster.engine (Time.sec 10);
          let states = List.map (fun r -> (R.state r).Log_app.entries) rs in
          let expected = (n * each) + 1 in
          ok :=
            List.for_all
              (fun s -> List.length s = expected && s = List.hd states)
              states);
      Cluster.run ~until:(Time.sec 200) cl;
      !ok)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "grouplib",
    [
      tc "rsm replicas agree" test_rsm_replicas_agree;
      tc "state transfer catches up" test_state_transfer_catches_up;
      tc "state transfer under concurrent updates"
        test_state_transfer_under_concurrent_updates;
      tc "checkpoint roundtrip" test_checkpoint_roundtrip;
      tc "restart from checkpoint after total failure"
        test_restart_from_checkpoint_after_total_failure;
      tc "state transfer under bursty loss" test_transfer_under_bursty_loss;
      tc "state transfer under reordering" test_transfer_under_reordering;
      tc "checkpoint restore under hostile net"
        test_checkpoint_restore_under_hostile_net;
      tc "atomic create success" test_atomic_create_success;
      tc "atomic create aborts on dead member"
        test_atomic_create_aborts_on_dead_member;
      tc "stable store survives crash" test_stable_store_survives_crash;
      QCheck_alcotest.to_alcotest prop_rsm_agreement_under_loss;
    ] )
