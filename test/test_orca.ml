(* Tests for the Orca-style shared data-object layer. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_orca
open Amoeba_harness

(* A shared counter: add returns the post-increment value. *)
module Counter_obj = struct
  type state = int
  type op = Add of int
  type result = int

  let apply st (Add d) = (st + d, st + d)
  let encode_op (Add d) = Bytes.of_string (string_of_int d)
  let decode_op b = Option.map (fun d -> Add d) (int_of_string_opt (Bytes.to_string b))
end

module Counter = Orca.Make (Counter_obj)

(* A shared work queue with a guarded pop. *)
module Queue_obj = struct
  type state = int list (* fifo, oldest last *)
  type op = Push of int | Pop
  type result = int option

  let apply st = function
    | Push v -> (v :: st, None)
    | Pop -> (
        match List.rev st with
        | [] -> ([], None)
        | oldest :: rest -> (List.rev rest, Some oldest))

  let encode_op = function
    | Push v -> Bytes.of_string (Printf.sprintf "push %d" v)
    | Pop -> Bytes.of_string "pop"

  let decode_op b =
    match String.split_on_char ' ' (Bytes.to_string b) with
    | [ "push"; v ] -> Option.map (fun v -> Push v) (int_of_string_opt v)
    | [ "pop" ] -> Some Pop
    | _ -> None
end

module Work_queue = Orca.Make (Queue_obj)

let with_runtimes n scenario =
  let cl = Cluster.create ~n () in
  let failure = ref None in
  Cluster.spawn cl (fun () ->
      try
        let rt0 = Orca.Runtime.create (Cluster.flip cl 0) in
        let rest =
          List.init (n - 1) (fun i ->
              Result.get_ok
                (Orca.Runtime.join (Cluster.flip cl (i + 1)) (Orca.Runtime.address rt0)))
        in
        scenario cl (rt0 :: rest)
      with e -> failure := Some e);
  Cluster.run ~until:(Time.sec 600) cl;
  match !failure with Some e -> raise e | None -> ()

let test_counter_replicas_converge () =
  with_runtimes 3 (fun cl rts ->
      let handles =
        List.map (fun rt -> Counter.declare rt ~name:"hits" ~init:0) rts
      in
      List.iter
        (fun h ->
          Cluster.spawn cl (fun () ->
              for _ = 1 to 5 do
                ignore (Counter.write h (Counter_obj.Add 1))
              done))
        handles;
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      List.iteri
        (fun i h ->
          Alcotest.(check int)
            (Printf.sprintf "replica %d sees all increments" i)
            15
            (Counter.read h Fun.id))
        handles)

let test_write_result_reflects_total_order () =
  with_runtimes 2 (fun cl rts ->
      let h0 = Counter.declare (List.nth rts 0) ~name:"c" ~init:0 in
      let h1 = Counter.declare (List.nth rts 1) ~name:"c" ~init:0 in
      let results = ref [] in
      Cluster.spawn cl (fun () ->
          let r1 = Result.get_ok (Counter.write h0 (Counter_obj.Add 1)) in
          let r2 = Result.get_ok (Counter.write h0 (Counter_obj.Add 1)) in
          results := [ r1; r2 ]);
      Cluster.spawn cl (fun () ->
          ignore (Counter.write h1 (Counter_obj.Add 1)));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      (* Results are post-increment values: distinct and increasing. *)
      match !results with
      | [ r1; r2 ] -> Alcotest.(check bool) "ordered" true (r1 < r2 && r2 <= 3)
      | _ -> Alcotest.fail "writes did not finish")

let test_reads_are_local () =
  with_runtimes 2 (fun cl rts ->
      let h0 = Counter.declare (List.nth rts 0) ~name:"c" ~init:7 in
      let _h1 = Counter.declare (List.nth rts 1) ~name:"c" ~init:7 in
      Engine.sleep cl.Cluster.engine (Time.ms 10);
      let frames_before = Medium.frames_delivered cl.Cluster.net in
      for _ = 1 to 100 do
        ignore (Counter.read h0 Fun.id)
      done;
      Alcotest.(check int) "no wire traffic for reads" frames_before
        (Medium.frames_delivered cl.Cluster.net))

let test_guard_blocks_until_condition () =
  with_runtimes 2 (fun cl rts ->
      let producer = Work_queue.declare (List.nth rts 0) ~name:"q" ~init:[] in
      let consumer = Work_queue.declare (List.nth rts 1) ~name:"q" ~init:[] in
      let got = ref None in
      let woke_at = ref 0 in
      Cluster.spawn cl (fun () ->
          (* Orca-style guarded dequeue. *)
          Work_queue.await consumer (fun q -> q <> []);
          woke_at := Engine.now cl.Cluster.engine;
          got := Result.get_ok (Work_queue.write consumer Queue_obj.Pop));
      Cluster.spawn cl (fun () ->
          Engine.sleep cl.Cluster.engine (Time.ms 50);
          ignore (Work_queue.write producer (Queue_obj.Push 99)));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check (option int)) "popped the produced item" (Some 99) !got;
      Alcotest.(check bool) "guard waited for the push" true
        (!woke_at >= Time.ms 50))

let test_multiple_objects_one_runtime () =
  with_runtimes 2 (fun cl rts ->
      let rt0 = List.nth rts 0 and rt1 = List.nth rts 1 in
      let a0 = Counter.declare rt0 ~name:"a" ~init:0 in
      let _a1 = Counter.declare rt1 ~name:"a" ~init:0 in
      let q0 = Work_queue.declare rt0 ~name:"q" ~init:[] in
      let q1 = Work_queue.declare rt1 ~name:"q" ~init:[] in
      Cluster.spawn cl (fun () ->
          ignore (Counter.write a0 (Counter_obj.Add 5));
          ignore (Work_queue.write q0 (Queue_obj.Push 1)));
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      Alcotest.(check int) "counter at rt1 via name routing" 5
        (Counter.read _a1 Fun.id);
      Alcotest.(check (list int)) "queue at rt1" [ 1 ] (Work_queue.read q1 Fun.id))

let test_duplicate_declaration_rejected () =
  with_runtimes 1 (fun _cl rts ->
      let rt = List.hd rts in
      ignore (Counter.declare rt ~name:"dup" ~init:0);
      Alcotest.check_raises "duplicate name"
        (Invalid_argument "Orca.declare: duplicate object name dup") (fun () ->
          ignore (Counter.declare rt ~name:"dup" ~init:0)))

let prop_counter_linearizable =
  QCheck.Test.make ~name:"orca counter sums all increments" ~count:10
    QCheck.(pair (int_range 2 4) (int_range 1 6))
    (fun (n, each) ->
      let total = ref (-1) in
      with_runtimes n (fun cl rts ->
          let handles =
            List.map (fun rt -> Counter.declare rt ~name:"x" ~init:0) rts
          in
          List.iter
            (fun h ->
              Cluster.spawn cl (fun () ->
                  for _ = 1 to each do
                    ignore (Counter.write h (Counter_obj.Add 1))
                  done))
            handles;
          Engine.sleep cl.Cluster.engine (Time.sec 10);
          total := Counter.read (List.hd handles) Fun.id);
      !total = n * each)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "orca",
    [
      tc "counter replicas converge" test_counter_replicas_converge;
      tc "write results reflect the total order"
        test_write_result_reflects_total_order;
      tc "reads are local" test_reads_are_local;
      tc "guard blocks until condition" test_guard_blocks_until_condition;
      tc "multiple objects per runtime" test_multiple_objects_one_runtime;
      tc "duplicate declaration rejected" test_duplicate_declaration_rejected;
      QCheck_alcotest.to_alcotest prop_counter_linearizable;
    ] )
