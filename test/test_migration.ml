(* Live shard migration: directed scenarios for the happy path, the
   sequencer-only move, and the rollback on a dead destination; the
   shard-map reassignment properties; and the fifth 120-schedule chaos
   swarm — random crash/power-cycle plans aimed at the transfer window,
   checked against migration-safety plus the base invariants. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_harness
open Amoeba_service

(* ---------- shard-map reassignment properties ---------- *)

let pool10 = List.init 10 Fun.id

let some_keys = List.init 400 (fun i -> Printf.sprintf "key-%d" i)

(* A reassignment touches exactly the shard it names: the ring (and so
   every key's shard) is untouched, every other shard's placement is
   untouched, and the named shard lands exactly on the requested hosts
   with the requested sequencer. *)
let prop_reassign_touches_exactly_one_shard =
  let gen =
    QCheck.Gen.(
      int_range 2 6 >>= fun shards ->
      int_range 0 (shards - 1) >>= fun shard ->
      int_range 0 99_999 >>= fun seed -> return (shards, shard, seed))
  in
  let print (shards, shard, seed) =
    Printf.sprintf "shards=%d shard=%d seed=%d" shards shard seed
  in
  QCheck.Test.make ~name:"reassign changes exactly the named shard"
    ~count:100
    (QCheck.make ~print gen)
    (fun (shards, shard, seed) ->
      let map = Shard_map.create ~shards ~hosts:pool10 () in
      let rng = Random.State.make [| seed |] in
      let cur = Shard_map.replica_hosts map shard in
      (* a target of random size drawn from the pool, biased fresh *)
      let k = 1 + Random.State.int rng 3 in
      let fresh = List.filter (fun h -> not (List.mem h cur)) pool10 in
      let target =
        let shuffled =
          List.map (fun h -> (Random.State.bits rng, h)) fresh
          |> List.sort compare |> List.map snd
        in
        List.filteri (fun i _ -> i < k) shuffled
      in
      let map' = Shard_map.reassign map ~shard ~hosts:target in
      List.for_all
        (fun key -> Shard_map.shard_of_key map key = Shard_map.shard_of_key map' key)
        some_keys
      && List.init shards Fun.id
         |> List.for_all (fun s ->
                if s = shard then
                  Shard_map.replica_hosts map' s = target
                  && Shard_map.sequencer_host map' s = List.hd target
                else
                  Shard_map.replica_hosts map' s = Shard_map.replica_hosts map s
                  && Shard_map.sequencer_host map' s
                     = Shard_map.sequencer_host map s))

(* Sequencer spreading survives a random sequence of migrations: as
   long as each move's new sequencer host is not already sequencing
   another shard (the Rebalancer's own policy — it targets cold
   machines), the all-sequencers-distinct property is preserved, and
   every placement stays pairwise-distinct and in-pool. *)
let prop_reassign_sequence_keeps_spreading =
  QCheck.Test.make ~name:"sequencer spreading survives random migrations"
    ~count:100
    QCheck.(int_range 0 99_999)
    (fun seed ->
      let shards = 4 in
      let rng = Random.State.make [| seed; 0x5EED |] in
      let map0 = Shard_map.create ~shards ~replication:2 ~hosts:pool10 () in
      let map = ref map0 in
      for _ = 1 to 8 do
        let shard = Random.State.int rng shards in
        let seqs =
          List.init shards (fun s ->
              if s = shard then -1 else Shard_map.sequencer_host !map s)
        in
        let free =
          List.filter (fun h -> not (List.mem h seqs)) pool10
          |> List.map (fun h -> (Random.State.bits rng, h))
          |> List.sort compare |> List.map snd
        in
        let target = List.filteri (fun i _ -> i < 2) free in
        map := Shard_map.reassign !map ~shard ~hosts:target
      done;
      let seq_hosts = List.init shards (Shard_map.sequencer_host !map) in
      List.length (List.sort_uniq compare seq_hosts) = shards
      && List.init shards Fun.id
         |> List.for_all (fun s ->
                let hs = Shard_map.replica_hosts !map s in
                List.length (List.sort_uniq compare hs) = List.length hs
                && List.for_all (fun h -> List.mem h pool10) hs
                && List.hd hs = Shard_map.sequencer_host !map s
                && List.for_all
                     (fun key ->
                       Shard_map.shard_of_key !map key
                       = Shard_map.shard_of_key map0 key)
                     some_keys))

(* ---------- directed migration scenarios ---------- *)

let fail_verdicts label verdicts =
  List.iter
    (fun (shard, vs) ->
      List.iter
        (fun v ->
          if not v.Checker.ok then
            Alcotest.failf "%s: shard %d invariant %s violated: %s" label shard
              v.Checker.invariant v.Checker.detail)
        vs)
    verdicts

(* A migration under a stream of concurrent writes: every put commits
   (the dual-routing window is covered by Busy backoff + fresh-uid
   retries), the map ends up on the target hosts, the data survives
   the move, and migration-safety plus the base invariants hold. *)
let test_migrate_under_load () =
  let cl = Cluster.create ~n:7 ~seed:31 () in
  let done_ = ref false in
  Cluster.spawn cl (fun () ->
      let map =
        Shard_map.create ~shards:2 ~replication:2 ~hosts:[ 0; 1; 2; 3; 4; 5 ] ()
      in
      let in_use =
        Shard_map.replica_hosts map 0 @ Shard_map.replica_hosts map 1
      in
      let target =
        List.filter (fun h -> not (List.mem h in_use)) (Shard_map.hosts map)
        |> fun free -> List.filteri (fun i _ -> i < 2) free
      in
      let svc = Service.deploy cl ~map ~resilience:1 ~record:true () in
      let router =
        Router.create (Cluster.flip cl 6) ~attempts:30 ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      let done_ch = Channel.create () in
      let keys = List.init 30 (fun i -> "k" ^ string_of_int i) in
      List.iter
        (fun k ->
          Cluster.spawn cl (fun () ->
              Engine.sleep cl.Cluster.engine (Time.ms (Hashtbl.hash k mod 120));
              Channel.send done_ch (k, Router.put router k ("v." ^ k))))
        keys;
      Engine.sleep cl.Cluster.engine (Time.ms 20);
      (match Service.migrate_shard svc ~shard:0 ~hosts:target () with
      | Ok () -> ()
      | Error e -> Alcotest.failf "migration failed: %s" e);
      Router.update_endpoints router (Service.endpoints svc);
      List.iter
        (fun _ ->
          match Channel.recv cl.Cluster.engine done_ch with
          | _, Router.Written -> ()
          | k, Router.Failed m -> Alcotest.failf "put %s failed: %s" k m
          | k, _ -> Alcotest.failf "put %s: unexpected reply" k)
        keys;
      Alcotest.(check (list int))
        "map reassigned onto the target" (List.sort compare target)
        (List.sort compare (Shard_map.replica_hosts (Service.map svc) 0));
      (match Service.migrations svc with
      | [ m ] ->
          Alcotest.(check bool) "attempt recorded as Ok" true (m.Service.m_result = Ok ());
          Alcotest.(check (list int))
            "recorded target" (List.sort compare target)
            (List.sort compare m.Service.m_to)
      | ms -> Alcotest.failf "expected one migration record, got %d" (List.length ms));
      (* the moved data is still there, served by the new replicas *)
      Engine.sleep cl.Cluster.engine (Time.ms 300);
      List.iter
        (fun k ->
          match Router.get router k with
          | Router.Value v -> Alcotest.(check string) ("get " ^ k) ("v." ^ k) v
          | _ -> Alcotest.failf "get %s failed after migration" k)
        keys;
      fail_verdicts "under-load" (Service.check svc ~crashed:[]);
      done_ := true);
  Cluster.run ~until:(Time.sec 120) cl;
  Alcotest.(check bool) "scenario finished" true !done_

(* Moving only the sequencer away: the followers keep their replicas
   (no state re-transfer for them) and the kernel's graceful-leave
   rule hands sequencing to the oldest survivor — the first follower.
   The map must record whichever host really sequences now. *)
let test_migrate_sequencer_only () =
  let cl = Cluster.create ~n:6 ~seed:32 () in
  let done_ = ref false in
  Cluster.spawn cl (fun () ->
      let map =
        Shard_map.create ~shards:1 ~replication:3 ~hosts:[ 0; 1; 2; 3 ] ()
      in
      let svc = Service.deploy cl ~map ~resilience:1 ~record:true () in
      let router =
        Router.create (Cluster.flip cl 5) ~attempts:30 ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      for i = 1 to 8 do
        match Router.put router ("k" ^ string_of_int i) "pre" with
        | Router.Written -> ()
        | _ -> Alcotest.failf "pre put %d failed" i
      done;
      let cur = Shard_map.replica_hosts map 0 in
      let old_seq = List.hd cur in
      let followers = List.tl cur in
      let fresh =
        List.filter (fun h -> not (List.mem h cur)) (Shard_map.hosts map)
      in
      (match
         Service.migrate_shard svc ~shard:0 ~hosts:(followers @ fresh) ()
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "sequencer-only migration failed: %s" e);
      Router.update_endpoints router (Service.endpoints svc);
      let map' = Service.map svc in
      Alcotest.(check bool)
        "old sequencer host left the shard" false
        (List.mem old_seq (Shard_map.replica_hosts map' 0));
      Alcotest.(check int)
        "map records the real new sequencer"
        (Service.sequencer_of svc 0)
        (Shard_map.sequencer_host map' 0);
      for i = 9 to 16 do
        match Router.put router ("k" ^ string_of_int i) "post" with
        | Router.Written -> ()
        | _ -> Alcotest.failf "post put %d failed" i
      done;
      fail_verdicts "sequencer-only" (Service.check svc ~crashed:[]);
      done_ := true);
  Cluster.run ~until:(Time.sec 120) cl;
  Alcotest.(check bool) "scenario finished" true !done_

(* A destination that is already dead: the join watchdog trips, the
   attempt rolls back, the source keeps the shard and keeps serving —
   and migration-safety still holds (exactly one owner throughout). *)
let test_migrate_rollback_on_dead_target () =
  let cl = Cluster.create ~n:7 ~seed:33 () in
  let done_ = ref false in
  Cluster.spawn cl (fun () ->
      let map =
        Shard_map.create ~shards:1 ~replication:2 ~hosts:[ 0; 1; 2; 3 ] ()
      in
      let svc = Service.deploy cl ~map ~resilience:1 ~record:true () in
      let router =
        Router.create (Cluster.flip cl 6) ~attempts:30 ~map
          ~endpoints:(Service.endpoints svc) ()
      in
      for i = 1 to 6 do
        match Router.put router ("k" ^ string_of_int i) "pre" with
        | Router.Written -> ()
        | _ -> Alcotest.failf "pre put %d failed" i
      done;
      let cur = Shard_map.replica_hosts map 0 in
      let target =
        List.filter (fun h -> not (List.mem h cur)) (Shard_map.hosts map)
      in
      Machine.crash (Cluster.machine cl (List.hd target));
      (match
         Service.migrate_shard svc ~shard:0 ~timeout:(Time.ms 400) ~hosts:target
           ()
       with
      | Ok () -> Alcotest.fail "migration onto a dead host reported success"
      | Error _ -> ());
      Alcotest.(check (list int))
        "source kept the shard" (List.sort compare cur)
        (List.sort compare (Shard_map.replica_hosts (Service.map svc) 0));
      (match Service.migrations svc with
      | [ m ] ->
          Alcotest.(check bool) "attempt recorded as failed" true
            (match m.Service.m_result with Error _ -> true | Ok () -> false)
      | _ -> Alcotest.fail "expected exactly one migration record");
      (* the source still serves *)
      for i = 7 to 12 do
        match Router.put router ("k" ^ string_of_int i) "post" with
        | Router.Written -> ()
        | r ->
            Alcotest.failf "post-rollback put %d did not commit (%s)" i
              (match r with Router.Failed m -> m | _ -> "unexpected reply")
      done;
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      fail_verdicts "rollback" (Service.check svc ~crashed:[ List.hd target ]);
      done_ := true);
  Cluster.run ~until:(Time.sec 120) cl;
  Alcotest.(check bool) "scenario finished" true !done_

(* ---------- the migration chaos swarm ---------- *)

(* Same fabric palette as the other swarms: the paper's shared wire, a
   flat full-duplex switch, and a two-segment switch with a 2x
   oversubscribed uplink. *)
let fabrics =
  [
    Medium.Shared;
    Medium.Switched Switch.flat;
    Medium.Switched { Switch.segments = 2; segment_size = 3; uplink_mult = 2 };
  ]

let swarm_case =
  let gen =
    QCheck.Gen.(
      int_range 0 99_999 >>= fun seed ->
      oneofl fabrics >>= fun fabric ->
      bool >>= fun hostile ->
      bool >>= fun crash_source ->
      bool >>= fun crash_dest ->
      bool >>= fun power ->
      return
        {
          Migration_chaos.mc_seed = seed;
          mc_fabric = fabric;
          mc_hostile = hostile;
          mc_crash_source = crash_source;
          mc_crash_dest = crash_dest;
          mc_power_cycle = power;
          mc_workers = 8;
          mc_duration_ms = 1200;
        })
  in
  QCheck.make ~print:Migration_chaos.replay_line gen

let prop_migration_swarm =
  QCheck.Test.make
    ~name:"swarm: migration-safety holds under mid-migration chaos" ~count:120
    swarm_case (fun spec -> Migration_chaos.ok (Migration_chaos.run spec))

let prop_migration_chaos_deterministic =
  QCheck.Test.make ~name:"migration chaos replays bit-identically" ~count:4
    QCheck.(int_range 0 9_999)
    (fun seed ->
      let spec =
        {
          (Migration_chaos.default ~seed) with
          Migration_chaos.mc_crash_source = true;
          mc_power_cycle = true;
        }
      in
      Migration_chaos.run spec = Migration_chaos.run spec)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let rand = Random.State.make [| 0x316A7E |] in
  ( "migration",
    [
      tc "migrate under concurrent writes" test_migrate_under_load;
      tc "sequencer-only move keeps follower state"
        test_migrate_sequencer_only;
      tc "dead destination rolls back" test_migrate_rollback_on_dead_target;
      QCheck_alcotest.to_alcotest ~rand prop_reassign_touches_exactly_one_shard;
      QCheck_alcotest.to_alcotest ~rand prop_reassign_sequence_keeps_spreading;
      QCheck_alcotest.to_alcotest ~rand prop_migration_swarm;
      QCheck_alcotest.to_alcotest ~rand prop_migration_chaos_deterministic;
    ] )
