(* Adversarial recovery scenarios: coordinator failures, concurrent
   resets, repeated crashes, recovery under traffic.  The paper calls
   the failure detection and group rebuilding code "the hardest parts
   of the system to get correct" — these tests exist because of that
   sentence. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_core
open Amoeba_harness
module T = Types

let body = Bytes.of_string

let check_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (T.error_to_string e)

let with_cluster n scenario =
  let cl = Cluster.create ~n () in
  let failure = ref None in
  Cluster.spawn cl (fun () -> try scenario cl with e -> failure := Some e);
  Cluster.run ~until:(Time.sec 2_000) cl;
  match !failure with Some e -> raise e | None -> ()

let build cl n =
  let creator = Api.create_group (Cluster.flip cl 0) () in
  let addr = Api.group_address creator in
  creator
  :: List.init (n - 1) (fun i ->
         check_ok "join" (Api.join_group (Cluster.flip cl (i + 1)) addr))

let message_bodies g =
  let rec drain acc =
    match Api.receive_opt g with
    | None -> List.rev acc
    | Some (T.Message { body; _ }) -> drain (Bytes.to_string body :: acc)
    | Some _ -> drain acc
  in
  drain []

let test_coordinator_crash_mid_reset () =
  with_cluster 4 (fun cl ->
      let groups = build cl 4 in
      let g1 = List.nth groups 1
      and g2 = List.nth groups 2
      and g3 = List.nth groups 3 in
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      (* The sequencer dies; member 1 coordinates a reset but dies
         during it. *)
      Machine.crash (Cluster.machine cl 0);
      Cluster.spawn cl (fun () -> ignore (Api.reset_group g1 ~min_members:3));
      Engine.sleep cl.Cluster.engine (Time.ms 20);
      Machine.crash (Cluster.machine cl 1);
      (* A survivor takes over recovery. *)
      let survivors = check_ok "survivor reset" (Api.reset_group g2 ~min_members:2) in
      Alcotest.(check int) "two left" 2 survivors;
      ignore (check_ok "post" (Api.send_to_group g3 (body "after")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check (list string))
        "survivor stream" [ "w"; "after" ] (message_bodies g2))

let test_concurrent_resets_converge () =
  with_cluster 4 (fun cl ->
      let groups = build cl 4 in
      let g1 = List.nth groups 1
      and g2 = List.nth groups 2
      and g3 = List.nth groups 3 in
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Machine.crash (Cluster.machine cl 0);
      (* Two members notice the failure and reset concurrently. *)
      let r1 = ref None and r2 = ref None in
      Cluster.spawn cl (fun () -> r1 := Some (Api.reset_group g1 ~min_members:2));
      Cluster.spawn cl (fun () -> r2 := Some (Api.reset_group g2 ~min_members:2));
      Engine.sleep cl.Cluster.engine (Time.sec 10);
      let ok r = match r with Some (Ok _) -> true | _ -> false in
      Alcotest.(check bool) "both resets returned success" true (ok !r1 && ok !r2);
      let i1 = Api.get_info_group g1 and i2 = Api.get_info_group g2 in
      Alcotest.(check bool) "same incarnation" true
        (i1.Api.incarnation = i2.Api.incarnation);
      Alcotest.(check bool) "same membership" true (i1.Api.members = i2.Api.members);
      Alcotest.(check bool) "same sequencer" true
        (i1.Api.sequencer = i2.Api.sequencer);
      (* And the group still works. *)
      ignore (check_ok "post" (Api.send_to_group g3 (body "post")));
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      Alcotest.(check (list string)) "delivery" [ "w"; "post" ] (message_bodies g2))

let test_repeated_crash_reset_cycles () =
  with_cluster 4 (fun cl ->
      let groups = build cl 4 in
      let g2 = List.nth groups 2 and g3 = List.nth groups 3 in
      ignore (check_ok "m1" (Api.send_to_group g3 (body "m1")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      (* Crash the original sequencer. *)
      Machine.crash (Cluster.machine cl 0);
      ignore (check_ok "reset 1" (Api.reset_group g2 ~min_members:3));
      ignore (check_ok "m2" (Api.send_to_group g3 (body "m2")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      (* The new sequencer (member 1, lowest survivor) dies too. *)
      Machine.crash (Cluster.machine cl 1);
      ignore (check_ok "reset 2" (Api.reset_group g3 ~min_members:2));
      ignore (check_ok "m3" (Api.send_to_group g3 (body "m3")));
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check (list string))
        "stream spans two recoveries"
        [ "m1"; "m2"; "m3" ]
        (message_bodies g2);
      let info = Api.get_info_group g2 in
      Alcotest.(check (list int)) "members" [ 2; 3 ] info.Api.members;
      Alcotest.(check int) "second recovery era" 2
        (T.incarnation_era info.Api.incarnation))

let test_reset_with_unreachable_quorum () =
  with_cluster 3 (fun cl ->
      let groups = build cl 3 in
      let g1 = List.nth groups 1 in
      Machine.crash (Cluster.machine cl 0);
      Machine.crash (Cluster.machine cl 2);
      match Api.reset_group g1 ~min_members:3 with
      | Error T.Not_enough_members -> ()
      | Ok _ -> Alcotest.fail "reset should not meet quorum"
      | Error e -> Alcotest.failf "unexpected error %s" (T.error_to_string e))

let test_recovery_under_traffic () =
  (* Senders keep hammering while the sequencer dies and the group is
     rebuilt: survivors must end with identical streams and no
     duplicates. *)
  with_cluster 4 (fun cl ->
      let groups = build cl 4 in
      let g1 = List.nth groups 1
      and g2 = List.nth groups 2
      and g3 = List.nth groups 3 in
      let acc2 = ref [] and acc3 = ref [] in
      let collect g acc =
        Cluster.spawn cl (fun () ->
            let rec loop () =
              (match Api.receive_from_group g with
              | T.Message { body; _ } -> acc := Bytes.to_string body :: !acc
              | _ -> ());
              loop ()
            in
            loop ())
      in
      collect g2 acc2;
      collect g3 acc3;
      List.iteri
        (fun i g ->
          Cluster.spawn cl (fun () ->
              for k = 1 to 10 do
                ignore (Api.send_to_group g (body (Printf.sprintf "%d.%d" i k)))
              done))
        [ g1; g3 ];
      Engine.sleep cl.Cluster.engine (Time.ms 15);
      Machine.crash (Cluster.machine cl 0);
      Engine.sleep cl.Cluster.engine (Time.ms 50);
      ignore (check_ok "reset" (Api.reset_group g2 ~min_members:3));
      Engine.sleep cl.Cluster.engine (Time.sec 60);
      let s2 = List.rev !acc2 and s3 = List.rev !acc3 in
      Alcotest.(check bool) "identical streams at survivors" true (s2 = s3);
      (* No duplicates. *)
      Alcotest.(check int) "no duplicates"
        (List.length s2)
        (List.length (List.sort_uniq compare s2));
      (* Everything a sender saw confirmed must be in the stream. *)
      Alcotest.(check bool) "some progress" true (List.length s2 >= 2))

let test_expelled_member_can_rejoin () =
  with_cluster 3 (fun cl ->
      let groups = build cl 3 in
      let g1 = List.nth groups 1 and g2 = List.nth groups 2 in
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Machine.crash (Cluster.machine cl 0);
      (* Member 2 is silenced and gets expelled by the recovery. *)
      Medium.set_drop_fun cl.Cluster.net (Some (fun f -> f.Frame.src = 2));
      ignore (check_ok "reset" (Api.reset_group g1 ~min_members:1));
      Medium.set_drop_fun cl.Cluster.net None;
      ignore (check_ok "tick" (Api.send_to_group g1 (body "tick")));
      Engine.sleep cl.Cluster.engine (Time.sec 3);
      Alcotest.(check bool) "old handle dead" false (Kernel.alive (Api.kernel g2));
      (* The paper's remedy: JoinGroup again with a fresh kernel. *)
      let g2' =
        check_ok "rejoin" (Api.join_group (Cluster.flip cl 2) (Api.group_address g1))
      in
      ignore (check_ok "post-rejoin send" (Api.send_to_group g2' (body "back")));
      Engine.sleep cl.Cluster.engine (Time.sec 1);
      Alcotest.(check (list string)) "rejoined member receives" [ "back" ]
        (message_bodies g2'))

let test_acker_leaves_during_resilient_send () =
  (* r = 2 in a group of 4: low-numbered members acknowledge.  One of
     them leaves while traffic flows; the sequencer must stop waiting
     for its acknowledgements or resilient sends stall. *)
  let cl = Cluster.create ~n:4 () in
  let failure = ref None in
  Cluster.spawn cl (fun () ->
      try
        let creator = Api.create_group (Cluster.flip cl 0) ~resilience:2 () in
        let addr = Api.group_address creator in
        let joiners =
          List.init 3 (fun i ->
              check_ok "join"
                (Api.join_group (Cluster.flip cl (i + 1)) ~resilience:2 addr))
        in
        let g1 = List.nth joiners 0 and g3 = List.nth joiners 2 in
        ignore (check_ok "warm" (Api.send_to_group g3 (body "w")));
        (* Keep sending while an acker (member 1) leaves. *)
        let results = ref [] in
        Cluster.spawn cl (fun () ->
            for k = 1 to 8 do
              results := Api.send_to_group g3 (body (string_of_int k)) :: !results
            done);
        Engine.sleep cl.Cluster.engine (Time.ms 5);
        check_ok "leave" (Api.leave_group g1);
        Engine.sleep cl.Cluster.engine (Time.sec 5);
        Alcotest.(check int) "all sends completed" 8 (List.length !results);
        Alcotest.(check bool) "all sends succeeded" true
          (List.for_all (function Ok _ -> true | Error _ -> false) !results)
      with e -> failure := Some e);
  Cluster.run ~until:(Time.sec 2_000) cl;
  (match !failure with Some e -> raise e | None -> ())

let test_acker_crash_then_reset_unblocks () =
  let cl = Cluster.create ~n:3 () in
  let failure = ref None in
  Cluster.spawn cl (fun () ->
      try
        let creator = Api.create_group (Cluster.flip cl 0) ~resilience:2 () in
        let addr = Api.group_address creator in
        let _g1 =
          check_ok "join" (Api.join_group (Cluster.flip cl 1) ~resilience:2 addr)
        in
        let g2 =
          check_ok "join" (Api.join_group (Cluster.flip cl 2) ~resilience:2 addr)
        in
        ignore (check_ok "warm" (Api.send_to_group g2 (body "w")));
        Engine.sleep cl.Cluster.engine (Time.ms 50);
        (* An acker dies: the next resilient send cannot stabilise. *)
        Machine.crash (Cluster.machine cl 1);
        (match Api.send_to_group g2 (body "stuck") with
        | Error T.Sequencer_unreachable | Error T.Send_aborted | Ok _ -> ()
        | Error e -> Alcotest.failf "unexpected: %s" (T.error_to_string e));
        (* Recovery removes the dead acker; sends flow again. *)
        ignore (check_ok "reset" (Api.reset_group g2 ~min_members:2));
        ignore (check_ok "post-reset send" (Api.send_to_group g2 (body "flow")))
      with e -> failure := Some e);
  Cluster.run ~until:(Time.sec 2_000) cl;
  match !failure with Some e -> raise e | None -> ()

let test_acker_crash_heals_without_reset () =
  (* The sequencer-side half of auto-heal.  The member heartbeat only
     watches the sequencer, so a dead plain member is invisible to it —
     but with resilience > 0 that member may be the acker every send
     from the sequencer's machine waits on.  The sequencer must notice
     the stalled stable frontier on its own heartbeat and expel the
     corpse without anyone calling ResetGroup. *)
  let cl = Cluster.create ~n:3 () in
  let failure = ref None in
  Cluster.spawn cl (fun () ->
      try
        let creator =
          Api.create_group (Cluster.flip cl 0) ~resilience:1 ~auto_heal:true ()
        in
        let addr = Api.group_address creator in
        let _g1 =
          check_ok "join"
            (Api.join_group (Cluster.flip cl 1) ~resilience:1 ~auto_heal:true addr)
        in
        let _g2 =
          check_ok "join"
            (Api.join_group (Cluster.flip cl 2) ~resilience:1 ~auto_heal:true addr)
        in
        ignore (check_ok "warm" (Api.send_to_group creator (body "w")));
        Engine.sleep cl.Cluster.engine (Time.ms 50);
        (* The creator's acker (first member that is not the sender)
           dies: its next send cannot stabilise in this membership. *)
        Machine.crash (Cluster.machine cl 1);
        (match Api.send_to_group creator (body "stuck") with
        | Error T.Sequencer_unreachable | Error T.Send_aborted | Ok _ -> ()
        | Error e -> Alcotest.failf "unexpected: %s" (T.error_to_string e));
        (* Heartbeats: 2 x probe_timeout per tick, probe_retries
           stalled ticks, then a recovery round — well under 5 s. *)
        Engine.sleep cl.Cluster.engine (Time.sec 5);
        Alcotest.(check int) "dead acker expelled" 2
          (List.length (Kernel.member_list (Api.kernel creator)));
        ignore (check_ok "post-heal send" (Api.send_to_group creator (body "flow")))
      with e -> failure := Some e);
  Cluster.run ~until:(Time.sec 2_000) cl;
  match !failure with Some e -> raise e | None -> ()

let test_auto_heal_recovers_without_reset_call () =
  (* auto_heal on: nobody calls ResetGroup; the members' heartbeats
     notice the dead sequencer and rebuild the group on their own. *)
  let cl = Cluster.create ~n:3 () in
  let failure = ref None in
  Cluster.spawn cl (fun () ->
      try
        let creator = Api.create_group (Cluster.flip cl 0) ~auto_heal:true () in
        let addr = Api.group_address creator in
        let g1 =
          check_ok "join" (Api.join_group (Cluster.flip cl 1) ~auto_heal:true addr)
        in
        let g2 =
          check_ok "join" (Api.join_group (Cluster.flip cl 2) ~auto_heal:true addr)
        in
        let acc1 = ref [] in
        Cluster.spawn cl (fun () ->
            let rec loop () =
              (match Api.receive_from_group g1 with
              | T.Message { body; _ } -> acc1 := Bytes.to_string body :: !acc1
              | _ -> ());
              loop ()
            in
            loop ());
        ignore (check_ok "warm" (Api.send_to_group g1 (body "before")));
        Engine.sleep cl.Cluster.engine (Time.ms 100);
        Machine.crash (Cluster.machine cl 0);
        (* Heartbeats: 2 x probe_timeout per tick, probe_retries misses
           -> a few seconds at most. *)
        Engine.sleep cl.Cluster.engine (Time.sec 5);
        Alcotest.(check bool) "someone took over sequencing" true
          (Kernel.is_sequencer (Api.kernel g1) || Kernel.is_sequencer (Api.kernel g2));
        ignore (check_ok "post-heal send" (Api.send_to_group g2 (body "after")));
        Engine.sleep cl.Cluster.engine (Time.sec 2);
        Alcotest.(check (list string))
          "stream intact across the self-heal"
          [ "before"; "after" ]
          (List.rev !acc1)
      with e -> failure := Some e);
  Cluster.run ~until:(Time.sec 60) cl;
  match !failure with Some e -> raise e | None -> ()

(* ----- directed regressions for two swarm-found recovery bugs -----

   Both were found by the chaos swarm and fixed in the kernel's Frozen
   state handling; these tests pin them down by name.  A non-member
   machine forges kernel-to-kernel messages through its own FLIP stack
   (registering a fake coordinator address so Invite_ack replies
   resolve), which lets a test freeze a victim at will. *)

module Flip = Amoeba_flip.Flip
module Packet = Amoeba_flip.Packet

(* An incarnation one era up, "coordinated" by a member id that does
   not exist; high enough to freeze era-0 kernels. *)
let forged_inc = (1 lsl 20) lor 9

let make_injector cl i =
  let flip = Cluster.flip cl i in
  let coord_addr = Flip.fresh_addr flip in
  Flip.register flip coord_addr (fun _ -> ());
  let inject ~dst msg =
    match
      Flip.send flip
        (Packet.make ~src:coord_addr ~dst
           ~size:(Wire.size cl.Cluster.cost msg)
           (Wire.Group msg))
    with
    | `Sent -> ()
    | `No_route -> Alcotest.fail "injection: no route to victim"
    | `Dropped -> Alcotest.fail "injection: wire dropped the packet"
  in
  (coord_addr, inject)

let test_frozen_member_ignores_old_incarnation_traffic () =
  (* Regression: a frozen member used to keep processing Data, Accept
     and Bb_data from the incarnation it froze out of, advancing its
     delivery frontier past what it had reported to the recovery
     coordinator. *)
  with_cluster 3 (fun cl ->
      let g0 = Api.create_group (Cluster.flip cl 0) () in
      let g1 =
        check_ok "join" (Api.join_group (Cluster.flip cl 1) (Api.group_address g0))
      in
      ignore (check_ok "warm" (Api.send_to_group g0 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Alcotest.(check (list string)) "warm delivery" [ "w" ] (message_bodies g1);
      let k1 = Api.kernel g1 in
      let info = Api.get_info_group g1 in
      let seq0 = info.Api.next_seq and inc0 = info.Api.incarnation in
      let coord_addr, inject = make_injector cl 2 in
      ignore coord_addr;
      (* Freeze member 1: an invite for a higher incarnation. *)
      inject ~dst:(Kernel.kernel_addr k1)
        (Wire.Invite { inc = forged_inc; coord = 9; coord_addr });
      Engine.sleep cl.Cluster.engine (Time.ms 20);
      (* Old-incarnation traffic at the frozen member.  The Data seq is
         exactly the frontier, so a kernel with the bug delivers it on
         the spot. *)
      let payload = T.User (body "zombie") in
      inject ~dst:(Kernel.kernel_addr k1)
        (Wire.Data
           { seq = seq0; sender = 0; msgid = 999; inc = inc0; ops = 1; payload;
             needs_accept = false });
      inject ~dst:(Kernel.kernel_addr k1)
        (Wire.Accept { seq = seq0; sender = 0; msgid = 999; inc = inc0 });
      inject ~dst:(Kernel.kernel_addr k1)
        (Wire.Bb_data
           { sender = 0; msgid = 1000; piggy = seq0 - 1; inc = inc0; ops = 1; payload });
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Alcotest.(check int) "frontier unmoved while frozen" seq0
        (Api.get_info_group g1).Api.next_seq;
      Alcotest.(check (list string)) "nothing delivered while frozen" []
        (message_bodies g1);
      (* The forged recovery never completes: after the grace period
         the frozen member probes with a recovery of its own, finds the
         group still standing, and re-forms it under a fresh
         incarnation instead of dying on a forged invite. *)
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      Alcotest.(check bool) "frozen member recovers" true (Kernel.alive k1);
      Alcotest.(check bool) "fresh incarnation installed" true
        ((Api.get_info_group g1).Api.incarnation > inc0);
      ignore (check_ok "post-recovery send" (Api.send_to_group g0 (body "after")));
      Engine.sleep cl.Cluster.engine (Time.ms 300);
      Alcotest.(check (list string)) "delivery resumes" [ "after" ]
        (message_bodies g1))

let test_frozen_sequencer_defers_queued_sends () =
  (* Regression: a sender co-located with the sequencer used to
     self-assign sequence numbers even while Frozen, injecting new
     messages into the incarnation a recovery was tearing down. *)
  with_cluster 3 (fun cl ->
      let g0 = Api.create_group (Cluster.flip cl 0) () in
      let g1 =
        check_ok "join" (Api.join_group (Cluster.flip cl 1) (Api.group_address g0))
      in
      ignore (check_ok "warm" (Api.send_to_group g1 (body "w")));
      Engine.sleep cl.Cluster.engine (Time.ms 100);
      Alcotest.(check (list string)) "warm delivery" [ "w" ] (message_bodies g1);
      let k0 = Api.kernel g0 in
      let seq0 = (Api.get_info_group g0).Api.next_seq in
      let coord_addr, inject = make_injector cl 2 in
      (* Freeze the sequencer's kernel. *)
      inject ~dst:(Kernel.kernel_addr k0)
        (Wire.Invite { inc = forged_inc; coord = 9; coord_addr });
      Engine.sleep cl.Cluster.engine (Time.ms 20);
      (* A send submitted on the sequencer's machine while frozen must
         stay pending, not self-sequence. *)
      let result = ref None in
      Cluster.spawn cl (fun () ->
          result := Some (Api.send_to_group g0 (body "late")));
      Engine.sleep cl.Cluster.engine (Time.ms 300);
      Alcotest.(check int) "no sequence number handed out" seq0
        (Api.get_info_group g0).Api.next_seq;
      Alcotest.(check bool) "send still pending" true (!result = None);
      Alcotest.(check (list string)) "member saw no frozen-era traffic" []
        (message_bodies g1);
      (* The forged coordinator never installs a new configuration:
         after the grace period the frozen sequencer re-forms the
         group itself and the deferred send goes out under the new
         incarnation — never into the one the forged invite froze. *)
      Engine.sleep cl.Cluster.engine (Time.sec 2);
      (match !result with
      | Some (Ok _) -> ()
      | Some (Error e) ->
          Alcotest.failf "queued send died: %s" (T.error_to_string e)
      | None -> Alcotest.fail "send still blocked after recovery");
      Alcotest.(check (list string)) "deferred send delivered post-reset"
        [ "late" ] (message_bodies g1))

let prop_survivors_agree_after_random_crash =
  QCheck.Test.make ~name:"survivors agree after a random crash + reset" ~count:8
    QCheck.(pair (int_range 3 5) (int_range 0 1000))
    (fun (n, seed) ->
      let cl = Cluster.create ~n ~seed () in
      let ok = ref false in
      Engine.spawn cl.Cluster.engine (fun () ->
          let creator = Api.create_group (Cluster.flip cl 0) () in
          let addr = Api.group_address creator in
          let joiners =
            List.init (n - 1) (fun i ->
                Result.get_ok (Api.join_group (Cluster.flip cl (i + 1)) addr))
          in
          let groups = creator :: joiners in
          let victim = seed mod n in
          let coordinator = (victim + 1) mod n in
          List.iteri
            (fun i g ->
              if i <> victim then
                Cluster.spawn cl (fun () ->
                    for k = 1 to 3 do
                      ignore (Api.send_to_group g (body (Printf.sprintf "%d.%d" i k)))
                    done))
            groups;
          Engine.sleep cl.Cluster.engine (Time.ms 10);
          Machine.crash (Cluster.machine cl victim);
          Engine.sleep cl.Cluster.engine (Time.ms 100);
          (match Api.reset_group (List.nth groups coordinator) ~min_members:(n - 1) with
          | Ok _ -> ()
          | Error _ -> ());
          Engine.sleep cl.Cluster.engine (Time.sec 120);
          let streams =
            List.filteri (fun i _ -> i <> victim) groups
            |> List.map message_bodies
          in
          ok :=
            List.for_all (fun s -> s = List.hd streams) streams
            && List.length (List.hd streams)
               = List.length (List.sort_uniq compare (List.hd streams)));
      Engine.run ~until:(Time.sec 2_000) cl.Cluster.engine;
      !ok)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "recovery",
    [
      tc "coordinator crash mid-reset" test_coordinator_crash_mid_reset;
      tc "concurrent resets converge" test_concurrent_resets_converge;
      tc "repeated crash/reset cycles" test_repeated_crash_reset_cycles;
      tc "reset without quorum fails" test_reset_with_unreachable_quorum;
      tc "recovery under traffic" test_recovery_under_traffic;
      tc "expelled member can rejoin" test_expelled_member_can_rejoin;
      tc "acker leaves during resilient send"
        test_acker_leaves_during_resilient_send;
      tc "acker crash then reset unblocks" test_acker_crash_then_reset_unblocks;
      tc "acker crash heals without a reset call"
        test_acker_crash_heals_without_reset;
      tc "auto-heal recovers without a reset call"
        test_auto_heal_recovers_without_reset_call;
      tc "frozen member ignores old-incarnation traffic"
        test_frozen_member_ignores_old_incarnation_traffic;
      tc "frozen sequencer defers queued sends"
        test_frozen_sequencer_defers_queued_sends;
      QCheck_alcotest.to_alcotest prop_survivors_agree_after_random_crash;
    ] )
