(* Tests for the Ethernet medium, NIC and machine models. *)

open Amoeba_sim
open Amoeba_net

type Frame.body += Tag of int

let cost = Cost_model.default

let make_world () =
  let eng = Engine.create () in
  let tr = Trace.create () in
  let ether = Ether.create eng cost in
  (eng, tr, ether)

let frame ?(size = 64) ~src ~dest tag =
  { Frame.src; dest; size_on_wire = size; body = Tag tag }

let test_frame_time () =
  (* 64-byte minimum frame: (64 + 8 + 4) * 800ns + 9.6us gap. *)
  Alcotest.(check int) "min frame" 70_400
    (Cost_model.frame_time cost ~bytes_on_wire:10);
  (* Full 1514-byte frame. *)
  Alcotest.(check int) "max frame" 1_230_400
    (Cost_model.frame_time cost ~bytes_on_wire:1514)

let test_headers_total () =
  Alcotest.(check int) "116 bytes of headers" 116 (Cost_model.headers_total cost)

let test_single_transmit_delivers () =
  let eng, _, ether = make_world () in
  let got = ref [] in
  let _p0 = Ether.attach ether ~rx:(fun f -> got := (0, f) :: !got) in
  let p1 = Ether.attach ether ~rx:(fun f -> got := (1, f) :: !got) in
  let _p2 = Ether.attach ether ~rx:(fun f -> got := (2, f) :: !got) in
  Engine.spawn eng (fun () ->
      let f = frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast 7 in
      ignore (Ether.transmit ether p1 f));
  Engine.run eng;
  let receivers = List.sort compare (List.map fst !got) in
  Alcotest.(check (list int)) "everyone but the sender" [ 0; 2 ] receivers;
  Alcotest.(check int) "frames counted" 1 (Ether.frames_delivered ether)

let test_delivery_at_frame_end () =
  let eng, _, ether = make_world () in
  let at = ref 0 in
  let _p0 = Ether.attach ether ~rx:(fun _ -> at := Engine.now eng) in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  Engine.spawn eng (fun () ->
      ignore
        (Ether.transmit ether p1
           (frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast 0)));
  Engine.run eng;
  Alcotest.(check int) "delivered at frame end" 70_400 !at

let test_carrier_sense_serialises () =
  (* Two senders starting at different times must not collide: the
     second sees carrier and defers. *)
  let eng, _, ether = make_world () in
  let arrivals = ref [] in
  let _sink = Ether.attach ether ~rx:(fun f -> arrivals := f :: !arrivals) in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  let p2 = Ether.attach ether ~rx:(fun _ -> ()) in
  Engine.spawn eng (fun () ->
      ignore
        (Ether.transmit ether p1
           (frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast 1)));
  Engine.spawn eng (fun () ->
      Engine.sleep eng Time.(us 60);
      ignore
        (Ether.transmit ether p2
           (frame ~src:(Ether.port_id p2) ~dest:Frame.Broadcast 2)));
  Engine.run eng;
  Alcotest.(check int) "no collisions" 0 (Ether.collisions ether);
  Alcotest.(check int) "both delivered" 2 (Ether.frames_delivered ether)

let test_simultaneous_senders_collide_then_recover () =
  let eng, _, ether = make_world () in
  let _sink = Ether.attach ether ~rx:(fun _ -> ()) in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  let p2 = Ether.attach ether ~rx:(fun _ -> ()) in
  let outcomes = ref [] in
  Engine.spawn eng (fun () ->
      outcomes :=
        Ether.transmit ether p1
          (frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast 1)
        :: !outcomes);
  Engine.spawn eng (fun () ->
      outcomes :=
        Ether.transmit ether p2
          (frame ~src:(Ether.port_id p2) ~dest:Frame.Broadcast 2)
        :: !outcomes);
  Engine.run eng;
  Alcotest.(check bool) "at least one collision" true (Ether.collisions ether >= 1);
  Alcotest.(check int) "both eventually delivered" 2
    (Ether.frames_delivered ether);
  Alcotest.(check bool) "both senders report Sent" true
    (List.for_all (fun o -> o = `Sent) !outcomes)

let test_utilisation_positive () =
  let eng, _, ether = make_world () in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  let _sink = Ether.attach ether ~rx:(fun _ -> ()) in
  Engine.spawn eng (fun () ->
      ignore
        (Ether.transmit ether p1
           (frame ~size:1514 ~src:(Ether.port_id p1) ~dest:Frame.Broadcast 0)));
  Engine.run eng;
  Alcotest.(check bool) "utilisation in (0,1]" true
    (Ether.utilisation ether > 0.9 && Ether.utilisation ether <= 1.0)

(* NIC-level tests use machines for the cpu/alive wiring. *)

let make_machines eng tr ether n =
  List.init n (fun i ->
      Machine.create eng cost tr (Medium.shared ether) ~name:(Printf.sprintf "m%d" i) ~id:i)

let test_nic_unicast_filtering () =
  let eng, tr, ether = make_world () in
  let machines = make_machines eng tr ether 3 in
  let got = Hashtbl.create 8 in
  List.iter
    (fun m ->
      Nic.set_handler (Machine.nic m) (fun f ->
          Hashtbl.replace got (Machine.id m) f))
    machines;
  let m0 = List.nth machines 0 in
  Engine.spawn eng (fun () ->
      ignore
        (Nic.send (Machine.nic m0)
           (frame ~src:(Machine.id m0) ~dest:(Frame.Unicast 2) 5)));
  Engine.run eng;
  Alcotest.(check bool) "m2 got it" true (Hashtbl.mem got 2);
  Alcotest.(check bool) "m1 did not" false (Hashtbl.mem got 1)

let test_nic_multicast_subscription () =
  let eng, tr, ether = make_world () in
  let machines = make_machines eng tr ether 3 in
  let got = ref [] in
  List.iter
    (fun m ->
      Nic.set_handler (Machine.nic m) (fun _ -> got := Machine.id m :: !got))
    machines;
  Nic.join_multicast (Machine.nic (List.nth machines 1)) 9;
  let m0 = List.nth machines 0 in
  Engine.spawn eng (fun () ->
      ignore
        (Nic.send (Machine.nic m0)
           (frame ~src:(Machine.id m0) ~dest:(Frame.Multicast 9) 5)));
  Engine.run eng;
  Alcotest.(check (list int)) "only subscriber" [ 1 ] !got

let test_nic_leave_multicast () =
  let eng, tr, ether = make_world () in
  let machines = make_machines eng tr ether 2 in
  let got = ref 0 in
  let m1 = List.nth machines 1 in
  Nic.set_handler (Machine.nic m1) (fun _ -> incr got);
  Nic.join_multicast (Machine.nic m1) 4;
  Nic.leave_multicast (Machine.nic m1) 4;
  let m0 = List.nth machines 0 in
  Engine.spawn eng (fun () ->
      ignore
        (Nic.send (Machine.nic m0)
           (frame ~src:(Machine.id m0) ~dest:(Frame.Multicast 4) 1)));
  Engine.run eng;
  Alcotest.(check int) "not delivered after leave" 0 !got

let test_nic_ring_overflow_drops () =
  (* Flood one receiver with more back-to-back frames than its ring
     holds while its CPU is too slow to drain them. *)
  let slow = { cost with interrupt_ns = 10_000_000 } in
  let eng = Engine.create () in
  let tr = Trace.create () in
  let ether = Ether.create eng slow in
  let m0 = Machine.create eng slow tr (Medium.shared ether) ~name:"src" ~id:0 in
  let m1 = Machine.create eng slow tr (Medium.shared ether) ~name:"dst" ~id:1 in
  Nic.set_handler (Machine.nic m1) (fun _ -> ());
  Engine.spawn eng (fun () ->
      for i = 1 to 64 do
        ignore
          (Nic.send (Machine.nic m0) (frame ~src:0 ~dest:(Frame.Unicast 1) i))
      done);
  Engine.run eng;
  Alcotest.(check bool) "some frames dropped" true (Nic.rx_dropped (Machine.nic m1) > 0);
  Alcotest.(check int) "ring bound respected" 64
    (Nic.rx_frames (Machine.nic m1) + Nic.rx_dropped (Machine.nic m1))

let test_crashed_machine_ignores_traffic () =
  let eng, tr, ether = make_world () in
  let machines = make_machines eng tr ether 2 in
  let m0 = List.nth machines 0 and m1 = List.nth machines 1 in
  let got = ref 0 in
  Nic.set_handler (Machine.nic m1) (fun _ -> incr got);
  Machine.crash m1;
  Engine.spawn eng (fun () ->
      ignore
        (Nic.send (Machine.nic m0) (frame ~src:0 ~dest:(Frame.Unicast 1) 1)));
  Engine.run eng;
  Alcotest.(check int) "no delivery to crashed host" 0 !got;
  Alcotest.(check bool) "m0 alive, m1 dead" true
    (Machine.is_alive m0 && not (Machine.is_alive m1))

let test_crashed_machine_cannot_send () =
  let eng, tr, ether = make_world () in
  let machines = make_machines eng tr ether 2 in
  let m0 = List.nth machines 0 and m1 = List.nth machines 1 in
  let got = ref 0 in
  Nic.set_handler (Machine.nic m1) (fun _ -> incr got);
  Machine.crash m0;
  Engine.spawn eng (fun () ->
      let r = Nic.send (Machine.nic m0) (frame ~src:0 ~dest:(Frame.Unicast 1) 1) in
      Alcotest.(check bool) "send refused" true (r = `Dropped));
  Engine.run eng;
  Alcotest.(check int) "nothing delivered" 0 !got

let test_machine_work_charges_cpu () =
  let eng, tr, ether = make_world () in
  let m = List.hd (make_machines eng tr ether 1) in
  Engine.spawn eng (fun () -> Machine.work m ~layer:"group" Time.(us 100));
  Engine.run eng;
  (* within the +/-5% jitter band *)
  let busy = Resource.busy_time (Machine.cpu m) in
  Alcotest.(check bool)
    (Printf.sprintf "cpu busy ~100us, got %d ns" busy)
    true
    (busy >= Time.us 95 && busy <= Time.us 105)

let test_cost_jitter_bounded () =
  let rng = Random.State.make [| 42 |] in
  let ok = ref true in
  for _ = 1 to 1_000 do
    let d = Cost_model.jitter rng 100_000 in
    if d < 95_000 || d > 105_000 then ok := false
  done;
  Alcotest.(check bool) "jitter within +/-5%" true !ok;
  Alcotest.(check int) "zero stays zero" 0 (Cost_model.jitter rng 0)

let test_interrupt_accounting () =
  let eng, tr, ether = make_world () in
  let machines = make_machines eng tr ether 3 in
  let m0 = List.nth machines 0 in
  List.iter (fun m -> Nic.set_handler (Machine.nic m) (fun _ -> ())) machines;
  List.iter (fun m -> Nic.join_multicast (Machine.nic m) 1) machines;
  Engine.spawn eng (fun () ->
      ignore
        (Nic.send (Machine.nic m0) (frame ~src:0 ~dest:(Frame.Multicast 1) 0)));
  Engine.run eng;
  (* The paper: PB interrupts every receiver exactly once per multicast. *)
  Alcotest.(check int) "one interrupt per receiver" 1
    (Nic.interrupts (Machine.nic (List.nth machines 1)));
  Alcotest.(check int) "sender takes no self-interrupt" 0
    (Nic.interrupts (Machine.nic m0))

let test_work_records_trace_spans () =
  let eng, tr, ether = make_world () in
  let m = List.hd (make_machines eng tr ether 1) in
  Trace.enable tr;
  Engine.spawn eng (fun () ->
      Machine.work m ~layer:"group" Time.(us 10);
      Machine.work m ~layer:"user" Time.(us 5));
  Engine.run eng;
  let layers = List.map fst (Trace.by_layer tr) in
  Alcotest.(check (list string)) "layers recorded" [ "group"; "user" ] layers

(* ----- adversarial link conditions ----- *)

let test_oneway_cut_is_directed () =
  let eng, _, ether = make_world () in
  let got = ref [] in
  let p0 = Ether.attach ether ~rx:(fun f -> got := (0, f) :: !got) in
  let p1 = Ether.attach ether ~rx:(fun f -> got := (1, f) :: !got) in
  ignore p0;
  Ether.cut_oneway ether ~src:0 ~dst:1;
  Engine.spawn eng (fun () ->
      ignore (Ether.transmit ether p0 (frame ~src:0 ~dest:(Frame.Unicast 1) 1));
      ignore (Ether.transmit ether p1 (frame ~src:1 ~dest:(Frame.Unicast 0) 2)));
  Engine.run eng;
  (* 0 -> 1 suppressed, 1 -> 0 delivered: the deaf side still hears. *)
  Alcotest.(check (list int)) "only the reverse path delivers" [ 0 ]
    (List.map fst !got);
  Alcotest.(check int) "directed drop counted" 1 (Ether.oneway_drops ether);
  Alcotest.(check bool) "cut is queryable" true
    (Ether.oneway_cut ether ~src:0 ~dst:1
    && not (Ether.oneway_cut ether ~src:1 ~dst:0));
  Ether.heal_oneway ether ~src:0 ~dst:1;
  Alcotest.(check bool) "healed" false (Ether.oneway_cut ether ~src:0 ~dst:1)

let test_gilbert_bursty_loss () =
  (* A channel that enters the bad state on the first frame and never
     leaves, with certain loss while bad: every frame is swallowed.
     The complementary setting (never leaves the good state, lossless
     there) delivers everything — the loss is state-, not
     frame-correlated. *)
  let eng, _, ether = make_world () in
  let got = ref 0 in
  let _p0 = Ether.attach ether ~rx:(fun _ -> incr got) in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  let burst g =
    { Ether.clean with Ether.gilbert = Some g }
  in
  Ether.set_conditions ether
    (burst { Ether.p_gb = 1.0; p_bg = 0.0; loss_good = 0.0; loss_bad = 1.0 });
  Engine.spawn eng (fun () ->
      for i = 1 to 5 do
        ignore
          (Ether.transmit ether p1 (frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast i))
      done;
      (* Same channel shape, but the bad state is unreachable. *)
      Ether.set_conditions ether
        (burst { Ether.p_gb = 0.0; p_bg = 0.0; loss_good = 0.0; loss_bad = 1.0 });
      for i = 6 to 10 do
        ignore
          (Ether.transmit ether p1 (frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast i))
      done);
  Engine.run eng;
  Alcotest.(check int) "bad state swallows all, good state none" 5 !got;
  Alcotest.(check int) "losses counted" 5 (Ether.cond_losses ether)

let test_duplication_delivers_twice () =
  let eng, _, ether = make_world () in
  let got = ref 0 in
  let _p0 = Ether.attach ether ~rx:(fun _ -> incr got) in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  Ether.set_conditions ether { Ether.clean with Ether.dup_prob = 1.0 };
  Engine.spawn eng (fun () ->
      for i = 1 to 3 do
        ignore
          (Ether.transmit ether p1 (frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast i))
      done);
  Engine.run eng;
  Alcotest.(check int) "every frame arrives twice" 6 !got;
  Alcotest.(check int) "duplicates counted" 3 (Ether.duplicates_injected ether)

let test_jitter_can_reorder () =
  (* With delivery jitter far larger than the inter-frame gap, a long
     train of frames arrives permuted for some seed — delivery order
     is no longer transmission order. *)
  let eng, _, ether = make_world () in
  let order = ref [] in
  let _p0 =
    Ether.attach ether ~rx:(fun f ->
        match f.Frame.body with Tag i -> order := i :: !order | _ -> ())
  in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  Ether.set_conditions ether { Ether.clean with Ether.jitter_ns = Time.ms 10 };
  Engine.spawn eng (fun () ->
      for i = 1 to 12 do
        ignore
          (Ether.transmit ether p1 (frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast i))
      done);
  Engine.run eng;
  let order = List.rev !order in
  Alcotest.(check int) "nothing lost" 12 (List.length order);
  Alcotest.(check (list int)) "every frame still arrives"
    (List.init 12 (fun i -> i + 1))
    (List.sort compare order);
  Alcotest.(check bool) "arrival order differs from send order" true
    (order <> List.init 12 (fun i -> i + 1));
  Alcotest.(check bool) "jittered deliveries counted" true
    (Ether.frames_jittered ether > 0)

let test_corruption_wraps_body () =
  let eng, _, ether = make_world () in
  let got = ref [] in
  let _p0 = Ether.attach ether ~rx:(fun f -> got := f :: !got) in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  Ether.set_conditions ether { Ether.clean with Ether.corrupt_prob = 1.0 };
  Engine.spawn eng (fun () ->
      ignore
        (Ether.transmit ether p1 (frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast 9)));
  Engine.run eng;
  (match !got with
  | [ f ] -> (
      match f.Frame.body with
      | Frame.Corrupted { orig = Tag 9; byte } ->
          Alcotest.(check bool) "damage offset within the frame" true
            (byte >= 0 && byte < f.Frame.size_on_wire)
      | _ -> Alcotest.fail "body not wrapped as Corrupted")
  | _ -> Alcotest.fail "expected exactly one delivery");
  Alcotest.(check int) "corruption counted" 1 (Ether.corruptions_injected ether)

let test_per_link_conditions_override_default () =
  (* Conditions are per directed link: a total-loss override on
     1 -> 0 starves port 0 while port 2 still hears the same
     broadcasts. *)
  let eng, _, ether = make_world () in
  let got = ref [] in
  let _p0 = Ether.attach ether ~rx:(fun _ -> got := 0 :: !got) in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  let _p2 = Ether.attach ether ~rx:(fun _ -> got := 2 :: !got) in
  let total_loss =
    {
      Ether.clean with
      Ether.gilbert =
        Some { Ether.p_gb = 1.0; p_bg = 0.0; loss_good = 0.0; loss_bad = 1.0 };
    }
  in
  Ether.set_link_conditions ether ~src:1 ~dst:0 (Some total_loss);
  Engine.spawn eng (fun () ->
      for i = 1 to 3 do
        ignore
          (Ether.transmit ether p1 (frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast i))
      done);
  Engine.run eng;
  Alcotest.(check (list int)) "only the clean link delivers" [ 2; 2; 2 ] !got;
  Alcotest.(check bool) "override queryable" true
    (Ether.link_conditions ether ~src:1 ~dst:0 = Some total_loss
    && Ether.link_conditions ether ~src:1 ~dst:2 = None);
  Ether.set_link_conditions ether ~src:1 ~dst:0 None;
  Alcotest.(check bool) "override removed" true
    (Ether.link_conditions ether ~src:1 ~dst:0 = None)

let test_conditions_clear_restores_fast_path () =
  let eng, _, ether = make_world () in
  let got = ref 0 in
  let _p0 = Ether.attach ether ~rx:(fun _ -> incr got) in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  Ether.set_conditions ether { Ether.clean with Ether.dup_prob = 1.0 };
  Ether.set_conditions ether Ether.clean;
  Engine.spawn eng (fun () ->
      ignore
        (Ether.transmit ether p1 (frame ~src:(Ether.port_id p1) ~dest:Frame.Broadcast 1)));
  Engine.run eng;
  Alcotest.(check int) "clean again: one copy" 1 !got;
  Alcotest.(check int) "no residual duplication" 0
    (Ether.duplicates_injected ether)

let test_excessive_collisions_drop () =
  (* A medium jammed by an adversarial filter never lets anyone win:
     senders give up after 16 attempts and report Dropped. *)
  let eng, _, ether = make_world () in
  let _sink = Ether.attach ether ~rx:(fun _ -> ()) in
  let p1 = Ether.attach ether ~rx:(fun _ -> ()) in
  let p2 = Ether.attach ether ~rx:(fun _ -> ()) in
  (* Two synchronized senders that re-collide forever would take long;
     instead verify the give-up path via the drop filter and direct
     collision pressure: keep both ports re-sending simultaneously. *)
  let outcomes = ref [] in
  let send p tag =
    Engine.spawn eng (fun () ->
        let rec loop k =
          if k < 40 then begin
            outcomes :=
              Ether.transmit ether p
                (frame ~src:(Ether.port_id p) ~dest:Frame.Broadcast tag)
              :: !outcomes;
            loop (k + 1)
          end
        in
        loop 0)
  in
  send p1 1;
  send p2 2;
  Engine.run eng;
  (* with randomized backoff everyone eventually wins here *)
  Alcotest.(check bool) "all eventually sent" true
    (List.for_all (fun o -> o = `Sent) !outcomes);
  Alcotest.(check bool) "collisions happened" true (Ether.collisions ether > 0)

let prop_many_senders_all_frames_delivered =
  QCheck.Test.make ~name:"contention never loses frames (<=16 retries)"
    ~count:20
    QCheck.(int_range 2 8)
    (fun n ->
      let eng = Engine.create ~seed:n () in
      let tr = Trace.create () in
      let ether = Ether.create eng cost in
      let machines = make_machines eng tr ether n in
      let received = ref 0 in
      List.iter
        (fun m -> Nic.set_handler (Machine.nic m) (fun _ -> incr received))
        machines;
      List.iter (fun m -> Nic.join_multicast (Machine.nic m) 1) machines;
      List.iter
        (fun m ->
          Engine.spawn eng (fun () ->
              ignore
                (Nic.send (Machine.nic m)
                   (frame ~src:(Machine.id m) ~dest:(Frame.Multicast 1) 0))))
        machines;
      Engine.run eng;
      (* every sender's frame reaches the n-1 other machines *)
      !received = n * (n - 1))

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "net",
    [
      tc "frame timing" test_frame_time;
      tc "header stack is 116 bytes" test_headers_total;
      tc "transmit reaches all other ports" test_single_transmit_delivers;
      tc "delivery happens at frame end" test_delivery_at_frame_end;
      tc "carrier sense serialises" test_carrier_sense_serialises;
      tc "simultaneous senders collide then recover"
        test_simultaneous_senders_collide_then_recover;
      tc "utilisation accounting" test_utilisation_positive;
      tc "nic unicast filtering" test_nic_unicast_filtering;
      tc "nic multicast subscription" test_nic_multicast_subscription;
      tc "nic leave multicast" test_nic_leave_multicast;
      tc "nic ring overflow drops" test_nic_ring_overflow_drops;
      tc "crashed machine ignores traffic" test_crashed_machine_ignores_traffic;
      tc "crashed machine cannot send" test_crashed_machine_cannot_send;
      tc "machine work charges cpu" test_machine_work_charges_cpu;
      tc "cost jitter bounded" test_cost_jitter_bounded;
      tc "work records trace spans" test_work_records_trace_spans;
      tc "contention resolves via backoff" test_excessive_collisions_drop;
      tc "interrupt accounting" test_interrupt_accounting;
      tc "one-way cut is directed" test_oneway_cut_is_directed;
      tc "gilbert-elliott loss is bursty" test_gilbert_bursty_loss;
      tc "duplication delivers twice" test_duplication_delivers_twice;
      tc "jitter reorders deliveries" test_jitter_can_reorder;
      tc "corruption wraps the body" test_corruption_wraps_body;
      tc "per-link conditions override default"
        test_per_link_conditions_override_default;
      tc "clearing conditions restores the fast path"
        test_conditions_clear_restores_fast_path;
      QCheck_alcotest.to_alcotest prop_many_senders_all_frames_delivered;
    ] )
