(* Tests for the FLIP datagram layer: addressing, locate, multicast,
   fragmentation. *)

open Amoeba_sim
open Amoeba_net
open Amoeba_flip

type Packet.body += Payload of string

let cost = Cost_model.default

type world = {
  eng : Engine.t;
  ether : Ether.t;
  flips : Flip.t list;
}

let make_world n =
  let eng = Engine.create () in
  let tr = Trace.create () in
  let ether = Ether.create eng cost in
  let flips =
    List.init n (fun i ->
        Flip.create
          (Machine.create eng cost tr (Medium.shared ether) ~name:(Printf.sprintf "m%d" i) ~id:i))
  in
  { eng; ether; flips }

let flip w i = List.nth w.flips i

let test_unicast_via_locate () =
  let w = make_world 3 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  let got = ref None in
  Flip.register (flip w 0) a (fun _ -> ());
  Flip.register (flip w 1) b (fun p -> got := Some p);
  Engine.spawn w.eng (fun () ->
      let p = Packet.make ~src:a ~dst:b ~size:100 (Payload "hello") in
      Alcotest.(check bool) "sent" true (Flip.send (flip w 0) p = `Sent));
  Engine.run w.eng;
  (match !got with
  | Some p -> (
      match p.Packet.body with
      | Payload s -> Alcotest.(check string) "payload" "hello" s
      | _ -> Alcotest.fail "wrong body")
  | None -> Alcotest.fail "not delivered");
  Alcotest.(check int) "route cached" 1 (Flip.locate_cache_size (flip w 0))

let test_unicast_cached_route_needs_no_locate () =
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  let count = ref 0 in
  Flip.register (flip w 0) a (fun _ -> ());
  Flip.register (flip w 1) b (fun _ -> incr count);
  Engine.spawn w.eng (fun () ->
      let p = Packet.make ~src:a ~dst:b ~size:0 Packet.Empty in
      ignore (Flip.send (flip w 0) p);
      let frames_after_first = Ether.frames_delivered w.ether in
      ignore (Flip.send (flip w 0) p);
      (* second send: exactly one more frame (no WHOIS/IAM) *)
      Alcotest.(check int) "one frame for cached send"
        (frames_after_first + 1)
        (Ether.frames_delivered w.ether));
  Engine.run w.eng;
  Alcotest.(check int) "both delivered" 2 !count

let test_no_route_for_unknown_addr () =
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) in
  let ghost = Flip.fresh_addr (flip w 0) in
  Flip.register (flip w 0) a (fun _ -> ());
  let result = ref `Sent in
  Engine.spawn w.eng (fun () ->
      result := Flip.send (flip w 0) (Packet.make ~src:a ~dst:ghost ~size:0 Packet.Empty));
  Engine.run w.eng;
  Alcotest.(check bool) "no route" true (!result = `No_route)

let test_local_delivery_same_machine () =
  let w = make_world 1 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 0) in
  let got = ref false in
  Flip.register (flip w 0) a (fun _ -> ());
  Flip.register (flip w 0) b (fun _ -> got := true);
  Engine.spawn w.eng (fun () ->
      ignore (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:10 Packet.Empty)));
  Engine.run w.eng;
  Alcotest.(check bool) "delivered locally" true !got;
  Alcotest.(check int) "no wire frames" 0 (Ether.frames_delivered w.ether)

let test_multicast_reaches_subscribers_only () =
  let w = make_world 4 in
  let g = Flip.fresh_addr (flip w 0) in
  let got = ref [] in
  List.iteri
    (fun i f ->
      if i >= 1 && i <= 2 then
        Flip.register_group f g (fun _ -> got := i :: !got))
    w.flips;
  let src = Flip.fresh_addr (flip w 0) in
  Engine.spawn w.eng (fun () ->
      ignore (Flip.multicast (flip w 0) (Packet.make ~src ~dst:g ~size:50 Packet.Empty)));
  Engine.run w.eng;
  Alcotest.(check (list int)) "subscribers 1 and 2" [ 1; 2 ] (List.sort compare !got)

let test_multicast_not_delivered_to_sender () =
  let w = make_world 2 in
  let g = Flip.fresh_addr (flip w 0) in
  let got = ref [] in
  List.iteri (fun i f -> Flip.register_group f g (fun _ -> got := i :: !got)) w.flips;
  let src = Flip.fresh_addr (flip w 0) in
  Engine.spawn w.eng (fun () ->
      ignore (Flip.multicast (flip w 0) (Packet.make ~src ~dst:g ~size:0 Packet.Empty)));
  Engine.run w.eng;
  Alcotest.(check (list int)) "only the remote subscriber" [ 1 ] !got

let test_fragmentation_roundtrip () =
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  Flip.register (flip w 0) a (fun _ -> ());
  let got_size = ref 0 in
  Flip.register (flip w 1) b (fun p -> got_size := p.Packet.size);
  Engine.spawn w.eng (fun () ->
      ignore
        (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:8_000 Packet.Empty)));
  Engine.run w.eng;
  Alcotest.(check int) "reassembled once with full size" 8_000 !got_size;
  (* 8000 bytes / 1458-byte fragments = 6 frames, + WHOIS + IAM *)
  Alcotest.(check int) "frame count" 8 (Ether.frames_delivered w.ether)

let test_max_fragment () =
  let w = make_world 1 in
  Alcotest.(check int) "mtu minus flip headers" (1514 - 56)
    (Flip.max_fragment (flip w 0))

let test_unregister_stops_delivery () =
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  Flip.register (flip w 0) a (fun _ -> ());
  let count = ref 0 in
  Flip.register (flip w 1) b (fun _ -> incr count);
  Engine.spawn w.eng (fun () ->
      ignore (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:0 Packet.Empty));
      (* let the receiver's interrupt path run before unregistering *)
      Engine.sleep w.eng (Time.ms 2);
      Flip.unregister (flip w 1) b;
      (* route is cached, so the packet still goes out, but nobody
         consumes it at the far end *)
      ignore (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:0 Packet.Empty)));
  Engine.run w.eng;
  Alcotest.(check int) "only first delivered" 1 !count

let test_crashed_destination_is_no_route () =
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  Flip.register (flip w 0) a (fun _ -> ());
  Flip.register (flip w 1) b (fun _ -> ());
  Machine.crash (Flip.machine (flip w 1));
  let result = ref `Sent in
  Engine.spawn w.eng (fun () ->
      result := Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:0 Packet.Empty));
  Engine.run w.eng;
  Alcotest.(check bool) "no route to crashed host" true (!result = `No_route)

let test_locate_retries_through_loss () =
  (* The first WHOIS is lost; the locate protocol's retry finds the
     destination anyway. *)
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  Flip.register (flip w 0) a (fun _ -> ());
  let got = ref 0 in
  Flip.register (flip w 1) b (fun _ -> incr got);
  let dropped = ref false in
  Ether.set_drop_fun w.ether
    (Some
       (fun _ ->
         if !dropped then false
         else begin
           dropped := true;
           true
         end));
  let result = ref `No_route in
  Engine.spawn w.eng (fun () ->
      result := Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:0 Packet.Empty));
  Engine.run w.eng;
  Alcotest.(check bool) "sent despite lost whois" true (!result = `Sent);
  Alcotest.(check int) "delivered" 1 !got

let test_lost_fragment_means_no_delivery () =
  (* Reassembly is all-or-nothing: losing one fragment of a 3-fragment
     packet suppresses delivery (upper layers repair). *)
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  Flip.register (flip w 0) a (fun _ -> ());
  let got = ref 0 in
  Flip.register (flip w 1) b (fun _ -> incr got);
  Engine.spawn w.eng (fun () ->
      (* warm the locate cache *)
      ignore (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:0 Packet.Empty));
      Engine.sleep w.eng (Time.ms 5);
      let frames = ref 0 in
      Ether.set_drop_fun w.ether
        (Some
           (fun _ ->
             incr frames;
             !frames = 2 (* the middle fragment *)));
      ignore (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:4000 Packet.Empty));
      Engine.sleep w.eng (Time.ms 50));
  Engine.run w.eng;
  Alcotest.(check int) "only the warm-up delivered" 1 !got

(* ----- adversarial delivery: the rx path under a hostile wire ----- *)

let warm_route w a b =
  (* Run the WHOIS/IAM exchange on a quiet net so later fault filters
     only ever see data fragments. *)
  ignore (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:0 Packet.Empty));
  Engine.sleep w.eng (Time.ms 5)

let test_duplicate_fragments_deliver_once () =
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  Flip.register (flip w 0) a (fun _ -> ());
  let got = ref 0 in
  Flip.register (flip w 1) b (fun _ -> incr got);
  Engine.spawn w.eng (fun () ->
      warm_route w a b;
      Ether.set_conditions w.ether { Ether.clean with Ether.dup_prob = 1.0 };
      ignore (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:4_000 Packet.Empty));
      Engine.sleep w.eng (Time.ms 50));
  Engine.run w.eng;
  Alcotest.(check int) "reassembled exactly once" 2 !got;
  (* warm-up + one reassembly: 2 *)
  Alcotest.(check bool) "duplicate fragments were discarded" true
    (Flip.dup_fragments (flip w 1) > 0)

let test_reordered_fragments_reassemble () =
  (* Heavy delivery jitter permutes the fragment train; the arrival
     bitmap still completes the packet exactly once. *)
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  Flip.register (flip w 0) a (fun _ -> ());
  let sizes = ref [] in
  Flip.register (flip w 1) b (fun p -> sizes := p.Packet.size :: !sizes);
  Engine.spawn w.eng (fun () ->
      warm_route w a b;
      Ether.set_conditions w.ether { Ether.clean with Ether.jitter_ns = Time.ms 10 };
      ignore (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:8_000 Packet.Empty));
      Engine.sleep w.eng (Time.ms 100));
  Engine.run w.eng;
  Alcotest.(check (list int)) "one full-size delivery despite reordering"
    [ 8_000; 0 ] !sizes;
  Alcotest.(check bool) "the wire really did reorder" true
    (Ether.frames_jittered w.ether > 0)

let test_header_corruption_drops_whole_frame () =
  (* A 0-byte packet is all headers on the wire, so a flipped bit
     always lands in the header region: the FLIP checksum rejects the
     frame and nothing reaches the endpoint. *)
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  Flip.register (flip w 0) a (fun _ -> ());
  let got = ref 0 in
  Flip.register (flip w 1) b (fun _ -> incr got);
  Engine.spawn w.eng (fun () ->
      warm_route w a b;
      Ether.set_conditions w.ether { Ether.clean with Ether.corrupt_prob = 1.0 };
      ignore (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:0 Packet.Empty));
      Engine.sleep w.eng (Time.ms 20));
  Engine.run w.eng;
  Alcotest.(check int) "only the warm-up arrived" 1 !got;
  Alcotest.(check int) "header checksum drop counted" 1
    (Flip.corrupt_dropped (flip w 1))

let test_payload_corruption_travels_wrapped () =
  (* With a large payload most flipped bits land beyond the header
     region: the headers verify, and the damaged packet must travel up
     wrapped in [Packet.Corrupt] — never as a valid body. *)
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  Flip.register (flip w 0) a (fun _ -> ());
  let clean = ref 0 and wrapped = ref 0 in
  Flip.register (flip w 1) b (fun p ->
      match p.Packet.body with
      | Packet.Corrupt _ -> incr wrapped
      | _ -> incr clean);
  Engine.spawn w.eng (fun () ->
      warm_route w a b;
      Ether.set_conditions w.ether { Ether.clean with Ether.corrupt_prob = 1.0 };
      for _ = 1 to 5 do
        ignore
          (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:1_400 Packet.Empty))
      done;
      Engine.sleep w.eng (Time.ms 50));
  Engine.run w.eng;
  Alcotest.(check int) "warm-up was the only clean delivery" 1 !clean;
  Alcotest.(check bool) "payload damage arrived wrapped" true (!wrapped > 0);
  Alcotest.(check int) "all five were injected" 5
    (Ether.corruptions_injected w.ether);
  Alcotest.(check int) "every copy was wrapped or dropped" 5
    (!wrapped + Flip.corrupt_dropped (flip w 1))

let test_stale_reassembly_entries_purged () =
  (* Losing the tail fragment of many messages piles up partial
     reassembly entries; once the table is big enough, entries older
     than a second are purged on the next arrival, so a lossy peer
     cannot pin memory forever. *)
  let w = make_world 2 in
  let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
  Flip.register (flip w 0) a (fun _ -> ());
  let got = ref 0 in
  Flip.register (flip w 1) b (fun _ -> incr got);
  Engine.spawn w.eng (fun () ->
      warm_route w a b;
      (* Drop every second data fragment: each 2-fragment packet loses
         its tail and leaves a partial entry. *)
      let data_frames = ref 0 in
      Ether.set_drop_fun w.ether
        (Some
           (fun f ->
             match Flip.packet_of_frame f with
             | Some _ ->
                 incr data_frames;
                 !data_frames mod 2 = 0
             | None -> false));
      for _ = 1 to 300 do
        ignore
          (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:2_000 Packet.Empty))
      done;
      Engine.sleep w.eng (Time.ms 10);
      Alcotest.(check int) "all partials buffered" 300
        (Flip.partial_count (flip w 1));
      (* Age them past the purge threshold, then send one more
         half-delivered packet to trigger the lazy sweep. *)
      Engine.sleep w.eng (Time.ms 1_100);
      ignore
        (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size:2_000 Packet.Empty));
      Engine.sleep w.eng (Time.ms 10);
      Alcotest.(check int) "stale entries purged, fresh one kept" 1
        (Flip.partial_count (flip w 1)));
  Engine.run w.eng;
  Alcotest.(check int) "no half packet was ever delivered" 1 !got

let prop_fragment_count =
  QCheck.Test.make ~name:"fragment count = ceil(size / max_fragment)" ~count:100
    QCheck.(int_range 0 100_000)
    (fun size ->
      let w = make_world 2 in
      let a = Flip.fresh_addr (flip w 0) and b = Flip.fresh_addr (flip w 1) in
      Flip.register (flip w 0) a (fun _ -> ());
      let deliveries = ref 0 in
      Flip.register (flip w 1) b (fun _ -> incr deliveries);
      Engine.spawn w.eng (fun () ->
          ignore (Flip.send (flip w 0) (Packet.make ~src:a ~dst:b ~size Packet.Empty)));
      Engine.run w.eng;
      let mf = Flip.max_fragment (flip w 0) in
      let expect_frames = max 1 ((size + mf - 1) / mf) in
      (* + WHOIS + IAM *)
      !deliveries = 1 && Ether.frames_delivered w.ether = expect_frames + 2)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "flip",
    [
      tc "unicast via locate" test_unicast_via_locate;
      tc "cached route skips locate" test_unicast_cached_route_needs_no_locate;
      tc "unknown address is no_route" test_no_route_for_unknown_addr;
      tc "same-machine delivery skips the wire" test_local_delivery_same_machine;
      tc "multicast reaches subscribers only"
        test_multicast_reaches_subscribers_only;
      tc "multicast skips the sender" test_multicast_not_delivered_to_sender;
      tc "fragmentation roundtrip (8000 bytes)" test_fragmentation_roundtrip;
      tc "max fragment size" test_max_fragment;
      tc "unregister stops delivery" test_unregister_stops_delivery;
      tc "crashed destination is no_route" test_crashed_destination_is_no_route;
      tc "locate retries through loss" test_locate_retries_through_loss;
      tc "lost fragment suppresses delivery" test_lost_fragment_means_no_delivery;
      tc "duplicate fragments deliver once" test_duplicate_fragments_deliver_once;
      tc "reordered fragments reassemble" test_reordered_fragments_reassemble;
      tc "header corruption drops the frame"
        test_header_corruption_drops_whole_frame;
      tc "payload corruption travels wrapped"
        test_payload_corruption_travels_wrapped;
      tc "stale reassembly entries purged" test_stale_reassembly_entries_purged;
      QCheck_alcotest.to_alcotest prop_fragment_count;
    ] )
