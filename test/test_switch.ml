(* Tests for the switched full-duplex fabric: forwarding, queueing
   loss, oversubscribed uplinks, fault injection and the root-group
   in-flight rule. *)

open Amoeba_sim
open Amoeba_net

type Frame.body += Tag of int

let cost = Cost_model.default

let make_switch ?(cost = cost) ?(profile = Switch.flat) () =
  let eng = Engine.create () in
  let sw = Switch.create eng cost profile in
  (eng, sw)

let frame ?(size = 64) ~src ~dest tag =
  { Frame.src; dest; size_on_wire = size; body = Tag tag }

let test_profile_parsing () =
  (match Switch.profile_of_string "switch" with
  | Ok p -> Alcotest.(check int) "flat segments" 1 p.Switch.segments
  | Error e -> Alcotest.fail e);
  (match Switch.profile_of_string "switch:2x48@10" with
  | Ok p ->
      Alcotest.(check int) "segments" 2 p.Switch.segments;
      Alcotest.(check int) "segment size" 48 p.Switch.segment_size;
      Alcotest.(check int) "uplink mult" 10 p.Switch.uplink_mult
  | Error e -> Alcotest.fail e);
  (match Switch.profile_of_string "switch:4x25" with
  | Ok p ->
      Alcotest.(check int) "segments" 4 p.Switch.segments;
      Alcotest.(check int) "default uplink mult" 10 p.Switch.uplink_mult
  | Error e -> Alcotest.fail e);
  (match Switch.profile_of_string "switch:0x4" with
  | Ok _ -> Alcotest.fail "0 segments accepted"
  | Error _ -> ());
  match Switch.profile_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus accepted"
  | Error _ -> ()

let test_unicast_reaches_only_destination () =
  let eng, sw = make_switch () in
  let got = ref [] in
  let _p0 = Switch.attach sw ~rx:(fun f -> got := (0, f) :: !got) in
  let p1 = Switch.attach sw ~rx:(fun f -> got := (1, f) :: !got) in
  let _p2 = Switch.attach sw ~rx:(fun f -> got := (2, f) :: !got) in
  Engine.spawn eng (fun () ->
      let f = frame ~src:(Switch.port_id p1) ~dest:(Frame.Unicast 2) 7 in
      ignore (Switch.transmit sw p1 f));
  Engine.run eng;
  Alcotest.(check (list int)) "only station 2" [ 2 ] (List.map fst !got);
  Alcotest.(check int) "frames counted" 1 (Switch.frames_delivered sw)

let test_broadcast_floods_all_but_sender () =
  let eng, sw = make_switch () in
  let got = ref [] in
  let _p0 = Switch.attach sw ~rx:(fun f -> got := (0, f) :: !got) in
  let p1 = Switch.attach sw ~rx:(fun f -> got := (1, f) :: !got) in
  let _p2 = Switch.attach sw ~rx:(fun f -> got := (2, f) :: !got) in
  Engine.spawn eng (fun () ->
      let f = frame ~src:(Switch.port_id p1) ~dest:Frame.Broadcast 7 in
      ignore (Switch.transmit sw p1 f));
  Engine.run eng;
  let receivers = List.sort compare (List.map fst !got) in
  Alcotest.(check (list int)) "everyone but the sender" [ 0; 2 ] receivers

let test_full_duplex_no_collision () =
  (* Two simultaneous senders on a shared wire would collide; on the
     switch both frames go through, the second just queues at the
     common egress port. *)
  let eng, sw = make_switch () in
  let arrivals = ref [] in
  let _p0 = Switch.attach sw ~rx:(fun f -> arrivals := f :: !arrivals) in
  let p1 = Switch.attach sw ~rx:(fun _ -> ()) in
  let p2 = Switch.attach sw ~rx:(fun _ -> ()) in
  Engine.spawn eng (fun () ->
      ignore (Switch.transmit sw p1 (frame ~src:1 ~dest:(Frame.Unicast 0) 1)));
  Engine.spawn eng (fun () ->
      ignore (Switch.transmit sw p2 (frame ~src:2 ~dest:(Frame.Unicast 0) 2)));
  Engine.run eng;
  Alcotest.(check int) "both delivered" 2 (List.length !arrivals);
  Alcotest.(check int) "no queue loss" 0 (Switch.queue_drops sw)

let test_egress_overflow_tail_drops () =
  (* Many senders converging on one port: one frame in service, one
     queued (cap 1), the rest tail-dropped and counted. *)
  let cost = { cost with Cost_model.switch_egress_frames = 1 } in
  let eng, sw = make_switch ~cost () in
  let delivered = ref 0 in
  let _p0 = Switch.attach sw ~rx:(fun _ -> incr delivered) in
  let senders = List.init 6 (fun i -> (i + 1, Switch.attach sw ~rx:ignore)) in
  List.iter
    (fun (i, p) ->
      Engine.spawn eng (fun () ->
          ignore (Switch.transmit sw p (frame ~src:i ~dest:(Frame.Unicast 0) i))))
    senders;
  Engine.run eng;
  Alcotest.(check bool) "some egress drops" true (Switch.egress_drops sw > 0);
  Alcotest.(check int) "drops + deliveries = sends" 6
    (!delivered + Switch.egress_drops sw);
  Alcotest.(check int) "all drops are egress drops" (Switch.egress_drops sw)
    (Switch.queue_drops sw)

let test_uplink_oversubscription_drops_cross_segment () =
  (* 2 segments x 2 hosts with a 1x uplink and a 1-frame uplink FIFO:
     both hosts of segment 0 blasting cross-segment overwhelm the
     uplink, while same-segment traffic never touches it. *)
  let cost = { cost with Cost_model.switch_uplink_frames = 1 } in
  let profile = { Switch.segments = 2; segment_size = 2; uplink_mult = 1 } in
  let eng, sw = make_switch ~cost ~profile () in
  let cross = ref 0 and local = ref 0 in
  let p0 = Switch.attach sw ~rx:ignore in
  let p1 = Switch.attach sw ~rx:(fun _ -> incr local) in
  let _p2 = Switch.attach sw ~rx:(fun _ -> incr cross) in
  let _p3 = Switch.attach sw ~rx:ignore in
  let blast p src =
    Engine.spawn eng (fun () ->
        for k = 1 to 10 do
          ignore
            (Switch.transmit sw p
               (frame ~size:1500 ~src ~dest:(Frame.Unicast 2) k))
        done)
  in
  blast p0 0;
  blast p1 1;
  (* Same-segment unicast from 0 to 1 rides only the local egress. *)
  Engine.spawn eng (fun () ->
      for k = 1 to 5 do
        ignore (Switch.transmit sw p0 (frame ~src:0 ~dest:(Frame.Unicast 1) k))
      done);
  Engine.run eng;
  Alcotest.(check bool) "uplink drops" true (Switch.uplink_drops sw > 0);
  Alcotest.(check bool) "some cross-segment frames survive" true (!cross > 0);
  Alcotest.(check int) "cross loss accounted" 20
    (!cross + Switch.uplink_drops sw);
  Alcotest.(check int) "same-segment traffic unaffected" 5 !local

let test_crashed_sender_frame_still_delivered () =
  (* The sender's process group dies mid-serialization; the arrival
     event was committed to the root group, so the frame still lands
     — the switch's version of bits-already-on-the-wire. *)
  let eng, sw = make_switch () in
  let got = ref 0 in
  let _p0 = Switch.attach sw ~rx:(fun _ -> incr got) in
  let p1 = Switch.attach sw ~rx:ignore in
  let g = Engine.create_group eng ~label:"doomed" in
  Engine.spawn ~group:g eng (fun () ->
      ignore (Switch.transmit sw p1 (frame ~src:1 ~dest:(Frame.Unicast 0) 9)));
  (* Kill the sender while the frame is still serializing (frame time
     is ~70 us at 10 Mbit). *)
  ignore
    (Engine.schedule eng ~after:(Time.us 10) (fun () ->
         Engine.cancel_group eng g));
  Engine.run eng;
  Alcotest.(check int) "frame delivered after sender death" 1 !got

let test_partition_and_loss_on_switch () =
  let eng, sw = make_switch () in
  let got = ref 0 in
  let _p0 = Switch.attach sw ~rx:(fun _ -> incr got) in
  let p1 = Switch.attach sw ~rx:ignore in
  Switch.partition_pair sw 0 1;
  Engine.spawn eng (fun () ->
      ignore (Switch.transmit sw p1 (frame ~src:1 ~dest:(Frame.Unicast 0) 1)));
  Engine.run eng;
  Alcotest.(check int) "partition suppresses delivery" 0 !got;
  Alcotest.(check int) "partition drop counted" 1 (Switch.partition_drops sw);
  Switch.heal sw;
  Engine.spawn eng (fun () ->
      ignore (Switch.transmit sw p1 (frame ~src:1 ~dest:(Frame.Unicast 0) 2)));
  Engine.run eng;
  Alcotest.(check int) "heal restores delivery" 1 !got;
  (* Injected loss drops at store-and-forward arrival. *)
  Switch.set_loss_rate sw 1.0;
  Engine.spawn eng (fun () ->
      ignore (Switch.transmit sw p1 (frame ~src:1 ~dest:(Frame.Unicast 0) 3)));
  Engine.run eng;
  Alcotest.(check int) "lossy frame never arrives" 1 !got;
  Alcotest.(check int) "loss counted" 1 (Switch.frames_lost sw)

let test_oneway_cut_is_directed () =
  let eng, sw = make_switch () in
  let at0 = ref 0 and at1 = ref 0 in
  let p0 = Switch.attach sw ~rx:(fun _ -> incr at0) in
  let p1 = Switch.attach sw ~rx:(fun _ -> incr at1) in
  Switch.cut_oneway sw ~src:1 ~dst:0;
  Engine.spawn eng (fun () ->
      ignore (Switch.transmit sw p1 (frame ~src:1 ~dest:(Frame.Unicast 0) 1));
      ignore (Switch.transmit sw p0 (frame ~src:0 ~dest:(Frame.Unicast 1) 2)));
  Engine.run eng;
  Alcotest.(check int) "cut direction blocked" 0 !at0;
  Alcotest.(check int) "reverse direction open" 1 !at1;
  Alcotest.(check int) "oneway drop counted" 1 (Switch.oneway_drops sw)

let test_utilisation_window_reset () =
  let eng, sw = make_switch () in
  let _p0 = Switch.attach sw ~rx:ignore in
  let p1 = Switch.attach sw ~rx:ignore in
  Engine.spawn eng (fun () ->
      for k = 1 to 4 do
        ignore
          (Switch.transmit sw p1 (frame ~size:1500 ~src:1 ~dest:(Frame.Unicast 0) k))
      done);
  Engine.run eng;
  Alcotest.(check bool) "busy window" true (Switch.utilisation sw > 0.);
  (* A fresh window with no elapsed time and no traffic reads 0. *)
  Switch.reset_utilisation_window sw;
  Alcotest.(check (float 1e-9)) "reset window" 0. (Switch.utilisation sw);
  (* Idle time after the reset keeps it at 0. *)
  ignore (Engine.schedule eng ~after:(Time.ms 10) (fun () -> ()));
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "idle window" 0. (Switch.utilisation sw)

(* ----- the group stack on the switch ----- *)

open Amoeba_core
open Amoeba_harness
module T = Types

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (T.error_to_string e)

let test_group_recovers_egress_drops () =
  (* A 6-member group on a switch whose egress FIFOs hold a single
     frame: concurrent senders overflow the sequencer's port, and the
     NACK/retransmission machinery must still deliver every message to
     every member in sequencer order. *)
  let cost = { Cost_model.default with Cost_model.switch_egress_frames = 1 } in
  let n = 6 in
  let cl =
    Cluster.create ~cost ~fabric:(Medium.Switched Switch.flat) ~n ()
  in
  let failure = ref None in
  Cluster.spawn cl (fun () ->
      try
        let creator =
          Api.create_group (Cluster.flip cl 0) ~resilience:0 ~send_method:T.Pb
            ()
        in
        let addr = Api.group_address creator in
        let joiners =
          List.init (n - 1) (fun i ->
              check_ok "join"
                (Api.join_group
                   (Cluster.flip cl (i + 1))
                   ~resilience:0 ~send_method:T.Pb addr))
        in
        let members = creator :: joiners in
        let per_sender = 6 in
        List.iteri
          (fun i g ->
            Engine.spawn cl.Cluster.engine (fun () ->
                for k = 1 to per_sender do
                  ignore
                    (check_ok "send"
                       (Api.send_to_group g
                          (Bytes.of_string (Printf.sprintf "%d.%d" i k))))
                done))
          members;
        let expect = n * per_sender in
        List.iter
          (fun g ->
            for _ = 1 to expect do
              ignore (Api.receive_from_group g)
            done)
          members
      with e -> failure := Some e);
  Cluster.run ~until:(Time.sec 2_000) cl;
  (match !failure with Some e -> raise e | None -> ());
  let sw =
    match Medium.switch cl.Cluster.net with
    | Some sw -> sw
    | None -> Alcotest.fail "cluster not on a switch"
  in
  Alcotest.(check bool) "fabric actually dropped frames" true
    (Switch.egress_drops sw > 0)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "switch",
    [
      tc "profile parsing" test_profile_parsing;
      tc "unicast reaches only destination" test_unicast_reaches_only_destination;
      tc "broadcast floods all but sender" test_broadcast_floods_all_but_sender;
      tc "full duplex does not collide" test_full_duplex_no_collision;
      tc "egress overflow tail-drops" test_egress_overflow_tail_drops;
      tc "uplink oversubscription drops cross-segment"
        test_uplink_oversubscription_drops_cross_segment;
      tc "crashed sender's frame still delivered"
        test_crashed_sender_frame_still_delivered;
      tc "partition and loss on switch" test_partition_and_loss_on_switch;
      tc "one-way cut is directed" test_oneway_cut_is_directed;
      tc "utilisation window reset" test_utilisation_window_reset;
      tc "group recovers egress drops via nacks" test_group_recovers_egress_drops;
    ] )
